// Sensornet: the habitat-monitoring scenario from the paper's introduction.
//
// A field of temperature sensors reports noisy readings, modeled as
// histogram pdfs over each sensor's plausible range (paper Fig. 1(b)). The
// example answers two of the paper's motivating queries:
//
//  1. which district's temperature is closest to a target centroid
//     (a C-PNN at the centroid), and
//  2. which sensor most likely reports the minimum temperature
//     (a probabilistic minimum query — the PNN at q = −∞).
package main

import (
	"fmt"
	"log"
	"math/rand"

	pnn "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 60 sensors; each reading is uncertain within ±1.5°C of a true value,
	// with a skewed histogram pdf built from repeated noisy observations.
	const sensors = 60
	pdfs := make([]pnn.PDF, sensors)
	for i := range pdfs {
		trueTemp := 10 + rng.Float64()*10 // 10..20 °C, as in paper Fig. 1(b)
		lo, hi := trueTemp-1.5, trueTemp+1.5
		// Accumulate a 6-bar observation histogram around the true value.
		weights := make([]float64, 6)
		for obs := 0; obs < 40; obs++ {
			v := trueTemp + rng.NormFloat64()*0.6
			bin := int((v - lo) / (hi - lo) * 6)
			if bin < 0 {
				bin = 0
			}
			if bin > 5 {
				bin = 5
			}
			weights[bin]++
		}
		edges := make([]float64, 7)
		for b := range edges {
			edges[b] = lo + (hi-lo)*float64(b)/6
		}
		h, err := pnn.NewHistogram(edges, weights)
		if err != nil {
			log.Fatal(err)
		}
		pdfs[i] = h
	}
	eng, err := pnn.New(pnn.NewDataset(pdfs))
	if err != nil {
		log.Fatal(err)
	}

	// Query 1: which sensor reads closest to the 15°C centroid, with at
	// least 40% confidence (2% tolerance)?
	res, err := eng.CPNN(15, pnn.Constraint{P: 0.4, Delta: 0.02}, pnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C-PNN at 15°C: %d candidates, answers:\n", res.Stats.Candidates)
	if len(res.Answers) == 0 {
		fmt.Println("  (no sensor reaches 40% — probabilities are spread out)")
	}
	for _, a := range res.Answers {
		fmt.Printf("  sensor %d: p ∈ [%.3f, %.3f]\n", a.ID, a.Bounds.L, a.Bounds.U)
	}

	// Lowering the bar surfaces the plausible set.
	res, err = eng.CPNN(15, pnn.Constraint{P: 0.15, Delta: 0.02}, pnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C-PNN at 15°C with P=15%%: %d answers\n", len(res.Answers))

	// Query 2: the probabilistic minimum — which sensors may hold the
	// coldest reading with >= 25% confidence (paper §I: a min query is a
	// PNN with q at −∞).
	minRes, err := eng.Min(pnn.Constraint{P: 0.25, Delta: 0.02}, pnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("probabilistic minimum (P=25%):")
	for _, a := range minRes.Answers {
		region := eng.Dataset().Object(a.ID).Region()
		fmt.Printf("  sensor %d (%.1f–%.1f°C): p ∈ [%.3f, %.3f]\n",
			a.ID, region.Lo, region.Hi, a.Bounds.L, a.Bounds.U)
	}
	fmt.Printf("min query verified %d/%d sensors without integration\n",
		minRes.Stats.Candidates-minRes.Stats.RefinedObjects, minRes.Stats.Candidates)
}
