// Geofence: planar uncertain nearest-neighbor dispatch.
//
// Delivery drones hover inside circular uncertainty regions (position fixes
// decay between telemetry updates). When a pickup request arrives, the
// dispatcher wants the drones most likely to be nearest to the pickup point
// — a 2-D C-PNN, using the paper's §IV-A reduction of circular regions to
// distance pdfs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	pnn "repro"
)

func main() {
	rng := rand.New(rand.NewSource(12))

	// 400 drones over a 10 km × 10 km service area (coordinates in meters).
	// Uncertainty radius grows with time since the last fix: 20 m to 500 m.
	objs := make([]pnn.Object2D, 400)
	for i := range objs {
		objs[i] = pnn.Object2D{
			ID: i,
			Region: pnn.Circle{
				Center: pnn.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000},
				Radius: 20 + rng.ExpFloat64()*160,
			},
		}
	}
	eng, err := pnn.New2D(objs)
	if err != nil {
		log.Fatal(err)
	}

	pickup := pnn.Point{X: 4210, Y: 6888}

	// Which drones are the nearest with >= 35% probability (tolerating 3%)?
	res, err := eng.CPNN(pickup, pnn.Constraint{P: 0.35, Delta: 0.03},
		pnn.Options2D{Bins: 128})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pickup (%.0f, %.0f): %d candidate drones, f_min=%.0fm\n",
		pickup.X, pickup.Y, res.Stats.Candidates, res.Stats.FMin)
	for _, a := range res.Answers {
		c := objs[a.ID].Region
		fmt.Printf("  drone %d at (%.0f, %.0f)±%.0fm: p ∈ [%.3f, %.3f]\n",
			a.ID, c.Center.X, c.Center.Y, c.Radius, a.Bounds.L, a.Bounds.U)
	}
	fmt.Printf("  verification decided %d/%d drones without integration\n",
		res.Stats.Candidates-res.Stats.RefinedObjects, res.Stats.Candidates)

	// Full probability picture for the dispatcher's UI.
	probs, err := eng.PNN(pickup, pnn.Options2D{Bins: 128})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top contenders:")
	for i, p := range probs {
		if i == 5 || p.P < 0.01 {
			break
		}
		fmt.Printf("  drone %d: %.1f%%\n", p.ID, 100*p.P)
	}
}
