// Replicaset walkthrough: WAL-shipped read replicas end to end — a primary
// store streaming its log over loopback TCP, a follower store catching up
// and then tracking live commits, identical answers from both sides, lag
// observability, and the follower refusing local writes.
//
// The paper's LBS/sensor deployments are read-heavy: many clients asking
// "who is nearest?" against a stream of position updates. Replication lets
// query load fan out across follower processes while one primary owns the
// write path — and because the primary ships its WAL bytes verbatim, every
// follower's answers are byte-identical to the primary's.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	pnn "repro"
)

func main() {
	base := filepath.Join(os.TempDir(), "cpnn-replicaset-example")
	os.RemoveAll(base)
	defer os.RemoveAll(base)

	// The primary: an ordinary durable store plus a replication listener
	// that streams its WAL to any follower that connects.
	primary, err := pnn.OpenStore(filepath.Join(base, "primary"), pnn.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer primary.Close()
	res, err := primary.Apply([]pnn.StoreOp{
		pnn.InsertObjectOp(pnn.MustUniform(18, 22)),
		pnn.InsertObjectOp(pnn.MustUniform(19, 21)),
		pnn.InsertObjectOp(pnn.MustUniform(30, 40)),
	})
	if err != nil {
		log.Fatal(err)
	}
	repl, err := pnn.StartReplication(pnn.ReplicationConfig{
		Store: primary, Addr: "127.0.0.1:0",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer repl.Close()
	fmt.Printf("primary: %d objects at version %d, replicating on %s\n",
		len(res.IDs), res.Version, repl.Addr())

	// The follower: its own durable store (local writes refused) plus a
	// connection that replays the primary's stream into it.
	fstore, err := pnn.OpenFollowerStore(filepath.Join(base, "replica"), pnn.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer fstore.Close()
	fol, err := pnn.StartFollower(pnn.FollowerConfig{
		Store: fstore, Primary: repl.Addr(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fol.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fol.WaitCaughtUp(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower: caught up at version %d (role %s)\n",
		fstore.View().Version, fstore.Role())

	// Both sides answer from their own MVCC views; the pdfs replicated
	// byte-for-byte, so the answers agree exactly.
	answer := func(label string, st *pnn.Store) {
		v := st.View()
		eng, err := pnn.EngineFromView(v)
		if err != nil {
			log.Fatal(err)
		}
		r, err := eng.CPNN(20, pnn.Constraint{P: 0.3, Delta: 0.01}, pnn.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (version %d):\n", label, v.Version)
		for _, a := range r.Answers {
			fmt.Printf("  sensor %d: P in [%.2f, %.2f]\n", v.IDs[a.ID], a.Bounds.L, a.Bounds.U)
		}
	}
	answer("primary ", primary)
	answer("follower", fstore)

	// A live commit on the primary flows down the stream; the follower's
	// change feed fires exactly as if the commit were local — monitors and
	// SSE subscribers on a replica ride this same feed.
	feed, err := fstore.Watch(0)
	if err != nil {
		log.Fatal(err)
	}
	defer feed.Close()
	up, err := primary.Apply([]pnn.StoreOp{
		pnn.UpdateObjectOp(res.IDs[2], pnn.MustUniform(19, 23)), // server room cools off
	})
	if err != nil {
		log.Fatal(err)
	}
	for delta := range feed.C() {
		if delta.View.Version >= up.Version {
			fmt.Printf("follower: replayed version %d (%d changed)\n",
				delta.View.Version, len(delta.Changes))
			break
		}
	}
	answer("follower", fstore)

	// Observability: the follower knows how far behind it is, three ways.
	lag := fol.Lag()
	fmt.Printf("lag: %d versions, %.0f seconds, %d bytes\n", lag.Versions, lag.Seconds, lag.Bytes)

	// The follower's store refuses local writes — in the HTTP server this
	// surfaces as a 307 redirect to the primary (or 403 without one).
	if _, err := fstore.Apply([]pnn.StoreOp{pnn.TruncateOp()}); err != nil {
		fmt.Printf("follower write refused: %v (errors.Is(ErrFollower)=%v)\n",
			err, errors.Is(err, pnn.ErrFollowerStore))
	}
}
