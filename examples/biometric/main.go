// Biometric: the feature-matching scenario from the paper's introduction.
//
// A biometric database stores one uncertain feature value per enrolled
// subject (the paper cites Gaussian-distributed feature vectors in
// gauss-tree-style databases). Identification reduces to a constrained
// nearest-neighbor query: given a probe measurement, which enrolled
// subjects' features are most likely the closest match, with enough
// confidence to act on?
package main

import (
	"fmt"
	"log"
	"math/rand"

	pnn "repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// 2,000 enrolled subjects; each has a canonical feature value and a
	// per-subject measurement spread (some subjects are inherently noisier).
	const subjects = 2000
	type subject struct {
		name   int
		center float64
	}
	pdfs := make([]pnn.PDF, subjects)
	for i := range pdfs {
		center := rng.Float64() * 1000
		spread := 0.5 + rng.ExpFloat64()*2
		g, err := pnn.NewGaussian(center-3*spread, center+3*spread, center, spread)
		if err != nil {
			log.Fatal(err)
		}
		pdfs[i] = g
	}
	eng, err := pnn.New(pnn.NewDataset(pdfs))
	if err != nil {
		log.Fatal(err)
	}

	// A probe arrives. High-stakes identification: accept a match only with
	// >= 60% qualification probability and a tight 1% tolerance.
	probe := 512.77
	strict := pnn.Constraint{P: 0.6, Delta: 0.01}
	res, err := eng.CPNN(probe, strict, pnn.Options{Bins: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe %.2f: %d candidate subjects\n", probe, res.Stats.Candidates)
	if len(res.Answers) == 0 {
		fmt.Println("strict match (P=60%): none — identification inconclusive")
	}
	for _, a := range res.Answers {
		fmt.Printf("strict match: subject %d with p ∈ [%.3f, %.3f]\n",
			a.ID, a.Bounds.L, a.Bounds.U)
	}

	// Screening mode: surface every subject that clears 10% for human
	// review, with exact probabilities from the unconstrained PNN.
	probs, _, err := eng.PNN(probe, pnn.Options{Bins: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("review queue (p ≥ 10%):")
	for _, p := range probs {
		if p.P >= 0.10 {
			fmt.Printf("  subject %d: %.1f%%\n", p.ID, 100*p.P)
		}
	}

	// The verifier pipeline is what makes interactive screening viable:
	// most candidates are rejected without a single numeric integration.
	fmt.Printf("verification classified %d/%d subjects; %d needed integration\n",
		res.Stats.Candidates-res.Stats.RefinedObjects, res.Stats.Candidates,
		res.Stats.RefinedObjects)
}
