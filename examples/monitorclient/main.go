// Continuous-query walkthrough: register standing C-PNN queries over a
// durable store, let the monitor watch the store's change feed, and receive
// pushed answer updates as objects move — the paper's LBS scenario ("which
// taxi is nearest the passenger, with probability ≥ 0.3?") kept current
// without any polling.
//
// The monitor prunes with influence regions: every answer comes with a
// critical distance (the filtering bound f_min), and a committed batch only
// re-evaluates the standing queries whose influence interval one of its
// changed rectangles intersects. Updates far from a query provably cannot
// change its answer and cost nothing.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	pnn "repro"
)

func main() {
	dir := filepath.Join(os.TempDir(), "cpnn-monitor-example")
	os.RemoveAll(dir)
	defer os.RemoveAll(dir)

	st, err := pnn.OpenStore(dir, pnn.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Five taxis reporting uncertain positions along a road (1-D).
	res, err := st.Apply([]pnn.StoreOp{
		pnn.InsertObjectOp(pnn.MustUniform(100, 120)),
		pnn.InsertObjectOp(pnn.MustUniform(140, 150)),
		pnn.InsertObjectOp(pnn.MustUniform(300, 330)),
		pnn.InsertObjectOp(pnn.MustUniform(520, 540)),
		pnn.InsertObjectOp(pnn.MustUniform(900, 930)),
	})
	if err != nil {
		log.Fatal(err)
	}
	taxis := res.IDs

	// The monitor rides the store's change feed.
	mon, err := pnn.NewMonitor(pnn.MonitorConfig{Store: st})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	// A passenger stands at x=135: which taxi is nearest with P ≥ 0.3?
	state, err := mon.Register(pnn.MonitorSpec{
		Kind:       pnn.MonitorCPNN,
		Q:          135,
		Constraint: pnn.Constraint{P: 0.3, Delta: 0.01},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standing query %d at q=135 (version %d): %s\n",
		state.ID, state.Version, state.Answer)

	sub, err := mon.Subscribe(nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	// Taxi 5 is far away; moving it is pruned — no update arrives.
	if _, err := st.Apply([]pnn.StoreOp{
		pnn.UpdateObjectOp(taxis[4], pnn.MustUniform(940, 970)),
	}); err != nil {
		log.Fatal(err)
	}
	if err := mon.Sync(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	select {
	case ev := <-sub.C():
		fmt.Printf("unexpected update: %+v\n", ev)
	default:
		fmt.Println("far-away taxi moved: pruned, no re-evaluation, answer provably current")
	}

	// Taxi 3 pulls up right next to the passenger: the answer changes and an
	// update is pushed.
	if _, err := st.Apply([]pnn.StoreOp{
		pnn.UpdateObjectOp(taxis[2], pnn.MustUniform(130, 138)),
	}); err != nil {
		log.Fatal(err)
	}
	if err := mon.Sync(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	ev := <-sub.C()
	if ev.Type != pnn.MonitorEventUpdate {
		log.Fatalf("expected an update, got %+v", ev)
	}
	fmt.Printf("taxi %d arrived: pushed update (version %d): %s\n",
		taxis[2], ev.Update.Version, ev.Update.Answer)

	s := mon.Stats()
	fmt.Printf("monitor stats: %d re-evals, %d pruned, %d pushes\n",
		s.ReEvals, s.Pruned, s.Pushes)
}
