// Quickstart: build a tiny uncertain dataset, run a C-PNN and a PNN, and
// print the classified answers — the paper's Fig. 2 scenario in a few lines
// of the public API.
package main

import (
	"fmt"
	"log"

	pnn "repro"
)

func main() {
	// Four uncertain objects (closed intervals with uniform pdfs), echoing
	// the paper's Fig. 2: a query at 12 with objects of varying spread.
	ds := pnn.NewDataset([]pnn.PDF{
		pnn.MustUniform(8, 18),  // A: moderately close, wide
		pnn.MustUniform(9, 13),  // B: tight and straddling the query
		pnn.MustUniform(2, 30),  // C: very wide
		pnn.MustUniform(11, 17), // D: close but offset
	})
	eng, err := pnn.New(ds)
	if err != nil {
		log.Fatal(err)
	}

	const q = 12.0

	// Exact qualification probabilities (the unconstrained PNN).
	probs, _, err := eng.PNN(q, pnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PNN — exact qualification probabilities:")
	for _, p := range probs {
		fmt.Printf("  object %c: %.1f%%\n", 'A'+rune(p.ID), 100*p.P)
	}

	// The constrained variant: only objects with probability >= 30%,
	// tolerating 2% of bound slack — the paper's worked example, where the
	// threshold admits B outright and D via the tolerance.
	res, err := eng.CPNN(q, pnn.Constraint{P: 0.30, Delta: 0.02}, pnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nC-PNN(P=30%%, Δ=2%%) answers (%d candidates, %d verified without integration):\n",
		res.Stats.Candidates, res.Stats.Candidates-res.Stats.RefinedObjects)
	for _, a := range res.Answers {
		fmt.Printf("  object %c: p ∈ [%.3f, %.3f]\n", 'A'+rune(a.ID), a.Bounds.L, a.Bounds.U)
	}
	fmt.Printf("\nphases: filter=%v verify=%v refine=%v\n",
		res.Stats.FilterTime, res.Stats.InitTime+res.Stats.VerifyTime, res.Stats.RefineTime)
}
