// LBS: the location-based-services scenario from the paper's introduction.
//
// Vehicles report positions along a highway using dead reckoning: the
// database only knows each vehicle's position up to an uncertainty interval,
// modeled with the Gaussian measurement-error pdf the paper cites for GPS
// data (Fig. 1(a)). The example asks which vehicle is most likely nearest to
// an incident location, comparing the three evaluation strategies.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	pnn "repro"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 5,000 vehicles on a 100 km highway (positions in meters). Each has an
	// uncertainty interval whose width reflects time since its last update;
	// the position pdf is the paper's truncated Gaussian (σ = width/6).
	const vehicles = 5000
	pdfs := make([]pnn.PDF, vehicles)
	for i := range pdfs {
		center := rng.Float64() * 100000
		width := 50 + rng.ExpFloat64()*200 // 50 m .. ~1 km of drift
		g, err := pnn.PaperGaussian(center-width/2, center+width/2)
		if err != nil {
			log.Fatal(err)
		}
		pdfs[i] = g
	}
	eng, err := pnn.New(pnn.NewDataset(pdfs))
	if err != nil {
		log.Fatal(err)
	}

	const incident = 47250.0 // meters
	c := pnn.Constraint{P: 0.3, Delta: 0.01}

	for _, strat := range []pnn.Strategy{pnn.StrategyVR, pnn.StrategyRefine, pnn.StrategyBasic} {
		start := time.Now()
		res, err := eng.CPNN(incident, c, pnn.Options{Strategy: strat, Bins: 120})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7v %d candidates -> %d dispatchable vehicles in %v\n",
			strat, res.Stats.Candidates, len(res.Answers), time.Since(start).Round(time.Microsecond))
		for _, a := range res.Answers {
			fmt.Printf("        vehicle %d: p ∈ [%.3f, %.3f]\n", a.ID, a.Bounds.L, a.Bounds.U)
		}
	}

	// Dispatch planning wants backups: the three most probable responders,
	// via the constrained k-NN extension.
	answers, _, err := eng.CKNN(incident, pnn.Constraint{P: 0.5, Delta: 0.05},
		pnn.KNNOptions{K: 3, Samples: 8000, Seed: 9, Bins: 120})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("likely top-3 responders (p ≥ 50%):")
	for _, a := range answers {
		if a.Status == pnn.StatusSatisfy {
			fmt.Printf("        vehicle %d: p ∈ [%.3f, %.3f]\n", a.ID, a.Bounds.L, a.Bounds.U)
		}
	}
}
