// Example serveclient drives the C-PNN query service over real HTTP, the way
// a remote LBS client would. It starts the server in-process on a loopback
// port (the stand-alone equivalent is `cpnn-serve -data ...`), then walks
// the API: health check, a C-PNN query issued twice to show the result cache,
// a nearby query collapsed by quantization, exact PNN probabilities, a
// constrained k-NN, and finally an atomic dataset reload that the next query
// observes.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	pnn "repro"
)

func main() {
	// A small fleet of uncertain taxis on a 1-D road, then a query service
	// over it. Quantum 1 means queries within the same 1-unit bucket share
	// one cached (exactly evaluated) answer.
	ds := pnn.NewDataset([]pnn.PDF{
		pnn.MustUniform(8, 18),
		pnn.MustUniform(9, 13),
		pnn.MustUniform(20, 25),
		pnn.MustUniform(11, 16),
	})
	srv, err := pnn.NewServer(pnn.ServerConfig{Dataset: ds, Source: "taxis", Quantum: 1})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()

	show("health", get(base+"/healthz"))

	// The same C-PNN twice: the second response is served from the cache
	// (X-Cache: hit) and is byte-identical to the first.
	show("C-PNN q=12 (cold)", get(base+"/v1/cpnn?q=12&p=0.3&delta=0.01"))
	show("C-PNN q=12 (warm)", get(base+"/v1/cpnn?q=12&p=0.3&delta=0.01"))
	// q=12.3 snaps to the same 1-unit bucket as q=12 — another cache hit.
	show("C-PNN q=12.3 (snapped)", get(base+"/v1/cpnn?q=12.3&p=0.3&delta=0.01"))

	show("PNN q=12", get(base+"/v1/pnn?q=12"))
	show("C-P2NN q=12", get(base+"/v1/knn?q=12&k=2&p=0.3&all=1"))

	// A batch: one request, one dataset snapshot, per-point cache checks.
	// q=12 is already cached from above ("hit"); the rest are fresh misses.
	batch := `{"queries":[12, 15, 22.5], "p":0.3, "delta":0.01}`
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader([]byte(batch)))
	if err != nil {
		log.Fatal(err)
	}
	show("batch [12 15 22.5]", resp)

	// Atomic reload: serialize a new fleet and POST it. In-flight queries
	// finish against the old snapshot; the next query sees version 2.
	moved := pnn.NewDataset([]pnn.PDF{
		pnn.MustUniform(30, 40),
		pnn.MustUniform(10, 14),
	})
	var buf bytes.Buffer
	if _, err := moved.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/dataset?source=moved", "text/plain", &buf)
	if err != nil {
		log.Fatal(err)
	}
	show("reload", resp)
	show("C-PNN q=12 after reload", get(base+"/v1/cpnn?q=12&p=0.3&delta=0.01"))
}

func get(url string) *http.Response {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	return resp
}

// show prints one response compactly, surfacing the cache disposition.
func show(label string, resp *http.Response) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, body); err != nil {
		compact.Write(body)
	}
	cache := resp.Header.Get("X-Cache")
	if cache != "" {
		cache = " cache=" + cache
	}
	fmt.Printf("%-26s [%d%s] %s\n", label, resp.StatusCode, cache, compact.Bytes())
}
