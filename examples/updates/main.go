// Updates walkthrough: the durable uncertain-object store end to end —
// open a data directory, insert moving sensor readings, query through an
// MVCC view, update and delete objects, checkpoint, then "crash" (close
// without ceremony) and recover everything.
//
// The LBS/sensor workloads the paper motivates are update-heavy: object
// pdfs change continuously. This example is that loop in miniature.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	pnn "repro"
)

func main() {
	dir := filepath.Join(os.TempDir(), "cpnn-updates-example")
	os.RemoveAll(dir)
	defer os.RemoveAll(dir)

	// Open (and implicitly create) the durable store. Every committed batch
	// is written to the write-ahead log and fsync'd before Apply returns.
	st, err := pnn.OpenStore(dir, pnn.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Three temperature sensors, each reporting an uncertainty interval.
	res, err := st.Apply([]pnn.StoreOp{
		pnn.InsertObjectOp(pnn.MustUniform(18, 22)), // sensor in the hallway
		pnn.InsertObjectOp(pnn.MustUniform(19, 21)), // sensor by the window
		pnn.InsertObjectOp(pnn.MustUniform(30, 40)), // sensor in the server room
	})
	if err != nil {
		log.Fatal(err)
	}
	ids := res.IDs
	fmt.Printf("inserted sensors %v (version %d)\n", ids, res.Version)

	// Query: which sensor most likely reads closest to 20°C? A view is one
	// immutable MVCC generation — engine answers use dense IDs, view.IDs
	// maps them back to the stable IDs the store assigned.
	answer := func(label string) {
		v := st.View()
		eng, err := pnn.EngineFromView(v)
		if err != nil {
			log.Fatal(err)
		}
		resq, err := eng.CPNN(20, pnn.Constraint{P: 0.3, Delta: 0.01}, pnn.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (version %d):\n", label, v.Version)
		for _, a := range resq.Answers {
			fmt.Printf("  sensor %d: P in [%.2f, %.2f]\n", v.IDs[a.ID], a.Bounds.L, a.Bounds.U)
		}
	}
	answer("C-PNN at 20°C")

	// The server-room sensor cools down and the window sensor drifts; the
	// whole batch commits atomically and bumps the version once.
	if _, err := st.Apply([]pnn.StoreOp{
		pnn.UpdateObjectOp(ids[2], pnn.MustUniform(19.5, 20.5)),
		pnn.UpdateObjectOp(ids[1], pnn.MustUniform(24, 26)),
	}); err != nil {
		log.Fatal(err)
	}
	answer("after updates")

	// Decommission the hallway sensor.
	if _, err := st.Apply([]pnn.StoreOp{pnn.DeleteObjectOp(ids[0])}); err != nil {
		log.Fatal(err)
	}
	answer("after delete")

	// Checkpoint: state serialized through 4 KiB pages, WAL truncated.
	if err := st.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	stats := st.Stats()
	fmt.Printf("checkpointed: %d checkpoint(s), WAL %d bytes\n", stats.Checkpoints, stats.WALBytes)

	// "Crash" and recover: reopen the directory and find the same state at
	// the same (monotonic) version.
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	re, err := pnn.OpenStore(dir, pnn.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	v := re.View()
	fmt.Printf("recovered: %d sensors at version %d\n", v.Dataset.Len(), v.Version)
}
