// Example batch evaluates a whole query workload in one engine call — the
// pattern for analytical sweeps (score every sensor along a corridor, every
// candidate site against a fleet) where queries arrive together and
// throughput matters more than single-query latency. CPNNBatch shares the
// filter index and recycles per-query scratch across a worker pool; answers
// are identical to calling CPNN once per point.
package main

import (
	"fmt"
	"log"
	"time"

	pnn "repro"
)

func main() {
	// A synthetic fleet in the paper's Long-Beach-like configuration, scaled
	// down so the example runs instantly.
	opt := pnn.LongBeachOptions(1)
	opt.N = 10000
	ds, err := pnn.GenerateUniform(opt)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pnn.New(ds)
	if err != nil {
		log.Fatal(err)
	}

	// 256 query points swept across the domain, answered in one batch.
	queries := pnn.QueryWorkload(256, opt.Domain, 7)
	c := pnn.Constraint{P: 0.3, Delta: 0.01}
	br, err := eng.CPNNBatch(queries, c, pnn.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}

	answered := 0
	for i, res := range br.Results {
		if len(res.Answers) > 0 {
			answered++
			if answered <= 3 { // show the first few non-empty answers
				fmt.Printf("q=%.1f: %d answers, e.g. object %d with p in [%.3f, %.3f]\n",
					queries[i], len(res.Answers),
					res.Answers[0].ID, res.Answers[0].Bounds.L, res.Answers[0].Bounds.U)
			}
		}
	}
	bs := br.Stats
	fmt.Printf("%d/%d queries had answers\n", answered, bs.Queries)
	fmt.Printf("batch wall %v over %d workers (%.0f queries/s); summed engine time %v\n",
		bs.Wall.Round(time.Microsecond), bs.Workers,
		float64(bs.Queries)/bs.Wall.Seconds(),
		bs.Aggregate.Total().Round(time.Microsecond))

	// The same points one call at a time, for the amortization comparison.
	start := time.Now()
	for _, q := range queries {
		if _, err := eng.CPNN(q, c, pnn.Options{}); err != nil {
			log.Fatal(err)
		}
	}
	singles := time.Since(start)
	fmt.Printf("loop of singles: %v — batch amortization %.2fx\n",
		singles.Round(time.Microsecond), float64(singles)/float64(bs.Wall))
}
