// Package pnn evaluates probabilistic nearest-neighbor queries over
// uncertain one-dimensional data, reproducing "Probabilistic Verifiers:
// Evaluating Constrained Nearest-Neighbor Queries over Uncertain Data"
// (Cheng, Chen, Mokbel, Chow — ICDE 2008).
//
// An uncertain object is a closed interval (its uncertainty region) plus a
// probability density over it. A Probabilistic Nearest-Neighbor query (PNN)
// returns each object's qualification probability — the chance it is the
// nearest neighbor of a query point. The Constrained PNN (C-PNN) adds a
// probability threshold P and tolerance Δ, letting the engine answer with
// cheap probability bounds instead of exact integrals: candidates are pruned
// by an R-tree filter, reduced to distance distributions by a shared
// derivation stage (parallel per-candidate folds serving both the 1-D and
// 2-D engines, with query-independent discretizations of analytic pdfs
// memoized across queries), bounded by the RS / L-SR / U-SR probabilistic
// verifiers, and only the stragglers reach incremental refinement.
//
// Quickstart:
//
//	ds := pnn.NewDataset([]pnn.PDF{
//		pnn.MustUniform(8, 18),
//		pnn.MustUniform(9, 13),
//	})
//	eng, err := pnn.New(ds)
//	if err != nil { ... }
//	res, err := eng.CPNN(12, pnn.Constraint{P: 0.3, Delta: 0.01}, pnn.Options{})
//	for _, a := range res.Answers {
//		fmt.Println(a.ID, a.Bounds)
//	}
//
// The package is a facade over the building blocks in internal/: the query
// engine (internal/core), verifiers (internal/verify), subregion tables
// (internal/subregion), distance distributions (internal/dist), the R-tree
// (internal/rtree) and refinement integrators (internal/refine).
package pnn

import (
	"io"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/monitor"
	"repro/internal/pdf"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// Engine answers PNN, C-PNN, min/max and constrained k-NN queries over one
// dataset. Create one with New.
type Engine = core.Engine

// New indexes a dataset and returns a query engine.
func New(ds *Dataset) (*Engine, error) { return core.NewEngine(ds) }

// Core query types, re-exported from the engine.
type (
	// Options tunes query evaluation; the zero value uses the paper's
	// defaults (VR strategy, RS → L-SR → U-SR chain, 300-bar histograms).
	Options = core.Options
	// Result is a C-PNN answer set with statistics.
	Result = core.Result
	// Answer is one classified object of a result.
	Answer = core.Answer
	// Stats records per-phase query costs.
	Stats = core.Stats
	// Strategy selects the evaluation method.
	Strategy = core.Strategy
	// Probability pairs an object ID with its exact qualification
	// probability (PNN output).
	Probability = core.Probability
	// KNNOptions tunes constrained k-NN evaluation.
	KNNOptions = core.KNNOptions
	// KNNAnswer is one object of a constrained k-NN result.
	KNNAnswer = core.KNNAnswer
)

// Batch evaluation, re-exported from the engine: Engine.CPNNBatch and
// Engine2D.CPNNBatch evaluate many query points over a bounded worker pool,
// sharing the filter index and discretization memo and recycling per-query
// scratch, with answers identical to calling CPNN per point.
type (
	// BatchOptions tunes 1-D batch evaluation (embedded Options + Workers).
	BatchOptions = core.BatchOptions
	// BatchOptions2D tunes planar batch evaluation.
	BatchOptions2D = core.BatchOptions2D
	// BatchResult is one Result per query point plus batch statistics.
	BatchResult = core.BatchResult
	// BatchStats aggregates the costs of one batch evaluation.
	BatchStats = core.BatchStats
)

// Evaluation strategies (paper §V).
const (
	// StrategyVR runs verification then incremental refinement — the
	// paper's solution and the default.
	StrategyVR = core.VR
	// StrategyRefine skips verification.
	StrategyRefine = core.Refine
	// StrategyBasic computes every candidate's exact probability.
	StrategyBasic = core.Basic
)

// Constraint and classification types, re-exported from the verifier layer.
type (
	// Constraint carries the C-PNN threshold P ∈ (0,1] and tolerance
	// Δ ∈ [0,1] of Definition 1.
	Constraint = verify.Constraint
	// Bounds is a closed probability bound [L, U].
	Bounds = verify.Bounds
	// Status is a classifier label.
	Status = verify.Status
	// Verifier is one bound-tightening pass; see DefaultVerifiers.
	Verifier = verify.Verifier
)

// Classifier labels.
const (
	// StatusUnknown means the bounds cannot yet decide the object.
	StatusUnknown = verify.Unknown
	// StatusSatisfy means the object is part of the answer.
	StatusSatisfy = verify.Satisfy
	// StatusFail means the object can never satisfy the query.
	StatusFail = verify.Fail
)

// DefaultVerifiers returns the paper's verifier chain: RS, L-SR, U-SR, in
// ascending cost order.
func DefaultVerifiers() []Verifier { return verify.DefaultChain() }

// Data-model types, re-exported from the uncertainty layer.
type (
	// Dataset is an immutable collection of uncertain objects.
	Dataset = uncertain.Dataset
	// Object is one uncertain value: an uncertainty region with a pdf.
	Object = uncertain.Object
	// GenOptions configures the synthetic dataset generators.
	GenOptions = uncertain.GenOptions
	// PDF is a probability density over a closed interval.
	PDF = pdf.PDF
	// Uniform is the uniform density over an interval.
	Uniform = pdf.Uniform
	// TruncGaussian is a Gaussian truncated to an interval.
	TruncGaussian = pdf.TruncGaussian
	// Histogram is a piecewise-constant density.
	Histogram = pdf.Histogram
)

// NewDataset builds a dataset from pdfs, assigning sequential IDs.
func NewDataset(pdfs []PDF) *Dataset { return uncertain.NewDataset(pdfs) }

// NewUniform returns the uniform pdf over [lo, hi].
func NewUniform(lo, hi float64) (Uniform, error) { return pdf.NewUniform(lo, hi) }

// MustUniform is NewUniform that panics on error, for literals and tests.
func MustUniform(lo, hi float64) Uniform { return pdf.MustUniform(lo, hi) }

// NewGaussian returns a Gaussian with the given mean and standard deviation
// truncated to [lo, hi].
func NewGaussian(lo, hi, mu, sigma float64) (TruncGaussian, error) {
	return pdf.NewTruncGaussian(lo, hi, mu, sigma)
}

// PaperGaussian returns the paper's §V.5 Gaussian parameterization: mean at
// the region center, sigma = width/6.
func PaperGaussian(lo, hi float64) (TruncGaussian, error) { return pdf.PaperGaussian(lo, hi) }

// NewHistogram builds a histogram pdf from bin edges and non-negative bin
// weights (normalized to unit mass).
func NewHistogram(edges, weights []float64) (*Histogram, error) {
	return pdf.NewHistogram(edges, weights)
}

// GenerateUniform generates a synthetic dataset of uniform-pdf objects.
func GenerateUniform(opt GenOptions) (*Dataset, error) { return uncertain.GenerateUniform(opt) }

// GenerateGaussian generates a synthetic dataset of truncated-Gaussian
// objects discretized to the given number of histogram bars.
func GenerateGaussian(opt GenOptions, bars int) (*Dataset, error) {
	return uncertain.GenerateGaussian(opt, bars)
}

// LongBeachOptions mirrors the paper's Long Beach workload: 53,144 intervals
// over a 10K-unit dimension, calibrated to the paper's ~96-object candidate
// sets.
func LongBeachOptions(seed int64) GenOptions { return uncertain.LongBeachOptions(seed) }

// QueryWorkload returns n deterministic query points over the generation
// domain.
func QueryWorkload(n int, domain float64, seed int64) []float64 {
	return uncertain.QueryWorkload(n, domain, seed)
}

// ReadQueries parses a query-workload file (one finite point per line, '#'
// comments allowed) — the format of cpnn-query -batch and cpnn-bench
// -replay.
func ReadQueries(r io.Reader) ([]float64, error) { return uncertain.ReadQueries(r) }

// WriteQueries serializes a query workload, one point per line.
func WriteQueries(w io.Writer, qs []float64) error { return uncertain.WriteQueries(w, qs) }

// Serving layer, re-exported from internal/server: a concurrent HTTP/JSON
// query service with a sharded result cache, singleflight collapsing of
// identical in-flight queries, a bounded evaluation pool and atomic dataset
// snapshot reloads.
type (
	// Server is a long-lived concurrent C-PNN query service.
	Server = server.Server
	// ServerConfig configures a Server; only Dataset is required.
	ServerConfig = server.Config
	// Snapshot is one immutable generation of a server's dataset.
	Snapshot = server.Snapshot
)

// NewServer builds a query service around an initial dataset. Serve it with
// http.ListenAndServe(addr, srv.Handler()) or mount Handler() in a larger
// mux; cmd/cpnn-serve is the stand-alone binary.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Durable store, re-exported from internal/store: a write-ahead-logged,
// checkpointed, crash-recovering uncertain-object store with MVCC views and
// live (incremental, copy-on-write) filter-index maintenance. Attach one to
// a ServerConfig to make every server mutation durable, or drive it
// directly with Apply.
type (
	// Store is the durable mutation subsystem. Open one with OpenStore.
	Store = store.Store
	// StoreOptions tunes durability (fsync, checkpoint cadence).
	StoreOptions = store.Options
	// StoreView is one immutable MVCC generation: dataset, stable-ID
	// mapping, filter index, 2-D disks.
	StoreView = store.View
	// StoreOp is one logged operation; build them with the *Op helpers.
	StoreOp = store.Op
	// StoreStats snapshots the store's operational counters.
	StoreStats = store.Stats
	// StoreApplyResult reports a committed batch (assigned IDs, version).
	StoreApplyResult = store.ApplyResult
	// StoreDisk is one live 2-D object of a view.
	StoreDisk = store.Disk
)

// OpenStore opens (creating or crash-recovering) a durable store in dir.
func OpenStore(dir string, opt StoreOptions) (*Store, error) { return store.Open(dir, opt) }

// InsertObjectOp returns the op inserting a 1-D object (uniform or
// histogram pdf); the store assigns its stable ID at commit.
func InsertObjectOp(p PDF) StoreOp { return store.InsertObject(p) }

// UpdateObjectOp returns the op replacing object id's pdf.
func UpdateObjectOp(id uint64, p PDF) StoreOp { return store.UpdateObject(id, p) }

// InsertDiskOp returns the op inserting a 2-D disk object.
func InsertDiskOp(c Circle) StoreOp { return store.InsertDisk(c) }

// UpdateDiskOp returns the op replacing object id's disk region.
func UpdateDiskOp(id uint64, c Circle) StoreOp { return store.UpdateDisk(id, c) }

// DeleteObjectOp returns the op removing object id (either family).
func DeleteObjectOp(id uint64) StoreOp { return store.Delete(id) }

// TruncateOp returns the op removing every object.
func TruncateOp() StoreOp { return store.Truncate() }

// DatasetToOps converts a dataset into the truncate+insert batch that loads
// it durably.
func DatasetToOps(ds *Dataset) ([]StoreOp, error) { return store.DatasetOps(ds) }

// EngineFromView wraps a store view's dataset and incrementally-maintained
// index in a query engine without rebuilding anything. Engine answer IDs
// are the view's dense IDs; translate through view.IDs for stable IDs.
func EngineFromView(v *StoreView) (*Engine, error) {
	return core.NewEngineWithIndex(v.Dataset, v.Index)
}

// Change feed, re-exported from internal/store: every committed batch
// publishes one StoreDelta (the new view plus changed-object rectangles) to
// Store.Watch subscribers — the substrate of continuous monitoring.
type (
	// StoreDelta is one committed group's effect.
	StoreDelta = store.Delta
	// StoreChange is one changed object with its old/new MBRs.
	StoreChange = store.Change
	// StoreSub is one change-feed subscription (Store.Watch).
	StoreSub = store.Sub
)

// Continuous queries, re-exported from internal/monitor: standing
// C-PNN/PNN/k-NN queries maintained incrementally over the store's change
// feed. Each evaluation's critical distance (the filtering bound f_min, or
// f_k for k-NN) becomes an influence interval indexed in an R-tree; a
// committed batch spatially joins its changed rectangles against those
// intervals and re-evaluates only the queries it can possibly affect —
// answer updates are pushed to subscribers.
type (
	// Monitor maintains standing queries over a store. Create with NewMonitor.
	Monitor = monitor.Monitor
	// MonitorConfig configures a Monitor; Store is required.
	MonitorConfig = monitor.Config
	// MonitorSpec describes one standing query.
	MonitorSpec = monitor.Spec
	// MonitorKind selects the standing-query flavor (cpnn, pnn, knn).
	MonitorKind = monitor.Kind
	// MonitorState is a snapshot of one standing query.
	MonitorState = monitor.State
	// MonitorUpdate is one pushed answer change.
	MonitorUpdate = monitor.Update
	// MonitorSubscription consumes pushed updates.
	MonitorSubscription = monitor.Subscription
	// MonitorEvent is one subscription delivery (update or lagged).
	MonitorEvent = monitor.Event
	// MonitorStats snapshots the monitor's counters (re-evals, pruned, ...).
	MonitorStats = monitor.Stats
)

// Standing-query kinds.
const (
	// MonitorCPNN is a standing constrained PNN.
	MonitorCPNN = monitor.KindCPNN
	// MonitorPNN is a standing unconstrained PNN.
	MonitorPNN = monitor.KindPNN
	// MonitorKNN is a standing constrained k-NN.
	MonitorKNN = monitor.KindKNN
)

// Subscription event types.
const (
	// MonitorEventUpdate carries a changed answer.
	MonitorEventUpdate = monitor.EventUpdate
	// MonitorEventLagged reports dropped updates on a slow subscriber.
	MonitorEventLagged = monitor.EventLagged
)

// NewMonitor builds and starts a continuous-query monitor over a store's
// change feed.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) { return monitor.New(cfg) }

// Replication, re-exported from internal/replica: a primary streams its WAL
// to followers over TCP (raw payload bytes, so replicas are byte-identical);
// each follower replays the stream into its own durable store and publishes
// the same MVCC views, change feed and monitors the primary would — attach
// the Follower to a ServerConfig (field Replica) for a read replica that
// serves 503 until caught up and redirects writes to the primary.
type (
	// ReplicationServer streams a store's WAL to followers. Create with
	// StartReplication.
	ReplicationServer = replica.Server
	// ReplicationConfig configures a ReplicationServer; Store and Addr are
	// required.
	ReplicationConfig = replica.ServerConfig
	// ReplicationStats counts followers, shipped records/bytes, snapshots.
	ReplicationStats = replica.ServerStats
	// Follower replicates a primary's WAL into a follower store. Create
	// with StartFollower over an OpenFollowerStore store.
	Follower = replica.Follower
	// FollowerConfig configures a Follower; Store and Primary are required.
	FollowerConfig = replica.FollowerConfig
	// FollowerStats snapshots a follower's replication counters and lag.
	FollowerStats = replica.FollowerStats
	// ReplicationLag measures a follower's distance behind its primary in
	// versions, seconds and WAL bytes.
	ReplicationLag = replica.Lag
	// StoreRole says whether a store accepts local writes (primary) or only
	// replicated ones (follower).
	StoreRole = store.Role
)

// ErrFollowerStore is the error a follower store's Apply returns: local
// writes must be routed to the primary.
var ErrFollowerStore = store.ErrFollower

// OpenFollowerStore opens (creating or crash-recovering) a follower store in
// dir: local writes are refused, only a Follower's replicated commits apply.
func OpenFollowerStore(dir string, opt StoreOptions) (*Store, error) {
	return store.OpenFollower(dir, opt)
}

// StartReplication starts streaming a store's WAL to followers.
func StartReplication(cfg ReplicationConfig) (*ReplicationServer, error) {
	return replica.StartServer(cfg)
}

// StartFollower connects a follower store to a primary's replication address
// and keeps it caught up; see examples/replicaset for the full loop.
func StartFollower(cfg FollowerConfig) (*Follower, error) { return replica.StartFollower(cfg) }

// Two-dimensional support (the paper's §IV-A extension): disk-shaped
// uncertainty regions reduce to distance pdfs and reuse the whole pipeline.
type (
	// Engine2D answers C-PNN queries over planar uncertain objects.
	Engine2D = core.Engine2D
	// Object2D is a disk-shaped uncertain object.
	Object2D = core.Object2D
	// Options2D tunes 2-D query evaluation.
	Options2D = core.Options2D
	// Point is a point in the plane.
	Point = geom.Point
	// Circle is a disk-shaped uncertainty region.
	Circle = geom.Circle
)

// New2D indexes planar uncertain objects and returns a 2-D query engine.
func New2D(objs []Object2D) (*Engine2D, error) { return core.NewEngine2D(objs) }

// Sharded scatter-gather serving (internal/shard): a store's domain split
// into K spatial shards, writes routed by owning shard, queries fanned only
// to shards whose extent intersects the candidate ball, and the merged
// candidates verified by one exact single-engine pass — answers are
// byte-identical to a single store's.
type (
	// ShardCluster is a set of locally-open member stores plus routing
	// metadata. Create with CreateShardCluster or OpenShardCluster.
	ShardCluster = shard.Cluster
	// ShardMeta is the durable cluster layout (member count, routing cuts,
	// cluster-wide ID counter).
	ShardMeta = shard.Meta
	// ShardRouter is the scatter-gather front of a shard cluster.
	ShardRouter = shard.Router
	// ShardRouterConfig assembles a ShardRouter over Members and Cuts.
	ShardRouterConfig = shard.RouterConfig
	// ShardMember is one shard in a router's view: a local store or a
	// remote process speaking the wire protocol.
	ShardMember = shard.Member
	// ShardStats snapshots a router's fan-out, retry and skew counters.
	ShardStats = shard.Stats
	// ShardMonitor hosts standing queries over a cluster's member change
	// feeds, answers always matching a scatter-gather read.
	ShardMonitor = shard.Monitor
)

// ErrShardUnavailable marks a query or write that needed an unreachable
// member; servers map it to 503 + Retry-After.
var ErrShardUnavailable = shard.ErrUnavailable

// CreateShardCluster partitions a store view's objects into k STR-packed
// shards under dir, preserving every stable ID.
func CreateShardCluster(dir string, k int, view *StoreView, opt StoreOptions) (*ShardCluster, error) {
	return shard.CreateCluster(dir, k, view, opt)
}

// OpenShardCluster opens every member store of an existing cluster.
func OpenShardCluster(dir string, opt StoreOptions) (*ShardCluster, error) {
	return shard.OpenCluster(dir, opt)
}

// SplitStore partitions an existing single-store directory into a k-shard
// cluster under dstDir, leaving the source untouched.
func SplitStore(srcDir, dstDir string, k int, opt StoreOptions) (ShardMeta, error) {
	return shard.SplitStore(srcDir, dstDir, k, opt)
}
