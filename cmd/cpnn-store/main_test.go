package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pdf"
	"repro/internal/store"
)

func populated(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Apply([]store.Op{
		store.InsertObject(pdf.MustUniform(0, 10)),
		store.InsertObject(pdf.MustUniform(5, 15)),
		store.InsertObject(pdf.MustHistogram([]float64{20, 21, 22}, []float64{1, 3})),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestInspect(t *testing.T) {
	dir := populated(t)
	var sb strings.Builder
	if err := run([]string{"-dir", dir, "inspect"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"version:      1", "objects (1d): 3", "checkpoint:   none", "wal tail:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
	// Footprint lines: pre-checkpoint everything is overlay, nothing on disk.
	for _, want := range []string{"base pages:   0", "cache budget:", "overlay:      3 slots resident, 0 served from base"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing footprint %q:\n%s", want, out)
		}
	}

	// After compaction the picture inverts: payloads live behind the page
	// cache, the overlay is empty.
	sb.Reset()
	if err := run([]string{"-dir", dir, "-no-fsync", "compact"}, &sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if !strings.Contains(out, "overlay:      0 slots resident, 3 served from base") {
		t.Fatalf("post-compact inspect footprint:\n%s", out)
	}
	if strings.Contains(out, "base pages:   0") {
		t.Fatalf("post-compact inspect reports no base pages:\n%s", out)
	}
}

func TestCompactThenVerify(t *testing.T) {
	dir := populated(t)
	var sb strings.Builder
	if err := run([]string{"-dir", dir, "-no-fsync", "compact"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wal tail:     0 bytes") {
		t.Fatalf("compact did not reset WAL:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "checkpoint age:") {
		t.Fatalf("compact output lacks the checkpoint age:\n%s", sb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.db")); err != nil {
		t.Fatal(err)
	}

	sb.Reset()
	if err := run([]string{"-dir", dir, "verify"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ok: 3 objects") {
		t.Fatalf("verify output:\n%s", sb.String())
	}
}

func TestVerifyDetectsTornTail(t *testing.T) {
	dir := populated(t)
	// Tear the WAL tail: verify must still succeed (recovery drops it) and
	// inspect must report the tear.
	path := filepath.Join(dir, "wal.log")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-dir", dir, "inspect"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "torn tail detected") {
		t.Fatalf("inspect did not report the tear:\n%s", sb.String())
	}
}

func TestRunBadArgs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("missing -dir accepted")
	}
	if err := run([]string{"-dir", t.TempDir(), "frobnicate"}, &sb); err == nil {
		t.Fatal("unknown command accepted")
	}
}

// TestSplitThenVerifyCluster splits a store into a cluster and checks that
// inspect/verify fan out over every member, the object counts add up, and
// the source directory is untouched.
func TestSplitThenVerifyCluster(t *testing.T) {
	dir := populated(t)
	cluster := filepath.Join(t.TempDir(), "cluster")

	var sb strings.Builder
	if err := run([]string{"-dir", dir, "-into", cluster, "-shards", "2", "-no-fsync", "split"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "split: 2 shards under") {
		t.Fatalf("split output:\n%s", sb.String())
	}

	sb.Reset()
	if err := run([]string{"-dir", cluster, "verify"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"--- shard 0/2", "--- shard 1/2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cluster verify missing %q:\n%s", want, out)
		}
	}

	// The members hold the three objects between them.
	sb.Reset()
	if err := run([]string{"-dir", cluster, "inspect"}, &sb); err != nil {
		t.Fatal(err)
	}
	total := strings.Count(sb.String(), "objects (1d): 1") + 2*strings.Count(sb.String(), "objects (1d): 2") +
		3*strings.Count(sb.String(), "objects (1d): 3")
	if total != 3 {
		t.Fatalf("cluster inspect object counts do not sum to 3:\n%s", sb.String())
	}

	// The source store still opens and verifies on its own.
	sb.Reset()
	if err := run([]string{"-dir", dir, "verify"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ok: 3 objects") {
		t.Fatalf("source verify after split:\n%s", sb.String())
	}

	// Cluster-level compact is refused with a pointer at the member dirs.
	if err := run([]string{"-dir", cluster, "compact"}, &sb); err == nil {
		t.Fatal("cluster compact accepted")
	}

	// Split flags without the split command are refused.
	if err := run([]string{"-dir", dir, "-into", cluster, "inspect"}, &sb); err == nil {
		t.Fatal("-into without split accepted")
	}
	if err := run([]string{"-dir", dir, "split"}, &sb); err == nil {
		t.Fatal("split without -into/-shards accepted")
	}
}
