// Command cpnn-store administers a cpnn-serve data directory.
//
//	cpnn-store -dir DIR inspect   # print version/seq/object counts/WAL state
//	cpnn-store -dir DIR compact   # checkpoint and truncate the WAL
//	cpnn-store -dir DIR verify    # recover, validate every pdf, run a probe query
//	cpnn-store -dir DIR -into CLUSTER -shards 4 split
//	                              # partition DIR into a 4-shard cluster
//
// When -dir points at a shard cluster directory (one holding shard.json),
// inspect and verify run against every member store in turn.
//
// All commands open the store through the normal recovery path — they take
// the directory's exclusive lock (a live server must be stopped first), and
// a torn WAL tail left by a crash is detected, reported, and truncated away
// exactly as a server boot would truncate it. Copy the directory first if
// the torn bytes themselves matter for a post-mortem. Beyond that recovery,
// inspect, verify and split make no changes to the source directory.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/verify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "cpnn-store:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cpnn-store", flag.ContinueOnError)
	dir := fs.String("dir", "", "store directory (required)")
	noSync := fs.Bool("no-fsync", false, "skip fsyncs (compact/split only; faster on scratch copies)")
	into := fs.String("into", "", "split: destination cluster directory")
	shards := fs.Int("shards", 0, "split: member count K")
	var lo obs.LogOptions
	lo.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := lo.Logger(os.Stderr, "cpnn-store")
	if err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	cmd := fs.Arg(0)
	if cmd == "" {
		cmd = "inspect"
	}

	if cmd == "split" {
		// SplitStore opens the source itself (briefly, read-only in effect),
		// so it must run before this process takes the directory lock.
		if *into == "" || *shards < 1 {
			return fmt.Errorf("split requires -into DIR and -shards K")
		}
		logger.Info("splitting store", "src", *dir, "into", *into, "shards", *shards)
		meta, err := shard.SplitStore(*dir, *into, *shards, store.Options{NoSync: *noSync, Logger: logger})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "split: %d shards under %s (cuts %v, next id %d)\n",
			meta.Shards, *into, meta.Cuts, meta.NextID)
		return nil
	}
	if *into != "" || *shards != 0 {
		return fmt.Errorf("-into/-shards apply to the split command")
	}

	// Refuse directories that hold neither store files nor nothing — a guard
	// against pointing the tool at an unrelated directory.
	if cmd != "compact" {
		if _, err := os.Stat(*dir); err != nil {
			return err
		}
	}

	// A cluster directory fans inspect/verify out over every member store.
	if meta, err := shard.ReadMeta(*dir); err == nil {
		if cmd == "compact" {
			return fmt.Errorf("compact one member at a time (e.g. -dir %s)", shard.Dir(*dir, 0))
		}
		for i := 0; i < meta.Shards; i++ {
			fmt.Fprintf(out, "--- shard %d/%d: %s\n", i, meta.Shards, shard.Dir(*dir, i))
			if err := runOne(shard.Dir(*dir, i), cmd, *noSync, logger, out); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
		return nil
	}
	return runOne(*dir, cmd, *noSync, logger, out)
}

// runOne opens one store directory and applies cmd to it. Recovery events
// (torn-tail truncation, replay progress) surface through the structured
// logger; command output itself stays on out.
func runOne(dir, cmd string, noSync bool, logger *slog.Logger, out io.Writer) error {
	s, err := store.Open(dir, store.Options{NoSync: noSync, Logger: logger})
	if err != nil {
		return err
	}
	defer s.Close()

	switch cmd {
	case "inspect":
		return inspect(out, dir, s)
	case "compact":
		if err := s.Checkpoint(); err != nil {
			return err
		}
		fmt.Fprintf(out, "compacted: checkpoint written, WAL reset\n")
		return inspect(out, dir, s)
	case "verify":
		return verifyStore(out, s)
	default:
		return fmt.Errorf("unknown command %q (inspect, compact, verify, split)", cmd)
	}
}

func inspect(out io.Writer, dir string, s *store.Store) error {
	st := s.Stats()
	fmt.Fprintf(out, "version:      %d\n", st.Version)
	fmt.Fprintf(out, "seq:          %d\n", st.Seq)
	fmt.Fprintf(out, "objects (1d): %d\n", st.Objects1D)
	fmt.Fprintf(out, "objects (2d): %d\n", st.Objects2D)
	// Compaction debt at a glance: the WAL tail is what the next boot must
	// replay, and the checkpoint age is how long it has been accruing.
	fmt.Fprintf(out, "wal tail:     %d bytes\n", st.WALBytes)
	fmt.Fprintf(out, "wal records:  %d since checkpoint\n", st.WALRecords)
	if st.TornTailDropped {
		fmt.Fprintf(out, "wal:          torn tail detected and dropped during recovery\n")
	}
	if info, err := os.Stat(filepath.Join(dir, "checkpoint.db")); err == nil {
		fmt.Fprintf(out, "checkpoint:   %d bytes (%d pages)\n", info.Size(), info.Size()/4096)
		fmt.Fprintf(out, "checkpoint age: %.0f seconds\n", time.Since(info.ModTime()).Seconds())
	} else {
		fmt.Fprintf(out, "checkpoint:   none\n")
	}
	// On-disk vs in-memory footprint: how much of the dataset lives behind
	// the page cache, and how deep the MVCC overlay has grown since the last
	// flatten (each overlay slot holds a decoded payload in memory).
	fmt.Fprintf(out, "base pages:   %d (%d bytes on disk)\n", st.BasePages, st.BasePages*4096)
	fmt.Fprintf(out, "cache budget: %d bytes (%d resident pages, %d hits, %d misses, %d evictions)\n",
		st.CacheBytes, st.PageCache.ResidentPages, st.PageCache.Hits, st.PageCache.Misses, st.PageCache.Evictions)
	fmt.Fprintf(out, "overlay:      %d slots resident, %d served from base\n", st.OverlaySlots, st.BaseSlots)
	// A replica.json marks the dir as a replication follower's: report where
	// the data came from and the stream state as of the last update.
	rs, ok, err := replica.ReadState(dir)
	if err != nil {
		return err
	}
	if ok {
		fmt.Fprintf(out, "role:         %s (replicated from %s)\n", rs.Role, rs.Source)
		if rs.PrimaryHTTP != "" {
			fmt.Fprintf(out, "primary http: %s\n", rs.PrimaryHTTP)
		}
		caught := "still syncing"
		if rs.CaughtUp {
			caught = "caught up"
		}
		fmt.Fprintf(out, "replication:  %s; applied seq %d (version %d)\n", caught, rs.AppliedSeq, rs.AppliedVersion)
		fmt.Fprintf(out, "replication:  %d reconnects, %d snapshot bootstraps; state written %.0f seconds ago\n",
			rs.Reconnects, rs.SnapshotBootstraps, time.Since(time.Unix(rs.UpdatedUnix, 0)).Seconds())
		if rs.AppliedSeq != st.Seq {
			fmt.Fprintf(out, "replication:  note: store is at seq %d (the state file trails live commits)\n", st.Seq)
		}
	}
	return nil
}

// verifyStore proves the recovered state is servable: every pdf validates
// and a C-PNN probe at the domain center runs end to end.
func verifyStore(out io.Writer, s *store.Store) error {
	v := s.View()
	if err := v.Dataset.Validate(); err != nil {
		return fmt.Errorf("dataset validation: %w", err)
	}
	if v.Dataset.Len() == 0 {
		fmt.Fprintf(out, "ok: empty store (version %d)\n", v.Version)
		return nil
	}
	eng, err := core.NewEngineWithIndex(v.Dataset, v.Index)
	if err != nil {
		return err
	}
	dom := v.Dataset.Domain()
	q := dom.Center()
	res, err := eng.CPNN(q, verify.Constraint{P: 0.3, Delta: 0.01}, core.Options{})
	if err != nil {
		return fmt.Errorf("probe query at %g: %w", q, err)
	}
	fmt.Fprintf(out, "ok: %d objects, version %d, probe q=%g -> %d candidates, %d answers\n",
		v.Dataset.Len(), v.Version, q, res.Stats.Candidates, len(res.Answers))
	return nil
}
