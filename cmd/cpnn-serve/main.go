// Command cpnn-serve runs the C-PNN query service: a long-lived engine
// behind an HTTP/JSON API with a sharded result cache, singleflight
// collapsing, a bounded evaluation pool, atomic dataset reloads — and, with
// -data-dir, a durable store: object-level updates through a write-ahead
// log, checkpoints, and crash recovery on boot.
//
// Replication: a primary with -replicate-addr streams its WAL to followers;
// a process started with -follow (plus its own -data-dir) replays that
// stream into a local read-only store and serves queries, monitors and SSE
// off the replayed views — answering 503 until its first catch-up and
// redirecting writes to the primary's -advertise-http address.
//
// Examples:
//
//	cpnn-serve -gen -addr :8080                 # serve the Long-Beach-like dataset
//	cpnn-serve -data intervals.txt -quantum 1   # serve a file, snap queries to 1 unit
//	cpnn-serve -gen -data-dir /var/lib/cpnn     # durable: updates survive restarts
//
//	# primary + read replica
//	cpnn-serve -gen -data-dir /var/lib/cpnn -replicate-addr :7071 -advertise-http http://10.0.0.1:8080
//	cpnn-serve -addr :8081 -data-dir /var/lib/cpnn-replica -follow 10.0.0.1:7071
//
//	curl 'localhost:8080/v1/cpnn?q=5000&p=0.3&delta=0.01'
//	curl 'localhost:8080/v1/pnn?q=5000'
//	curl 'localhost:8080/v1/knn?q=5000&k=3&p=0.3'
//	curl -X POST --data-binary @new.txt 'localhost:8080/v1/dataset?source=new.txt'
//	curl -X POST -d '{"objects":[{"uniform":{"lo":10,"hi":20}}]}' localhost:8080/v1/objects
//	curl -X DELETE 'localhost:8080/v1/objects?id=7'
//	curl -X POST -d '{"kind":"cpnn","q":5000,"p":0.3}' localhost:8080/v1/monitors
//	curl -N 'localhost:8080/v1/subscribe'          # SSE stream of answer updates
//	curl 'localhost:8080/metrics'
//
// On SIGINT/SIGTERM the server drains gracefully: /healthz flips to
// not-ready, in-flight requests finish (up to -drain-timeout), then the WAL
// is checkpointed, flushed and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/uncertain"
)

func main() {
	if err := run(context.Background(), os.Args[1:], nil); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h already printed usage; that is not a failure
		}
		fmt.Fprintln(os.Stderr, "cpnn-serve:", err)
		os.Exit(1)
	}
}

// serveOpts collects the data-source and replication flags that decide how
// the server is assembled.
type serveOpts struct {
	dataPath string
	gen      bool
	seed     int64
	dataDir  string
	noSync   bool

	follow        string // replica mode: primary's replication address
	replicateAddr string // primary mode: replication listen address
	advertiseHTTP string // write-redirect target sent to followers
}

// run is the whole program behind main, factored out so tests can drive the
// graceful-shutdown path with a cancelable context. ready, when non-nil,
// receives the bound address once the listener is up.
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("cpnn-serve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		dataPath     = fs.String("data", "", "dataset file (cpnn-datagen format)")
		gen          = fs.Bool("gen", false, "generate the Long-Beach-like dataset instead of loading one")
		seed         = fs.Int64("seed", 1, "generator seed for -gen")
		dataDir      = fs.String("data-dir", "", "durable store directory (enables /v1/objects, WAL, crash recovery)")
		noSync       = fs.Bool("no-fsync", false, "skip the per-commit fsync (faster, loses recent batches on crash)")
		replAddr     = fs.String("replicate-addr", "", "replication listen address: stream the WAL to followers (requires -data-dir)")
		follow       = fs.String("follow", "", "run as a read replica of this primary replication address (requires -data-dir)")
		advertise    = fs.String("advertise-http", "", "HTTP URL advertised to followers as the write-redirect target (with -replicate-addr)")
		quantum      = fs.Float64("quantum", 0, "cache query-point quantization granularity (0 = exact keys)")
		cacheSize    = fs.Int("cache", server.DefaultCacheEntries, "result-cache capacity in entries (negative disables)")
		cacheShards  = fs.Int("cache-shards", server.DefaultCacheShards, "result-cache shard count")
		maxInFlight  = fs.Int("max-inflight", 0, "max concurrent evaluations (0 = 2×GOMAXPROCS)")
		queueTimeout = fs.Duration("queue-timeout", 0, "max wait for a worker slot before shedding a 503 (0 = 10s, negative = wait forever)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
		monWorkers   = fs.Int("monitor-workers", 0, "continuous-query re-evaluation workers (0 = GOMAXPROCS; store mode only)")
		monStateB    = fs.Int64("monitor-state-bytes", 0, "memory cap for per-query incremental evaluation states (0 = 64 MiB default, negative = uncapped; store mode only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, fol, repl, source, err := buildServer(serveOpts{
		dataPath: *dataPath, gen: *gen, seed: *seed,
		dataDir: *dataDir, noSync: *noSync,
		follow: *follow, replicateAddr: *replAddr, advertiseHTTP: *advertise,
	}, server.Config{
		Quantum:           *quantum,
		CacheEntries:      *cacheSize,
		CacheShards:       *cacheShards,
		MaxInFlight:       *maxInFlight,
		QueueTimeout:      *queueTimeout,
		MonitorWorkers:    *monWorkers,
		MonitorStateBytes: *monStateB,
	})
	if err != nil {
		return err
	}
	// Replication teardown order matters: the follower stops applying before
	// the replication listener stops streaming, and both before the server
	// checkpoints and closes the store.
	closeAll := func() error {
		if fol != nil {
			fol.Close()
		}
		if repl != nil {
			repl.Close()
		}
		return srv.Close()
	}
	if fol != nil {
		log.Printf("cpnn-serve: replica of %s, serving on %s (reads 503 until caught up)", fol.Source(), *addr)
	} else {
		log.Printf("cpnn-serve: serving %d objects (%s, version %d) on %s",
			srv.Snapshot().Objects, source, srv.Snapshot().Version, *addr)
	}
	if repl != nil {
		log.Printf("cpnn-serve: replicating the WAL on %s", repl.Addr())
	}

	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	ln, err := listen(*addr)
	if err != nil {
		closeAll()
		return err
	}
	go func() { errCh <- httpSrv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errCh:
		closeAll()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: not-ready first, then stop accepting and wait for
	// in-flight requests, then flush the store to disk.
	log.Printf("cpnn-serve: draining (max %v)", *drainTimeout)
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("cpnn-serve: shutdown: %v", err)
	}
	if err := closeAll(); err != nil && !errors.Is(err, store.ErrClosed) {
		return fmt.Errorf("closing store: %w", err)
	}
	log.Printf("cpnn-serve: stopped cleanly")
	return nil
}

// buildServer validates flags, loads or recovers the dataset, attaches
// replication, and assembles the server. All user input is checked before
// any engine is built. The returned follower and replication listener are
// nil unless -follow / -replicate-addr asked for them.
func buildServer(o serveOpts, cfg server.Config) (*server.Server, *replica.Follower, *replica.Server, string, error) {
	var (
		st   *store.Store
		fol  *replica.Follower
		repl *replica.Server
	)
	fail := func(err error) (*server.Server, *replica.Follower, *replica.Server, string, error) {
		if fol != nil {
			fol.Close()
		}
		if repl != nil {
			repl.Close()
		}
		if st != nil {
			st.Close()
		}
		return nil, nil, nil, "", err
	}

	if o.follow != "" {
		// Replica mode: the dataset comes from the primary, never from flags.
		if o.dataDir == "" {
			return fail(fmt.Errorf("-follow requires -data-dir (the replica keeps its own durable copy)"))
		}
		if o.gen || o.dataPath != "" {
			return fail(fmt.Errorf("-follow is mutually exclusive with -gen/-data: the dataset is replicated from the primary"))
		}
		var err error
		st, err = store.OpenFollower(o.dataDir, store.Options{NoSync: o.noSync})
		if err != nil {
			return fail(err)
		}
		fol, err = replica.StartFollower(replica.FollowerConfig{
			Store: st, Primary: o.follow, Dir: o.dataDir,
		})
		if err != nil {
			return fail(err)
		}
		cfg.Replica = fol
	} else if o.dataDir != "" {
		var err error
		st, err = store.Open(o.dataDir, store.Options{NoSync: o.noSync})
		if err != nil {
			return fail(err)
		}
		cfg.Store = st
	}

	if o.replicateAddr != "" {
		// A follower can itself replicate onward (chained replicas): its
		// replayed commits land in its own WAL and log feed like any others.
		if st == nil {
			return fail(fmt.Errorf("-replicate-addr requires -data-dir (the WAL is what gets shipped)"))
		}
		var err error
		repl, err = replica.StartServer(replica.ServerConfig{
			Store: st, Addr: o.replicateAddr, AdvertiseHTTP: o.advertiseHTTP,
		})
		if err != nil {
			return fail(err)
		}
		cfg.Replication = repl
	}

	source := ""
	switch {
	case fol != nil:
		// server.New labels replica snapshots itself.
	case st != nil && (st.View().Dataset.Len() > 0 || len(st.View().Disks) > 0):
		// The durable contents win (disks-only stores count: seeding would
		// truncate them); -gen/-data would have been only the seed.
		if o.gen || o.dataPath != "" {
			log.Printf("cpnn-serve: store %s already holds %d objects and %d disks; ignoring -gen/-data",
				o.dataDir, st.View().Dataset.Len(), len(st.View().Disks))
		}
		source = fmt.Sprintf("store:%s", o.dataDir)
		cfg.Source = source
	default:
		ds, src, err := loadDataset(o.dataPath, o.gen, o.seed)
		if err != nil {
			return fail(err)
		}
		cfg.Dataset = ds
		source = src
		cfg.Source = source
	}
	srv, err := server.New(cfg)
	if err != nil {
		return fail(err)
	}
	return srv, fol, repl, source, nil
}

func loadDataset(path string, gen bool, seed int64) (*uncertain.Dataset, string, error) {
	switch {
	case gen && path != "":
		return nil, "", fmt.Errorf("-gen and -data are mutually exclusive")
	case gen:
		ds, err := uncertain.GenerateUniform(uncertain.LongBeachOptions(seed))
		return ds, fmt.Sprintf("gen:longbeach:seed=%d", seed), err
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		ds, err := uncertain.Read(f)
		if err != nil {
			return nil, "", err
		}
		if err := ds.Validate(); err != nil {
			return nil, "", err
		}
		return ds, path, nil
	default:
		return nil, "", fmt.Errorf("provide -data FILE, -gen, or a populated -data-dir")
	}
}
