// Command cpnn-serve runs the C-PNN query service: a long-lived engine
// behind an HTTP/JSON API with a sharded result cache, singleflight
// collapsing, a bounded evaluation pool and atomic dataset reloads.
//
// Examples:
//
//	cpnn-serve -gen -addr :8080                 # serve the Long-Beach-like dataset
//	cpnn-serve -data intervals.txt -quantum 1   # serve a file, snap queries to 1 unit
//
//	curl 'localhost:8080/v1/cpnn?q=5000&p=0.3&delta=0.01'
//	curl 'localhost:8080/v1/pnn?q=5000'
//	curl 'localhost:8080/v1/knn?q=5000&k=3&p=0.3'
//	curl -X POST --data-binary @new.txt 'localhost:8080/v1/dataset?source=new.txt'
//	curl 'localhost:8080/metrics'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/server"
	"repro/internal/uncertain"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dataPath     = flag.String("data", "", "dataset file (cpnn-datagen format)")
		gen          = flag.Bool("gen", false, "generate the Long-Beach-like dataset instead of loading one")
		seed         = flag.Int64("seed", 1, "generator seed for -gen")
		quantum      = flag.Float64("quantum", 0, "cache query-point quantization granularity (0 = exact keys)")
		cacheSize    = flag.Int("cache", server.DefaultCacheEntries, "result-cache capacity in entries (negative disables)")
		cacheShards  = flag.Int("cache-shards", server.DefaultCacheShards, "result-cache shard count")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrent evaluations (0 = 2×GOMAXPROCS)")
		queueTimeout = flag.Duration("queue-timeout", 0, "max wait for a worker slot before shedding a 503 (0 = 10s, negative = wait forever)")
	)
	flag.Parse()

	srv, source, err := buildServer(*dataPath, *gen, *seed, server.Config{
		Quantum:      *quantum,
		CacheEntries: *cacheSize,
		CacheShards:  *cacheShards,
		MaxInFlight:  *maxInFlight,
		QueueTimeout: *queueTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpnn-serve:", err)
		os.Exit(1)
	}
	log.Printf("cpnn-serve: serving %d objects (%s) on %s", srv.Snapshot().Objects, source, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// buildServer validates flags, loads the dataset and assembles the server.
// All user input is checked before any engine is built.
func buildServer(dataPath string, gen bool, seed int64, cfg server.Config) (*server.Server, string, error) {
	ds, source, err := loadDataset(dataPath, gen, seed)
	if err != nil {
		return nil, "", err
	}
	cfg.Dataset = ds
	cfg.Source = source
	srv, err := server.New(cfg)
	if err != nil {
		return nil, "", err
	}
	return srv, source, nil
}

func loadDataset(path string, gen bool, seed int64) (*uncertain.Dataset, string, error) {
	switch {
	case gen && path != "":
		return nil, "", fmt.Errorf("-gen and -data are mutually exclusive")
	case gen:
		ds, err := uncertain.GenerateUniform(uncertain.LongBeachOptions(seed))
		return ds, fmt.Sprintf("gen:longbeach:seed=%d", seed), err
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		ds, err := uncertain.Read(f)
		if err != nil {
			return nil, "", err
		}
		if err := ds.Validate(); err != nil {
			return nil, "", err
		}
		return ds, path, nil
	default:
		return nil, "", fmt.Errorf("provide -data FILE or -gen")
	}
}
