// Command cpnn-serve runs the C-PNN query service: a long-lived engine
// behind an HTTP/JSON API with a sharded result cache, singleflight
// collapsing, a bounded evaluation pool, atomic dataset reloads — and, with
// -data-dir, a durable store: object-level updates through a write-ahead
// log, checkpoints, and crash recovery on boot.
//
// Examples:
//
//	cpnn-serve -gen -addr :8080                 # serve the Long-Beach-like dataset
//	cpnn-serve -data intervals.txt -quantum 1   # serve a file, snap queries to 1 unit
//	cpnn-serve -gen -data-dir /var/lib/cpnn     # durable: updates survive restarts
//
//	curl 'localhost:8080/v1/cpnn?q=5000&p=0.3&delta=0.01'
//	curl 'localhost:8080/v1/pnn?q=5000'
//	curl 'localhost:8080/v1/knn?q=5000&k=3&p=0.3'
//	curl -X POST --data-binary @new.txt 'localhost:8080/v1/dataset?source=new.txt'
//	curl -X POST -d '{"objects":[{"uniform":{"lo":10,"hi":20}}]}' localhost:8080/v1/objects
//	curl -X DELETE 'localhost:8080/v1/objects?id=7'
//	curl -X POST -d '{"kind":"cpnn","q":5000,"p":0.3}' localhost:8080/v1/monitors
//	curl -N 'localhost:8080/v1/subscribe'          # SSE stream of answer updates
//	curl 'localhost:8080/metrics'
//
// On SIGINT/SIGTERM the server drains gracefully: /healthz flips to
// not-ready, in-flight requests finish (up to -drain-timeout), then the WAL
// is checkpointed, flushed and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/uncertain"
)

func main() {
	if err := run(context.Background(), os.Args[1:], nil); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h already printed usage; that is not a failure
		}
		fmt.Fprintln(os.Stderr, "cpnn-serve:", err)
		os.Exit(1)
	}
}

// run is the whole program behind main, factored out so tests can drive the
// graceful-shutdown path with a cancelable context. ready, when non-nil,
// receives the bound address once the listener is up.
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("cpnn-serve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		dataPath     = fs.String("data", "", "dataset file (cpnn-datagen format)")
		gen          = fs.Bool("gen", false, "generate the Long-Beach-like dataset instead of loading one")
		seed         = fs.Int64("seed", 1, "generator seed for -gen")
		dataDir      = fs.String("data-dir", "", "durable store directory (enables /v1/objects, WAL, crash recovery)")
		noSync       = fs.Bool("no-fsync", false, "skip the per-commit fsync (faster, loses recent batches on crash)")
		quantum      = fs.Float64("quantum", 0, "cache query-point quantization granularity (0 = exact keys)")
		cacheSize    = fs.Int("cache", server.DefaultCacheEntries, "result-cache capacity in entries (negative disables)")
		cacheShards  = fs.Int("cache-shards", server.DefaultCacheShards, "result-cache shard count")
		maxInFlight  = fs.Int("max-inflight", 0, "max concurrent evaluations (0 = 2×GOMAXPROCS)")
		queueTimeout = fs.Duration("queue-timeout", 0, "max wait for a worker slot before shedding a 503 (0 = 10s, negative = wait forever)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
		monWorkers   = fs.Int("monitor-workers", 0, "continuous-query re-evaluation workers (0 = GOMAXPROCS; store mode only)")
		monStateB    = fs.Int64("monitor-state-bytes", 0, "memory cap for per-query incremental evaluation states (0 = 64 MiB default, negative = uncapped; store mode only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, source, err := buildServer(*dataPath, *gen, *seed, *dataDir, *noSync, server.Config{
		Quantum:           *quantum,
		CacheEntries:      *cacheSize,
		CacheShards:       *cacheShards,
		MaxInFlight:       *maxInFlight,
		QueueTimeout:      *queueTimeout,
		MonitorWorkers:    *monWorkers,
		MonitorStateBytes: *monStateB,
	})
	if err != nil {
		return err
	}
	log.Printf("cpnn-serve: serving %d objects (%s, version %d) on %s",
		srv.Snapshot().Objects, source, srv.Snapshot().Version, *addr)

	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	ln, err := listen(*addr)
	if err != nil {
		srv.Close()
		return err
	}
	go func() { errCh <- httpSrv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: not-ready first, then stop accepting and wait for
	// in-flight requests, then flush the store to disk.
	log.Printf("cpnn-serve: draining (max %v)", *drainTimeout)
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("cpnn-serve: shutdown: %v", err)
	}
	if err := srv.Close(); err != nil && !errors.Is(err, store.ErrClosed) {
		return fmt.Errorf("closing store: %w", err)
	}
	log.Printf("cpnn-serve: stopped cleanly")
	return nil
}

// buildServer validates flags, loads or recovers the dataset and assembles
// the server. All user input is checked before any engine is built.
func buildServer(dataPath string, gen bool, seed int64, dataDir string, noSync bool, cfg server.Config) (*server.Server, string, error) {
	var st *store.Store
	if dataDir != "" {
		var err error
		st, err = store.Open(dataDir, store.Options{NoSync: noSync})
		if err != nil {
			return nil, "", err
		}
		cfg.Store = st
	}
	fail := func(err error) (*server.Server, string, error) {
		if st != nil {
			st.Close()
		}
		return nil, "", err
	}

	source := ""
	if st != nil && (st.View().Dataset.Len() > 0 || len(st.View().Disks) > 0) {
		// The durable contents win (disks-only stores count: seeding would
		// truncate them); -gen/-data would have been only the seed.
		if gen || dataPath != "" {
			log.Printf("cpnn-serve: store %s already holds %d objects and %d disks; ignoring -gen/-data",
				dataDir, st.View().Dataset.Len(), len(st.View().Disks))
		}
		source = fmt.Sprintf("store:%s", dataDir)
	} else {
		ds, src, err := loadDataset(dataPath, gen, seed)
		if err != nil {
			return fail(err)
		}
		cfg.Dataset = ds
		source = src
	}
	cfg.Source = source
	srv, err := server.New(cfg)
	if err != nil {
		return fail(err)
	}
	return srv, source, nil
}

func loadDataset(path string, gen bool, seed int64) (*uncertain.Dataset, string, error) {
	switch {
	case gen && path != "":
		return nil, "", fmt.Errorf("-gen and -data are mutually exclusive")
	case gen:
		ds, err := uncertain.GenerateUniform(uncertain.LongBeachOptions(seed))
		return ds, fmt.Sprintf("gen:longbeach:seed=%d", seed), err
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		ds, err := uncertain.Read(f)
		if err != nil {
			return nil, "", err
		}
		if err := ds.Validate(); err != nil {
			return nil, "", err
		}
		return ds, path, nil
	default:
		return nil, "", fmt.Errorf("provide -data FILE, -gen, or a populated -data-dir")
	}
}
