// Command cpnn-serve runs the C-PNN query service: a long-lived engine
// behind an HTTP/JSON API with a sharded result cache, singleflight
// collapsing, a bounded evaluation pool, atomic dataset reloads — and, with
// -data-dir, a durable store: object-level updates through a write-ahead
// log, checkpoints, and crash recovery on boot.
//
// Replication: a primary with -replicate-addr streams its WAL to followers;
// a process started with -follow (plus its own -data-dir) replays that
// stream into a local read-only store and serves queries, monitors and SSE
// off the replayed views — answering 503 until its first catch-up and
// redirecting writes to the primary's -advertise-http address.
//
// Sharding: -shards K serves one process over K STR-partitioned member
// stores under -data-dir, scatter-gathering every query (see
// internal/shard). The same cluster directory also runs multi-process:
// each member with -shard-of i, and a stateless front with -router
// listing the member URLs in shard order (the layout comes from the
// cluster's shard.json). Use `cpnn-store split` to shard an existing
// single-store directory.
//
// Examples:
//
//	cpnn-serve -gen -addr :8080                 # serve the Long-Beach-like dataset
//	cpnn-serve -data intervals.txt -quantum 1   # serve a file, snap queries to 1 unit
//	cpnn-serve -gen -data-dir /var/lib/cpnn     # durable: updates survive restarts
//
//	# primary + read replica
//	cpnn-serve -gen -data-dir /var/lib/cpnn -replicate-addr :7071 -advertise-http http://10.0.0.1:8080
//	cpnn-serve -addr :8081 -data-dir /var/lib/cpnn-replica -follow 10.0.0.1:7071
//
//	# single-process sharded serving (creates the cluster on first boot)
//	cpnn-serve -gen -data-dir /var/lib/cpnn-cluster -shards 4
//
//	# the same cluster as one process per shard plus a router
//	cpnn-serve -addr :8091 -data-dir /var/lib/cpnn-cluster -shard-of 0
//	cpnn-serve -addr :8092 -data-dir /var/lib/cpnn-cluster -shard-of 1
//	cpnn-serve -addr :8080 -data-dir /var/lib/cpnn-cluster -router http://127.0.0.1:8091,http://127.0.0.1:8092
//
//	curl 'localhost:8080/v1/cpnn?q=5000&p=0.3&delta=0.01'
//	curl 'localhost:8080/v1/pnn?q=5000'
//	curl 'localhost:8080/v1/knn?q=5000&k=3&p=0.3'
//	curl -X POST --data-binary @new.txt 'localhost:8080/v1/dataset?source=new.txt'
//	curl -X POST -d '{"objects":[{"uniform":{"lo":10,"hi":20}}]}' localhost:8080/v1/objects
//	curl -X DELETE 'localhost:8080/v1/objects?id=7'
//	curl -X POST -d '{"kind":"cpnn","q":5000,"p":0.3}' localhost:8080/v1/monitors
//	curl -N 'localhost:8080/v1/subscribe'          # SSE stream of answer updates
//	curl 'localhost:8080/metrics'
//
// On SIGINT/SIGTERM the server drains gracefully: /healthz flips to
// not-ready, in-flight requests finish (up to -drain-timeout), then the WAL
// is checkpointed, flushed and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/uncertain"
)

func main() {
	if err := run(context.Background(), os.Args[1:], nil); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h already printed usage; that is not a failure
		}
		fmt.Fprintln(os.Stderr, "cpnn-serve:", err)
		os.Exit(1)
	}
}

// serveOpts collects the data-source and replication flags that decide how
// the server is assembled.
type serveOpts struct {
	dataPath   string
	gen        bool
	seed       int64
	dataDir    string
	noSync     bool
	cacheBytes int64

	follow        string // replica mode: primary's replication address
	replicateAddr string // primary mode: replication listen address
	advertiseHTTP string // write-redirect target sent to followers

	shards     int    // single-process sharding: member count for a new cluster under dataDir
	shardOf    int    // member mode: shard index within the dataDir cluster (-1 = off)
	routerURLs string // multi-process router mode: member base URLs in shard order
}

// run is the whole program behind main, factored out so tests can drive the
// graceful-shutdown path with a cancelable context. ready, when non-nil,
// receives the bound address once the listener is up.
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("cpnn-serve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		dataPath     = fs.String("data", "", "dataset file (cpnn-datagen format)")
		gen          = fs.Bool("gen", false, "generate the Long-Beach-like dataset instead of loading one")
		seed         = fs.Int64("seed", 1, "generator seed for -gen")
		dataDir      = fs.String("data-dir", "", "durable store directory (enables /v1/objects, WAL, crash recovery)")
		noSync       = fs.Bool("no-fsync", false, "skip the per-commit fsync (faster, loses recent batches on crash)")
		cacheBytes   = fs.Int64("cache-bytes", 0, "page-cache budget for faulting object payloads from the base checkpoint (0 = 64 MiB default; store mode only)")
		replAddr     = fs.String("replicate-addr", "", "replication listen address: stream the WAL to followers (requires -data-dir)")
		follow       = fs.String("follow", "", "run as a read replica of this primary replication address (requires -data-dir)")
		advertise    = fs.String("advertise-http", "", "HTTP URL advertised to followers as the write-redirect target (with -replicate-addr)")
		shards       = fs.Int("shards", 0, "serve a K-shard cluster under -data-dir in one process, scatter-gathering queries (created on first boot from -gen/-data)")
		shardOf      = fs.Int("shard-of", -1, "serve shard i of the -data-dir cluster as a member process for a -router front (direct writes are refused)")
		routerURLs   = fs.String("router", "", "serve as a scatter-gather router over these comma-separated member URLs, in shard order (layout from -data-dir's shard.json; members must be up)")
		quantum      = fs.Float64("quantum", 0, "cache query-point quantization granularity (0 = exact keys)")
		cacheSize    = fs.Int("cache", server.DefaultCacheEntries, "result-cache capacity in entries (negative disables)")
		cacheShards  = fs.Int("cache-shards", server.DefaultCacheShards, "result-cache shard count")
		maxInFlight  = fs.Int("max-inflight", 0, "max concurrent evaluations (0 = 2×GOMAXPROCS)")
		queueTimeout = fs.Duration("queue-timeout", 0, "max wait for a worker slot before shedding a 503 (0 = 10s, negative = wait forever)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
		monWorkers   = fs.Int("monitor-workers", 0, "continuous-query re-evaluation workers (0 = GOMAXPROCS; store mode only)")
		monStateB    = fs.Int64("monitor-state-bytes", 0, "memory cap for per-query incremental evaluation states (0 = 64 MiB default, negative = uncapped; store mode only)")
		debugAddr    = fs.String("debug-addr", "", "serve net/http/pprof on this private address (empty = off)")
		slowQueryMs  = fs.Int("slow-query-ms", 0, "record requests at or above this many milliseconds in GET /debug/slowlog (0 = off)")
	)
	var lo obs.LogOptions
	lo.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := lo.Logger(os.Stderr, "cpnn-serve")
	if err != nil {
		return err
	}
	kit := obsKit{
		log:    logger,
		tracer: obs.NewTracer(0),
		reg:    obs.NewRegistry(),
	}

	app, err := buildServer(serveOpts{
		dataPath: *dataPath, gen: *gen, seed: *seed,
		dataDir: *dataDir, noSync: *noSync, cacheBytes: *cacheBytes,
		follow: *follow, replicateAddr: *replAddr, advertiseHTTP: *advertise,
		shards: *shards, shardOf: *shardOf, routerURLs: *routerURLs,
	}, server.Config{
		Quantum:            *quantum,
		CacheEntries:       *cacheSize,
		CacheShards:        *cacheShards,
		MaxInFlight:        *maxInFlight,
		QueueTimeout:       *queueTimeout,
		MonitorWorkers:     *monWorkers,
		MonitorStateBytes:  *monStateB,
		Logger:             logger,
		Tracer:             kit.tracer,
		Metrics:            kit.reg,
		SlowQueryThreshold: time.Duration(*slowQueryMs) * time.Millisecond,
	}, kit)
	if err != nil {
		return err
	}
	srv, closeAll := app.srv, app.Close
	switch {
	case app.fol != nil:
		logger.Info("starting as replica (reads 503 until caught up)",
			"primary", app.fol.Source(), "addr", *addr)
	case app.router != nil:
		logger.Info("starting scatter-gather router",
			"shards", app.router.Shards(), "objects", app.router.Objects(),
			"source", app.source, "addr", *addr)
	default:
		logger.Info("starting",
			"objects", srv.Snapshot().Objects, "source", app.source,
			"snapshot_version", srv.Snapshot().Version, "addr", *addr)
	}
	if app.repl != nil {
		logger.Info("replicating the WAL", "replicate_addr", app.repl.Addr())
	}
	if *debugAddr != "" {
		dln, err := listen(*debugAddr)
		if err != nil {
			closeAll()
			return fmt.Errorf("-debug-addr: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/traces", kit.tracer)
		dbg := &http.Server{Handler: dmux}
		go dbg.Serve(dln)
		defer dbg.Close()
		logger.Info("pprof listening", "debug_addr", dln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	ln, err := listen(*addr)
	if err != nil {
		closeAll()
		return err
	}
	go func() { errCh <- httpSrv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errCh:
		closeAll()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: not-ready first, then stop accepting and wait for
	// in-flight requests, then flush the store to disk.
	logger.Info("draining", "max", (*drainTimeout).String())
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	if err := closeAll(); err != nil && !errors.Is(err, store.ErrClosed) {
		return fmt.Errorf("closing store: %w", err)
	}
	logger.Info("stopped cleanly")
	return nil
}

// obsKit bundles the process-wide observability sinks: the structured
// logger, the trace ring behind /debug/traces, and the collector registry
// the server appends to /metrics.
type obsKit struct {
	log    *slog.Logger
	tracer *obs.Tracer
	reg    *obs.Registry
}

// routerObs builds the router's observability hooks and registers its
// histogram families (per-member hop latency by op and shard, gather
// fan-out) for the /metrics scrape.
func (k obsKit) routerObs() shard.Obs {
	member := obs.NewHistogramVec("cpnn_server_shard_member_seconds",
		"Per-member scatter-gather hop latency, by op and shard.",
		[]string{"op", "shard"}, nil)
	fanout := obs.NewHistogram("cpnn_server_shard_fanout_members",
		"Members the gather phase actually read, per query.", obs.FanoutBuckets)
	k.reg.Register(member)
	k.reg.Register(fanout)
	return shard.Obs{
		Tracer:        k.tracer,
		Logger:        k.log.With("subsystem", "shard"),
		MemberSeconds: member,
		Fanout:        fanout,
	}
}

// storeOptions attaches the structured logger to a member/primary store.
func (k obsKit) storeOptions(o store.Options) store.Options {
	o.Logger = k.log.With("subsystem", "store")
	return o
}

// serveApp is the assembled process: the HTTP server plus whichever
// replication or sharding machinery the flags asked for.
type serveApp struct {
	srv     *server.Server
	fol     *replica.Follower
	repl    *replica.Server
	router  *shard.Router  // -shards / -router: the scatter-gather front
	cluster *shard.Cluster // -shards: locally-open member stores
	source  string
}

// Close tears the assembly down in dependency order: the follower stops
// applying before the replication listener stops streaming, both before the
// server checkpoints and closes its store, and the router's members and the
// cluster's member stores last (the server only borrows them).
func (a *serveApp) Close() error {
	if a.fol != nil {
		a.fol.Close()
	}
	if a.repl != nil {
		a.repl.Close()
	}
	err := a.srv.Close()
	if a.router != nil {
		a.router.Close()
	}
	if a.cluster != nil {
		if cerr := a.cluster.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// buildServer validates flags, loads or recovers the dataset, attaches
// replication or sharding, and assembles the server. All user input is
// checked before any engine is built.
func buildServer(o serveOpts, cfg server.Config, kit obsKit) (*serveApp, error) {
	if kit.log == nil {
		// Tests construct the app without an obsKit; every sink is nil-safe
		// except the logger, which slog requires to be non-nil.
		kit.log = obs.Discard()
	}
	a := &serveApp{}
	var st *store.Store
	fail := func(err error) (*serveApp, error) {
		if a.fol != nil {
			a.fol.Close()
		}
		if a.repl != nil {
			a.repl.Close()
		}
		if st != nil {
			st.Close()
		}
		if a.router != nil {
			a.router.Close()
		}
		if a.cluster != nil {
			a.cluster.Close()
		}
		return nil, err
	}

	// The three sharding modes all hang off a cluster directory in -data-dir
	// and pick exactly one role per process.
	shardModes := 0
	for _, on := range []bool{o.shards > 0, o.shardOf >= 0, o.routerURLs != ""} {
		if on {
			shardModes++
		}
	}
	if shardModes > 1 {
		return fail(fmt.Errorf("-shards, -shard-of and -router are mutually exclusive"))
	}
	if shardModes == 1 {
		if o.dataDir == "" {
			return fail(fmt.Errorf("-shards/-shard-of/-router require -data-dir (the cluster directory)"))
		}
		if o.follow != "" {
			return fail(fmt.Errorf("-follow does not combine with sharding; replicate individual member stores instead"))
		}
		if o.replicateAddr != "" && o.shardOf < 0 {
			// A member process may ship its own WAL onward; the router and
			// the single-process cluster have no single WAL to ship.
			return fail(fmt.Errorf("-replicate-addr applies to single stores and -shard-of members, not routers"))
		}
	}

	switch {
	case o.routerURLs != "":
		// Stateless scatter-gather front: the layout comes from the cluster
		// metadata, the data stays in the member processes.
		if o.gen || o.dataPath != "" {
			return fail(fmt.Errorf("-router is mutually exclusive with -gen/-data: the dataset lives in the member stores"))
		}
		meta, err := shard.ReadMeta(o.dataDir)
		if err != nil {
			return fail(err)
		}
		var urls []string
		for _, u := range strings.Split(o.routerURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) != meta.Shards {
			return fail(fmt.Errorf("-router lists %d members for the %d-shard cluster in %s", len(urls), meta.Shards, o.dataDir))
		}
		members := make([]shard.Member, len(urls))
		for i, u := range urls {
			members[i] = shard.NewHTTPMember(u, nil)
		}
		rt, err := shard.NewRouter(shard.RouterConfig{
			Members: members, Cuts: meta.Cuts, NextID: meta.NextID,
			Obs: kit.routerObs(),
		})
		if err != nil {
			return fail(err)
		}
		a.router = rt
		cfg.ShardRouter = rt
		a.source = fmt.Sprintf("router:%s", o.dataDir)

	case o.shardOf >= 0:
		// Member mode: one shard's store behind the wire protocol. Reads
		// serve normally; writes arrive only through a router.
		if o.gen || o.dataPath != "" {
			return fail(fmt.Errorf("-shard-of is mutually exclusive with -gen/-data: members are filled through the router"))
		}
		meta, err := shard.ReadMeta(o.dataDir)
		if err != nil {
			return fail(err)
		}
		if o.shardOf >= meta.Shards {
			return fail(fmt.Errorf("-shard-of %d: the cluster in %s has %d shards", o.shardOf, o.dataDir, meta.Shards))
		}
		st, err = store.Open(shard.Dir(o.dataDir, o.shardOf),
			kit.storeOptions(store.Options{NoSync: o.noSync, CacheBytes: o.cacheBytes, ExplicitIDs: true}))
		if err != nil {
			return fail(err)
		}
		cfg.Store = st
		cfg.ShardMember = true
		a.source = fmt.Sprintf("shard %d of %s", o.shardOf, o.dataDir)
		cfg.Source = a.source

	case o.shards > 0:
		// Single-process cluster: open an existing layout, or partition a
		// seed dataset into a fresh one.
		if _, err := os.Stat(filepath.Join(o.dataDir, shard.MetaFile)); err == nil {
			cluster, err := shard.OpenCluster(o.dataDir, kit.storeOptions(store.Options{NoSync: o.noSync, CacheBytes: o.cacheBytes}))
			if err != nil {
				return fail(err)
			}
			a.cluster = cluster
			if cluster.Meta.Shards != o.shards {
				kit.log.Warn("cluster already laid out; ignoring -shards",
					"dir", o.dataDir, "have", cluster.Meta.Shards, "flag", o.shards)
			}
			if o.gen || o.dataPath != "" {
				kit.log.Warn("cluster already exists; ignoring -gen/-data", "dir", o.dataDir)
			}
		} else {
			ds, _, err := loadDataset(o.dataPath, o.gen, o.seed)
			if err != nil {
				return fail(fmt.Errorf("creating a %d-shard cluster: %w", o.shards, err))
			}
			// Seed with the same stable IDs a single store's dataset load
			// would assign, so splitting and serving commute.
			ids := make([]uint64, ds.Len())
			for i := range ids {
				ids[i] = uint64(i + 1)
			}
			view := &store.View{Dataset: ds, IDs: ids, NextID: uint64(ds.Len()) + 1}
			cluster, err := shard.CreateCluster(o.dataDir, o.shards, view, kit.storeOptions(store.Options{NoSync: o.noSync, CacheBytes: o.cacheBytes}))
			if err != nil {
				return fail(err)
			}
			a.cluster = cluster
		}
		rt, err := a.cluster.RouterObs(kit.routerObs())
		if err != nil {
			return fail(err)
		}
		a.router = rt
		cfg.ShardRouter = rt
		cfg.ShardCluster = a.cluster
		a.source = fmt.Sprintf("cluster:%s", o.dataDir)

	case o.follow != "":
		// Replica mode: the dataset comes from the primary, never from flags.
		if o.dataDir == "" {
			return fail(fmt.Errorf("-follow requires -data-dir (the replica keeps its own durable copy)"))
		}
		if o.gen || o.dataPath != "" {
			return fail(fmt.Errorf("-follow is mutually exclusive with -gen/-data: the dataset is replicated from the primary"))
		}
		var err error
		st, err = store.OpenFollower(o.dataDir, kit.storeOptions(store.Options{NoSync: o.noSync, CacheBytes: o.cacheBytes}))
		if err != nil {
			return fail(err)
		}
		applyLag := obs.NewHistogram("cpnn_server_replica_apply_lag_seconds",
			"Follower lag behind the primary, observed after each applied batch.", obs.LagBuckets)
		kit.reg.Register(applyLag)
		a.fol, err = replica.StartFollower(replica.FollowerConfig{
			Store: st, Primary: o.follow, Dir: o.dataDir,
			Logger:   kit.log.With("subsystem", "replica"),
			Tracer:   kit.tracer,
			ApplyLag: applyLag,
		})
		if err != nil {
			return fail(err)
		}
		cfg.Replica = a.fol

	case o.dataDir != "":
		var err error
		st, err = store.Open(o.dataDir, kit.storeOptions(store.Options{NoSync: o.noSync, CacheBytes: o.cacheBytes}))
		if err != nil {
			return fail(err)
		}
		cfg.Store = st
	}

	if o.replicateAddr != "" {
		// A follower can itself replicate onward (chained replicas): its
		// replayed commits land in its own WAL and log feed like any others.
		if st == nil {
			return fail(fmt.Errorf("-replicate-addr requires -data-dir (the WAL is what gets shipped)"))
		}
		var err error
		a.repl, err = replica.StartServer(replica.ServerConfig{
			Store: st, Addr: o.replicateAddr, AdvertiseHTTP: o.advertiseHTTP,
		})
		if err != nil {
			return fail(err)
		}
		cfg.Replication = a.repl
	}

	if shardModes == 0 {
		switch {
		case a.fol != nil:
			// server.New labels replica snapshots itself.
		case st != nil && (st.View().Dataset.Len() > 0 || len(st.View().Disks) > 0):
			// The durable contents win (disks-only stores count: seeding would
			// truncate them); -gen/-data would have been only the seed.
			if o.gen || o.dataPath != "" {
				kit.log.Warn("store already populated; ignoring -gen/-data",
					"dir", o.dataDir, "objects", st.View().Dataset.Len(), "disks", len(st.View().Disks))
			}
			a.source = fmt.Sprintf("store:%s", o.dataDir)
			cfg.Source = a.source
		default:
			ds, src, err := loadDataset(o.dataPath, o.gen, o.seed)
			if err != nil {
				return fail(err)
			}
			cfg.Dataset = ds
			a.source = src
			cfg.Source = a.source
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		return fail(err)
	}
	a.srv = srv
	return a, nil
}

func loadDataset(path string, gen bool, seed int64) (*uncertain.Dataset, string, error) {
	switch {
	case gen && path != "":
		return nil, "", fmt.Errorf("-gen and -data are mutually exclusive")
	case gen:
		ds, err := uncertain.GenerateUniform(uncertain.LongBeachOptions(seed))
		return ds, fmt.Sprintf("gen:longbeach:seed=%d", seed), err
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		ds, err := uncertain.Read(f)
		if err != nil {
			return nil, "", err
		}
		if err := ds.Validate(); err != nil {
			return nil, "", err
		}
		return ds, path, nil
	default:
		return nil, "", fmt.Errorf("provide -data FILE, -gen, or a populated -data-dir")
	}
}
