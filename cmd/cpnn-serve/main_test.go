package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

func writeDataset(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildServerFromFile(t *testing.T) {
	path := writeDataset(t, "1 2\n5 9\nhist 10 11 12 | 1 3\n")
	srv, source, err := buildServer(path, false, 1, "", false, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if source != path {
		t.Errorf("source = %q, want %q", source, path)
	}
	if got := srv.Snapshot().Objects; got != 3 {
		t.Errorf("objects = %d, want 3", got)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cpnn?q=1.5&p=0.3", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("cpnn status %d: %s", rec.Code, rec.Body)
	}
}

func TestBuildServerRejectsBadInput(t *testing.T) {
	if _, _, err := buildServer("", false, 1, "", false, server.Config{}); err == nil {
		t.Error("no source accepted")
	}
	if _, _, err := buildServer("/nonexistent/ds", false, 1, "", false, server.Config{}); err == nil {
		t.Error("missing file accepted")
	}
	if _, _, err := buildServer("x", true, 1, "", false, server.Config{}); err == nil {
		t.Error("-gen with -data accepted")
	}
	bad := writeDataset(t, "9 2\n")
	if _, _, err := buildServer(bad, false, 1, "", false, server.Config{}); err == nil {
		t.Error("inverted interval accepted")
	}
	good := writeDataset(t, "1 2\n")
	if _, _, err := buildServer(good, false, 1, "", false, server.Config{Quantum: -2}); err == nil {
		t.Error("negative quantum accepted")
	}
}

// TestBuildServerSeedsAndRecoversDataDir checks the durable boot matrix:
// empty dir + -data seeds the store; a populated dir wins over -data.
func TestBuildServerSeedsAndRecoversDataDir(t *testing.T) {
	path := writeDataset(t, "1 2\n5 9\n")
	dir := t.TempDir()

	srv, _, err := buildServer(path, false, 1, dir, true, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Snapshot().Objects != 2 || srv.Snapshot().Version != 1 {
		t.Fatalf("seeded snapshot: %+v", srv.Snapshot())
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a DIFFERENT -data file: the store contents must win.
	other := writeDataset(t, "100 101\n200 201\n300 301\n")
	srv, source, err := buildServer(other, false, 1, dir, true, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Snapshot().Objects != 2 {
		t.Fatalf("store contents overridden: %d objects", srv.Snapshot().Objects)
	}
	if !strings.HasPrefix(source, "store:") {
		t.Fatalf("source = %q", source)
	}
}

// TestGracefulShutdown boots the real server loop, mutates through the HTTP
// API, cancels the context (the SIGTERM path), and expects: a clean exit, a
// checkpointed store, and full recovery on the next boot.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	dsPath := writeDataset(t, "1 2\n5 9\n")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-data", dsPath, "-data-dir", dir, "-no-fsync"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	}

	// Mutate durably over HTTP.
	resp, err := http.Post("http://"+addr+"/v1/objects", "application/json",
		strings.NewReader(`{"objects":[{"uniform":{"lo":50,"hi":60}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("objects: %d", resp.StatusCode)
	}
	resp.Body.Close()

	hz, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Objects int    `json:"objects"`
	}
	json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if health.Status != "ok" || health.Objects != 3 {
		t.Fatalf("healthz: %+v", health)
	}

	// SIGTERM equivalent: cancel the run context.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after cancel")
	}

	// The drain checkpointed: reopening finds the mutation with no WAL left.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.Objects1D != 3 {
		t.Fatalf("recovered %d objects, want 3", stats.Objects1D)
	}
	if stats.WALBytes != 0 {
		t.Fatalf("WAL holds %d bytes after graceful shutdown", stats.WALBytes)
	}
	if stats.Version != 2 {
		t.Fatalf("recovered version %d, want 2", stats.Version)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-gen", "-data", "x"}, nil); err == nil {
		t.Fatal("conflicting flags accepted")
	}
	if err := run(context.Background(), []string{"-not-a-flag"}, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
