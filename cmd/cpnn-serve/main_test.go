package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

func writeDataset(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildServerFromFile(t *testing.T) {
	path := writeDataset(t, "1 2\n5 9\nhist 10 11 12 | 1 3\n")
	app, err := buildServer(serveOpts{shardOf: -1, dataPath: path, seed: 1}, server.Config{}, obsKit{})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if app.source != path {
		t.Errorf("source = %q, want %q", app.source, path)
	}
	if got := app.srv.Snapshot().Objects; got != 3 {
		t.Errorf("objects = %d, want 3", got)
	}
	rec := httptest.NewRecorder()
	app.srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cpnn?q=1.5&p=0.3", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("cpnn status %d: %s", rec.Code, rec.Body)
	}
}

func TestBuildServerRejectsBadInput(t *testing.T) {
	if _, err := buildServer(serveOpts{shardOf: -1, seed: 1}, server.Config{}, obsKit{}); err == nil {
		t.Error("no source accepted")
	}
	if _, err := buildServer(serveOpts{shardOf: -1, dataPath: "/nonexistent/ds", seed: 1}, server.Config{}, obsKit{}); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := buildServer(serveOpts{shardOf: -1, dataPath: "x", gen: true, seed: 1}, server.Config{}, obsKit{}); err == nil {
		t.Error("-gen with -data accepted")
	}
	bad := writeDataset(t, "9 2\n")
	if _, err := buildServer(serveOpts{shardOf: -1, dataPath: bad, seed: 1}, server.Config{}, obsKit{}); err == nil {
		t.Error("inverted interval accepted")
	}
	good := writeDataset(t, "1 2\n")
	if _, err := buildServer(serveOpts{shardOf: -1, dataPath: good, seed: 1}, server.Config{Quantum: -2}, obsKit{}); err == nil {
		t.Error("negative quantum accepted")
	}
	if _, err := buildServer(serveOpts{shardOf: -1, follow: "127.0.0.1:1"}, server.Config{}, obsKit{}); err == nil {
		t.Error("-follow without -data-dir accepted")
	}
	if _, err := buildServer(serveOpts{shardOf: -1, dataPath: good, replicateAddr: "127.0.0.1:0"}, server.Config{}, obsKit{}); err == nil {
		t.Error("-replicate-addr without -data-dir accepted")
	}
	if _, err := buildServer(serveOpts{shardOf: -1, dataDir: t.TempDir(), follow: "127.0.0.1:1", gen: true}, server.Config{}, obsKit{}); err == nil {
		t.Error("-follow with -gen accepted")
	}
}

// TestBuildServerSeedsAndRecoversDataDir checks the durable boot matrix:
// empty dir + -data seeds the store; a populated dir wins over -data.
func TestBuildServerSeedsAndRecoversDataDir(t *testing.T) {
	path := writeDataset(t, "1 2\n5 9\n")
	dir := t.TempDir()

	app, err := buildServer(serveOpts{shardOf: -1, dataPath: path, seed: 1, dataDir: dir, noSync: true}, server.Config{}, obsKit{})
	if err != nil {
		t.Fatal(err)
	}
	if app.srv.Snapshot().Objects != 2 || app.srv.Snapshot().Version != 1 {
		t.Fatalf("seeded snapshot: %+v", app.srv.Snapshot())
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a DIFFERENT -data file: the store contents must win.
	other := writeDataset(t, "100 101\n200 201\n300 301\n")
	app, err = buildServer(serveOpts{shardOf: -1, dataPath: other, seed: 1, dataDir: dir, noSync: true}, server.Config{}, obsKit{})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if app.srv.Snapshot().Objects != 2 {
		t.Fatalf("store contents overridden: %d objects", app.srv.Snapshot().Objects)
	}
	if !strings.HasPrefix(app.source, "store:") {
		t.Fatalf("source = %q", app.source)
	}
}

// TestGracefulShutdown boots the real server loop, mutates through the HTTP
// API, cancels the context (the SIGTERM path), and expects: a clean exit, a
// checkpointed store, and full recovery on the next boot.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	dsPath := writeDataset(t, "1 2\n5 9\n")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-data", dsPath, "-data-dir", dir, "-no-fsync"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	}

	// Mutate durably over HTTP.
	resp, err := http.Post("http://"+addr+"/v1/objects", "application/json",
		strings.NewReader(`{"objects":[{"uniform":{"lo":50,"hi":60}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("objects: %d", resp.StatusCode)
	}
	resp.Body.Close()

	hz, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Objects int    `json:"objects"`
	}
	json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if health.Status != "ok" || health.Objects != 3 {
		t.Fatalf("healthz: %+v", health)
	}

	// SIGTERM equivalent: cancel the run context.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after cancel")
	}

	// The drain checkpointed: reopening finds the mutation with no WAL left.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.Objects1D != 3 {
		t.Fatalf("recovered %d objects, want 3", stats.Objects1D)
	}
	if stats.WALBytes != 0 {
		t.Fatalf("WAL holds %d bytes after graceful shutdown", stats.WALBytes)
	}
	if stats.Version != 2 {
		t.Fatalf("recovered version %d, want 2", stats.Version)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-gen", "-data", "x"}, nil); err == nil {
		t.Fatal("conflicting flags accepted")
	}
	if err := run(context.Background(), []string{"-not-a-flag"}, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestPrimaryReplicaEndToEnd boots a primary with -replicate-addr and a
// replica with -follow through the real run() loop, writes through the
// primary's HTTP API, and expects the replica to converge, serve reads,
// redirect writes, and shut both processes down cleanly.
func TestPrimaryReplicaEndToEnd(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	dsPath := writeDataset(t, "1 2\n5 9\n")

	pctx, pcancel := context.WithCancel(context.Background())
	defer pcancel()
	pready := make(chan string, 1)
	pdone := make(chan error, 1)
	go func() {
		pdone <- run(pctx, []string{
			"-addr", "127.0.0.1:0", "-data", dsPath, "-data-dir", pdir, "-no-fsync",
			"-replicate-addr", "127.0.0.1:0",
		}, pready)
	}()
	var paddr string
	select {
	case paddr = <-pready:
	case err := <-pdone:
		t.Fatalf("primary exited early: %v", err)
	}

	// The replication port was dynamic; read it off the primary's /healthz.
	var replAddr string
	deadline := time.Now().Add(10 * time.Second)
	for replAddr == "" {
		if time.Now().After(deadline) {
			t.Fatal("primary never reported its replication address")
		}
		resp, err := http.Get("http://" + paddr + "/healthz")
		if err == nil {
			var hz struct {
				ReplicationServer struct {
					Addr string `json:"addr"`
				} `json:"replication_server"`
			}
			json.NewDecoder(resp.Body).Decode(&hz)
			resp.Body.Close()
			replAddr = hz.ReplicationServer.Addr
		}
	}

	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	rready := make(chan string, 1)
	rdone := make(chan error, 1)
	go func() {
		rdone <- run(rctx, []string{
			"-addr", "127.0.0.1:0", "-data-dir", rdir, "-no-fsync",
			"-follow", replAddr,
		}, rready)
	}()
	var raddr string
	select {
	case raddr = <-rready:
	case err := <-rdone:
		t.Fatalf("replica exited early: %v", err)
	}

	// Wait for the replica to report healthy (caught up).
	waitHealthy := func(addr string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never became healthy", addr)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitHealthy(raddr)

	// Write through the primary; the replica must serve it.
	resp, err := http.Post("http://"+paddr+"/v1/objects", "application/json",
		strings.NewReader(`{"objects":[{"uniform":{"lo":50,"hi":60}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary write: %d", resp.StatusCode)
	}
	resp.Body.Close()
	deadline = time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + raddr + "/v1/cpnn?q=55&p=0.3&delta=0.01")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Version uint64 `json:"version"`
			Answers []struct {
				ID int     `json:"id"`
				L  float64 `json:"l"` // lower qualification-probability bound
			} `json:"answers"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		// The inserted [50,60] contains q=55 and gets stable ID 3 (after the
		// two seed objects); it must qualify with near-certain probability.
		if resp.StatusCode == http.StatusOK && len(body.Answers) == 1 &&
			body.Answers[0].ID == 3 && body.Answers[0].L > 0.9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never served the replicated object (status %d, %+v)", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Writes on the replica bounce: no -advertise-http was set, so 403.
	resp, err = http.Post("http://"+raddr+"/v1/objects", "application/json",
		strings.NewReader(`{"objects":[{"uniform":{"lo":1,"hi":2}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica write: %d, want 403", resp.StatusCode)
	}

	// Clean shutdowns, replica first.
	rcancel()
	select {
	case err := <-rdone:
		if err != nil {
			t.Fatalf("replica run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("replica did not exit")
	}
	pcancel()
	select {
	case err := <-pdone:
		if err != nil {
			t.Fatalf("primary run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("primary did not exit")
	}

	// Both dirs recover independently with the same contents.
	for _, dir := range []string{pdir, rdir} {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if n := st.Stats().Objects1D; n != 3 {
			t.Fatalf("%s recovered %d objects, want 3", dir, n)
		}
		st.Close()
	}
}

// TestShardedServeEndToEnd exercises all three sharding roles through the
// real run() loop: a single-process -shards boot creates the cluster from a
// seed file, serves and mutates it, and shuts down cleanly; then the same
// directory comes back as two -shard-of member processes behind a -router
// front, which must serve the mutated data and keep member writes locked.
func TestShardedServeEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cluster")
	dsPath := writeDataset(t, "1 2\n5 9\n100 110\n200 210\n")

	// Phase 1: single-process sharded serving, cluster created on boot.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-data", dsPath,
			"-data-dir", dir, "-no-fsync", "-shards", "2"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("sharded run exited early: %v", err)
	}

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("http://" + addr + "/v1/cpnn?q=1.5&p=0.3"); code != http.StatusOK {
		t.Fatalf("sharded cpnn: %d: %s", code, body)
	}
	if code, body := get("http://" + addr + "/healthz"); code != http.StatusOK || !strings.Contains(body, `"shards":2`) {
		t.Fatalf("sharded healthz: %d: %s", code, body)
	}
	resp, err := http.Post("http://"+addr+"/v1/objects", "application/json",
		strings.NewReader(`{"objects":[{"uniform":{"lo":50,"hi":60}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded write: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sharded run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("sharded run did not exit")
	}

	// Phase 2: the same cluster as member processes plus a router.
	type proc struct {
		cancel context.CancelFunc
		done   chan error
		addr   string
	}
	start := func(args ...string) *proc {
		t.Helper()
		pctx, pcancel := context.WithCancel(context.Background())
		p := &proc{cancel: pcancel, done: make(chan error, 1)}
		pready := make(chan string, 1)
		go func() { p.done <- run(pctx, args, pready) }()
		select {
		case p.addr = <-pready:
		case err := <-p.done:
			t.Fatalf("%v exited early: %v", args, err)
		case <-time.After(15 * time.Second):
			t.Fatalf("%v never became ready", args)
		}
		return p
	}
	stop := func(p *proc) {
		t.Helper()
		p.cancel()
		select {
		case err := <-p.done:
			if err != nil {
				t.Fatalf("process returned %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("process did not exit")
		}
	}

	m0 := start("-addr", "127.0.0.1:0", "-data-dir", dir, "-no-fsync", "-shard-of", "0")
	m1 := start("-addr", "127.0.0.1:0", "-data-dir", dir, "-no-fsync", "-shard-of", "1")
	rt := start("-addr", "127.0.0.1:0", "-data-dir", dir, "-no-fsync",
		"-router", "http://"+m0.addr+",http://"+m1.addr)

	// The phase-1 write must be visible through the router: [50,60] owns q=55.
	if code, body := get("http://" + rt.addr + "/v1/pnn?q=55"); code != http.StatusOK || !strings.Contains(body, `"id":5`) {
		t.Fatalf("router pnn: %d: %s", code, body)
	}
	// Members refuse direct writes: the router owns placement and IDs.
	resp, err = http.Post("http://"+m0.addr+"/v1/objects", "application/json",
		strings.NewReader(`{"objects":[{"uniform":{"lo":1,"hi":2}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("member write: %d, want 403", resp.StatusCode)
	}
	// Writes through the router land on the owning member.
	resp, err = http.Post("http://"+rt.addr+"/v1/objects", "application/json",
		strings.NewReader(`{"objects":[{"uniform":{"lo":205,"hi":215}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router write: %d", resp.StatusCode)
	}
	if code, body := get("http://" + rt.addr + "/v1/dataset"); code != http.StatusOK || !strings.Contains(body, `"objects":6`) {
		t.Fatalf("router dataset: %d: %s", code, body)
	}

	stop(rt)
	stop(m1)
	stop(m0)
}
