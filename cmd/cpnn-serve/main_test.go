package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

func writeDataset(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildServerFromFile(t *testing.T) {
	path := writeDataset(t, "1 2\n5 9\nhist 10 11 12 | 1 3\n")
	srv, _, _, source, err := buildServer(serveOpts{dataPath: path, seed: 1}, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if source != path {
		t.Errorf("source = %q, want %q", source, path)
	}
	if got := srv.Snapshot().Objects; got != 3 {
		t.Errorf("objects = %d, want 3", got)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cpnn?q=1.5&p=0.3", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("cpnn status %d: %s", rec.Code, rec.Body)
	}
}

func TestBuildServerRejectsBadInput(t *testing.T) {
	if _, _, _, _, err := buildServer(serveOpts{seed: 1}, server.Config{}); err == nil {
		t.Error("no source accepted")
	}
	if _, _, _, _, err := buildServer(serveOpts{dataPath: "/nonexistent/ds", seed: 1}, server.Config{}); err == nil {
		t.Error("missing file accepted")
	}
	if _, _, _, _, err := buildServer(serveOpts{dataPath: "x", gen: true, seed: 1}, server.Config{}); err == nil {
		t.Error("-gen with -data accepted")
	}
	bad := writeDataset(t, "9 2\n")
	if _, _, _, _, err := buildServer(serveOpts{dataPath: bad, seed: 1}, server.Config{}); err == nil {
		t.Error("inverted interval accepted")
	}
	good := writeDataset(t, "1 2\n")
	if _, _, _, _, err := buildServer(serveOpts{dataPath: good, seed: 1}, server.Config{Quantum: -2}); err == nil {
		t.Error("negative quantum accepted")
	}
	if _, _, _, _, err := buildServer(serveOpts{follow: "127.0.0.1:1"}, server.Config{}); err == nil {
		t.Error("-follow without -data-dir accepted")
	}
	if _, _, _, _, err := buildServer(serveOpts{dataPath: good, replicateAddr: "127.0.0.1:0"}, server.Config{}); err == nil {
		t.Error("-replicate-addr without -data-dir accepted")
	}
	if _, _, _, _, err := buildServer(serveOpts{dataDir: t.TempDir(), follow: "127.0.0.1:1", gen: true}, server.Config{}); err == nil {
		t.Error("-follow with -gen accepted")
	}
}

// TestBuildServerSeedsAndRecoversDataDir checks the durable boot matrix:
// empty dir + -data seeds the store; a populated dir wins over -data.
func TestBuildServerSeedsAndRecoversDataDir(t *testing.T) {
	path := writeDataset(t, "1 2\n5 9\n")
	dir := t.TempDir()

	srv, _, _, _, err := buildServer(serveOpts{dataPath: path, seed: 1, dataDir: dir, noSync: true}, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Snapshot().Objects != 2 || srv.Snapshot().Version != 1 {
		t.Fatalf("seeded snapshot: %+v", srv.Snapshot())
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a DIFFERENT -data file: the store contents must win.
	other := writeDataset(t, "100 101\n200 201\n300 301\n")
	srv, _, _, source, err := buildServer(serveOpts{dataPath: other, seed: 1, dataDir: dir, noSync: true}, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Snapshot().Objects != 2 {
		t.Fatalf("store contents overridden: %d objects", srv.Snapshot().Objects)
	}
	if !strings.HasPrefix(source, "store:") {
		t.Fatalf("source = %q", source)
	}
}

// TestGracefulShutdown boots the real server loop, mutates through the HTTP
// API, cancels the context (the SIGTERM path), and expects: a clean exit, a
// checkpointed store, and full recovery on the next boot.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	dsPath := writeDataset(t, "1 2\n5 9\n")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-data", dsPath, "-data-dir", dir, "-no-fsync"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	}

	// Mutate durably over HTTP.
	resp, err := http.Post("http://"+addr+"/v1/objects", "application/json",
		strings.NewReader(`{"objects":[{"uniform":{"lo":50,"hi":60}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("objects: %d", resp.StatusCode)
	}
	resp.Body.Close()

	hz, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Objects int    `json:"objects"`
	}
	json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if health.Status != "ok" || health.Objects != 3 {
		t.Fatalf("healthz: %+v", health)
	}

	// SIGTERM equivalent: cancel the run context.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after cancel")
	}

	// The drain checkpointed: reopening finds the mutation with no WAL left.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.Objects1D != 3 {
		t.Fatalf("recovered %d objects, want 3", stats.Objects1D)
	}
	if stats.WALBytes != 0 {
		t.Fatalf("WAL holds %d bytes after graceful shutdown", stats.WALBytes)
	}
	if stats.Version != 2 {
		t.Fatalf("recovered version %d, want 2", stats.Version)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-gen", "-data", "x"}, nil); err == nil {
		t.Fatal("conflicting flags accepted")
	}
	if err := run(context.Background(), []string{"-not-a-flag"}, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestPrimaryReplicaEndToEnd boots a primary with -replicate-addr and a
// replica with -follow through the real run() loop, writes through the
// primary's HTTP API, and expects the replica to converge, serve reads,
// redirect writes, and shut both processes down cleanly.
func TestPrimaryReplicaEndToEnd(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	dsPath := writeDataset(t, "1 2\n5 9\n")

	pctx, pcancel := context.WithCancel(context.Background())
	defer pcancel()
	pready := make(chan string, 1)
	pdone := make(chan error, 1)
	go func() {
		pdone <- run(pctx, []string{
			"-addr", "127.0.0.1:0", "-data", dsPath, "-data-dir", pdir, "-no-fsync",
			"-replicate-addr", "127.0.0.1:0",
		}, pready)
	}()
	var paddr string
	select {
	case paddr = <-pready:
	case err := <-pdone:
		t.Fatalf("primary exited early: %v", err)
	}

	// The replication port was dynamic; read it off the primary's /healthz.
	var replAddr string
	deadline := time.Now().Add(10 * time.Second)
	for replAddr == "" {
		if time.Now().After(deadline) {
			t.Fatal("primary never reported its replication address")
		}
		resp, err := http.Get("http://" + paddr + "/healthz")
		if err == nil {
			var hz struct {
				ReplicationServer struct {
					Addr string `json:"addr"`
				} `json:"replication_server"`
			}
			json.NewDecoder(resp.Body).Decode(&hz)
			resp.Body.Close()
			replAddr = hz.ReplicationServer.Addr
		}
	}

	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	rready := make(chan string, 1)
	rdone := make(chan error, 1)
	go func() {
		rdone <- run(rctx, []string{
			"-addr", "127.0.0.1:0", "-data-dir", rdir, "-no-fsync",
			"-follow", replAddr,
		}, rready)
	}()
	var raddr string
	select {
	case raddr = <-rready:
	case err := <-rdone:
		t.Fatalf("replica exited early: %v", err)
	}

	// Wait for the replica to report healthy (caught up).
	waitHealthy := func(addr string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never became healthy", addr)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitHealthy(raddr)

	// Write through the primary; the replica must serve it.
	resp, err := http.Post("http://"+paddr+"/v1/objects", "application/json",
		strings.NewReader(`{"objects":[{"uniform":{"lo":50,"hi":60}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary write: %d", resp.StatusCode)
	}
	resp.Body.Close()
	deadline = time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + raddr + "/v1/cpnn?q=55&p=0.3&delta=0.01")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Version uint64 `json:"version"`
			Answers []struct {
				ID int     `json:"id"`
				L  float64 `json:"l"` // lower qualification-probability bound
			} `json:"answers"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		// The inserted [50,60] contains q=55 and gets stable ID 3 (after the
		// two seed objects); it must qualify with near-certain probability.
		if resp.StatusCode == http.StatusOK && len(body.Answers) == 1 &&
			body.Answers[0].ID == 3 && body.Answers[0].L > 0.9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never served the replicated object (status %d, %+v)", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Writes on the replica bounce: no -advertise-http was set, so 403.
	resp, err = http.Post("http://"+raddr+"/v1/objects", "application/json",
		strings.NewReader(`{"objects":[{"uniform":{"lo":1,"hi":2}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica write: %d, want 403", resp.StatusCode)
	}

	// Clean shutdowns, replica first.
	rcancel()
	select {
	case err := <-rdone:
		if err != nil {
			t.Fatalf("replica run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("replica did not exit")
	}
	pcancel()
	select {
	case err := <-pdone:
		if err != nil {
			t.Fatalf("primary run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("primary did not exit")
	}

	// Both dirs recover independently with the same contents.
	for _, dir := range []string{pdir, rdir} {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if n := st.Stats().Objects1D; n != 3 {
			t.Fatalf("%s recovered %d objects, want 3", dir, n)
		}
		st.Close()
	}
}
