package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/server"
)

func writeDataset(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildServerFromFile(t *testing.T) {
	path := writeDataset(t, "1 2\n5 9\nhist 10 11 12 | 1 3\n")
	srv, source, err := buildServer(path, false, 1, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if source != path {
		t.Errorf("source = %q, want %q", source, path)
	}
	if got := srv.Snapshot().Objects; got != 3 {
		t.Errorf("objects = %d, want 3", got)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cpnn?q=1.5&p=0.3", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("cpnn status %d: %s", rec.Code, rec.Body)
	}
}

func TestBuildServerRejectsBadInput(t *testing.T) {
	if _, _, err := buildServer("", false, 1, server.Config{}); err == nil {
		t.Error("no source accepted")
	}
	if _, _, err := buildServer("/nonexistent/ds", false, 1, server.Config{}); err == nil {
		t.Error("missing file accepted")
	}
	if _, _, err := buildServer("x", true, 1, server.Config{}); err == nil {
		t.Error("-gen with -data accepted")
	}
	bad := writeDataset(t, "9 2\n")
	if _, _, err := buildServer(bad, false, 1, server.Config{}); err == nil {
		t.Error("inverted interval accepted")
	}
	good := writeDataset(t, "1 2\n")
	if _, _, err := buildServer(good, false, 1, server.Config{Quantum: -2}); err == nil {
		t.Error("negative quantum accepted")
	}
}
