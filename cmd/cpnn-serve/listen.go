package main

import "net"

// listen binds the TCP listener separately from Serve so run can report the
// actual bound address (tests use :0).
func listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
