// Command cpnn-bench regenerates the paper's evaluation figures (§V,
// Figures 9–14) and prints the measured series as aligned tables. It also
// replays recorded query workloads through the batch evaluation path,
// reporting latency percentiles and the batch-vs-singles amortization ratio.
//
// Usage:
//
//	cpnn-bench -fig 10 -queries 100
//	cpnn-bench -fig 0                          # run every figure
//	cpnn-bench -replay q.txt                   # workload replay (see cpnn-datagen -queries)
//	cpnn-bench -replay q.txt -data lb.txt -batch-sizes 1,8,64,512
//
// Absolute timings depend on the host; the orderings, ratios and crossovers
// are the reproduction targets (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to reproduce (9-14); 0 runs all")
		queries    = flag.Int("queries", 100, "queries averaged per data point (paper: 100)")
		seed       = flag.Int64("seed", 1, "workload seed")
		n          = flag.Int("n", 0, "dataset size override (0 = Long Beach 53,144)")
		basicSteps = flag.Int("basic-steps", 0, "Simpson steps for the Basic baseline (0 = automatic)")
		gaussBars  = flag.Int("gauss-bars", 300, "histogram bars for Gaussian pdfs (paper: 300)")
		tolerance  = flag.Float64("tolerance", 0.01, "default tolerance Delta (paper: 0.01)")

		replay     = flag.String("replay", "", "replay a query-workload file through the batch path instead of a figure")
		dataPath   = flag.String("data", "", "dataset file for -replay (default: generate the Long Beach set)")
		batchSizes = flag.String("batch-sizes", "1,8,64,512", "comma-separated batch sizes for -replay")
		workers    = flag.Int("workers", 0, "batch worker pool size for -replay (0 = GOMAXPROCS)")
		p          = flag.Float64("p", 0.3, "replay threshold P")
		delta      = flag.Float64("delta", 0.01, "replay tolerance Delta")
	)
	flag.Parse()

	if *replay != "" {
		if err := runReplay(*replay, *dataPath, *batchSizes, *workers, *n, *seed,
			verify.Constraint{P: *p, Delta: *delta}); err != nil {
			fatal(err)
		}
		return
	}

	cfg := exp.Config{
		Queries:    *queries,
		Seed:       *seed,
		DatasetN:   *n,
		BasicSteps: *basicSteps,
		GaussBars:  *gaussBars,
		Tolerance:  *tolerance,
	}
	if *fig == 0 {
		if err := exp.RunAll(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	run, ok := exp.Registry[*fig]
	if !ok {
		fatal(fmt.Errorf("unknown figure %d (valid: 9-14)", *fig))
	}
	table, err := run(cfg)
	if err != nil {
		fatal(err)
	}
	table.Print(os.Stdout)
}

// runReplay loads (or generates) the dataset and query workload and prints
// the amortization table.
func runReplay(queryPath, dataPath, sizesCSV string, workers, n int, seed int64, c verify.Constraint) error {
	qf, err := os.Open(queryPath)
	if err != nil {
		return err
	}
	defer qf.Close()
	qs, err := uncertain.ReadQueries(qf)
	if err != nil {
		return err
	}

	var ds *uncertain.Dataset
	if dataPath != "" {
		f, err := os.Open(dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if ds, err = uncertain.Read(f); err != nil {
			return err
		}
		if err := ds.Validate(); err != nil {
			return err
		}
	} else {
		opt := uncertain.LongBeachOptions(seed)
		if n > 0 {
			opt.N = n
		}
		if ds, err = uncertain.GenerateUniform(opt); err != nil {
			return err
		}
	}

	var sizes []int
	for _, s := range strings.Split(sizesCSV, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return fmt.Errorf("bad batch size %q (want positive integers, comma-separated)", s)
		}
		sizes = append(sizes, v)
	}

	report, err := exp.Replay(exp.ReplayConfig{
		Dataset:    ds,
		Queries:    qs,
		BatchSizes: sizes,
		Workers:    workers,
		Constraint: c,
	})
	if err != nil {
		return err
	}
	report.Print(os.Stdout)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpnn-bench:", err)
	os.Exit(1)
}
