// Command cpnn-bench regenerates the paper's evaluation figures (§V,
// Figures 9–14) and prints the measured series as aligned tables.
//
// Usage:
//
//	cpnn-bench -fig 10 -queries 100
//	cpnn-bench -fig 0                 # run every figure
//
// Absolute timings depend on the host; the orderings, ratios and crossovers
// are the reproduction targets (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to reproduce (9-14); 0 runs all")
		queries    = flag.Int("queries", 100, "queries averaged per data point (paper: 100)")
		seed       = flag.Int64("seed", 1, "workload seed")
		n          = flag.Int("n", 0, "dataset size override (0 = Long Beach 53,144)")
		basicSteps = flag.Int("basic-steps", 0, "Simpson steps for the Basic baseline (0 = automatic)")
		gaussBars  = flag.Int("gauss-bars", 300, "histogram bars for Gaussian pdfs (paper: 300)")
		tolerance  = flag.Float64("tolerance", 0.01, "default tolerance Delta (paper: 0.01)")
	)
	flag.Parse()

	cfg := exp.Config{
		Queries:    *queries,
		Seed:       *seed,
		DatasetN:   *n,
		BasicSteps: *basicSteps,
		GaussBars:  *gaussBars,
		Tolerance:  *tolerance,
	}
	if *fig == 0 {
		if err := exp.RunAll(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	run, ok := exp.Registry[*fig]
	if !ok {
		fatal(fmt.Errorf("unknown figure %d (valid: 9-14)", *fig))
	}
	table, err := run(cfg)
	if err != nil {
		fatal(err)
	}
	table.Print(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpnn-bench:", err)
	os.Exit(1)
}
