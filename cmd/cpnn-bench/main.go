// Command cpnn-bench regenerates the paper's evaluation figures (§V,
// Figures 9–14) and prints the measured series as aligned tables. It also
// replays recorded query workloads through the batch evaluation path
// (latency percentiles, batch-vs-singles amortization) and runs the
// continuous-monitoring experiment (re-evaluated-query fraction and push
// latency under localized update load — see internal/monitor).
//
// Usage:
//
//	cpnn-bench -fig 10 -queries 100
//	cpnn-bench -fig 0                          # run every figure
//	cpnn-bench -replay q.txt                   # workload replay (see cpnn-datagen -queries)
//	cpnn-bench -replay q.txt -data lb.txt -batch-sizes 1,8,64,512
//	cpnn-bench -monitor -batch-sizes 1,4,16,64 # standing-query monitoring
//	cpnn-bench -monitor -json BENCH_monitor.json
//	cpnn-bench -replica -batch-sizes 1,16,256  # WAL-shipped replication lag
//	cpnn-bench -replica -json BENCH_replica.json
//	cpnn-bench -shard -shard-counts 1,2,4,8    # scatter-gather sharding fan-out
//	cpnn-bench -shard -json BENCH_shard.json
//	cpnn-bench -capacity -capacity-sizes 10000,100000
//	                                           # paged base vs small page cache
//	cpnn-bench -capacity -assert-commit-flat -json BENCH_capacity.json
//
// -json additionally writes the replay/monitor/replica series as machine-readable
// records (name, ops/s, p50/p95/p99 latency, allocs per op) — the format of
// the repo's BENCH_*.json trajectory files.
//
// Absolute timings depend on the host; the orderings, ratios and crossovers
// are the reproduction targets (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to reproduce (9-14); 0 runs all")
		queries    = flag.Int("queries", 100, "queries averaged per data point (paper: 100)")
		seed       = flag.Int64("seed", 1, "workload seed")
		n          = flag.Int("n", 0, "dataset size override (0 = Long Beach 53,144)")
		basicSteps = flag.Int("basic-steps", 0, "Simpson steps for the Basic baseline (0 = automatic)")
		gaussBars  = flag.Int("gauss-bars", 300, "histogram bars for Gaussian pdfs (paper: 300)")
		tolerance  = flag.Float64("tolerance", 0.01, "default tolerance Delta (paper: 0.01)")

		replay     = flag.String("replay", "", "replay a query-workload file through the batch path instead of a figure")
		dataPath   = flag.String("data", "", "dataset file for -replay (default: generate the Long Beach set)")
		batchSizes = flag.String("batch-sizes", "", "comma-separated batch sizes (-replay default 1,8,64,512; -monitor default 1,4,16,64,256)")
		workers    = flag.Int("workers", 0, "batch worker pool size for -replay (0 = GOMAXPROCS)")
		p          = flag.Float64("p", 0.3, "replay threshold P")
		delta      = flag.Float64("delta", 0.01, "replay tolerance Delta")

		repl        = flag.Bool("replica", false, "run the WAL-shipped replication experiment instead of a figure")
		replObjects = flag.Int("replica-objects", 5000, "replication experiment dataset size (catch-up phase)")
		replCommits = flag.Int("replica-commits", 50, "replication experiment update commits per batch size")

		shardOn      = flag.Bool("shard", false, "run the scatter-gather sharding experiment instead of a figure")
		shardObjects = flag.Int("shard-objects", 20000, "sharding experiment dataset size")
		shardQueries = flag.Int("shard-queries", 400, "sharding experiment C-PNN queries per shard count")
		shardCounts  = flag.String("shard-counts", "", "comma-separated shard counts (default 1,2,4,8)")

		capOn      = flag.Bool("capacity", false, "run the capacity experiment (paged base + small page cache) instead of a figure")
		capSizes   = flag.String("capacity-sizes", "", "comma-separated dataset sizes (default 10000,30000,100000)")
		capCommits = flag.Int("capacity-commits", 200, "capacity experiment update commits per size")
		capBatch   = flag.Int("capacity-batch", 8, "capacity experiment updates per commit (the Δ in O(Δ))")
		capQueries = flag.Int("capacity-queries", 50, "capacity experiment C-PNN probes per size")
		capCache   = flag.Int64("capacity-cache", 256<<10, "capacity experiment page-cache budget in bytes")
		capFlat    = flag.Bool("assert-commit-flat", false, "exit non-zero if the largest size's commit p50 exceeds 4x the smallest's (regression gate)")

		mon         = flag.Bool("monitor", false, "run the continuous-monitoring experiment instead of a figure")
		monObjects  = flag.Int("monitor-objects", 10000, "monitoring experiment dataset size")
		monQueries  = flag.Int("monitor-queries", 200, "monitoring experiment standing-query count")
		monCommits  = flag.Int("monitor-commits", 100, "monitoring experiment update commits per batch size")
		monBaseline = flag.Bool("monitor-baseline", false, "disable incremental evaluation (from-scratch baseline rows)")
		noCliff     = flag.Bool("assert-no-cliff", false, "exit non-zero if batch=64 ops/s falls below batch=16 ops/s (regression gate)")

		jsonOut = flag.String("json", "", "also write machine-readable results (replay/monitor modes) to this file")
	)
	var lo obs.LogOptions
	lo.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := lo.Logger(os.Stderr, "cpnn-bench")
	if err != nil {
		fatal(err)
	}

	modes := 0
	for _, on := range []bool{*replay != "", *mon, *repl, *shardOn, *capOn} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fatal(fmt.Errorf("-replay, -monitor, -replica, -shard and -capacity are mutually exclusive"))
	}
	if *replay != "" {
		logger.Info("running workload replay", "file", *replay, "batch_sizes", *batchSizes)
		if err := runReplay(*replay, *dataPath, *batchSizes, *workers, *n, *seed,
			verify.Constraint{P: *p, Delta: *delta}, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *mon {
		logger.Info("running continuous-monitoring experiment",
			"objects", *monObjects, "standing_queries", *monQueries, "commits", *monCommits)
		if err := runMonitor(*batchSizes, *monObjects, *monQueries, *monCommits, *seed,
			*monBaseline, *noCliff, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *repl {
		logger.Info("running replication experiment", "objects", *replObjects, "commits", *replCommits)
		if err := runReplica(*batchSizes, *replObjects, *replCommits, *seed, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *shardOn {
		logger.Info("running sharding experiment", "objects", *shardObjects, "queries", *shardQueries)
		if err := runShard(*shardCounts, *shardObjects, *shardQueries, *seed, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *capOn {
		logger.Info("running capacity experiment",
			"sizes", *capSizes, "cache_bytes", *capCache, "commits", *capCommits)
		if err := runCapacity(*capSizes, *capCommits, *capBatch, *capQueries, *capCache,
			*seed, *capFlat, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *noCliff {
		fatal(fmt.Errorf("-assert-no-cliff applies to -monitor mode"))
	}
	if *capFlat {
		fatal(fmt.Errorf("-assert-commit-flat applies to -capacity mode"))
	}
	if *jsonOut != "" {
		fatal(fmt.Errorf("-json applies to -replay, -monitor and -replica modes"))
	}

	cfg := exp.Config{
		Queries:    *queries,
		Seed:       *seed,
		DatasetN:   *n,
		BasicSteps: *basicSteps,
		GaussBars:  *gaussBars,
		Tolerance:  *tolerance,
	}
	if *fig == 0 {
		if err := exp.RunAll(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	run, ok := exp.Registry[*fig]
	if !ok {
		fatal(fmt.Errorf("unknown figure %d (valid: 9-14)", *fig))
	}
	table, err := run(cfg)
	if err != nil {
		fatal(err)
	}
	table.Print(os.Stdout)
}

// parseSizes parses a comma-separated batch-size list, or returns def when
// empty.
func parseSizes(csv string, def []int) ([]int, error) {
	if strings.TrimSpace(csv) == "" {
		return def, nil
	}
	var sizes []int
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad batch size %q (want positive integers, comma-separated)", s)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}

// runMonitor runs the continuous-monitoring experiment and prints (and
// optionally records) its table.
func runMonitor(sizesCSV string, objects, queries, commits int, seed int64, baseline, noCliff bool, jsonOut string) error {
	sizes, err := parseSizes(sizesCSV, []int{1, 4, 16, 64, 256})
	if err != nil {
		return err
	}
	report, err := exp.RunMonitor(exp.MonitorConfig{
		Objects:    objects,
		Queries:    queries,
		Commits:    commits,
		BatchSizes: sizes,
		Seed:       seed,
		Baseline:   baseline,
	})
	if err != nil {
		return err
	}
	report.Print(os.Stdout)
	if jsonOut != "" {
		if err := exp.WriteBenchJSON(jsonOut, report.Records()); err != nil {
			return err
		}
	}
	if noCliff {
		return assertNoCliff(report)
	}
	return nil
}

// runReplica runs the WAL-shipped replication experiment (catch-up
// throughput and steady-state replication lag per commit batch size) and
// prints (and optionally records) its table.
func runReplica(sizesCSV string, objects, commits int, seed int64, jsonOut string) error {
	sizes, err := parseSizes(sizesCSV, []int{1, 4, 16, 64, 256})
	if err != nil {
		return err
	}
	report, err := exp.RunReplica(exp.ReplicaConfig{
		Objects:    objects,
		Commits:    commits,
		BatchSizes: sizes,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	report.Print(os.Stdout)
	if jsonOut != "" {
		return exp.WriteBenchJSON(jsonOut, report.Records())
	}
	return nil
}

// runShard runs the scatter-gather sharding experiment (query throughput and
// gather fan-out per shard count) and prints (and optionally records) its
// table.
func runShard(countsCSV string, objects, queries int, seed int64, jsonOut string) error {
	counts, err := parseSizes(countsCSV, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	report, err := exp.RunShard(exp.ShardConfig{
		Objects:     objects,
		Queries:     queries,
		ShardCounts: counts,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	report.Print(os.Stdout)
	if jsonOut != "" {
		return exp.WriteBenchJSON(jsonOut, report.Records())
	}
	return nil
}

// runCapacity runs the capacity experiment (datasets behind a pinned-small
// page cache; commit and query latency vs dataset size) and prints (and
// optionally records) its table.
func runCapacity(sizesCSV string, commits, batch, queries int, cacheBytes, seed int64, assertFlat bool, jsonOut string) error {
	sizes, err := parseSizes(sizesCSV, []int{10000, 30000, 100000})
	if err != nil {
		return err
	}
	report, err := exp.RunCapacity(exp.CapacityConfig{
		Sizes:      sizes,
		Commits:    commits,
		BatchSize:  batch,
		Queries:    queries,
		CacheBytes: cacheBytes,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	report.Print(os.Stdout)
	if jsonOut != "" {
		if err := exp.WriteBenchJSON(jsonOut, report.Records()); err != nil {
			return err
		}
	}
	if assertFlat {
		return assertCommitFlat(report)
	}
	return nil
}

// assertCommitFlat is the bench-regression gate for O(Δ) commits: the commit
// p50 at the largest dataset size must stay within a small factor of the
// smallest size's. A linear-in-n cost anywhere on the commit path (an O(n)
// copy in view materialization, an accidental flatten, a full index rebuild)
// blows well past 4x between 10k and 100k objects; honest noise does not.
func assertCommitFlat(report *exp.CapacityReport) error {
	if len(report.Rows) < 2 {
		return fmt.Errorf("-assert-commit-flat needs at least two dataset sizes")
	}
	lo, hi := report.Rows[0], report.Rows[len(report.Rows)-1]
	const factor = 4.0
	if hi.CommitP50 > time.Duration(factor*float64(lo.CommitP50)) {
		return fmt.Errorf("commit cost scales with n: p50 %v at n=%d vs %v at n=%d (limit %gx)",
			hi.CommitP50, hi.Objects, lo.CommitP50, lo.Objects, factor)
	}
	fmt.Printf("commit flat: p50 %v at n=%d within %gx of %v at n=%d\n",
		hi.CommitP50, hi.Objects, factor, lo.CommitP50, lo.Objects)
	return nil
}

// assertNoCliff is the bench-regression gate: larger update batches touch
// more standing queries per commit but also amortize the commit overhead, so
// update throughput must not collapse between batch=16 and batch=64 — the
// cliff the incremental evaluation path exists to remove.
func assertNoCliff(report *exp.MonitorReport) error {
	var ops16, ops64 float64
	for _, row := range report.Rows {
		switch row.BatchSize {
		case 16:
			ops16 = row.OpsPerSec
		case 64:
			ops64 = row.OpsPerSec
		}
	}
	if ops16 == 0 || ops64 == 0 {
		return fmt.Errorf("-assert-no-cliff needs batch sizes 16 and 64 in the run")
	}
	if ops64 < ops16 {
		return fmt.Errorf("batch-64 cliff: %.0f ops/s at batch=64 < %.0f ops/s at batch=16", ops64, ops16)
	}
	fmt.Printf("no cliff: batch=64 %.0f ops/s >= batch=16 %.0f ops/s\n", ops64, ops16)
	return nil
}

// runReplay loads (or generates) the dataset and query workload and prints
// the amortization table.
func runReplay(queryPath, dataPath, sizesCSV string, workers, n int, seed int64, c verify.Constraint, jsonOut string) error {
	qf, err := os.Open(queryPath)
	if err != nil {
		return err
	}
	defer qf.Close()
	qs, err := uncertain.ReadQueries(qf)
	if err != nil {
		return err
	}

	var ds *uncertain.Dataset
	if dataPath != "" {
		f, err := os.Open(dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if ds, err = uncertain.Read(f); err != nil {
			return err
		}
		if err := ds.Validate(); err != nil {
			return err
		}
	} else {
		opt := uncertain.LongBeachOptions(seed)
		if n > 0 {
			opt.N = n
		}
		if ds, err = uncertain.GenerateUniform(opt); err != nil {
			return err
		}
	}

	sizes, err := parseSizes(sizesCSV, []int{1, 8, 64, 512})
	if err != nil {
		return err
	}

	report, err := exp.Replay(exp.ReplayConfig{
		Dataset:    ds,
		Queries:    qs,
		BatchSizes: sizes,
		Workers:    workers,
		Constraint: c,
	})
	if err != nil {
		return err
	}
	report.Print(os.Stdout)
	if jsonOut != "" {
		return exp.WriteBenchJSON(jsonOut, report.Records())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpnn-bench:", err)
	os.Exit(1)
}
