package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want core.Strategy
		ok   bool
	}{
		{"vr", core.VR, true},
		{"refine", core.Refine, true},
		{"basic", core.Basic, true},
		{"BASIC", 0, false},
		{"", 0, false},
		{"monte-carlo", 0, false},
	}
	for _, tc := range cases {
		got, err := parseStrategy(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseStrategy(%q) error = %v", tc.in, err)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseStrategy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestLoadDataset(t *testing.T) {
	if _, err := loadDataset("", false, 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadDataset("/nonexistent/file", false, 1); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "ds.txt")
	if err := os.WriteFile(path, []byte("1 2\n5 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := loadDataset(path, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Errorf("loaded %d objects", ds.Len())
	}
}

func TestLoadDatasetGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("full Long Beach generation in -short mode")
	}
	ds, err := loadDataset("", true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 53144 {
		t.Errorf("generated %d objects, want 53144", ds.Len())
	}
}
