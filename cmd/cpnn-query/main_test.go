package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want core.Strategy
		ok   bool
	}{
		{"vr", core.VR, true},
		{"refine", core.Refine, true},
		{"basic", core.Basic, true},
		{"BASIC", 0, false},
		{"", 0, false},
		{"monte-carlo", 0, false},
	}
	for _, tc := range cases {
		got, err := parseStrategy(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseStrategy(%q) error = %v", tc.in, err)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseStrategy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestLoadDataset(t *testing.T) {
	if _, err := loadDataset("", false, 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadDataset("/nonexistent/file", false, 1); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "ds.txt")
	if err := os.WriteFile(path, []byte("1 2\n5 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := loadDataset(path, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Errorf("loaded %d objects", ds.Len())
	}
}

func TestValidateInputs(t *testing.T) {
	ok := verify.Constraint{P: 0.3, Delta: 0.01}
	cases := []struct {
		name     string
		c        verify.Constraint
		strategy string
		k        int
		pnn      bool
		wantErr  bool
	}{
		{"defaults", ok, "vr", 0, false, false},
		{"knn", ok, "vr", 3, false, false},
		{"P zero", verify.Constraint{P: 0, Delta: 0.01}, "vr", 0, false, true},
		{"P above one", verify.Constraint{P: 1.5, Delta: 0.01}, "vr", 0, false, true},
		{"negative delta", verify.Constraint{P: 0.3, Delta: -0.1}, "vr", 0, false, true},
		{"delta above one", verify.Constraint{P: 0.3, Delta: 2}, "vr", 0, false, true},
		{"negative k", ok, "vr", -1, false, true},
		{"bad strategy", ok, "quantum", 0, false, true},
		// -pnn ignores the constraint, so a bad one must not block it.
		{"pnn skips constraint", verify.Constraint{P: 0, Delta: 0}, "vr", 0, true, false},
		{"pnn still checks k", ok, "vr", -2, true, true},
	}
	for _, tc := range cases {
		_, err := validateInputs(tc.c, tc.strategy, tc.k, tc.pnn)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: validateInputs error = %v, wantErr %t", tc.name, err, tc.wantErr)
		}
	}
}

// TestDatagenRoundTrip checks that datasets serialized the way cpnn-datagen
// writes them (Dataset.WriteTo) parse back through this command's loader, for
// both line formats: "lo hi" uniform lines and "hist ... | ..." histogram
// lines (the -pdf gauss and -pdf hist outputs).
func TestDatagenRoundTrip(t *testing.T) {
	opt := uncertain.GenOptions{
		N:       200,
		Domain:  500,
		MeanLen: 4,
		MinLen:  0.5,
		MaxLen:  20,
		Seed:    5,
	}
	gen := map[string]func() (*uncertain.Dataset, error){
		"uniform": func() (*uncertain.Dataset, error) { return uncertain.GenerateUniform(opt) },
		"gauss":   func() (*uncertain.Dataset, error) { return uncertain.GenerateGaussian(opt, 40) },
		"hist":    func() (*uncertain.Dataset, error) { return uncertain.GenerateHistogram(opt, 8) },
	}
	for name, fn := range gen {
		t.Run(name, func(t *testing.T) {
			ds, err := fn()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), name+".txt")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ds.WriteTo(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			got, err := loadDataset(path, false, 1)
			if err != nil {
				t.Fatalf("round-trip parse: %v", err)
			}
			if got.Len() != ds.Len() {
				t.Fatalf("round-trip lost objects: %d != %d", got.Len(), ds.Len())
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("round-tripped dataset invalid: %v", err)
			}
			for i := 0; i < ds.Len(); i++ {
				want, have := ds.Object(i).Region(), got.Object(i).Region()
				if dLo, dHi := have.Lo-want.Lo, have.Hi-want.Hi; dLo != 0 || dHi != 0 {
					t.Fatalf("object %d region drifted: %v -> %v", i, want, have)
				}
			}

			// The reloaded dataset must answer queries: run one C-PNN
			// end-to-end like the command would.
			eng, err := core.NewEngine(got)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.CPNN(opt.Domain/2, verify.Constraint{P: 0.1, Delta: 0.05}, core.Options{}); err != nil {
				t.Fatalf("query over round-tripped dataset: %v", err)
			}
		})
	}
}

func TestLoadDatasetGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("full Long Beach generation in -short mode")
	}
	ds, err := loadDataset("", true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 53144 {
		t.Errorf("generated %d objects, want 53144", ds.Len())
	}
}
