// Command cpnn-query runs ad-hoc probabilistic nearest-neighbor queries over
// a dataset file (in the format written by cpnn-datagen) or a freshly
// generated Long-Beach-like dataset.
//
// Examples:
//
//	cpnn-query -gen -q 5000 -p 0.3 -delta 0.01
//	cpnn-query -data intervals.txt -q 120.5 -p 0.5 -strategy basic
//	cpnn-query -gen -q 5000 -pnn            # exact probabilities
//	cpnn-query -gen -q 5000 -k 3 -p 0.5     # constrained 3-NN
//	cpnn-query -gen -batch queries.txt      # batch-evaluate a query file
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

func main() {
	var (
		dataPath = flag.String("data", "", "dataset file (one 'lo hi' or 'hist ...' line per object)")
		gen      = flag.Bool("gen", false, "generate the Long-Beach-like dataset instead of loading one")
		seed     = flag.Int64("seed", 1, "generator seed for -gen")
		q        = flag.Float64("q", 0, "query point")
		p        = flag.Float64("p", 0.3, "threshold P in (0,1]")
		delta    = flag.Float64("delta", 0.01, "tolerance Delta in [0,1]")
		strategy = flag.String("strategy", "vr", "evaluation strategy: vr, refine or basic")
		pnnMode  = flag.Bool("pnn", false, "report exact qualification probabilities instead of a C-PNN")
		k        = flag.Int("k", 0, "evaluate a constrained k-NN query with this k (0 = plain C-PNN)")
		batch    = flag.String("batch", "", "batch-evaluate every query point in this file (one per line)")
		workers  = flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print per-phase statistics")
	)
	var lo obs.LogOptions
	lo.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := lo.Logger(os.Stderr, "cpnn-query")
	if err != nil {
		fatal(err)
	}

	// Reject invalid user input before any dataset or engine work: a bad
	// threshold should fail in microseconds, not after generating 53k objects.
	c := verify.Constraint{P: *p, Delta: *delta}
	st, err := validateInputs(c, *strategy, *k, *pnnMode)
	if err != nil {
		fatal(err)
	}
	var batchQs []float64
	if *batch != "" {
		if *pnnMode || *k > 0 {
			fatal(fmt.Errorf("-batch is a C-PNN mode; it cannot combine with -pnn or -k"))
		}
		f, err := os.Open(*batch)
		if err != nil {
			fatal(err)
		}
		batchQs, err = uncertain.ReadQueries(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if len(batchQs) == 0 {
			fatal(fmt.Errorf("query file %s holds no query points", *batch))
		}
	}

	loadStart := time.Now()
	ds, err := loadDataset(*dataPath, *gen, *seed)
	if err != nil {
		fatal(err)
	}
	eng, err := core.NewEngine(ds)
	if err != nil {
		fatal(err)
	}
	logger.Debug("engine ready",
		"objects", ds.Len(), "build_ms", float64(time.Since(loadStart))/float64(time.Millisecond))

	if *batch != "" {
		br, err := eng.CPNNBatch(batchQs, c, core.BatchOptions{
			Options: core.Options{Strategy: st},
			Workers: *workers,
		})
		if err != nil {
			fatal(err)
		}
		for i, res := range br.Results {
			fmt.Printf("C-PNN(q=%g): %d answers of %d candidates", batchQs[i], len(res.Answers), res.Stats.Candidates)
			for _, a := range res.Answers {
				fmt.Printf("  %d:[%.4f,%.4f]", a.ID, a.Bounds.L, a.Bounds.U)
			}
			fmt.Println()
		}
		bs := br.Stats
		fmt.Printf("batch: %d queries, %d workers, wall %v (%.0f queries/s), engine time %v\n",
			bs.Queries, bs.Workers, bs.Wall.Round(time.Microsecond),
			float64(bs.Queries)/bs.Wall.Seconds(), bs.Aggregate.Total().Round(time.Microsecond))
		return
	}

	switch {
	case *pnnMode:
		probs, st, err := eng.PNN(*q, core.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("PNN(q=%g): %d candidates\n", *q, st.Candidates)
		for _, pr := range probs {
			fmt.Printf("  object %6d  p=%.4f\n", pr.ID, pr.P)
		}
		if *verbose {
			printStats(st)
		}
	case *k > 0:
		answers, _, err := eng.CKNN(*q, c, core.KNNOptions{K: *k, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C-P%dNN(q=%g, P=%g, Delta=%g):\n", *k, *q, *p, *delta)
		for _, a := range answers {
			if a.Status == verify.Satisfy {
				fmt.Printf("  object %6d  p in [%.4f, %.4f]\n", a.ID, a.Bounds.L, a.Bounds.U)
			}
		}
	default:
		res, err := eng.CPNN(*q, c, core.Options{Strategy: st})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C-PNN(q=%g, P=%g, Delta=%g) via %v: %d answers of %d candidates\n",
			*q, *p, *delta, st, len(res.Answers), res.Stats.Candidates)
		for _, a := range res.Answers {
			fmt.Printf("  object %6d  p in [%.4f, %.4f]\n", a.ID, a.Bounds.L, a.Bounds.U)
		}
		if *verbose {
			printStats(res.Stats)
		}
	}
}

func loadDataset(path string, gen bool, seed int64) (*uncertain.Dataset, error) {
	switch {
	case gen:
		return uncertain.GenerateUniform(uncertain.LongBeachOptions(seed))
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ds, err := uncertain.Read(f)
		if err != nil {
			return nil, err
		}
		// Same ingestion contract as cpnn-serve: file datasets are checked
		// for pdf invariants before any query runs against them.
		if err := ds.Validate(); err != nil {
			return nil, err
		}
		return ds, nil
	default:
		return nil, fmt.Errorf("provide -data FILE or -gen")
	}
}

// validateInputs checks every query parameter up front. The constraint is
// only validated for the modes that use it (-pnn reports raw probabilities
// and carries no threshold).
func validateInputs(c verify.Constraint, strategy string, k int, pnnMode bool) (core.Strategy, error) {
	st, err := parseStrategy(strategy)
	if err != nil {
		return 0, err
	}
	if k < 0 {
		return 0, fmt.Errorf("k = %d must be >= 0 (0 disables k-NN mode)", k)
	}
	if !pnnMode {
		if err := c.Validate(); err != nil {
			return 0, err
		}
	}
	return st, nil
}

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "vr":
		return core.VR, nil
	case "refine":
		return core.Refine, nil
	case "basic":
		return core.Basic, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (vr, refine, basic)", s)
	}
}

func printStats(st core.Stats) {
	fmt.Printf("stats: |C|=%d M=%d f_min=%.3f filter=%v init=%v verify=%v refine=%v\n",
		st.Candidates, st.Subregions, st.FMin,
		st.FilterTime, st.InitTime, st.VerifyTime, st.RefineTime)
	if len(st.VerifiersApplied) > 0 {
		fmt.Printf("verifiers: %v unknown-after=%v refined=%d integrations=%d\n",
			st.VerifiersApplied, st.UnknownAfter, st.RefinedObjects, st.Integrations)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpnn-query:", err)
	os.Exit(1)
}
