// Command cpnn-datagen emits synthetic uncertain-interval datasets in the
// engine's text format, for use with cpnn-query -data.
//
// Examples:
//
//	cpnn-datagen -o lb.txt                       # Long-Beach-like, uniform pdfs
//	cpnn-datagen -pdf gauss -n 10000 -o g.txt    # Gaussian pdfs (300 bars)
//	cpnn-datagen -pdf hist -n 500 -o h.txt       # random histogram pdfs
//	cpnn-datagen -queries 512 -o q.txt           # query workload for -batch/-replay
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/uncertain"
)

func main() {
	var (
		out       = flag.String("o", "", "output file (default stdout)")
		n         = flag.Int("n", 0, "object count (0 = Long Beach 53,144)")
		pdfKind   = flag.String("pdf", "uniform", "pdf family: uniform, gauss or hist")
		seed      = flag.Int64("seed", 1, "generator seed")
		gaussBars = flag.Int("gauss-bars", 300, "histogram bars for -pdf gauss")
		histBars  = flag.Int("hist-bars", 8, "max bars for -pdf hist")
		queries   = flag.Int("queries", 0, "emit a query workload of this many points instead of a dataset")
	)
	var lo obs.LogOptions
	lo.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := lo.Logger(os.Stderr, "cpnn-datagen")
	if err != nil {
		fatal(err)
	}

	// A negative count is a typo, not a request for the Long Beach default;
	// reject it before any generation work.
	if *n < 0 {
		fatal(fmt.Errorf("object count -n %d must be >= 0 (0 selects the Long Beach 53,144)", *n))
	}
	if *queries < 0 {
		fatal(fmt.Errorf("query count -queries %d must be >= 0", *queries))
	}

	opt := uncertain.LongBeachOptions(*seed)
	if *n > 0 {
		opt.N = *n
	}

	if *queries > 0 {
		qs := uncertain.QueryWorkload(*queries, opt.Domain, *seed)
		w, closeFn, err := outWriter(*out)
		if err != nil {
			fatal(err)
		}
		if err := uncertain.WriteQueries(w, qs); err != nil {
			fatal(err)
		}
		if err := closeFn(); err != nil {
			fatal(err)
		}
		logger.Info("wrote query workload", "queries", len(qs), "out", *out)
		return
	}

	var ds *uncertain.Dataset
	switch *pdfKind {
	case "uniform":
		ds, err = uncertain.GenerateUniform(opt)
	case "gauss":
		ds, err = uncertain.GenerateGaussian(opt, *gaussBars)
	case "hist":
		ds, err = uncertain.GenerateHistogram(opt, *histBars)
	default:
		err = fmt.Errorf("unknown pdf family %q (uniform, gauss, hist)", *pdfKind)
	}
	if err != nil {
		fatal(err)
	}

	w, closeFn, err := outWriter(*out)
	if err != nil {
		fatal(err)
	}
	if _, err := ds.WriteTo(w); err != nil {
		fatal(err)
	}
	if err := closeFn(); err != nil {
		fatal(err)
	}
	logger.Info("wrote dataset", "objects", ds.Len(), "pdf", *pdfKind, "out", *out)
}

// outWriter opens the output target: a file when path is non-empty, stdout
// otherwise. The returned close function flushes and closes the file (a
// no-op for stdout).
func outWriter(path string) (io.Writer, func() error, error) {
	if path == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpnn-datagen:", err)
	os.Exit(1)
}
