// Command cpnn-datagen emits synthetic uncertain-interval datasets in the
// engine's text format, for use with cpnn-query -data.
//
// Examples:
//
//	cpnn-datagen -o lb.txt                       # Long-Beach-like, uniform pdfs
//	cpnn-datagen -pdf gauss -n 10000 -o g.txt    # Gaussian pdfs (300 bars)
//	cpnn-datagen -pdf hist -n 500 -o h.txt       # random histogram pdfs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/uncertain"
)

func main() {
	var (
		out       = flag.String("o", "", "output file (default stdout)")
		n         = flag.Int("n", 0, "object count (0 = Long Beach 53,144)")
		pdfKind   = flag.String("pdf", "uniform", "pdf family: uniform, gauss or hist")
		seed      = flag.Int64("seed", 1, "generator seed")
		gaussBars = flag.Int("gauss-bars", 300, "histogram bars for -pdf gauss")
		histBars  = flag.Int("hist-bars", 8, "max bars for -pdf hist")
	)
	flag.Parse()

	// A negative count is a typo, not a request for the Long Beach default;
	// reject it before any generation work.
	if *n < 0 {
		fatal(fmt.Errorf("object count -n %d must be >= 0 (0 selects the Long Beach 53,144)", *n))
	}

	opt := uncertain.LongBeachOptions(*seed)
	if *n > 0 {
		opt.N = *n
	}

	var (
		ds  *uncertain.Dataset
		err error
	)
	switch *pdfKind {
	case "uniform":
		ds, err = uncertain.GenerateUniform(opt)
	case "gauss":
		ds, err = uncertain.GenerateGaussian(opt, *gaussBars)
	case "hist":
		ds, err = uncertain.GenerateHistogram(opt, *histBars)
	default:
		err = fmt.Errorf("unknown pdf family %q (uniform, gauss, hist)", *pdfKind)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if _, err := ds.WriteTo(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "cpnn-datagen: wrote %d objects\n", ds.Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpnn-datagen:", err)
	os.Exit(1)
}
