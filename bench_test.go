// Benchmarks regenerating the measured quantity behind every table and
// figure of the paper's evaluation (§V). Each BenchmarkFigureNN times the
// per-query work of the corresponding experiment at its default parameters;
// the full swept series (all thresholds, tolerances and dataset sizes, with
// averaged rows exactly as the paper plots them) is produced by
// `go run ./cmd/cpnn-bench` and recorded in EXPERIMENTS.md.
//
// BenchmarkVerifier* covers Table III (per-verifier complexity), and the
// Ablation* benches measure the design choices DESIGN.md calls out: verifier
// ordering, quadrature sizing and the incremental-refinement prior.
package pnn_test

import (
	"sync"
	"testing"

	pnn "repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/refine"
	"repro/internal/subregion"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// benchEnv lazily builds the Long-Beach-like engine and workload shared by
// the figure benchmarks. Sizes are trimmed (vs the paper's 100-query
// averages) so `go test -bench=.` completes in minutes on one core.
type benchEnv struct {
	once    sync.Once
	eng     *core.Engine
	gaussE  *core.Engine
	queries []float64
	err     error
}

var env benchEnv

func setup(b *testing.B) *benchEnv {
	b.Helper()
	env.once.Do(func() {
		opt := uncertain.LongBeachOptions(1)
		ds, err := uncertain.GenerateUniform(opt)
		if err != nil {
			env.err = err
			return
		}
		env.eng, err = core.NewEngine(ds)
		if err != nil {
			env.err = err
			return
		}
		gds, err := uncertain.GenerateGaussianAnalytic(opt)
		if err != nil {
			env.err = err
			return
		}
		env.gaussE, err = core.NewEngine(gds)
		if err != nil {
			env.err = err
			return
		}
		env.queries = uncertain.QueryWorkload(64, opt.Domain, 2)
	})
	if env.err != nil {
		b.Fatal(env.err)
	}
	return &env
}

func (e *benchEnv) query(i int) float64 { return e.queries[i%len(e.queries)] }

// BenchmarkFigure9Filtering times the filtering phase alone (the fast side
// of paper Fig. 9).
func BenchmarkFigure9Filtering(b *testing.B) {
	e := setup(b)
	sizes := map[string]int{"n=5000": 5000, "n=20000": 20000, "n=53144": 0}
	for name, n := range sizes {
		b.Run(name, func(b *testing.B) {
			eng := e.eng
			if n > 0 {
				opt := uncertain.LongBeachOptions(1)
				opt.N = n
				ds, err := uncertain.GenerateUniform(opt)
				if err != nil {
					b.Fatal(err)
				}
				eng, err = core.NewEngine(ds)
				if err != nil {
					b.Fatal(err)
				}
			}
			c := verify.Constraint{P: 0.99, Delta: 0}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The VR strategy at a high threshold is dominated by
				// filter+init; subtracting nothing, this still isolates the
				// cheap path the paper contrasts Basic against.
				if _, err := eng.CPNN(e.query(i), c, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure9Basic times the Basic strategy (the slow side of paper
// Fig. 9) at two dataset sizes bracketing the paper's crossover.
func BenchmarkFigure9Basic(b *testing.B) {
	for _, n := range []int{2000, 20000} {
		opt := uncertain.LongBeachOptions(1)
		opt.N = n
		ds, err := uncertain.GenerateUniform(opt)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.NewEngine(ds)
		if err != nil {
			b.Fatal(err)
		}
		qs := uncertain.QueryWorkload(16, opt.Domain, 2)
		b.Run(map[int]string{2000: "n=2000", 20000: "n=20000"}[n], func(b *testing.B) {
			c := verify.Constraint{P: 0.3, Delta: 0.01}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.CPNN(qs[i%len(qs)], c, core.Options{Strategy: core.Basic}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure10 times one C-PNN per strategy at the paper's default
// P = 0.3 (paper Fig. 10's headline comparison point).
func BenchmarkFigure10(b *testing.B) {
	e := setup(b)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	for _, strat := range []core.Strategy{core.Basic, core.Refine, core.VR} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.eng.CPNN(e.query(i), c, core.Options{Strategy: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure10HighThreshold repeats the comparison at P = 0.7, where
// the paper reports VR 40x ahead of Refine.
func BenchmarkFigure10HighThreshold(b *testing.B) {
	e := setup(b)
	c := verify.Constraint{P: 0.7, Delta: 0.01}
	for _, strat := range []core.Strategy{core.Refine, core.VR} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.eng.CPNN(e.query(i), c, core.Options{Strategy: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure11Phases reports the VR phase split via ReportMetric
// (paper Fig. 11): ns spent filtering / verifying / refining per query.
func BenchmarkFigure11Phases(b *testing.B) {
	e := setup(b)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	var filter, vrf, ref int64
	for i := 0; i < b.N; i++ {
		res, err := e.eng.CPNN(e.query(i), c, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		filter += int64(res.Stats.FilterTime)
		vrf += int64(res.Stats.InitTime + res.Stats.VerifyTime)
		ref += int64(res.Stats.RefineTime)
	}
	b.ReportMetric(float64(filter)/float64(b.N), "filter-ns/op")
	b.ReportMetric(float64(vrf)/float64(b.N), "verify-ns/op")
	b.ReportMetric(float64(ref)/float64(b.N), "refine-ns/op")
}

// BenchmarkFigure12Verifiers times each verifier pass in isolation on a
// prepared subregion table (paper Fig. 12 measures their effect; Table III
// their cost: RS O(|C|), L-SR and U-SR O(|C|·M)).
func BenchmarkFigure12Verifiers(b *testing.B) {
	e := setup(b)
	table := buildTable(b, e.eng, e.queries[0])
	verifiers := []verify.Verifier{verify.RS{}, verify.LSR{}, verify.USR{}}
	for _, v := range verifiers {
		b.Run(v.Name(), func(b *testing.B) {
			n := table.NumCandidates()
			bounds := make([]verify.Bounds, n)
			status := make([]verify.Status, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range bounds {
					bounds[j] = verify.Bounds{L: 0, U: 1}
					status[j] = verify.Unknown
				}
				v.Apply(table, bounds, status)
			}
		})
	}
}

// BenchmarkFigure13Tolerance times full VR queries at the extremes of the
// paper's tolerance sweep.
func BenchmarkFigure13Tolerance(b *testing.B) {
	e := setup(b)
	for _, d := range []float64{0, 0.2} {
		name := "delta=0"
		if d > 0 {
			name = "delta=0.2"
		}
		b.Run(name, func(b *testing.B) {
			c := verify.Constraint{P: 0.3, Delta: d}
			for i := 0; i < b.N; i++ {
				if _, err := e.eng.CPNN(e.query(i), c, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure14Gaussian times the strategies on Gaussian uncertainty
// (paper Fig. 14, log scale — Basic collapses, VR stays interactive).
func BenchmarkFigure14Gaussian(b *testing.B) {
	e := setup(b)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	cases := []struct {
		name string
		opt  core.Options
	}{
		{"Basic", core.Options{Strategy: core.Basic, BasicSteps: 20000, Bins: 300}},
		{"Refine", core.Options{Strategy: core.Refine, Bins: 300}},
		{"VR", core.Options{Strategy: core.VR, Bins: 300}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.gaussE.CPNN(e.query(i), c, tc.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifierScaling exercises Table III's complexity claims: verifier
// cost versus candidate-set size.
func BenchmarkVerifierScaling(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		ds, err := uncertain.GenerateUniform(uncertain.GenOptions{
			N: n * 40, Domain: float64(n * 40), MeanLen: 12, MinLen: 1, MaxLen: 60, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.NewEngine(ds)
		if err != nil {
			b.Fatal(err)
		}
		table := buildTable(b, eng, float64(n*20))
		b.Run(map[int]string{16: "C~16", 64: "C~64", 256: "C~256"}[n], func(b *testing.B) {
			nC := table.NumCandidates()
			b.ReportMetric(float64(nC), "candidates")
			b.ReportMetric(float64(table.NumSubregions()), "subregions")
			bounds := make([]verify.Bounds, nC)
			status := make([]verify.Status, nC)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range bounds {
					bounds[j] = verify.Bounds{L: 0, U: 1}
					status[j] = verify.Unknown
				}
				verify.RS{}.Apply(table, bounds, status)
				verify.LSR{}.Apply(table, bounds, status)
				verify.USR{}.Apply(table, bounds, status)
			}
		})
	}
}

// BenchmarkAblationVerifierOrder compares the paper's cheap-first chain with
// an inverted one — the ordering rationale of Fig. 5.
func BenchmarkAblationVerifierOrder(b *testing.B) {
	e := setup(b)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	orders := map[string][]verify.Verifier{
		"RS-LSR-USR": {verify.RS{}, verify.LSR{}, verify.USR{}},
		"USR-LSR-RS": {verify.USR{}, verify.LSR{}, verify.RS{}},
		"USR-only":   {verify.USR{}},
	}
	for name, chain := range orders {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.eng.CPNN(e.query(i), c, core.Options{Verifiers: chain}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRefinementPrior isolates §IV-D's claim that verifier
// knowledge accelerates refinement: incremental refinement with the verifier
// prior versus the trivial prior on the same unknown object.
func BenchmarkAblationRefinementPrior(b *testing.B) {
	e := setup(b)
	table := buildTable(b, e.eng, e.queries[0])
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	// Pick the candidate with the widest verifier bound: the hardest one.
	vres, err := verify.Run(table, c, verify.DefaultChain())
	if err != nil {
		b.Fatal(err)
	}
	target, widest := 0, -1.0
	for i, bd := range vres.Bounds {
		if w := bd.Width(); w > widest {
			widest, target = w, i
		}
	}
	priors := map[string]refine.Prior{
		"verifier-prior": refine.VerifierPrior{},
		"trivial-prior":  refine.TrivialPrior{},
	}
	for name, prior := range priors {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := refine.Incremental(table, target, c, verify.Bounds{L: 0, U: 1}, prior, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationQuadrature sweeps the Gauss–Legendre rule size for exact
// subregion integration (AutoGLNodes picks exactness; fewer nodes trade
// accuracy for speed).
func BenchmarkAblationQuadrature(b *testing.B) {
	e := setup(b)
	table := buildTable(b, e.eng, e.queries[0])
	for _, nodes := range []int{4, 16, 0} {
		name := map[int]string{4: "gl=4", 16: "gl=16", 0: "gl=auto"}[nodes]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := refine.Exact(table, i%table.NumCandidates(), nodes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubregionBuild times table construction (the initialization the
// paper folds into verification).
func BenchmarkSubregionBuild(b *testing.B) {
	e := setup(b)
	cands := distanceCandidates(b, e.eng, e.queries[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := subregion.Build(cands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPI exercises the facade end-to-end, the path users take.
func BenchmarkPublicAPI(b *testing.B) {
	ds, err := pnn.GenerateUniform(pnn.GenOptions{
		N: 5000, Domain: 5000, MeanLen: 12, MinLen: 1, MaxLen: 60, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := pnn.New(ds)
	if err != nil {
		b.Fatal(err)
	}
	qs := pnn.QueryWorkload(32, 5000, 3)
	c := pnn.Constraint{P: 0.3, Delta: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.CPNN(qs[i%len(qs)], c, pnn.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// buildTable assembles the subregion table for one query of an engine's
// dataset, bypassing the engine so benchmarks can isolate components.
func buildTable(b *testing.B, eng *core.Engine, q float64) *subregion.Table {
	b.Helper()
	table, err := subregion.Build(distanceCandidates(b, eng, q))
	if err != nil {
		b.Fatal(err)
	}
	return table
}

func distanceCandidates(b *testing.B, eng *core.Engine, q float64) []subregion.Candidate {
	b.Helper()
	// Reconstruct the candidate set via the public pipeline pieces.
	ds := eng.Dataset()
	probsDs := ds.Objects()
	fMin := -1.0
	for _, o := range probsDs {
		f := o.Region().MaxDist(q)
		if fMin < 0 || f < fMin {
			fMin = f
		}
	}
	var cands []subregion.Candidate
	for _, o := range probsDs {
		if o.Region().MinDist(q) > fMin {
			continue
		}
		d, err := dist.FromPDF(o.PDF, q)
		if err != nil {
			b.Fatal(err)
		}
		cands = append(cands, subregion.Candidate{ID: o.ID, Dist: d})
	}
	return cands
}
