package shard

import "repro/internal/monitor"

// Subscription is one consumer of the shard monitor's pushed updates. It
// reuses the single-store monitor's Update/Event types and its lossy
// delivery protocol: a subscriber that cannot drain its buffer never blocks
// the monitor — pending updates are dropped and one EventLagged lands in the
// reserved last slot as soon as there is room.
type Subscription struct {
	m   *Monitor
	ids map[uint64]struct{} // nil = all standing queries
	ch  chan monitor.Event

	lagged bool // guarded by m.mu
}

// C returns the event channel. It is closed by Close and when the monitor
// closes.
func (s *Subscription) C() <-chan monitor.Event { return s.ch }

// Close cancels the subscription and closes its channel. Idempotent.
func (s *Subscription) Close() {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	if _, ok := s.m.subs[s]; ok {
		delete(s.m.subs, s)
		close(s.ch)
	}
}

// Subscribe registers a consumer for pushed updates; ids narrows delivery to
// those monitor IDs (empty/nil means all). Buffer semantics match
// monitor.Monitor.Subscribe.
func (m *Monitor) Subscribe(ids []uint64, buffer int) (*Subscription, error) {
	if buffer <= 0 {
		buffer = monitor.DefaultSubscriptionBuffer
	}
	if buffer < 2 {
		buffer = 2
	}
	sub := &Subscription{m: m, ch: make(chan monitor.Event, buffer)}
	if len(ids) > 0 {
		sub.ids = make(map[uint64]struct{}, len(ids))
		for _, id := range ids {
			sub.ids[id] = struct{}{}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, monitor.ErrClosed
	}
	m.subs[sub] = struct{}{}
	return sub, nil
}

// pushLocked fans an update out to every matching subscription; m.mu held.
// The protocol mirrors monitor.(*Monitor).pushLocked — reserved last slot
// for the in-stream lagged marker, drops until fully drained.
func (m *Monitor) pushLocked(u monitor.Update) {
	for sub := range m.subs {
		if sub.ids != nil {
			if _, ok := sub.ids[u.ID]; !ok {
				continue
			}
		}
		if sub.lagged {
			if len(sub.ch) > 0 {
				m.nDropped++
				continue // still draining the pre-lag backlog
			}
			sub.lagged = false
		}
		if len(sub.ch) < cap(sub.ch)-1 {
			sub.ch <- monitor.Event{Type: monitor.EventUpdate, Update: u}
		} else {
			sub.ch <- monitor.Event{Type: monitor.EventLagged} // the reserved slot
			sub.lagged = true
			m.nDropped++
		}
	}
}
