package shard

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/monitor"
	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/verify"
)

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Meta{Shards: 4, Cuts: []float64{1, 2.5, 100}, NextID: 17}
	if err := WriteMeta(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 4 || got.NextID != 17 || len(got.Cuts) != 3 || got.Cuts[1] != 2.5 {
		t.Fatalf("round trip mangled meta: %+v", got)
	}
	for _, bad := range []Meta{
		{Shards: 0},
		{Shards: 2, Cuts: nil},
		{Shards: 3, Cuts: []float64{2, 1}},
		{Shards: 2, Cuts: []float64{math.Inf(1)}},
		{Shards: 2, Cuts: []float64{math.NaN()}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("meta %+v validated", bad)
		}
	}
}

func TestShardForEdges(t *testing.T) {
	cuts := []float64{10, 20}
	for _, tc := range []struct {
		x    float64
		want int
	}{
		{5, 0}, {10, 0}, {10.0001, 1}, {20, 1}, {21, 2},
		{math.Inf(-1), 0}, {math.Inf(1), 2},
	} {
		if got := ShardFor(tc.x, cuts); got != tc.want {
			t.Fatalf("ShardFor(%g) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if got := ShardFor(42, nil); got != 0 {
		t.Fatalf("single-shard routing returned %d", got)
	}
}

// TestSplitStoreReopen splits a populated single store into a cluster,
// reopens it from disk, and checks the router serves identical answers and
// continues the ID sequence.
func TestSplitStoreReopen(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := store.Open(srcDir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var ops []store.Op
	for i := 0; i < 20; i++ {
		lo := float64(i * 10)
		ops = append(ops, store.InsertObject(pdf.MustUniform(lo, lo+5)))
	}
	// A couple of disks, to prove the 2-D family survives the split.
	ops = append(ops,
		store.InsertDisk(geom.Circle{Center: geom.Point{X: 3, Y: 4}, Radius: 1}),
		store.InsertDisk(geom.Circle{Center: geom.Point{X: 150, Y: 0}, Radius: 2}))
	if _, err := src.Apply(ops); err != nil {
		t.Fatal(err)
	}
	view := src.View()
	spec := monitor.Spec{Kind: monitor.KindCPNN, Q: 42,
		Constraint: verify.Constraint{P: 0.3, Delta: 0.01}}
	want, _, err := monitor.Evaluate(view, nil, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	meta, err := SplitStore(srcDir, dstDir, 4, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Shards != 4 || meta.NextID != view.NextID {
		t.Fatalf("split meta %+v, want 4 shards nextID %d", meta, view.NextID)
	}

	c, err := OpenCluster(dstDir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	total, disks := 0, 0
	for _, st := range c.Stores {
		v := st.View()
		total += v.Dataset.Len()
		disks += len(v.Disks)
	}
	if total != 20 || disks != 2 {
		t.Fatalf("cluster holds %d objects, %d disks; want 20, 2", total, disks)
	}
	r, err := c.Router()
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := r.Evaluate(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-split answer diverged:\n got %s\nwant %s", got, want)
	}
	// The ID sequence continues where the single store left off.
	res, err := r.Apply(context.Background(), []store.Op{store.InsertObject(pdf.MustUniform(0, 1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.IDs[0] != view.NextID {
		t.Fatalf("first post-split insert got ID %d, want %d", res.IDs[0], view.NextID)
	}

	// A second split into the same directory must refuse.
	if _, err := SplitStore(srcDir, dstDir, 2, store.Options{}); err == nil {
		t.Fatal("re-split into an existing cluster dir succeeded")
	}
}

func TestRouterValidation(t *testing.T) {
	c, err := CreateCluster(t.TempDir(), 2, nil, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Router()
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Apply(context.Background(), []store.Op{
		store.InsertObject(pdf.MustUniform(0, 1)),
		store.InsertDisk(geom.Circle{Center: geom.Point{X: 1, Y: 1}, Radius: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	oid, did := res.IDs[0], res.IDs[1]

	for name, tc := range map[string]struct {
		ops  []store.Op
		want error
	}{
		"unknown update": {[]store.Op{store.UpdateObject(99, pdf.MustUniform(0, 1))}, store.ErrUnknownID},
		"unknown delete": {[]store.Op{store.Delete(99)}, store.ErrUnknownID},
		"family 1d->2d":  {[]store.Op{store.UpdateDisk(oid, geom.Circle{Center: geom.Point{X: 0, Y: 0}, Radius: 1})}, store.ErrInvalidOp},
		"family 2d->1d":  {[]store.Op{store.UpdateObject(did, pdf.MustUniform(0, 1))}, store.ErrInvalidOp},
		"bad disk":       {[]store.Op{store.InsertDisk(geom.Circle{Radius: -1})}, store.ErrInvalidOp},
		"update after truncate": {[]store.Op{store.Truncate(),
			store.UpdateObject(oid, pdf.MustUniform(0, 1))}, store.ErrUnknownID},
	} {
		if _, err := r.Apply(context.Background(), tc.ops); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", name, err, tc.want)
		}
	}
	// Failed batches must not have committed anything: the object is alive.
	if _, err := r.Apply(context.Background(), []store.Op{store.UpdateObject(oid, pdf.MustUniform(5, 6))}); err != nil {
		t.Fatal(err)
	}
	// In-batch visibility: delete then update the same ID fails.
	if _, err := r.Apply(context.Background(), []store.Op{store.Delete(oid),
		store.UpdateObject(oid, pdf.MustUniform(0, 1))}); !errors.Is(err, store.ErrUnknownID) {
		t.Fatalf("delete-then-update: %v", err)
	}
}

// flakyMember wraps a Member with switchable failure injection.
type flakyMember struct {
	Member
	mu   sync.Mutex
	down bool
}

func (f *flakyMember) fail() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

func (f *flakyMember) setDown(d bool) {
	f.mu.Lock()
	f.down = d
	f.mu.Unlock()
}

func (f *flakyMember) Info() (MemberInfo, error) {
	if f.fail() {
		return MemberInfo{}, errors.New("injected: down")
	}
	return f.Member.Info()
}

func (f *flakyMember) Bound(ctx context.Context, q float64, k int) (BoundInfo, error) {
	if f.fail() {
		return BoundInfo{}, errors.New("injected: down")
	}
	return f.Member.Bound(ctx, q, k)
}

func (f *flakyMember) Gather(ctx context.Context, q, bound float64) ([]Item, uint64, error) {
	if f.fail() {
		return nil, 0, errors.New("injected: down")
	}
	return f.Member.Gather(ctx, q, bound)
}

func (f *flakyMember) Apply(ctx context.Context, payload []byte) (store.ApplyResult, error) {
	if f.fail() {
		return store.ApplyResult{}, errors.New("injected: down")
	}
	return f.Member.Apply(ctx, payload)
}

// TestRouterDeadShard checks partial availability: with one member down, a
// query whose candidate ball provably misses the dead shard's last-known
// extent keeps being served exactly; a query that needs it fails with
// ErrUnavailable; writes routed to it fail; and after the member returns,
// everything reconverges.
func TestRouterDeadShard(t *testing.T) {
	// Two shards with the cut between two well-separated clumps of objects.
	c, err := CreateClusterCuts(t.TempDir(), []float64{500}, nil, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r0, err := NewRouter(RouterConfig{Members: c.Members(), Cuts: c.Meta.Cuts, NextID: c.Meta.NextID})
	if err != nil {
		t.Fatal(err)
	}
	var ops []store.Op
	for i := 0; i < 8; i++ {
		lo := float64(i)
		ops = append(ops, store.InsertObject(pdf.MustUniform(lo, lo+0.5)))
		lo = 1000 + float64(i)
		ops = append(ops, store.InsertObject(pdf.MustUniform(lo, lo+0.5)))
	}
	if _, err := r0.Apply(context.Background(), ops); err != nil {
		t.Fatal(err)
	}

	// Rebuild the router over flaky wrappers (cuts were all zero at create
	// time; recreate with a real cut between the two clumps).
	members := c.Members()
	flaky := make([]*flakyMember, len(members))
	wrapped := make([]Member, len(members))
	for i, m := range members {
		flaky[i] = &flakyMember{Member: m}
		wrapped[i] = flaky[i]
	}
	r, err := NewRouter(RouterConfig{Members: wrapped, Cuts: c.Meta.Cuts, NextID: 0})
	if err != nil {
		t.Fatal(err)
	}

	// Both clumps landed on some shard; find the shard owning the far clump.
	farShard := ShardFor(1000, c.Meta.Cuts)
	nearSpec := monitor.Spec{Kind: monitor.KindPNN, Q: 4}
	farSpec := monitor.Spec{Kind: monitor.KindPNN, Q: 1004}
	wantNear, _, _, err := r.Evaluate(context.Background(), nearSpec, nil)
	if err != nil {
		t.Fatal(err)
	}

	flaky[farShard].setDown(true)

	// The near query survives: the dead shard's cached extent misses its
	// candidate ball.
	if ShardFor(4, c.Meta.Cuts) != farShard {
		got, _, g, err := r.Evaluate(context.Background(), nearSpec, nil)
		if err != nil {
			t.Fatalf("near query with dead far shard: %v", err)
		}
		if !bytes.Equal(got, wantNear) {
			t.Fatalf("near answer changed under partial availability:\n got %s\nwant %s", got, wantNear)
		}
		if g.Contacted >= len(wrapped) {
			t.Fatalf("dead shard counted as contacted")
		}
	}
	// The far query needs the dead shard and must say so.
	if _, _, _, err := r.Evaluate(context.Background(), farSpec, nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("far query: got %v, want ErrUnavailable", err)
	}
	// A write routed to the dead shard fails unavailable.
	if _, err := r.Apply(context.Background(), []store.Op{store.InsertObject(pdf.MustUniform(1000, 1001))}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("write to dead shard: got %v, want ErrUnavailable", err)
	}

	flaky[farShard].setDown(false)
	want, _, err := monitor.Evaluate(fullClusterView(t, c), nil, nil, farSpec)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := r.Evaluate(context.Background(), farSpec, nil)
	if err != nil {
		t.Fatalf("far query after recovery: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-recovery answer diverged:\n got %s\nwant %s", got, want)
	}
	st := r.Stats()
	if st.Unavailable == 0 {
		t.Fatal("unavailability was not counted")
	}
}
