// Package shard scales the C-PNN serving layer past one process's dataset
// and write throughput by partitioning the domain into K spatial shards and
// answering queries by scatter-gather.
//
// The partitioner reuses the R-tree's Sort-Tile-Recursive packing pass
// (rtree.PartitionSTR) to cut the domain into K contiguous slices of
// near-equal population; each shard is an ordinary durable store (its own
// WAL, checkpoints, MVCC views) opened with store.Options.ExplicitIDs so the
// router owns stable-ID assignment cluster-wide.
//
// Queries are exact, not approximate, by the paper's own filtering argument:
// a C-PNN answer depends only on the candidate set — the objects within the
// candidate ball of radius f_min (f_k for k-NN) around the query point — so
// the router first asks every shard for its k smallest far-point distances
// (core.Engine.FarBounds), merges them into the global bound, gathers the
// candidate objects only from shards whose live extent intersects the ball,
// and runs the standard single-engine pipeline over the merged mini-dataset.
// Every global bound witness is some shard's local witness, so the merged
// bound, candidate set, and therefore the verifier output are identical to a
// single-engine evaluation over the union — byte-for-byte under the
// monitor's canonical answer encoding (see TestShardedEquivalence).
//
// Members can live in-process (Local over *store.Store) or behind HTTP
// (HTTPMember speaking the /internal/shard/* wire protocol, which ships op
// batches in the store's WAL payload encoding — the same bytes a local
// commit would log). Writes must flow through a single router: it owns the
// ID counter and the stable-ID→shard owner map.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/store"
)

// ErrUnavailable marks a shard member that cannot be reached (or answered
// with an error) while it was needed: a write routed to it, or a query whose
// candidate ball its extent may intersect. Servers map it to 503 +
// Retry-After; queries provably outside the dead shard's extent keep being
// served.
var ErrUnavailable = errors.New("shard: member unavailable")

// MetaFile is the cluster metadata file name, written next to the shard
// directories.
const MetaFile = "shard.json"

// Meta is the durable cluster layout.
type Meta struct {
	// Shards is the member count K.
	Shards int `json:"shards"`
	// Cuts are the K-1 routing boundaries on the X axis, ascending: shard i
	// owns centers c with cuts[i-1] < c <= cuts[i] (outer cuts read as ±Inf).
	Cuts []float64 `json:"cuts"`
	// NextID is the cluster-wide ID counter at split time; the router boots
	// with the max of this and every member's durable counter.
	NextID uint64 `json:"next_id"`
}

// Validate rejects malformed metadata before any store is touched.
func (m Meta) Validate() error {
	if m.Shards < 1 {
		return fmt.Errorf("shard: %d shards < 1", m.Shards)
	}
	if len(m.Cuts) != m.Shards-1 {
		return fmt.Errorf("shard: %d cuts for %d shards (want %d)", len(m.Cuts), m.Shards, m.Shards-1)
	}
	for i, c := range m.Cuts {
		if c != c || c > maxFinite || c < -maxFinite {
			return fmt.Errorf("shard: cut[%d] = %g is not finite", i, c)
		}
		if i > 0 && c < m.Cuts[i-1] {
			return fmt.Errorf("shard: cuts out of order at %d (%g < %g)", i, c, m.Cuts[i-1])
		}
	}
	return nil
}

const maxFinite = 1.7976931348623157e308

// ShardFor routes a center coordinate through the cuts: the smallest i with
// x <= cuts[i], else the last shard. This is the single routing function —
// the partitioner, the router's insert path and the fuzz harness all agree
// by construction.
func ShardFor(x float64, cuts []float64) int {
	return sort.SearchFloat64s(cuts, x)
}

// Dir returns member i's store directory under the cluster directory.
func Dir(clusterDir string, i int) string {
	return filepath.Join(clusterDir, fmt.Sprintf("shard-%04d", i))
}

// WriteMeta persists the cluster layout (atomically via rename).
func WriteMeta(clusterDir string, m Meta) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(clusterDir, MetaFile+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(clusterDir, MetaFile))
}

// ReadMeta loads and validates the cluster layout.
func ReadMeta(clusterDir string) (Meta, error) {
	b, err := os.ReadFile(filepath.Join(clusterDir, MetaFile))
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return Meta{}, fmt.Errorf("shard: parsing %s: %w", MetaFile, err)
	}
	if err := m.Validate(); err != nil {
		return Meta{}, err
	}
	return m, nil
}

// memberOptions is how every member store must be opened: the router owns ID
// assignment, so members accept explicit unknown IDs.
func memberOptions(opt store.Options) store.Options {
	opt.ExplicitIDs = true
	return opt
}

// Cluster is a set of locally-open member stores plus the routing metadata.
type Cluster struct {
	Dir    string
	Meta   Meta
	Stores []*store.Store
}

// CreateCluster partitions a view's objects into k shards under dir (which
// must not already hold a cluster) and bulk-loads one member store per
// shard, preserving every stable ID. Cuts come from the R-tree's STR packing
// pass, so shards hold near-equal populations. A nil view creates an empty
// cluster with all-zero cuts — the first Reload through a router
// re-balances it.
func CreateCluster(dir string, k int, view *store.View, opt store.Options) (*Cluster, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: %d shards < 1", k)
	}
	cuts := make([]float64, k-1)
	if view != nil {
		rects, _ := viewObjects(view)
		_, cuts = rtree.PartitionSTR(rects, k)
	}
	return CreateClusterCuts(dir, cuts, view, opt)
}

// CreateClusterCuts is CreateCluster with caller-chosen routing cuts —
// deliberately skewed layouts are valid (routing is exact for any sorted
// cuts), just unbalanced.
func CreateClusterCuts(dir string, cuts []float64, view *store.View, opt store.Options) (*Cluster, error) {
	k := len(cuts) + 1
	if _, err := os.Stat(filepath.Join(dir, MetaFile)); err == nil {
		return nil, fmt.Errorf("shard: %s already holds a cluster", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	meta := Meta{Shards: k, Cuts: cuts, NextID: 1}
	perShard := make([][]store.Op, k)
	if view != nil {
		meta.NextID = view.NextID
		rects, ops := viewObjects(view)
		for i, r := range rects {
			g := ShardFor(r.Center().X, cuts)
			perShard[g] = append(perShard[g], ops[i])
		}
	}
	if err := WriteMeta(dir, meta); err != nil {
		return nil, err
	}
	c := &Cluster{Dir: dir, Meta: meta}
	for i := 0; i < k; i++ {
		st, err := store.Open(Dir(dir, i), memberOptions(opt))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Stores = append(c.Stores, st)
		if len(perShard[i]) > 0 {
			if _, err := st.Apply(perShard[i]); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	return c, nil
}

// viewObjects flattens a view into parallel (routing rect, explicit-ID
// upsert) slices covering both object families.
func viewObjects(view *store.View) ([]geom.Rect, []store.Op) {
	var rects []geom.Rect
	var ops []store.Op
	for slot, o := range view.Dataset.Objects() {
		rects = append(rects, geom.RectFromInterval(o.Region()))
		ops = append(ops, store.UpdateObject(view.IDs[slot], o.PDF))
	}
	for _, d := range view.Disks {
		rects = append(rects, geom.RectFromCircle(d.Region))
		ops = append(ops, store.UpdateDisk(d.ID, d.Region))
	}
	return rects, ops
}

// OpenCluster opens every member store of an existing cluster.
func OpenCluster(dir string, opt store.Options) (*Cluster, error) {
	meta, err := ReadMeta(dir)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Dir: dir, Meta: meta}
	for i := 0; i < meta.Shards; i++ {
		st, err := store.Open(Dir(dir, i), memberOptions(opt))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Stores = append(c.Stores, st)
	}
	return c, nil
}

// SplitStore partitions an existing single store's contents into a k-shard
// cluster under dstDir. The source store must not be open elsewhere (it is
// opened briefly to snapshot its view) and is left untouched.
func SplitStore(srcDir, dstDir string, k int, opt store.Options) (Meta, error) {
	src, err := store.Open(srcDir, store.Options{})
	if err != nil {
		return Meta{}, err
	}
	view := src.View()
	if err := src.Close(); err != nil {
		return Meta{}, err
	}
	c, err := CreateCluster(dstDir, k, view, opt)
	if err != nil {
		return Meta{}, err
	}
	meta := c.Meta
	return meta, c.Close()
}

// Members wraps every member store as a Local router member.
func (c *Cluster) Members() []Member {
	ms := make([]Member, len(c.Stores))
	for i, st := range c.Stores {
		ms[i] = NewLocal(st)
	}
	return ms
}

// Router builds a scatter-gather router over the cluster's members.
func (c *Cluster) Router() (*Router, error) {
	return c.RouterObs(Obs{})
}

// RouterObs is Router with observability sinks wired in.
func (c *Cluster) RouterObs(ob Obs) (*Router, error) {
	return NewRouter(RouterConfig{Members: c.Members(), Cuts: c.Meta.Cuts, NextID: c.Meta.NextID, Obs: ob})
}

// Close closes every member store, returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, st := range c.Stores {
		if err := st.Close(); err != nil && first == nil && !errors.Is(err, store.ErrClosed) {
			first = err
		}
	}
	return first
}
