package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/store"
)

// The member wire protocol. A member server (cpnn-serve -shard-of) exposes
//
//	GET  /internal/shard/info              → WireInfo (JSON)
//	GET  /internal/shard/bound?q=&k=       → WireBound (JSON)
//	GET  /internal/shard/gather?q=&bound=  → EncodeItems payload (octet-stream)
//	POST /internal/shard/apply             → body: store.EncodeOps payload;
//	                                          reply: WireApply (JSON)
//
// Every response carries the member's view version in VersionHeader. Bulk
// payloads (gather replies, apply bodies) use the store's WAL op encoding —
// IEEE float bit patterns, so a remote gather or apply is bit-identical to a
// local one; JSON is reserved for the small control structures, whose
// float64 fields round-trip exactly under Go's shortest-form encoding.

// VersionHeader carries the member's view version on every wire response.
const VersionHeader = "X-Shard-Version"

// WireRect is a geom.Rect in JSON form.
type WireRect struct {
	MinX float64 `json:"minx"`
	MinY float64 `json:"miny"`
	MaxX float64 `json:"maxx"`
	MaxY float64 `json:"maxy"`
}

// RectToWire converts for transport.
func RectToWire(r geom.Rect) WireRect {
	return WireRect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// Rect converts back.
func (w WireRect) Rect() geom.Rect {
	return geom.Rect{MinX: w.MinX, MinY: w.MinY, MaxX: w.MaxX, MaxY: w.MaxY}
}

// WireInfo is MemberInfo in JSON form.
type WireInfo struct {
	IDs1D     []uint64 `json:"ids_1d"`
	IDs2D     []uint64 `json:"ids_2d"`
	NextID    uint64   `json:"next_id"`
	Version   uint64   `json:"version"`
	Extent    WireRect `json:"extent"`
	HasExtent bool     `json:"has_extent"`
}

// InfoToWire converts for transport.
func InfoToWire(i MemberInfo) WireInfo {
	return WireInfo{IDs1D: i.IDs1D, IDs2D: i.IDs2D, NextID: i.NextID,
		Version: i.Version, Extent: RectToWire(i.Extent), HasExtent: i.HasExtent}
}

// Info converts back.
func (w WireInfo) Info() MemberInfo {
	return MemberInfo{IDs1D: w.IDs1D, IDs2D: w.IDs2D, NextID: w.NextID,
		Version: w.Version, Extent: w.Extent.Rect(), HasExtent: w.HasExtent}
}

// WireBound is BoundInfo in JSON form.
type WireBound struct {
	Extent    WireRect  `json:"extent"`
	HasExtent bool      `json:"has_extent"`
	Fars      []float64 `json:"fars"`
	N         int       `json:"n"`
	Version   uint64    `json:"version"`
}

// BoundToWire converts for transport.
func BoundToWire(b BoundInfo) WireBound {
	return WireBound{Extent: RectToWire(b.Extent), HasExtent: b.HasExtent,
		Fars: b.Fars, N: b.N, Version: b.Version}
}

// Bound converts back.
func (w WireBound) Bound() BoundInfo {
	return BoundInfo{Extent: w.Extent.Rect(), HasExtent: w.HasExtent,
		Fars: w.Fars, N: w.N, Version: w.Version}
}

// WireApply is a store.ApplyResult in JSON form.
type WireApply struct {
	Version uint64   `json:"version"`
	Seq     uint64   `json:"seq"`
	IDs     []uint64 `json:"ids,omitempty"`
}

// EncodeItems serializes gathered candidates as explicit-ID upsert ops in
// the WAL payload encoding — the pdfs cross the wire bit-exactly.
func EncodeItems(items []Item) ([]byte, error) {
	ops := make([]store.Op, len(items))
	for i, it := range items {
		ops[i] = store.UpdateObject(it.ID, it.PDF)
	}
	return store.EncodeOps(ops)
}

// DecodeItems parses an EncodeItems payload.
func DecodeItems(b []byte) ([]Item, error) {
	ops, err := store.DecodeOps(b)
	if err != nil {
		return nil, err
	}
	items := make([]Item, len(ops))
	for i, op := range ops {
		if op.PDF == nil {
			return nil, fmt.Errorf("shard: gather payload op %d carries no pdf", i)
		}
		items[i] = Item{ID: op.ID, PDF: op.PDF}
	}
	return items, nil
}

// HTTPMember is the Member implementation speaking to a remote member
// server. Safe for concurrent use.
type HTTPMember struct {
	base    string
	hc      *http.Client
	lastVer atomic.Uint64
}

// NewHTTPMember wraps a member server's base URL (e.g. http://host:port).
// client may be nil for a default with a sane timeout.
func NewHTTPMember(base string, client *http.Client) *HTTPMember {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPMember{base: base, hc: client}
}

// observe records the version header of any successful response.
func (h *HTTPMember) observe(resp *http.Response) uint64 {
	v, err := strconv.ParseUint(resp.Header.Get(VersionHeader), 10, 64)
	if err != nil {
		return h.lastVer.Load()
	}
	for {
		cur := h.lastVer.Load()
		if v <= cur || h.lastVer.CompareAndSwap(cur, v) {
			return v
		}
	}
}

func (h *HTTPMember) get(ctx context.Context, path string, q url.Values) (*http.Response, error) {
	u := h.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if sc, ok := obs.SpanFromContext(ctx); ok && sc.Sampled {
		req.Header.Set(obs.TraceHeader, sc.Header())
	}
	resp, err := h.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("shard: %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	h.observe(resp)
	return resp, nil
}

// Info implements Member.
func (h *HTTPMember) Info() (MemberInfo, error) {
	resp, err := h.get(context.Background(), "/internal/shard/info", nil)
	if err != nil {
		return MemberInfo{}, err
	}
	defer resp.Body.Close()
	var w WireInfo
	if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
		return MemberInfo{}, fmt.Errorf("shard: decoding info: %w", err)
	}
	return w.Info(), nil
}

// Bound implements Member.
func (h *HTTPMember) Bound(ctx context.Context, q float64, k int) (BoundInfo, error) {
	vals := url.Values{}
	vals.Set("q", strconv.FormatFloat(q, 'g', -1, 64))
	vals.Set("k", strconv.Itoa(k))
	resp, err := h.get(ctx, "/internal/shard/bound", vals)
	if err != nil {
		return BoundInfo{}, err
	}
	defer resp.Body.Close()
	var w WireBound
	if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
		return BoundInfo{}, fmt.Errorf("shard: decoding bound: %w", err)
	}
	return w.Bound(), nil
}

// Gather implements Member.
func (h *HTTPMember) Gather(ctx context.Context, q, bound float64) ([]Item, uint64, error) {
	vals := url.Values{}
	vals.Set("q", strconv.FormatFloat(q, 'g', -1, 64))
	vals.Set("bound", strconv.FormatFloat(bound, 'g', -1, 64))
	resp, err := h.get(ctx, "/internal/shard/gather", vals)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	ver, err := strconv.ParseUint(resp.Header.Get(VersionHeader), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("shard: gather reply lacks %s", VersionHeader)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	items, err := DecodeItems(payload)
	if err != nil {
		return nil, 0, err
	}
	return items, ver, nil
}

// Apply implements Member.
func (h *HTTPMember) Apply(ctx context.Context, payload []byte) (store.ApplyResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.base+"/internal/shard/apply", bytes.NewReader(payload))
	if err != nil {
		return store.ApplyResult{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if sc, ok := obs.SpanFromContext(ctx); ok && sc.Sampled {
		req.Header.Set(obs.TraceHeader, sc.Header())
	}
	resp, err := h.hc.Do(req)
	if err != nil {
		return store.ApplyResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return store.ApplyResult{}, fmt.Errorf("shard: apply: status %d: %s",
			resp.StatusCode, bytes.TrimSpace(msg))
	}
	h.observe(resp)
	var w WireApply
	if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
		return store.ApplyResult{}, fmt.Errorf("shard: decoding apply reply: %w", err)
	}
	return store.ApplyResult{Version: w.Version, Seq: w.Seq, IDs: w.IDs}, nil
}

// Version implements Member: the last version observed on any reply.
func (h *HTTPMember) Version() uint64 { return h.lastVer.Load() }

// Close implements Member.
func (h *HTTPMember) Close() error {
	h.hc.CloseIdleConnections()
	return nil
}
