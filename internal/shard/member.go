package shard

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pdf"
	"repro/internal/store"
)

// BoundInfo is one shard's reply to the scatter (bound) phase of a query:
// everything the router needs to compute the global filter bound and decide
// whether this shard can hold a candidate.
type BoundInfo struct {
	// Extent is the bounding rectangle of the shard's live 1-D regions;
	// valid only when HasExtent (an empty shard has none).
	Extent    geom.Rect
	HasExtent bool
	// Fars holds the shard's min(k, n) smallest far-point distances from the
	// query point, ascending (core.Engine.FarBounds).
	Fars []float64
	// N counts the shard's live 1-D objects.
	N int
	// Version is the shard's store version the reply was computed at.
	Version uint64
}

// Item is one gathered candidate object in stable-ID terms.
type Item struct {
	ID  uint64
	PDF pdf.PDF
}

// MemberInfo is a shard's full identity snapshot, used to boot the router's
// owner map and ID counter.
type MemberInfo struct {
	// IDs1D and IDs2D list the shard's live stable IDs per family.
	IDs1D, IDs2D []uint64
	// NextID is the shard's durable ID counter.
	NextID uint64
	// Version is the shard's store version.
	Version uint64
	// Extent/HasExtent mirror BoundInfo for the 1-D family.
	Extent    geom.Rect
	HasExtent bool
}

// Member is one shard as seen by the router. Implementations: Local wraps an
// in-process store; HTTPMember speaks to a member server. All methods are
// safe for concurrent use.
type Member interface {
	// Info snapshots the shard's identity (owner-map boot and recovery).
	Info() (MemberInfo, error)
	// Bound answers the scatter phase for query point q with filter depth k.
	// The context carries cancellation and the active trace span; remote
	// members forward it on the wire (obs.TraceHeader).
	Bound(ctx context.Context, q float64, k int) (BoundInfo, error)
	// Gather returns every 1-D object whose near point lies within bound of
	// q (all of them when bound is +Inf), plus the version it read.
	Gather(ctx context.Context, q, bound float64) ([]Item, uint64, error)
	// Apply commits an op batch encoded with store.EncodeOps — the raw WAL
	// payload bytes, shipped verbatim so a remote apply is bit-identical to
	// a local one.
	Apply(ctx context.Context, payload []byte) (store.ApplyResult, error)
	// Version is the member's latest known store version (exact for Local,
	// last-observed for HTTPMember). Used for cache keys, never correctness.
	Version() uint64
	// Close releases the member. Local members do NOT close their store
	// (the Cluster owns it); HTTP members release their connections.
	Close() error
}

// Local is the in-process Member over a shard's own store.
type Local struct {
	st *store.Store
}

// NewLocal wraps an open member store. The store must have been opened with
// ExplicitIDs (CreateCluster/OpenCluster do).
func NewLocal(st *store.Store) *Local { return &Local{st: st} }

// Store exposes the wrapped store (the shard monitor subscribes to its
// change feed).
func (l *Local) Store() *store.Store { return l.st }

// Info implements Member.
func (l *Local) Info() (MemberInfo, error) {
	v := l.st.View()
	info := MemberInfo{
		IDs1D:   append([]uint64(nil), v.IDs...),
		NextID:  v.NextID,
		Version: v.Version,
	}
	for _, d := range v.Disks {
		info.IDs2D = append(info.IDs2D, d.ID)
	}
	info.Extent, info.HasExtent = v.Index.Bounds()
	return info, nil
}

// Bound implements Member.
func (l *Local) Bound(_ context.Context, q float64, k int) (BoundInfo, error) {
	v := l.st.View()
	eng, err := core.NewEngineWithIndex(v.Dataset, v.Index)
	if err != nil {
		return BoundInfo{}, err
	}
	info := BoundInfo{N: v.Dataset.Len(), Version: v.Version, Fars: eng.FarBounds(q, k)}
	info.Extent, info.HasExtent = v.Index.Bounds()
	return info, nil
}

// Gather implements Member.
func (l *Local) Gather(_ context.Context, q, bound float64) ([]Item, uint64, error) {
	v := l.st.View()
	items := gatherView(v, q, bound)
	return items, v.Version, nil
}

// gatherView collects the view's 1-D objects with near point within bound of
// q, in stable-ID order.
func gatherView(v *store.View, q, bound float64) []Item {
	var items []Item
	if math.IsInf(bound, 1) {
		for slot, o := range v.Dataset.Objects() {
			items = append(items, Item{ID: v.IDs[slot], PDF: o.PDF})
		}
	} else {
		for _, slot := range v.Index.Within(q, bound) {
			items = append(items, Item{ID: v.IDs[slot], PDF: v.Dataset.Object(slot).PDF})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	return items
}

// Apply implements Member: decode + commit, the same bytes recovery would
// replay.
func (l *Local) Apply(_ context.Context, payload []byte) (store.ApplyResult, error) {
	ops, err := store.DecodeOps(payload)
	if err != nil {
		return store.ApplyResult{}, fmt.Errorf("%w: %v", store.ErrInvalidOp, err)
	}
	return l.st.Apply(ops)
}

// Version implements Member.
func (l *Local) Version() uint64 { return l.st.View().Version }

// Close implements Member; the Cluster owns the store, so this is a no-op.
func (l *Local) Close() error { return nil }
