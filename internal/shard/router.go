package shard

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/uncertain"
)

// Obs bundles the router's optional observability sinks. Every field may be
// nil (or the whole struct zero): instrumentation degrades to a no-op.
type Obs struct {
	// Tracer records one child span per member Bound/Gather/Apply hop; the
	// child's context rides the wire on obs.TraceHeader, so remote member
	// servers join the same trace.
	Tracer *obs.Tracer
	// Logger receives structured router events (member failures, retries).
	Logger *slog.Logger
	// MemberSeconds observes per-member hop latency, labeled
	// {phase=bound|gather|apply, shard}.
	MemberSeconds *obs.HistogramVec
	// Fanout observes members read per gather (the fan-out distribution).
	Fanout *obs.Histogram
}

// RouterConfig assembles a Router.
type RouterConfig struct {
	// Members are the shards, in cut order.
	Members []Member
	// Cuts are the K-1 routing boundaries (see Meta.Cuts).
	Cuts []float64
	// NextID seeds the cluster-wide ID counter; the router uses the max of
	// this and every member's durable counter.
	NextID uint64
	// Obs wires tracing, logging and histograms; zero disables all three.
	Obs Obs
}

// Router is the scatter-gather front of a shard cluster. It owns stable-ID
// assignment and the ID→shard owner map, routes writes to the owning shard,
// and answers queries by merging per-shard filter bounds and candidates into
// one exact single-engine evaluation. One router must be the only writer of
// its cluster; reads are safe from any number of goroutines.
type Router struct {
	members []Member
	cuts    []float64
	obs     Obs
	log     *slog.Logger

	// wmu serializes writes: owner map, ID counter, per-shard counts.
	wmu      sync.Mutex
	owner    map[uint64]ownerRef
	nextID   uint64
	n1, n2   int
	perShard []int // live 1-D objects per shard (skew metric)

	// emu guards the last-known extent cache consulted when a member is
	// unreachable: a dead shard whose cached extent provably misses the
	// candidate ball is pruned instead of failing the query.
	emu     sync.Mutex
	extents []extentCache

	queries, retries, unavailable atomic.Uint64
	boundContacts, gatherContacts atomic.Uint64
	mergeNanos                    atomic.Int64
}

type ownerRef struct {
	shard  int
	family uint8 // 1 = 1-D, 2 = disk
}

type extentCache struct {
	rect  geom.Rect
	has   bool // member holds 1-D objects
	known bool // ever observed
}

// NewRouter boots a router: every member must be reachable once so the
// owner map and ID counter can be recovered from durable state.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Members) < 1 {
		return nil, fmt.Errorf("shard: router needs at least one member")
	}
	if len(cfg.Cuts) != len(cfg.Members)-1 {
		return nil, fmt.Errorf("shard: %d cuts for %d members", len(cfg.Cuts), len(cfg.Members))
	}
	if !sort.Float64sAreSorted(cfg.Cuts) {
		return nil, fmt.Errorf("shard: cuts are not ascending")
	}
	r := &Router{
		members:  cfg.Members,
		cuts:     append([]float64(nil), cfg.Cuts...),
		obs:      cfg.Obs,
		log:      obs.Or(cfg.Obs.Logger),
		owner:    map[uint64]ownerRef{},
		nextID:   cfg.NextID,
		perShard: make([]int, len(cfg.Members)),
		extents:  make([]extentCache, len(cfg.Members)),
	}
	if r.nextID == 0 {
		r.nextID = 1
	}
	for i, m := range cfg.Members {
		info, err := m.Info()
		if err != nil {
			return nil, fmt.Errorf("shard %d: boot: %w: %v", i, ErrUnavailable, err)
		}
		for _, id := range info.IDs1D {
			if prev, ok := r.owner[id]; ok {
				return nil, fmt.Errorf("shard: object %d owned by both shard %d and %d", id, prev.shard, i)
			}
			r.owner[id] = ownerRef{shard: i, family: 1}
		}
		for _, id := range info.IDs2D {
			if prev, ok := r.owner[id]; ok {
				return nil, fmt.Errorf("shard: object %d owned by both shard %d and %d", id, prev.shard, i)
			}
			r.owner[id] = ownerRef{shard: i, family: 2}
		}
		r.n1 += len(info.IDs1D)
		r.n2 += len(info.IDs2D)
		r.perShard[i] = len(info.IDs1D)
		if info.NextID > r.nextID {
			r.nextID = info.NextID
		}
		r.extents[i] = extentCache{rect: info.Extent, has: info.HasExtent, known: true}
	}
	return r, nil
}

// Shards returns the member count.
func (r *Router) Shards() int { return len(r.members) }

// Objects returns the cluster-wide live 1-D object count.
func (r *Router) Objects() int {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	return r.n1
}

// Close closes every member.
func (r *Router) Close() error {
	var first error
	for _, m := range r.members {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// VersionSum returns the sum of member versions — the cluster's reported
// snapshot version (monotonic: member versions only grow).
func (r *Router) VersionSum() uint64 {
	var sum uint64
	for _, m := range r.members {
		sum += m.Version()
	}
	return sum
}

// VersionsKey renders the member version vector for cache keys. The vector,
// not the sum: distinct cuts can share a sum.
func (r *Router) VersionsKey() string {
	var b strings.Builder
	for i, m := range r.members {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(m.Version(), 10))
	}
	return b.String()
}

// ---- writes ------------------------------------------------------------

// Apply validates, routes and commits an op batch. Semantics mirror a
// single store's Apply: inserts are assigned cluster-unique stable IDs in
// op order, updates and deletes address the owning shard (an unknown ID is
// store.ErrUnknownID, a family mismatch store.ErrInvalidOp), truncation
// clears every shard. Validation is all-up-front, so an invalid batch
// touches nothing; a member failure mid-batch leaves the shards it already
// reached committed (per-shard atomicity, not global) and returns
// ErrUnavailable. The result's Version is the cluster version sum; Seq is
// meaningless across shards and reported as 0.
func (r *Router) Apply(ctx context.Context, ops []store.Op) (store.ApplyResult, error) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	routed, ids, err := r.validate(ops)
	if err != nil {
		return store.ApplyResult{}, err
	}
	// Execute in segments: runs of ops between truncates preserve per-shard
	// order; a truncate is a barrier applied to every shard.
	k := len(r.members)
	flushSeg := func(seg [][]store.Op) error {
		for i := 0; i < k; i++ {
			if len(seg[i]) == 0 {
				continue
			}
			payload, err := store.EncodeOps(seg[i])
			if err != nil {
				return fmt.Errorf("%w: %v", store.ErrInvalidOp, err)
			}
			if err := r.applyMember(ctx, i, payload); err != nil {
				return err
			}
		}
		return nil
	}
	seg := make([][]store.Op, k)
	commitErr := func(err error) (store.ApplyResult, error) {
		// Members already flushed have committed; resync the owner map from
		// the shards' durable truth so the router stays coherent.
		r.refreshOwnersLocked()
		return store.ApplyResult{}, err
	}
	for oi, op := range ops {
		if op.Code == store.OpTruncate {
			if err := flushSeg(seg); err != nil {
				return commitErr(err)
			}
			seg = make([][]store.Op, k)
			for i := 0; i < k; i++ {
				payload, err := store.EncodeOps([]store.Op{store.Truncate()})
				if err != nil {
					return commitErr(fmt.Errorf("%w: %v", store.ErrInvalidOp, err))
				}
				if err := r.applyMember(ctx, i, payload); err != nil {
					return commitErr(err)
				}
			}
			r.owner = map[uint64]ownerRef{}
			r.n1, r.n2 = 0, 0
			r.perShard = make([]int, k)
			continue
		}
		out := op
		out.ID = ids[oi]
		seg[routed[oi]] = append(seg[routed[oi]], out)
		// Track ownership as we go so a later failure resync starts close.
		switch op.Code {
		case store.OpDelete:
			if ref, ok := r.owner[out.ID]; ok {
				if ref.family == 1 {
					r.n1--
					r.perShard[ref.shard]--
				} else {
					r.n2--
				}
				delete(r.owner, out.ID)
			}
		case store.OpUniform, store.OpHist:
			if _, ok := r.owner[out.ID]; !ok {
				r.owner[out.ID] = ownerRef{shard: routed[oi], family: 1}
				r.n1++
				r.perShard[routed[oi]]++
			}
		case store.OpDisk:
			if _, ok := r.owner[out.ID]; !ok {
				r.owner[out.ID] = ownerRef{shard: routed[oi], family: 2}
				r.n2++
			}
		}
		if out.ID >= r.nextID {
			r.nextID = out.ID + 1
		}
	}
	if err := flushSeg(seg); err != nil {
		return commitErr(err)
	}
	return store.ApplyResult{Version: r.VersionSum(), IDs: ids}, nil
}

// applyMember commits one encoded segment on one member under a traced,
// timed hop.
func (r *Router) applyMember(ctx context.Context, i int, payload []byte) error {
	mctx, sp := r.obs.Tracer.StartSpan(ctx, "shard", "member.apply")
	sp.SetAttr("shard", strconv.Itoa(i))
	start := time.Now()
	_, err := r.members[i].Apply(mctx, payload)
	r.obs.MemberSeconds.With("apply", strconv.Itoa(i)).Observe(time.Since(start).Seconds())
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		r.log.Warn("member apply failed", "shard", i, "err", err, "trace_id", obs.TraceID(ctx))
		return fmt.Errorf("shard %d: apply: %w: %v", i, ErrUnavailable, err)
	}
	sp.End()
	return nil
}

// validate mirrors the store's batch validation against the cluster-wide
// owner map: per-op family checks with in-batch overlay, insert ID
// assignment, and routing (inserts by region center through the cuts,
// updates and deletes sticky to the owning shard).
func (r *Router) validate(ops []store.Op) (routed []int, ids []uint64, err error) {
	overlay := map[uint64]int8{}
	overlayShard := map[uint64]int{}
	truncated := false
	family := func(id uint64) (int8, int) {
		if v, ok := overlay[id]; ok {
			return v, overlayShard[id]
		}
		if truncated {
			return -1, 0
		}
		if ref, ok := r.owner[id]; ok {
			return int8(ref.family), ref.shard
		}
		return -1, 0
	}
	routed = make([]int, len(ops))
	ids = make([]uint64, len(ops))
	nextID := r.nextID
	for i, op := range ops {
		switch op.Code {
		case store.OpTruncate:
			truncated = true
			overlay = map[uint64]int8{}
			overlayShard = map[uint64]int{}
		case store.OpDelete:
			fam, shard := family(op.ID)
			if op.ID == 0 || fam == -1 {
				return nil, nil, fmt.Errorf("ops[%d]: delete: %w %d", i, store.ErrUnknownID, op.ID)
			}
			overlay[op.ID], overlayShard[op.ID] = -1, shard
			routed[i], ids[i] = shard, op.ID
		case store.OpUniform, store.OpHist:
			if !pdfMatchesCode(op.PDF, op.Code) {
				return nil, nil, fmt.Errorf("ops[%d]: %w: pdf %T does not match op code %d",
					i, store.ErrInvalidOp, op.PDF, op.Code)
			}
			shard := -1
			if op.ID == 0 {
				op.ID = nextID
				nextID++
			} else {
				switch fam, s := family(op.ID); fam {
				case 1:
					shard = s // sticky update: the owner's live extent covers it
				case 2:
					return nil, nil, fmt.Errorf("ops[%d]: %w: object %d is 2-D, payload 1-D",
						i, store.ErrInvalidOp, op.ID)
				default:
					return nil, nil, fmt.Errorf("ops[%d]: update: %w %d", i, store.ErrUnknownID, op.ID)
				}
			}
			if shard < 0 {
				shard = ShardFor(geom.RectFromInterval(op.PDF.Support()).Center().X, r.cuts)
			}
			overlay[op.ID], overlayShard[op.ID] = 1, shard
			routed[i], ids[i] = shard, op.ID
		case store.OpDisk:
			if !(op.Disk.Radius > 0) || !finite(op.Disk.Radius) ||
				!finite(op.Disk.Center.X) || !finite(op.Disk.Center.Y) {
				return nil, nil, fmt.Errorf("ops[%d]: %w: invalid disk %+v", i, store.ErrInvalidOp, op.Disk)
			}
			shard := -1
			if op.ID == 0 {
				op.ID = nextID
				nextID++
			} else {
				switch fam, s := family(op.ID); fam {
				case 2:
					shard = s
				case 1:
					return nil, nil, fmt.Errorf("ops[%d]: %w: object %d is 1-D, payload 2-D",
						i, store.ErrInvalidOp, op.ID)
				default:
					return nil, nil, fmt.Errorf("ops[%d]: update: %w %d", i, store.ErrUnknownID, op.ID)
				}
			}
			if shard < 0 {
				shard = ShardFor(op.Disk.Center.X, r.cuts)
			}
			overlay[op.ID], overlayShard[op.ID] = 2, shard
			routed[i], ids[i] = shard, op.ID
		default:
			return nil, nil, fmt.Errorf("ops[%d]: %w: unknown code %d", i, store.ErrInvalidOp, op.Code)
		}
	}
	return routed, ids, nil
}

func pdfMatchesCode(p pdf.PDF, code store.OpCode) bool {
	switch p.(type) {
	case pdf.Uniform:
		return code == store.OpUniform
	case *pdf.Histogram:
		return code == store.OpHist
	default:
		return false
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// refreshOwnersLocked rebuilds the owner map from member truth after a
// partial write failure; unreachable members keep their previous entries.
func (r *Router) refreshOwnersLocked() {
	owner := map[uint64]ownerRef{}
	perShard := make([]int, len(r.members))
	n1, n2 := 0, 0
	for i, m := range r.members {
		info, err := m.Info()
		if err != nil {
			for id, ref := range r.owner {
				if ref.shard == i {
					owner[id] = ref
					if ref.family == 1 {
						n1++
						perShard[i]++
					} else {
						n2++
					}
				}
			}
			continue
		}
		for _, id := range info.IDs1D {
			owner[id] = ownerRef{shard: i, family: 1}
		}
		for _, id := range info.IDs2D {
			owner[id] = ownerRef{shard: i, family: 2}
		}
		n1 += len(info.IDs1D)
		n2 += len(info.IDs2D)
		perShard[i] = len(info.IDs1D)
		if info.NextID > r.nextID {
			r.nextID = info.NextID
		}
	}
	r.owner, r.n1, r.n2, r.perShard = owner, n1, n2, perShard
}

// Reload replaces the cluster's contents with a dataset: one truncate
// barrier, then routed bulk inserts with fresh stable IDs in dataset order
// (matching a single store's DatasetOps assignment).
func (r *Router) Reload(ctx context.Context, ds *uncertain.Dataset) (store.ApplyResult, error) {
	ops := make([]store.Op, 0, ds.Len()+1)
	ops = append(ops, store.Truncate())
	for _, o := range ds.Objects() {
		ops = append(ops, store.InsertObject(o.PDF))
	}
	return r.Apply(ctx, ops)
}

// ---- queries -----------------------------------------------------------

// Gathered is the merged result of one scatter-gather pass: a mini-view
// holding exactly the cluster's candidate objects for the query, ready for
// a standard single-engine evaluation.
type Gathered struct {
	// View holds the merged candidates (Dataset + stable IDs, no index —
	// engines build their own over the handful of candidates).
	View *store.View
	// Versions is the per-member consistency cut the answer corresponds to.
	Versions []uint64
	// Version is the cut's sum — the cluster snapshot version.
	Version uint64
	// Contacted counts members that answered the bound phase; Fanout counts
	// members the gather phase actually read (the fan-out metric).
	Contacted, Fanout int
	// Bound is the pruning radius of the final gather pass.
	Bound float64
	// TotalN is the cluster-wide live 1-D object count at bound time.
	TotalN int
}

// Gather runs the two-phase scatter-gather for query point q with filter
// depth k (1 for C-PNN/PNN, the query's K for k-NN): bound every shard in
// parallel, merge the k smallest far-point distances into the global
// filter bound, then gather candidates only from shards whose live extent
// intersects the candidate ball. If the bound moved between the two phases
// (a concurrent write retired a witness), the pass retries with the bound
// recomputed from the gathered set, so the returned candidates are always
// exactly the candidate set of the returned consistency cut. A member
// failure fails the query with ErrUnavailable unless its last-known extent
// provably misses the ball.
func (r *Router) Gather(ctx context.Context, q float64, k int) (*Gathered, error) {
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return nil, fmt.Errorf("shard: non-finite query point %g", q)
	}
	if k < 1 {
		return nil, fmt.Errorf("shard: filter depth %d < 1", k)
	}
	r.queries.Add(1)
	n := len(r.members)

	// Phase 1: bound. Every live member, in parallel.
	infos := make([]BoundInfo, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range r.members {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mctx, sp := r.obs.Tracer.StartSpan(ctx, "shard", "member.bound")
			sp.SetAttr("shard", strconv.Itoa(i))
			start := time.Now()
			infos[i], errs[i] = r.members[i].Bound(mctx, q, k)
			r.obs.MemberSeconds.With("bound", strconv.Itoa(i)).Observe(time.Since(start).Seconds())
			if errs[i] != nil {
				sp.SetAttr("error", errs[i].Error())
			}
			sp.End()
		}(i)
	}
	wg.Wait()

	start := time.Now()
	var fars []float64
	totalN, contacted := 0, 0
	for i := range infos {
		if errs[i] != nil {
			continue
		}
		contacted++
		totalN += infos[i].N
		fars = append(fars, infos[i].Fars...)
		r.observeExtent(i, infos[i].Extent, infos[i].HasExtent)
	}
	r.boundContacts.Add(uint64(contacted))
	if contacted == 0 {
		r.unavailable.Add(1)
		r.log.Warn("no member answered the bound phase", "trace_id", obs.TraceID(ctx))
		return nil, fmt.Errorf("shard: %w: no member answered the bound phase", ErrUnavailable)
	}
	sort.Float64s(fars)
	bound := math.Inf(1)
	if len(fars) >= k {
		bound = fars[k-1]
	}
	r.mergeNanos.Add(time.Since(start).Nanoseconds())

	qp := geom.Point{X: q, Y: 0}
	for attempt := 0; ; attempt++ {
		// A dead member is tolerable only while its last-known extent
		// provably misses the candidate ball; its data cannot have moved
		// while dead (writes flow through this router and fail loudly).
		for i := range r.members {
			if errs[i] == nil {
				continue
			}
			ext := r.extent(i)
			if !ext.known || (ext.has && (math.IsInf(bound, 1) || ext.rect.MinDist(qp) <= bound)) {
				r.unavailable.Add(1)
				return nil, fmt.Errorf("shard %d: bound: %w: %v", i, ErrUnavailable, errs[i])
			}
		}
		// Phase 2: gather from intersecting shards only.
		type gatherRes struct {
			items []Item
			ver   uint64
			err   error
			read  bool
		}
		res := make([]gatherRes, n)
		var gw sync.WaitGroup
		for i := range r.members {
			if errs[i] != nil {
				continue
			}
			if !infos[i].HasExtent {
				continue
			}
			if !math.IsInf(bound, 1) && infos[i].Extent.MinDist(qp) > bound {
				continue
			}
			res[i].read = true
			gw.Add(1)
			go func(i int) {
				defer gw.Done()
				mctx, sp := r.obs.Tracer.StartSpan(ctx, "shard", "member.gather")
				sp.SetAttr("shard", strconv.Itoa(i))
				start := time.Now()
				res[i].items, res[i].ver, res[i].err = r.members[i].Gather(mctx, q, bound)
				r.obs.MemberSeconds.With("gather", strconv.Itoa(i)).Observe(time.Since(start).Seconds())
				if res[i].err != nil {
					sp.SetAttr("error", res[i].err.Error())
				}
				sp.SetAttr("items", strconv.Itoa(len(res[i].items)))
				sp.End()
			}(i)
		}
		gw.Wait()

		mstart := time.Now()
		fanout := 0
		var items []Item
		versions := make([]uint64, n)
		var vsum uint64
		for i := range res {
			if !res[i].read {
				versions[i] = infos[i].Version
				if errs[i] != nil {
					versions[i] = r.members[i].Version()
				}
				vsum += versions[i]
				continue
			}
			if res[i].err != nil {
				r.unavailable.Add(1)
				return nil, fmt.Errorf("shard %d: gather: %w: %v", i, ErrUnavailable, res[i].err)
			}
			fanout++
			items = append(items, res[i].items...)
			versions[i] = res[i].ver
			vsum += res[i].ver
		}
		r.gatherContacts.Add(uint64(fanout))

		// Soundness check: the bound recomputed from what was actually
		// gathered must not exceed the bound that pruned. If it does, a
		// witness retired between the phases — retry wider.
		done := math.IsInf(bound, 1)
		if !done {
			mf := make([]float64, len(items))
			for i, it := range items {
				mf[i] = it.PDF.Support().MaxDist(q)
			}
			sort.Float64s(mf)
			if len(mf) >= k && mf[k-1] <= bound {
				done = true
			}
		}
		if !done {
			r.retries.Add(1)
			r.log.Debug("gather bound moved; retrying wider",
				"attempt", attempt, "trace_id", obs.TraceID(ctx))
			if attempt >= 2 {
				bound = math.Inf(1)
			} else {
				prev := bound
				bound = math.Inf(1)
				if mfars := itemFars(items, q); len(mfars) >= k {
					bound = mfars[k-1]
				}
				if bound <= prev { // no progress information; go wide
					bound = math.Inf(1)
				}
			}
			r.mergeNanos.Add(time.Since(mstart).Nanoseconds())
			continue
		}

		sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
		pdfs := make([]pdf.PDF, len(items))
		ids := make([]uint64, len(items))
		for i, it := range items {
			pdfs[i] = it.PDF
			ids[i] = it.ID
		}
		g := &Gathered{
			View:      &store.View{Version: vsum, Dataset: uncertain.NewDataset(pdfs), IDs: ids},
			Versions:  versions,
			Version:   vsum,
			Contacted: contacted,
			Fanout:    fanout,
			Bound:     bound,
			TotalN:    totalN,
		}
		r.mergeNanos.Add(time.Since(mstart).Nanoseconds())
		r.obs.Fanout.Observe(float64(fanout))
		return g, nil
	}
}

func itemFars(items []Item, q float64) []float64 {
	fars := make([]float64, len(items))
	for i, it := range items {
		fars[i] = it.PDF.Support().MaxDist(q)
	}
	sort.Float64s(fars)
	return fars
}

// observeExtent refreshes the last-known extent cache.
func (r *Router) observeExtent(i int, rect geom.Rect, has bool) {
	r.emu.Lock()
	r.extents[i] = extentCache{rect: rect, has: has, known: true}
	r.emu.Unlock()
}

func (r *Router) extent(i int) extentCache {
	r.emu.Lock()
	defer r.emu.Unlock()
	return r.extents[i]
}

// Evaluate answers a standing-query spec against the cluster: scatter-gather
// the candidates, then run the standard single-engine evaluation over the
// merged mini-view. The body is byte-identical to monitor.Evaluate over a
// single store holding the same objects; the radius is the query's influence
// radius under the returned consistency cut.
func (r *Router) Evaluate(ctx context.Context, spec monitor.Spec, sc *core.Scratch) (body []byte, radius float64, g *Gathered, err error) {
	if err := spec.Validate(); err != nil {
		return nil, 0, nil, err
	}
	k := 1
	if spec.Kind == monitor.KindKNN {
		k = spec.K
	}
	g, err = r.Gather(ctx, spec.Q, k)
	if err != nil {
		return nil, 0, nil, err
	}
	body, radius, err = monitor.Evaluate(g.View, nil, sc, spec)
	if err != nil {
		return nil, 0, nil, err
	}
	return body, radius, g, nil
}

// Stats is a snapshot of the router's operational counters.
type Stats struct {
	// Shards is the member count; Objects the cluster-wide live 1-D count.
	Shards, Objects int
	// PerShard holds the live 1-D object count per shard (skew metric).
	PerShard []int
	// Queries counts scatter-gather passes; Retries the extra gather rounds
	// forced by bound movement; Unavailable the queries failed on a dead
	// shard.
	Queries, Retries, Unavailable uint64
	// BoundContacts and GatherContacts count per-member phase reads; the
	// mean gather fan-out fraction is GatherContacts / (Queries * Shards).
	BoundContacts, GatherContacts uint64
	// MergeNanos is total time spent merging bounds and candidates.
	MergeNanos int64
	// Versions is the current member version vector.
	Versions []uint64
}

// Stats snapshots the router's counters.
func (r *Router) Stats() Stats {
	r.wmu.Lock()
	perShard := append([]int(nil), r.perShard...)
	n1 := r.n1
	r.wmu.Unlock()
	vers := make([]uint64, len(r.members))
	for i, m := range r.members {
		vers[i] = m.Version()
	}
	return Stats{
		Shards:         len(r.members),
		Objects:        n1,
		PerShard:       perShard,
		Queries:        r.queries.Load(),
		Retries:        r.retries.Load(),
		Unavailable:    r.unavailable.Load(),
		BoundContacts:  r.boundContacts.Load(),
		GatherContacts: r.gatherContacts.Load(),
		MergeNanos:     r.mergeNanos.Load(),
		Versions:       vers,
	}
}
