package shard

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// TestShardConcurrency hammers one cluster with concurrent cross-shard
// writers (through the single router, as the design requires), standing
// monitors and ad-hoc scatter-gather queries — the workload the -race CI
// step runs. Afterwards it checks quiescent correctness: every standing
// answer is byte-identical to an independent recompute-all oracle (gather
// everything, evaluate single-engine), every subscriber reconstruction
// matches, and no push ever carried an unchanged body.
func TestShardConcurrency(t *testing.T) {
	const (
		k       = 4
		domain  = 1000.0
		writers = 3
		iters   = 40
		nSpecs  = 8
	)
	rng := rand.New(rand.NewSource(7))
	randIv := func(rng *rand.Rand) (float64, float64) {
		lo := rng.Float64() * domain
		return lo, lo + 1 + rng.Float64()*15
	}

	c, err := CreateCluster(t.TempDir(), k, nil, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Router()
	if err != nil {
		t.Fatal(err)
	}

	// Seed objects, round-robin ownership per writer so deletes never race
	// validation.
	owned := make([][]uint64, writers)
	var seedOps []store.Op
	for i := 0; i < 12*writers; i++ {
		lo, hi := randIv(rng)
		seedOps = append(seedOps, store.InsertObject(pdf.MustUniform(lo, hi)))
	}
	res, err := r.Apply(context.Background(), seedOps)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range res.IDs {
		owned[i%writers] = append(owned[i%writers], id)
	}

	m, err := NewMonitor(MonitorConfig{Router: r, Stores: c.Stores, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	sub, err := m.Subscribe(nil, 8192)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	specs := make([]monitor.Spec, 0, nSpecs)
	for i := 0; i < nSpecs; i++ {
		q := rng.Float64() * domain
		switch i % 3 {
		case 0:
			specs = append(specs, monitor.Spec{Kind: monitor.KindCPNN, Q: q,
				Constraint: verify.Constraint{P: 0.3, Delta: 0.01}})
		case 1:
			specs = append(specs, monitor.Spec{Kind: monitor.KindPNN, Q: q})
		case 2:
			specs = append(specs, monitor.Spec{Kind: monitor.KindKNN, Q: q,
				Constraint: verify.Constraint{P: 0.4, Delta: 0.05},
				K:          2, Samples: 300, Seed: 7})
		}
	}
	clientView := map[uint64][]byte{}
	specOf := map[uint64]monitor.Spec{}
	var cvMu sync.Mutex
	for _, sp := range specs {
		st, err := m.Register(sp)
		if err != nil {
			t.Fatal(err)
		}
		clientView[st.ID] = st.Answer
		specOf[st.ID] = sp
	}

	var wg sync.WaitGroup
	errCh := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + w)))
			ids := owned[w]
			for it := 0; it < iters; it++ {
				var batch []store.Op
				switch wrng.Intn(5) {
				case 0: // insert
					lo, hi := randIv(wrng)
					batch = append(batch, store.InsertObject(pdf.MustUniform(lo, hi)))
				case 1: // delete one of our own
					if len(ids) > 1 {
						i := wrng.Intn(len(ids))
						batch = append(batch, store.Delete(ids[i]))
						ids = append(ids[:i], ids[i+1:]...)
						break
					}
					fallthrough
				default: // cross-shard update: new region anywhere in the domain
					if len(ids) == 0 {
						continue
					}
					id := ids[wrng.Intn(len(ids))]
					lo, hi := randIv(wrng)
					batch = append(batch, store.UpdateObject(id, pdf.MustUniform(lo, hi)))
				}
				res, err := r.Apply(context.Background(), batch)
				if err != nil {
					errCh <- fmt.Errorf("writer %d iter %d: %v", w, it, err)
					return
				}
				for i, op := range batch {
					if op.Code != store.OpDelete && op.ID == 0 {
						ids = append(ids, res.IDs[i])
					}
				}
			}
		}(w)
	}
	// Ad-hoc query load concurrent with the writes.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(200 + g)))
			for it := 0; it < 60; it++ {
				sp := specs[qrng.Intn(len(specs))]
				if _, _, _, err := r.Evaluate(context.Background(), sp, nil); err != nil {
					errCh <- fmt.Errorf("query %d iter %d: %v", g, it, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if err := m.Sync(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Drain pushes; consecutive answers for one query must always differ.
	for drained := false; !drained; {
		select {
		case ev := <-sub.C():
			if ev.Type == monitor.EventLagged {
				t.Fatal("oversized subscription lagged")
			}
			cvMu.Lock()
			if bytes.Equal(clientView[ev.Update.ID], ev.Update.Answer) {
				t.Fatalf("spurious push for monitor %d: %s", ev.Update.ID, ev.Update.Answer)
			}
			clientView[ev.Update.ID] = ev.Update.Answer
			cvMu.Unlock()
		default:
			drained = true
		}
	}

	// Recompute-all oracle: merge every member's full contents and evaluate
	// single-engine, bypassing all router pruning.
	full := fullClusterView(t, c)
	for id, sp := range specOf {
		want, _, err := monitor.Evaluate(full, nil, nil, sp)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(st.Answer, want) {
			t.Fatalf("monitor %d (%s q=%g): stored answer stale after quiescence:\n got %s\nwant %s",
				id, sp.Kind, sp.Q, st.Answer, want)
		}
		if !bytes.Equal(clientView[id], want) {
			t.Fatalf("monitor %d: subscriber view stale:\n got %s\nwant %s",
				id, clientView[id], want)
		}
	}
}

// fullClusterView merges every member's complete 1-D contents into one
// mini-view — the recompute-all oracle's input, built without the router.
func fullClusterView(t *testing.T, c *Cluster) *store.View {
	t.Helper()
	var items []Item
	var vsum uint64
	for _, st := range c.Stores {
		v := st.View()
		items = append(items, gatherView(v, 0, math.Inf(1))...)
		vsum += v.Version
	}
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	pdfs := make([]pdf.PDF, len(items))
	ids := make([]uint64, len(items))
	for i, it := range items {
		pdfs[i] = it.PDF
		ids[i] = it.ID
	}
	return &store.View{Version: vsum, Dataset: uncertain.NewDataset(pdfs), IDs: ids}
}
