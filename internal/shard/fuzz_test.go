package shard

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// FuzzShardRoute fuzzes the scatter-phase pruning invariant the router's
// exactness rests on: for an arbitrary placement of objects onto shards —
// including placements that do NOT respect the routing cuts, modeling
// regions that drifted across cuts under sticky updates — pruning a shard
// because its extent misses the candidate ball must never lose a true
// candidate. The model mirrors the router: per-shard extent = union of
// region rects, per-shard contribution = min(k, n_i) smallest far-point
// distances, global bound = k-th smallest of the merged contributions.
func FuzzShardRoute(f *testing.F) {
	f.Add(int64(1), uint8(4), uint16(40), 500.0, uint8(1))
	f.Add(int64(2), uint8(8), uint16(100), 10.0, uint8(3))
	f.Add(int64(3), uint8(2), uint16(3), -50.0, uint8(5))
	f.Add(int64(4), uint8(16), uint16(0), 0.0, uint8(1))
	f.Add(int64(5), uint8(1), uint16(7), 1e9, uint8(2))

	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8, nRaw uint16, q float64, depthRaw uint8) {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			t.Skip()
		}
		k := int(kRaw)%16 + 1
		n := int(nRaw) % 257
		depth := int(depthRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))

		type obj struct {
			iv    geom.Interval
			shard int
		}
		objs := make([]obj, n)
		for i := range objs {
			lo := (rng.Float64() - 0.5) * 2000
			objs[i] = obj{
				iv:    geom.Interval{Lo: lo, Hi: lo + rng.Float64()*50},
				shard: rng.Intn(k), // arbitrary placement, cuts not respected
			}
		}

		// Per-shard extents and far-distance contributions, as members
		// report them.
		extents := make([]geom.Rect, k)
		hasExtent := make([]bool, k)
		var merged []float64
		for s := 0; s < k; s++ {
			var fars []float64
			for _, o := range objs {
				if o.shard != s {
					continue
				}
				r := geom.RectFromInterval(o.iv)
				if !hasExtent[s] {
					extents[s], hasExtent[s] = r, true
				} else {
					extents[s] = extents[s].Union(r)
				}
				fars = append(fars, o.iv.MaxDist(q))
			}
			sort.Float64s(fars)
			if len(fars) > depth {
				fars = fars[:depth]
			}
			merged = append(merged, fars...)
		}
		sort.Float64s(merged)
		bound := math.Inf(1)
		if len(merged) >= depth {
			bound = merged[depth-1]
		}

		// The true global filter bound and candidate set.
		var allFars []float64
		for _, o := range objs {
			allFars = append(allFars, o.iv.MaxDist(q))
		}
		sort.Float64s(allFars)
		trueBound := math.Inf(1)
		if len(allFars) >= depth {
			trueBound = allFars[depth-1]
		}

		// The merged bound must never under-cut the true bound (under-cutting
		// could prune a shard holding a candidate).
		if bound < trueBound {
			t.Fatalf("merged bound %g < true bound %g (n=%d k=%d depth=%d)",
				bound, trueBound, n, k, depth)
		}
		qp := geom.Point{X: q, Y: 0}
		for i, o := range objs {
			if o.iv.MinDist(q) > trueBound {
				continue // not a candidate
			}
			// Its shard must survive the extent/ball intersection test...
			if !hasExtent[o.shard] {
				t.Fatalf("candidate %d on shard %d with no extent", i, o.shard)
			}
			if !math.IsInf(bound, 1) && extents[o.shard].MinDist(qp) > bound {
				t.Fatalf("candidate %d (iv=%+v) pruned with shard %d: extent %+v, bound %g",
					i, o.iv, o.shard, extents[o.shard], bound)
			}
			// ...and the per-shard gather filter must return the object.
			if o.iv.MinDist(q) > bound {
				t.Fatalf("candidate %d (iv=%+v) not gathered: mindist %g > bound %g",
					i, o.iv, o.iv.MinDist(q), bound)
			}
		}
	})
}

// FuzzShardFor fuzzes the routing function against its specification: for
// any sorted cuts, ShardFor(x) is the unique shard whose (cuts[i-1],
// cuts[i]] interval holds x, and neighbors agree at the boundaries.
func FuzzShardFor(f *testing.F) {
	f.Add(int64(1), uint8(4), 0.5)
	f.Add(int64(2), uint8(1), -3.0)
	f.Add(int64(9), uint8(16), 1e300)

	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8, x float64) {
		if math.IsNaN(x) {
			t.Skip()
		}
		k := int(kRaw)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		cuts := make([]float64, k-1)
		for i := range cuts {
			cuts[i] = (rng.Float64() - 0.5) * 100
		}
		sort.Float64s(cuts)
		s := ShardFor(x, cuts)
		if s < 0 || s >= k {
			t.Fatalf("ShardFor(%g) = %d out of [0,%d)", x, s, k)
		}
		if s > 0 && x <= cuts[s-1] {
			t.Fatalf("ShardFor(%g) = %d but x <= cuts[%d] = %g", x, s, s-1, cuts[s-1])
		}
		if s < k-1 && x > cuts[s] {
			t.Fatalf("ShardFor(%g) = %d but x > cuts[%d] = %g", x, s, s, cuts[s])
		}
	})
}
