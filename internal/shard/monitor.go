package shard

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/monitor"
	"repro/internal/store"
)

// Monitor maintains standing queries over a local shard cluster: it watches
// every member store's change feed, joins the changed rectangles against the
// standing queries' influence regions (monitor.InfluenceRect — the same
// pruning argument as the single-store monitor), and re-evaluates affected
// queries through the router's scatter-gather, pushing an update only when
// the canonical answer body actually changed. Unlike the single-store
// monitor it always re-derives from scratch: a cluster evaluation is already
// a merged mini-dataset of just the candidates, so there is no per-query
// incremental state to maintain.
type Monitor struct {
	r      *Router
	stores []*store.Store
	feeds  []*store.Sub

	mu          sync.Mutex
	cond        *sync.Cond
	closed      bool
	nextID      uint64
	maxMonitors int

	queries  map[uint64]*standingQ
	dirty    map[uint64]struct{}
	inflight int
	// feedVers tracks the highest version each member feed loop has
	// consumed; Sync waits for it to reach the members' current versions.
	feedVers []uint64

	subs map[*Subscription]struct{}

	nDeltas, nGaps, nAffected, nPruned   uint64
	nReEvals, nPushes, nErrors, nDropped uint64
	nTwoDSkips                           uint64

	wg sync.WaitGroup
}

type standingQ struct {
	id   uint64
	spec monitor.Spec

	rect    geom.Rect // influence rect of the last completed evaluation
	version uint64    // cluster version sum of the current answer
	cut     []uint64  // per-member versions of the current answer
	body    []byte

	evaluating bool
	redo       bool
}

// MonitorConfig tunes a shard Monitor. Router and Stores are required and
// must describe the same cluster (Stores[i] is member i's store).
type MonitorConfig struct {
	Router *Router
	Stores []*store.Store
	// Workers bounds concurrent re-evaluations; 0 means 2.
	Workers int
	// FeedBuffer is each member's change-feed buffer; 0 means
	// store.DefaultWatchBuffer.
	FeedBuffer int
	// MaxMonitors caps registered standing queries; 0 means
	// monitor.DefaultMaxMonitors.
	MaxMonitors int
}

// NewMonitor subscribes to every member's change feed and starts the worker
// pool.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.Router == nil || len(cfg.Stores) == 0 {
		return nil, fmt.Errorf("shard: monitor needs a router and member stores")
	}
	if len(cfg.Stores) != cfg.Router.Shards() {
		return nil, fmt.Errorf("shard: monitor got %d stores for %d shards",
			len(cfg.Stores), cfg.Router.Shards())
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxMonitors <= 0 {
		cfg.MaxMonitors = monitor.DefaultMaxMonitors
	}
	m := &Monitor{
		r:        cfg.Router,
		stores:   cfg.Stores,
		nextID:   1,
		queries:  map[uint64]*standingQ{},
		dirty:    map[uint64]struct{}{},
		feedVers: make([]uint64, len(cfg.Stores)),
		subs:     map[*Subscription]struct{}{},
	}
	m.cond = sync.NewCond(&m.mu)
	m.maxMonitors = cfg.MaxMonitors
	for i, st := range cfg.Stores {
		sub, err := st.Watch(cfg.FeedBuffer)
		if err != nil {
			m.closeFeeds()
			return nil, err
		}
		m.feeds = append(m.feeds, sub)
		m.feedVers[i] = st.View().Version
	}
	for i := range m.feeds {
		m.wg.Add(1)
		go m.feedLoop(i)
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

func (m *Monitor) closeFeeds() {
	for _, f := range m.feeds {
		f.Close()
	}
}

// Register adds a standing query: it is evaluated synchronously through the
// router (so the returned state carries the current answer) and then kept
// current by the feeds.
func (m *Monitor) Register(spec monitor.Spec) (*monitor.State, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	body, radius, g, err := m.r.Evaluate(context.Background(), spec, nil)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, monitor.ErrClosed
	}
	if len(m.queries) >= m.maxMonitors {
		return nil, fmt.Errorf("shard: monitor limit (%d) reached", m.maxMonitors)
	}
	id := m.nextID
	m.nextID++
	q := &standingQ{
		id: id, spec: spec,
		rect:    monitor.InfluenceRect(spec.Q, radius),
		version: g.Version,
		cut:     g.Versions,
		body:    body,
	}
	m.queries[id] = q
	// The synchronous evaluation raced the feeds: commits consumed after the
	// Gather cut joined against nothing (the query was not registered yet).
	// Dirty it once so the first background pass re-establishes currency.
	m.dirty[id] = struct{}{}
	m.cond.Broadcast()
	return &monitor.State{ID: id, Spec: spec, Version: g.Version, Answer: body}, nil
}

// Unregister removes a standing query.
func (m *Monitor) Unregister(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return monitor.ErrClosed
	}
	if _, ok := m.queries[id]; !ok {
		return monitor.ErrUnknownMonitor
	}
	delete(m.queries, id)
	delete(m.dirty, id)
	return nil
}

// Get snapshots one standing query's current answer.
func (m *Monitor) Get(id uint64) (*monitor.State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[id]
	if !ok {
		return nil, monitor.ErrUnknownMonitor
	}
	return &monitor.State{ID: q.id, Spec: q.spec, Version: q.version,
		Answer: append([]byte(nil), q.body...)}, nil
}

// List snapshots every standing query, ascending by ID.
func (m *Monitor) List() []*monitor.State {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*monitor.State, 0, len(m.queries))
	for _, q := range m.queries {
		out = append(out, &monitor.State{ID: q.id, Spec: q.spec, Version: q.version,
			Answer: append([]byte(nil), q.body...)})
	}
	sortStates(out)
	return out
}

func sortStates(s []*monitor.State) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].ID > s[j].ID; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// Sync blocks until every answer reflects at least the member versions
// current at the call, or the timeout elapses. The quiescence condition
// mirrors the single-store monitor: feeds caught up, no dirty queries, no
// evaluation in flight.
func (m *Monitor) Sync(timeout time.Duration) error {
	targets := make([]uint64, len(m.stores))
	for i, st := range m.stores {
		targets[i] = st.View().Version
	}
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return monitor.ErrClosed
		}
		caught := true
		for i, t := range targets {
			if m.feedVers[i] < t {
				caught = false
				break
			}
		}
		if caught && len(m.dirty) == 0 && m.inflight == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard: monitor sync: not quiescent after %v (%d dirty, %d evaluating)",
				timeout, len(m.dirty), m.inflight)
		}
		m.cond.Wait()
	}
}

// feedLoop consumes member i's change feed, dirtying exactly the standing
// queries the batch can affect.
func (m *Monitor) feedLoop(i int) {
	defer m.wg.Done()
	for d := range m.feeds[i].C() {
		ver := d.View.Version
		if d.Gap {
			// Drops may continue past the marker; the member's live view is
			// at least as new as every drop.
			ver = m.stores[i].View().Version
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return
		}
		if ver > m.feedVers[i] {
			m.feedVers[i] = ver
		}
		m.nDeltas++
		affected := 0
		if d.Gap || d.Truncated {
			if d.Gap {
				m.nGaps++
			}
			for id := range m.queries {
				m.dirty[id] = struct{}{}
			}
			affected = len(m.queries)
		} else {
			for _, ch := range d.Changes {
				if ch.TwoD {
					// Standing queries are 1-D; disk churn cannot touch them.
					m.nTwoDSkips++
					continue
				}
				for id, q := range m.queries {
					if _, hit := m.dirty[id]; hit {
						continue
					}
					if (ch.Kind != store.ChangeInsert && q.rect.Intersects(ch.OldRect)) ||
						(ch.Kind != store.ChangeDelete && q.rect.Intersects(ch.NewRect)) {
						m.dirty[id] = struct{}{}
						affected++
					}
				}
			}
		}
		m.nAffected += uint64(affected)
		if n := len(m.queries) - affected; n > 0 {
			m.nPruned += uint64(n)
		}
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// worker re-evaluates dirty queries through the router. Evaluations of one
// query never overlap; a query dirtied mid-evaluation requeues on
// completion, and so does one whose influence rect grew while a member feed
// advanced past the evaluation's cut (the raced joins pruned against the
// smaller rect — same soundness hole, and same fix, as the single-store
// monitor's racedGrowth requeue).
func (m *Monitor) worker() {
	defer m.wg.Done()
	sc := core.NewScratch()
	m.mu.Lock()
	for {
		if m.closed {
			m.mu.Unlock()
			return
		}
		var q *standingQ
		for id := range m.dirty {
			delete(m.dirty, id)
			st, ok := m.queries[id]
			if !ok {
				continue
			}
			if st.evaluating {
				st.redo = true
				continue
			}
			q = st
			break
		}
		if q == nil {
			m.cond.Wait()
			continue
		}
		q.evaluating = true
		m.inflight++
		spec := q.spec
		m.mu.Unlock()

		body, radius, g, err := m.r.Evaluate(context.Background(), spec, sc)

		m.mu.Lock()
		m.inflight--
		m.nReEvals++
		q.evaluating = false
		live := m.queries[q.id] == q
		if err != nil {
			m.nErrors++
			if live {
				// The answer may be stale; try again on the next commit — and
				// immediately if one already raced this failed evaluation.
				if q.redo {
					q.redo = false
					m.dirty[q.id] = struct{}{}
				}
			}
			m.cond.Broadcast()
			continue
		}
		rect := monitor.InfluenceRect(spec.Q, radius)
		raced := false
		for i, v := range g.Versions {
			if m.feedVers[i] > v {
				raced = true
				break
			}
		}
		if q.redo || (raced && !q.rect.Contains(rect)) {
			q.redo = false
			if live {
				m.dirty[q.id] = struct{}{}
			}
		}
		if live && newerCut(g.Versions, q.cut) {
			q.rect = rect
			q.version = g.Version
			q.cut = g.Versions
			if !bytes.Equal(body, q.body) {
				q.body = body
				m.nPushes++
				m.pushLocked(monitor.Update{
					ID: q.id, Version: g.Version, Kind: spec.Kind.String(),
					Q: spec.Q, Answer: body,
				})
			}
		}
		m.cond.Broadcast()
	}
}

// newerCut reports whether cut a is at least as new as b on every member.
// Member versions are monotone and evaluations of one query are serialized,
// so a later evaluation's cut always dominates — the check guards the
// invariant rather than ordering concurrent evaluations.
func newerCut(a, b []uint64) bool {
	if len(b) == 0 {
		return true
	}
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// Stats is a snapshot of the shard monitor's counters (a subset of the
// single-store monitor's, with identical meanings).
type MonitorStats struct {
	Active, Subscribers        int
	Deltas, Gaps               uint64
	Affected, Pruned           uint64
	ReEvals, Pushes            uint64
	Errors, Dropped, TwoDSkips uint64
	FeedVersions               []uint64
}

// Stats snapshots the monitor's counters.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MonitorStats{
		Active:       len(m.queries),
		Subscribers:  len(m.subs),
		Deltas:       m.nDeltas,
		Gaps:         m.nGaps,
		Affected:     m.nAffected,
		Pruned:       m.nPruned,
		ReEvals:      m.nReEvals,
		Pushes:       m.nPushes,
		Errors:       m.nErrors,
		Dropped:      m.nDropped,
		TwoDSkips:    m.nTwoDSkips,
		FeedVersions: append([]uint64(nil), m.feedVers...),
	}
}

// Close stops the feeds and workers and closes every subscription.
func (m *Monitor) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for sub := range m.subs {
		delete(m.subs, sub)
		close(sub.ch)
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.closeFeeds()
	m.wg.Wait()
}
