package shard

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/monitor"
	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/verify"
)

// TestShardedEquivalence is the correctness gate of the sharded serving
// path: for 50 seeded op sequences, at every committed version, the answer
// of every standing-query spec evaluated through the scatter-gather router
// is byte-identical to a fresh single-engine evaluation over one store
// holding the same objects — across K ∈ {1,2,4,8} and, on odd seeds,
// deliberately skewed partitions (all cuts crammed into 10% of the domain).
// Stable-ID assignment must also agree op for op, so the sharded cluster is
// indistinguishable from a single store to any client.
func TestShardedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("50 seeded runs x 4 shard counts")
	}
	var fanout, passes, shards uint64
	for seed := int64(0); seed < 50; seed++ {
		for _, k := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("seed=%d/k=%d", seed, k), func(t *testing.T) {
				st := runShardSeed(t, seed, k)
				fanout += st.GatherContacts
				passes += st.Queries
				shards += st.Queries * uint64(st.Shards)
			})
		}
	}
	// The scatter phase must actually prune: across the localized
	// workloads, the mean gather fan-out stays under half the shards.
	if fanout*2 >= shards {
		t.Fatalf("gather fan-out ineffective: %d member reads over %d (query x shard) pairs", fanout, shards)
	}
	t.Logf("gathered from %d of %d (query x shard) pairs (%.1f%%) over %d queries",
		fanout, shards, 100*float64(fanout)/float64(shards), passes)
}

// oracleSpecs builds the standing-query mix of the monitor oracle: CPNN,
// PNN and constrained k-NN scattered over the domain.
func oracleSpecs(rng *rand.Rand, domain float64, seed int64) []monitor.Spec {
	specs := make([]monitor.Spec, 0, 12)
	for i := 0; i < 12; i++ {
		q := rng.Float64() * domain
		switch i % 3 {
		case 0:
			specs = append(specs, monitor.Spec{Kind: monitor.KindCPNN, Q: q,
				Constraint: verify.Constraint{P: 0.3, Delta: 0.01}})
		case 1:
			specs = append(specs, monitor.Spec{Kind: monitor.KindPNN, Q: q})
		case 2:
			specs = append(specs, monitor.Spec{Kind: monitor.KindKNN, Q: q,
				Constraint: verify.Constraint{P: 0.4, Delta: 0.05},
				K:          2, Samples: 400, Seed: seed})
		}
	}
	return specs
}

func runShardSeed(t *testing.T, seed int64, k int) Stats {
	rng := rand.New(rand.NewSource(seed))
	const domain = 10000.0
	randIv := func() (float64, float64) {
		lo := rng.Float64() * domain
		return lo, lo + 1 + rng.Float64()*20
	}

	// The single-store oracle.
	single, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	var ops []store.Op
	for i := 0; i < 60; i++ {
		lo, hi := randIv()
		ops = append(ops, store.InsertObject(pdf.MustUniform(lo, hi)))
	}
	res, err := single.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	live := append([]uint64(nil), res.IDs...)

	// The sharded cluster, split from the oracle's view. Odd seeds use a
	// deliberately skewed layout: every cut inside the first 10% of the
	// domain, so most objects pile into the last shard.
	var c *Cluster
	if seed%2 == 1 {
		cuts := make([]float64, k-1)
		for i := range cuts {
			cuts[i] = domain * 0.1 * float64(i+1) / float64(k)
		}
		c, err = CreateClusterCuts(t.TempDir(), cuts, single.View(), store.Options{NoSync: true})
	} else {
		c, err = CreateCluster(t.TempDir(), k, single.View(), store.Options{NoSync: true})
	}
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Router()
	if err != nil {
		t.Fatal(err)
	}

	specs := oracleSpecs(rng, domain, seed)
	sweep := func(step int) {
		view := single.View()
		for si, sp := range specs {
			want, _, err := monitor.Evaluate(view, nil, nil, sp)
			if err != nil {
				t.Fatal(err)
			}
			got, _, g, err := r.Evaluate(context.Background(), sp, nil)
			if err != nil {
				t.Fatalf("step %d spec %d: router: %v", step, si, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d seed %d k=%d: spec %d (%s q=%g) diverged:\n got %s\nwant %s\n(fan-out %d/%d, bound %g)",
					step, seed, k, si, sp.Kind, sp.Q, got, want, g.Fanout, k, g.Bound)
			}
		}
	}
	sweep(-1)

	for step := 0; step < 10; step++ {
		var batch []store.Op
		if step == 5 && seed%5 == 0 {
			// Cover the truncate barrier: wholesale reload mid-sequence.
			batch = append(batch, store.Truncate())
			live = nil
			for i := 0; i < 10; i++ {
				lo, hi := randIv()
				batch = append(batch, store.InsertObject(pdf.MustUniform(lo, hi)))
			}
		} else {
			nops := 1 + rng.Intn(4)
			for i := 0; i < nops; i++ {
				switch op := rng.Intn(10); {
				case op < 4 && len(live) > 0:
					id := live[rng.Intn(len(live))]
					lo, hi := randIv()
					batch = append(batch, store.UpdateObject(id, pdf.MustUniform(lo, hi)))
				case op < 7:
					lo, hi := randIv()
					batch = append(batch, store.InsertObject(pdf.MustUniform(lo, hi)))
				case len(live) > 1:
					i := rng.Intn(len(live))
					batch = append(batch, store.Delete(live[i]))
					live = append(live[:i], live[i+1:]...)
				default:
					lo, hi := randIv()
					batch = append(batch, store.InsertObject(pdf.MustUniform(lo, hi)))
				}
			}
		}
		sres, err := single.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		rres, err := r.Apply(context.Background(), batch)
		if err != nil {
			t.Fatalf("step %d: router apply: %v", step, err)
		}
		// The router's ID assignment must be indistinguishable from the
		// single store's.
		if len(sres.IDs) != len(rres.IDs) {
			t.Fatalf("step %d: ID count %d vs %d", step, len(rres.IDs), len(sres.IDs))
		}
		for i := range sres.IDs {
			if sres.IDs[i] != rres.IDs[i] {
				t.Fatalf("step %d op %d: router assigned ID %d, single store %d",
					step, i, rres.IDs[i], sres.IDs[i])
			}
		}
		for i, op := range batch {
			if op.Code != store.OpDelete && op.Code != store.OpTruncate && op.ID == 0 {
				live = append(live, sres.IDs[i])
			}
		}
		sweep(step)
	}
	return r.Stats()
}
