package filter

import (
	"math"
	"sort"
	"testing"

	"repro/internal/pdf"
	"repro/internal/uncertain"
)

func mkDataset(intervals [][2]float64) *uncertain.Dataset {
	pdfs := make([]pdf.PDF, len(intervals))
	for i, iv := range intervals {
		pdfs[i] = pdf.MustUniform(iv[0], iv[1])
	}
	return uncertain.NewDataset(pdfs)
}

func TestCandidatesHandExample(t *testing.T) {
	// Objects around q=10. Far points: A:8 (f=8? |10-2|=8, |10-6|=4 -> 8),
	// B:[9,11] -> far 1, C:[12,13] -> far 3, D:[30,40] -> far 30.
	// f_min = 1 (object B). Candidates: near point <= 1:
	// A near = 4 -> out; B near = 0 -> in; C near = 2 -> out; D near 20 -> out.
	ds := mkDataset([][2]float64{{2, 6}, {9, 11}, {12, 13}, {30, 40}})
	ix, err := NewIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	res := ix.Candidates(10)
	if math.Abs(res.FMin-1) > 1e-12 {
		t.Fatalf("FMin = %g, want 1", res.FMin)
	}
	if len(res.IDs) != 1 || res.IDs[0] != 1 {
		t.Fatalf("IDs = %v, want [1]", res.IDs)
	}
}

func TestCandidatesOverlapping(t *testing.T) {
	// Heavily overlapping regions: everyone is a candidate.
	ds := mkDataset([][2]float64{{0, 10}, {1, 9}, {2, 8}, {3, 7}})
	ix, err := NewIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	res := ix.Candidates(5)
	if len(res.IDs) != 4 {
		t.Fatalf("IDs = %v, want all four", res.IDs)
	}
	// f_min = far point of [3,7] from 5 = 2.
	if math.Abs(res.FMin-2) > 1e-12 {
		t.Errorf("FMin = %g, want 2", res.FMin)
	}
}

func TestCandidatesMatchLinear(t *testing.T) {
	opt := uncertain.GenOptions{N: 3000, Domain: 5000, MeanLen: 12, MinLen: 0.5, MaxLen: 60, Seed: 77}
	ds, err := uncertain.GenerateUniform(opt)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range uncertain.QueryWorkload(25, opt.Domain, 123) {
		got := ix.Candidates(q)
		want := LinearCandidates(ds, q)
		if math.Abs(got.FMin-want.FMin) > 1e-9 {
			t.Fatalf("q=%g: FMin %g vs %g", q, got.FMin, want.FMin)
		}
		sort.Ints(got.IDs)
		sort.Ints(want.IDs)
		if len(got.IDs) != len(want.IDs) {
			t.Fatalf("q=%g: %d candidates vs %d", q, len(got.IDs), len(want.IDs))
		}
		for i := range got.IDs {
			if got.IDs[i] != want.IDs[i] {
				t.Fatalf("q=%g: candidate %d: %d vs %d", q, i, got.IDs[i], want.IDs[i])
			}
		}
	}
}

func TestCandidatesEmpty(t *testing.T) {
	ds := uncertain.NewDataset(nil)
	ix, err := NewIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	res := ix.Candidates(5)
	if len(res.IDs) != 0 {
		t.Error("empty dataset produced candidates")
	}
	lin := LinearCandidates(ds, 5)
	if len(lin.IDs) != 0 {
		t.Error("linear scan on empty dataset produced candidates")
	}
}

func TestCandidatesSingleObject(t *testing.T) {
	ds := mkDataset([][2]float64{{5, 8}})
	ix, err := NewIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	res := ix.Candidates(100)
	if len(res.IDs) != 1 || res.IDs[0] != 0 {
		t.Fatalf("IDs = %v", res.IDs)
	}
	if math.Abs(res.FMin-95) > 1e-12 {
		t.Errorf("FMin = %g, want 95", res.FMin)
	}
}

func TestInsertKeepsIndexConsistent(t *testing.T) {
	ds := mkDataset([][2]float64{{0, 2}, {10, 12}})
	ix, err := NewIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	// A new tight object right at the query point shrinks f_min so the old
	// candidates are pruned.
	if err := ix.Insert(uncertain.Object{ID: 2, PDF: pdf.MustUniform(5.9, 6.1)}); err != nil {
		t.Fatal(err)
	}
	res := ix.Candidates(6)
	if len(res.IDs) != 1 || res.IDs[0] != 2 {
		t.Fatalf("IDs = %v, want [2]", res.IDs)
	}
}

func TestCandidateSetSizeLongBeachScale(t *testing.T) {
	if testing.Short() {
		t.Skip("long-beach-scale generation in -short mode")
	}
	// Calibration check for the paper's §V-A figure of ~96 candidates.
	opt := uncertain.LongBeachOptions(5)
	ds, err := uncertain.GenerateUniform(opt)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	queries := uncertain.QueryWorkload(50, opt.Domain, 99)
	for _, q := range queries {
		total += len(ix.Candidates(q).IDs)
	}
	avg := float64(total) / float64(len(queries))
	if avg < 40 || avg > 220 {
		t.Errorf("average candidate-set size %g too far from the paper's ~96", avg)
	}
	t.Logf("average candidate-set size: %.1f (paper: ~96)", avg)
}
