// Package filter implements the first phase of the C-PNN pipeline (paper
// Fig. 3): pruning objects that cannot possibly be the nearest neighbor of
// the query point.
//
// The rule comes from Cheng et al. (TKDE'04), reference [8] of the paper: let
// f_min be the minimum over all objects of the far-point distance from q.
// Any object whose near point exceeds f_min has zero qualification
// probability, because the object attaining f_min is certainly closer. The
// survivors form the candidate set handed to the verifiers.
package filter

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/uncertain"
)

// Index is an R-tree over the uncertainty regions of a dataset, ready to
// answer candidate-set queries.
type Index struct {
	tree *rtree.Tree[int]
	ds   *uncertain.Dataset
}

// NewIndex bulk-loads the dataset's uncertainty regions into an R-tree.
// Only regions are read, never pdf payloads, so indexing a disk-backed
// dataset does not fault it in.
func NewIndex(ds *uncertain.Dataset) (*Index, error) {
	inputs := make([]rtree.Input[int], ds.Len())
	for i := range inputs {
		inputs[i] = rtree.Input[int]{Rect: geom.RectFromInterval(ds.Region(i)), Item: i}
	}
	tree, err := rtree.BulkLoad(inputs, rtree.DefaultMinEntries, rtree.DefaultMaxEntries)
	if err != nil {
		return nil, fmt.Errorf("filter: building index: %w", err)
	}
	return &Index{tree: tree, ds: ds}, nil
}

// FromTree wraps an already-built tree (e.g. one reloaded from a paged
// checkpoint) as an index over ds. The tree must hold exactly the dense IDs
// 0..ds.Len()-1 under the dataset's current regions.
func FromTree(tree *rtree.Tree[int], ds *uncertain.Dataset) (*Index, error) {
	if tree.Len() != ds.Len() {
		return nil, fmt.Errorf("filter: tree holds %d entries, dataset %d objects",
			tree.Len(), ds.Len())
	}
	return &Index{tree: tree, ds: ds}, nil
}

// Dataset returns the indexed dataset.
func (ix *Index) Dataset() *uncertain.Dataset { return ix.ds }

// Result is the outcome of the filtering phase.
type Result struct {
	// IDs are the candidate object IDs: objects whose qualification
	// probability may be non-zero.
	IDs []int
	// FMin is the minimum far-point distance over all objects — the pruning
	// bound.
	FMin float64
}

// Candidates returns the candidate set for query point q.
func (ix *Index) Candidates(q float64) Result {
	if ix.tree.Len() == 0 {
		return Result{}
	}
	fMin := ix.tree.MinMaxDist(geom.Point{X: q, Y: 0})
	return Result{IDs: ix.Within(q, fMin), FMin: fMin}
}

// Within returns the IDs of every indexed region whose near point lies
// within bound of q, ascending. With bound = f_min this is the candidate
// set; a shard's gather step runs it against the router's global bound.
func (ix *Index) Within(q, bound float64) []int {
	window := geom.Rect{MinX: q - bound, MinY: 0, MaxX: q + bound, MaxY: 0}
	var ids []int
	ix.tree.Search(window, func(r geom.Rect, id int) bool {
		// The window search is the MINDIST <= bound test in one dimension,
		// but guard explicitly to keep the invariant obvious.
		if r.Interval().MinDist(q) <= bound {
			ids = append(ids, id)
		}
		return true
	})
	// Canonical ascending order: tree traversal order depends on insertion
	// history, and downstream consumers (answer assembly, incremental replay)
	// require the candidate order to be a function of the set alone.
	sort.Ints(ids)
	return ids
}

// Insert adds an object to an existing index. The object must already carry
// its dataset ID; it is the caller's responsibility to keep the dataset and
// index in sync.
func (ix *Index) Insert(o uncertain.Object) error {
	return ix.tree.Insert(geom.RectFromInterval(o.Region()), o.ID)
}

// Delete removes the entry for an object, reporting whether it was present.
// The object's region must match the region it was inserted with.
func (ix *Index) Delete(o uncertain.Object) bool {
	rect := geom.RectFromInterval(o.Region())
	return ix.tree.Delete(rect, func(id int) bool { return id == o.ID })
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return ix.tree.Len() }

// Bounds returns the bounding rectangle of every indexed region and whether
// the index is non-empty. A shard's router prunes the scatter phase with it:
// a shard whose extent misses the candidate ball cannot hold a candidate.
func (ix *Index) Bounds() (geom.Rect, bool) { return ix.tree.Bounds() }

// Edit is one incremental index mutation in terms of dense dataset IDs:
// the (rect, id) entry to insert or delete. The store emits edit streams as
// it commits object batches; Apply replays them onto a copy of the index.
type Edit struct {
	// Delete selects removal; otherwise the edit inserts.
	Delete bool
	// Rect is the entry's bounding rectangle (the object's region).
	Rect geom.Rect
	// ID is the dense dataset ID of the entry.
	ID int
}

// InsertEdit builds the edit that indexes an object's region under a dense ID.
func InsertEdit(region geom.Interval, id int) Edit {
	return Edit{Rect: geom.RectFromInterval(region), ID: id}
}

// DeleteEdit builds the edit that removes an object's entry.
func DeleteEdit(region geom.Interval, id int) Edit {
	return Edit{Delete: true, Rect: geom.RectFromInterval(region), ID: id}
}

// rebuildFraction is the edit-entry-to-size ratio beyond which Apply
// abandons incremental maintenance and bulk-reloads. Note the unit: edit
// entries, not ops — an update emits two edits (delete + insert) and a
// slot-displacing delete three, so the flip happens near 12% update churn
// (≈25% of the dataset measured in tree operations). Past that, STR packing
// is both faster and yields a tighter tree than a long train of splits (see
// BenchmarkIndexMaintenance).
const rebuildFraction = 0.25

// Apply produces the index of the next dataset generation: it deep-copies
// the current tree (readers of this index are never disturbed — MVCC by
// copy-on-write) and replays the edits onto the copy. When the edit stream
// is large relative to the dataset it falls back to a bulk STR rebuild, the
// amortization strategy for wholesale reloads. The returned index is bound
// to ds; ix may be nil to force a bulk build.
func (ix *Index) Apply(ds *uncertain.Dataset, edits []Edit) (*Index, error) {
	if ix == nil || float64(len(edits)) >= rebuildFraction*float64(ds.Len())+1 {
		return NewIndex(ds)
	}
	return applyEdits(ix.tree.Clone(), ds, edits)
}

// ApplyTree replays edits directly onto tree (consuming it — the caller must
// not keep using it) and binds the result to ds. Store recovery uses it to
// carry the checkpoint's paged tree forward through the WAL's edit stream
// without an O(n) rebuild.
func ApplyTree(tree *rtree.Tree[int], ds *uncertain.Dataset, edits []Edit) (*Index, error) {
	if float64(len(edits)) >= rebuildFraction*float64(ds.Len())+1 {
		return NewIndex(ds)
	}
	return applyEdits(tree, ds, edits)
}

// Tree returns the underlying R-tree. The store's paged checkpoint dumps it
// node by node; callers must treat it as read-only.
func (ix *Index) Tree() *rtree.Tree[int] { return ix.tree }

func applyEdits(tree *rtree.Tree[int], ds *uncertain.Dataset, edits []Edit) (*Index, error) {
	for _, e := range edits {
		if e.Delete {
			if !tree.Delete(e.Rect, func(id int) bool { return id == e.ID }) {
				return nil, fmt.Errorf("filter: apply: no entry id=%d rect=%+v", e.ID, e.Rect)
			}
		} else if err := tree.Insert(e.Rect, e.ID); err != nil {
			return nil, fmt.Errorf("filter: apply: %w", err)
		}
	}
	if tree.Len() != ds.Len() {
		return nil, fmt.Errorf("filter: apply: index holds %d entries, dataset %d objects",
			tree.Len(), ds.Len())
	}
	return &Index{tree: tree, ds: ds}, nil
}

// LinearCandidates computes the candidate set by brute force. It is the
// reference implementation used to validate the index-based path and to
// quantify the benefit of filtering in the benchmarks.
func LinearCandidates(ds *uncertain.Dataset, q float64) Result {
	if ds.Len() == 0 {
		return Result{}
	}
	fMin := ds.Region(0).MaxDist(q)
	for i, n := 1, ds.Len(); i < n; i++ {
		if d := ds.Region(i).MaxDist(q); d < fMin {
			fMin = d
		}
	}
	var ids []int
	for i, n := 0, ds.Len(); i < n; i++ {
		if ds.Region(i).MinDist(q) <= fMin {
			ids = append(ids, i)
		}
	}
	return Result{IDs: ids, FMin: fMin}
}
