package filter

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/pdf"
	"repro/internal/uncertain"
)

// applyScenario mutates a dataset slot-wise the way the store does (updates
// in place, swap-with-last deletes, appends) and returns the edit stream
// alongside the resulting pdf slice.
func applyScenario(rng *rand.Rand, pdfs []pdf.PDF, ops int) ([]pdf.PDF, []Edit) {
	out := append([]pdf.PDF(nil), pdfs...)
	var edits []Edit
	for i := 0; i < ops; i++ {
		switch r := rng.Float64(); {
		case r < 0.4 || len(out) == 0: // insert
			lo := rng.Float64() * 100
			p := pdf.MustUniform(lo, lo+1+rng.Float64()*5)
			edits = append(edits, InsertEdit(p.Support(), len(out)))
			out = append(out, p)
		case r < 0.7: // update in place
			slot := rng.Intn(len(out))
			lo := rng.Float64() * 100
			p := pdf.MustUniform(lo, lo+1+rng.Float64()*5)
			edits = append(edits,
				DeleteEdit(out[slot].Support(), slot),
				InsertEdit(p.Support(), slot))
			out[slot] = p
		default: // swap-with-last delete
			slot := rng.Intn(len(out))
			last := len(out) - 1
			edits = append(edits, DeleteEdit(out[slot].Support(), slot))
			if slot != last {
				edits = append(edits,
					DeleteEdit(out[last].Support(), last),
					InsertEdit(out[last].Support(), slot))
				out[slot] = out[last]
			}
			out = out[:last]
		}
	}
	return out, edits
}

func TestApplyMatchesBulkAcrossRandomEdits(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pdfs := make([]pdf.PDF, 120)
		for i := range pdfs {
			lo := rng.Float64() * 100
			pdfs[i] = pdf.MustUniform(lo, lo+1+rng.Float64()*5)
		}
		ds := uncertain.NewDataset(pdfs)
		ix, err := NewIndex(ds)
		if err != nil {
			t.Fatal(err)
		}

		newPDFs, edits := applyScenario(rng, pdfs, 25)
		newDS := uncertain.NewDataset(newPDFs)
		inc, err := ix.Apply(newDS, edits)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bulk, err := NewIndex(newDS)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 6; probe++ {
			q := rng.Float64() * 100
			a, b := inc.Candidates(q), bulk.Candidates(q)
			if a.FMin != b.FMin {
				t.Fatalf("seed %d q=%g: fmin %g vs %g", seed, q, a.FMin, b.FMin)
			}
			sort.Ints(a.IDs)
			sort.Ints(b.IDs)
			if len(a.IDs) != len(b.IDs) {
				t.Fatalf("seed %d q=%g: %v vs %v", seed, q, a.IDs, b.IDs)
			}
			for i := range a.IDs {
				if a.IDs[i] != b.IDs[i] {
					t.Fatalf("seed %d q=%g: %v vs %v", seed, q, a.IDs, b.IDs)
				}
			}
		}
		// The original index still answers for the original dataset (COW).
		if got := ix.Len(); got != 120 {
			t.Fatalf("seed %d: original index mutated to %d entries", seed, got)
		}
	}
}

func TestApplyLargeEditStreamRebuilds(t *testing.T) {
	ds := mkDataset([][2]float64{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	ix, err := NewIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	// More edits than the rebuild threshold: Apply must still return a
	// correct index (via bulk rebuild) even with nonsense edits, because it
	// never replays them on that path.
	edits := make([]Edit, 64)
	next, err := ix.Apply(ds, edits)
	if err != nil {
		t.Fatal(err)
	}
	if next.Len() != ds.Len() {
		t.Fatalf("rebuilt index has %d entries", next.Len())
	}
}

func TestApplyDetectsInconsistentEdits(t *testing.T) {
	ds := mkDataset([][2]float64{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	ix, err := NewIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting an entry that does not exist must fail loudly.
	bogus := DeleteEdit(ds.Object(0).Region(), 3) // wrong ID for that rect
	if _, err := ix.Apply(ds, []Edit{bogus}); err == nil || !strings.Contains(err.Error(), "no entry") {
		t.Fatalf("bogus delete: %v", err)
	}
	// A net insert without a dataset row must trip the size check.
	extra := InsertEdit(ds.Object(0).Region(), 4)
	if _, err := ix.Apply(ds, []Edit{extra}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestDeleteKeepsIndexConsistent(t *testing.T) {
	ds := mkDataset([][2]float64{{0, 2}, {10, 12}, {20, 22}})
	ix, err := NewIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Delete(ds.Object(1)) {
		t.Fatal("delete reported not found")
	}
	if ix.Len() != 2 {
		t.Fatalf("len %d after delete", ix.Len())
	}
	if ix.Delete(ds.Object(1)) {
		t.Fatal("double delete reported found")
	}
}
