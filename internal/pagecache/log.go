package pagecache

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pager"
)

// The record log lays variable-length records into the page file as one
// contiguous byte stream: logical offset o lives at byte 4+o%PayloadSize of
// page base+o/PayloadSize (the first 4 bytes of every page are its CRC).
// Records are length-prefixed and span page boundaries freely, so a 5 KiB
// histogram payload or a packed slot table is one record regardless of page
// size. References are logical offsets — stable, compact, and independent of
// page layout.

// Log reads records from a finished byte stream laid out by a Writer.
type Log struct {
	pool *Pool
	base pager.PageID // first stream page
	size int64        // total stream bytes (bounds every read)
}

// NewLog opens the record stream of pool's file: pages base.. holding size
// stream bytes.
func NewLog(pool *Pool, base pager.PageID, size int64) *Log {
	return &Log{pool: pool, base: base, size: size}
}

// Size returns the stream length in bytes.
func (l *Log) Size() int64 { return l.size }

// page returns the page holding logical offset off and the offset within its
// payload.
func (l *Log) page(off int64) (pager.PageID, int) {
	return l.base + pager.PageID(off/PayloadSize), int(off % PayloadSize)
}

// readAt copies len(buf) stream bytes starting at off, faulting pages
// through the pool as needed.
func (l *Log) readAt(buf []byte, off int64) error {
	if off < 0 || off+int64(len(buf)) > l.size {
		return fmt.Errorf("pagecache: record read [%d, %d) outside stream of %d bytes",
			off, off+int64(len(buf)), l.size)
	}
	for len(buf) > 0 {
		id, within := l.page(off)
		h, err := l.pool.Fetch(id)
		if err != nil {
			return err
		}
		n := copy(buf, h.Data()[within:])
		h.Release()
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// ReadRecord returns the record starting at logical offset ref.
func (l *Log) ReadRecord(ref int64) ([]byte, error) {
	var hdr [4]byte
	if err := l.readAt(hdr[:], ref); err != nil {
		return nil, err
	}
	n := int64(binary.LittleEndian.Uint32(hdr[:]))
	if ref+4+n > l.size {
		return nil, fmt.Errorf("pagecache: record at %d claims %d bytes, stream holds %d",
			ref, n, l.size)
	}
	buf := make([]byte, n)
	if err := l.readAt(buf, ref+4); err != nil {
		return nil, err
	}
	return buf, nil
}

// Writer appends records to a fresh stream, allocating pages through the
// pool as the stream grows — under a small budget, earlier dirty pages
// stream back to disk while later ones are still being filled.
type Writer struct {
	pool *Pool
	base pager.PageID
	off  int64   // stream bytes written
	cur  *Handle // page being filled (pinned, dirty)
}

// NewWriter starts a stream whose first page will be base. The caller must
// have allocated pages 0..base-1 already (the header pages); stream pages
// are allocated on demand and must come out of the file sequentially.
func NewWriter(pool *Pool, base pager.PageID) *Writer {
	return &Writer{pool: pool, base: base}
}

// Pos returns the logical offset the next byte will land at.
func (w *Writer) Pos() int64 { return w.off }

// Append writes one length-prefixed record and returns its reference.
func (w *Writer) Append(data []byte) (int64, error) {
	ref := w.off
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	if err := w.write(hdr[:]); err != nil {
		return 0, err
	}
	if err := w.write(data); err != nil {
		return 0, err
	}
	return ref, nil
}

func (w *Writer) write(b []byte) error {
	for len(b) > 0 {
		within := int(w.off % PayloadSize)
		if w.cur == nil || within == 0 {
			if err := w.turnPage(); err != nil {
				return err
			}
		}
		n := copy(w.cur.Data()[within:], b)
		b = b[n:]
		w.off += int64(n)
	}
	return nil
}

// turnPage releases the filled page and allocates the next stream page.
func (w *Writer) turnPage() error {
	if w.cur != nil {
		w.cur.Release()
		w.cur = nil
	}
	h, err := w.pool.Allocate()
	if err != nil {
		return err
	}
	want := w.base + pager.PageID(w.off/PayloadSize)
	if h.ID() != want {
		h.Release()
		return fmt.Errorf("pagecache: stream page allocated at %d, want %d (interleaved allocation)",
			h.ID(), want)
	}
	w.cur = h
	return nil
}

// Finish releases the trailing page and returns the stream length. The
// caller flushes the pool (and syncs the file) to make the stream durable.
func (w *Writer) Finish() int64 {
	if w.cur != nil {
		w.cur.Release()
		w.cur = nil
	}
	return w.off
}
