package pagecache

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
)

// A paged R-tree stores each node as one log record: a leaf flag, an entry
// count, and per entry a rectangle plus either the item value (leaves) or
// the child's record reference (internal nodes). Children are written before
// parents, so a tree dump is a single append pass and the root reference
// lands in the checkpoint header.
//
// Tree answers the filter phase's two queries — MinMaxDist (the f_min bound)
// and Within (the candidate window) — directly against the page file through
// the pool, without materializing the tree in memory. The store uses it for
// offline verification (cpnn-store verify) and recovery uses LoadNode to map
// the node pages back into the in-memory index without re-packing.

// Node is one decoded R-tree node.
type Node struct {
	Leaf  bool
	Rects []geom.Rect
	// Items holds the leaf values (dense dataset IDs); nil for internal nodes.
	Items []int64
	// Children holds the child record references; nil for leaves.
	Children []int64
}

// nodeEntrySize is the encoded size of one node entry.
const nodeEntrySize = 4*8 + 8

// AppendNode encodes a node record (leaf flag, count, entries) into buf.
// vals carries the leaf items or the child references, matching rects.
func AppendNode(buf []byte, leaf bool, rects []geom.Rect, vals []int64) []byte {
	if leaf {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rects)))
	for i, r := range rects {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MinX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MinY))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MaxX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MaxY))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(vals[i]))
	}
	return buf
}

// DecodeNode parses a node record.
func DecodeNode(b []byte) (Node, error) {
	if len(b) < 5 {
		return Node{}, fmt.Errorf("pagecache: node record of %d bytes", len(b))
	}
	n := Node{Leaf: b[0] == 1}
	count := int(binary.LittleEndian.Uint32(b[1:5]))
	b = b[5:]
	if len(b) != count*nodeEntrySize {
		return Node{}, fmt.Errorf("pagecache: node record holds %d bytes for %d entries", len(b), count)
	}
	n.Rects = make([]geom.Rect, count)
	vals := make([]int64, count)
	for i := 0; i < count; i++ {
		o := i * nodeEntrySize
		n.Rects[i] = geom.Rect{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(b[o : o+8])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(b[o+8 : o+16])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(b[o+16 : o+24])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(b[o+24 : o+32])),
		}
		vals[i] = int64(binary.LittleEndian.Uint64(b[o+32 : o+40]))
	}
	if n.Leaf {
		n.Items = vals
	} else {
		n.Children = vals
	}
	return n, nil
}

// Tree queries a dumped R-tree through the pool.
type Tree struct {
	log  *Log
	root int64
	size int
}

// NewTree opens a dumped tree: root is the root node's record reference and
// size the number of stored items (0 for an empty tree).
func NewTree(log *Log, root int64, size int) *Tree {
	return &Tree{log: log, root: root, size: size}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// LoadNode reads and decodes one node record.
func (t *Tree) LoadNode(ref int64) (Node, error) {
	rec, err := t.log.ReadRecord(ref)
	if err != nil {
		return Node{}, err
	}
	return DecodeNode(rec)
}

// Root returns the root node reference.
func (t *Tree) Root() int64 { return t.root }

// MinMaxDist returns the smallest MAXDIST over all stored rectangles from q
// (+Inf for an empty tree), faulting node pages on demand — the same bound
// the in-memory index computes for the filtering phase.
func (t *Tree) MinMaxDist(q geom.Point) (float64, error) {
	best := math.Inf(1)
	if t.size == 0 {
		return best, nil
	}
	// Best-first over (MINDIST, node ref) with MAXDIST tightening, mirroring
	// the in-memory traversal.
	type visit struct {
		dist float64
		ref  int64
	}
	heap := []visit{{0, t.root}}
	push := func(v visit) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent].dist <= heap[i].dist {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() visit {
		top := heap[0]
		n := len(heap) - 1
		heap[0] = heap[n]
		heap = heap[:n]
		for i := 0; ; {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && heap[r].dist < heap[l].dist {
				m = r
			}
			if heap[i].dist <= heap[m].dist {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return top
	}
	for len(heap) > 0 {
		head := pop()
		if head.dist > best {
			break
		}
		n, err := t.LoadNode(head.ref)
		if err != nil {
			return 0, err
		}
		for i, r := range n.Rects {
			if mm := r.MaxDist(q); mm < best {
				best = mm
			}
			if !n.Leaf {
				if md := r.MinDist(q); md <= best {
					push(visit{md, n.Children[i]})
				}
			}
		}
	}
	return best, nil
}

// Within returns the items whose rectangle's MINDIST from (q, 0) is at most
// bound, in traversal order. The caller sorts; with bound = f_min this is
// the candidate set.
func (t *Tree) Within(q, bound float64) ([]int, error) {
	if t.size == 0 {
		return nil, nil
	}
	window := geom.Rect{MinX: q - bound, MinY: 0, MaxX: q + bound, MaxY: 0}
	pt := geom.Point{X: q, Y: 0}
	var ids []int
	var walk func(ref int64) error
	walk = func(ref int64) error {
		n, err := t.LoadNode(ref)
		if err != nil {
			return err
		}
		for i, r := range n.Rects {
			if !r.Intersects(window) {
				continue
			}
			if n.Leaf {
				if r.MinDist(pt) <= bound {
					ids = append(ids, int(n.Items[i]))
				}
			} else if err := walk(n.Children[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return ids, nil
}
