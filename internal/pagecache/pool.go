// Package pagecache is the buffer-pool layer between the store and the 4 KiB
// pager: a concurrency-safe page cache with a configurable byte budget, CLOCK
// eviction, pinned page handles and dirty-page write-back, plus an
// append-only record log and a paged R-tree reader built on top of it.
//
// Every page carries a CRC-32C of its payload in its first four bytes, so a
// torn or bit-rotted page is detected at fault time with its page number and
// byte offset — the page-granular analogue of the WAL's record checksums.
// The store's paged checkpoints write object records and index nodes through
// a Pool (dirty pages stream back to disk as the budget fills) and serve
// queries from datasets larger than memory by faulting pages back on demand.
package pagecache

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/pager"
)

// PayloadSize is the number of usable bytes per page: the page minus the
// leading CRC-32C.
const PayloadSize = pager.PageSize - 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// MinBudget is the smallest accepted pool budget: enough pages that a single
// record spanning a handful of pages can be walked while older pages stay
// resident.
const MinBudget = 8 * pager.PageSize

// Stats counts pool activity. Hits and Misses count Fetch calls served from
// memory versus from disk; Evictions counts frames recycled under budget
// pressure; Writebacks counts dirty pages flushed to disk (on eviction or
// Flush). ResidentPages and BudgetBytes describe the current footprint.
type Stats struct {
	Hits, Misses, Evictions, Writebacks uint64
	ResidentPages                       int
	BudgetBytes                         int64
}

// Pool caches pages of a pager.File under a byte budget with CLOCK eviction.
// It is safe for concurrent use; readers pin pages through Handles while
// decoding and release them immediately after.
type Pool struct {
	mu     sync.Mutex
	f      *pager.File
	budget int // max resident frames
	frames map[pager.PageID]*frame
	clock  []*frame // eviction ring; hand sweeps it
	hand   int
	stats  Stats
}

type frame struct {
	id    pager.PageID
	data  [pager.PageSize]byte
	pins  int
	ref   bool // CLOCK reference bit
	dirty bool
}

// NewPool wraps f with a pool holding at most budgetBytes of pages.
// Budgets below MinBudget are raised to it.
func NewPool(f *pager.File, budgetBytes int64) *Pool {
	if budgetBytes < MinBudget {
		budgetBytes = MinBudget
	}
	return &Pool{
		f:      f,
		budget: int(budgetBytes / pager.PageSize),
		frames: map[pager.PageID]*frame{},
	}
}

// Handle is a pinned page. Its payload stays valid (and its frame resident)
// until Release.
type Handle struct {
	p  *Pool
	fr *frame
}

// Data returns the page payload (PayloadSize bytes, excluding the CRC).
// Mutating it requires MarkDirty before Release.
func (h *Handle) Data() []byte { return h.fr.data[4:] }

// ID returns the page number.
func (h *Handle) ID() pager.PageID { return h.fr.id }

// MarkDirty schedules the page for write-back (on eviction or Flush).
func (h *Handle) MarkDirty() {
	h.p.mu.Lock()
	h.fr.dirty = true
	h.p.mu.Unlock()
}

// Release unpins the page. The Handle must not be used afterwards.
func (h *Handle) Release() {
	h.p.mu.Lock()
	if h.fr.pins > 0 {
		h.fr.pins--
	}
	h.p.mu.Unlock()
}

// Fetch pins page id, faulting it from disk (and verifying its checksum) on
// a miss.
func (p *Pool) Fetch(id pager.PageID) (*Handle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.frames[id]; ok {
		p.stats.Hits++
		fr.pins++
		fr.ref = true
		return &Handle{p: p, fr: fr}, nil
	}
	p.stats.Misses++
	fr, err := p.newFrameLocked(id)
	if err != nil {
		return nil, err
	}
	if err := p.f.ReadPage(id, fr.data[:]); err != nil {
		p.dropLocked(fr)
		return nil, err
	}
	want := binary.LittleEndian.Uint32(fr.data[:4])
	if got := crc32.Checksum(fr.data[4:], crcTable); got != want {
		p.dropLocked(fr)
		return nil, fmt.Errorf(
			"pagecache: page %d (byte offset %d): checksum mismatch (stored %08x, computed %08x)",
			id, int64(id)*pager.PageSize, want, got)
	}
	fr.pins, fr.ref = 1, true
	return &Handle{p: p, fr: fr}, nil
}

// Allocate appends a fresh zeroed page to the file and pins it dirty, so the
// checksum is computed when the page is written back.
func (p *Pool) Allocate() (*Handle, error) {
	id, err := p.f.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, err := p.newFrameLocked(id)
	if err != nil {
		return nil, err
	}
	fr.pins, fr.ref, fr.dirty = 1, true, true
	return &Handle{p: p, fr: fr}, nil
}

// newFrameLocked inserts a frame for id, evicting under budget pressure.
func (p *Pool) newFrameLocked(id pager.PageID) (*frame, error) {
	for len(p.frames) >= p.budget {
		if err := p.evictLocked(); err != nil {
			return nil, err
		}
	}
	fr := &frame{id: id}
	p.frames[id] = fr
	p.clock = append(p.clock, fr)
	return fr, nil
}

// evictLocked runs the CLOCK hand: pinned frames are skipped, referenced
// frames get a second chance, and the first cold unpinned frame is written
// back (if dirty) and recycled.
func (p *Pool) evictLocked() error {
	if len(p.clock) == 0 {
		return fmt.Errorf("pagecache: empty pool cannot evict")
	}
	// Two full sweeps: the first clears reference bits, the second must find
	// a victim unless every frame is pinned.
	for sweep := 0; sweep < 2*len(p.clock); sweep++ {
		if p.hand >= len(p.clock) {
			p.hand = 0
		}
		fr := p.clock[p.hand]
		if fr.pins > 0 {
			p.hand++
			continue
		}
		if fr.ref {
			fr.ref = false
			p.hand++
			continue
		}
		if fr.dirty {
			if err := p.writebackLocked(fr); err != nil {
				return err
			}
		}
		delete(p.frames, fr.id)
		p.clock = append(p.clock[:p.hand], p.clock[p.hand+1:]...)
		p.stats.Evictions++
		return nil
	}
	return fmt.Errorf("pagecache: all %d pages pinned; cannot evict", len(p.clock))
}

// dropLocked discards a frame whose fault failed (never written back).
func (p *Pool) dropLocked(fr *frame) {
	delete(p.frames, fr.id)
	for i, c := range p.clock {
		if c == fr {
			p.clock = append(p.clock[:i], p.clock[i+1:]...)
			if p.hand > i {
				p.hand--
			}
			break
		}
	}
}

// writebackLocked stamps the payload checksum and writes the page.
func (p *Pool) writebackLocked(fr *frame) error {
	binary.LittleEndian.PutUint32(fr.data[:4], crc32.Checksum(fr.data[4:], crcTable))
	if err := p.f.WritePage(fr.id, fr.data[:]); err != nil {
		return err
	}
	fr.dirty = false
	p.stats.Writebacks++
	return nil
}

// Flush writes back every dirty page without evicting anything. A durable
// checkpoint flushes, then syncs the underlying file.
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.clock {
		if fr.dirty {
			if err := p.writebackLocked(fr); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.ResidentPages = len(p.frames)
	s.BudgetBytes = int64(p.budget) * pager.PageSize
	return s
}
