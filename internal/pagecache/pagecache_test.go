package pagecache

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/pager"
	"repro/internal/rtree"
)

func newTestPool(t *testing.T, budget int64) (*Pool, *pager.File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := pager.Create(path)
	if err != nil {
		t.Fatalf("create pager: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return NewPool(f, budget), f, path
}

func TestPoolRoundTripAndStats(t *testing.T) {
	p, f, _ := newTestPool(t, MinBudget)

	// Allocate a page, write a payload, flush, drop from cache, fault back.
	h, err := p.Allocate()
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	id := h.ID()
	copy(h.Data(), []byte("hello pagecache"))
	h.MarkDirty()
	h.Release()
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	// A fresh pool must fault the page from disk and verify the checksum.
	p2 := NewPool(f, MinBudget)
	h2, err := p2.Fetch(id)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if got := string(h2.Data()[:15]); got != "hello pagecache" {
		t.Fatalf("payload = %q", got)
	}
	h2.Release()

	st := p2.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats after cold fetch = %+v", st)
	}
	if h3, err := p2.Fetch(id); err != nil {
		t.Fatalf("refetch: %v", err)
	} else {
		h3.Release()
	}
	st = p2.Stats()
	if st.Hits != 1 {
		t.Fatalf("stats after warm fetch = %+v", st)
	}
	if st.BudgetBytes != MinBudget {
		t.Fatalf("budget = %d, want %d", st.BudgetBytes, MinBudget)
	}
}

func TestPoolEvictionUnderBudget(t *testing.T) {
	p, _, _ := newTestPool(t, MinBudget) // 8 frames

	// Fill well past the budget; every page must still read back correctly.
	const pages = 40
	ids := make([]pager.PageID, pages)
	for i := 0; i < pages; i++ {
		h, err := p.Allocate()
		if err != nil {
			t.Fatalf("allocate %d: %v", i, err)
		}
		ids[i] = h.ID()
		binary.LittleEndian.PutUint64(h.Data(), uint64(i)*7919)
		h.MarkDirty()
		h.Release()
	}
	st := p.Stats()
	if st.ResidentPages > 8 {
		t.Fatalf("resident = %d, budget is 8 frames", st.ResidentPages)
	}
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("expected evictions and writebacks, got %+v", st)
	}
	for i, id := range ids {
		h, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if got := binary.LittleEndian.Uint64(h.Data()); got != uint64(i)*7919 {
			t.Fatalf("page %d payload = %d, want %d", id, got, uint64(i)*7919)
		}
		h.Release()
	}
}

func TestPoolPinnedPagesSurviveEviction(t *testing.T) {
	p, _, _ := newTestPool(t, MinBudget)

	pinned, err := p.Allocate()
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	copy(pinned.Data(), []byte("pinned"))
	pinned.MarkDirty()

	for i := 0; i < 30; i++ {
		h, err := p.Allocate()
		if err != nil {
			t.Fatalf("allocate filler: %v", err)
		}
		h.MarkDirty()
		h.Release()
	}
	if got := string(pinned.Data()[:6]); got != "pinned" {
		t.Fatalf("pinned payload = %q", got)
	}
	pinned.Release()
}

func TestFetchChecksumMismatchNamesPageAndOffset(t *testing.T) {
	p, f, path := newTestPool(t, MinBudget)

	h, err := p.Allocate()
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	id := h.ID()
	copy(h.Data(), []byte("soon to be corrupted"))
	h.MarkDirty()
	h.Release()
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	// Flip a payload byte on disk behind the pool's back.
	raw, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open raw: %v", err)
	}
	off := int64(id)*pager.PageSize + 100
	if _, err := raw.WriteAt([]byte{0xFF}, off); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	raw.Close()

	_, err = NewPool(f, MinBudget).Fetch(id)
	if err == nil {
		t.Fatal("fetch of corrupted page succeeded")
	}
	wantPage := fmt.Sprintf("page %d", id)
	wantOff := fmt.Sprintf("byte offset %d", int64(id)*pager.PageSize)
	if !strings.Contains(err.Error(), wantPage) || !strings.Contains(err.Error(), wantOff) {
		t.Fatalf("error %q does not name %q and %q", err, wantPage, wantOff)
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("error %q does not say checksum mismatch", err)
	}
}

func TestLogRoundTripIncludingMultiPageRecords(t *testing.T) {
	p, _, _ := newTestPool(t, MinBudget)

	w := NewWriter(p, 0)
	rng := rand.New(rand.NewSource(42))
	var recs [][]byte
	var refs []int64
	// Mix of tiny records and records spanning several pages.
	sizes := []int{0, 1, 17, 4000, PayloadSize, PayloadSize + 1, 3*PayloadSize + 5, 9, 12345}
	for _, n := range sizes {
		data := make([]byte, n)
		rng.Read(data)
		ref, err := w.Append(data)
		if err != nil {
			t.Fatalf("append %d bytes: %v", n, err)
		}
		recs = append(recs, data)
		refs = append(refs, ref)
	}
	size := w.Finish()
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	// Read through a tighter pool to force faulting.
	log := NewLog(p, 0, size)
	for i, ref := range refs {
		got, err := log.ReadRecord(ref)
		if err != nil {
			t.Fatalf("read record %d: %v", i, err)
		}
		if string(got) != string(recs[i]) {
			t.Fatalf("record %d mismatch (%d vs %d bytes)", i, len(got), len(recs[i]))
		}
	}

	// Out-of-bounds reference must fail loudly, not read garbage.
	if _, err := log.ReadRecord(size - 1); err == nil {
		t.Fatal("read past stream end succeeded")
	}
	if _, err := log.ReadRecord(-4); err == nil {
		t.Fatal("negative ref succeeded")
	}
}

func TestNodeCodecRoundTrip(t *testing.T) {
	rects := []geom.Rect{
		{MinX: -1.5, MinY: 0, MaxX: 2.25, MaxY: 0},
		{MinX: 3, MinY: 0, MaxX: 7, MaxY: 0},
	}
	vals := []int64{11, -9}
	for _, leaf := range []bool{true, false} {
		b := AppendNode(nil, leaf, rects, vals)
		n, err := DecodeNode(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n.Leaf != leaf || len(n.Rects) != 2 || n.Rects[1] != rects[1] {
			t.Fatalf("decoded %+v", n)
		}
		got := n.Items
		if !leaf {
			got = n.Children
		}
		if got[0] != 11 || got[1] != -9 {
			t.Fatalf("values = %v", got)
		}
	}
	if _, err := DecodeNode([]byte{1, 2}); err == nil {
		t.Fatal("short record decoded")
	}
	if _, err := DecodeNode(append([]byte{1, 1, 0, 0, 0}, make([]byte, 3)...)); err == nil {
		t.Fatal("truncated entries decoded")
	}
}

// dumpTree serializes an in-memory rtree through a Writer (children before
// parents) and returns the root ref, mirroring what the store checkpoint does.
func dumpTree(t *testing.T, tr *rtree.Tree[int], w *Writer) int64 {
	t.Helper()
	root, err := tr.Dump(func(leaf bool, rects []geom.Rect, items []int, children []int64) (int64, error) {
		vals := children
		if leaf {
			vals = make([]int64, len(items))
			for i, it := range items {
				vals[i] = int64(it)
			}
		}
		return w.Append(AppendNode(nil, leaf, rects, vals))
	})
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	return root
}

func TestPagedTreeMatchesInMemory(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(400)
		tr := rtree.NewDefault[int]()
		for i := 0; i < n; i++ {
			lo := rng.Float64()*200 - 100
			hi := lo + rng.Float64()*10
			if err := tr.Insert(geom.Rect{MinX: lo, MaxX: hi}, i); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}

		p, _, _ := newTestPool(t, MinBudget) // tiny budget: queries must fault
		w := NewWriter(p, 0)
		root := dumpTree(t, tr, w)
		size := w.Finish()
		if err := p.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		pt := NewTree(NewLog(p, 0, size), root, tr.Len())
		if pt.Len() != tr.Len() {
			t.Fatalf("len = %d, want %d", pt.Len(), tr.Len())
		}

		for qi := 0; qi < 50; qi++ {
			q := rng.Float64()*240 - 120
			wantF := tr.MinMaxDist(geom.Point{X: q})
			gotF, err := pt.MinMaxDist(geom.Point{X: q})
			if err != nil {
				t.Fatalf("paged MinMaxDist: %v", err)
			}
			if gotF != wantF {
				t.Fatalf("seed %d q=%g: paged f_min %v != %v", seed, q, gotF, wantF)
			}
			if math.IsInf(wantF, 1) {
				continue
			}
			var want []int
			tr.Search(geom.Rect{MinX: q - wantF, MaxX: q + wantF}, func(r geom.Rect, id int) bool {
				if r.Interval().MinDist(q) <= wantF {
					want = append(want, id)
				}
				return true
			})
			sort.Ints(want)
			got, err := pt.Within(q, gotF)
			if err != nil {
				t.Fatalf("paged Within: %v", err)
			}
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("seed %d q=%g: %d candidates, want %d", seed, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d q=%g: candidates diverge at %d", seed, q, i)
				}
			}
		}
	}
}

func TestPagedTreeEmpty(t *testing.T) {
	p, _, _ := newTestPool(t, MinBudget)
	pt := NewTree(NewLog(p, 0, 0), 0, 0)
	f, err := pt.MinMaxDist(geom.Point{X: 1})
	if err != nil || !math.IsInf(f, 1) {
		t.Fatalf("empty MinMaxDist = %v, %v", f, err)
	}
	ids, err := pt.Within(1, 5)
	if err != nil || ids != nil {
		t.Fatalf("empty Within = %v, %v", ids, err)
	}
}
