package dist

import (
	"math"
	"testing"

	"repro/internal/pdf"
)

// histFromFuzz decodes a histogram from raw fuzz floats: the first half
// (sorted, deduplicated, finite) become edges, the rest weights. Returns nil
// when the material cannot form a valid histogram — the fuzz target skips
// those.
func histFromFuzz(vals []float64) *pdf.Histogram {
	if len(vals) < 3 {
		return nil
	}
	nE := len(vals)/2 + 1
	edges := append([]float64(nil), vals[:nE]...)
	for _, e := range edges {
		if math.IsNaN(e) || math.IsInf(e, 0) || math.Abs(e) > 1e12 {
			return nil
		}
	}
	// Sort and strictly deduplicate.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j] < edges[j-1]; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	out := edges[:1]
	for _, e := range edges[1:] {
		if e > out[len(out)-1] {
			out = append(out, e)
		}
	}
	edges = out
	if len(edges) < 2 {
		return nil
	}
	weights := make([]float64, len(edges)-1)
	for i := range weights {
		w := vals[nE+i%(len(vals)-nE)]
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 || w > 1e12 {
			return nil
		}
		weights[i] = w
	}
	h, err := pdf.NewHistogram(edges, weights)
	if err != nil {
		return nil
	}
	return h
}

// FuzzFoldHistogram: folding any valid histogram at any finite query point
// must never panic, and every successful fold must be a valid distance pdf:
// non-negative support, unit mass, monotone cdf.
func FuzzFoldHistogram(f *testing.F) {
	f.Add(0.0, 1.0, 2.0, 0.5, 0.5, 1.5)
	f.Add(-3.0, -1.0, 4.0, 1.0, 2.0, 0.0)
	f.Add(0.0, 0.0, 1e-9, 1.0, 1.0, 5.0)
	f.Fuzz(func(t *testing.T, a, b, c, w1, w2, q float64) {
		h := histFromFuzz([]float64{a, b, c, w1, w2})
		if h == nil {
			return
		}
		if math.IsNaN(q) || math.IsInf(q, 0) {
			if _, err := FoldHistogram(h, q); err == nil {
				t.Fatalf("fold accepted non-finite q=%g", q)
			}
			return
		}
		d, err := FoldHistogram(h, q)
		if err != nil {
			return // degenerate folds are allowed to fail, not to panic
		}
		checkDistancePDF(t, d, q)

		// The arena-allocated fold must agree exactly with the heap fold.
		var arena pdf.Alloc
		d2, err := FoldHistogramIn(&arena, h, q)
		if err != nil {
			t.Fatalf("arena fold failed where heap fold succeeded: %v", err)
		}
		if len(d2.Edges()) != len(d.Edges()) {
			t.Fatalf("arena fold edge count %d != heap %d", len(d2.Edges()), len(d.Edges()))
		}
		for i, e := range d.Edges() {
			if d2.Edges()[i] != e {
				t.Fatalf("arena fold edge %d differs: %g vs %g", i, d2.Edges()[i], e)
			}
		}
		for i := 0; i < d.NumBins(); i++ {
			if d2.BinMass(i) != d.BinMass(i) {
				t.Fatalf("arena fold mass %d differs", i)
			}
		}
	})
}

// checkDistancePDF asserts the invariants of any distance pdf.
func checkDistancePDF(t *testing.T, d *pdf.Histogram, q float64) {
	t.Helper()
	sup := d.Support()
	if sup.Lo < 0 {
		t.Fatalf("fold at q=%g has negative distance support %v", q, sup)
	}
	if err := pdf.Validate(d); err != nil {
		t.Fatalf("fold at q=%g violates pdf invariants: %v", q, err)
	}
	prev := -1.0
	for _, e := range d.Edges() {
		cv := d.CDF(e)
		if cv < prev-1e-12 {
			t.Fatalf("fold at q=%g has non-monotone cdf", q)
		}
		prev = cv
	}
	if got := d.CDF(sup.Hi); math.Abs(got-1) > 1e-9 {
		t.Fatalf("fold at q=%g has total mass %g", q, got)
	}
}
