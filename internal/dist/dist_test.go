package dist_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/pdf"
	"repro/internal/refine"
	"repro/internal/subregion"
)

func TestDefaultBinsMatchesPaper(t *testing.T) {
	if dist.DefaultBins != 300 {
		t.Fatalf("DefaultBins = %d, want the paper's 300", dist.DefaultBins)
	}
}

// distanceCDF is the ground-truth distance law of a 1-D pdf:
// Pr(|X − q| <= d) = CDF(q+d) − CDF(q−d).
func distanceCDF(p pdf.PDF, q, d float64) float64 {
	if d < 0 {
		return 0
	}
	return p.CDF(q+d) - p.CDF(q-d)
}

// checkDistanceLaw compares a derived distance histogram against the
// analytic distance law of the source pdf on a fine grid.
func checkDistanceLaw(t *testing.T, name string, src pdf.PDF, q float64, got *pdf.Histogram, tol float64) {
	t.Helper()
	sup := got.Support()
	if want := src.Support().MinDist(q); math.Abs(sup.Lo-want) > 1e-12 {
		t.Errorf("%s: support.Lo = %g, want near point %g", name, sup.Lo, want)
	}
	if want := src.Support().MaxDist(q); math.Abs(sup.Hi-want) > 1e-12 {
		t.Errorf("%s: support.Hi = %g, want far point %g", name, sup.Hi, want)
	}
	if c := got.CDF(sup.Hi); math.Abs(c-1) > 1e-9 {
		t.Errorf("%s: total mass %g, want 1", name, c)
	}
	const steps = 400
	for i := 0; i <= steps; i++ {
		d := sup.Lo + sup.Length()*float64(i)/steps
		want := distanceCDF(src, q, d)
		if diff := math.Abs(got.CDF(d) - want); diff > tol {
			t.Fatalf("%s: cdf(%g) = %g, want %g (diff %g)", name, d, got.CDF(d), want, diff)
		}
	}
}

func TestFromPDFUniformExact(t *testing.T) {
	u := pdf.MustUniform(2, 10)
	for _, q := range []float64{-3, 2, 3, 6, 9.5, 10, 14} {
		d, err := dist.FromPDF(u, q)
		if err != nil {
			t.Fatalf("q=%g: %v", q, err)
		}
		// The uniform reduction is closed-form: exact to round-off.
		checkDistanceLaw(t, "uniform", u, q, d, 1e-12)
		if err := pdf.Validate(d); err != nil {
			t.Errorf("q=%g: %v", q, err)
		}
	}
}

func TestFromPDFHistogramBinExact(t *testing.T) {
	h := pdf.MustHistogram(
		[]float64{0, 1, 2.5, 4, 7},
		[]float64{0.1, 0.4, 0.2, 0.3})
	for _, q := range []float64{-1, 0, 1.7, 2.5, 3.2, 7, 9} {
		d, err := dist.FromPDF(h, q)
		if err != nil {
			t.Fatalf("q=%g: %v", q, err)
		}
		// The fold is bin-exact, so the cdf must agree to round-off.
		checkDistanceLaw(t, "histogram", h, q, d, 1e-12)
	}
}

func TestFromPDFGaussianWithinDiscretization(t *testing.T) {
	g, err := pdf.PaperGaussian(0, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{-2, 0, 3, 6, 11, 15} {
		d, err := dist.FromPDF(g, q)
		if err != nil {
			t.Fatalf("q=%g: %v", q, err)
		}
		// Discretization to DefaultBins bars bounds the cdf error by one
		// bin's mass; the Gaussian peak bin holds well under 1%.
		checkDistanceLaw(t, "gaussian", g, q, d, 0.01)
	}
}

func TestFoldHistogramMatchesFromPDF(t *testing.T) {
	h := pdf.MustHistogram([]float64{-4, -1, 0, 2, 5}, []float64{1, 2, 3, 1})
	for _, q := range []float64{-5, -1, 0.5, 6} {
		a, err := dist.FoldHistogram(h, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dist.FromPDF(h, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i <= 100; i++ {
			x := a.Support().Lo + a.Support().Length()*float64(i)/100
			if math.Abs(a.CDF(x)-b.CDF(x)) > 1e-15 {
				t.Fatalf("q=%g: FoldHistogram and FromPDF disagree at %g", q, x)
			}
		}
	}
}

func TestFromCircleMatchesDiskSampling(t *testing.T) {
	cases := []struct {
		c geom.Circle
		q geom.Point
	}{
		{geom.Circle{Center: geom.Point{X: 3, Y: 0}, Radius: 2}, geom.Point{}},
		{geom.Circle{Center: geom.Point{X: 0, Y: 0}, Radius: 5}, geom.Point{X: 1, Y: 1}}, // q inside
		{geom.Circle{Center: geom.Point{X: -4, Y: 3}, Radius: 1}, geom.Point{}},          // disjoint
		{geom.Circle{Center: geom.Point{X: 2, Y: 2}, Radius: 4}, geom.Point{X: 2, Y: 2}}, // q at center
	}
	rng := rand.New(rand.NewSource(42))
	for ci, tc := range cases {
		d, err := dist.FromCircle(tc.c, tc.q, 256)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		sup := d.Support()
		if want := tc.c.MinDist(tc.q); math.Abs(sup.Lo-want) > 1e-12 {
			t.Errorf("case %d: support.Lo = %g, want %g", ci, sup.Lo, want)
		}
		if want := tc.c.MaxDist(tc.q); math.Abs(sup.Hi-want) > 1e-12 {
			t.Errorf("case %d: support.Hi = %g, want %g", ci, sup.Hi, want)
		}
		if c := d.CDF(sup.Hi); math.Abs(c-1) > 1e-9 {
			t.Errorf("case %d: total mass %g", ci, c)
		}
		// Empirical distance cdf from uniform disk samples.
		const samples = 200000
		var dists []float64
		for s := 0; s < samples; s++ {
			for {
				x := tc.c.Center.X - tc.c.Radius + 2*tc.c.Radius*rng.Float64()
				y := tc.c.Center.Y - tc.c.Radius + 2*tc.c.Radius*rng.Float64()
				p := geom.Point{X: x, Y: y}
				if tc.c.Center.Dist(p) <= tc.c.Radius {
					dists = append(dists, p.Dist(tc.q))
					break
				}
			}
		}
		for i := 1; i < 20; i++ {
			r := sup.Lo + sup.Length()*float64(i)/20
			emp := 0.0
			for _, v := range dists {
				if v <= r {
					emp++
				}
			}
			emp /= samples
			if diff := math.Abs(emp - d.CDF(r)); diff > 0.005 {
				t.Errorf("case %d: cdf(%g) = %g, disk sampling says %g", ci, r, d.CDF(r), emp)
			}
		}
	}
}

// TestPipelineAgreesWithMonteCarlo is the cross-validation the verifiers
// rest on: qualification probabilities computed exactly from dist-derived
// tables must match the Monte-Carlo evaluator in internal/refine, for mixed
// uniform / truncated-Gaussian / histogram candidate sets.
func TestPipelineAgreesWithMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		q := rng.Float64() * 40
		var cands []subregion.Candidate
		fMin := math.Inf(1)
		var nears []float64
		nObj := 3 + rng.Intn(5)
		for i := 0; i < nObj; i++ {
			lo := q - 12 + rng.Float64()*24
			width := 1 + rng.Float64()*8
			var p pdf.PDF
			switch i % 3 {
			case 0:
				p = pdf.MustUniform(lo, lo+width)
			case 1:
				g, err := pdf.PaperGaussian(lo, lo+width)
				if err != nil {
					t.Fatal(err)
				}
				p = g
			default:
				p = pdf.MustHistogram(
					[]float64{lo, lo + width/4, lo + width},
					[]float64{0.2 + rng.Float64(), 0.2 + rng.Float64()})
			}
			d, err := dist.FromPDF(p, q)
			if err != nil {
				t.Fatal(err)
			}
			nears = append(nears, d.Support().Lo)
			fMin = math.Min(fMin, d.Support().Hi)
			cands = append(cands, subregion.Candidate{ID: i, Dist: d})
		}
		kept := cands[:0]
		for i, c := range cands {
			if nears[i] <= fMin {
				kept = append(kept, c)
			}
		}
		tb, err := subregion.Build(kept)
		if err != nil {
			t.Fatal(err)
		}
		// Build sorts by near point; align the MC candidates to table order.
		ordered := make([]subregion.Candidate, tb.NumCandidates())
		for i := range ordered {
			ordered[i] = subregion.Candidate{ID: tb.IDs()[i], Dist: tb.Dist(i)}
		}
		mc, err := refine.MonteCarlo(ordered, 200000, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ordered {
			exact, err := refine.Exact(tb, i, 0)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(exact - mc[i]); diff > 0.006 {
				t.Errorf("trial %d candidate %d: exact %g vs MC %g", trial, i, exact, mc[i])
			}
		}
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := dist.FromPDF(nil, 0); err == nil {
		t.Error("nil pdf accepted")
	}
	if _, err := dist.FromPDF(pdf.MustUniform(0, 1), math.NaN()); err == nil {
		t.Error("NaN query point accepted")
	}
	if _, err := dist.FoldHistogram(nil, 0); err == nil {
		t.Error("nil histogram accepted")
	}
	if _, err := dist.FoldHistogram(pdf.MustHistogram([]float64{0, 1}, []float64{1}), math.Inf(1)); err == nil {
		t.Error("infinite query point accepted")
	}
	if _, err := dist.FromCircle(geom.Circle{Radius: 0}, geom.Point{}, 10); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := dist.FromCircle(geom.Circle{Radius: 1}, geom.Point{}, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := dist.FromCircle(geom.Circle{Center: geom.Point{X: math.NaN()}, Radius: 1}, geom.Point{}, 10); err == nil {
		t.Error("NaN center accepted")
	}
}
