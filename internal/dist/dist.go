// Package dist derives distance distributions — the reduction at the heart
// of the C-PNN pipeline (paper §IV-A). Every uncertain object, whatever the
// shape of its uncertainty region, is collapsed to the pdf of its *distance*
// from the query point before subregion decomposition and verification; from
// that point on the verifiers and refiners only ever see one-dimensional
// distance histograms.
//
// Three reductions cover the paper's models:
//
//   - FromPDF folds a one-dimensional attribute pdf p(x) into the pdf of
//     |X − q|. For pdf.Uniform the fold is exact (the distance pdf of a
//     uniform is itself piecewise constant); histograms fold bin-exactly via
//     FoldHistogram; other analytic pdfs are discretized to DefaultBins bars
//     first, as the paper does for its Gaussian workload.
//   - FoldHistogram folds an existing histogram support around q, merging
//     the two arms x < q and x > q without any resampling loss: the result's
//     bin edges are the folded images of the source edges, so every result
//     bin maps to at most one source bin per arm and masses transfer
//     exactly.
//   - FromCircle reduces a disk-shaped planar uncertainty region with a
//     uniform pdf (the TKDE'04 model of the paper's §IV-A extension note) to
//     a distance histogram via lens areas: Pr(dist ≤ r) is the area of the
//     disk within radius r of q over the disk's area.
//
// All three return *pdf.Histogram — the canonical representation consumed by
// internal/subregion, internal/verify and internal/refine.
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/pdf"
)

// DefaultBins is the histogram resolution used when an analytic pdf must be
// discretized before folding. The paper approximates Gaussian uncertainty
// with 300-bar histograms (§V.5).
const DefaultBins = 300

// ErrNilPDF is returned when a nil pdf or histogram is folded.
var ErrNilPDF = errors.New("dist: nil pdf")

// FromPDF returns the pdf of |X − q| for X distributed according to p. The
// reduction is exact for pdf.Uniform and *pdf.Histogram inputs; any other
// pdf is discretized to DefaultBins bars first (use pdf.Discretize plus
// FoldHistogram directly to control the resolution).
func FromPDF(p pdf.PDF, q float64) (*pdf.Histogram, error) {
	return FromPDFIn(nil, p, q)
}

// FromPDFIn is FromPDF with the result (and fold temporaries) drawn from the
// arena; a nil arena falls back to the heap. The batch query path resets one
// arena per query instead of allocating ~|C| histograms each time.
func FromPDFIn(a *pdf.Alloc, p pdf.PDF, q float64) (*pdf.Histogram, error) {
	if p == nil {
		return nil, ErrNilPDF
	}
	if !isFinite(q) {
		return nil, fmt.Errorf("dist: non-finite query point %g", q)
	}
	switch v := p.(type) {
	case pdf.Uniform:
		return fromUniform(a, v, q)
	case *pdf.Histogram:
		return FoldHistogramIn(a, v, q)
	default:
		h, err := pdf.Discretize(p, DefaultBins)
		if err != nil {
			return nil, fmt.Errorf("dist: discretizing pdf: %w", err)
		}
		return FoldHistogramIn(a, h, q)
	}
}

// fromUniform is the closed-form distance pdf of a uniform attribute. With
// support [lo, hi] of length L and q inside it, the distance density is 2/L
// on [0, a] (both arms contribute) and 1/L on (a, b], where a and b are the
// nearer and farther region endpoints' distances; with q outside, the
// distance is simply uniform over [near, far].
func fromUniform(al *pdf.Alloc, u pdf.Uniform, q float64) (*pdf.Histogram, error) {
	iv := u.Support()
	if q <= iv.Lo || q >= iv.Hi {
		near, far := iv.MinDist(q), iv.MaxDist(q)
		return al.NewHistogram([]float64{near, far}, []float64{1})
	}
	a := math.Min(q-iv.Lo, iv.Hi-q)
	b := math.Max(q-iv.Lo, iv.Hi-q)
	if a == b {
		// q is the exact center: one doubled-density bin covers everything.
		return al.NewHistogram([]float64{0, a}, []float64{1})
	}
	return al.NewHistogram([]float64{0, a, b}, []float64{2 * a, b - a})
}

// FoldHistogram returns the pdf of |X − q| for X distributed according to
// the histogram h. The fold is bin-exact: the output's edges are the sorted,
// deduplicated distances of the input's edges (plus zero when q lies inside
// the support), so between two consecutive output edges neither arm of the
// fold crosses an input bin boundary and each output bin receives exactly
// the source mass of its two preimage intervals.
func FoldHistogram(h *pdf.Histogram, q float64) (*pdf.Histogram, error) {
	return FoldHistogramIn(nil, h, q)
}

// FoldHistogramIn is FoldHistogram allocating through the arena; see
// FromPDFIn.
func FoldHistogramIn(a *pdf.Alloc, h *pdf.Histogram, q float64) (*pdf.Histogram, error) {
	if h == nil {
		return nil, ErrNilPDF
	}
	if !isFinite(q) {
		return nil, fmt.Errorf("dist: non-finite query point %g", q)
	}
	src := h.Edges()
	pts := a.Floats(len(src) + 1)[:0]
	if h.Support().Contains(q) {
		pts = append(pts, 0)
	}
	for _, e := range src {
		pts = append(pts, math.Abs(e-q))
	}
	sort.Float64s(pts)
	edges := pts[:1]
	for _, v := range pts[1:] {
		if v > edges[len(edges)-1] {
			edges = append(edges, v)
		}
	}
	if len(edges) < 2 {
		return nil, fmt.Errorf("dist: histogram folds to a point at q=%g", q)
	}
	weights := a.Floats(len(edges) - 1)
	for i := range weights {
		d0, d1 := edges[i], edges[i+1]
		// Right arm [q+d0, q+d1] plus mirrored left arm [q−d1, q−d0]; the
		// cdf clamps outside the support, so arms that miss it add zero.
		m := (h.CDF(q+d1) - h.CDF(q+d0)) + (h.CDF(q-d0) - h.CDF(q-d1))
		if m < 0 {
			m = 0 // rounding guard; each arm's mass is non-negative analytically
		}
		weights[i] = m
	}
	out, err := a.NewHistogram(edges, weights)
	if err != nil {
		return nil, fmt.Errorf("dist: folding histogram at q=%g: %w", q, err)
	}
	return out, nil
}

// FromCircle reduces a disk-shaped uncertainty region with a uniform pdf to
// the distance histogram of its distance from the planar query point q — the
// paper's §IV-A disk-to-distance reduction. The distance cdf is the lens
// area of the disk and the radius-r circle around q over the disk's area,
// sampled at bins+1 evenly spaced radii between the near and far points.
func FromCircle(c geom.Circle, q geom.Point, bins int) (*pdf.Histogram, error) {
	return FromCircleIn(nil, c, q, bins)
}

// FromCircleIn is FromCircle allocating through the arena; see FromPDFIn.
func FromCircleIn(a *pdf.Alloc, c geom.Circle, q geom.Point, bins int) (*pdf.Histogram, error) {
	if !(c.Radius > 0) {
		return nil, fmt.Errorf("dist: non-positive circle radius %g", c.Radius)
	}
	if !isFinite(q.X) || !isFinite(q.Y) || !isFinite(c.Center.X) || !isFinite(c.Center.Y) {
		return nil, fmt.Errorf("dist: non-finite circle reduction geometry (center %v, q %v)", c.Center, q)
	}
	if bins < 1 {
		return nil, fmt.Errorf("dist: cannot reduce circle into %d bins", bins)
	}
	near, far := c.MinDist(q), c.MaxDist(q)
	area := c.Area()
	cdf := func(r float64) float64 {
		switch {
		case r <= near:
			return 0
		case r >= far:
			return 1
		default:
			return geom.LensArea(c, geom.Circle{Center: q, Radius: r}) / area
		}
	}
	edges := a.Floats(bins + 1)
	weights := a.Floats(bins)
	step := (far - near) / float64(bins)
	edges[0] = near
	prev := 0.0
	for i := 1; i <= bins; i++ {
		edges[i] = near + float64(i)*step
		cur := cdf(edges[i])
		w := cur - prev
		if w < 0 {
			w = 0 // lens-area round-off guard; the cdf is monotone analytically
		}
		weights[i-1] = w
		prev = cur
	}
	edges[bins] = far // avoid accumulated rounding on the last edge
	out, err := a.NewHistogram(edges, weights)
	if err != nil {
		return nil, fmt.Errorf("dist: reducing circle at q=%v: %w", q, err)
	}
	return out, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
