package dist_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/pdf"
)

// The hot filter→dist→subregion path derives one distance histogram per
// candidate per query; these benchmarks track its three reductions so
// regressions show up before they reach the figure reproductions.

func BenchmarkFromPDFUniform(b *testing.B) {
	u := pdf.MustUniform(10, 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FromPDF(u, 17); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromPDFGaussian(b *testing.B) {
	g, err := pdf.PaperGaussian(10, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Includes the DefaultBins discretization — the cost the engine's
		// memoized derivation stage amortizes across queries.
		if _, err := dist.FromPDF(g, 17); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFoldHistogram(b *testing.B) {
	g, err := pdf.PaperGaussian(10, 30)
	if err != nil {
		b.Fatal(err)
	}
	h, err := pdf.Discretize(g, dist.DefaultBins)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FoldHistogram(h, 17); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromCircle(b *testing.B) {
	c := geom.Circle{Center: geom.Point{X: 3, Y: 4}, Radius: 2}
	q := geom.Point{X: 1, Y: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FromCircle(c, q, dist.DefaultBins); err != nil {
			b.Fatal(err)
		}
	}
}
