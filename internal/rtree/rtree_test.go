package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func pointRect(x, y float64) geom.Rect {
	return geom.Rect{MinX: x, MinY: y, MaxX: x, MaxY: y}
}

func randomRect(rng *rand.Rand, span float64) geom.Rect {
	x := rng.Float64() * span
	y := rng.Float64() * span
	return geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*span/20, MaxY: y + rng.Float64()*span/20}
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int](2, 3); err == nil {
		t.Error("maxEntries 3 accepted")
	}
	if _, err := New[int](1, 8); err == nil {
		t.Error("minEntries 1 accepted")
	}
	if _, err := New[int](5, 8); err == nil {
		t.Error("minEntries > max/2 accepted")
	}
	if _, err := New[int](4, 8); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestInsertAndSearch(t *testing.T) {
	tr := NewDefault[int]()
	rng := rand.New(rand.NewSource(1))
	rects := make([]geom.Rect, 500)
	for i := range rects {
		rects[i] = randomRect(rng, 100)
		if err := tr.Insert(rects[i], i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Compare window query results with a linear scan.
	for trial := 0; trial < 50; trial++ {
		w := randomRect(rng, 100)
		w.MaxX = w.MinX + rng.Float64()*30
		w.MaxY = w.MinY + rng.Float64()*30
		want := map[int]bool{}
		for i, r := range rects {
			if r.Intersects(w) {
				want[i] = true
			}
		}
		got := map[int]bool{}
		tr.Search(w, func(_ geom.Rect, id int) bool {
			got[id] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
	}
}

func TestInsertInvalidRect(t *testing.T) {
	tr := NewDefault[int]()
	if err := tr.Insert(geom.Rect{MinX: 2, MaxX: 1}, 0); err == nil {
		t.Error("inverted rect accepted")
	}
	if err := tr.Insert(geom.Rect{MinX: math.NaN()}, 0); err == nil {
		t.Error("NaN rect accepted")
	}
	if tr.Len() != 0 {
		t.Error("failed insert changed size")
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := NewDefault[int]()
	for i := 0; i < 100; i++ {
		if err := tr.Insert(pointRect(float64(i), 0), i); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	tr.Search(geom.Rect{MinX: -1, MinY: -1, MaxX: 200, MaxY: 1}, func(_ geom.Rect, _ int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d, want 5", count)
	}
}

func TestNearestBy(t *testing.T) {
	tr := NewDefault[int]()
	// Points on a line at x = 0..99.
	for i := 0; i < 100; i++ {
		if err := tr.Insert(pointRect(float64(i), 0), i); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Point{X: 42.4, Y: 0}
	got := tr.NearestBy(q, 5)
	if len(got) != 5 {
		t.Fatalf("got %d neighbors", len(got))
	}
	wantIDs := []int{42, 43, 41, 44, 40}
	for i, nb := range got {
		if nb.Item != wantIDs[i] {
			t.Errorf("neighbor %d = %d, want %d", i, nb.Item, wantIDs[i])
		}
	}
	// Distances are ascending.
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Error("distances not ascending")
		}
	}
}

func TestNearestByAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := NewDefault[int]()
	rects := make([]geom.Rect, 300)
	for i := range rects {
		rects[i] = randomRect(rng, 1000)
		if err := tr.Insert(rects[i], i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		q := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		got := tr.NearestBy(q, 10)
		dists := make([]float64, len(rects))
		for i, r := range rects {
			dists[i] = r.MinDist(q)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("trial %d: neighbor %d dist %g, want %g", trial, i, nb.Dist, dists[i])
			}
		}
	}
}

func TestMinMaxDistMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		tr := NewDefault[int]()
		n := 50 + rng.Intn(200)
		rects := make([]geom.Rect, n)
		for i := range rects {
			rects[i] = randomRect(rng, 500)
			if err := tr.Insert(rects[i], i); err != nil {
				t.Fatal(err)
			}
		}
		q := geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		want := math.Inf(1)
		for _, r := range rects {
			want = math.Min(want, r.MaxDist(q))
		}
		if got := tr.MinMaxDist(q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: MinMaxDist = %g, want %g", trial, got, want)
		}
	}
}

func TestMinMaxDistEmpty(t *testing.T) {
	tr := NewDefault[int]()
	if got := tr.MinMaxDist(geom.Point{}); !math.IsInf(got, 1) {
		t.Errorf("empty tree MinMaxDist = %g, want +Inf", got)
	}
	if got := tr.NearestBy(geom.Point{}, 3); got != nil {
		t.Errorf("empty tree NearestBy = %v, want nil", got)
	}
}

func TestDelete(t *testing.T) {
	tr := NewDefault[int]()
	rng := rand.New(rand.NewSource(5))
	rects := make([]geom.Rect, 400)
	for i := range rects {
		rects[i] = randomRect(rng, 100)
		if err := tr.Insert(rects[i], i); err != nil {
			t.Fatal(err)
		}
	}
	// Delete half, in random order.
	perm := rng.Perm(400)
	for _, i := range perm[:200] {
		if !tr.Delete(rects[i], func(id int) bool { return id == i }) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d, want 200", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleted items are gone; survivors remain findable.
	for _, i := range perm[:200] {
		found := false
		tr.Search(rects[i], func(_ geom.Rect, id int) bool {
			if id == i {
				found = true
				return false
			}
			return true
		})
		if found {
			t.Fatalf("deleted item %d still present", i)
		}
	}
	for _, i := range perm[200:] {
		found := false
		tr.Search(rects[i], func(_ geom.Rect, id int) bool {
			if id == i {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("surviving item %d lost", i)
		}
	}
	// Deleting a non-existent item reports false.
	if tr.Delete(pointRect(-999, -999), func(int) bool { return true }) {
		t.Error("phantom delete succeeded")
	}
}

func TestDeleteAll(t *testing.T) {
	tr := NewDefault[int]()
	rects := make([]geom.Rect, 100)
	rng := rand.New(rand.NewSource(17))
	for i := range rects {
		rects[i] = randomRect(rng, 50)
		if err := tr.Insert(rects[i], i); err != nil {
			t.Fatal(err)
		}
	}
	for i := range rects {
		if !tr.Delete(rects[i], func(id int) bool { return id == i }) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	// Tree is reusable afterwards.
	if err := tr.Insert(pointRect(1, 1), 7); err != nil {
		t.Fatal(err)
	}
	if got := tr.NearestBy(geom.Point{X: 1, Y: 1}, 1); len(got) != 1 || got[0].Item != 7 {
		t.Error("tree unusable after full deletion")
	}
}

func TestBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 16, 17, 100, 2000} {
		inputs := make([]Input[int], n)
		for i := range inputs {
			inputs[i] = Input[int]{Rect: randomRect(rng, 1000), Item: i}
		}
		tr, err := BulkLoad(inputs, 4, 16)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		// Every item must be findable.
		seen := map[int]bool{}
		tr.All(func(_ geom.Rect, id int) bool {
			seen[id] = true
			return true
		})
		if len(seen) != n {
			t.Fatalf("n=%d: All visited %d items", n, len(seen))
		}
		// MBR containment must hold even though STR nodes may be underfull
		// at boundaries; verify via search correctness instead.
		for trial := 0; trial < 10 && n > 0; trial++ {
			q := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			want := math.Inf(1)
			for _, in := range inputs {
				want = math.Min(want, in.Rect.MaxDist(q))
			}
			if got := tr.MinMaxDist(q); math.Abs(got-want) > 1e-9 {
				t.Fatalf("n=%d: bulk MinMaxDist = %g, want %g", n, got, want)
			}
		}
	}
}

func TestBulkLoadInvalid(t *testing.T) {
	if _, err := BulkLoad([]Input[int]{{Rect: geom.Rect{MinX: 1, MaxX: 0}}}, 4, 16); err == nil {
		t.Error("invalid rect accepted in bulk load")
	}
}

func TestScanNearestStreamOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inputs := make([]Input[int], 500)
	for i := range inputs {
		inputs[i] = Input[int]{Rect: randomRect(rng, 100), Item: i}
	}
	tr, err := BulkLoad(inputs, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 50, Y: 50}
	prev := math.Inf(-1)
	count := 0
	tr.ScanNearest(q, func(nb Neighbor[int]) bool {
		if nb.Dist < prev-1e-12 {
			t.Fatalf("stream out of order: %g after %g", nb.Dist, prev)
		}
		prev = nb.Dist
		count++
		return true
	})
	if count != 500 {
		t.Fatalf("stream visited %d items", count)
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := NewDefault[int]()
	if tr.Height() != 1 {
		t.Errorf("empty height = %d", tr.Height())
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(randomRect(rng, 100), i); err != nil {
			t.Fatal(err)
		}
	}
	if h := tr.Height(); h < 2 || h > 6 {
		t.Errorf("height = %d after 1000 inserts (fan-out 16)", h)
	}
}

// TestInsertDeleteProperty hammers random insert/delete sequences and checks
// size accounting and invariants throughout.
func TestInsertDeleteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewDefault[int]()
		type live struct {
			rect geom.Rect
			id   int
		}
		var items []live
		nextID := 0
		for op := 0; op < 300; op++ {
			if len(items) == 0 || rng.Float64() < 0.6 {
				r := randomRect(rng, 50)
				if err := tr.Insert(r, nextID); err != nil {
					return false
				}
				items = append(items, live{r, nextID})
				nextID++
			} else {
				k := rng.Intn(len(items))
				it := items[k]
				if !tr.Delete(it.rect, func(id int) bool { return id == it.id }) {
					return false
				}
				items = append(items[:k], items[k+1:]...)
			}
			if tr.Len() != len(items) {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOneDimensionalEmbedding(t *testing.T) {
	// The engine stores 1-D intervals as flat rects; verify distances and
	// f_min agree with direct interval math.
	tr := NewDefault[int]()
	ivs := []geom.Interval{{Lo: 0, Hi: 4}, {Lo: 10, Hi: 12}, {Lo: 3, Hi: 20}, {Lo: 30, Hi: 31}}
	for i, iv := range ivs {
		if err := tr.Insert(geom.RectFromInterval(iv), i); err != nil {
			t.Fatal(err)
		}
	}
	q := 11.0
	want := math.Inf(1)
	for _, iv := range ivs {
		want = math.Min(want, iv.MaxDist(q))
	}
	got := tr.MinMaxDist(geom.Point{X: q, Y: 0})
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("1-D f_min = %g, want %g", got, want)
	}
}

// TestDegenerateRectTreeQuality pins the insertion heuristics' behavior on
// zero-area rects. 1-D intervals embed with zero height, so a pure-area
// metric makes every enlargement zero and the tree degenerates into nodes
// that all overlap each other — a containment descent (what Delete runs)
// then visits a constant fraction of the tree and commit cost scales with
// the dataset instead of the batch. The area+margin measure keeps the tree
// discriminating; this asserts the descent stays narrow on a tree built
// purely by incremental inserts.
func TestDegenerateRectTreeQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	tr := NewDefault[int]()
	rects := make([]geom.Rect, n)
	for i := range rects {
		lo := rng.Float64() * 100000
		rects[i] = geom.RectFromInterval(geom.Interval{Lo: lo, Hi: lo + 1 + rng.Float64()*20})
		if err := tr.Insert(rects[i], i); err != nil {
			t.Fatal(err)
		}
	}
	var visits func(nd *node[int], rect geom.Rect) int
	visits = func(nd *node[int], rect geom.Rect) int {
		c := 1
		if nd.leaf {
			return c
		}
		for i := range nd.entries {
			if nd.entries[i].rect.Contains(rect) {
				c += visits(nd.entries[i].child, rect)
			}
		}
		return c
	}
	total := 0
	const probes = 500
	for i := 0; i < probes; i++ {
		total += visits(tr.root, rects[rng.Intn(n)])
	}
	// A healthy tree visits O(height * small-overlap-factor) nodes; the
	// degenerate one visited ~10% of all ~21k nodes per descent.
	if avg := total / probes; avg > 8*tr.Height() {
		t.Fatalf("containment descent visits %d nodes on average (height %d): insertion heuristics degenerated", avg, tr.Height())
	}
}
