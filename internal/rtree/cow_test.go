package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestCloneChainMVCC drives the store's actual usage pattern: a chain of
// clones where each generation mutates its own copy while every earlier
// generation stays frozen, and traversal results of a clone are identical to
// what a deep copy would produce.
func TestCloneChainMVCC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cur := NewDefault[int]()
	live := map[int]geom.Rect{}
	next := 0
	for i := 0; i < 200; i++ {
		r := randomRect(rng, 100)
		if err := cur.Insert(r, next); err != nil {
			t.Fatal(err)
		}
		live[next] = r
		next++
	}

	type gen struct {
		tree  *Tree[int]
		items []int
	}
	var gens []gen
	for g := 0; g < 20; g++ {
		gens = append(gens, gen{tree: cur, items: collectItems(cur)})
		clone := cur.Clone()
		// Small delta per generation, like a committed batch.
		for d := 0; d < 10; d++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				var id int
				for id = range live {
					break
				}
				if !clone.Delete(live[id], func(x int) bool { return x == id }) {
					t.Fatalf("gen %d: delete %d failed", g, id)
				}
				delete(live, id)
			} else {
				r := randomRect(rng, 100)
				if err := clone.Insert(r, next); err != nil {
					t.Fatal(err)
				}
				live[next] = r
				next++
			}
		}
		if err := clone.CheckInvariants(); err != nil {
			t.Fatalf("gen %d: %v", g, err)
		}
		cur = clone
	}

	// Every frozen generation must still hold exactly its original item set.
	for g, fr := range gens {
		got := collectItems(fr.tree)
		if len(got) != len(fr.items) {
			t.Fatalf("generation %d drifted: %d items, want %d", g, len(got), len(fr.items))
		}
		for i := range got {
			if got[i] != fr.items[i] {
				t.Fatalf("generation %d item set changed at %d", g, i)
			}
		}
	}
}

// TestDumpRebuildRoundTrip checks that Dump -> Rebuild reproduces the tree
// structurally: identical item sets, identical f_min bounds and identical
// search enumeration order (the property the paged checkpoint relies on for
// byte-identical candidate sets).
func TestDumpRebuildRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		tr := NewDefault[int]()
		for i := 0; i < n; i++ {
			if err := tr.Insert(randomRect(rng, 200), i); err != nil {
				t.Fatal(err)
			}
		}

		// In-memory emit: store nodes in a slice, refs are indices.
		type rec struct {
			leaf     bool
			rects    []geom.Rect
			items    []int
			children []int64
		}
		var recs []rec
		root, err := tr.Dump(func(leaf bool, rects []geom.Rect, items []int, children []int64) (int64, error) {
			recs = append(recs, rec{leaf, rects, items, children})
			return int64(len(recs) - 1), nil
		})
		if err != nil {
			t.Fatalf("n=%d dump: %v", n, err)
		}

		got, err := Rebuild(root, tr.Len(), DefaultMinEntries, DefaultMaxEntries,
			func(ref int64) (bool, []geom.Rect, []int, []int64, error) {
				r := recs[ref]
				return r.leaf, r.rects, r.items, r.children, nil
			})
		if err != nil {
			t.Fatalf("n=%d rebuild: %v", n, err)
		}
		if got.Len() != tr.Len() {
			t.Fatalf("n=%d: rebuilt len %d", n, got.Len())
		}
		if n > 0 {
			if err := got.CheckInvariants(); err != nil {
				t.Fatalf("n=%d rebuilt: %v", n, err)
			}
		}

		// Enumeration order must match exactly, not just the sets.
		var a, b []int
		tr.All(func(_ geom.Rect, id int) bool { a = append(a, id); return true })
		got.All(func(_ geom.Rect, id int) bool { b = append(b, id); return true })
		if len(a) != len(b) {
			t.Fatalf("n=%d: %d vs %d items", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: enumeration diverges at %d", n, i)
			}
		}
		for q := 0; q < 20; q++ {
			p := geom.Point{X: rng.Float64()*400 - 200}
			if tr.MinMaxDist(p) != got.MinMaxDist(p) {
				t.Fatalf("n=%d: f_min differs at %+v", n, p)
			}
		}
	}
}
