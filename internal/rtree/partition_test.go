package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func partitionRects(rng *rand.Rand, n int, spread float64) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		lo := (rng.Float64() - 0.5) * spread
		rects[i] = geom.Rect{MinX: lo, MaxX: lo + rng.Float64()*spread/100}
	}
	return rects
}

// checkPartition asserts the PartitionSTR contract: the groups are a
// disjoint cover of the input, the cuts are finite and ascending, and
// cut-based routing (SearchFloat64s over center X — shard.ShardFor's exact
// rule) agrees with the group assignment for every rectangle.
func checkPartition(t *testing.T, rects []geom.Rect, k int) [][]int {
	t.Helper()
	groups, cuts := PartitionSTR(rects, k)
	if len(groups) != k {
		t.Fatalf("got %d groups, want %d", len(groups), k)
	}
	if len(cuts) != k-1 {
		t.Fatalf("got %d cuts, want %d", len(cuts), k-1)
	}
	for i, c := range cuts {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("cut[%d] = %g not finite", i, c)
		}
		if i > 0 && c < cuts[i-1] {
			t.Fatalf("cuts out of order: cut[%d]=%g < cut[%d]=%g", i, c, i-1, cuts[i-1])
		}
	}
	seen := make([]int, len(rects))
	for g, grp := range groups {
		for _, i := range grp {
			if i < 0 || i >= len(rects) {
				t.Fatalf("group %d holds out-of-range index %d", g, i)
			}
			seen[i]++
			cx := rects[i].Center().X
			routed := sort.SearchFloat64s(cuts, cx)
			if routed != g {
				t.Fatalf("rect %d (center %g) in group %d but routes to %d (cuts %v)",
					i, cx, g, routed, cuts)
			}
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("rect %d appears in %d groups", i, n)
		}
	}
	return groups
}

func TestPartitionSTR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 500} {
			rects := partitionRects(rng, n, 1000)
			groups := checkPartition(t, rects, k)
			// STR balance: group sizes within one of each other (modulo
			// center-tie coalescing, absent in this float-random input).
			if n >= k {
				for g, grp := range groups {
					lo, hi := n/k, (n+k-1)/k
					if len(grp) < lo-1 || len(grp) > hi+1 {
						t.Fatalf("n=%d k=%d: group %d holds %d rects, want ~%d", n, k, g, len(grp), n/k)
					}
				}
			}
		}
	}
}

func TestPartitionSTRTies(t *testing.T) {
	// All centers equal: every rect must land in one group (a tie split
	// across a cut would break cut-based routing).
	rects := make([]geom.Rect, 10)
	for i := range rects {
		rects[i] = geom.Rect{MinX: 5, MaxX: 5}
	}
	groups := checkPartition(t, rects, 4)
	nonEmpty := 0
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("equal centers split across %d groups", nonEmpty)
	}
}

// FuzzSplitSTR fuzzes the partition contract over arbitrary sizes, shard
// counts and coordinate magnitudes: disjoint cover, sorted finite cuts, and
// routing/group agreement (the invariant shard cluster creation rests on).
func FuzzSplitSTR(f *testing.F) {
	f.Add(int64(1), uint16(40), uint8(4), 1000.0)
	f.Add(int64(2), uint16(0), uint8(1), 10.0)
	f.Add(int64(3), uint16(3), uint8(8), 1e300)
	f.Add(int64(4), uint16(100), uint8(16), 1e-300)

	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, kRaw uint8, spread float64) {
		if math.IsNaN(spread) || math.IsInf(spread, 0) {
			t.Skip()
		}
		n := int(nRaw) % 513
		k := int(kRaw)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		rects := partitionRects(rng, n, math.Abs(spread))
		// Ties are the delicate path: duplicate a random prefix's centers.
		for i := 1; i < n; i += 3 {
			if rng.Intn(2) == 0 {
				rects[i] = rects[i-1]
			}
		}
		checkPartition(t, rects, k)
	})
}
