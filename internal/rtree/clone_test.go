package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// collectItems returns the sorted item set of a tree.
func collectItems(t *Tree[int]) []int {
	var out []int
	t.All(func(_ geom.Rect, id int) bool {
		out = append(out, id)
		return true
	})
	sort.Ints(out)
	return out
}

func TestCloneIsDeepAndIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := NewDefault[int]()
	rects := make([]geom.Rect, 500)
	for i := range rects {
		rects[i] = randomRect(rng, 100)
		if err := orig.Insert(rects[i], i); err != nil {
			t.Fatal(err)
		}
	}
	clone := orig.Clone()
	if clone.Len() != orig.Len() {
		t.Fatalf("clone size %d, want %d", clone.Len(), orig.Len())
	}
	if err := clone.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Mutate the clone heavily: the original must not move.
	before := collectItems(orig)
	for i := 0; i < 250; i++ {
		if !clone.Delete(rects[i], func(id int) bool { return id == i }) {
			t.Fatalf("clone delete %d failed", i)
		}
	}
	for i := 500; i < 600; i++ {
		if err := clone.Insert(randomRect(rng, 100), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := clone.CheckInvariants(); err != nil {
		t.Fatalf("clone after churn: %v", err)
	}
	after := collectItems(orig)
	if len(before) != len(after) {
		t.Fatalf("original changed size: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("original item set changed at %d", i)
		}
	}
	if err := orig.CheckInvariants(); err != nil {
		t.Fatalf("original after clone churn: %v", err)
	}

	// And the other direction: mutating the original leaves the clone alone.
	cloneBefore := collectItems(clone)
	for i := 300; i < 400; i++ {
		orig.Delete(rects[i], func(id int) bool { return id == i })
	}
	cloneAfter := collectItems(clone)
	if len(cloneBefore) != len(cloneAfter) {
		t.Fatal("clone changed when original mutated")
	}
}

func TestCloneEmptyAndBulkLoaded(t *testing.T) {
	empty := NewDefault[string]()
	c := empty.Clone()
	if c.Len() != 0 {
		t.Fatalf("empty clone has %d items", c.Len())
	}
	if err := c.Insert(pointRect(1, 1), "x"); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatal("insert into clone leaked into original")
	}

	rng := rand.New(rand.NewSource(2))
	inputs := make([]Input[int], 300)
	for i := range inputs {
		inputs[i] = Input[int]{Rect: randomRect(rng, 50), Item: i}
	}
	bulk, err := BulkLoad(inputs, DefaultMinEntries, DefaultMaxEntries)
	if err != nil {
		t.Fatal(err)
	}
	bc := bulk.Clone()
	if err := bc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	a, b := collectItems(bulk), collectItems(bc)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("bulk clone item set differs")
		}
	}
}
