// Package rtree implements an in-memory R-tree over axis-aligned rectangles,
// written from scratch on the standard library. It is the spatial substrate
// of the C-PNN filtering phase (the role played by the spatialindex library
// in the paper's experiments): the engine bulk-loads the uncertainty regions
// of a dataset and uses best-first traversal with MINDIST/MINMAXDIST bounds
// to locate f_min and collect the candidate set.
//
// The tree supports Guttman-style insertion with quadratic splits, deletion
// with reinsertion, window search, best-first nearest-neighbor scans and
// Sort-Tile-Recursive (STR) bulk loading.
package rtree

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/geom"
)

const (
	// DefaultMaxEntries is the default node fan-out.
	DefaultMaxEntries = 16
	// DefaultMinEntries is the default minimum node occupancy.
	DefaultMinEntries = 4
)

// Tree is an R-tree mapping rectangles to values of type T. The zero value
// is not usable; construct trees with New or BulkLoad.
type Tree[T any] struct {
	root       *node[T]
	size       int
	maxEntries int
	minEntries int

	// owner tags the nodes this tree may mutate in place. Nodes carrying any
	// other tag are shared with a Clone and are copied on first write (path
	// copying), which makes Clone O(1) and a commit's index maintenance O(Δ·
	// height) instead of O(n).
	owner *cowOwner

	// nnPool recycles nearest-neighbor traversal queues across ScanNearest /
	// MinMaxDist calls (both run once per filtering pass — hot enough that
	// a fresh queue per call shows up in allocation profiles). sync.Pool is
	// safe under the tree's concurrent-readers contract.
	nnPool sync.Pool
}

// cowOwner is an identity token; it must not be zero-sized, since pointers
// to distinct zero-size allocations may compare equal.
type cowOwner struct{ _ byte }

type entry[T any] struct {
	rect  geom.Rect
	child *node[T] // nil at leaf level
	item  T        // valid when child == nil
}

type node[T any] struct {
	leaf    bool
	owner   *cowOwner
	entries []entry[T]
}

// mutable returns n if this tree owns it, or a shallow copy stamped with the
// tree's tag otherwise. The caller re-links the copy into its parent.
func (t *Tree[T]) mutable(n *node[T]) *node[T] {
	if n.owner == t.owner {
		return n
	}
	return &node[T]{leaf: n.leaf, owner: t.owner, entries: append([]entry[T](nil), n.entries...)}
}

// New returns an empty tree with the given node capacities. maxEntries must
// be at least 4 and minEntries between 2 and maxEntries/2.
func New[T any](minEntries, maxEntries int) (*Tree[T], error) {
	if maxEntries < 4 {
		return nil, fmt.Errorf("rtree: maxEntries %d < 4", maxEntries)
	}
	if minEntries < 2 || minEntries > maxEntries/2 {
		return nil, fmt.Errorf("rtree: minEntries %d outside [2, %d]", minEntries, maxEntries/2)
	}
	owner := &cowOwner{}
	return &Tree[T]{
		root:       &node[T]{leaf: true, owner: owner},
		maxEntries: maxEntries,
		minEntries: minEntries,
		owner:      owner,
	}, nil
}

// NewDefault returns an empty tree with the default capacities.
func NewDefault[T any]() *Tree[T] {
	t, err := New[T](DefaultMinEntries, DefaultMaxEntries)
	if err != nil {
		panic(err) // defaults are always valid
	}
	return t
}

// Len returns the number of stored items.
func (t *Tree[T]) Len() int { return t.size }

// Clone returns a structurally independent copy of the tree: mutating either
// tree never affects the other. It is the copy-on-write primitive of the
// store's MVCC index maintenance — a committed batch clones the current index
// and applies its inserts/deletes to the copy while readers keep traversing
// the original.
//
// Clone is O(1): both trees share every node and receive fresh ownership
// tags, so the first mutation of a shared node (by either tree) copies just
// the root-to-node path. Clone itself counts as a write for the tree's
// single-writer/concurrent-readers contract.
func (t *Tree[T]) Clone() *Tree[T] {
	t.owner = &cowOwner{}
	return &Tree[T]{
		root:       t.root,
		size:       t.size,
		maxEntries: t.maxEntries,
		minEntries: t.minEntries,
		owner:      &cowOwner{},
	}
}

// Height returns the number of levels in the tree; an empty tree has height 1.
func (t *Tree[T]) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
	}
	return h
}

// Insert adds an item with the given bounding rectangle.
func (t *Tree[T]) Insert(rect geom.Rect, item T) error {
	if !rect.IsValid() {
		return fmt.Errorf("rtree: invalid rect %+v", rect)
	}
	leaf, path := t.chooseLeaf(rect)
	leaf.entries = append(leaf.entries, entry[T]{rect: rect, item: item})
	t.size++
	if len(leaf.entries) > t.maxEntries {
		t.splitAndPropagate(path)
	}
	return nil
}

// measure is the metric the insertion heuristics compare nodes by: area plus
// margin. Pure area breaks down on degenerate rectangles — every 1-D interval
// embeds with zero height (geom.RectFromInterval), so all areas and therefore
// all enlargements are zero, and the heuristics stop discriminating entirely:
// chooseLeaf falls through to its first entry on every descent and
// quadraticSplit distributes entries arbitrarily, growing a tree whose
// internal boxes all overlap each other (deletes and searches then visit a
// constant fraction of the tree). Adding the margin keeps the metric strictly
// increasing under union in any single dimension, so 1-D data orders by
// interval length and 2-D behavior is unchanged in all but exact-area ties.
func measure(r geom.Rect) float64 {
	return (r.MaxX-r.MinX)*(r.MaxY-r.MinY) + (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// enlarge returns the measure growth needed for r to absorb other.
func enlarge(r, other geom.Rect) float64 { return measure(r.Union(other)) - measure(r) }

// chooseLeaf descends from the root to the leaf whose MBR needs the least
// enlargement, copying any shared node on the way down (the descent widens
// MBRs in place, so every node on the path must be owned). It returns the
// chosen leaf and the root-to-leaf path, which splitAndPropagate walks back
// up — re-deriving the path afterwards would cost a full-tree search per
// split and make insert cost track the tree size.
func (t *Tree[T]) chooseLeaf(rect geom.Rect) (*node[T], []*node[T]) {
	t.root = t.mutable(t.root)
	n := t.root
	path := []*node[T]{n}
	for !n.leaf {
		best := 0
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i := range n.entries {
			enl := enlarge(n.entries[i].rect, rect)
			area := measure(n.entries[i].rect)
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n.entries[best].rect = n.entries[best].rect.Union(rect)
		child := t.mutable(n.entries[best].child)
		n.entries[best].child = child
		n = child
		path = append(path, n)
	}
	return n, path
}

// splitAndPropagate splits the overflowing node at the end of path (a
// root-to-node chain as returned by chooseLeaf) and walks splits upward.
func (t *Tree[T]) splitAndPropagate(path []*node[T]) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= t.maxEntries {
			break
		}
		if n == t.root {
			t.splitRoot()
			break
		}
		parent := path[i-1]
		a, b := t.quadraticSplit(n)
		// Replace n's entry in parent with the two halves.
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j] = entry[T]{rect: mbr(a), child: a}
				parent.entries = append(parent.entries, entry[T]{rect: mbr(b), child: b})
				break
			}
		}
	}
}

func (t *Tree[T]) splitRoot() {
	a, b := t.quadraticSplit(t.root)
	t.root = &node[T]{
		leaf:  false,
		owner: t.owner,
		entries: []entry[T]{
			{rect: mbr(a), child: a},
			{rect: mbr(b), child: b},
		},
	}
}

// quadraticSplit splits n's entries into two nodes using Guttman's quadratic
// seed/pick-next method and returns them.
func (t *Tree[T]) quadraticSplit(n *node[T]) (*node[T], *node[T]) {
	ents := n.entries
	// Pick the pair of seeds wasting the most area together.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			waste := measure(ents[i].rect.Union(ents[j].rect)) -
				measure(ents[i].rect) - measure(ents[j].rect)
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	a := &node[T]{leaf: n.leaf, owner: t.owner, entries: []entry[T]{ents[s1]}}
	b := &node[T]{leaf: n.leaf, owner: t.owner, entries: []entry[T]{ents[s2]}}
	ra, rb := ents[s1].rect, ents[s2].rect

	rest := make([]entry[T], 0, len(ents)-2)
	for i := range ents {
		if i != s1 && i != s2 {
			rest = append(rest, ents[i])
		}
	}
	for len(rest) > 0 {
		// If one group must take everything left to reach minimum occupancy,
		// give it everything.
		if len(a.entries)+len(rest) == t.minEntries {
			a.entries = append(a.entries, rest...)
			for _, e := range rest {
				ra = ra.Union(e.rect)
			}
			break
		}
		if len(b.entries)+len(rest) == t.minEntries {
			b.entries = append(b.entries, rest...)
			for _, e := range rest {
				rb = rb.Union(e.rect)
			}
			break
		}
		// Pick the entry with the strongest preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := enlarge(ra, e.rect)
			d2 := enlarge(rb, e.rect)
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				bestDiff, bestIdx = diff, i
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1, d2 := enlarge(ra, e.rect), enlarge(rb, e.rect)
		toA := d1 < d2 ||
			(d1 == d2 && measure(ra) < measure(rb)) ||
			(d1 == d2 && measure(ra) == measure(rb) && len(a.entries) <= len(b.entries))
		if toA {
			a.entries = append(a.entries, e)
			ra = ra.Union(e.rect)
		} else {
			b.entries = append(b.entries, e)
			rb = rb.Union(e.rect)
		}
	}
	return a, b
}

func mbr[T any](n *node[T]) geom.Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Delete removes one item whose rectangle equals rect and for which match
// returns true. It reports whether an item was removed. Underfull nodes are
// dissolved and their entries reinserted, per Guttman's CondenseTree.
func (t *Tree[T]) Delete(rect geom.Rect, match func(T) bool) bool {
	leafPath, idx := t.findLeaf(t.root, nil, rect, match)
	if leafPath == nil {
		return false
	}
	// Copy-on-write: replace every shared node on the path with an owned
	// copy, re-linking each copy into its (already owned) parent.
	for i, old := range leafPath {
		m := t.mutable(old)
		if m == old {
			continue
		}
		if i == 0 {
			t.root = m
		} else {
			parent := leafPath[i-1]
			for j := range parent.entries {
				if parent.entries[j].child == old {
					parent.entries[j].child = m
					break
				}
			}
		}
		leafPath[i] = m
	}
	leaf := leafPath[len(leafPath)-1]
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--

	// Condense: walk up, collecting orphaned entries from underfull nodes.
	var orphans []entry[T]
	for i := len(leafPath) - 1; i > 0; i-- {
		n := leafPath[i]
		parent := leafPath[i-1]
		if len(n.entries) < t.minEntries {
			// Remove n from parent and orphan its entries.
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			orphans = append(orphans, n.entries...)
		} else {
			// Tighten the parent's MBR for n.
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries[j].rect = mbr(n)
					break
				}
			}
		}
	}
	// Shrink the root if it lost all children or has a single internal child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node[T]{leaf: true, owner: t.owner}
	}
	// Reinsert orphaned subtrees leaf-by-leaf.
	for _, o := range orphans {
		t.reinsert(o)
	}
	return true
}

func (t *Tree[T]) reinsert(e entry[T]) {
	if e.child == nil {
		// Leaf entry: plain insert (rect already validated on the way in).
		leaf, path := t.chooseLeaf(e.rect)
		leaf.entries = append(leaf.entries, e)
		if len(leaf.entries) > t.maxEntries {
			t.splitAndPropagate(path)
		}
		return
	}
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		if n.leaf {
			for _, le := range n.entries {
				t.reinsert(le)
			}
			return
		}
		for _, c := range n.entries {
			walk(c.child)
		}
	}
	walk(e.child)
}

// findLeaf locates a leaf containing a matching entry, returning the root
// path and the entry index. The descent prunes on containment only: a node's
// entry rect is (a superset of) the MBR of its subtree, so a leaf entry equal
// to rect can live only under ancestors whose rects contain rect. Descending
// into merely-intersecting siblings — tempting as a safety net — turns every
// delete into a near-full scan on overlap-heavy interval data and makes
// commit cost track the dataset size instead of the batch size.
func (t *Tree[T]) findLeaf(n *node[T], path []*node[T], rect geom.Rect, match func(T) bool) ([]*node[T], int) {
	path = append(path, n)
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].rect == rect && match(n.entries[i].item) {
				return path, i
			}
		}
		return nil, -1
	}
	for i := range n.entries {
		if n.entries[i].rect.Contains(rect) {
			if p, idx := t.findLeaf(n.entries[i].child, path, rect, match); p != nil {
				return p, idx
			}
		}
	}
	return nil, -1
}

// Search calls fn for every item whose rectangle intersects the window. fn
// returning false stops the scan early.
func (t *Tree[T]) Search(window geom.Rect, fn func(geom.Rect, T) bool) {
	t.search(t.root, window, fn)
}

func (t *Tree[T]) search(n *node[T], window geom.Rect, fn func(geom.Rect, T) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Intersects(window) {
			continue
		}
		if n.leaf {
			if !fn(e.rect, e.item) {
				return false
			}
		} else if !t.search(e.child, window, fn) {
			return false
		}
	}
	return true
}

// All calls fn for every stored item.
func (t *Tree[T]) All(fn func(geom.Rect, T) bool) {
	t.search(t.root, mbrOrInfinite(t), fn)
}

func mbrOrInfinite[T any](t *Tree[T]) geom.Rect {
	if len(t.root.entries) == 0 {
		return geom.Rect{}
	}
	return mbr(t.root)
}

// Neighbor is a result of a nearest-neighbor scan.
type Neighbor[T any] struct {
	Rect geom.Rect
	Item T
	// Dist is the MINDIST of the item's rectangle from the query point —
	// for uncertainty regions, the object's near point distance.
	Dist float64
}

// NearestBy returns up to k items in ascending order of MINDIST from q,
// using best-first search over a priority queue (Hjaltason–Samet).
func (t *Tree[T]) NearestBy(q geom.Point, k int) []Neighbor[T] {
	if k <= 0 || t.size == 0 {
		return nil
	}
	out := make([]Neighbor[T], 0, k)
	t.ScanNearest(q, func(nb Neighbor[T]) bool {
		out = append(out, nb)
		return len(out) < k
	})
	return out
}

// ScanNearest streams items in ascending MINDIST order from q until fn
// returns false. The filtering phase uses it to find f_min and then keep
// consuming candidates whose near point does not exceed f_min.
func (t *Tree[T]) ScanNearest(q geom.Point, fn func(Neighbor[T]) bool) {
	if t.size == 0 {
		return
	}
	pq := t.getQueue()
	defer t.putQueue(pq)
	pq.push(nnEntry[T]{dist: 0, node: t.root})
	for len(*pq) > 0 {
		head := pq.pop()
		if head.node != nil {
			for i := range head.node.entries {
				e := &head.node.entries[i]
				item := nnEntry[T]{dist: e.rect.MinDist(q)}
				if head.node.leaf {
					item.leafEntry = e
				} else {
					item.node = e.child
				}
				pq.push(item)
			}
			continue
		}
		e := head.leafEntry
		if !fn(Neighbor[T]{Rect: e.rect, Item: e.item, Dist: head.dist}) {
			return
		}
	}
}

// MinMaxDist returns the smallest MAXDIST over all stored rectangles from q:
// the distance f_min of the paper's filtering phase. The traversal prunes
// subtrees whose MINDIST exceeds the best MAXDIST found so far.
// It returns +Inf for an empty tree.
func (t *Tree[T]) MinMaxDist(q geom.Point) float64 {
	best := math.Inf(1)
	if t.size == 0 {
		return best
	}
	pq := t.getQueue()
	defer t.putQueue(pq)
	pq.push(nnEntry[T]{dist: 0, node: t.root})
	for len(*pq) > 0 {
		head := pq.pop()
		if head.dist > best {
			break // everything remaining starts farther than the bound
		}
		if head.node.leaf {
			for i := range head.node.entries {
				if d := head.node.entries[i].rect.MaxDist(q); d < best {
					best = d
				}
			}
			continue
		}
		for i := range head.node.entries {
			e := &head.node.entries[i]
			// An MBR's MAXDIST upper-bounds the far point of every region
			// inside it, so it tightens the f_min bound before any descent.
			// (MINMAXDIST would be wrong here: it bounds a contained
			// object's near point, not its far point.)
			if mm := e.rect.MaxDist(q); mm < best {
				best = mm
			}
			if md := e.rect.MinDist(q); md <= best {
				pq.push(nnEntry[T]{dist: md, node: e.child})
			}
		}
	}
	return best
}

type nnEntry[T any] struct {
	dist      float64
	node      *node[T]
	leafEntry *entry[T]
}

// getQueue hands out an empty traversal queue, reusing a pooled backing
// array when one is available.
func (t *Tree[T]) getQueue() *nnQueue[T] {
	if q, ok := t.nnPool.Get().(*nnQueue[T]); ok {
		return q
	}
	q := make(nnQueue[T], 0, 2*t.maxEntries)
	return &q
}

// putQueue clears the queue's pointers and returns it to the pool.
func (t *Tree[T]) putQueue(q *nnQueue[T]) {
	h := *q
	for i := range h {
		h[i] = nnEntry[T]{}
	}
	*q = h[:0]
	t.nnPool.Put(q)
}

// nnQueue is a typed binary min-heap on dist. container/heap would box every
// pushed and popped entry in an interface — at one MinMaxDist traversal per
// filtering pass that boxing dominated the monitor's allocation profile, so
// the sift operations are hand-rolled.
type nnQueue[T any] []nnEntry[T]

func (q *nnQueue[T]) push(e nnEntry[T]) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].dist <= h[i].dist {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*q = h
}

func (q *nnQueue[T]) pop() nnEntry[T] {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nnEntry[T]{} // drop the node/entry pointers for the GC
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].dist < h[l].dist {
			m = r
		}
		if h[i].dist <= h[m].dist {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	*q = h
	return top
}

// Bounds returns the minimum bounding rectangle of every stored item and
// whether the tree holds any. The rectangle is maintained exactly through
// inserts and deletes, so a shard can report its live extent without a scan.
func (t *Tree[T]) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return mbr(t.root), true
}

// PartitionSTR splits rects into k spatially contiguous groups along the X
// axis using the same sort-by-center pass as STR bulk loading, and returns
// the k-1 routing cuts that reproduce the split: group i holds exactly the
// indices whose center X coordinate c satisfies cuts[i-1] < c <= cuts[i]
// (with the missing outer cuts read as ±Inf). Rectangles with equal centers
// are never separated, so routing by cut is always consistent with the
// returned groups. Group sizes are near-equal up to tie-keeping.
func PartitionSTR(rects []geom.Rect, k int) ([][]int, []float64) {
	if k < 1 {
		k = 1
	}
	n := len(rects)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	cx := func(i int) float64 { return rects[idx[i]].Center().X }
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := rects[idx[a]].Center().X, rects[idx[b]].Center().X
		if ca != cb {
			return ca < cb
		}
		return idx[a] < idx[b]
	})
	groups := make([][]int, k)
	cuts := make([]float64, 0, k-1)
	start := 0
	for g := 0; g < k; g++ {
		end := ((g + 1) * n) / k
		if end < start {
			end = start
		}
		if g == k-1 {
			end = n
		}
		// Keep equal centers together: a tie split across a cut would make
		// the cut-based routing disagree with the group assignment.
		for end > start && end < n && cx(end-1) == cx(end) {
			end++
		}
		groups[g] = append([]int(nil), idx[start:end]...)
		if g < k-1 {
			var cut float64
			switch {
			case n == 0:
				cut = 0
			case end == 0:
				// Everything routes right of this cut; the next float below
				// the smallest center keeps the cut list sorted (plain -1
				// would be absorbed at large magnitudes).
				cut = math.Nextafter(cx(0), math.Inf(-1))
			case end == n:
				cut = cx(n - 1)
			default:
				// Overflow-safe midpoint; rounding collisions with either
				// neighbor fall back to the left edge, which is always a
				// valid cut (>= every center left of it, < cx(end)).
				cut = cx(end-1) + (cx(end)-cx(end-1))/2
				if !(cut >= cx(end-1) && cut < cx(end)) {
					cut = cx(end - 1)
				}
			}
			cuts = append(cuts, cut)
		}
		start = end
	}
	return groups, cuts
}

// Input is a (rectangle, item) pair for bulk loading.
type Input[T any] struct {
	Rect geom.Rect
	Item T
}

// BulkLoad builds a tree from the inputs using Sort-Tile-Recursive packing,
// which yields near-optimal space utilization for static datasets — the
// common case for the benchmark workloads.
func BulkLoad[T any](inputs []Input[T], minEntries, maxEntries int) (*Tree[T], error) {
	t, err := New[T](minEntries, maxEntries)
	if err != nil {
		return nil, err
	}
	if len(inputs) == 0 {
		return t, nil
	}
	for _, in := range inputs {
		if !in.Rect.IsValid() {
			return nil, fmt.Errorf("rtree: invalid rect %+v in bulk load", in.Rect)
		}
	}
	// Leaf level.
	leaves := strPack(inputs, maxEntries)
	level := make([]entry[T], len(leaves))
	for i, lf := range leaves {
		level[i] = entry[T]{rect: mbr(lf), child: lf}
	}
	// Upper levels.
	for len(level) > 1 {
		nodes := strPackEntries(level, maxEntries)
		level = level[:0]
		for _, nd := range nodes {
			level = append(level, entry[T]{rect: mbr(nd), child: nd})
		}
	}
	if len(leaves) == 1 {
		t.root = leaves[0]
	} else {
		t.root = level[0].child
	}
	t.size = len(inputs)
	stampOwner(t.root, t.owner)
	return t, nil
}

// stampOwner claims every node of a freshly built subtree for owner.
func stampOwner[T any](n *node[T], owner *cowOwner) {
	n.owner = owner
	if !n.leaf {
		for i := range n.entries {
			stampOwner(n.entries[i].child, owner)
		}
	}
}

// strPack tiles leaf inputs into leaf nodes.
func strPack[T any](inputs []Input[T], capPerNode int) []*node[T] {
	items := append([]Input[T](nil), inputs...)
	sort.Slice(items, func(i, j int) bool {
		return items[i].Rect.Center().X < items[j].Rect.Center().X
	})
	sliceCount := int(math.Ceil(math.Sqrt(float64(len(items)) / float64(capPerNode))))
	if sliceCount < 1 {
		sliceCount = 1
	}
	perSlice := int(math.Ceil(float64(len(items)) / float64(sliceCount)))
	var out []*node[T]
	for s := 0; s < len(items); s += perSlice {
		end := s + perSlice
		if end > len(items) {
			end = len(items)
		}
		slice := items[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for o := 0; o < len(slice); o += capPerNode {
			e := o + capPerNode
			if e > len(slice) {
				e = len(slice)
			}
			n := &node[T]{leaf: true}
			for _, in := range slice[o:e] {
				n.entries = append(n.entries, entry[T]{rect: in.Rect, item: in.Item})
			}
			out = append(out, n)
		}
	}
	return out
}

// strPackEntries tiles internal entries into internal nodes.
func strPackEntries[T any](ents []entry[T], capPerNode int) []*node[T] {
	items := append([]entry[T](nil), ents...)
	sort.Slice(items, func(i, j int) bool {
		return items[i].rect.Center().X < items[j].rect.Center().X
	})
	sliceCount := int(math.Ceil(math.Sqrt(float64(len(items)) / float64(capPerNode))))
	if sliceCount < 1 {
		sliceCount = 1
	}
	perSlice := int(math.Ceil(float64(len(items)) / float64(sliceCount)))
	var out []*node[T]
	for s := 0; s < len(items); s += perSlice {
		end := s + perSlice
		if end > len(items) {
			end = len(items)
		}
		slice := items[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].rect.Center().Y < slice[j].rect.Center().Y
		})
		for o := 0; o < len(slice); o += capPerNode {
			e := o + capPerNode
			if e > len(slice) {
				e = len(slice)
			}
			n := &node[T]{leaf: false}
			n.entries = append(n.entries, slice[o:e]...)
			out = append(out, n)
		}
	}
	return out
}

// Dump serializes the tree bottom-up: emit is called once per node, children
// before parents (post-order), and returns a stable reference for the node —
// for the paged checkpoint, the record offset its encoding landed at. Child
// references are passed to the parent's emit call, and Dump returns the
// root's reference. The layout round-trips exactly through Rebuild, so a
// recovered tree is structurally identical to the dumped one and yields
// byte-identical traversal orders.
func (t *Tree[T]) Dump(emit func(leaf bool, rects []geom.Rect, items []T, children []int64) (int64, error)) (int64, error) {
	var walk func(n *node[T]) (int64, error)
	walk = func(n *node[T]) (int64, error) {
		rects := make([]geom.Rect, len(n.entries))
		if n.leaf {
			items := make([]T, len(n.entries))
			for i := range n.entries {
				rects[i] = n.entries[i].rect
				items[i] = n.entries[i].item
			}
			return emit(true, rects, items, nil)
		}
		children := make([]int64, len(n.entries))
		for i := range n.entries {
			rects[i] = n.entries[i].rect
			ref, err := walk(n.entries[i].child)
			if err != nil {
				return 0, err
			}
			children[i] = ref
		}
		return emit(false, rects, nil, children)
	}
	return walk(t.root)
}

// rebuildMaxDepth bounds Rebuild's recursion so a corrupted checkpoint with
// a reference cycle fails instead of recursing forever. With fan-out >= 2 a
// depth-64 tree already exceeds any representable size.
const rebuildMaxDepth = 64

// Rebuild reconstructs a tree previously serialized with Dump: load resolves
// one node reference to its contents, starting from root. size is the stored
// item count. The rebuilt tree owns all its nodes.
func Rebuild[T any](root int64, size, minEntries, maxEntries int,
	load func(ref int64) (leaf bool, rects []geom.Rect, items []T, children []int64, err error)) (*Tree[T], error) {
	t, err := New[T](minEntries, maxEntries)
	if err != nil {
		return nil, err
	}
	var build func(ref int64, depth int) (*node[T], error)
	build = func(ref int64, depth int) (*node[T], error) {
		if depth > rebuildMaxDepth {
			return nil, fmt.Errorf("rtree: node nesting beyond depth %d (corrupt dump?)", rebuildMaxDepth)
		}
		leaf, rects, items, children, err := load(ref)
		if err != nil {
			return nil, err
		}
		n := &node[T]{leaf: leaf, owner: t.owner, entries: make([]entry[T], 0, len(rects))}
		if leaf {
			if len(items) != len(rects) {
				return nil, fmt.Errorf("rtree: leaf node %d has %d rects, %d items", ref, len(rects), len(items))
			}
			for i := range rects {
				n.entries = append(n.entries, entry[T]{rect: rects[i], item: items[i]})
			}
			return n, nil
		}
		if len(children) != len(rects) {
			return nil, fmt.Errorf("rtree: node %d has %d rects, %d children", ref, len(rects), len(children))
		}
		for i := range rects {
			c, err := build(children[i], depth+1)
			if err != nil {
				return nil, err
			}
			n.entries = append(n.entries, entry[T]{rect: rects[i], child: c})
		}
		return n, nil
	}
	n, err := build(root, 0)
	if err != nil {
		return nil, err
	}
	t.root = n
	t.size = size
	return t, nil
}

// CheckInvariants validates structural invariants for tests: every internal
// entry's rectangle equals the MBR of its child, occupancy bounds hold
// (except at the root) and all leaves sit at the same depth. It returns the
// first violation found.
func (t *Tree[T]) CheckInvariants() error {
	leafDepth := -1
	var walk func(n *node[T], depth int, isRoot bool) error
	walk = func(n *node[T], depth int, isRoot bool) error {
		if !isRoot {
			if len(n.entries) < t.minEntries {
				return fmt.Errorf("rtree: node at depth %d underfull (%d < %d)",
					depth, len(n.entries), t.minEntries)
			}
		}
		if len(n.entries) > t.maxEntries {
			return fmt.Errorf("rtree: node at depth %d overfull (%d > %d)",
				depth, len(n.entries), t.maxEntries)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.child == nil {
				return fmt.Errorf("rtree: internal entry without child at depth %d", depth)
			}
			if got := mbr(e.child); !e.rect.Contains(got) {
				return fmt.Errorf("rtree: MBR %+v does not contain child MBR %+v", e.rect, got)
			}
			if err := walk(e.child, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, true)
}
