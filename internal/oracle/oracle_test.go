package oracle

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// Cross-check margins: with 20k samples the oracle's standard error is at
// most 0.0036 per probability, so 0.02 is over 5σ. The 2-D margin adds room
// for the engine's 300-bin lens-area discretization, which the oracle (raw
// disk sampling) does not share.
const (
	oracleSamples = 20000
	eps1D         = 0.02
	eps2D         = 0.035
)

// checkAgainstOracle verifies one engine result against oracle
// probabilities: every candidate's bounds must bracket the oracle estimate,
// classifications must be consistent with the constraint, and objects the
// filter pruned must be (near-)impossible nearest neighbors.
func checkAgainstOracle(t *testing.T, label string, res *core.Result, p []float64, c verify.Constraint, eps float64) {
	t.Helper()
	seen := make(map[int]bool, len(res.Candidates))
	for _, a := range res.Candidates {
		seen[a.ID] = true
		op := p[a.ID]
		if op < a.Bounds.L-eps || op > a.Bounds.U+eps {
			t.Errorf("%s: object %d: oracle p=%.4f outside engine bounds [%.4f, %.4f]",
				label, a.ID, op, a.Bounds.L, a.Bounds.U)
		}
		switch a.Status {
		case verify.Satisfy:
			if op < c.P-c.Delta-eps {
				t.Errorf("%s: object %d classified satisfy but oracle p=%.4f << P=%.2f (Δ=%.2f)",
					label, a.ID, op, c.P, c.Delta)
			}
		case verify.Fail:
			if op >= c.P+eps {
				t.Errorf("%s: object %d classified fail but oracle p=%.4f >= P=%.2f",
					label, a.ID, op, c.P)
			}
		default:
			t.Errorf("%s: object %d left unknown in a final result", label, a.ID)
		}
	}
	for id, op := range p {
		if !seen[id] && op > eps {
			t.Errorf("%s: filtered-out object %d has oracle p=%.4f", label, id, op)
		}
	}
}

// oracleDataset1D builds a small random dataset: uniform pdfs on even seeds,
// random histogram pdfs on odd seeds — the paper's two 1-D uncertainty
// models.
func oracleDataset1D(t *testing.T, seed int64) *uncertain.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed * 7))
	opt := uncertain.GenOptions{
		N:       8 + rng.Intn(25),
		Domain:  100,
		MeanLen: 8,
		MinLen:  1,
		MaxLen:  30,
		Seed:    seed,
	}
	var (
		ds  *uncertain.Dataset
		err error
	)
	if seed%2 == 0 {
		ds, err = uncertain.GenerateUniform(opt)
	} else {
		ds, err = uncertain.GenerateHistogram(opt, 6)
	}
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestOracleCrossCheck1D runs the 50-dataset seeded cross-check for the 1-D
// engine: C-PNN answers (single and batch, which must agree exactly), exact
// PNN probabilities, and filtered objects, all against the brute-force
// oracle.
func TestOracleCrossCheck1D(t *testing.T) {
	passed := 0
	for seed := int64(1); seed <= 50; seed++ {
		ok := t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 101))
			ds := oracleDataset1D(t, seed)
			eng, err := core.NewEngine(ds)
			if err != nil {
				t.Fatal(err)
			}
			c := verify.Constraint{P: 0.15 + 0.5*rng.Float64(), Delta: 0.02 + 0.08*rng.Float64()}
			qs := []float64{10 + 80*rng.Float64(), 10 + 80*rng.Float64()}

			br, err := eng.CPNNBatch(qs, c, core.BatchOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range qs {
				label := labelFor("1D", seed, i)
				single, err := eng.CPNN(q, c, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(br.Results[i].Candidates, single.Candidates) {
					t.Errorf("%s: batch result differs from single evaluation", label)
				}
				p := PNN1D(ds, q, oracleSamples, rng)
				checkAgainstOracle(t, label, single, p, c, eps1D)

				// Exact PNN probabilities against the same oracle run.
				probs, _, err := eng.PNN(q, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, pr := range probs {
					if d := pr.P - p[pr.ID]; d > eps1D || d < -eps1D {
						t.Errorf("%s: PNN object %d: engine %.4f vs oracle %.4f", label, pr.ID, pr.P, p[pr.ID])
					}
				}
			}
		})
		if ok {
			passed++
		}
	}
	t.Logf("1-D cross-check: %d/50 datasets passed", passed)
	if passed != 50 {
		t.Errorf("1-D cross-check passed %d/50 datasets", passed)
	}
}

// TestOracleCrossCheckKNN cross-checks the sampling-based constrained k-NN
// against the oracle's independent k-NN membership estimate on a subset of
// the seeded datasets.
func TestOracleCrossCheckKNN(t *testing.T) {
	for seed := int64(1); seed <= 50; seed += 5 {
		rng := rand.New(rand.NewSource(seed * 301))
		ds := oracleDataset1D(t, seed)
		eng, err := core.NewEngine(ds)
		if err != nil {
			t.Fatal(err)
		}
		c := verify.Constraint{P: 0.2 + 0.4*rng.Float64(), Delta: 0.05}
		q := 10 + 80*rng.Float64()
		k := 1 + rng.Intn(3)
		answers, _, err := eng.CKNN(q, c, core.KNNOptions{K: k, Samples: oracleSamples, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		p := KNN1D(ds, q, k, oracleSamples, rng)
		// Both sides are Monte-Carlo: the engine's bounds are ±4σ wide, the
		// oracle adds its own ~σ; eps1D covers the combination.
		for _, a := range answers {
			if p[a.ID] < a.Bounds.L-eps1D || p[a.ID] > a.Bounds.U+eps1D {
				t.Errorf("seed %d: k=%d object %d: oracle p=%.4f outside engine bounds [%.4f, %.4f]",
					seed, k, a.ID, p[a.ID], a.Bounds.L, a.Bounds.U)
			}
		}
	}
}

// TestOracleCrossCheck2D runs the 50-dataset seeded cross-check for the
// planar engine over random disk datasets.
func TestOracleCrossCheck2D(t *testing.T) {
	passed := 0
	for seed := int64(1); seed <= 50; seed++ {
		ok := t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 211))
			objs := make([]core.Object2D, 10+rng.Intn(21))
			for i := range objs {
				objs[i] = core.Object2D{
					ID: i,
					Region: geom.Circle{
						Center: geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
						Radius: 0.5 + rng.Float64()*5,
					},
				}
			}
			eng, err := core.NewEngine2D(objs)
			if err != nil {
				t.Fatal(err)
			}
			c := verify.Constraint{P: 0.15 + 0.5*rng.Float64(), Delta: 0.02 + 0.08*rng.Float64()}
			q := geom.Point{X: 5 + rng.Float64()*40, Y: 5 + rng.Float64()*40}

			br, err := eng.CPNNBatch([]geom.Point{q}, c, core.BatchOptions2D{})
			if err != nil {
				t.Fatal(err)
			}
			single, err := eng.CPNN(q, c, core.Options2D{})
			if err != nil {
				t.Fatal(err)
			}
			label := labelFor("2D", seed, 0)
			if !reflect.DeepEqual(br.Results[0].Candidates, single.Candidates) {
				t.Errorf("%s: batch result differs from single evaluation", label)
			}
			p := PNN2D(objs, q, oracleSamples, rng)
			checkAgainstOracle(t, label, single, p, c, eps2D)
		})
		if ok {
			passed++
		}
	}
	t.Logf("2-D cross-check: %d/50 datasets passed", passed)
	if passed != 50 {
		t.Errorf("2-D cross-check passed %d/50 datasets", passed)
	}
}

func labelFor(kind string, seed int64, q int) string {
	return fmt.Sprintf("%s seed %d q%d", kind, seed, q)
}
