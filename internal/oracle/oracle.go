// Package oracle is a brute-force Monte-Carlo evaluator for probabilistic
// nearest-neighbor queries, used only by tests. It is deliberately
// independent of the engine's machinery: instead of distance pdfs, subregion
// tables or verifiers, it samples every object's *raw* uncertainty pdf,
// measures distances directly and tallies winners. Agreement with the engine
// therefore exercises the full pipeline — filtering, distance derivation,
// decomposition, verification and refinement — end to end, including the
// 2-D lens-area reduction.
//
// Estimates carry the usual Monte-Carlo error: with n samples a tally's
// standard error is at most 0.5/√n. Tests compare against engine bounds with
// a margin of several σ; all randomness is seeded, so a passing check stays
// passing.
package oracle

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/uncertain"
)

// PNN1D estimates the qualification probability of every dataset object —
// the chance it is the nearest neighbor of q — indexed by object ID. Exact
// distance ties split their tally evenly (they have measure zero for the
// engine's continuous pdfs, but cost nothing to handle).
func PNN1D(ds *uncertain.Dataset, q float64, samples int, rng *rand.Rand) []float64 {
	n := ds.Len()
	counts := make([]float64, n)
	if n == 0 || samples < 1 {
		return counts
	}
	winners := make([]int, 0, 4)
	for s := 0; s < samples; s++ {
		best := math.Inf(1)
		winners = winners[:0]
		for _, o := range ds.Objects() {
			d := math.Abs(o.PDF.Sample(rng) - q)
			switch {
			case d < best:
				best = d
				winners = append(winners[:0], o.ID)
			case d == best:
				winners = append(winners, o.ID)
			}
		}
		share := 1.0 / float64(len(winners))
		for _, w := range winners {
			counts[w] += share
		}
	}
	for i := range counts {
		counts[i] /= float64(samples)
	}
	return counts
}

// KNN1D estimates, per object ID, the probability of ranking among the k
// nearest neighbors of q.
func KNN1D(ds *uncertain.Dataset, q float64, k, samples int, rng *rand.Rand) []float64 {
	n := ds.Len()
	counts := make([]float64, n)
	if n == 0 || samples < 1 || k < 1 {
		return counts
	}
	if k > n {
		k = n
	}
	dists := make([]float64, n)
	idx := make([]int, n)
	for s := 0; s < samples; s++ {
		for i, o := range ds.Objects() {
			dists[o.ID] = math.Abs(o.PDF.Sample(rng) - q)
			idx[i] = o.ID
		}
		partialSelect(idx, dists, k)
		for _, id := range idx[:k] {
			counts[id]++
		}
	}
	for i := range counts {
		counts[i] /= float64(samples)
	}
	return counts
}

// PNN2D estimates qualification probabilities for disk-shaped planar objects
// with uniform pdfs, indexed by position in objs. Sampling is uniform over
// each disk's area — the raw 2-D model, not the engine's lens-area
// reduction.
func PNN2D(objs []core.Object2D, q geom.Point, samples int, rng *rand.Rand) []float64 {
	n := len(objs)
	counts := make([]float64, n)
	if n == 0 || samples < 1 {
		return counts
	}
	winners := make([]int, 0, 4)
	for s := 0; s < samples; s++ {
		best := math.Inf(1)
		winners = winners[:0]
		for i, o := range objs {
			r := o.Region.Radius * math.Sqrt(rng.Float64())
			theta := 2 * math.Pi * rng.Float64()
			x := o.Region.Center.X + r*math.Cos(theta)
			y := o.Region.Center.Y + r*math.Sin(theta)
			d := math.Hypot(x-q.X, y-q.Y)
			switch {
			case d < best:
				best = d
				winners = append(winners[:0], i)
			case d == best:
				winners = append(winners, i)
			}
		}
		share := 1.0 / float64(len(winners))
		for _, w := range winners {
			counts[w] += share
		}
	}
	for i := range counts {
		counts[i] /= float64(samples)
	}
	return counts
}

// partialSelect reorders idx so its first k entries are the indices with the
// smallest dists values (in no particular order) — a selection pass that
// keeps KNN1D linear-ish for the small k the tests use.
func partialSelect(idx []int, dists []float64, k int) {
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(idx); j++ {
			if dists[idx[j]] < dists[idx[min]] {
				min = j
			}
		}
		idx[i], idx[min] = idx[min], idx[i]
	}
}
