package verify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/pdf"
	"repro/internal/subregion"
)

// handTable rebuilds the worked example of the subregion tests:
// X1 hist{0,2,6; .4,.6}, X2 uniform[1,5], X3 uniform[3,8].
// Hand-derived verifier values:
//
//	RS uppers:    [0.85, 1, 0.4]
//	L-SR lowers:  [0.40625, 0.25, 0.03]
//	U-SR uppers:  [0.54375, 0.44125, 0.045]
func handTable(t *testing.T) *subregion.Table {
	t.Helper()
	tb, err := subregion.Build([]subregion.Candidate{
		{ID: 10, Dist: pdf.MustHistogram([]float64{0, 2, 6}, []float64{0.4, 0.6})},
		{ID: 20, Dist: pdf.MustHistogram([]float64{1, 5}, []float64{1})},
		{ID: 30, Dist: pdf.MustHistogram([]float64{3, 8}, []float64{1})},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func freshState(n int) ([]Bounds, []Status) {
	b := make([]Bounds, n)
	for i := range b {
		b[i] = Bounds{L: 0, U: 1}
	}
	return b, make([]Status, n)
}

func TestClassifyPaperFigure4(t *testing.T) {
	// Paper Fig. 4 with P = 0.8, Delta = 0.15.
	c := Constraint{P: 0.8, Delta: 0.15}
	cases := []struct {
		name string
		b    Bounds
		want Status
	}{
		{"a: l >= P", Bounds{0.8, 0.96}, Satisfy},
		{"b: u >= P and width <= delta", Bounds{0.75, 0.85}, Satisfy},
		{"c: u < P", Bounds{0.7, 0.78}, Fail},
		{"d: u >= P but wide and l < P", Bounds{0.6, 0.85}, Unknown},
	}
	for _, tc := range cases {
		if got := Classify(tc.b, c); got != tc.want {
			t.Errorf("%s: Classify(%v) = %v, want %v", tc.name, tc.b, got, tc.want)
		}
	}
	// The paper's follow-up: once pj.l is raised to 0.81, case (d) becomes
	// an answer.
	if got := Classify(Bounds{0.81, 0.85}, c); got != Satisfy {
		t.Errorf("tightened case d = %v, want satisfy", got)
	}
}

func TestClassifyEdges(t *testing.T) {
	// Exact-equality boundaries.
	c := Constraint{P: 0.3, Delta: 0}
	if got := Classify(Bounds{0.3, 0.3}, c); got != Satisfy {
		t.Errorf("point bound at P = %v", got)
	}
	if got := Classify(Bounds{0.29999, 0.29999}, c); got != Fail {
		t.Errorf("point bound below P = %v", got)
	}
	if got := Classify(Bounds{0, 1}, c); got != Unknown {
		t.Errorf("vacuous bound = %v", got)
	}
	// Delta covering the whole bound accepts immediately.
	if got := Classify(Bounds{0, 1}, Constraint{P: 0.3, Delta: 1}); got != Satisfy {
		t.Errorf("delta=1 = %v", got)
	}
}

func TestConstraintValidate(t *testing.T) {
	good := []Constraint{{0.1, 0}, {1, 1}, {0.5, 0.01}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", c, err)
		}
	}
	bad := []Constraint{{0, 0}, {-0.1, 0}, {1.01, 0}, {0.5, -0.01}, {0.5, 1.01}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestBoundsTighten(t *testing.T) {
	b := Bounds{0.2, 0.9}
	got := b.Tighten(Bounds{0.3, 0.95})
	if got != (Bounds{0.3, 0.9}) {
		t.Errorf("Tighten = %v", got)
	}
	if w := got.Width(); math.Abs(w-0.6) > 1e-15 {
		t.Errorf("Width = %g", w)
	}
}

func TestRSHandValues(t *testing.T) {
	tb := handTable(t)
	b, st := freshState(3)
	RS{}.Apply(tb, b, st)
	want := []float64{0.85, 1, 0.4}
	for i := range want {
		if math.Abs(b[i].U-want[i]) > 1e-12 {
			t.Errorf("RS upper[%d] = %g, want %g", i, b[i].U, want[i])
		}
		if b[i].L != 0 {
			t.Errorf("RS touched lower bound of %d", i)
		}
	}
}

func TestLSRHandValues(t *testing.T) {
	tb := handTable(t)
	b, st := freshState(3)
	LSR{}.Apply(tb, b, st)
	want := []float64{0.40625, 0.25, 0.03}
	for i := range want {
		if math.Abs(b[i].L-want[i]) > 1e-12 {
			t.Errorf("L-SR lower[%d] = %g, want %g", i, b[i].L, want[i])
		}
		if b[i].U != 1 {
			t.Errorf("L-SR touched upper bound of %d", i)
		}
	}
}

func TestUSRHandValues(t *testing.T) {
	tb := handTable(t)
	b, st := freshState(3)
	USR{}.Apply(tb, b, st)
	want := []float64{0.54375, 0.44125, 0.045}
	for i := range want {
		if math.Abs(b[i].U-want[i]) > 1e-12 {
			t.Errorf("U-SR upper[%d] = %g, want %g", i, b[i].U, want[i])
		}
	}
}

func TestUSRNeverLooserThanRS(t *testing.T) {
	// U-SR's bound Σ s_ij q_ij.u <= Σ s_ij = 1 − s_iM, the RS bound, so
	// running U-SR after RS always keeps or tightens the bound.
	tb := handTable(t)
	bRS, st1 := freshState(3)
	RS{}.Apply(tb, bRS, st1)
	bUSR, st2 := freshState(3)
	USR{}.Apply(tb, bUSR, st2)
	for i := range bRS {
		if bUSR[i].U > bRS[i].U+1e-12 {
			t.Errorf("candidate %d: U-SR %g looser than RS %g", i, bUSR[i].U, bRS[i].U)
		}
	}
}

func TestVerifiersSkipDecidedCandidates(t *testing.T) {
	tb := handTable(t)
	b, st := freshState(3)
	st[0] = Fail
	b[0] = Bounds{0, 1}
	RS{}.Apply(tb, b, st)
	LSR{}.Apply(tb, b, st)
	USR{}.Apply(tb, b, st)
	if b[0] != (Bounds{0, 1}) {
		t.Errorf("decided candidate's bounds were modified: %v", b[0])
	}
}

func TestRunChainHandExample(t *testing.T) {
	tb := handTable(t)
	// P=0.5, Delta=0.1: X3 fails at RS (u=0.4 < 0.5). X1 ends [0.40625,
	// 0.54375] — width 0.1375 > 0.1 and l < P: unknown. X2 ends [0.25,
	// 0.44125]: u < 0.5 after U-SR -> fail.
	res, err := Run(tb, Constraint{P: 0.5, Delta: 0.1}, DefaultChain())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status[2] != Fail {
		t.Errorf("X3 = %v, want fail", res.Status[2])
	}
	if res.Status[1] != Fail {
		t.Errorf("X2 = %v, want fail (upper %g)", res.Status[1], res.Bounds[1].U)
	}
	if res.Status[0] != Unknown {
		t.Errorf("X1 = %v, want unknown", res.Status[0])
	}
	if got := res.Unknown(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Unknown() = %v", got)
	}
	if len(res.Applied) != 3 {
		t.Errorf("Applied = %v", res.Applied)
	}
	// UnknownAfter is monotone non-increasing.
	for k := 1; k < len(res.UnknownAfter); k++ {
		if res.UnknownAfter[k] > res.UnknownAfter[k-1] {
			t.Errorf("UnknownAfter not monotone: %v", res.UnknownAfter)
		}
	}
}

func TestRunEarlyExit(t *testing.T) {
	tb := handTable(t)
	// P=0.95: RS alone pushes every upper bound below 0.95 except X2's
	// (u=1)... X2's RS upper is 1, so RS can't fail it. U-SR will. With
	// delta=1 every candidate with u >= P satisfies immediately; choose
	// delta=0 to exercise fail-only classification.
	res, err := Run(tb, Constraint{P: 0.95, Delta: 0}, DefaultChain())
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Status {
		if st != Fail {
			t.Errorf("candidate %d = %v, want fail", i, st)
		}
	}
	// The chain should have stopped before or at U-SR once nothing remained
	// unknown; RS leaves X2 unknown so at least two verifiers ran.
	if len(res.Applied) < 2 {
		t.Errorf("Applied = %v", res.Applied)
	}
}

func TestRunInvalidConstraint(t *testing.T) {
	tb := handTable(t)
	if _, err := Run(tb, Constraint{P: 0, Delta: 0}, DefaultChain()); err == nil {
		t.Error("P=0 accepted")
	}
}

func TestStatusString(t *testing.T) {
	if Unknown.String() != "unknown" || Satisfy.String() != "satisfy" || Fail.String() != "fail" {
		t.Error("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Error("out-of-range status has empty string")
	}
}

// TestBoundsSandwichProperty is the central soundness property: for random
// candidate sets, the true qualification probability (estimated by
// Monte-Carlo) lies within every verifier's bounds.
func TestBoundsSandwichProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nObj := 2 + rng.Intn(8)
		q := rng.Float64() * 50
		var cands []subregion.Candidate
		fMin := math.Inf(1)
		var nears []float64
		for i := 0; i < nObj; i++ {
			lo := q - 15 + rng.Float64()*30
			width := 0.5 + rng.Float64()*10
			var p pdf.PDF
			if rng.Intn(2) == 0 {
				p = pdf.MustUniform(lo, lo+width)
			} else {
				edges := []float64{lo, lo + width/3, lo + width}
				p = pdf.MustHistogram(edges, []float64{0.3 + rng.Float64(), 0.3 + rng.Float64()})
			}
			d, err := dist.FromPDF(p, q)
			if err != nil {
				return false
			}
			sup := d.Support()
			nears = append(nears, sup.Lo)
			fMin = math.Min(fMin, sup.Hi)
			cands = append(cands, subregion.Candidate{ID: i, Dist: d})
		}
		kept := cands[:0]
		for i, c := range cands {
			if nears[i] <= fMin {
				kept = append(kept, c)
			}
		}
		tb, err := subregion.Build(kept)
		if err != nil {
			return false
		}
		n := tb.NumCandidates()
		b, st := freshState(n)
		RS{}.Apply(tb, b, st)
		LSR{}.Apply(tb, b, st)
		USR{}.Apply(tb, b, st)

		// Monte-Carlo ground truth.
		const samples = 4000
		counts := make([]float64, n)
		for s := 0; s < samples; s++ {
			best, bi := math.Inf(1), -1
			for k := 0; k < n; k++ {
				r := tb.Dist(k).Sample(rng)
				if r < best {
					best, bi = r, k
				}
			}
			counts[bi]++
		}
		for i := 0; i < n; i++ {
			p := counts[i] / samples
			// 4 sigma slack on the MC estimate, with an absolute floor so
			// tiny probabilities that draw zero hits don't false-positive.
			slack := 4*math.Sqrt(p*(1-p)/samples) + 2e-3
			if p < b[i].L-slack-1e-9 || p > b[i].U+slack+1e-9 {
				return false
			}
			if b[i].L > b[i].U+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
