// Package verify implements the probabilistic verifiers and the classifier
// of the C-PNN verification framework (paper §III-B, §IV, Fig. 5).
//
// A verifier tightens lower/upper bounds on candidates' qualification
// probabilities using only algebraic operations over the subregion table —
// no numerical integration. After each verifier the classifier labels every
// candidate satisfy, fail or unknown against the C-PNN constraint
// (Definition 1); verification stops as soon as nothing is unknown.
//
// The three verifiers, in ascending cost order (Table III):
//
//	RS   (Rightmost-Subregion)  upper bounds, O(|C|)
//	L-SR (Lower-Subregion)      lower bounds, O(|C|·M)
//	U-SR (Upper-Subregion)      upper bounds, O(|C|·M)
package verify

import (
	"fmt"

	"repro/internal/subregion"
)

// Status is a classifier label.
type Status uint8

const (
	// Unknown means the bounds cannot yet accept or reject the candidate.
	Unknown Status = iota
	// Satisfy means the candidate is part of the C-PNN answer.
	Satisfy
	// Fail means the candidate can never satisfy the C-PNN.
	Fail
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Unknown:
		return "unknown"
	case Satisfy:
		return "satisfy"
	case Fail:
		return "fail"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Bounds is a closed probability bound [L, U] for a qualification
// probability p: L <= p <= U.
type Bounds struct {
	L, U float64
}

// Width returns U − L, the paper's estimation error.
func (b Bounds) Width() float64 { return b.U - b.L }

// Tighten intersects b with other, keeping the stronger side of each bound.
func (b Bounds) Tighten(other Bounds) Bounds {
	out := b
	if other.L > out.L {
		out.L = other.L
	}
	if other.U < out.U {
		out.U = other.U
	}
	return out
}

// Constraint carries the C-PNN parameters of Definition 1.
type Constraint struct {
	// P is the probability threshold, in (0, 1].
	P float64
	// Delta is the tolerance on the bound width, in [0, 1].
	Delta float64
}

// Validate reports whether the constraint is within Definition 1's ranges.
func (c Constraint) Validate() error {
	if !(c.P > 0 && c.P <= 1) {
		return fmt.Errorf("verify: threshold P=%g outside (0, 1]", c.P)
	}
	if !(c.Delta >= 0 && c.Delta <= 1) {
		return fmt.Errorf("verify: tolerance Delta=%g outside [0, 1]", c.Delta)
	}
	return nil
}

// Classify labels a probability bound against the constraint:
//
//	satisfy  if U >= P and (L >= P or U−L <= Delta)
//	fail     if U < P
//	unknown  otherwise
func Classify(b Bounds, c Constraint) Status {
	if b.U < c.P {
		return Fail
	}
	if b.L >= c.P || b.Width() <= c.Delta {
		return Satisfy
	}
	return Unknown
}

// Verifier is one bound-tightening pass over the candidate set. Apply must
// only touch candidates whose status is Unknown, and must only replace a
// bound side with a strictly tighter value (paper §III-B).
type Verifier interface {
	// Name identifies the verifier in traces and experiment output.
	Name() string
	// Apply tightens bounds in place. bounds and status are indexed by the
	// table's local candidate index.
	Apply(t *subregion.Table, bounds []Bounds, status []Status)
}

// RS is the Rightmost-Subregion verifier (Lemma 1): an object's
// qualification probability is at most 1 − s_iM, its chance of staying out
// of the rightmost subregion.
type RS struct{}

// Name implements Verifier.
func (RS) Name() string { return "RS" }

// Apply implements Verifier.
func (RS) Apply(t *subregion.Table, bounds []Bounds, status []Status) {
	for i := range bounds {
		if status[i] != Unknown {
			continue
		}
		if u := 1 - t.RightmostMass(i); u < bounds[i].U {
			bounds[i].U = u
		}
	}
}

// LSR is the Lower-Subregion verifier (Lemma 2): for each non-rightmost
// subregion it lower-bounds the subregion qualification probability by
// Π_{k≠i}(1 − D_k(e_j)) / c_j and accumulates Eq. 4.
type LSR struct{}

// Name implements Verifier.
func (LSR) Name() string { return "L-SR" }

// Apply implements Verifier.
func (LSR) Apply(t *subregion.Table, bounds []Bounds, status []Status) {
	for i := range bounds {
		if status[i] != Unknown {
			continue
		}
		if l := lowerBound(t, i); l > bounds[i].L {
			bounds[i].L = l
		}
	}
}

// lowerBound computes Eq. 4 for candidate i.
func lowerBound(t *subregion.Table, i int) float64 {
	sum := 0.0
	for j := 0; j < t.NumSubregions()-1; j++ {
		if s := t.S(i, j); s > 0 {
			sum += s * SubregionLower(t, i, j)
		}
	}
	return sum
}

// USR is the Upper-Subregion verifier (Eq. 5/11): for each non-rightmost
// subregion it upper-bounds the subregion qualification probability by
// ½(Π_{k≠i}(1−D_k(e_j)) + Π_{k≠i}(1−D_k(e_{j+1}))).
type USR struct{}

// Name implements Verifier.
func (USR) Name() string { return "U-SR" }

// Apply implements Verifier.
func (USR) Apply(t *subregion.Table, bounds []Bounds, status []Status) {
	for i := range bounds {
		if status[i] != Unknown {
			continue
		}
		if u := upperBound(t, i); u < bounds[i].U {
			bounds[i].U = u
		}
	}
}

// upperBound computes Eq. 4 with q_ij.u substituted for q_ij.l.
func upperBound(t *subregion.Table, i int) float64 {
	sum := 0.0
	for j := 0; j < t.NumSubregions()-1; j++ {
		if s := t.S(i, j); s > 0 {
			sum += s * SubregionUpper(t, i, j)
		}
	}
	return sum
}

// SubregionLower returns q_ij.l, the Lemma 2 lower bound on the probability
// that X_i is the nearest neighbor given R_i ∈ S_j.
//
// When c_j > 1 this is Pr(E)/c_j with Pr(E) = Π_{k≠i}(1 − D_k(e_j)). When
// c_j == 1 the candidate is alone in the subregion and Pr(E) itself is the
// exact value; under the paper's standing assumption (non-zero density
// everywhere in each uncertainty region) that case only arises in S_1 where
// Pr(E) = 1, matching the lemma's stated value.
func SubregionLower(t *subregion.Table, i, j int) float64 {
	c := t.Count(j)
	if c <= 1 {
		return t.Excl(i, j)
	}
	return t.Excl(i, j) / float64(c)
}

// SubregionUpper returns q_ij.u of Eq. 11: ½(Pr(E) + Pr(F)), where Pr(E) and
// Pr(F) are the probabilities that every other candidate lies beyond e_j and
// e_{j+1} respectively.
func SubregionUpper(t *subregion.Table, i, j int) float64 {
	return (t.Excl(i, j) + t.Excl(i, j+1)) / 2
}

// DefaultChain returns the paper's verifier order: cheapest first (Fig. 5).
func DefaultChain() []Verifier { return []Verifier{RS{}, LSR{}, USR{}} }

// Result is the outcome of running a verifier chain.
type Result struct {
	// Bounds holds the final probability bounds per local candidate index.
	Bounds []Bounds
	// Status holds the final classifier labels.
	Status []Status
	// Applied lists the names of the verifiers that actually ran.
	Applied []string
	// UnknownAfter[k] is the number of unknown candidates after Applied[k]
	// ran — the series of paper Fig. 12.
	UnknownAfter []int
}

// Unknown returns the local indices still unclassified, in order.
func (r *Result) Unknown() []int {
	var out []int
	for i, st := range r.Status {
		if st == Unknown {
			out = append(out, i)
		}
	}
	return out
}

// Run initializes every candidate to bounds [0, 1] and status unknown, then
// applies the verifiers in order, classifying after each and stopping early
// once no candidate remains unknown (paper Fig. 5).
func Run(t *subregion.Table, c Constraint, verifiers []Verifier) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := t.NumCandidates()
	res := &Result{
		Bounds: make([]Bounds, n),
		Status: make([]Status, n),
	}
	for i := range res.Bounds {
		res.Bounds[i] = Bounds{L: 0, U: 1}
	}
	unknown := n
	for _, v := range verifiers {
		if unknown == 0 {
			break
		}
		v.Apply(t, res.Bounds, res.Status)
		unknown = 0
		for i := range res.Status {
			if res.Status[i] != Unknown {
				continue
			}
			res.Status[i] = Classify(res.Bounds[i], c)
			if res.Status[i] == Unknown {
				unknown++
			}
		}
		res.Applied = append(res.Applied, v.Name())
		res.UnknownAfter = append(res.UnknownAfter, unknown)
	}
	return res, nil
}
