package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/pdf"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/uncertain"
)

// replicaPair boots a store-backed primary server with a replication
// listener and a replica server following it, and waits for catch-up.
// Teardown order matches cpnn-serve: follower, then listeners, then servers.
func replicaPair(t *testing.T, seedObjects int) (primary, rep *Server) {
	t.Helper()
	pst, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	pdfs := make([]pdf.PDF, seedObjects)
	for i := range pdfs {
		pdfs[i] = pdf.MustUniform(float64(10*i), float64(10*i)+5)
	}
	repl, err := replica.StartServer(replica.ServerConfig{
		Store: pst, Addr: "127.0.0.1:0", AdvertiseHTTP: "http://primary.test:8080",
	})
	if err != nil {
		pst.Close()
		t.Fatal(err)
	}
	primary, err = New(Config{
		Store: pst, Replication: repl, QueueTimeout: -1,
		Dataset: uncertain.NewDataset(pdfs), Source: "seed",
	})
	if err != nil {
		repl.Close()
		pst.Close()
		t.Fatal(err)
	}

	fst, err := store.OpenFollower(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := replica.StartFollower(replica.FollowerConfig{
		Store: fst, Primary: repl.Addr(),
		BackoffMin: 10 * time.Millisecond, BackoffMax: 200 * time.Millisecond,
	})
	if err != nil {
		fst.Close()
		t.Fatal(err)
	}
	rep, err = New(Config{Replica: fol, QueueTimeout: -1})
	if err != nil {
		fol.Close()
		fst.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		fol.Close()
		repl.Close()
		rep.Close()
		primary.Close()
	})
	deadline := time.Now().Add(15 * time.Second)
	for !fol.CaughtUp() {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", fol.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return primary, rep
}

// waitReplicaVersion polls until the replica serves at least version v.
func waitReplicaVersion(t *testing.T, rep *Server, v uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for rep.Snapshot().Version < v {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at version %d, want >= %d", rep.Snapshot().Version, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReplicaServesIdenticalAnswers(t *testing.T) {
	primary, rep := replicaPair(t, 5)

	// Mutate through the primary's HTTP API; the replica must converge and
	// then serve the byte-identical response body for the same query.
	w := doJSON(t, primary, http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":12,"hi":14}},{"hist":{"edges":[20,21,22],"weights":[2,1]}}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("primary insert: %d %s", w.Code, w.Body)
	}
	waitReplicaVersion(t, rep, primary.Snapshot().Version)

	for _, path := range []string{
		"/v1/cpnn?q=13&p=0.3&delta=0.01",
		"/v1/pnn?q=13",
		"/v1/knn?q=13&k=2&p=0.3&samples=500&seed=7",
	} {
		pw := doJSON(t, primary, http.MethodGet, path, "")
		rw := doJSON(t, rep, http.MethodGet, path, "")
		if pw.Code != http.StatusOK || rw.Code != http.StatusOK {
			t.Fatalf("%s: primary %d, replica %d (%s)", path, pw.Code, rw.Code, rw.Body)
		}
		if pw.Body.String() != rw.Body.String() {
			t.Fatalf("%s diverged:\nprimary: %s\nreplica: %s", path, pw.Body, rw.Body)
		}
	}
}

func TestReplicaRedirectsWrites(t *testing.T) {
	_, rep := replicaPair(t, 3)

	for _, tc := range []struct {
		method, path, body string
	}{
		{http.MethodPost, "/v1/objects", `{"objects":[{"uniform":{"lo":1,"hi":2}}]}`},
		{http.MethodDelete, "/v1/objects?id=1", ""},
		{http.MethodPost, "/v1/dataset", "1 2\n"},
	} {
		w := doJSON(t, rep, tc.method, tc.path, tc.body)
		if w.Code != http.StatusTemporaryRedirect {
			t.Fatalf("%s %s: %d %s, want 307", tc.method, tc.path, w.Code, w.Body)
		}
		loc := w.Header().Get("Location")
		if !strings.HasPrefix(loc, "http://primary.test:8080/") || !strings.Contains(loc, strings.Split(tc.path, "?")[0]) {
			t.Fatalf("%s %s: Location = %q", tc.method, tc.path, loc)
		}
	}

	// Reads are unaffected.
	if w := doJSON(t, rep, http.MethodGet, "/v1/dataset", ""); w.Code != http.StatusOK {
		t.Fatalf("GET /v1/dataset on replica: %d", w.Code)
	}
}

func TestReplicaGatesUntilCaughtUp(t *testing.T) {
	// A follower of an unreachable primary can never catch up: every read
	// answers 503 + Retry-After and /healthz reports "syncing".
	fst, err := store.OpenFollower(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := replica.StartFollower(replica.FollowerConfig{
		Store: fst, Primary: "127.0.0.1:1", // nothing listens there
		DialTimeout: 50 * time.Millisecond,
		BackoffMin:  10 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		fst.Close()
		t.Fatal(err)
	}
	rep, err := New(Config{Replica: fol, QueueTimeout: -1})
	if err != nil {
		fol.Close()
		fst.Close()
		t.Fatal(err)
	}
	defer func() {
		fol.Close()
		rep.Close()
	}()

	for _, path := range []string{
		"/v1/cpnn?q=1&p=0.3", "/v1/pnn?q=1", "/v1/knn?q=1&k=1",
		"/v1/monitors", "/v1/subscribe",
	} {
		w := doJSON(t, rep, http.MethodGet, path, "")
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s pre-catch-up: %d, want 503", path, w.Code)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatalf("GET %s: 503 without Retry-After", path)
		}
	}
	w := doJSON(t, rep, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz pre-catch-up: %d, want 503", w.Code)
	}
	var hz struct {
		Status string `json:"status"`
		Role   string `json:"role"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "syncing" || hz.Role != "follower" {
		t.Fatalf("healthz = %+v", hz)
	}
	// No advertised primary yet: writes are refused, not redirected.
	if w := doJSON(t, rep, http.MethodPost, "/v1/objects", `{"objects":[{"uniform":{"lo":1,"hi":2}}]}`); w.Code != http.StatusForbidden {
		t.Fatalf("write without advertised primary: %d, want 403", w.Code)
	}
}

func TestReplicaHealthAndMetrics(t *testing.T) {
	primary, rep := replicaPair(t, 3)

	// Primary: role + replication_server block, replication_* metrics.
	w := doJSON(t, primary, http.MethodGet, "/healthz", "")
	var phz map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &phz); err != nil {
		t.Fatal(err)
	}
	if phz["role"] != "primary" {
		t.Fatalf("primary healthz role = %v", phz["role"])
	}
	rs, ok := phz["replication_server"].(map[string]any)
	if !ok || rs["followers"].(float64) != 1 {
		t.Fatalf("primary healthz replication_server = %v", phz["replication_server"])
	}
	pm := doJSON(t, primary, http.MethodGet, "/metrics", "").Body.String()
	if !strings.Contains(pm, "cpnn_server_replication_followers 1") {
		t.Fatalf("primary metrics missing replication family:\n%s", pm)
	}

	// Replica: role, lag block, replica_* metrics, caught-up gauge set.
	w = doJSON(t, rep, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("replica healthz: %d %s", w.Code, w.Body)
	}
	var rhz map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &rhz); err != nil {
		t.Fatal(err)
	}
	if rhz["role"] != "follower" {
		t.Fatalf("replica healthz role = %v", rhz["role"])
	}
	repState, ok := rhz["replication"].(map[string]any)
	if !ok || repState["caught_up"] != true {
		t.Fatalf("replica healthz replication = %v", rhz["replication"])
	}
	for _, key := range []string{"lag_versions", "lag_seconds", "lag_bytes", "source"} {
		if _, present := repState[key]; !present {
			t.Fatalf("replica healthz replication missing %q: %v", key, repState)
		}
	}
	rm := doJSON(t, rep, http.MethodGet, "/metrics", "").Body.String()
	for _, needle := range []string{
		"cpnn_server_replica_caught_up 1",
		"cpnn_server_replica_lag_versions",
		"cpnn_server_replica_records_applied_total",
	} {
		if !strings.Contains(rm, needle) {
			t.Fatalf("replica metrics missing %q:\n%s", needle, rm)
		}
	}
}

func TestReplicaMonitorsRideReplayedFeed(t *testing.T) {
	primary, rep := replicaPair(t, 3)

	// Register a standing query on the REPLICA; commit through the PRIMARY;
	// the replica's monitor must observe the change via the replicated feed.
	w := doJSON(t, rep, http.MethodPost, "/v1/monitors", `{"kind":"cpnn","q":102,"p":0.3,"delta":0.01}`)
	if w.Code != http.StatusOK {
		t.Fatalf("register on replica: %d %s", w.Code, w.Body)
	}
	var reg struct {
		ID uint64 `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &reg); err != nil {
		t.Fatal(err)
	}

	if w := doJSON(t, primary, http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":101,"hi":103}}]}`); w.Code != http.StatusOK {
		t.Fatalf("primary insert: %d %s", w.Code, w.Body)
	}
	target := primary.Snapshot().Version
	waitReplicaVersion(t, rep, target)

	deadline := time.Now().Add(15 * time.Second)
	for {
		w := doJSON(t, rep, http.MethodGet, "/v1/monitors", "")
		var list struct {
			Monitors []struct {
				ID      uint64          `json:"id"`
				Version uint64          `json:"version"`
				Answer  json.RawMessage `json:"answer"`
			} `json:"monitors"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
			t.Fatal(err)
		}
		if len(list.Monitors) == 1 && list.Monitors[0].Version >= target &&
			len(list.Monitors[0].Answer) > len("[]") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica monitor %d never saw the replicated insert: %s", reg.ID, w.Body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
