package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/store"
)

// endpoint indexes the per-endpoint request counters.
type endpoint int

const (
	epCPNN endpoint = iota
	epBatch
	epPNN
	epKNN
	epDataset
	epObjects
	epMonitors
	epSubscribe
	epHealthz
	epMetrics
	epShard // member wire protocol (/internal/shard/*)
	numEndpoints
)

func (e endpoint) String() string {
	switch e {
	case epCPNN:
		return "cpnn"
	case epBatch:
		return "batch"
	case epPNN:
		return "pnn"
	case epKNN:
		return "knn"
	case epDataset:
		return "dataset"
	case epObjects:
		return "objects"
	case epMonitors:
		return "monitors"
	case epSubscribe:
		return "subscribe"
	case epHealthz:
		return "healthz"
	case epMetrics:
		return "metrics"
	case epShard:
		return "shard"
	default:
		return fmt.Sprintf("endpoint(%d)", int(e))
	}
}

// sseReason classifies why an SSE subscription stream ended, for the
// cpnn_server_sse_closed_total{reason=...} counter and the close log line.
type sseReason int

const (
	sseDrain      sseReason = iota // server shutdown drained the stream
	sseClientGone                  // client disconnected (request context done)
	sseLagged                      // subscriber fell behind and was cut
	sseClosed                      // subscription closed (monitor unregistered)
	numSSEReasons
)

func (r sseReason) String() string {
	switch r {
	case sseDrain:
		return "drain"
	case sseClientGone:
		return "client_gone"
	case sseLagged:
		return "lagged"
	case sseClosed:
		return "closed"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// metrics holds the server's operational counters. All fields are atomics so
// the serving path never takes a lock to account for itself; /metrics renders
// them in the Prometheus text exposition format without external
// dependencies.
type metrics struct {
	requests     [numEndpoints]atomic.Int64
	clientErrors atomic.Int64 // 4xx responses
	serverErrors atomic.Int64 // 5xx responses

	inflight  atomic.Int64 // evaluations currently holding a worker slot
	evals     atomic.Int64 // completed engine evaluations
	evalNanos atomic.Int64 // total wall time inside engine evaluations

	reloads atomic.Int64 // successful dataset snapshot swaps

	// followerErrors counts snapshot installs the store-feed follower could
	// not complete — a non-zero value means the served snapshot may lag the
	// durable store (store mode only).
	followerErrors atomic.Int64

	// sseClosed counts ended SSE subscription streams by close reason.
	sseClosed [numSSEReasons]atomic.Int64
}

// write renders every counter plus the cache, snapshot and (when a store is
// attached) durability and continuous-query gauges.
func (m *metrics) write(w io.Writer, c *cache, snap *Snapshot, st *store.Stats, ms *monitor.Stats) {
	const p = "cpnn_server_"
	fmt.Fprintf(w, "# HELP %srequests_total Requests served, by endpoint.\n", p)
	fmt.Fprintf(w, "# TYPE %srequests_total counter\n", p)
	for e := endpoint(0); e < numEndpoints; e++ {
		fmt.Fprintf(w, "%srequests_total{endpoint=%q} %d\n", p, e.String(), m.requests[e].Load())
	}
	fmt.Fprintf(w, "# TYPE %sclient_errors_total counter\n", p)
	fmt.Fprintf(w, "%sclient_errors_total %d\n", p, m.clientErrors.Load())
	fmt.Fprintf(w, "# TYPE %sserver_errors_total counter\n", p)
	fmt.Fprintf(w, "%sserver_errors_total %d\n", p, m.serverErrors.Load())

	fmt.Fprintf(w, "# TYPE %scache_hits_total counter\n", p)
	fmt.Fprintf(w, "%scache_hits_total %d\n", p, c.hits.Load())
	fmt.Fprintf(w, "# TYPE %scache_misses_total counter\n", p)
	fmt.Fprintf(w, "%scache_misses_total %d\n", p, c.misses.Load())
	fmt.Fprintf(w, "# TYPE %scache_shared_total counter\n", p)
	fmt.Fprintf(w, "# HELP %scache_shared_total Requests collapsed onto an identical in-flight evaluation.\n", p)
	fmt.Fprintf(w, "%scache_shared_total %d\n", p, c.shared.Load())
	fmt.Fprintf(w, "# TYPE %scache_evictions_total counter\n", p)
	fmt.Fprintf(w, "%scache_evictions_total %d\n", p, c.evictions.Load())
	fmt.Fprintf(w, "# TYPE %scache_entries gauge\n", p)
	fmt.Fprintf(w, "%scache_entries %d\n", p, c.Len())

	fmt.Fprintf(w, "# TYPE %sinflight_evaluations gauge\n", p)
	fmt.Fprintf(w, "%sinflight_evaluations %d\n", p, m.inflight.Load())
	fmt.Fprintf(w, "# TYPE %sevaluations_total counter\n", p)
	fmt.Fprintf(w, "%sevaluations_total %d\n", p, m.evals.Load())
	fmt.Fprintf(w, "# TYPE %sevaluation_seconds_total counter\n", p)
	fmt.Fprintf(w, "%sevaluation_seconds_total %g\n", p, float64(m.evalNanos.Load())/1e9)

	fmt.Fprintf(w, "# TYPE %ssnapshot_version gauge\n", p)
	fmt.Fprintf(w, "%ssnapshot_version %d\n", p, snap.Version)
	fmt.Fprintf(w, "# TYPE %ssnapshot_objects gauge\n", p)
	fmt.Fprintf(w, "%ssnapshot_objects %d\n", p, snap.Objects)
	fmt.Fprintf(w, "# TYPE %ssnapshot_reloads_total counter\n", p)
	fmt.Fprintf(w, "%ssnapshot_reloads_total %d\n", p, m.reloads.Load())

	fmt.Fprintf(w, "# HELP %ssse_closed_total SSE subscription streams ended, by close reason.\n", p)
	fmt.Fprintf(w, "# TYPE %ssse_closed_total counter\n", p)
	for r := sseReason(0); r < numSSEReasons; r++ {
		fmt.Fprintf(w, "%ssse_closed_total{reason=%q} %d\n", p, r.String(), m.sseClosed[r].Load())
	}

	if st == nil {
		return
	}
	// Durable-store counters (present only with -data-dir / Config.Store).
	fmt.Fprintf(w, "# TYPE %sstore_ops_applied_total counter\n", p)
	fmt.Fprintf(w, "%sstore_ops_applied_total %d\n", p, st.OpsApplied)
	fmt.Fprintf(w, "# TYPE %sstore_commits_total counter\n", p)
	fmt.Fprintf(w, "%sstore_commits_total %d\n", p, st.Commits)
	fmt.Fprintf(w, "# TYPE %sstore_wal_bytes gauge\n", p)
	fmt.Fprintf(w, "%sstore_wal_bytes %d\n", p, st.WALBytes)
	fmt.Fprintf(w, "# TYPE %sstore_wal_appended_bytes_total counter\n", p)
	fmt.Fprintf(w, "%sstore_wal_appended_bytes_total %d\n", p, st.WALAppendedBytes)
	fmt.Fprintf(w, "# TYPE %sstore_wal_records gauge\n", p)
	fmt.Fprintf(w, "# HELP %sstore_wal_records WAL records written since the last checkpoint.\n", p)
	fmt.Fprintf(w, "%sstore_wal_records %d\n", p, st.WALRecords)
	fmt.Fprintf(w, "# TYPE %sstore_checkpoints_total counter\n", p)
	fmt.Fprintf(w, "%sstore_checkpoints_total %d\n", p, st.Checkpoints)
	fmt.Fprintf(w, "# TYPE %sstore_checkpoint_seconds_total counter\n", p)
	fmt.Fprintf(w, "%sstore_checkpoint_seconds_total %g\n", p, float64(st.CheckpointNanos)/1e9)
	if st.LastCheckpointUnixNano > 0 {
		age := time.Since(time.Unix(0, st.LastCheckpointUnixNano)).Seconds()
		if age < 0 {
			age = 0
		}
		fmt.Fprintf(w, "# HELP %sstore_checkpoint_age_seconds Seconds since the last completed checkpoint.\n", p)
		fmt.Fprintf(w, "# TYPE %sstore_checkpoint_age_seconds gauge\n", p)
		fmt.Fprintf(w, "%sstore_checkpoint_age_seconds %g\n", p, age)
	}
	fmt.Fprintf(w, "# HELP %sstore_wal_tail_bytes WAL bytes a reopen would replay (compaction debt since the last checkpoint).\n", p)
	fmt.Fprintf(w, "# TYPE %sstore_wal_tail_bytes gauge\n", p)
	fmt.Fprintf(w, "%sstore_wal_tail_bytes %d\n", p, st.WALBytes)
	fmt.Fprintf(w, "# TYPE %sstore_objects_2d gauge\n", p)
	fmt.Fprintf(w, "%sstore_objects_2d %d\n", p, st.Objects2D)
	fmt.Fprintf(w, "# TYPE %sstore_feed_subscribers gauge\n", p)
	fmt.Fprintf(w, "%sstore_feed_subscribers %d\n", p, st.FeedSubscribers)
	fmt.Fprintf(w, "# TYPE %sstore_feed_dropped_total counter\n", p)
	fmt.Fprintf(w, "%sstore_feed_dropped_total %d\n", p, st.FeedDropped)
	fmt.Fprintf(w, "# TYPE %ssnapshot_follower_errors_total counter\n", p)
	fmt.Fprintf(w, "%ssnapshot_follower_errors_total %d\n", p, m.followerErrors.Load())

	// Page-cache counters: how the disk-backed dataset is being served.
	const pc = "cpnn_pagecache_"
	fmt.Fprintf(w, "# HELP %shits_total Page reads served from the buffer pool.\n", pc)
	fmt.Fprintf(w, "# TYPE %shits_total counter\n", pc)
	fmt.Fprintf(w, "%shits_total %d\n", pc, st.PageCache.Hits)
	fmt.Fprintf(w, "# TYPE %smisses_total counter\n", pc)
	fmt.Fprintf(w, "%smisses_total %d\n", pc, st.PageCache.Misses)
	fmt.Fprintf(w, "# TYPE %sevictions_total counter\n", pc)
	fmt.Fprintf(w, "%sevictions_total %d\n", pc, st.PageCache.Evictions)
	fmt.Fprintf(w, "# TYPE %swritebacks_total counter\n", pc)
	fmt.Fprintf(w, "%swritebacks_total %d\n", pc, st.PageCache.Writebacks)
	fmt.Fprintf(w, "# TYPE %sresident_pages gauge\n", pc)
	fmt.Fprintf(w, "%sresident_pages %d\n", pc, st.PageCache.ResidentPages)
	fmt.Fprintf(w, "# TYPE %sbudget_bytes gauge\n", pc)
	fmt.Fprintf(w, "%sbudget_bytes %d\n", pc, st.CacheBytes)
	fmt.Fprintf(w, "# HELP %sbase_pages Pages in the base checkpoint file (on-disk footprint).\n", pc)
	fmt.Fprintf(w, "# TYPE %sbase_pages gauge\n", pc)
	fmt.Fprintf(w, "%sbase_pages %d\n", pc, st.BasePages)
	fmt.Fprintf(w, "# HELP %soverlay_slots Objects whose payloads are resident in the MVCC overlay (written since the last checkpoint).\n", pc)
	fmt.Fprintf(w, "# TYPE %soverlay_slots gauge\n", pc)
	fmt.Fprintf(w, "%soverlay_slots %d\n", pc, st.OverlaySlots)
	fmt.Fprintf(w, "# TYPE %sbase_slots gauge\n", pc)
	fmt.Fprintf(w, "%sbase_slots %d\n", pc, st.BaseSlots)

	if ms == nil {
		return
	}
	// Continuous-query counters (the monitor rides the store's change feed).
	fmt.Fprintf(w, "# TYPE %smonitor_active gauge\n", p)
	fmt.Fprintf(w, "# HELP %smonitor_active Registered standing queries.\n", p)
	fmt.Fprintf(w, "%smonitor_active %d\n", p, ms.Active)
	fmt.Fprintf(w, "# TYPE %smonitor_subscribers gauge\n", p)
	fmt.Fprintf(w, "%smonitor_subscribers %d\n", p, ms.Subscribers)
	fmt.Fprintf(w, "# TYPE %smonitor_deltas_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_deltas_total %d\n", p, ms.Deltas)
	fmt.Fprintf(w, "# TYPE %smonitor_gaps_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_gaps_total %d\n", p, ms.Gaps)
	fmt.Fprintf(w, "# TYPE %smonitor_reevals_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_reevals_total %d\n", p, ms.ReEvals)
	fmt.Fprintf(w, "# TYPE %smonitor_affected_total counter\n", p)
	fmt.Fprintf(w, "# HELP %smonitor_affected_total (query, commit) pairs the spatial join re-evaluated.\n", p)
	fmt.Fprintf(w, "%smonitor_affected_total %d\n", p, ms.Affected)
	fmt.Fprintf(w, "# TYPE %smonitor_pruned_total counter\n", p)
	fmt.Fprintf(w, "# HELP %smonitor_pruned_total (query, commit) pairs influence pruning skipped.\n", p)
	fmt.Fprintf(w, "%smonitor_pruned_total %d\n", p, ms.Pruned)
	if total := ms.Affected + ms.Pruned; total > 0 {
		fmt.Fprintf(w, "# TYPE %smonitor_pruned_fraction gauge\n", p)
		fmt.Fprintf(w, "%smonitor_pruned_fraction %g\n", p, float64(ms.Pruned)/float64(total))
	}
	fmt.Fprintf(w, "# TYPE %smonitor_pushes_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_pushes_total %d\n", p, ms.Pushes)
	fmt.Fprintf(w, "# TYPE %smonitor_dropped_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_dropped_total %d\n", p, ms.Dropped)
	fmt.Fprintf(w, "# TYPE %smonitor_errors_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_errors_total %d\n", p, ms.Errors)
	fmt.Fprintf(w, "# TYPE %smonitor_early_exit_total counter\n", p)
	fmt.Fprintf(w, "# HELP %smonitor_early_exit_total Re-evaluations resolved without running the verifier (changes provably could not alter the answer).\n", p)
	fmt.Fprintf(w, "%smonitor_early_exit_total %d\n", p, ms.EarlyExits)
	fmt.Fprintf(w, "# TYPE %smonitor_2d_fallback_total counter\n", p)
	fmt.Fprintf(w, "# HELP %smonitor_2d_fallback_total 2-D object changes skipped by the spatial join (standing queries are 1-D).\n", p)
	fmt.Fprintf(w, "%smonitor_2d_fallback_total %d\n", p, ms.TwoDFallbacks)
	fmt.Fprintf(w, "# TYPE %smonitor_folds_reused_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_folds_reused_total %d\n", p, ms.IncrementalReused)
	fmt.Fprintf(w, "# TYPE %smonitor_folds_derived_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_folds_derived_total %d\n", p, ms.IncrementalDerived)
	fmt.Fprintf(w, "# TYPE %smonitor_state_bytes gauge\n", p)
	fmt.Fprintf(w, "# HELP %smonitor_state_bytes Memory retained by per-query incremental evaluation states.\n", p)
	fmt.Fprintf(w, "%smonitor_state_bytes %d\n", p, ms.StateBytes)
	fmt.Fprintf(w, "# TYPE %smonitor_state_queries gauge\n", p)
	fmt.Fprintf(w, "%smonitor_state_queries %d\n", p, ms.StateQueries)
	fmt.Fprintf(w, "# TYPE %smonitor_state_evictions_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_state_evictions_total %d\n", p, ms.StateEvictions)
}

// writeObsMetrics renders the build-info gauge, process uptime, the
// per-phase latency histograms, and every collector the binary registered
// (router member/fan-out, replica apply-lag, monitor push-latency). Appended
// by both the single-store and router-mode /metrics handlers.
func (s *Server) writeObsMetrics(w io.Writer) {
	obs.WriteBuildInfo(w)
	fmt.Fprintf(w, "# HELP cpnn_server_uptime_seconds Seconds since the server was constructed.\n")
	fmt.Fprintf(w, "# TYPE cpnn_server_uptime_seconds gauge\n")
	fmt.Fprintf(w, "cpnn_server_uptime_seconds %g\n", time.Since(s.started).Seconds())
	s.phase.WritePrometheus(w)
	s.extra.WritePrometheus(w)
}
