// Package server turns the C-PNN engine into a long-lived concurrent query
// service — the serving layer the paper's interactive scenarios (LBS, sensor
// monitoring) assume exists around cheap verified queries.
//
// Architecture:
//
//   - Copy-on-write dataset snapshots. The engine lives behind an atomic
//     pointer; POST /v1/dataset builds a fresh engine off to the side and
//     swaps the pointer, so reloads never block readers and every request
//     resolves entirely against one snapshot.
//   - A sharded LRU result cache keyed by (snapshot version, endpoint,
//     quantized query point, constraint, strategy). Concurrent identical
//     queries collapse onto one evaluation (singleflight). Because keys embed
//     the snapshot version, a reload invalidates the whole cache atomically:
//     entries for the old snapshot can never match a new request.
//   - A bounded worker pool: at most MaxInFlight evaluations run at once;
//     excess requests queue until a slot frees and are shed with a 503 once
//     they have waited QueueTimeout.
//
// Responses are deterministic — per-query timings are deliberately excluded
// (they live in /metrics aggregates) so a cached response is byte-identical
// to a fresh evaluation of the same key.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// DefaultCacheEntries is the default result-cache capacity.
const DefaultCacheEntries = 4096

// DefaultCacheShards is the default shard count of the result cache.
const DefaultCacheShards = 16

// DefaultMaxDatasetBytes bounds the body of a dataset reload.
const DefaultMaxDatasetBytes = 1 << 28 // 256 MiB: ~53k 300-bar histogram lines

// DefaultQueueTimeout is how long a request waits for a worker slot before
// the server sheds it with a 503.
const DefaultQueueTimeout = 10 * time.Second

// Config configures a Server. Dataset is required unless Store already
// holds objects; every other zero value selects a sensible default.
type Config struct {
	// Dataset is the initial dataset to serve. With a Store attached it
	// seeds an empty store (durably); a non-empty store's own contents win.
	Dataset *uncertain.Dataset
	// Source labels the initial dataset in /v1/dataset and /healthz output.
	Source string

	// Store, when set, makes every mutation durable: POST/DELETE /v1/objects
	// are enabled, POST /v1/dataset commits a truncate+bulk-insert batch
	// through the write-ahead log, and snapshot versions are monotonic
	// across restarts. Response object IDs are the store's stable IDs. The
	// server owns the store: Close checkpoints and closes it.
	Store *store.Store

	// Replica, when set, runs the server as a read replica: Store is filled
	// in from the follower (leave it nil), reads answer 503 + Retry-After
	// until the follower's first catch-up, and writes redirect to the
	// primary (307 when its HTTP address is known, 403 otherwise). Dataset
	// must be nil — the data comes from the primary. The caller owns the
	// follower and must Close it before closing the server.
	Replica *replica.Follower
	// Replication, when set, is the primary-side replication listener whose
	// counters surface in /metrics and /healthz. The caller owns it.
	Replication *replica.Server

	// ShardRouter, when set, runs the server in scatter-gather mode: queries
	// fan out over the router's shard cluster and writes route to the owning
	// member, replacing the local snapshot entirely. Dataset, Store and
	// Replica must be nil. The caller owns the router (and the cluster
	// behind it) and closes them after the server.
	ShardRouter *shard.Router
	// ShardCluster, set alongside ShardRouter when the member stores live in
	// this process (cpnn-serve -shards K), enables continuous queries over
	// the cluster: the shard monitor joins every member's change feed.
	// Without it (multi-process routing) /v1/monitors answers 501.
	ShardCluster *shard.Cluster
	// ShardMember exposes the member wire protocol under /internal/shard/*
	// so a shard router in another process can scatter to this server.
	// Requires Store. Client-facing writes (/v1/objects, POST /v1/dataset)
	// are refused in member mode — the router owns ID assignment and
	// placement, so writes must flow through it.
	ShardMember bool

	// CacheEntries is the result-cache capacity; 0 means DefaultCacheEntries
	// and a negative value disables result storage (singleflight collapsing
	// of identical in-flight queries stays active).
	CacheEntries int
	// CacheShards is the cache shard count; 0 means DefaultCacheShards.
	CacheShards int
	// Quantum, when positive, snaps query points to multiples of itself
	// before evaluation, so nearby queries share cache entries. The served
	// result is the exact answer for the snapped point (reported back as
	// "query" in the response), never an interpolation.
	Quantum float64
	// MaxInFlight caps concurrent engine evaluations; 0 means
	// 2×GOMAXPROCS. Requests beyond the cap queue.
	MaxInFlight int
	// MaxDatasetBytes bounds dataset-reload request bodies; 0 means
	// DefaultMaxDatasetBytes.
	MaxDatasetBytes int64
	// QueueTimeout bounds how long a request may wait for a worker slot
	// before being shed with a 503; 0 means DefaultQueueTimeout and a
	// negative value waits indefinitely. The wait is server-side on purpose
	// (not tied to the client's connection): a singleflight leader holds the
	// queue position for every collapsed waiter behind it.
	QueueTimeout time.Duration

	// MonitorWorkers bounds the continuous-query re-evaluation pool (store
	// mode only); 0 means the monitor's default (GOMAXPROCS). The monitor
	// itself exists whenever a store is attached: /v1/monitors registers
	// standing queries and /v1/subscribe streams their answer updates.
	MonitorWorkers int
	// MonitorStateBytes caps the memory the monitor retains for per-query
	// incremental evaluation states; 0 means the monitor's default, negative
	// disables the cap.
	MonitorStateBytes int64

	// Logger receives the server's structured logs; nil discards them.
	Logger *slog.Logger
	// Tracer records request spans and serves GET /debug/traces; nil means a
	// private tracer with the default capacity (tracing is always on — its
	// cost is one bounded ring).
	Tracer *obs.Tracer
	// Metrics is an extra collector registry appended to /metrics — binaries
	// register router/follower histograms here so one scrape covers the
	// whole process. nil means a private registry.
	Metrics *obs.Registry
	// SlowQueryThreshold enables the slow-query ring served at GET
	// /debug/slowlog: requests at or above it are recorded with their phase
	// breakdown, cache/fan-out labels and trace ID. 0 disables.
	SlowQueryThreshold time.Duration
}

// storeHasData reports whether an attached store holds any durable objects
// — either family. A disks-only store counts: serving it with an empty 1-D
// dataset is correct, whereas treating it as empty would let a seed dataset
// truncate (and destroy) the stored disks.
func storeHasData(st *store.Store) bool {
	if st == nil {
		return false
	}
	v := st.View()
	return v.Dataset.Len() > 0 || len(v.Disks) > 0
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.ShardRouter != nil {
		if cfg.Dataset != nil || cfg.Store != nil || cfg.Replica != nil || cfg.Replication != nil {
			return cfg, errors.New("server: ShardRouter cannot be combined with Dataset, Store or replication (the data lives in the shard cluster)")
		}
		if cfg.ShardMember {
			return cfg, errors.New("server: a server is a shard router or a shard member, not both")
		}
	}
	if cfg.ShardCluster != nil && cfg.ShardRouter == nil {
		return cfg, errors.New("server: ShardCluster requires ShardRouter")
	}
	if cfg.ShardMember && cfg.Store == nil {
		return cfg, errors.New("server: shard member mode requires a store")
	}
	if cfg.Replica != nil {
		if cfg.Dataset != nil {
			return cfg, errors.New("server: Config.Dataset cannot be combined with Replica (the dataset comes from the primary)")
		}
		if cfg.Store == nil {
			cfg.Store = cfg.Replica.Store()
		} else if cfg.Store != cfg.Replica.Store() {
			return cfg, errors.New("server: Config.Store must be the Replica's own store")
		}
	}
	// A shard member may boot over a still-empty store: the router fills it.
	if cfg.Replica == nil && cfg.ShardRouter == nil && !cfg.ShardMember && !storeHasData(cfg.Store) {
		if cfg.Dataset == nil {
			return cfg, errors.New("server: Config.Dataset is required")
		}
		if cfg.Dataset.Len() == 0 {
			return cfg, errors.New("server: initial dataset is empty")
		}
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = DefaultCacheShards
	}
	if cfg.CacheShards < 1 {
		return cfg, fmt.Errorf("server: cache shards %d < 1", cfg.CacheShards)
	}
	if math.IsNaN(cfg.Quantum) || math.IsInf(cfg.Quantum, 0) || cfg.Quantum < 0 {
		return cfg, fmt.Errorf("server: quantum %g must be finite and >= 0", cfg.Quantum)
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxInFlight < 1 {
		return cfg, fmt.Errorf("server: max in-flight %d < 1", cfg.MaxInFlight)
	}
	if cfg.MaxDatasetBytes == 0 {
		cfg.MaxDatasetBytes = DefaultMaxDatasetBytes
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	return cfg, nil
}

// Snapshot is one immutable generation of the served dataset. Requests load
// the current snapshot once and resolve entirely against it, so a concurrent
// reload can never tear a query.
type Snapshot struct {
	// Engine answers queries over this generation.
	Engine *core.Engine
	// Version increases by one per reload (or per committed store batch);
	// cache keys embed it. With a store attached it is monotonic across
	// restarts.
	Version uint64
	// Objects is the dataset size.
	Objects int
	// Source labels where the dataset came from.
	Source string
	// LoadedAt is when the snapshot became current.
	LoadedAt time.Time
	// IDs maps the engine's dense object IDs to the store's stable IDs;
	// nil (storeless mode) means identity. Responses carry translated IDs.
	IDs []uint64
}

// oid translates an engine (dense) object ID to the externally-visible ID.
func (snap *Snapshot) oid(dense int) int {
	if snap.IDs == nil {
		return dense
	}
	return int(snap.IDs[dense])
}

// Server is a concurrent C-PNN query service over a swappable dataset
// snapshot. Create one with New; it is safe for use from any number of
// goroutines.
type Server struct {
	cfg      Config
	snap     atomic.Pointer[Snapshot]
	cc       *cache
	sem      chan struct{}
	m        metrics
	mux      *http.ServeMux
	draining atomic.Bool

	// monitor is the continuous-query subsystem (store mode only); drainCh
	// closes on Drain so /v1/subscribe streams end and Shutdown can finish.
	monitor   *monitor.Monitor
	drainCh   chan struct{}
	drainOnce sync.Once
	feedDone  chan struct{} // snapshot-follower goroutine exit (store mode)

	// shardMon serves continuous queries in single-process sharded mode;
	// member is the local wire endpoint implementation in member mode.
	shardMon *shard.Monitor
	member   *shard.Local

	// Observability: structured logs, the span ring behind /debug/traces,
	// the slow-query ring behind /debug/slowlog, and the per-phase latency
	// histograms fed from core.Stats.
	log     *slog.Logger
	tracer  *obs.Tracer
	slowlog *obs.SlowLog
	phase   *obs.HistogramVec
	extra   *obs.Registry
	started time.Time
	// traceSample counts headerless requests for 1-in-N trace sampling;
	// phaseObs holds the pre-resolved {filter,derive,verify} histogram
	// children per evaluating endpoint.
	traceSample atomic.Uint64
	phaseObs    [numEndpoints][3]*obs.Histogram

	reloadMu sync.Mutex // serializes snapshot swaps, not reads
}

// New builds a server around an initial dataset (or an already-populated
// store).
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cc:      newCache(cfg.CacheEntries, cfg.CacheShards),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		drainCh: make(chan struct{}),
		log:     obs.Or(cfg.Logger),
		tracer:  cfg.Tracer,
		slowlog: obs.NewSlowLog(0, cfg.SlowQueryThreshold),
		phase: obs.NewHistogramVec("cpnn_query_phase_seconds",
			"Per-phase query evaluation latency, from core.Stats.",
			[]string{"phase", "endpoint"}, nil),
		extra:   cfg.Metrics,
		started: time.Now(),
	}
	if s.tracer == nil {
		s.tracer = obs.NewTracer(0)
	}
	if s.extra == nil {
		s.extra = obs.NewRegistry()
	}
	// Resolve the per-endpoint phase children once: the query hot path then
	// observes through three pointer-stable histograms instead of building
	// a label key per request. Only the evaluating endpoints have phases.
	for _, e := range []endpoint{epCPNN, epPNN, epKNN, epBatch} {
		name := e.String()
		s.phaseObs[e] = [3]*obs.Histogram{
			s.phase.With("filter", name),
			s.phase.With("derive", name),
			s.phase.With("verify", name),
		}
	}
	switch {
	case cfg.ShardRouter != nil:
		// No local snapshot: every query resolves against a fresh
		// scatter-gather cut. Continuous queries need the member change
		// feeds, which exist in-process only with a ShardCluster.
		if cfg.ShardCluster != nil {
			sm, err := shard.NewMonitor(shard.MonitorConfig{
				Router:  cfg.ShardRouter,
				Stores:  cfg.ShardCluster.Stores,
				Workers: cfg.MonitorWorkers,
			})
			if err != nil {
				return nil, err
			}
			s.shardMon = sm
		}
		s.buildMux()
		return s, nil
	case cfg.Replica != nil || cfg.ShardMember || storeHasData(cfg.Store):
		// Serve the store's durable contents; a configured Dataset loses to
		// them (it was only the seed). A replica serves its follower store
		// even when still empty — the replica gate keeps requests away until
		// the first catch-up, and the feed goroutine below installs every
		// replayed view.
		source := cfg.Source
		if source == "" {
			if cfg.Replica != nil {
				source = "replica:" + cfg.Replica.Source()
			} else {
				source = "store"
			}
		}
		if err := s.installLatestView(source); err != nil {
			return nil, err
		}
	default:
		if _, err := s.Reload(cfg.Dataset, cfg.Source); err != nil {
			return nil, err
		}
	}
	s.m.reloads.Store(0) // the initial load is not a reload
	if cfg.Store != nil {
		// The continuous-query subsystem rides the store's change feed.
		pushLat := obs.NewHistogram("cpnn_server_monitor_push_latency_seconds",
			"Commit-to-push latency for standing-query updates.", obs.LagBuckets)
		s.extra.Register(pushLat)
		mon, err := monitor.New(monitor.Config{
			Store: cfg.Store, Workers: cfg.MonitorWorkers,
			MaxStateBytes: cfg.MonitorStateBytes,
			Logger:        s.log.With("subsystem", "monitor"),
			PushLatency:   pushLat,
		})
		if err != nil {
			return nil, err
		}
		s.monitor = mon
		// Follow the feed so the served snapshot (and therefore every cached
		// query) tracks commits from ANY writer, not only this server's own
		// /v1/objects handlers. A tiny buffer suffices — the follower only
		// ever installs the latest view, so gaps are harmless.
		feed, err := cfg.Store.Watch(4)
		if err != nil {
			mon.Close()
			return nil, err
		}
		s.feedDone = make(chan struct{})
		go func() {
			defer close(s.feedDone)
			for range feed.C() {
				if err := s.installLatestView(s.snap.Load().Source); err != nil {
					// The snapshot silently freezing would be invisible;
					// surface it where operators already look.
					s.m.followerErrors.Add(1)
				}
			}
		}()
	}
	s.buildMux()
	return s, nil
}

// Drain flips /healthz to not-ready so load balancers stop routing here
// while in-flight requests finish; queries keep being answered. Open
// /v1/subscribe streams are closed (they would otherwise hold
// http.Server.Shutdown hostage). Call it before http.Server.Shutdown.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close releases the server's durable resources: the continuous-query
// subsystem stops first, then the store takes a final checkpoint (leaving an
// empty WAL for a fast next boot) and closes, flushing everything to disk.
// Safe without a store.
func (s *Server) Close() error {
	if s.shardMon != nil {
		s.shardMon.Close()
	}
	if s.cfg.Store == nil {
		return nil
	}
	s.monitor.Close()
	ckptErr := s.cfg.Store.Checkpoint()
	err := s.cfg.Store.Close()
	<-s.feedDone // the follower exits once the store closes its feed
	if err != nil {
		return err
	}
	return ckptErr
}

// installLatestView publishes the store's current view as the served
// snapshot, unless an even newer one is already installed (concurrent
// committers race benignly; the highest version wins).
func (s *Server) installLatestView(source string) error {
	v := s.cfg.Store.View()
	eng, err := core.NewEngineWithIndex(v.Dataset, v.Index)
	if err != nil {
		return err
	}
	snap := &Snapshot{
		Engine:   eng,
		Version:  v.Version,
		Objects:  v.Dataset.Len(),
		Source:   source,
		LoadedAt: time.Now(),
		IDs:      v.IDs,
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if cur := s.snap.Load(); cur == nil || snap.Version > cur.Version {
		s.snap.Store(snap)
		s.cc.Purge()
	}
	return nil
}

// Snapshot returns the current dataset snapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Reload atomically replaces the served dataset: the new engine is built
// entirely off to the side, then one pointer store makes it current. Readers
// that already hold the old snapshot finish against it; the result cache is
// purged (old entries are version-keyed and could never be served anyway —
// the purge just reclaims their memory immediately).
//
// With a store attached the reload is durable: it commits as one atomic
// truncate + bulk-insert batch through the WAL, so the loaded dataset
// survives restarts and the version bump stays monotonic across them.
func (s *Server) Reload(ds *uncertain.Dataset, source string) (*Snapshot, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("server: refusing to load an empty dataset")
	}
	if s.cfg.Store != nil {
		ops, err := store.DatasetOps(ds)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		if _, err := s.cfg.Store.Apply(ops); err != nil {
			return nil, storeError(err)
		}
		s.m.reloads.Add(1)
		if err := s.installLatestView(source); err != nil {
			return nil, err
		}
		return s.snap.Load(), nil
	}
	eng, err := core.NewEngine(ds)
	if err != nil {
		return nil, err
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	var version uint64 = 1
	if old := s.snap.Load(); old != nil {
		version = old.Version + 1
	}
	snap := &Snapshot{
		Engine:   eng,
		Version:  version,
		Objects:  ds.Len(),
		Source:   source,
		LoadedAt: time.Now(),
	}
	s.snap.Store(snap)
	s.cc.Purge()
	s.m.reloads.Add(1)
	return snap, nil
}

// Handler returns the server's HTTP handler: the mux wrapped in the ingress
// middleware that mints/adopts the request's trace span, collects per-request
// annotations, and feeds the slow-query log.
func (s *Server) Handler() http.Handler { return s.ingress(s.mux) }

func (s *Server) buildMux() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/monitors", s.handleMonitors)
	s.mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	if s.cfg.ShardRouter != nil {
		// Router mode swaps the snapshot-backed handlers for scatter-gather
		// ones; the monitor endpoints above dispatch through the shared
		// backend helpers.
		s.mux.HandleFunc("/v1/cpnn", s.handleShardCPNN)
		s.mux.HandleFunc("/v1/batch", s.handleShardBatch)
		s.mux.HandleFunc("/v1/pnn", s.handleShardPNN)
		s.mux.HandleFunc("/v1/knn", s.handleShardKNN)
		s.mux.HandleFunc("/v1/dataset", s.handleShardDataset)
		s.mux.HandleFunc("/v1/objects", s.handleShardObjects)
		s.mux.HandleFunc("/healthz", s.handleShardHealthz)
		s.mux.HandleFunc("/metrics", s.handleShardMetrics)
		s.mux.Handle("/debug/traces", s.tracer)
		s.mux.Handle("/debug/slowlog", s.slowlog)
		return
	}
	s.mux.HandleFunc("/v1/cpnn", s.handleCPNN)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/pnn", s.handlePNN)
	s.mux.HandleFunc("/v1/knn", s.handleKNN)
	s.mux.HandleFunc("/v1/dataset", s.handleDataset)
	s.mux.HandleFunc("/v1/objects", s.handleObjects)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.Handle("/debug/traces", s.tracer)
	s.mux.Handle("/debug/slowlog", s.slowlog)
	if s.cfg.ShardMember {
		s.member = shard.NewLocal(s.cfg.Store)
		s.mux.HandleFunc("/internal/shard/info", s.handleShardInfo)
		s.mux.HandleFunc("/internal/shard/bound", s.handleShardBound)
		s.mux.HandleFunc("/internal/shard/gather", s.handleShardGather)
		s.mux.HandleFunc("/internal/shard/apply", s.handleShardApply)
	}
}

// snapPoint quantizes a query point to the configured granularity. The
// snapped point is what gets evaluated, so cached and fresh answers for one
// key are identical by construction.
func (s *Server) snapPoint(q float64) float64 {
	if s.cfg.Quantum <= 0 {
		return q
	}
	return math.Round(q/s.cfg.Quantum) * s.cfg.Quantum
}

// evaluate runs fn under the bounded worker pool. Admission control is
// deliberately server-side: the wait for a slot is bounded by QueueTimeout,
// not by any client's connection, because a singleflight leader must survive
// its own client disconnecting — collapsed waiters with live connections
// depend on its result, and the completed result still lands in the cache.
// Waiters abandon early through the context handed to cache.Do instead.
func (s *Server) evaluate(fn func() ([]byte, error)) ([]byte, error) {
	var timeout <-chan time.Time
	if s.cfg.QueueTimeout > 0 {
		timer := time.NewTimer(s.cfg.QueueTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case s.sem <- struct{}{}:
	case <-timeout:
		return nil, &httpError{
			status: http.StatusServiceUnavailable,
			msg: fmt.Sprintf("server: overloaded, no worker slot freed within %v",
				s.cfg.QueueTimeout),
		}
	}
	defer func() { <-s.sem }()
	s.m.inflight.Add(1)
	defer s.m.inflight.Add(-1)
	start := time.Now()
	out, err := fn()
	s.m.evalNanos.Add(time.Since(start).Nanoseconds())
	s.m.evals.Add(1)
	return out, err
}

// ---- request parsing ---------------------------------------------------

// httpError is an error with a dedicated HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// checkFinite is the one shared guard against NaN/Inf query coordinates: the
// single-query parsers and the batch body validator both route through it,
// so a non-finite coordinate is always a 400, never a 500 from deep inside
// the engine.
func checkFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return badRequest("parameter %q: %g is not a finite number", name, v)
	}
	return nil
}

func queryFloat(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, badRequest("missing required parameter %q", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, badRequest("parameter %q: %q is not a finite number", name, raw)
	}
	if err := checkFinite(name, v); err != nil {
		return 0, err
	}
	return v, nil
}

func queryFloatDefault(r *http.Request, name string, def float64) (float64, error) {
	if r.URL.Query().Get(name) == "" {
		return def, nil
	}
	return queryFloat(r, name)
}

func queryIntDefault(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("parameter %q: %q is not an integer", name, raw)
	}
	return v, nil
}

// constraintParam parses and validates the C-PNN constraint, rejecting
// out-of-range P and Delta before any engine work happens.
func constraintParam(r *http.Request) (verify.Constraint, error) {
	p, err := queryFloatDefault(r, "p", 0.3)
	if err != nil {
		return verify.Constraint{}, err
	}
	delta, err := queryFloatDefault(r, "delta", 0.01)
	if err != nil {
		return verify.Constraint{}, err
	}
	c := verify.Constraint{P: p, Delta: delta}
	if err := c.Validate(); err != nil {
		return verify.Constraint{}, badRequest("%v", err)
	}
	return c, nil
}

func strategyParam(r *http.Request) (core.Strategy, error) {
	return parseStrategy(r.URL.Query().Get("strategy"))
}

func parseStrategy(raw string) (core.Strategy, error) {
	switch raw {
	case "", "vr":
		return core.VR, nil
	case "refine":
		return core.Refine, nil
	case "basic":
		return core.Basic, nil
	default:
		return 0, badRequest("unknown strategy %q (vr, refine, basic)", raw)
	}
}

// ---- responses ---------------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusServiceUnavailable
	}
	if status >= 500 {
		s.m.serverErrors.Add(1)
	} else {
		s.m.clientErrors.Add(1)
	}
	if status == http.StatusServiceUnavailable {
		// Overload shed, drain, or a briefly unavailable store: all are
		// transient, so tell clients when to come back.
		w.Header().Set("Retry-After", sseRetryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

func (s *Server) writeCached(w http.ResponseWriter, r *http.Request, body []byte, src Source) {
	obs.ReqInfoFrom(r.Context()).Set("cache", src.String())
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", src.String())
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// answerJSON is one classified object of a C-PNN or k-NN response.
type answerJSON struct {
	ID     int     `json:"id"`
	L      float64 `json:"l"`
	U      float64 `json:"u"`
	Status string  `json:"status"`
}

// statsJSON carries the deterministic per-query statistics. Timings are
// excluded on purpose: they vary run to run and would break the guarantee
// that cached and fresh responses are byte-identical.
type statsJSON struct {
	Candidates   int      `json:"candidates"`
	Subregions   int      `json:"subregions"`
	FMin         float64  `json:"fmin"`
	Verifiers    []string `json:"verifiers,omitempty"`
	UnknownAfter []int    `json:"unknown_after,omitempty"`
	Refined      int      `json:"refined"`
	Integrations int      `json:"integrations"`
}

type cpnnResponse struct {
	Query      float64      `json:"query"`
	P          float64      `json:"p"`
	Delta      float64      `json:"delta"`
	Strategy   string       `json:"strategy"`
	Version    uint64       `json:"version"`
	Answers    []answerJSON `json:"answers"`
	Candidates []answerJSON `json:"candidates,omitempty"`
	Stats      statsJSON    `json:"stats"`
}

type probabilityJSON struct {
	ID int     `json:"id"`
	P  float64 `json:"p"`
}

type pnnResponse struct {
	Query         float64           `json:"query"`
	Version       uint64            `json:"version"`
	Probabilities []probabilityJSON `json:"probabilities"`
	Stats         statsJSON         `json:"stats"`
}

type knnResponse struct {
	Query   float64      `json:"query"`
	K       int          `json:"k"`
	P       float64      `json:"p"`
	Delta   float64      `json:"delta"`
	Samples int          `json:"samples"`
	Seed    int64        `json:"seed"`
	Version uint64       `json:"version"`
	Answers []answerJSON `json:"answers"`
}

type datasetResponse struct {
	Version  uint64    `json:"version"`
	Objects  int       `json:"objects"`
	Source   string    `json:"source"`
	LoadedAt time.Time `json:"loaded_at"`
}

// toAnswers converts engine answers to response objects, translating dense
// engine IDs to the snapshot's stable IDs. Translated answers are re-sorted
// by external ID so clients always see ID-ordered output; the identity
// mapping (storeless mode) is already sorted and stays byte-identical.
func toAnswers(in []core.Answer, snap *Snapshot) []answerJSON {
	out := make([]answerJSON, len(in))
	for i, a := range in {
		out[i] = answerJSON{ID: snap.oid(a.ID), L: a.Bounds.L, U: a.Bounds.U, Status: a.Status.String()}
	}
	if snap.IDs != nil {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	return out
}

// ---- handlers ----------------------------------------------------------

func (s *Server) handleCPNN(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epCPNN].Add(1)
	if err := s.replicaGate(); err != nil {
		s.writeError(w, err)
		return
	}
	q, err := queryFloat(r, "q")
	if err != nil {
		s.writeError(w, err)
		return
	}
	c, err := constraintParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	strat, err := strategyParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	all := r.URL.Query().Get("all") == "1"

	snap := s.snap.Load()
	body, src, err := s.cpnnBody(r.Context(), epCPNN, snap, s.snapPoint(q), c, strat, all)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeCached(w, r, body, src)
}

// cpnnBody serves one (already quantized) C-PNN evaluation through the
// result cache: hit, singleflight-collapse onto an identical in-flight
// evaluation, or evaluate under the worker pool. Both the single-query
// endpoint and every point of a batch request route through here, so they
// share keys — a batch warms the cache for singles and vice versa.
func (s *Server) cpnnBody(ctx context.Context, ep endpoint, snap *Snapshot, qq float64, c verify.Constraint, strat core.Strategy, all bool) ([]byte, Source, error) {
	key := fmt.Sprintf("cpnn|%d|%x|%x|%x|%d|%t",
		snap.Version, math.Float64bits(qq), math.Float64bits(c.P), math.Float64bits(c.Delta), strat, all)
	return s.cc.Do(ctx, key, func() ([]byte, error) {
		return s.evaluate(func() ([]byte, error) {
			body, st, err := cpnnPayload(snap, qq, c, strat, all)
			if err == nil {
				s.observePhases(ctx, ep, st)
			}
			return body, err
		})
	})
}

// cpnnPayload evaluates one C-PNN query against a snapshot and renders the
// response body. Both the snapshot-backed and the scatter-gather serving
// paths route through here, so a sharded server's body differs from a
// single server's only in the version field.
func cpnnPayload(snap *Snapshot, qq float64, c verify.Constraint, strat core.Strategy, all bool) ([]byte, core.Stats, error) {
	res, err := snap.Engine.CPNN(qq, c, core.Options{Strategy: strat})
	if err != nil {
		return nil, core.Stats{}, err
	}
	resp := cpnnResponse{
		Query:    qq,
		P:        c.P,
		Delta:    c.Delta,
		Strategy: strat.String(),
		Version:  snap.Version,
		Answers:  toAnswers(res.Answers, snap),
		Stats: statsJSON{
			Candidates:   res.Stats.Candidates,
			Subregions:   res.Stats.Subregions,
			FMin:         res.Stats.FMin,
			Verifiers:    res.Stats.VerifiersApplied,
			UnknownAfter: res.Stats.UnknownAfter,
			Refined:      res.Stats.RefinedObjects,
			Integrations: res.Stats.Integrations,
		},
	}
	if all {
		resp.Candidates = toAnswers(res.Candidates, snap)
	}
	body, err := json.Marshal(resp)
	return body, res.Stats, err
}

func (s *Server) handlePNN(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epPNN].Add(1)
	if err := s.replicaGate(); err != nil {
		s.writeError(w, err)
		return
	}
	q, err := queryFloat(r, "q")
	if err != nil {
		s.writeError(w, err)
		return
	}
	snap := s.snap.Load()
	qq := s.snapPoint(q)
	key := fmt.Sprintf("pnn|%d|%x", snap.Version, math.Float64bits(qq))
	body, src, err := s.cc.Do(r.Context(), key, func() ([]byte, error) {
		return s.evaluate(func() ([]byte, error) {
			body, st, err := pnnPayload(snap, qq)
			if err == nil {
				s.observePhases(r.Context(), epPNN, st)
			}
			return body, err
		})
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeCached(w, r, body, src)
}

// pnnPayload evaluates one PNN query against a snapshot and renders the
// response body (shared by the snapshot and scatter-gather paths).
func pnnPayload(snap *Snapshot, qq float64) ([]byte, core.Stats, error) {
	probs, st, err := snap.Engine.PNN(qq, core.Options{})
	if err != nil {
		return nil, core.Stats{}, err
	}
	out := make([]probabilityJSON, len(probs))
	for i, pr := range probs {
		out[i] = probabilityJSON{ID: snap.oid(pr.ID), P: pr.P}
	}
	body, err := json.Marshal(pnnResponse{
		Query:         qq,
		Version:       snap.Version,
		Probabilities: out,
		Stats: statsJSON{
			Candidates: st.Candidates,
			Subregions: st.Subregions,
			FMin:       st.FMin,
			Refined:    st.RefinedObjects,
		},
	})
	return body, st, err
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epKNN].Add(1)
	if err := s.replicaGate(); err != nil {
		s.writeError(w, err)
		return
	}
	q, err := queryFloat(r, "q")
	if err != nil {
		s.writeError(w, err)
		return
	}
	c, err := constraintParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	k, err := queryIntDefault(r, "k", 0)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if k < 1 {
		s.writeError(w, badRequest("parameter \"k\" must be >= 1, got %d", k))
		return
	}
	samples, err := queryIntDefault(r, "samples", 10000)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if samples < 1 {
		s.writeError(w, badRequest("parameter \"samples\" must be >= 1, got %d", samples))
		return
	}
	seed, err := queryIntDefault(r, "seed", 1)
	if err != nil {
		s.writeError(w, err)
		return
	}
	all := r.URL.Query().Get("all") == "1"

	snap := s.snap.Load()
	qq := s.snapPoint(q)
	key := fmt.Sprintf("knn|%d|%x|%x|%x|%d|%d|%d|%t",
		snap.Version, math.Float64bits(qq), math.Float64bits(c.P), math.Float64bits(c.Delta),
		k, samples, seed, all)
	body, src, err := s.cc.Do(r.Context(), key, func() ([]byte, error) {
		return s.evaluate(func() ([]byte, error) {
			body, st, err := knnPayload(snap, qq, c, k, samples, int64(seed), all, nil)
			if err == nil {
				s.observePhases(r.Context(), epKNN, st)
			}
			return body, err
		})
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeCached(w, r, body, src)
}

// knnPayload evaluates one C-kNN query against a snapshot and renders the
// response body. ids, when non-nil, keys each object's sampling RNG stream
// by its stable ID instead of its dense index: the scatter-gather path uses
// it so answers are invariant to how the data is sharded (at the price of
// diverging from a single snapshot server's dense streams for the same
// seed).
func knnPayload(snap *Snapshot, qq float64, c verify.Constraint, k, samples int, seed int64, all bool, ids []uint64) ([]byte, core.Stats, error) {
	answers, st, err := snap.Engine.CKNN(qq, c, core.KNNOptions{
		K:       k,
		Samples: samples,
		Seed:    seed,
		IDs:     ids,
	})
	if err != nil {
		return nil, core.Stats{}, err
	}
	resp := knnResponse{
		Query:   qq,
		K:       k,
		P:       c.P,
		Delta:   c.Delta,
		Samples: samples,
		Seed:    seed,
		Version: snap.Version,
		Answers: []answerJSON{}, // marshal as [], not null, like the other endpoints
	}
	for _, a := range answers {
		if !all && a.Status != verify.Satisfy {
			continue
		}
		resp.Answers = append(resp.Answers,
			answerJSON{ID: snap.oid(a.ID), L: a.Bounds.L, U: a.Bounds.U, Status: a.Status.String()})
	}
	body, err := json.Marshal(resp)
	return body, st, err
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epDataset].Add(1)
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, snapshotInfo(s.snap.Load()))
	case http.MethodPost:
		if s.redirectToPrimary(w, r) {
			return
		}
		if err := s.memberWriteGate(); err != nil {
			s.writeError(w, err)
			return
		}
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxDatasetBytes)
		ds, err := uncertain.Read(body)
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				s.writeError(w, &httpError{
					status: http.StatusRequestEntityTooLarge,
					msg:    fmt.Sprintf("dataset body exceeds the %d-byte limit", tooLarge.Limit),
				})
				return
			}
			s.writeError(w, badRequest("parsing dataset: %v", err))
			return
		}
		if ds.Len() == 0 {
			s.writeError(w, badRequest("dataset body holds no objects"))
			return
		}
		if err := ds.Validate(); err != nil {
			s.writeError(w, badRequest("invalid dataset: %v", err))
			return
		}
		source := r.URL.Query().Get("source")
		if source == "" {
			source = "upload"
		}
		snap, err := s.Reload(ds, source)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, snapshotInfo(snap))
	default:
		s.m.clientErrors.Add(1)
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func snapshotInfo(snap *Snapshot) datasetResponse {
	return datasetResponse{
		Version:  snap.Version,
		Objects:  snap.Objects,
		Source:   snap.Source,
		LoadedAt: snap.LoadedAt,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epHealthz].Add(1)
	snap := s.snap.Load()
	body := map[string]any{
		"status":         "ok",
		"version":        snap.Version,
		"objects":        snap.Objects,
		"build":          obs.Version,
		"uptime_seconds": time.Since(s.started).Seconds(),
	}
	if s.cfg.Store != nil {
		// The store's own version/seq can briefly run ahead of the served
		// snapshot while a commit's view install is in flight; operators
		// watching compaction or replication lag want the durable truth.
		v := s.cfg.Store.View()
		body["store_version"] = v.Version
		body["store_seq"] = v.Seq
		body["role"] = s.cfg.Store.Role().String()
		st := s.cfg.Store.Stats()
		body["pagecache"] = map[string]any{
			"budget_bytes":   st.CacheBytes,
			"base_pages":     st.BasePages,
			"resident_pages": st.PageCache.ResidentPages,
			"hits":           st.PageCache.Hits,
			"misses":         st.PageCache.Misses,
			"evictions":      st.PageCache.Evictions,
			"overlay_slots":  st.OverlaySlots,
			"base_slots":     st.BaseSlots,
		}
	}
	if s.cfg.Replica != nil {
		body["replication"] = replicationHealth(s.cfg.Replica)
	}
	if s.cfg.Replication != nil {
		rst := s.cfg.Replication.Stats()
		body["replication_server"] = map[string]any{
			"addr":            s.cfg.Replication.Addr(),
			"followers":       rst.Followers,
			"records_shipped": rst.RecordsShipped,
			"bytes_shipped":   rst.BytesShipped,
			"snapshots_sent":  rst.SnapshotsSent,
		}
	}
	if s.draining.Load() {
		// Not-ready during drain: load balancers stop sending traffic while
		// requests already here (and any still arriving) keep being served.
		// Retry-After tells well-behaved clients when to probe again.
		body["status"] = "draining"
		w.Header().Set("Retry-After", sseRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	if err := s.replicaGate(); err != nil {
		// Not-ready until the first catch-up: a load balancer should not
		// route reads to a replica that would answer from a partial replay.
		body["status"] = "syncing"
		w.Header().Set("Retry-After", sseRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epMetrics].Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var st *store.Stats
	var ms *monitor.Stats
	if s.cfg.Store != nil {
		v := s.cfg.Store.Stats()
		st = &v
	}
	if s.monitor != nil {
		v := s.monitor.Stats()
		ms = &v
	}
	s.m.write(w, s.cc, s.snap.Load(), st, ms)
	s.writeObsMetrics(w)
	var fs *replica.FollowerStats
	var rs *replica.ServerStats
	if s.cfg.Replica != nil {
		v := s.cfg.Replica.Stats()
		fs = &v
	}
	if s.cfg.Replication != nil {
		v := s.cfg.Replication.Stats()
		rs = &v
	}
	writeReplicaMetrics(w, fs, rs)
}
