package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/verify"
)

// Continuous queries: POST /v1/monitors registers a standing C-PNN/PNN/k-NN
// query, GET lists them, DELETE removes one, and GET /v1/subscribe streams
// answer updates over Server-Sent Events as the store commits batches. The
// endpoints require a store (the change feed is the store's); without one
// they answer 501 like /v1/objects.

// monitorRequest is the POST /v1/monitors body. P and Delta are pointers so
// an explicit 0 (valid for delta, rejected for p) is distinguishable from an
// omitted field taking the default — matching /v1/cpnn's query-parameter
// semantics.
type monitorRequest struct {
	Kind     string   `json:"kind"`
	Q        float64  `json:"q"`
	P        *float64 `json:"p,omitempty"`
	Delta    *float64 `json:"delta,omitempty"`
	Strategy string   `json:"strategy,omitempty"`
	K        int      `json:"k,omitempty"`
	Samples  int      `json:"samples,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
}

// decodeMonitorRequest parses and validates a registration body into a spec.
// It is the fuzzed entry point of the monitor API surface.
func decodeMonitorRequest(data []byte) (monitor.Spec, error) {
	var req monitorRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return monitor.Spec{}, badRequest("parsing monitor body: %v", err)
	}
	if dec.More() {
		return monitor.Spec{}, badRequest("trailing data after monitor body")
	}
	kind, err := monitor.ParseKind(req.Kind)
	if err != nil {
		return monitor.Spec{}, badRequest("%v", err)
	}
	if err := checkFinite("q", req.Q); err != nil {
		return monitor.Spec{}, err
	}
	spec := monitor.Spec{Kind: kind, Q: req.Q, K: req.K, Samples: req.Samples, Seed: req.Seed}
	switch kind {
	case monitor.KindCPNN, monitor.KindKNN:
		spec.Constraint = verify.Constraint{P: 0.3, Delta: 0.01} // /v1/cpnn's defaults
		if req.P != nil {
			if err := checkFinite("p", *req.P); err != nil {
				return monitor.Spec{}, err
			}
			spec.Constraint.P = *req.P
		}
		if req.Delta != nil {
			if err := checkFinite("delta", *req.Delta); err != nil {
				return monitor.Spec{}, err
			}
			spec.Constraint.Delta = *req.Delta
		}
	}
	if kind == monitor.KindCPNN {
		strat, err := parseStrategy(req.Strategy)
		if err != nil {
			return monitor.Spec{}, err
		}
		spec.Strategy = strat
	}
	if kind == monitor.KindKNN && spec.Samples == 0 {
		spec.Samples = 10000
	}
	if err := spec.Validate(); err != nil {
		return monitor.Spec{}, badRequest("%v", err)
	}
	return spec, nil
}

// monitorJSON is one standing query in API responses and SSE payloads.
type monitorJSON struct {
	ID      uint64          `json:"id"`
	Kind    string          `json:"kind"`
	Q       float64         `json:"q"`
	Version uint64          `json:"version"`
	Answer  json.RawMessage `json:"answer"`
}

func monitorInfo(st *monitor.State) monitorJSON {
	return monitorJSON{
		ID: st.ID, Kind: st.Spec.Kind.String(), Q: st.Spec.Q,
		Version: st.Version, Answer: st.Answer,
	}
}

func (s *Server) requireMonitor(w http.ResponseWriter) bool {
	if s.monitor != nil || s.shardMon != nil {
		return true
	}
	msg := "continuous queries require a store (run cpnn-serve with -data-dir)"
	if s.cfg.ShardRouter != nil {
		// Multi-process routing: the member change feeds live in the member
		// processes, so this router cannot host standing queries.
		msg = "continuous queries require in-process member stores (run cpnn-serve with -shards)"
	}
	s.writeError(w, &httpError{status: http.StatusNotImplemented, msg: msg})
	return false
}

func (s *Server) handleMonitors(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epMonitors].Add(1)
	if !s.requireMonitor(w) {
		return
	}
	// Standing queries are local to each node — a replica's monitors ride
	// its own replayed change feed — but registering against a half-synced
	// replay would answer from a state the primary never served.
	if err := s.replicaGate(); err != nil {
		s.writeError(w, err)
		return
	}
	switch r.Method {
	case http.MethodPost:
		body, err := readBody(w, r, s.cfg.MaxDatasetBytes)
		if err != nil {
			s.writeError(w, err)
			return
		}
		spec, err := decodeMonitorRequest(body)
		if err != nil {
			s.writeError(w, err)
			return
		}
		st, err := s.monitorRegister(spec)
		if err != nil {
			if errors.Is(err, monitor.ErrClosed) || errors.Is(err, shard.ErrUnavailable) {
				err = &httpError{status: http.StatusServiceUnavailable, msg: err.Error()}
			} else {
				err = badRequest("%v", err)
			}
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, monitorInfo(st))
	case http.MethodGet:
		states := s.monitorStates()
		out := make([]monitorJSON, len(states))
		for i, st := range states {
			out[i] = monitorInfo(st)
		}
		writeJSON(w, http.StatusOK, struct {
			Monitors []monitorJSON `json:"monitors"`
		}{out})
	case http.MethodDelete:
		raw := r.URL.Query().Get("id")
		id, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeError(w, badRequest("parameter %q: %q is not a monitor id", "id", raw))
			return
		}
		if !s.monitorRemove(id) {
			s.writeError(w, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("%v %d", monitor.ErrUnknownMonitor, id)})
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Deleted uint64 `json:"deleted"`
		}{id})
	default:
		s.m.clientErrors.Add(1)
		w.Header().Set("Allow", "GET, POST, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// readBody drains a size-capped request body.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, &httpError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("body exceeds the %d-byte limit", tooLarge.Limit),
			}
		}
		return nil, badRequest("reading body: %v", err)
	}
	return data, nil
}

// sseRetryAfter is the Retry-After value of draining 503s: long enough for a
// rolling restart's load-balancer flip, short enough to reconnect promptly.
const sseRetryAfter = "1"

// handleSubscribe streams monitor updates as Server-Sent Events. ?ids=1,2
// narrows the stream; without it every standing query (present and future)
// is streamed. Each connection first receives one "snapshot" event per
// subscribed monitor (its current answer), then "update" events as answers
// change, ": ping" comments as keep-alives, and an explicit "lagged" event
// if it reads too slowly and updates were dropped (resynchronize via GET
// /v1/monitors). Draining closes the stream so http.Server.Shutdown can
// finish.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epSubscribe].Add(1)
	if !s.requireMonitor(w) {
		return
	}
	if err := s.replicaGate(); err != nil {
		s.writeError(w, err)
		return
	}
	if r.Method != http.MethodGet {
		s.m.clientErrors.Add(1)
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", sseRetryAfter)
		s.writeError(w, &httpError{status: http.StatusServiceUnavailable, msg: "server is draining"})
		return
	}
	ids, err := parseIDList(r.URL.Query().Get("ids"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, fmt.Errorf("response writer does not support streaming"))
		return
	}
	sub, err := s.monitorSubscribe(ids, 0)
	if err != nil {
		s.writeError(w, &httpError{status: http.StatusServiceUnavailable, msg: err.Error()})
		return
	}
	defer sub.Close()

	// Structured close accounting: every stream ends for exactly one reason,
	// counted in cpnn_server_sse_closed_total and logged with the trace ID.
	reason := sseClosed
	sawLag := false
	start := time.Now()
	defer func() {
		if sawLag && reason == sseClosed {
			// A lagged subscriber is cut by the monitor; attribute the close
			// to the lag rather than a plain unsubscribe.
			reason = sseLagged
		}
		s.m.sseClosed[reason].Add(1)
		s.log.Info("sse stream closed",
			"reason", reason.String(),
			"trace_id", obs.TraceID(r.Context()),
			"ids", len(ids),
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond))
		obs.ReqInfoFrom(r.Context()).Set("sse_close_reason", reason.String())
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// Baseline: the current answer of every subscribed monitor, so a client
	// can diff updates without a second request.
	want := map[uint64]bool{}
	for _, id := range ids {
		want[id] = true
	}
	for _, st := range s.monitorStates() {
		if len(want) > 0 && !want[st.ID] {
			continue
		}
		writeSSE(w, "snapshot", monitorInfo(st))
	}
	flusher.Flush()

	ping := time.NewTicker(15 * time.Second)
	defer ping.Stop()
	for {
		select {
		case <-r.Context().Done():
			reason = sseClientGone
			return
		case <-s.drainCh:
			reason = sseDrain
			return
		case <-ping.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			switch ev.Type {
			case monitor.EventUpdate:
				writeSSE(w, "update", ev.Update)
			case monitor.EventLagged:
				sawLag = true
				writeSSE(w, "lagged", struct {
					Dropped bool `json:"dropped"`
				}{true})
			}
			flusher.Flush()
		}
	}
}

// writeSSE frames one Server-Sent Event.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// parseIDList parses a comma-separated monitor ID list; empty means all.
func parseIDList(raw string) ([]uint64, error) {
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		id, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, badRequest("parameter %q: %q is not a monitor id", "ids", p)
		}
		out = append(out, id)
	}
	return out, nil
}
