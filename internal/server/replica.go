package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/replica"
)

// Replica-mode serving: with Config.Replica set the server is a read
// replica — its store is the follower's, reads are gated behind the first
// catch-up, and writes bounce to the primary. This file holds the gate, the
// write redirect, and the replication metric families; the wiring lives in
// server.go next to the rest of the request path.

// replicaGate rejects reads until the follower's first catch-up, so a
// replica never serves answers from a half-replayed bootstrap. The 503
// carries Retry-After (writeError adds it), matching the drain protocol.
func (s *Server) replicaGate() error {
	if s.cfg.Replica != nil && !s.cfg.Replica.CaughtUp() {
		return &httpError{
			status: http.StatusServiceUnavailable,
			msg:    "replica: syncing, not yet caught up with the primary",
		}
	}
	return nil
}

// redirectToPrimary handles a mutation request on a replica: 307 to the
// primary's advertised HTTP address when the stream has carried one (307
// preserves method and body, so the client's write replays verbatim), 403
// when the primary never advertised. Reports whether it handled the request;
// on a primary it never does.
func (s *Server) redirectToPrimary(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.Replica == nil {
		return false
	}
	if base := s.cfg.Replica.PrimaryHTTP(); base != "" {
		target := strings.TrimSuffix(base, "/") + r.URL.RequestURI()
		w.Header().Set("Location", target)
		writeJSON(w, http.StatusTemporaryRedirect, errorResponse{
			Error: "replica is read-only; write to the primary at " + target,
		})
		return true
	}
	s.m.clientErrors.Add(1)
	s.writeError(w, &httpError{
		status: http.StatusForbidden,
		msg:    "replica is read-only and the primary advertised no HTTP address",
	})
	return true
}

// replicationHealth is the /healthz "replication" object on a replica.
func replicationHealth(f *replica.Follower) map[string]any {
	st := f.Stats()
	rep := map[string]any{
		"source":              f.Source(),
		"connected":           st.Connected,
		"caught_up":           st.CaughtUp,
		"applied_seq":         st.AppliedSeq,
		"applied_version":     st.AppliedVersion,
		"primary_seq":         st.PrimarySeq,
		"primary_version":     st.PrimaryVersion,
		"lag_versions":        st.Lag.Versions,
		"lag_seconds":         st.Lag.Seconds,
		"lag_bytes":           st.Lag.Bytes,
		"reconnects":          st.Reconnects,
		"snapshot_bootstraps": st.SnapshotBootstraps,
	}
	if h := f.PrimaryHTTP(); h != "" {
		rep["primary_http"] = h
	}
	if e := f.LastError(); e != "" {
		rep["last_error"] = e
	}
	return rep
}

// writeReplicaMetrics renders the follower-side (cpnn_server_replica_*) and
// primary-side (cpnn_server_replication_*) metric families. Either argument
// may be nil; a primary has only rs, a replica only fs.
func writeReplicaMetrics(w io.Writer, fs *replica.FollowerStats, rs *replica.ServerStats) {
	const p = "cpnn_server_"
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	if fs != nil {
		fmt.Fprintf(w, "# TYPE %sreplica_connected gauge\n", p)
		fmt.Fprintf(w, "# HELP %sreplica_connected 1 while a replication stream to the primary is live.\n", p)
		fmt.Fprintf(w, "%sreplica_connected %d\n", p, b2i(fs.Connected))
		fmt.Fprintf(w, "# TYPE %sreplica_caught_up gauge\n", p)
		fmt.Fprintf(w, "# HELP %sreplica_caught_up 1 once the first full catch-up happened (read serving gates on it).\n", p)
		fmt.Fprintf(w, "%sreplica_caught_up %d\n", p, b2i(fs.CaughtUp))
		fmt.Fprintf(w, "# TYPE %sreplica_lag_versions gauge\n", p)
		fmt.Fprintf(w, "%sreplica_lag_versions %d\n", p, fs.Lag.Versions)
		fmt.Fprintf(w, "# TYPE %sreplica_lag_seconds gauge\n", p)
		fmt.Fprintf(w, "# HELP %sreplica_lag_seconds How long the replica has continuously been behind the last-heard primary position.\n", p)
		fmt.Fprintf(w, "%sreplica_lag_seconds %g\n", p, fs.Lag.Seconds)
		fmt.Fprintf(w, "# TYPE %sreplica_lag_bytes gauge\n", p)
		fmt.Fprintf(w, "%sreplica_lag_bytes %d\n", p, fs.Lag.Bytes)
		fmt.Fprintf(w, "# TYPE %sreplica_records_applied_total counter\n", p)
		fmt.Fprintf(w, "%sreplica_records_applied_total %d\n", p, fs.RecordsApplied)
		fmt.Fprintf(w, "# TYPE %sreplica_bytes_applied_total counter\n", p)
		fmt.Fprintf(w, "%sreplica_bytes_applied_total %d\n", p, fs.BytesApplied)
		fmt.Fprintf(w, "# TYPE %sreplica_reconnects_total counter\n", p)
		fmt.Fprintf(w, "%sreplica_reconnects_total %d\n", p, fs.Reconnects)
		fmt.Fprintf(w, "# TYPE %sreplica_snapshot_bootstraps_total counter\n", p)
		fmt.Fprintf(w, "%sreplica_snapshot_bootstraps_total %d\n", p, fs.SnapshotBootstraps)
	}
	if rs != nil {
		fmt.Fprintf(w, "# TYPE %sreplication_followers gauge\n", p)
		fmt.Fprintf(w, "# HELP %sreplication_followers Currently connected replication followers.\n", p)
		fmt.Fprintf(w, "%sreplication_followers %d\n", p, rs.Followers)
		fmt.Fprintf(w, "# TYPE %sreplication_records_shipped_total counter\n", p)
		fmt.Fprintf(w, "%sreplication_records_shipped_total %d\n", p, rs.RecordsShipped)
		fmt.Fprintf(w, "# TYPE %sreplication_bytes_shipped_total counter\n", p)
		fmt.Fprintf(w, "%sreplication_bytes_shipped_total %d\n", p, rs.BytesShipped)
		fmt.Fprintf(w, "# TYPE %sreplication_snapshots_sent_total counter\n", p)
		fmt.Fprintf(w, "%sreplication_snapshots_sent_total %d\n", p, rs.SnapshotsSent)
		fmt.Fprintf(w, "# TYPE %sreplication_heartbeats_total counter\n", p)
		fmt.Fprintf(w, "%sreplication_heartbeats_total %d\n", p, rs.Heartbeats)
		fmt.Fprintf(w, "# TYPE %sreplication_resyncs_total counter\n", p)
		fmt.Fprintf(w, "# HELP %sreplication_resyncs_total Followers transparently re-synced from the on-disk log after their live tail overflowed.\n", p)
		fmt.Fprintf(w, "%sreplication_resyncs_total %d\n", p, rs.Resyncs)
	}
}
