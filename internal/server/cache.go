package server

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Source reports how a cached evaluation was satisfied.
type Source int

const (
	// Miss means this request ran the evaluation itself.
	Miss Source = iota
	// Hit means the result was served from the cache.
	Hit
	// Shared means the request piggybacked on an identical in-flight
	// evaluation (singleflight collapsing).
	Shared
)

// String implements fmt.Stringer; the values double as X-Cache header values.
func (s Source) String() string {
	switch s {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "miss"
	}
}

// cache is a sharded LRU of marshaled query results with singleflight
// collapsing: concurrent requests for the same key run one evaluation and
// share its outcome. Sharding keeps lock contention off the serving hot path;
// keys embed the dataset snapshot version, so entries from a superseded
// snapshot can never be served (Purge merely reclaims their memory early).
type cache struct {
	shards []*cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	shared    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int // per-shard entry capacity; 0 disables storage, not collapsing
	ll    *list.List
	items map[string]*list.Element
	calls map[string]*flightCall
}

type cacheEntry struct {
	key string
	val []byte
}

// flightCall is one in-flight evaluation; waiters block on done.
type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// newCache builds a cache holding at most entries results across shards.
// entries <= 0 disables result storage; singleflight collapsing stays active.
func newCache(entries, shards int) *cache {
	if shards < 1 {
		shards = 1
	}
	perShard := 0
	if entries > 0 {
		perShard = (entries + shards - 1) / shards
	}
	c := &cache{shards: make([]*cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:   perShard,
			ll:    list.New(),
			items: make(map[string]*list.Element),
			calls: make(map[string]*flightCall),
		}
	}
	return c
}

func (c *cache) shardFor(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[int(h.Sum32())%len(c.shards)]
}

// Do returns the cached value for key, or runs fn exactly once across all
// concurrent callers of the same key and caches its result. Waiters abandon
// the flight when ctx is canceled; the leader always completes so the result
// is not lost for the callers still waiting.
func (c *cache) Do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, Source, error) {
	sh := c.shardFor(key)

	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		sh.mu.Unlock()
		c.hits.Add(1)
		return val, Hit, nil
	}
	if fl, ok := sh.calls[key]; ok {
		sh.mu.Unlock()
		select {
		case <-fl.done:
			c.shared.Add(1)
			return fl.val, Shared, fl.err
		case <-ctx.Done():
			return nil, Shared, ctx.Err()
		}
	}
	fl := &flightCall{done: make(chan struct{})}
	sh.calls[key] = fl
	sh.mu.Unlock()

	fl.val, fl.err = fn()

	sh.mu.Lock()
	delete(sh.calls, key)
	if fl.err == nil && sh.cap > 0 {
		sh.items[key] = sh.ll.PushFront(&cacheEntry{key: key, val: fl.val})
		for sh.ll.Len() > sh.cap {
			oldest := sh.ll.Back()
			sh.ll.Remove(oldest)
			delete(sh.items, oldest.Value.(*cacheEntry).key)
			c.evictions.Add(1)
		}
	}
	sh.mu.Unlock()
	close(fl.done)

	c.misses.Add(1)
	return fl.val, Miss, fl.err
}

// Purge drops every stored entry. In-flight calls are left to complete: their
// keys carry the snapshot version they were computed against, so their
// waiters still receive a result consistent with the snapshot they requested,
// and the stored leftovers can never match a request against a newer
// snapshot.
func (c *cache) Purge() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.ll.Init()
		sh.items = make(map[string]*list.Element)
		sh.mu.Unlock()
	}
}

// Len returns the number of stored entries across shards.
func (c *cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}
