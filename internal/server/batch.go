package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/verify"
)

// MaxBatchQueries caps the number of query points in one /v1/batch request.
// Larger workloads should be split client-side; the cap keeps a single
// request from monopolizing the evaluation pool indefinitely.
const MaxBatchQueries = 4096

// DefaultMaxBatchBytes bounds the body of a batch request: 4096 query
// points at float precision fit comfortably within 1 MiB.
const DefaultMaxBatchBytes = 1 << 20

// batchRequest is the POST /v1/batch body. P, Delta, Strategy and All apply
// to every query of the batch. Queries decodes through pointers so a JSON
// null point is rejected instead of silently becoming 0.
type batchRequest struct {
	Queries  []*float64 `json:"queries"`
	P        *float64   `json:"p"`
	Delta    *float64   `json:"delta"`
	Strategy string     `json:"strategy"`
	All      bool       `json:"all"`
}

// points materializes the validated query coordinates.
func (r batchRequest) points() []float64 {
	out := make([]float64, len(r.Queries))
	for i, q := range r.Queries {
		out[i] = *q
	}
	return out
}

// batchResponse carries one result per query point, index-aligned with the
// request. Results are the exact cpnnResponse bodies of the single-query
// endpoint — a batch warms the same cache entries /v1/cpnn reads. Unlike
// per-point bodies, the envelope includes wall-clock timing: the envelope
// itself is never cached, so determinism is not at stake.
type batchResponse struct {
	Version  uint64            `json:"version"`
	Count    int               `json:"count"`
	P        float64           `json:"p"`
	Delta    float64           `json:"delta"`
	Strategy string            `json:"strategy"`
	Results  []json.RawMessage `json:"results"`
	// Cache labels how each point was satisfied: "hit", "miss" or "shared".
	Cache  []string `json:"cache"`
	Hits   int      `json:"hits"`
	Misses int      `json:"misses"`
	Shared int      `json:"shared"`
	WallMs float64  `json:"wall_ms"`
}

// parseBatchRequest decodes and fully validates a batch body before any
// engine work: every coordinate must be finite (shared checkFinite guard),
// the constraint valid, the strategy known.
func (s *Server) parseBatchRequest(w http.ResponseWriter, r *http.Request) (batchRequest, verify.Constraint, error) {
	var req batchRequest
	body := http.MaxBytesReader(w, r.Body, DefaultMaxBatchBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return req, verify.Constraint{}, &httpError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("batch body exceeds the %d-byte limit", tooLarge.Limit),
			}
		}
		return req, verify.Constraint{}, badRequest("parsing batch body: %v", err)
	}
	if len(req.Queries) == 0 {
		return req, verify.Constraint{}, badRequest("batch holds no query points")
	}
	if len(req.Queries) > MaxBatchQueries {
		return req, verify.Constraint{}, badRequest(
			"batch holds %d query points, limit %d", len(req.Queries), MaxBatchQueries)
	}
	for i, q := range req.Queries {
		if q == nil {
			return req, verify.Constraint{}, badRequest("queries[%d] is null", i)
		}
		if err := checkFinite(fmt.Sprintf("queries[%d]", i), *q); err != nil {
			return req, verify.Constraint{}, err
		}
	}
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	if req.P != nil {
		if err := checkFinite("p", *req.P); err != nil {
			return req, verify.Constraint{}, err
		}
		c.P = *req.P
	}
	if req.Delta != nil {
		if err := checkFinite("delta", *req.Delta); err != nil {
			return req, verify.Constraint{}, err
		}
		c.Delta = *req.Delta
	}
	if err := c.Validate(); err != nil {
		return req, verify.Constraint{}, badRequest("%v", err)
	}
	return req, c, nil
}

// handleBatch answers POST /v1/batch: the whole request resolves against one
// dataset snapshot, each point is cache-checked individually, and the misses
// are evaluated concurrently under the server's worker pool with identical
// in-flight points collapsed by the singleflight layer. Duplicate points
// within one request evaluate once and share the outcome.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epBatch].Add(1)
	if err := s.replicaGate(); err != nil {
		s.writeError(w, err)
		return
	}
	if r.Method != http.MethodPost {
		s.m.clientErrors.Add(1)
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	req, c, err := s.parseBatchRequest(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	strat, err := parseStrategy(req.Strategy)
	if err != nil {
		s.writeError(w, err)
		return
	}

	queries := req.points()

	// One snapshot for the whole request: a concurrent reload can never make
	// two points of one batch answer against different dataset generations.
	snap := s.snap.Load()
	start := time.Now()

	type outcome struct {
		body []byte
		src  Source
		err  error
	}
	// Evaluate each distinct quantized point once; duplicates share the
	// outcome (and its cache label).
	slot := make(map[float64]*outcome, len(queries))
	var order []float64
	for _, q := range queries {
		qq := s.snapPoint(q)
		if _, ok := slot[qq]; !ok {
			slot[qq] = &outcome{}
			order = append(order, qq)
		}
	}
	// Fan out per distinct point. Engine work is bounded by the server's
	// worker pool inside evaluate; these goroutines mostly wait.
	var wg sync.WaitGroup
	for _, qq := range order {
		wg.Add(1)
		go func(qq float64, out *outcome) {
			defer wg.Done()
			out.body, out.src, out.err = s.cpnnBody(r.Context(), epBatch, snap, qq, c, strat, req.All)
		}(qq, slot[qq])
	}
	wg.Wait()

	resp := batchResponse{
		Version:  snap.Version,
		Count:    len(queries),
		P:        c.P,
		Delta:    c.Delta,
		Strategy: strat.String(),
		Results:  make([]json.RawMessage, 0, len(queries)),
		Cache:    make([]string, 0, len(queries)),
	}
	for _, q := range queries {
		out := slot[s.snapPoint(q)]
		if out.err != nil {
			s.writeError(w, out.err)
			return
		}
		resp.Results = append(resp.Results, json.RawMessage(out.body))
		resp.Cache = append(resp.Cache, out.src.String())
		switch out.src {
		case Hit:
			resp.Hits++
		case Shared:
			resp.Shared++
		default:
			resp.Misses++
		}
	}
	resp.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}
