package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// testDataset returns a small clustered dataset that still produces
// multi-candidate queries.
func testDataset(t testing.TB, seed int64) *uncertain.Dataset {
	t.Helper()
	ds, err := uncertain.GenerateUniform(uncertain.GenOptions{
		N:       2000,
		Domain:  1000,
		MeanLen: 4,
		MinLen:  0.5,
		MaxLen:  25,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Dataset == nil {
		cfg.Dataset = testDataset(t, 7)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get performs one request against the handler without a network hop.
func get(t testing.TB, s *Server, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func TestCPNNHandlerMatchesEngine(t *testing.T) {
	ds := testDataset(t, 7)
	s := testServer(t, Config{Dataset: ds})
	rec := get(t, s, "/v1/cpnn?q=500&p=0.2&delta=0.01")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp cpnnResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}

	eng, err := core.NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.CPNN(500, verify.Constraint{P: 0.2, Delta: 0.01}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != len(want.Answers) {
		t.Fatalf("answers = %d, want %d", len(resp.Answers), len(want.Answers))
	}
	for i, a := range want.Answers {
		got := resp.Answers[i]
		if got.ID != a.ID || got.L != a.Bounds.L || got.U != a.Bounds.U {
			t.Errorf("answer %d = %+v, want %+v", i, got, a)
		}
	}
	if resp.Stats.Candidates != want.Stats.Candidates {
		t.Errorf("candidates = %d, want %d", resp.Stats.Candidates, want.Stats.Candidates)
	}
	if resp.Version != 1 {
		t.Errorf("version = %d, want 1", resp.Version)
	}
}

// TestCacheByteIdentity is the acceptance check: a cached response is
// byte-identical to a fresh evaluation of the same key, across all cached
// endpoints and across a cache-disabled server.
func TestCacheByteIdentity(t *testing.T) {
	ds := testDataset(t, 7)
	cached := testServer(t, Config{Dataset: ds})
	uncached := testServer(t, Config{Dataset: ds, CacheEntries: -1})

	urls := []string{
		"/v1/cpnn?q=500&p=0.2&delta=0.01",
		"/v1/cpnn?q=500&p=0.2&delta=0.01&strategy=basic&all=1",
		"/v1/pnn?q=313.7",
		"/v1/knn?q=250&k=3&p=0.1&samples=2000&seed=5",
	}
	for _, url := range urls {
		first := get(t, cached, url)
		if first.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, first.Code, first.Body)
		}
		if src := first.Header().Get("X-Cache"); src != "miss" {
			t.Errorf("%s: first X-Cache = %q, want miss", url, src)
		}
		second := get(t, cached, url)
		if src := second.Header().Get("X-Cache"); src != "hit" {
			t.Errorf("%s: second X-Cache = %q, want hit", url, src)
		}
		if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
			t.Errorf("%s: cached body differs from original", url)
		}
		fresh := get(t, uncached, url)
		if src := fresh.Header().Get("X-Cache"); src != "miss" {
			t.Errorf("%s: uncached X-Cache = %q, want miss", url, src)
		}
		if !bytes.Equal(first.Body.Bytes(), fresh.Body.Bytes()) {
			t.Errorf("%s: cached body differs from a fresh evaluation", url)
		}
	}
}

func TestQuantizationSharesEntries(t *testing.T) {
	s := testServer(t, Config{Quantum: 1})
	a := get(t, s, "/v1/cpnn?q=499.8&p=0.2")
	b := get(t, s, "/v1/cpnn?q=500.3&p=0.2")
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("status %d / %d", a.Code, b.Code)
	}
	if src := b.Header().Get("X-Cache"); src != "hit" {
		t.Errorf("neighboring query X-Cache = %q, want hit", src)
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Error("snapped queries returned different bodies")
	}
	var resp cpnnResponse
	if err := json.Unmarshal(a.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Query != 500 {
		t.Errorf("evaluated query = %g, want the snapped 500", resp.Query)
	}
}

func TestInputValidation(t *testing.T) {
	s := testServer(t, Config{})
	cases := []struct {
		name string
		url  string
	}{
		{"missing q", "/v1/cpnn?p=0.3"},
		{"non-numeric q", "/v1/cpnn?q=abc"},
		{"infinite q", "/v1/cpnn?q=Inf"},
		{"P zero", "/v1/cpnn?q=1&p=0"},
		{"P above one", "/v1/cpnn?q=1&p=1.5"},
		{"negative delta", "/v1/cpnn?q=1&delta=-0.1"},
		{"delta above one", "/v1/cpnn?q=1&delta=1.5"},
		{"bad strategy", "/v1/cpnn?q=1&strategy=monte-carlo"},
		{"knn missing k", "/v1/knn?q=1&p=0.3"},
		{"knn zero k", "/v1/knn?q=1&k=0"},
		{"knn negative k", "/v1/knn?q=1&k=-2"},
		{"knn bad samples", "/v1/knn?q=1&k=2&samples=0"},
		{"knn bad P", "/v1/knn?q=1&k=2&p=7"},
		{"pnn missing q", "/v1/pnn"},
	}
	for _, tc := range cases {
		rec := get(t, s, tc.url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, rec.Code, rec.Body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, rec.Body)
		}
	}
	if n := s.m.clientErrors.Load(); int(n) != len(cases) {
		t.Errorf("client errors = %d, want %d", n, len(cases))
	}
	if n := s.m.evals.Load(); n != 0 {
		t.Errorf("invalid requests reached the engine %d times", n)
	}
}

func TestDatasetReloadSwapsAndInvalidates(t *testing.T) {
	s := testServer(t, Config{Dataset: testDataset(t, 7), Source: "seed7"})

	info := get(t, s, "/v1/dataset")
	var before datasetResponse
	if err := json.Unmarshal(info.Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}
	if before.Version != 1 || before.Source != "seed7" {
		t.Fatalf("initial snapshot = %+v", before)
	}

	const url = "/v1/cpnn?q=500&p=0.2"
	v1Body := get(t, s, url).Body.Bytes()

	// Serialize a different dataset and POST it.
	var buf bytes.Buffer
	if _, err := testDataset(t, 99).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/dataset?source=seed99", &buf)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload status %d: %s", rec.Code, rec.Body)
	}
	var after datasetResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Version != 2 || after.Source != "seed99" {
		t.Fatalf("reloaded snapshot = %+v", after)
	}
	if s.cc.Len() != 0 {
		t.Errorf("cache holds %d entries after reload", s.cc.Len())
	}

	// The same query now misses the cache and answers from the new dataset.
	fresh := get(t, s, url)
	if src := fresh.Header().Get("X-Cache"); src != "miss" {
		t.Errorf("post-reload X-Cache = %q, want miss", src)
	}
	var resp cpnnResponse
	if err := json.Unmarshal(fresh.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 2 {
		t.Errorf("post-reload version = %d, want 2", resp.Version)
	}
	if bytes.Equal(v1Body, fresh.Body.Bytes()) {
		t.Error("reload did not change the served result")
	}
}

func TestDatasetReloadRejectsBadInput(t *testing.T) {
	s := testServer(t, Config{})
	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/dataset", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec
	}
	if rec := post("not a dataset"); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", rec.Code)
	}
	if rec := post(""); rec.Code != http.StatusBadRequest {
		t.Errorf("empty body: status %d, want 400", rec.Code)
	}
	if rec := post("5 1\n"); rec.Code != http.StatusBadRequest {
		t.Errorf("inverted interval: status %d, want 400", rec.Code)
	}
	if got := s.Snapshot().Version; got != 1 {
		t.Errorf("failed reloads bumped version to %d", got)
	}
}

// TestReloadAtomicityUnderLoad hammers the query path while the dataset is
// swapped repeatedly. Every response must be internally consistent with
// exactly one snapshot: its version determines which dataset it was computed
// against, and its body must byte-match the precomputed answer for that
// dataset. Datasets alternate A (odd versions) / B (even versions).
func TestReloadAtomicityUnderLoad(t *testing.T) {
	dsA := testDataset(t, 7)
	dsB := testDataset(t, 99)
	s := testServer(t, Config{Dataset: dsA})

	const url = "/v1/cpnn?q=500&p=0.2&delta=0.01"

	// Precompute the expected answer sets straight from the engines.
	expect := map[bool][]answerJSON{} // key: version is odd → dataset A
	for odd, ds := range map[bool]*uncertain.Dataset{true: dsA, false: dsB} {
		eng, err := core.NewEngine(ds)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.CPNN(500, verify.Constraint{P: 0.2, Delta: 0.01}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		expect[odd] = toAnswers(res.Answers, &Snapshot{})
	}
	if fmt.Sprint(expect[true]) == fmt.Sprint(expect[false]) {
		t.Fatal("test needs datasets with different answers at q=500")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := get(t, s, url)
				if rec.Code != http.StatusOK {
					select {
					case errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body):
					default:
					}
					return
				}
				var resp cpnnResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				want := expect[resp.Version%2 == 1]
				if fmt.Sprint(resp.Answers) != fmt.Sprint(want) {
					select {
					case errs <- fmt.Errorf("version %d served torn answers %v, want %v",
						resp.Version, resp.Answers, want):
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		ds := dsB
		if i%2 == 1 {
			ds = dsA
		}
		if _, err := s.Reload(ds, "swap"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := s.Snapshot().Version; got != 11 {
		t.Errorf("final version = %d, want 11", got)
	}
}

// TestLeaderSurvivesClientDisconnect: a singleflight leader whose client has
// already gone away must still complete its evaluation (the computation is
// detached from the request context), so the result lands in the cache for
// everyone else.
func TestLeaderSurvivesClientDisconnect(t *testing.T) {
	s := testServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the evaluation starts
	req := httptest.NewRequest(http.MethodGet, "/v1/cpnn?q=500&p=0.2", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("disconnected leader: status %d: %s", rec.Code, rec.Body)
	}
	// The abandoned leader's work is cached for the next caller.
	if src := get(t, s, "/v1/cpnn?q=500&p=0.2").Header().Get("X-Cache"); src != "hit" {
		t.Errorf("follow-up X-Cache = %q, want hit", src)
	}
}

func TestKNNEmptyAnswersIsArray(t *testing.T) {
	s := testServer(t, Config{})
	// P=1 with Delta=0 is unsatisfiable for sampled bounds: answers is empty
	// but must marshal as [], matching the other endpoints.
	rec := get(t, s, "/v1/knn?q=500&k=1&p=1&delta=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"answers":[]`) {
		t.Errorf("empty k-NN answers not an array: %s", rec.Body)
	}
}

func TestDatasetReloadTooLarge(t *testing.T) {
	s := testServer(t, Config{MaxDatasetBytes: 8})
	req := httptest.NewRequest(http.MethodPost, "/v1/dataset", strings.NewReader("1 2\n3 4\n5 6\n7 8\n"))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (body %s)", rec.Code, rec.Body)
	}
	if got := s.Snapshot().Version; got != 1 {
		t.Errorf("oversized reload bumped version to %d", got)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := testServer(t, Config{})
	h := get(t, s, "/healthz")
	if h.Code != http.StatusOK || !strings.Contains(h.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz = %d %s", h.Code, h.Body)
	}
	get(t, s, "/v1/cpnn?q=500&p=0.2")
	get(t, s, "/v1/cpnn?q=500&p=0.2")
	m := get(t, s, "/metrics")
	if m.Code != http.StatusOK {
		t.Fatalf("metrics status %d", m.Code)
	}
	body := m.Body.String()
	for _, want := range []string{
		`cpnn_server_requests_total{endpoint="cpnn"} 2`,
		"cpnn_server_cache_hits_total 1",
		"cpnn_server_cache_misses_total 1",
		"cpnn_server_snapshot_version 1",
		"cpnn_server_snapshot_objects 2000",
		"cpnn_server_evaluations_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t, Config{})
	req := httptest.NewRequest(http.MethodDelete, "/v1/dataset", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", rec.Code)
	}
}

func TestConfigValidation(t *testing.T) {
	ds := testDataset(t, 7)
	if _, err := New(Config{}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := New(Config{Dataset: uncertain.NewDataset(nil)}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := New(Config{Dataset: ds, Quantum: -1}); err == nil {
		t.Error("negative quantum accepted")
	}
	if _, err := New(Config{Dataset: ds, Quantum: math.Inf(1)}); err == nil {
		t.Error("infinite quantum accepted (would snap every query to NaN)")
	}
	if _, err := New(Config{Dataset: ds, MaxInFlight: -3}); err == nil {
		t.Error("negative max in-flight accepted")
	}
	if _, err := New(Config{Dataset: ds, CacheShards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestQueueTimeoutSheds: when every worker slot stays busy past
// QueueTimeout, queued requests are shed with a 503 instead of piling up
// forever; once a slot frees, requests succeed again.
func TestQueueTimeoutSheds(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 1, QueueTimeout: 20 * time.Millisecond})
	s.sem <- struct{}{} // occupy the only worker slot
	rec := get(t, s, "/v1/cpnn?q=500&p=0.2")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated pool: status %d, want 503 (body %s)", rec.Code, rec.Body)
	}
	<-s.sem
	if rec := get(t, s, "/v1/cpnn?q=500&p=0.2"); rec.Code != http.StatusOK {
		t.Fatalf("freed pool: status %d: %s", rec.Code, rec.Body)
	}
}

// TestConcurrentMixedTraffic exercises the whole serving path — cache,
// singleflight, worker pool, metrics — under the race detector.
func TestConcurrentMixedTraffic(t *testing.T) {
	s := testServer(t, Config{Quantum: 5, MaxInFlight: 4})
	urls := []string{
		"/v1/cpnn?q=100&p=0.2",
		"/v1/cpnn?q=402&p=0.3&strategy=refine",
		"/v1/pnn?q=250",
		"/v1/knn?q=333&k=2&p=0.1&samples=500",
		"/healthz",
		"/metrics",
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				url := urls[(g+i)%len(urls)]
				rec := get(t, s, url)
				if rec.Code != http.StatusOK {
					t.Errorf("%s: status %d: %s", url, rec.Code, rec.Body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheHitRateSweep measures cache hit rate against quantization
// granularity for a uniform random query workload; the numbers land in
// EXPERIMENTS.md. Run with -v to see the table.
func TestCacheHitRateSweep(t *testing.T) {
	ds := testDataset(t, 7)
	queries := uncertain.QueryWorkload(400, 1000, 3)
	for _, quantum := range []float64{0, 0.5, 2, 10, 50} {
		s := testServer(t, Config{Dataset: ds, Quantum: quantum})
		for _, q := range queries {
			rec := get(t, s, fmt.Sprintf("/v1/cpnn?q=%g&p=0.2", q))
			if rec.Code != http.StatusOK {
				t.Fatalf("quantum %g: status %d: %s", quantum, rec.Code, rec.Body)
			}
		}
		hits, misses := s.cc.hits.Load(), s.cc.misses.Load()
		if hits+misses != int64(len(queries)) {
			t.Fatalf("quantum %g: %d hits + %d misses != %d queries", quantum, hits, misses, len(queries))
		}
		t.Logf("quantum=%-5g hit rate %5.1f%% (%d hits / %d queries)",
			quantum, 100*float64(hits)/float64(len(queries)), hits, len(queries))
	}
}
