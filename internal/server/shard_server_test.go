package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/pdf"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/verify"
)

// stripVersion removes the version field from a response body so sharded
// and single-server answers (which agree on everything else) compare equal.
func stripVersion(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	delete(m, "version")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestShardServerParity locks the serving layer to the shard oracle: a
// store-backed single server and a 4-shard scatter-gather server over a
// split of the same store answer /v1/cpnn and /v1/pnn identically except
// for the version field, writes through the router continue the single
// store's ID sequence, and the shard metric families are exposed.
func TestShardServerParity(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	st, err := store.Open(srcDir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var ops []store.Op
	for i := 0; i < 40; i++ {
		lo := float64(i * 25)
		ops = append(ops, store.InsertObject(pdf.MustUniform(lo, lo+10)))
	}
	if _, err := st.Apply(ops); err != nil {
		t.Fatal(err)
	}
	nextID := st.View().NextID

	single := testServer(t, Config{Store: st, Dataset: testDataset(t, 7)})
	queries := []string{
		"/v1/cpnn?q=137.5&p=0.3&delta=0.01",
		"/v1/cpnn?q=512&p=0.5&delta=0.05&all=1",
		"/v1/pnn?q=137.5",
		"/v1/pnn?q=990",
	}
	want := make([]string, len(queries))
	for i, u := range queries {
		rec := get(t, single, u)
		if rec.Code != http.StatusOK {
			t.Fatalf("single %s: status %d: %s", u, rec.Code, rec.Body.Bytes())
		}
		want[i] = stripVersion(t, rec.Body.Bytes())
	}
	if err := single.Close(); err != nil { // closes the store
		t.Fatal(err)
	}

	if _, err := shard.SplitStore(srcDir, dstDir, 4, store.Options{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	cluster, err := shard.OpenCluster(dstDir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	rt, err := cluster.Router()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{ShardRouter: rt, ShardCluster: cluster})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i, u := range queries {
		rec := get(t, s, u)
		if rec.Code != http.StatusOK {
			t.Fatalf("sharded %s: status %d: %s", u, rec.Code, rec.Body.Bytes())
		}
		if got := stripVersion(t, rec.Body.Bytes()); got != want[i] {
			t.Fatalf("%s diverged under sharding:\n got %s\nwant %s", u, got, want[i])
		}
		// The second read must be a byte-identical cache hit.
		rec2 := get(t, s, u)
		if rec2.Header().Get("X-Cache") != "hit" {
			t.Fatalf("%s: second read was %q, want hit", u, rec2.Header().Get("X-Cache"))
		}
		if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
			t.Fatalf("%s: cached body differs from fresh body", u)
		}
	}

	// k-NN serves deterministically (stable-ID RNG streams) through the cache.
	knn := "/v1/knn?q=300&k=2&p=0.3&delta=0.05&samples=500&seed=9"
	r1 := get(t, s, knn)
	if r1.Code != http.StatusOK {
		t.Fatalf("knn: status %d: %s", r1.Code, r1.Body.Bytes())
	}
	if r2 := get(t, s, knn); !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Fatal("knn response not deterministic across reads")
	}

	// Writes route through the router and continue the stable ID sequence.
	rec := doJSON(t, s, http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":5,"hi":6}}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("objects POST: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var or objectsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &or); err != nil {
		t.Fatal(err)
	}
	if len(or.IDs) != 1 || or.IDs[0] != nextID {
		t.Fatalf("post-split insert got IDs %v, want [%d]", or.IDs, nextID)
	}
	if or.Objects != 41 {
		t.Fatalf("objects after insert = %d, want 41", or.Objects)
	}
	rec = doJSON(t, s, http.MethodDelete, fmt.Sprintf("/v1/objects?id=%d", or.IDs[0]), "")
	if rec.Code != http.StatusOK {
		t.Fatalf("objects DELETE: status %d: %s", rec.Code, rec.Body.Bytes())
	}

	// A deleted ID is a 404, same as the single server.
	rec = doJSON(t, s, http.MethodDelete, fmt.Sprintf("/v1/objects?id=%d", or.IDs[0]), "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", rec.Code)
	}

	// Health and metrics surface the cluster shape.
	rec = get(t, s, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"shards":4`) {
		t.Fatalf("healthz: status %d body %s", rec.Code, rec.Body.Bytes())
	}
	rec = get(t, s, "/metrics")
	for _, want := range []string{
		"cpnn_server_shard_count 4",
		"cpnn_server_shard_fanout_fraction",
		"cpnn_server_shard_queries_total",
		"cpnn_server_shard_monitor_active 0",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("metrics output lacks %q", want)
		}
	}
}

// TestShardServerMonitors runs a standing query over the sharded server:
// registration answers immediately, a write through the router re-evaluates
// it, and the pushed answer matches a fresh scatter-gather evaluation.
func TestShardServerMonitors(t *testing.T) {
	dir := t.TempDir()
	cluster, err := shard.CreateClusterCuts(dir, []float64{100, 200, 300}, nil, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	rt, err := cluster.Router()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{ShardRouter: rt, ShardCluster: cluster})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 12; i++ {
		lo := float64(i * 30)
		rec := doJSON(t, s, http.MethodPost, "/v1/objects",
			fmt.Sprintf(`{"objects":[{"uniform":{"lo":%g,"hi":%g}}]}`, lo, lo+8))
		if rec.Code != http.StatusOK {
			t.Fatalf("seed insert: status %d: %s", rec.Code, rec.Body.Bytes())
		}
	}

	rec := doJSON(t, s, http.MethodPost, "/v1/monitors",
		`{"kind":"cpnn","q":150,"p":0.3,"delta":0.01}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var mj monitorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &mj); err != nil {
		t.Fatal(err)
	}

	// A write near the standing query moves its answer.
	rec = doJSON(t, s, http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":149,"hi":151}}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("trigger insert: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	if err := s.shardMon.Sync(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	spec := monitor.Spec{Kind: monitor.KindCPNN, Q: 150,
		Constraint: verify.Constraint{P: 0.3, Delta: 0.01}}
	wantBody, _, _, err := rt.Evaluate(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec = get(t, s, "/v1/monitors")
	var list struct {
		Monitors []monitorJSON `json:"monitors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Monitors) != 1 || list.Monitors[0].ID != mj.ID {
		t.Fatalf("monitor list: %s", rec.Body.Bytes())
	}
	if !bytes.Equal(list.Monitors[0].Answer, wantBody) {
		t.Fatalf("standing answer stale:\n got %s\nwant %s", list.Monitors[0].Answer, wantBody)
	}
}

// TestShardServerMemberWire drives the multi-process topology end to end
// over real HTTP: member servers expose /internal/shard/*, a router server
// scatters to them, a dead member degrades exactly (provably-unaffected
// queries keep serving, affected ones answer 503 + Retry-After), and member
// servers refuse direct writes.
func TestShardServerMemberWire(t *testing.T) {
	cuts := []float64{500}
	var members []shard.Member
	var stores []*store.Store
	var srvs []*Server
	var ts []*httptest.Server
	for i := 0; i < 2; i++ {
		st, err := store.Open(t.TempDir(), store.Options{NoSync: true, ExplicitIDs: true})
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
		srv, err := New(Config{Store: st, ShardMember: true})
		if err != nil {
			t.Fatal(err)
		}
		srvs = append(srvs, srv)
		h := httptest.NewServer(srv.Handler())
		ts = append(ts, h)
		members = append(members, shard.NewHTTPMember(h.URL, nil))
	}
	defer func() {
		for i, srv := range srvs {
			ts[i].Close()
			srv.Close()
		}
	}()

	rt, err := shard.NewRouter(shard.RouterConfig{Members: members, Cuts: cuts, NextID: 1})
	if err != nil {
		t.Fatal(err)
	}
	router, err := New(Config{ShardRouter: rt})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	// Two well-separated clumps, one per shard.
	var specs []string
	for i := 0; i < 6; i++ {
		specs = append(specs,
			fmt.Sprintf(`{"uniform":{"lo":%d,"hi":%d}}`, i*3, i*3+2),
			fmt.Sprintf(`{"uniform":{"lo":%d,"hi":%d}}`, 1000+i*3, 1000+i*3+2))
	}
	rec := doJSON(t, router, http.MethodPost, "/v1/objects",
		`{"objects":[`+strings.Join(specs, ",")+`]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("router write: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	if n0, n1 := stores[0].View().Dataset.Len(), stores[1].View().Dataset.Len(); n0 != 6 || n1 != 6 {
		t.Fatalf("placement: shard populations %d/%d, want 6/6", n0, n1)
	}

	nearURL, farURL := "/v1/pnn?q=7", "/v1/pnn?q=1007"
	near := get(t, router, nearURL)
	if near.Code != http.StatusOK {
		t.Fatalf("near query: status %d: %s", near.Code, near.Body.Bytes())
	}

	// Direct member writes are refused: placement belongs to the router.
	memberRec := doJSON(t, srvs[0], http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":1,"hi":2}}]}`)
	if memberRec.Code != http.StatusForbidden {
		t.Fatalf("member direct write: status %d, want 403", memberRec.Code)
	}
	memberRec = doJSON(t, srvs[0], http.MethodPost, "/v1/dataset", "u 1 0 1\n")
	if memberRec.Code != http.StatusForbidden {
		t.Fatalf("member dataset reload: status %d, want 403", memberRec.Code)
	}
	// The wire endpoints are live and versioned.
	memberRec = get(t, srvs[0], "/internal/shard/info")
	if memberRec.Code != http.StatusOK || memberRec.Header().Get(shard.VersionHeader) == "" {
		t.Fatalf("member info: status %d header %q", memberRec.Code, memberRec.Header().Get(shard.VersionHeader))
	}

	// Kill the far member.
	ts[1].Close()

	rec = get(t, router, nearURL)
	if rec.Code != http.StatusOK {
		t.Fatalf("near query with dead far shard: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	if got, want := stripVersion(t, rec.Body.Bytes()), stripVersion(t, near.Body.Bytes()); got != want {
		t.Fatalf("near answer changed under partial availability:\n got %s\nwant %s", got, want)
	}
	rec = get(t, router, farURL)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("far query with dead shard: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 for a dead shard lacks Retry-After")
	}
	rec = doJSON(t, router, http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":1000,"hi":1001}}]}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write to dead shard: status %d, want 503", rec.Code)
	}
	// Unavailability is visible in the router's health output.
	rec = get(t, router, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"unavailable_total"`) {
		t.Fatalf("router healthz: status %d body %s", rec.Code, rec.Body.Bytes())
	}
	// (Full kill -9 / restart / reconvergence runs in the CI shard smoke,
	// where the member really does come back on the same address.)
}
