package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// traceSampleEvery is the headerless sampling rate: requests that carry no
// X-Cpnn-Trace header record a full trace only once per this many requests.
// A request WITH the header is always recorded end to end — sending one is
// how an operator (or CI) asks for a trace.
const traceSampleEvery = 128

// ingress wraps the mux in the observability middleware. On the sampled
// path it adopts the caller's span from the X-Cpnn-Trace header (or mints a
// fresh trace), records an ingress span covering the whole request,
// attaches a ReqInfo carrier for downstream annotations (phase timings,
// cache label, fan-out), echoes the trace header on the response, and feeds
// the slow-query log. Unsampled requests with the slow log off take a fast
// path that only stamps an unsampled span context — the per-phase latency
// histograms observe inside the handlers either way, so /metrics always
// sees every request.
func (s *Server) ingress(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		parent, hasParent := obs.ParseHeader(r.Header.Get(obs.TraceHeader))
		sampled := hasParent || s.traceSample.Add(1)%traceSampleEvery == 1
		var span *obs.ActiveSpan
		if sampled {
			if hasParent {
				ctx = obs.ContextWithSpan(ctx, parent)
			}
			ctx, span = s.tracer.StartSpan(ctx, "server", r.Method+" "+r.URL.Path)
		} else if s.cfg.ShardRouter != nil || s.slowlog.Threshold() > 0 {
			// Valid-but-unsampled IDs: the router's hop spans short-circuit
			// to no-ops instead of minting fresh root traces, and logs and
			// the slow log still get a correlation ID. A plain single-store
			// server forks no downstream spans, so when the slow log is off
			// it skips even this and the fast path stays allocation-free.
			ctx = obs.ContextWithSpan(ctx, obs.NewUnsampledContext())
		}
		if span == nil && s.slowlog.Threshold() <= 0 {
			if ctx != r.Context() {
				r = r.WithContext(ctx)
			}
			next.ServeHTTP(w, r)
			return
		}

		ctx, ri := obs.WithReqInfo(ctx)
		if sc, ok := obs.SpanFromContext(ctx); ok {
			w.Header().Set(obs.TraceHeader, sc.Header())
		}
		sw := newStatusWriter(w)
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		dur := time.Since(start)

		attrs := ri.Attrs()
		span.SetAttr("status", strconv.Itoa(sw.status))
		for k, v := range attrs {
			span.SetAttr(k, v)
		}
		span.End()

		durMs := float64(dur) / float64(time.Millisecond)
		if s.slowlog.Observe(obs.SlowEntry{
			Time:       start,
			TraceID:    obs.TraceID(ctx),
			Endpoint:   r.URL.Path,
			Query:      r.URL.RawQuery,
			Status:     sw.status,
			DurationMs: durMs,
			Attrs:      attrs,
		}) {
			s.log.Warn("slow query",
				"trace_id", obs.TraceID(ctx),
				"endpoint", r.URL.Path,
				"query", r.URL.RawQuery,
				"status", sw.status,
				"duration_ms", durMs)
		}
	})
}

// observePhases feeds one query's core.Stats into the per-phase latency
// histograms and annotates the request with the breakdown. Called only on
// cache-miss evaluations — cache hits spent no phase time.
func (s *Server) observePhases(ctx context.Context, ep endpoint, st core.Stats) {
	filter, derive, verifyDur := st.PhaseDurations()
	h := &s.phaseObs[ep]
	h[0].Observe(filter.Seconds())
	h[1].Observe(derive.Seconds())
	h[2].Observe(verifyDur.Seconds())
	if ri := obs.ReqInfoFrom(ctx); ri != nil {
		ri.Set("phase_filter_ms", formatMs(filter))
		ri.Set("phase_derive_ms", formatMs(derive))
		ri.Set("phase_verify_ms", formatMs(verifyDur))
	}
}

func formatMs(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// statusWriter captures the response status for the ingress span while
// preserving http.Flusher — the SSE subscribe stream needs Flush.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func newStatusWriter(w http.ResponseWriter) *statusWriter {
	return &statusWriter{ResponseWriter: w, status: http.StatusOK}
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
