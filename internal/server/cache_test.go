package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitAndMiss(t *testing.T) {
	c := newCache(8, 2)
	calls := 0
	fn := func() ([]byte, error) { calls++; return []byte("v"), nil }

	v, src, err := c.Do(context.Background(), "k", fn)
	if err != nil || string(v) != "v" || src != Miss {
		t.Fatalf("first Do = %q, %v, %v", v, src, err)
	}
	v, src, err = c.Do(context.Background(), "k", fn)
	if err != nil || string(v) != "v" || src != Hit {
		t.Fatalf("second Do = %q, %v, %v", v, src, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if got := c.hits.Load(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
}

func TestCacheErrorNotStored(t *testing.T) {
	c := newCache(8, 1)
	boom := fmt.Errorf("boom")
	if _, _, err := c.Do(context.Background(), "k", func() ([]byte, error) { return nil, boom }); err != boom {
		t.Fatalf("Do error = %v, want boom", err)
	}
	ran := false
	if _, src, err := c.Do(context.Background(), "k", func() ([]byte, error) { ran = true; return []byte("ok"), nil }); err != nil || src != Miss {
		t.Fatalf("Do after error = %v, %v", src, err)
	}
	if !ran {
		t.Error("failed result was cached")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2, 1) // one shard, two entries
	mk := func(k string) { c.Do(context.Background(), k, func() ([]byte, error) { return []byte(k), nil }) }
	mk("a")
	mk("b")
	mk("a") // refresh a; b is now LRU
	mk("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, src, _ := c.Do(context.Background(), "a", func() ([]byte, error) { return []byte("a"), nil }); src != Hit {
		t.Errorf("a evicted, want it kept")
	}
	if _, src, _ := c.Do(context.Background(), "b", func() ([]byte, error) { return []byte("b"), nil }); src != Miss {
		t.Errorf("b kept, want it evicted")
	}
	if c.evictions.Load() == 0 {
		t.Error("no evictions counted")
	}
}

func TestCacheDisabledStillCollapses(t *testing.T) {
	c := newCache(-1, 4)
	var calls atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	shared := atomic.Int64{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, src, err := c.Do(context.Background(), "k", func() ([]byte, error) {
				calls.Add(1)
				<-gate
				return []byte("v"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if src == Shared {
				shared.Add(1)
			}
		}()
	}
	// Let the waiters pile onto the single flight, then release it.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1 (singleflight)", got)
	}
	if shared.Load() != 7 {
		t.Errorf("shared = %d, want 7", shared.Load())
	}
	if c.Len() != 0 {
		t.Errorf("disabled cache stored %d entries", c.Len())
	}
	// Nothing stored: the next call runs fn again.
	if _, src, _ := c.Do(context.Background(), "k", func() ([]byte, error) { return []byte("v"), nil }); src != Miss {
		t.Errorf("disabled cache served a %v", src)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := newCache(8, 1)
	gate := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), "k", func() ([]byte, error) {
		close(started)
		<-gate
		return []byte("v"), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, "k", func() ([]byte, error) { return nil, nil }); err != context.Canceled {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
	close(gate)
}

func TestCachePurge(t *testing.T) {
	c := newCache(32, 4)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Do(context.Background(), k, func() ([]byte, error) { return []byte(k), nil })
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d, want 0", c.Len())
	}
	if _, src, _ := c.Do(context.Background(), "k3", func() ([]byte, error) { return []byte("k3"), nil }); src != Miss {
		t.Errorf("purged key served a %v", src)
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := newCache(64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%32)
				v, _, err := c.Do(context.Background(), k, func() ([]byte, error) { return []byte(k), nil })
				if err != nil {
					t.Errorf("Do(%s): %v", k, err)
					return
				}
				if string(v) != k {
					t.Errorf("Do(%s) = %q", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
