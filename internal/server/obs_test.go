package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pdf"
	"repro/internal/shard"
	"repro/internal/store"
)

// ---- a small Prometheus text-exposition parser ---------------------------
//
// The repo renders /metrics by hand, so these tests parse the scrape for
// real instead of substring-matching: every sample must belong to a declared
// family, every value must be a float, and histogram series must be
// internally consistent (cumulative buckets, +Inf == _count).

type promFamily struct {
	typ     string
	samples map[string]float64 // full series (name + label set) -> value
}

// parseProm parses a text-format scrape, failing the test on any malformed
// line, sample without a TYPE declaration, or duplicate series.
func parseProm(t *testing.T, body string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	family := func(sample string) string {
		name := sample
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if f, ok := fams[base]; ok && f.typ == "histogram" {
				return base
			}
		}
		return name
	}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				name, typ := parts[2], parts[3]
				if f, ok := fams[name]; ok && len(f.samples) > 0 {
					t.Fatalf("line %d: TYPE %s declared after its samples", ln+1, name)
				}
				fams[name] = &promFamily{typ: typ, samples: map[string]float64{}}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		series, raw := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("line %d: value %q: %v", ln+1, raw, err)
		}
		if i := strings.IndexByte(series, '{'); i >= 0 && !strings.HasSuffix(series, "}") {
			t.Fatalf("line %d: unterminated label set %q", ln+1, series)
		}
		fam, ok := fams[family(series)]
		if !ok {
			t.Fatalf("line %d: sample %q has no TYPE declaration", ln+1, series)
		}
		if _, dup := fam.samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		fam.samples[series] = val
	}
	return fams
}

// checkHistogram asserts one labeled histogram child is internally
// consistent and returns its _count.
func checkHistogram(t *testing.T, fams map[string]*promFamily, name, labels string) float64 {
	t.Helper()
	fam, ok := fams[name]
	if !ok {
		t.Fatalf("family %s missing", name)
	}
	if fam.typ != "histogram" {
		t.Fatalf("family %s is a %s, want histogram", name, fam.typ)
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	prev, sawInf := -1.0, false
	for series, val := range fam.samples {
		if !strings.HasPrefix(series, name+"_bucket{"+labels+sep+"le=") {
			continue
		}
		if val < prev && strings.Contains(series, `le="+Inf"`) {
			t.Fatalf("%s: +Inf bucket below a finite one", series)
		}
		if strings.Contains(series, `le="+Inf"`) {
			sawInf = true
			wantCount := name + "_count"
			if labels != "" {
				wantCount += "{" + labels + "}"
			}
			if cnt, ok := fam.samples[wantCount]; !ok || cnt != val {
				t.Fatalf("%s: +Inf=%g but %s=%g (ok=%v)", series, val, wantCount, cnt, ok)
			}
		}
	}
	if !sawInf {
		t.Fatalf("%s{%s}: no +Inf bucket rendered", name, labels)
	}
	countSeries := name + "_count"
	if labels != "" {
		countSeries += "{" + labels + "}"
	}
	return fam.samples[countSeries]
}

// ---- single server -------------------------------------------------------

// TestMetricsParseSingleServer runs a query burst and then parses the whole
// scrape: every family well-formed, the per-phase histograms present and
// non-empty, build info and uptime exposed.
func TestMetricsParseSingleServer(t *testing.T) {
	s := testServer(t, Config{})
	defer s.Close()
	for i := 0; i < 5; i++ {
		q := 100 + 50*float64(i)
		if rec := get(t, s, fmt.Sprintf("/v1/cpnn?q=%g&p=0.3&delta=0.01", q)); rec.Code != 200 {
			t.Fatalf("cpnn: %d", rec.Code)
		}
	}
	if rec := get(t, s, "/v1/pnn?q=500"); rec.Code != 200 {
		t.Fatalf("pnn: %d", rec.Code)
	}
	if rec := get(t, s, "/v1/knn?q=300&k=2&p=0.3&samples=200"); rec.Code != 200 {
		t.Fatalf("knn: %d", rec.Code)
	}

	rec := get(t, s, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	fams := parseProm(t, rec.Body.String())

	for _, phase := range []string{"filter", "derive", "verify"} {
		labels := fmt.Sprintf("phase=%q,endpoint=%q", phase, "cpnn")
		if n := checkHistogram(t, fams, "cpnn_query_phase_seconds", labels); n != 5 {
			t.Errorf("phase=%s count = %g, want 5", phase, n)
		}
	}
	if n := checkHistogram(t, fams, "cpnn_query_phase_seconds", `phase="filter",endpoint="pnn"`); n != 1 {
		t.Errorf("pnn phase count = %g, want 1", n)
	}
	if _, ok := fams["cpnn_build_info"]; !ok {
		t.Error("cpnn_build_info missing")
	}
	if up, ok := fams["cpnn_server_uptime_seconds"]; !ok || len(up.samples) != 1 {
		t.Error("cpnn_server_uptime_seconds missing")
	}
	if _, ok := fams["cpnn_server_sse_closed_total"]; !ok {
		t.Error("cpnn_server_sse_closed_total missing")
	}
}

// TestPhaseHistogramSkipsCacheHits: a cache hit spends no engine time, so it
// must not add phase observations.
func TestPhaseHistogramSkipsCacheHits(t *testing.T) {
	s := testServer(t, Config{})
	defer s.Close()
	for i := 0; i < 3; i++ {
		if rec := get(t, s, "/v1/cpnn?q=500&p=0.3&delta=0.01"); rec.Code != 200 {
			t.Fatalf("cpnn: %d", rec.Code)
		}
	}
	fams := parseProm(t, get(t, s, "/metrics").Body.String())
	if n := checkHistogram(t, fams, "cpnn_query_phase_seconds", `phase="filter",endpoint="cpnn"`); n != 1 {
		t.Fatalf("3 requests (2 cache hits) observed %g phase samples, want 1", n)
	}
}

// ---- sharded server: metrics + end-to-end trace --------------------------

// shardedObsServer builds a 3-shard in-process cluster server with the full
// observability wiring a cpnn-serve -shards boot would have.
func shardedObsServer(t *testing.T) (*Server, *obs.Tracer) {
	t.Helper()
	srcDir, dstDir := t.TempDir(), t.TempDir()
	st, err := store.Open(srcDir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var ops []store.Op
	for i := 0; i < 30; i++ {
		lo := float64(i * 25)
		ops = append(ops, store.InsertObject(pdf.MustUniform(lo, lo+10)))
	}
	if _, err := st.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.SplitStore(srcDir, dstDir, 3, store.Options{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	cluster, err := shard.OpenCluster(dstDir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })

	tracer := obs.NewTracer(0)
	reg := obs.NewRegistry()
	member := obs.NewHistogramVec("cpnn_server_shard_member_seconds",
		"Per-member hop latency.", []string{"op", "shard"}, nil)
	fanout := obs.NewHistogram("cpnn_server_shard_fanout_members",
		"Gather fan-out.", obs.FanoutBuckets)
	reg.Register(member)
	reg.Register(fanout)
	rt, err := cluster.RouterObs(shard.Obs{
		Tracer: tracer, MemberSeconds: member, Fanout: fanout,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		ShardRouter: rt, ShardCluster: cluster,
		Tracer: tracer, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, tracer
}

// TestShardedTracePropagation is the acceptance check: one traced query
// through the sharded stack yields a single trace holding the router
// ingress span plus per-member bound/gather spans, all sharing the trace ID
// the response header reported, with phase durations recorded.
func TestShardedTracePropagation(t *testing.T) {
	s, tracer := shardedObsServer(t)

	rec := get(t, s, "/v1/cpnn?q=300&p=0.3&delta=0.01")
	if rec.Code != 200 {
		t.Fatalf("cpnn: %d: %s", rec.Code, rec.Body)
	}
	hdr := rec.Header().Get(obs.TraceHeader)
	sc, ok := obs.ParseHeader(hdr)
	if !ok {
		t.Fatalf("response %s header %q unparsable", obs.TraceHeader, hdr)
	}

	var trace *obs.TraceJSON
	for _, tr := range tracer.Traces(0, 0) {
		if tr.TraceID == sc.TraceHex() {
			trace = &tr
			break
		}
	}
	if trace == nil {
		t.Fatalf("trace %s not in the tracer ring", sc.TraceHex())
	}
	var ingress, bound, gather int
	for _, sp := range trace.Spans {
		switch {
		case sp.Component == "server" && strings.HasPrefix(sp.Name, "GET /v1/cpnn"):
			ingress++
			if sp.Attrs["phase_filter_ms"] == "" || sp.Attrs["phase_verify_ms"] == "" {
				t.Errorf("ingress span lacks phase attrs: %v", sp.Attrs)
			}
			if sp.Attrs["status"] != "200" {
				t.Errorf("ingress status attr = %q", sp.Attrs["status"])
			}
		case sp.Component == "shard" && sp.Name == "member.bound":
			bound++
			if sp.Attrs["shard"] == "" {
				t.Errorf("bound span lacks shard attr")
			}
		case sp.Component == "shard" && sp.Name == "member.gather":
			gather++
		}
	}
	if ingress != 1 {
		t.Errorf("ingress spans = %d, want 1", ingress)
	}
	if bound != 3 {
		t.Errorf("member.bound spans = %d, want 3 (every shard is bounded)", bound)
	}
	if gather < 1 {
		t.Errorf("member.gather spans = %d, want >= 1", gather)
	}

	// /debug/traces serves the same trace over HTTP.
	drec := get(t, s, "/debug/traces?n=10")
	if drec.Code != 200 {
		t.Fatalf("/debug/traces: %d", drec.Code)
	}
	if !strings.Contains(drec.Body.String(), sc.TraceHex()) {
		t.Fatal("/debug/traces does not list the query's trace")
	}
}

// TestMetricsParseShardedServer parses the router-mode scrape: the shard
// families, the phase histograms, and the registered router histograms all
// well-formed in one exposition.
func TestMetricsParseShardedServer(t *testing.T) {
	s, _ := shardedObsServer(t)
	for _, u := range []string{
		"/v1/cpnn?q=137.5&p=0.3&delta=0.01",
		"/v1/cpnn?q=512&p=0.5&delta=0.05",
		"/v1/pnn?q=300",
	} {
		if rec := get(t, s, u); rec.Code != 200 {
			t.Fatalf("%s: %d", u, rec.Code)
		}
	}
	rec := get(t, s, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	fams := parseProm(t, rec.Body.String())
	if n := checkHistogram(t, fams, "cpnn_query_phase_seconds", `phase="filter",endpoint="cpnn"`); n != 2 {
		t.Errorf("sharded cpnn phase count = %g, want 2", n)
	}
	if n := checkHistogram(t, fams, "cpnn_server_shard_member_seconds", `op="bound",shard="0"`); n < 1 {
		t.Errorf("member bound histogram empty")
	}
	if n := checkHistogram(t, fams, "cpnn_server_shard_fanout_members", ""); n != 3 {
		t.Errorf("fanout observations = %g, want 3", n)
	}
	if _, ok := fams["cpnn_server_shard_count"]; !ok {
		t.Error("cpnn_server_shard_count missing")
	}
}

// TestMetricsParseReplicaServer parses a follower's scrape end to end,
// including the replication families.
func TestMetricsParseReplicaServer(t *testing.T) {
	primary, rep := replicaPair(t, 4)
	if rec := get(t, primary, "/v1/cpnn?q=15&p=0.3&delta=0.01"); rec.Code != 200 {
		t.Fatalf("primary cpnn: %d", rec.Code)
	}
	for _, s := range []*Server{primary, rep} {
		rec := get(t, s, "/metrics")
		if rec.Code != 200 {
			t.Fatalf("metrics: %d", rec.Code)
		}
		parseProm(t, rec.Body.String())
	}
	fams := parseProm(t, get(t, rep, "/metrics").Body.String())
	if _, ok := fams["cpnn_server_replica_caught_up"]; !ok {
		t.Error("follower scrape lacks cpnn_server_replica_caught_up")
	}
}

// ---- slow-query log ------------------------------------------------------

func TestSlowQueryLog(t *testing.T) {
	s := testServer(t, Config{SlowQueryThreshold: time.Nanosecond})
	defer s.Close()
	if rec := get(t, s, "/v1/cpnn?q=500&p=0.3&delta=0.01"); rec.Code != 200 {
		t.Fatalf("cpnn: %d", rec.Code)
	}
	rec := get(t, s, "/debug/slowlog")
	if rec.Code != 200 {
		t.Fatalf("slowlog: %d", rec.Code)
	}
	var out struct {
		ThresholdMs float64         `json:"threshold_ms"`
		Entries     []obs.SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body)
	}
	var entry *obs.SlowEntry
	for i := range out.Entries {
		if out.Entries[i].Endpoint == "/v1/cpnn" {
			entry = &out.Entries[i]
		}
	}
	if entry == nil {
		t.Fatalf("no /v1/cpnn entry in %+v", out.Entries)
	}
	if entry.TraceID == "" || entry.Status != 200 || entry.Query == "" {
		t.Fatalf("entry = %+v", entry)
	}
	if entry.Attrs["phase_filter_ms"] == "" || entry.Attrs["cache"] != "miss" {
		t.Fatalf("entry attrs = %v", entry.Attrs)
	}
}

func TestSlowQueryLogDisabledByDefault(t *testing.T) {
	s := testServer(t, Config{})
	defer s.Close()
	if rec := get(t, s, "/v1/cpnn?q=500&p=0.3&delta=0.01"); rec.Code != 200 {
		t.Fatalf("cpnn: %d", rec.Code)
	}
	var out struct {
		Entries []obs.SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(get(t, s, "/debug/slowlog").Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 0 {
		t.Fatalf("disabled slowlog holds %d entries", len(out.Entries))
	}
}

// ---- SSE close accounting ------------------------------------------------

// TestSSECloseReasonClientGone: dropping the client connection ends the
// stream and bumps the client_gone close counter.
func TestSSECloseReasonClientGone(t *testing.T) {
	s := storeBackedServer(t, t.TempDir(), 2)
	defer s.Close()
	doJSON(t, s, http.MethodPost, "/v1/monitors", `{"kind":"cpnn","q":7,"p":0.3,"delta":0.01}`)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: %d", resp.StatusCode)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	resp.Body.Close() // client goes away

	deadline := time.Now().Add(10 * time.Second)
	for s.m.sseClosed[sseClientGone].Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client_gone close never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fams := parseProm(t, get(t, s, "/metrics").Body.String())
	series := `cpnn_server_sse_closed_total{reason="client_gone"}`
	if got := fams["cpnn_server_sse_closed_total"].samples[series]; got != 1 {
		t.Fatalf("%s = %g, want 1", series, got)
	}
}

// TestSSECloseReasonDrain: Drain ends open streams with reason "drain".
func TestSSECloseReasonDrain(t *testing.T) {
	s := storeBackedServer(t, t.TempDir(), 2)
	defer s.Close()
	doJSON(t, s, http.MethodPost, "/v1/monitors", `{"kind":"cpnn","q":7,"p":0.3,"delta":0.01}`)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	s.Drain()
	deadline := time.Now().Add(10 * time.Second)
	for s.m.sseClosed[sseDrain].Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drain close never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ---- healthz build/uptime ------------------------------------------------

func TestHealthzBuildAndUptime(t *testing.T) {
	s := testServer(t, Config{})
	defer s.Close()
	var hz struct {
		Build  string  `json:"build"`
		Uptime float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Build != obs.Version {
		t.Fatalf("build = %q, want %q", hz.Build, obs.Version)
	}
	if hz.Uptime < 0 {
		t.Fatalf("uptime = %g", hz.Uptime)
	}
}
