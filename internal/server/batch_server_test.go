package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postBatch performs one POST /v1/batch with the given JSON body.
func postBatch(t testing.TB, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// TestBatchMatchesSingleEndpoint: every per-point body of a batch response
// must be byte-identical to the single-query endpoint's body for the same
// parameters — they share cache keys, so anything else would poison the
// cache.
func TestBatchMatchesSingleEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	rec := postBatch(t, s, `{"queries":[120,480,733.5],"p":0.2,"delta":0.01}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 3 || len(resp.Results) != 3 || len(resp.Cache) != 3 {
		t.Fatalf("count=%d results=%d cache=%d, want 3 each", resp.Count, len(resp.Results), len(resp.Cache))
	}
	if resp.Misses != 3 {
		t.Fatalf("fresh batch reported %d misses, want 3", resp.Misses)
	}
	for i, q := range []float64{120, 480, 733.5} {
		single := get(t, s, fmt.Sprintf("/v1/cpnn?q=%g&p=0.2&delta=0.01", q))
		if single.Code != http.StatusOK {
			t.Fatalf("single status %d", single.Code)
		}
		if !bytes.Equal(bytes.TrimSpace(single.Body.Bytes()), bytes.TrimSpace(resp.Results[i])) {
			t.Fatalf("point %d: batch body differs from single endpoint\nbatch:  %s\nsingle: %s",
				i, resp.Results[i], single.Body.Bytes())
		}
		if single.Header().Get("X-Cache") != "hit" {
			t.Errorf("point %d: single query after batch was not a cache hit", i)
		}
	}
}

// TestBatchCacheAndDuplicates: duplicate points within one request evaluate
// once; a repeated batch is served entirely from cache.
func TestBatchCacheAndDuplicates(t *testing.T) {
	s := testServer(t, Config{})
	rec := postBatch(t, s, `{"queries":[100,100,250]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Results[0], resp.Results[1]) {
		t.Error("duplicate points returned different bodies")
	}
	if got := s.cc.misses.Load(); got != 2 {
		t.Errorf("3 points (2 distinct) caused %d evaluations, want 2", got)
	}
	rec = postBatch(t, s, `{"queries":[100,100,250]}`)
	var again batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if again.Hits != 3 || again.Misses != 0 {
		t.Errorf("repeat batch: hits=%d misses=%d, want 3/0", again.Hits, again.Misses)
	}
	if again.WallMs < 0 {
		t.Error("negative wall time")
	}
}

// TestBatchValidation: every malformed batch is a 400 (or the dedicated
// status), never a 500 — including non-finite coordinates, which JSON cannot
// express directly but callers still try.
func TestBatchValidation(t *testing.T) {
	s := testServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{"queries":[1,`, http.StatusBadRequest},
		{"nan literal", `{"queries":[NaN]}`, http.StatusBadRequest},
		{"inf literal", `{"queries":[1e999]}`, http.StatusBadRequest},
		{"null point", `{"queries":[null]}`, http.StatusBadRequest},
		{"string point", `{"queries":["abc"]}`, http.StatusBadRequest},
		{"empty", `{"queries":[]}`, http.StatusBadRequest},
		{"missing", `{}`, http.StatusBadRequest},
		{"bad strategy", `{"queries":[1],"strategy":"warp"}`, http.StatusBadRequest},
		{"p too large", `{"queries":[1],"p":1.5}`, http.StatusBadRequest},
		{"p zero", `{"queries":[1],"p":0}`, http.StatusBadRequest},
		{"delta negative", `{"queries":[1],"delta":-0.1}`, http.StatusBadRequest},
		{"unknown field", `{"queries":[1],"bogus":true}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := postBatch(t, s, tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, rec.Code, tc.status, rec.Body)
		}
		if rec.Code >= 500 {
			t.Errorf("%s: server error for client input", tc.name)
		}
	}

	// Too many points.
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i <= MaxBatchQueries; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString("1")
	}
	sb.WriteString(`]}`)
	if rec := postBatch(t, s, sb.String()); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", rec.Code)
	}

	// Wrong method.
	if rec := get(t, s, "/v1/batch"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch: status %d, want 405", rec.Code)
	}
}

// TestSingleEndpointsRejectNonFinite: the shared finite-coordinate guard
// must turn NaN/Inf coordinates into 400s on every single-query endpoint.
func TestSingleEndpointsRejectNonFinite(t *testing.T) {
	s := testServer(t, Config{})
	for _, url := range []string{
		"/v1/cpnn?q=NaN",
		"/v1/cpnn?q=%2BInf",
		"/v1/cpnn?q=-Inf",
		"/v1/cpnn?q=500&p=NaN",
		"/v1/pnn?q=NaN",
		"/v1/knn?q=Inf&k=2",
	} {
		rec := get(t, s, url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", url, rec.Code, rec.Body)
		}
	}
}

// TestBatchUsesOneSnapshot: the version stamped on a batch envelope and all
// its per-point results must agree, and a reload bumps it for the next
// batch.
func TestBatchUsesOneSnapshot(t *testing.T) {
	s := testServer(t, Config{})
	parse := func(rec *httptest.ResponseRecorder) batchResponse {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var resp batchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := parse(postBatch(t, s, `{"queries":[10,700]}`))
	if resp.Version != 1 {
		t.Fatalf("version %d, want 1", resp.Version)
	}
	for i, raw := range resp.Results {
		var one cpnnResponse
		if err := json.Unmarshal(raw, &one); err != nil {
			t.Fatal(err)
		}
		if one.Version != resp.Version {
			t.Errorf("point %d evaluated against version %d, envelope says %d", i, one.Version, resp.Version)
		}
	}
	if _, err := s.Reload(testDataset(t, 21), "reload"); err != nil {
		t.Fatal(err)
	}
	resp = parse(postBatch(t, s, `{"queries":[10,700]}`))
	if resp.Version != 2 {
		t.Errorf("post-reload version %d, want 2", resp.Version)
	}
	if resp.Misses != 2 {
		t.Errorf("post-reload batch hits stale cache: %+v", resp)
	}
}
