package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/pdf"
	"repro/internal/uncertain"
)

func TestMonitorsRequireStore(t *testing.T) {
	s, err := New(Config{Dataset: uncertain.NewDataset([]pdf.PDF{pdf.MustUniform(0, 10)})})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, req := range [][2]string{
		{http.MethodPost, "/v1/monitors"},
		{http.MethodGet, "/v1/subscribe"},
	} {
		w := doJSON(t, s, req[0], req[1], "")
		if w.Code != http.StatusNotImplemented {
			t.Fatalf("%s %s without store: %d, want 501", req[0], req[1], w.Code)
		}
	}
}

func TestMonitorLifecycle(t *testing.T) {
	s := storeBackedServer(t, t.TempDir(), 4)
	defer s.Close()

	// Register a standing C-PNN near the seed objects (regions [0,5]..[30,35]).
	w := doJSON(t, s, http.MethodPost, "/v1/monitors", `{"kind":"cpnn","q":7,"p":0.3,"delta":0.01}`)
	if w.Code != http.StatusOK {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	var reg monitorJSON
	if err := json.Unmarshal(w.Body.Bytes(), &reg); err != nil {
		t.Fatal(err)
	}
	if reg.ID == 0 || reg.Kind != "cpnn" || len(reg.Answer) == 0 {
		t.Fatalf("registration = %+v", reg)
	}

	// List shows it.
	w = doJSON(t, s, http.MethodGet, "/v1/monitors", "")
	var list struct {
		Monitors []monitorJSON `json:"monitors"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Monitors) != 1 || list.Monitors[0].ID != reg.ID {
		t.Fatalf("list = %+v", list)
	}

	// A relevant object change bumps the monitor's answer version.
	w = doJSON(t, s, http.MethodPost, "/v1/objects", `{"objects":[{"uniform":{"lo":6,"hi":8}}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", w.Code, w.Body)
	}
	if err := s.monitor.Sync(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	w = doJSON(t, s, http.MethodGet, "/v1/monitors", "")
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if got := list.Monitors[0]; got.Version <= reg.Version || string(got.Answer) == string(reg.Answer) {
		t.Fatalf("answer did not advance: %+v vs %+v", got, reg)
	}

	// Delete it; a second delete 404s.
	w = doJSON(t, s, http.MethodDelete, fmt.Sprintf("/v1/monitors?id=%d", reg.ID), "")
	if w.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", w.Code, w.Body)
	}
	w = doJSON(t, s, http.MethodDelete, fmt.Sprintf("/v1/monitors?id=%d", reg.ID), "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", w.Code)
	}

	// Malformed registrations are 400s; an explicit p:0 is invalid (P must
	// be in (0,1]), not silently defaulted.
	for _, body := range []string{
		``,
		`{`,
		`{"kind":"nope","q":1}`,
		`{"kind":"cpnn"}{"kind":"cpnn"}`,
		`{"kind":"cpnn","q":1,"p":7}`,
		`{"kind":"cpnn","q":1,"p":0}`,
		`{"kind":"knn","q":1}`,
		`{"kind":"cpnn","q":1,"unknown_field":3}`,
		`{"kind":"cpnn","q":1e999}`,
	} {
		if w := doJSON(t, s, http.MethodPost, "/v1/monitors", body); w.Code != http.StatusBadRequest {
			t.Fatalf("body %q: %d, want 400", body, w.Code)
		}
	}

	// An explicit delta:0 is valid and honored — not coerced to the 0.01
	// default (only an omitted delta defaults).
	w = doJSON(t, s, http.MethodPost, "/v1/monitors", `{"kind":"cpnn","q":7,"p":0.3,"delta":0}`)
	if w.Code != http.StatusOK {
		t.Fatalf("delta:0 registration: %d %s", w.Code, w.Body)
	}
	var zreg monitorJSON
	if err := json.Unmarshal(w.Body.Bytes(), &zreg); err != nil {
		t.Fatal(err)
	}
	if st, ok := s.monitor.Get(zreg.ID); !ok || st.Spec.Constraint.Delta != 0 {
		t.Fatalf("explicit delta:0 coerced: %+v", st)
	}
}

// TestSubscribeSSE drives the full SSE flow over a real connection:
// snapshot event on connect, update event after a relevant commit, stream
// closed by Drain.
func TestSubscribeSSE(t *testing.T) {
	s := storeBackedServer(t, t.TempDir(), 4)
	defer s.Close()

	w := doJSON(t, s, http.MethodPost, "/v1/monitors", `{"kind":"cpnn","q":7}`)
	if w.Code != http.StatusOK {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	var reg monitorJSON
	if err := json.Unmarshal(w.Body.Bytes(), &reg); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/subscribe?ids=" + fmt.Sprint(reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := make(chan [2]string, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var event, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && event != "":
				events <- [2]string{event, data}
				event, data = "", ""
			}
		}
	}()
	readEvent := func(wantType string) monitorJSON {
		t.Helper()
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed waiting for %q", wantType)
			}
			if ev[0] != wantType {
				t.Fatalf("event %q (%s), want %q", ev[0], ev[1], wantType)
			}
			var out monitorJSON
			if err := json.Unmarshal([]byte(ev[1]), &out); err != nil {
				t.Fatalf("bad %s payload %q: %v", wantType, ev[1], err)
			}
			return out
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %q", wantType)
			return monitorJSON{}
		}
	}

	snap := readEvent("snapshot")
	if snap.ID != reg.ID || string(snap.Answer) != string(reg.Answer) {
		t.Fatalf("snapshot %+v != registration %+v", snap, reg)
	}

	// A relevant change pushes an update with the fresh answer.
	if w := doJSON(t, s, http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":6,"hi":8}}]}`); w.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", w.Code, w.Body)
	}
	upd := readEvent("update")
	if upd.ID != reg.ID || upd.Version <= reg.Version {
		t.Fatalf("update = %+v", upd)
	}
	st, ok := s.monitor.Get(reg.ID)
	if !ok || string(st.Answer) != string(upd.Answer) {
		t.Fatalf("pushed answer %s != stored %s", upd.Answer, st.Answer)
	}

	// Drain ends the stream promptly (Shutdown must not hang on SSE).
	s.Drain()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-events:
			if !ok {
				return // stream closed: drain worked
			}
		case <-deadline:
			t.Fatal("SSE stream survived Drain")
		}
	}
}

// TestSubscribeWhileDraining: new subscriptions during drain are refused
// with a Retry-After.
func TestSubscribeWhileDraining(t *testing.T) {
	s := storeBackedServer(t, t.TempDir(), 2)
	defer s.Close()
	s.Drain()
	w := doJSON(t, s, http.MethodGet, "/v1/subscribe", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("subscribe while draining: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("draining 503 lacks Retry-After")
	}
}

// TestHealthzStoreVersion: /healthz carries the durable store version and
// seq alongside the snapshot version, and the draining 503 sets Retry-After.
func TestHealthzStoreVersion(t *testing.T) {
	s := storeBackedServer(t, t.TempDir(), 2)
	defer s.Close()

	w := doJSON(t, s, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	sv, ok := body["store_version"].(float64)
	if !ok {
		t.Fatalf("healthz lacks store_version: %s", w.Body)
	}
	if _, ok := body["store_seq"]; !ok {
		t.Fatalf("healthz lacks store_seq: %s", w.Body)
	}
	if snapV := body["version"].(float64); sv != snapV {
		t.Fatalf("store_version %g != snapshot version %g at rest", sv, snapV)
	}

	s.Drain()
	w = doJSON(t, s, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("draining healthz lacks Retry-After")
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "draining" {
		t.Fatalf("draining body = %s", w.Body)
	}
	if _, ok := body["store_version"]; !ok {
		t.Fatalf("draining healthz lacks store_version: %s", w.Body)
	}
}

// TestStorelessHealthzUnchanged: without a store the healthz body must not
// grow store fields (clients key on their presence).
func TestStorelessHealthzUnchanged(t *testing.T) {
	s, err := New(Config{Dataset: uncertain.NewDataset([]pdf.PDF{pdf.MustUniform(0, 10)})})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := doJSON(t, s, http.MethodGet, "/healthz", "")
	var body map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if _, ok := body["store_version"]; ok {
		t.Fatalf("storeless healthz grew store_version: %s", w.Body)
	}
}

// TestMetricsMonitorBlock: /metrics exposes the monitor counters in store
// mode.
func TestMetricsMonitorBlock(t *testing.T) {
	s := storeBackedServer(t, t.TempDir(), 2)
	defer s.Close()
	if w := doJSON(t, s, http.MethodPost, "/v1/monitors", `{"kind":"pnn","q":7}`); w.Code != http.StatusOK {
		t.Fatalf("register: %d", w.Code)
	}
	w := doJSON(t, s, http.MethodGet, "/metrics", "")
	out := w.Body.String()
	for _, want := range []string{
		"cpnn_server_monitor_active 1",
		"cpnn_server_monitor_reevals_total",
		"cpnn_server_monitor_pruned_total",
		"cpnn_server_monitor_early_exit_total",
		"cpnn_server_monitor_2d_fallback_total",
		"cpnn_server_monitor_state_bytes",
		"cpnn_server_monitor_state_evictions_total",
		"cpnn_server_monitor_folds_reused_total",
		"cpnn_server_store_wal_records",
		"cpnn_server_store_feed_subscribers",
		`cpnn_server_requests_total{endpoint="monitors"}`,
		`cpnn_server_requests_total{endpoint="subscribe"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output lacks %q:\n%s", want, out)
		}
	}
}

// FuzzMonitorRequest hardens the registration decoder: arbitrary bodies must
// either produce a validated spec or a clean error — never a panic, and
// never a spec that fails its own Validate.
func FuzzMonitorRequest(f *testing.F) {
	f.Add([]byte(`{"kind":"cpnn","q":7,"p":0.3,"delta":0.01}`))
	f.Add([]byte(`{"kind":"pnn","q":-12.5}`))
	f.Add([]byte(`{"kind":"knn","q":3,"p":0.5,"k":2,"samples":100,"seed":4}`))
	f.Add([]byte(`{"kind":"cpnn","q":1e308,"strategy":"basic"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"cpnn","q":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := decodeMonitorRequest(data)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("decoded spec %+v fails validation: %v (body %q)", spec, verr, data)
		}
	})
}
