package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/uncertain"
)

// benchServer builds a serving stack over a paper-scale-ish dataset once per
// benchmark run.
func benchServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	ds, err := uncertain.GenerateUniform(uncertain.GenOptions{
		N:            20000,
		Domain:       10000,
		MeanLen:      13,
		MinLen:       0.5,
		MaxLen:       120,
		Clusters:     60,
		ClusterFrac:  0.97,
		ClusterSigma: 10,
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg.Dataset = ds
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchGet(b *testing.B, s *Server, url string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: status %d: %s", url, rec.Code, rec.Body)
	}
}

// BenchmarkServerCPNN measures concurrent serving throughput end to end
// (HTTP handler, cache, worker pool, engine), the quantity the bench
// trajectory needs now that the repo serves queries rather than evaluating
// them one process-lifetime at a time.
//
//	cold  — every request is a distinct query point: all cache misses, all
//	        engine evaluations (upper bound on per-query serving cost).
//	warm  — requests cycle a small working set: steady-state cache hits
//	        (upper bound on cache-path throughput).
func BenchmarkServerCPNN(b *testing.B) {
	queries := uncertain.QueryWorkload(4096, 10000, 9)

	b.Run("cold", func(b *testing.B) {
		s := benchServer(b, Config{CacheEntries: -1})
		var next atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				// A fresh point each iteration: misses by construction.
				i := next.Add(1)
				q := float64(i)*1e-3 + queries[int(i)%len(queries)]
				benchGet(b, s, fmt.Sprintf("/v1/cpnn?q=%g&p=0.3&delta=0.01", q))
			}
		})
	})

	b.Run("warm", func(b *testing.B) {
		s := benchServer(b, Config{})
		// Pre-warm a small working set, then serve it from cache.
		for i := 0; i < 32; i++ {
			benchGet(b, s, fmt.Sprintf("/v1/cpnn?q=%g&p=0.3&delta=0.01", queries[i]))
		}
		var next atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(next.Add(1)) % 32
				benchGet(b, s, fmt.Sprintf("/v1/cpnn?q=%g&p=0.3&delta=0.01", queries[i]))
			}
		})
	})
}

// BenchmarkServerBatch measures POST /v1/batch end to end with all-distinct
// (cold) points, at a fixed batch size per request.
func BenchmarkServerBatch(b *testing.B) {
	queries := uncertain.QueryWorkload(4096, 10000, 9)
	s := benchServer(b, Config{CacheEntries: -1})
	const size = 64
	var next atomic.Int64
	body := func() []byte {
		var buf []byte
		buf = append(buf, `{"queries":[`...)
		for i := 0; i < size; i++ {
			if i > 0 {
				buf = append(buf, ',')
			}
			q := queries[int(next.Add(1))%len(queries)]
			buf = append(buf, fmt.Sprintf("%g", q)...)
		}
		buf = append(buf, `]}`...)
		return buf
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body()))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
	b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
