package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/pdf"
	"repro/internal/store"
	"repro/internal/uncertain"
)

func storeBackedServer(t *testing.T, dir string, seedObjects int) *Server {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: st, QueueTimeout: -1}
	if seedObjects > 0 {
		pdfs := make([]pdf.PDF, seedObjects)
		for i := range pdfs {
			pdfs[i] = pdf.MustUniform(float64(10*i), float64(10*i)+5)
		}
		cfg.Dataset = uncertain.NewDataset(pdfs)
		cfg.Source = "seed"
	}
	s, err := New(cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	return s
}

func doJSON(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func TestObjectsInsertUpdateDelete(t *testing.T) {
	s := storeBackedServer(t, t.TempDir(), 3)
	defer s.Close()

	// Insert two objects.
	w := doJSON(t, s, http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":100,"hi":110}},{"hist":{"edges":[200,201,202],"weights":[1,3]}}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", w.Code, w.Body)
	}
	var resp objectsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.IDs) != 2 || resp.Objects != 5 || resp.Version != 2 {
		t.Fatalf("insert response: %+v", resp)
	}
	idA, idB := resp.IDs[0], resp.IDs[1]

	// The inserted object answers queries under its stable ID.
	w = doJSON(t, s, http.MethodGet, "/v1/cpnn?q=105&p=0.3", "")
	if w.Code != http.StatusOK {
		t.Fatalf("cpnn: %d %s", w.Code, w.Body)
	}
	var cp struct {
		Version uint64 `json:"version"`
		Answers []struct {
			ID int `json:"id"`
		} `json:"answers"`
	}
	json.Unmarshal(w.Body.Bytes(), &cp)
	if cp.Version != 2 {
		t.Fatalf("cpnn served version %d", cp.Version)
	}
	found := false
	for _, a := range cp.Answers {
		if a.ID == int(idA) {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted object %d not in answers %+v", idA, cp.Answers)
	}

	// Update A away from the query point; the old cache entry must not serve.
	w = doJSON(t, s, http.MethodPost, "/v1/objects",
		fmt.Sprintf(`{"objects":[{"id":%d,"uniform":{"lo":5000,"hi":5010}}]}`, idA))
	if w.Code != http.StatusOK {
		t.Fatalf("update: %d %s", w.Code, w.Body)
	}
	w = doJSON(t, s, http.MethodGet, "/v1/cpnn?q=105&p=0.3", "")
	json.Unmarshal(w.Body.Bytes(), &cp)
	if cp.Version != 3 {
		t.Fatalf("post-update version %d", cp.Version)
	}
	for _, a := range cp.Answers {
		if a.ID == int(idA) {
			t.Fatalf("moved object %d still answers at q=105", idA)
		}
	}

	// Delete B via query param.
	w = doJSON(t, s, http.MethodDelete, fmt.Sprintf("/v1/objects?id=%d", idB), "")
	if w.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", w.Code, w.Body)
	}
	json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Deleted != 1 || resp.Objects != 4 {
		t.Fatalf("delete response: %+v", resp)
	}

	// Unknown ID → 404; invalid payload → 400.
	if w = doJSON(t, s, http.MethodDelete, "/v1/objects?id=99999", ""); w.Code != http.StatusNotFound {
		t.Fatalf("delete unknown: %d %s", w.Code, w.Body)
	}
	if w = doJSON(t, s, http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":5,"hi":1}}]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("inverted uniform: %d %s", w.Code, w.Body)
	}
	if w = doJSON(t, s, http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":1,"hi":1e999}}]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("infinite hi: %d %s", w.Code, w.Body)
	}
	if w = doJSON(t, s, http.MethodPost, "/v1/objects",
		`{"objects":[{"uniform":{"lo":0,"hi":1},"disk":{"x":0,"y":0,"r":1}}]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("two payloads: %d %s", w.Code, w.Body)
	}
}

func TestObjectsWithoutStoreIs501(t *testing.T) {
	s := testServer(t, Config{})
	w := doJSON(t, s, http.MethodPost, "/v1/objects", `{"objects":[{"uniform":{"lo":0,"hi":1}}]}`)
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("objects without store: %d %s", w.Code, w.Body)
	}
}

// TestDatasetReloadIsDurable reloads through the store, restarts the server
// over the same directory, and expects the reloaded dataset and a strictly
// higher version to survive.
func TestDatasetReloadIsDurable(t *testing.T) {
	dir := t.TempDir()
	s := storeBackedServer(t, dir, 2)

	var lines strings.Builder
	for i := 0; i < 7; i++ {
		fmt.Fprintf(&lines, "%d %d\n", 100*i, 100*i+20)
	}
	w := doJSON(t, s, http.MethodPost, "/v1/dataset?source=reload-test", lines.String())
	if w.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", w.Code, w.Body)
	}
	var info datasetResponse
	json.Unmarshal(w.Body.Bytes(), &info)
	if info.Objects != 7 || info.Version != 2 {
		t.Fatalf("reload info: %+v", info)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same data dir: no Dataset given, contents come back.
	re := storeBackedServer(t, dir, 0)
	defer re.Close()
	snap := re.Snapshot()
	if snap.Objects != 7 {
		t.Fatalf("recovered %d objects", snap.Objects)
	}
	if snap.Version != 2 {
		t.Fatalf("recovered version %d", snap.Version)
	}
	// The next mutation continues the version sequence.
	w = doJSON(t, re, http.MethodPost, "/v1/objects", `{"objects":[{"uniform":{"lo":1,"hi":2}}]}`)
	var resp objectsResponse
	json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Version != 3 {
		t.Fatalf("post-restart commit version %d", resp.Version)
	}
}

// TestDisksOnlyStoreIsNotTreatedAsEmpty guards against a seed dataset
// truncating (and destroying) a store that holds only 2-D objects: such a
// store counts as populated, so the server serves it (with an empty 1-D
// dataset) and the seed is ignored.
func TestDisksOnlyStoreIsNotTreatedAsEmpty(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply([]store.Op{
		store.InsertDisk(geom.Circle{Center: geom.Point{X: 1, Y: 2}, Radius: 3}),
	}); err != nil {
		t.Fatal(err)
	}

	seed := uncertain.NewDataset([]pdf.PDF{pdf.MustUniform(0, 1)})
	s, err := New(Config{Store: st, Dataset: seed, QueueTimeout: -1})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	defer s.Close()
	v := st.View()
	if len(v.Disks) != 1 {
		t.Fatalf("seed dataset destroyed the stored disks: %d left", len(v.Disks))
	}
	if v.Dataset.Len() != 0 {
		t.Fatalf("seed dataset was applied over a populated store: %d 1-D objects", v.Dataset.Len())
	}
}

func TestHealthzDrainsNotReady(t *testing.T) {
	s := storeBackedServer(t, t.TempDir(), 2)
	defer s.Close()

	if w := doJSON(t, s, http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", w.Code)
	}
	s.Drain()
	w := doJSON(t, s, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("healthz body: %s", w.Body)
	}
	// Queries keep working while draining.
	if w := doJSON(t, s, http.MethodGet, "/v1/cpnn?q=5", ""); w.Code != http.StatusOK {
		t.Fatalf("cpnn during drain: %d %s", w.Code, w.Body)
	}
}

// TestCloseCheckpointsStore verifies the graceful-shutdown contract: Close
// checkpoints (leaving an empty WAL) and closes the store.
func TestCloseCheckpointsStore(t *testing.T) {
	dir := t.TempDir()
	s := storeBackedServer(t, dir, 4)
	doJSON(t, s, http.MethodPost, "/v1/objects", `{"objects":[{"uniform":{"lo":0,"hi":1}}]}`)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.WALBytes != 0 {
		t.Fatalf("WAL not empty after graceful close: %d bytes", stats.WALBytes)
	}
	if stats.Objects1D != 5 {
		t.Fatalf("recovered %d objects", stats.Objects1D)
	}
}

// TestStoreMetricsExposed checks the durable-store counters appear on
// /metrics in store mode and stay absent otherwise.
func TestStoreMetricsExposed(t *testing.T) {
	s := storeBackedServer(t, t.TempDir(), 2)
	defer s.Close()
	doJSON(t, s, http.MethodPost, "/v1/objects", `{"objects":[{"uniform":{"lo":0,"hi":1}}]}`)
	body := doJSON(t, s, http.MethodGet, "/metrics", "").Body.String()
	for _, want := range []string{
		"cpnn_server_store_ops_applied_total",
		"cpnn_server_store_commits_total",
		"cpnn_server_store_wal_bytes",
		"cpnn_server_store_checkpoints_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %s:\n%s", want, body)
		}
	}

	plain := testServer(t, Config{})
	body = doJSON(t, plain, http.MethodGet, "/metrics", "").Body.String()
	if strings.Contains(body, "store_ops_applied_total") {
		t.Fatal("storeless /metrics exposes store counters")
	}
}
