package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/geom"
	"repro/internal/pdf"
	"repro/internal/store"
)

// /v1/objects is the object-level mutation API, available when the server
// has a store attached. POST upserts a batch (inserts assign stable IDs,
// updates address existing ones); DELETE removes by ID. Every batch commits
// atomically through the WAL, bumps the snapshot version and therefore
// invalidates the result cache for free — cache keys embed the version.

// objectSpec is one object of a POST /v1/objects batch. Exactly one payload
// field must be set. ID zero (or omitted) inserts; non-zero updates.
type objectSpec struct {
	ID      uint64       `json:"id,omitempty"`
	Uniform *uniformSpec `json:"uniform,omitempty"`
	Hist    *histSpec    `json:"hist,omitempty"`
	Disk    *diskSpec    `json:"disk,omitempty"`
}

type uniformSpec struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

type histSpec struct {
	Edges   []float64 `json:"edges"`
	Weights []float64 `json:"weights"`
}

type diskSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	R float64 `json:"r"`
}

type objectsRequest struct {
	Objects []objectSpec `json:"objects"`
}

type deleteRequest struct {
	IDs []uint64 `json:"ids"`
}

// objectsResponse reports a committed mutation batch.
type objectsResponse struct {
	// Version is the snapshot version after the commit.
	Version uint64 `json:"version"`
	// Objects counts live 1-D objects after the commit.
	Objects int `json:"objects"`
	// IDs lists, per submitted object, its stable ID (POST only).
	IDs []uint64 `json:"ids,omitempty"`
	// Deleted counts removed objects (DELETE only).
	Deleted int `json:"deleted,omitempty"`
}

// MaxObjectsBatch caps one POST /v1/objects batch.
const MaxObjectsBatch = 65536

// toOp validates one spec into a store op. All numeric validation happens
// here, through the same checkFinite guard as the query paths, so malformed
// objects are 400s before any WAL traffic.
func (o objectSpec) toOp(i int) (store.Op, error) {
	set := 0
	for _, present := range []bool{o.Uniform != nil, o.Hist != nil, o.Disk != nil} {
		if present {
			set++
		}
	}
	if set != 1 {
		return store.Op{}, badRequest("objects[%d]: exactly one of uniform, hist, disk required", i)
	}
	field := func(name string) string { return fmt.Sprintf("objects[%d].%s", i, name) }
	switch {
	case o.Uniform != nil:
		if err := checkFinite(field("uniform.lo"), o.Uniform.Lo); err != nil {
			return store.Op{}, err
		}
		if err := checkFinite(field("uniform.hi"), o.Uniform.Hi); err != nil {
			return store.Op{}, err
		}
		u, err := pdf.NewUniform(o.Uniform.Lo, o.Uniform.Hi)
		if err != nil {
			return store.Op{}, badRequest("objects[%d]: %v", i, err)
		}
		return store.Op{Code: store.OpUniform, ID: o.ID, PDF: u}, nil
	case o.Hist != nil:
		for j, e := range o.Hist.Edges {
			if err := checkFinite(field(fmt.Sprintf("hist.edges[%d]", j)), e); err != nil {
				return store.Op{}, err
			}
		}
		for j, wt := range o.Hist.Weights {
			if err := checkFinite(field(fmt.Sprintf("hist.weights[%d]", j)), wt); err != nil {
				return store.Op{}, err
			}
		}
		h, err := pdf.NewHistogram(o.Hist.Edges, o.Hist.Weights)
		if err != nil {
			return store.Op{}, badRequest("objects[%d]: %v", i, err)
		}
		return store.Op{Code: store.OpHist, ID: o.ID, PDF: h}, nil
	default:
		if err := checkFinite(field("disk.x"), o.Disk.X); err != nil {
			return store.Op{}, err
		}
		if err := checkFinite(field("disk.y"), o.Disk.Y); err != nil {
			return store.Op{}, err
		}
		if err := checkFinite(field("disk.r"), o.Disk.R); err != nil {
			return store.Op{}, err
		}
		if o.Disk.R <= 0 {
			return store.Op{}, badRequest("objects[%d]: disk radius %g must be > 0", i, o.Disk.R)
		}
		c := geom.Circle{Center: geom.Point{X: o.Disk.X, Y: o.Disk.Y}, Radius: o.Disk.R}
		return store.Op{Code: store.OpDisk, ID: o.ID, Disk: c}, nil
	}
}

// storeError maps store failures onto HTTP statuses: unknown IDs are 404s,
// semantic rejections 400s, a closed or broken store 503s.
func storeError(err error) error {
	switch {
	case errors.Is(err, store.ErrUnknownID):
		return &httpError{status: http.StatusNotFound, msg: err.Error()}
	case errors.Is(err, store.ErrInvalidOp):
		return badRequest("%v", err)
	case errors.Is(err, store.ErrFollower):
		// Belt and braces: the handlers redirect replica writes before any
		// store traffic, but a racing role check still maps cleanly.
		return &httpError{status: http.StatusForbidden, msg: err.Error()}
	case errors.Is(err, store.ErrClosed), errors.Is(err, store.ErrBroken):
		return &httpError{status: http.StatusServiceUnavailable, msg: err.Error()}
	default:
		return err
	}
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epObjects].Add(1)
	if s.cfg.Store == nil {
		s.writeError(w, &httpError{
			status: http.StatusNotImplemented,
			msg:    "object-level updates require a store (run cpnn-serve with -data-dir)",
		})
		return
	}
	if s.redirectToPrimary(w, r) {
		return
	}
	if err := s.memberWriteGate(); err != nil {
		s.writeError(w, err)
		return
	}
	switch r.Method {
	case http.MethodPost:
		s.handleObjectsPost(w, r)
	case http.MethodDelete:
		s.handleObjectsDelete(w, r)
	default:
		s.m.clientErrors.Add(1)
		w.Header().Set("Allow", "POST, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleObjectsPost(w http.ResponseWriter, r *http.Request) {
	var req objectsRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxDatasetBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, &httpError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("objects body exceeds the %d-byte limit", tooLarge.Limit),
			})
			return
		}
		s.writeError(w, badRequest("parsing objects body: %v", err))
		return
	}
	if len(req.Objects) == 0 {
		s.writeError(w, badRequest("objects batch is empty"))
		return
	}
	if len(req.Objects) > MaxObjectsBatch {
		s.writeError(w, badRequest("objects batch holds %d specs, limit %d", len(req.Objects), MaxObjectsBatch))
		return
	}
	ops := make([]store.Op, len(req.Objects))
	for i, spec := range req.Objects {
		op, err := spec.toOp(i)
		if err != nil {
			s.writeError(w, err)
			return
		}
		ops[i] = op
	}
	s.commitOps(w, ops, func(res store.ApplyResult, snap *Snapshot) objectsResponse {
		return objectsResponse{Version: snap.Version, Objects: storeObjects(s), IDs: res.IDs}
	})
}

func (s *Server) handleObjectsDelete(w http.ResponseWriter, r *http.Request) {
	var ids []uint64
	if raw := r.URL.Query().Get("id"); raw != "" {
		id, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeError(w, badRequest("parameter %q: %q is not an object id", "id", raw))
			return
		}
		ids = []uint64{id}
	} else {
		var req deleteRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxDatasetBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, badRequest("parsing delete body (or pass ?id=N): %v", err))
			return
		}
		ids = req.IDs
	}
	if len(ids) == 0 {
		s.writeError(w, badRequest("no object ids to delete"))
		return
	}
	if len(ids) > MaxObjectsBatch {
		s.writeError(w, badRequest("delete batch holds %d ids, limit %d", len(ids), MaxObjectsBatch))
		return
	}
	ops := make([]store.Op, len(ids))
	for i, id := range ids {
		ops[i] = store.Delete(id)
	}
	s.commitOps(w, ops, func(res store.ApplyResult, snap *Snapshot) objectsResponse {
		return objectsResponse{Version: snap.Version, Objects: storeObjects(s), Deleted: len(ids)}
	})
}

// commitOps applies a validated op batch and publishes the resulting view.
func (s *Server) commitOps(w http.ResponseWriter, ops []store.Op, respond func(store.ApplyResult, *Snapshot) objectsResponse) {
	res, err := s.cfg.Store.Apply(ops)
	if err != nil {
		s.writeError(w, storeError(err))
		return
	}
	if err := s.installLatestView(s.snap.Load().Source); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, respond(res, s.snap.Load()))
}

// storeObjects counts live 1-D objects through the freshest view.
func storeObjects(s *Server) int { return s.cfg.Store.View().Dataset.Len() }
