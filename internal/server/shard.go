package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// Sharded serving. With Config.ShardRouter the /v1 handlers below replace
// the snapshot-backed ones: each query runs the router's two-phase
// scatter-gather (bound every shard, gather candidates from the shards whose
// extent intersects the candidate ball) and evaluates the merged mini-view
// with the same payload builders as a single server, so sharding changes the
// version field of a response and nothing else. With Config.ShardMember the
// server additionally speaks the member wire protocol under
// /internal/shard/* so a router in another process can scatter to it.

// shardError maps shard failures onto HTTP statuses: a dead member is a 503
// (transient — writeError adds Retry-After), everything else maps like a
// store failure.
func shardError(err error) error {
	if errors.Is(err, shard.ErrUnavailable) {
		return &httpError{status: http.StatusServiceUnavailable, msg: err.Error()}
	}
	return storeError(err)
}

// memberWriteGate refuses client-facing writes on a shard member: the
// router owns ID assignment and shard placement, so a write landing here
// directly would desynchronize its owner map.
func (s *Server) memberWriteGate() error {
	if s.cfg.ShardMember {
		return &httpError{
			status: http.StatusForbidden,
			msg:    "shard member is write-protected; route writes through the shard router",
		}
	}
	return nil
}

// ---- continuous-query backend dispatch ---------------------------------
//
// /v1/monitors and /v1/subscribe serve from the single-store monitor or the
// shard-cluster monitor through these helpers; both expose *monitor.State
// and monitor.Event, so the handlers stay backend-agnostic.

// monitorStream is the common shape of both subscription types.
type monitorStream interface {
	C() <-chan monitor.Event
	Close()
}

func (s *Server) monitorRegister(spec monitor.Spec) (*monitor.State, error) {
	if s.shardMon != nil {
		return s.shardMon.Register(spec)
	}
	return s.monitor.Register(spec)
}

func (s *Server) monitorStates() []*monitor.State {
	if s.shardMon != nil {
		return s.shardMon.List()
	}
	return s.monitor.List()
}

func (s *Server) monitorRemove(id uint64) bool {
	if s.shardMon != nil {
		return s.shardMon.Unregister(id) == nil
	}
	return s.monitor.Unregister(id)
}

func (s *Server) monitorSubscribe(ids []uint64, buffer int) (monitorStream, error) {
	if s.shardMon != nil {
		return s.shardMon.Subscribe(ids, buffer)
	}
	return s.monitor.Subscribe(ids, buffer)
}

// ---- router mode: scatter-gather /v1 handlers --------------------------

// shardSnapshot wraps a gathered candidate cut as a serving snapshot: the
// engine is built over the merged mini-dataset, the version is the cut's
// member-version sum, and IDs translate the mini-dataset's dense IDs back
// to cluster-wide stable IDs.
func shardSnapshot(g *shard.Gathered) (*Snapshot, error) {
	eng, err := core.NewEngine(g.View.Dataset)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Engine:  eng,
		Version: g.Version,
		Objects: g.TotalN,
		Source:  "shards",
		IDs:     g.View.IDs,
	}, nil
}

// shardCPNNBody serves one quantized C-PNN point through the result cache
// in router mode. Keys embed the member version vector (not its sum — two
// distinct cuts may share a sum) observed at admission; any committed write
// bumps a member version and so invalidates every key.
func (s *Server) shardCPNNBody(ctx context.Context, ep endpoint, vk string, qq float64, c verify.Constraint, strat core.Strategy, all bool) ([]byte, Source, error) {
	key := fmt.Sprintf("cpnn|%s|%x|%x|%x|%d|%t",
		vk, math.Float64bits(qq), math.Float64bits(c.P), math.Float64bits(c.Delta), strat, all)
	return s.cc.Do(ctx, key, func() ([]byte, error) {
		return s.evaluate(func() ([]byte, error) {
			g, err := s.cfg.ShardRouter.Gather(ctx, qq, 1)
			if err != nil {
				return nil, shardError(err)
			}
			s.annotateFanout(ctx, g)
			snap, err := shardSnapshot(g)
			if err != nil {
				return nil, err
			}
			body, st, err := cpnnPayload(snap, qq, c, strat, all)
			if err == nil {
				s.observePhases(ctx, ep, st)
			}
			return body, err
		})
	})
}

// annotateFanout records how many shards the gather phase actually read.
func (s *Server) annotateFanout(ctx context.Context, g *shard.Gathered) {
	if ri := obs.ReqInfoFrom(ctx); ri != nil {
		ri.Set("fanout", strconv.Itoa(g.Fanout))
	}
}

func (s *Server) handleShardCPNN(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epCPNN].Add(1)
	q, err := queryFloat(r, "q")
	if err != nil {
		s.writeError(w, err)
		return
	}
	c, err := constraintParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	strat, err := strategyParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	all := r.URL.Query().Get("all") == "1"
	body, src, err := s.shardCPNNBody(r.Context(), epCPNN, s.cfg.ShardRouter.VersionsKey(),
		s.snapPoint(q), c, strat, all)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeCached(w, r, body, src)
}

func (s *Server) handleShardBatch(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epBatch].Add(1)
	if r.Method != http.MethodPost {
		s.m.clientErrors.Add(1)
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	req, c, err := s.parseBatchRequest(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	strat, err := parseStrategy(req.Strategy)
	if err != nil {
		s.writeError(w, err)
		return
	}
	queries := req.points()

	// One version-vector key for the whole request, mirroring the single
	// server's one-snapshot-per-batch rule at the cache-key level.
	vk := s.cfg.ShardRouter.VersionsKey()
	start := time.Now()

	type outcome struct {
		body []byte
		src  Source
		err  error
	}
	slot := make(map[float64]*outcome, len(queries))
	var order []float64
	for _, q := range queries {
		qq := s.snapPoint(q)
		if _, ok := slot[qq]; !ok {
			slot[qq] = &outcome{}
			order = append(order, qq)
		}
	}
	var wg sync.WaitGroup
	for _, qq := range order {
		wg.Add(1)
		go func(qq float64, out *outcome) {
			defer wg.Done()
			out.body, out.src, out.err = s.shardCPNNBody(r.Context(), epBatch, vk, qq, c, strat, req.All)
		}(qq, slot[qq])
	}
	wg.Wait()

	resp := batchResponse{
		Version:  s.cfg.ShardRouter.VersionSum(),
		Count:    len(queries),
		P:        c.P,
		Delta:    c.Delta,
		Strategy: strat.String(),
		Results:  make([]json.RawMessage, 0, len(queries)),
		Cache:    make([]string, 0, len(queries)),
	}
	for _, q := range queries {
		out := slot[s.snapPoint(q)]
		if out.err != nil {
			s.writeError(w, out.err)
			return
		}
		resp.Results = append(resp.Results, json.RawMessage(out.body))
		resp.Cache = append(resp.Cache, out.src.String())
		switch out.src {
		case Hit:
			resp.Hits++
		case Shared:
			resp.Shared++
		default:
			resp.Misses++
		}
	}
	resp.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleShardPNN(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epPNN].Add(1)
	q, err := queryFloat(r, "q")
	if err != nil {
		s.writeError(w, err)
		return
	}
	qq := s.snapPoint(q)
	key := fmt.Sprintf("pnn|%s|%x", s.cfg.ShardRouter.VersionsKey(), math.Float64bits(qq))
	body, src, err := s.cc.Do(r.Context(), key, func() ([]byte, error) {
		return s.evaluate(func() ([]byte, error) {
			g, err := s.cfg.ShardRouter.Gather(r.Context(), qq, 1)
			if err != nil {
				return nil, shardError(err)
			}
			s.annotateFanout(r.Context(), g)
			snap, err := shardSnapshot(g)
			if err != nil {
				return nil, err
			}
			body, st, err := pnnPayload(snap, qq)
			if err == nil {
				s.observePhases(r.Context(), epPNN, st)
			}
			return body, err
		})
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeCached(w, r, body, src)
}

func (s *Server) handleShardKNN(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epKNN].Add(1)
	q, err := queryFloat(r, "q")
	if err != nil {
		s.writeError(w, err)
		return
	}
	c, err := constraintParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	k, err := queryIntDefault(r, "k", 0)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if k < 1 {
		s.writeError(w, badRequest("parameter \"k\" must be >= 1, got %d", k))
		return
	}
	samples, err := queryIntDefault(r, "samples", 10000)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if samples < 1 {
		s.writeError(w, badRequest("parameter \"samples\" must be >= 1, got %d", samples))
		return
	}
	seed, err := queryIntDefault(r, "seed", 1)
	if err != nil {
		s.writeError(w, err)
		return
	}
	all := r.URL.Query().Get("all") == "1"

	qq := s.snapPoint(q)
	key := fmt.Sprintf("knn|%s|%x|%x|%x|%d|%d|%d|%t",
		s.cfg.ShardRouter.VersionsKey(), math.Float64bits(qq),
		math.Float64bits(c.P), math.Float64bits(c.Delta), k, samples, seed, all)
	body, src, err := s.cc.Do(r.Context(), key, func() ([]byte, error) {
		return s.evaluate(func() ([]byte, error) {
			g, err := s.cfg.ShardRouter.Gather(r.Context(), qq, k)
			if err != nil {
				return nil, shardError(err)
			}
			s.annotateFanout(r.Context(), g)
			snap, err := shardSnapshot(g)
			if err != nil {
				return nil, err
			}
			// Stable-ID RNG streams: the answer must not depend on how the
			// candidates happen to be sharded.
			body, st, err := knnPayload(snap, qq, c, k, samples, int64(seed), all, g.View.IDs)
			if err == nil {
				s.observePhases(r.Context(), epKNN, st)
			}
			return body, err
		})
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeCached(w, r, body, src)
}

func (s *Server) handleShardDataset(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epDataset].Add(1)
	rt := s.cfg.ShardRouter
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, datasetResponse{
			Version: rt.VersionSum(),
			Objects: rt.Objects(),
			Source:  "shards",
		})
	case http.MethodPost:
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxDatasetBytes)
		ds, err := uncertain.Read(body)
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				s.writeError(w, &httpError{
					status: http.StatusRequestEntityTooLarge,
					msg:    fmt.Sprintf("dataset body exceeds the %d-byte limit", tooLarge.Limit),
				})
				return
			}
			s.writeError(w, badRequest("parsing dataset: %v", err))
			return
		}
		if ds.Len() == 0 {
			s.writeError(w, badRequest("dataset body holds no objects"))
			return
		}
		if err := ds.Validate(); err != nil {
			s.writeError(w, badRequest("invalid dataset: %v", err))
			return
		}
		res, err := rt.Reload(r.Context(), ds)
		if err != nil {
			s.writeError(w, shardError(err))
			return
		}
		s.m.reloads.Add(1)
		writeJSON(w, http.StatusOK, datasetResponse{
			Version: res.Version,
			Objects: rt.Objects(),
			Source:  "shards",
		})
	default:
		s.m.clientErrors.Add(1)
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleShardObjects(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epObjects].Add(1)
	rt := s.cfg.ShardRouter
	switch r.Method {
	case http.MethodPost:
		var req objectsRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxDatasetBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				s.writeError(w, &httpError{
					status: http.StatusRequestEntityTooLarge,
					msg:    fmt.Sprintf("objects body exceeds the %d-byte limit", tooLarge.Limit),
				})
				return
			}
			s.writeError(w, badRequest("parsing objects body: %v", err))
			return
		}
		if len(req.Objects) == 0 {
			s.writeError(w, badRequest("objects batch is empty"))
			return
		}
		if len(req.Objects) > MaxObjectsBatch {
			s.writeError(w, badRequest("objects batch holds %d specs, limit %d", len(req.Objects), MaxObjectsBatch))
			return
		}
		ops := make([]store.Op, len(req.Objects))
		for i, spec := range req.Objects {
			op, err := spec.toOp(i)
			if err != nil {
				s.writeError(w, err)
				return
			}
			ops[i] = op
		}
		res, err := rt.Apply(r.Context(), ops)
		if err != nil {
			s.writeError(w, shardError(err))
			return
		}
		writeJSON(w, http.StatusOK, objectsResponse{
			Version: res.Version, Objects: rt.Objects(), IDs: res.IDs,
		})
	case http.MethodDelete:
		var ids []uint64
		if raw := r.URL.Query().Get("id"); raw != "" {
			id, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				s.writeError(w, badRequest("parameter %q: %q is not an object id", "id", raw))
				return
			}
			ids = []uint64{id}
		} else {
			var req deleteRequest
			dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxDatasetBytes))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&req); err != nil {
				s.writeError(w, badRequest("parsing delete body (or pass ?id=N): %v", err))
				return
			}
			ids = req.IDs
		}
		if len(ids) == 0 {
			s.writeError(w, badRequest("no object ids to delete"))
			return
		}
		if len(ids) > MaxObjectsBatch {
			s.writeError(w, badRequest("delete batch holds %d ids, limit %d", len(ids), MaxObjectsBatch))
			return
		}
		ops := make([]store.Op, len(ids))
		for i, id := range ids {
			ops[i] = store.Delete(id)
		}
		res, err := rt.Apply(r.Context(), ops)
		if err != nil {
			s.writeError(w, shardError(err))
			return
		}
		writeJSON(w, http.StatusOK, objectsResponse{
			Version: res.Version, Objects: rt.Objects(), Deleted: len(ids),
		})
	default:
		s.m.clientErrors.Add(1)
		w.Header().Set("Allow", "POST, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleShardHealthz(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epHealthz].Add(1)
	rt := s.cfg.ShardRouter
	st := rt.Stats()
	body := map[string]any{
		"status":  "ok",
		"version": rt.VersionSum(),
		"objects": st.Objects,
		"shard": map[string]any{
			"shards":            st.Shards,
			"versions":          st.Versions,
			"per_shard_objects": st.PerShard,
			"unavailable_total": st.Unavailable,
		},
	}
	if s.draining.Load() {
		body["status"] = "draining"
		w.Header().Set("Retry-After", sseRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleShardMetrics(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epMetrics].Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt := s.cfg.ShardRouter
	// The shared counter families render against a synthetic snapshot view
	// of the cluster (version sum, cluster-wide object count).
	s.m.write(w, s.cc, &Snapshot{Version: rt.VersionSum(), Objects: rt.Objects()}, nil, nil)
	var ms *shard.MonitorStats
	if s.shardMon != nil {
		v := s.shardMon.Stats()
		ms = &v
	}
	writeShardMetrics(w, rt.Stats(), ms)
	s.writeObsMetrics(w)
}

// writeShardMetrics renders the cpnn_server_shard_* metric families from
// the router's (and, in -shards mode, the shard monitor's) counters.
func writeShardMetrics(w io.Writer, st shard.Stats, ms *shard.MonitorStats) {
	const p = "cpnn_server_shard_"
	fmt.Fprintf(w, "# TYPE %scount gauge\n", p)
	fmt.Fprintf(w, "# HELP %scount Shards in the cluster.\n", p)
	fmt.Fprintf(w, "%scount %d\n", p, st.Shards)
	fmt.Fprintf(w, "# TYPE %sobjects gauge\n", p)
	for i, n := range st.PerShard {
		fmt.Fprintf(w, "%sobjects{shard=\"%d\"} %d\n", p, i, n)
	}
	fmt.Fprintf(w, "# TYPE %sversion gauge\n", p)
	for i, v := range st.Versions {
		fmt.Fprintf(w, "%sversion{shard=\"%d\"} %d\n", p, i, v)
	}
	fmt.Fprintf(w, "# TYPE %squeries_total counter\n", p)
	fmt.Fprintf(w, "%squeries_total %d\n", p, st.Queries)
	fmt.Fprintf(w, "# TYPE %sretries_total counter\n", p)
	fmt.Fprintf(w, "# HELP %sretries_total Gather rounds repeated because a concurrent write moved the bound.\n", p)
	fmt.Fprintf(w, "%sretries_total %d\n", p, st.Retries)
	fmt.Fprintf(w, "# TYPE %sunavailable_total counter\n", p)
	fmt.Fprintf(w, "%sunavailable_total %d\n", p, st.Unavailable)
	fmt.Fprintf(w, "# TYPE %sbound_contacts_total counter\n", p)
	fmt.Fprintf(w, "%sbound_contacts_total %d\n", p, st.BoundContacts)
	fmt.Fprintf(w, "# TYPE %sgather_contacts_total counter\n", p)
	fmt.Fprintf(w, "%sgather_contacts_total %d\n", p, st.GatherContacts)
	if st.Queries > 0 && st.Shards > 0 {
		fmt.Fprintf(w, "# TYPE %sfanout_fraction gauge\n", p)
		fmt.Fprintf(w, "# HELP %sfanout_fraction Mean fraction of shards the gather phase read per query.\n", p)
		fmt.Fprintf(w, "%sfanout_fraction %g\n", p,
			float64(st.GatherContacts)/(float64(st.Queries)*float64(st.Shards)))
	}
	fmt.Fprintf(w, "# TYPE %smerge_seconds_total counter\n", p)
	fmt.Fprintf(w, "# HELP %smerge_seconds_total Time spent merging per-shard bounds and candidates.\n", p)
	fmt.Fprintf(w, "%smerge_seconds_total %g\n", p, float64(st.MergeNanos)/1e9)
	if st.Objects > 0 && st.Shards > 0 {
		max := 0
		for _, n := range st.PerShard {
			if n > max {
				max = n
			}
		}
		fmt.Fprintf(w, "# TYPE %sskew gauge\n", p)
		fmt.Fprintf(w, "# HELP %sskew Largest shard population over the balanced mean (1 = perfectly even).\n", p)
		fmt.Fprintf(w, "%sskew %g\n", p, float64(max)*float64(st.Shards)/float64(st.Objects))
	}
	if ms == nil {
		return
	}
	fmt.Fprintf(w, "# TYPE %smonitor_active gauge\n", p)
	fmt.Fprintf(w, "%smonitor_active %d\n", p, ms.Active)
	fmt.Fprintf(w, "# TYPE %smonitor_subscribers gauge\n", p)
	fmt.Fprintf(w, "%smonitor_subscribers %d\n", p, ms.Subscribers)
	fmt.Fprintf(w, "# TYPE %smonitor_deltas_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_deltas_total %d\n", p, ms.Deltas)
	fmt.Fprintf(w, "# TYPE %smonitor_gaps_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_gaps_total %d\n", p, ms.Gaps)
	fmt.Fprintf(w, "# TYPE %smonitor_affected_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_affected_total %d\n", p, ms.Affected)
	fmt.Fprintf(w, "# TYPE %smonitor_pruned_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_pruned_total %d\n", p, ms.Pruned)
	fmt.Fprintf(w, "# TYPE %smonitor_reevals_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_reevals_total %d\n", p, ms.ReEvals)
	fmt.Fprintf(w, "# TYPE %smonitor_pushes_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_pushes_total %d\n", p, ms.Pushes)
	fmt.Fprintf(w, "# TYPE %smonitor_dropped_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_dropped_total %d\n", p, ms.Dropped)
	fmt.Fprintf(w, "# TYPE %smonitor_errors_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_errors_total %d\n", p, ms.Errors)
	fmt.Fprintf(w, "# TYPE %smonitor_2d_skips_total counter\n", p)
	fmt.Fprintf(w, "%smonitor_2d_skips_total %d\n", p, ms.TwoDSkips)
}

// ---- member mode: the wire protocol ------------------------------------

func (s *Server) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epShard].Add(1)
	info, err := s.member.Info()
	if err != nil {
		s.writeError(w, storeError(err))
		return
	}
	w.Header().Set(shard.VersionHeader, strconv.FormatUint(info.Version, 10))
	writeJSON(w, http.StatusOK, shard.InfoToWire(info))
}

func (s *Server) handleShardBound(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epShard].Add(1)
	q, err := queryFloat(r, "q")
	if err != nil {
		s.writeError(w, err)
		return
	}
	k, err := queryIntDefault(r, "k", 1)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if k < 1 {
		s.writeError(w, badRequest("parameter \"k\" must be >= 1, got %d", k))
		return
	}
	b, err := s.member.Bound(r.Context(), q, k)
	if err != nil {
		s.writeError(w, storeError(err))
		return
	}
	w.Header().Set(shard.VersionHeader, strconv.FormatUint(b.Version, 10))
	writeJSON(w, http.StatusOK, shard.BoundToWire(b))
}

func (s *Server) handleShardGather(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epShard].Add(1)
	q, err := queryFloat(r, "q")
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The pruning bound is +Inf when the router gathers everything, so it
	// deliberately bypasses the finite-number guard; only NaN is nonsense.
	raw := r.URL.Query().Get("bound")
	bound, perr := strconv.ParseFloat(raw, 64)
	if raw == "" || perr != nil || math.IsNaN(bound) {
		s.writeError(w, badRequest("parameter %q: %q is not a number", "bound", raw))
		return
	}
	items, ver, err := s.member.Gather(r.Context(), q, bound)
	if err != nil {
		s.writeError(w, storeError(err))
		return
	}
	payload, err := shard.EncodeItems(items)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set(shard.VersionHeader, strconv.FormatUint(ver, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

func (s *Server) handleShardApply(w http.ResponseWriter, r *http.Request) {
	s.m.requests[epShard].Add(1)
	if r.Method != http.MethodPost {
		s.m.clientErrors.Add(1)
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	payload, err := readBody(w, r, s.cfg.MaxDatasetBytes)
	if err != nil {
		s.writeError(w, err)
		return
	}
	res, err := s.member.Apply(r.Context(), payload)
	if err != nil {
		s.writeError(w, storeError(err))
		return
	}
	w.Header().Set(shard.VersionHeader, strconv.FormatUint(res.Version, 10))
	writeJSON(w, http.StatusOK, shard.WireApply{Version: res.Version, Seq: res.Seq, IDs: res.IDs})
}
