// Package refine computes exact qualification probabilities — the last
// phase of the C-PNN pipeline (paper §IV-D) — plus the Basic baseline of
// Cheng et al. (SIGMOD'03) and a Monte-Carlo evaluator in the style of
// Kriegel et al. (DASFAA'07), used for cross-validation and as the paper's
// sampling-based comparison point [9].
//
// Incremental refinement exploits the subregion table: the qualification
// probability decomposes as p_i = Σ_j s_ij·q_ij, and within one subregion
// every distance cdf is linear, so the conditional probability q_ij is the
// average of a polynomial over the subregion — integrable exactly by
// Gauss–Legendre quadrature. Subregions are collapsed one at a time (largest
// mass first), the running bound is re-classified after each collapse, and
// refinement stops as soon as the classifier decides, which is the whole
// point: most objects need only a few subregions.
package refine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/quad"
	"repro/internal/subregion"
	"repro/internal/verify"
)

// Prior supplies the per-subregion bounds [q_ij.l, q_ij.u] that incremental
// refinement starts from for not-yet-integrated subregions.
type Prior interface {
	// Lower returns q_ij.l for candidate i in subregion j.
	Lower(t *subregion.Table, i, j int) float64
	// Upper returns q_ij.u for candidate i in subregion j.
	Upper(t *subregion.Table, i, j int) float64
}

// VerifierPrior reuses the L-SR / U-SR subregion bounds — the knowledge the
// verifiers accumulated (paper §IV-D: "the probability bounds of each object
// in each subregion have already been computed by the verifiers").
type VerifierPrior struct{}

// Lower implements Prior via Lemma 2.
func (VerifierPrior) Lower(t *subregion.Table, i, j int) float64 {
	return verify.SubregionLower(t, i, j)
}

// Upper implements Prior via Eq. 11.
func (VerifierPrior) Upper(t *subregion.Table, i, j int) float64 {
	return verify.SubregionUpper(t, i, j)
}

// TrivialPrior assumes nothing: q_ij ∈ [0, 1]. It is the prior of the
// paper's Refine strategy, which skips verification.
type TrivialPrior struct{}

// Lower implements Prior.
func (TrivialPrior) Lower(*subregion.Table, int, int) float64 { return 0 }

// Upper implements Prior.
func (TrivialPrior) Upper(*subregion.Table, int, int) float64 { return 1 }

// AutoGLNodes returns a Gauss–Legendre rule size that integrates the
// subregion integrand exactly: a product of up to |C|−1 linear factors has
// degree |C|−1, needing ⌈|C|/2⌉ nodes.
func AutoGLNodes(numCandidates int) int {
	n := numCandidates/2 + 1
	if n > quad.MaxGaussNodes {
		n = quad.MaxGaussNodes
	}
	if n < 2 {
		n = 2
	}
	return n
}

// ExactSubregion returns q_ij — the exact probability that candidate i is
// the nearest neighbor given R_i ∈ S_j — by Gauss–Legendre integration of
// Π_{k≠i}(1 − D_k(r)) averaged over the subregion. Within a subregion every
// D_k is linear, so the table's end-point cdf values interpolate it exactly.
// glNodes <= 0 selects AutoGLNodes.
func ExactSubregion(t *subregion.Table, i, j, glNodes int) (float64, error) {
	if j < 0 || j >= t.NumSubregions() {
		return 0, fmt.Errorf("refine: subregion %d outside [0, %d)", j, t.NumSubregions())
	}
	if j == t.NumSubregions()-1 {
		return 0, nil // rightmost subregion: beyond f_min, never the NN
	}
	if t.S(i, j) == 0 {
		return 0, nil // no mass here; conditional value is irrelevant
	}
	if glNodes <= 0 {
		glNodes = AutoGLNodes(t.NumCandidates())
	}
	ends := t.Endpoints()
	e0, e1 := ends[j], ends[j+1]
	w := e1 - e0
	nC := t.NumCandidates()
	f := func(r float64) float64 {
		frac := (r - e0) / w
		prod := 1.0
		for k := 0; k < nC; k++ {
			if k == i {
				continue
			}
			dk := t.D(k, j) + (t.D(k, j+1)-t.D(k, j))*frac
			prod *= 1 - dk
			if prod == 0 {
				break
			}
		}
		return prod
	}
	v, err := quad.GL(f, e0, e1, glNodes)
	if err != nil {
		return 0, err
	}
	return v / w, nil
}

// Exact returns candidate i's exact qualification probability by integrating
// every subregion. glNodes <= 0 selects AutoGLNodes.
func Exact(t *subregion.Table, i, glNodes int) (float64, error) {
	p := 0.0
	for j := 0; j < t.NumSubregions()-1; j++ {
		s := t.S(i, j)
		if s == 0 {
			continue
		}
		q, err := ExactSubregion(t, i, j, glNodes)
		if err != nil {
			return 0, err
		}
		p += s * q
	}
	return clamp01(p), nil
}

// IncrementalResult reports one candidate's refinement outcome.
type IncrementalResult struct {
	// Bounds is the final probability bound; if every subregion was
	// integrated it collapses to the exact value.
	Bounds verify.Bounds
	// Status is the final classification.
	Status verify.Status
	// Integrations counts the subregions actually integrated — the cost
	// measure that incremental refinement minimizes.
	Integrations int
}

// Incremental refines candidate i until the classifier decides, collapsing
// per-subregion bounds to exact values in descending order of subregion mass
// s_ij (paper §IV-D). start is the candidate's bound entering refinement;
// pass the verifier output for the VR strategy or the zero value
// Bounds{0, 1} when skipping verification.
func Incremental(t *subregion.Table, i int, c verify.Constraint, start verify.Bounds, prior Prior, glNodes int) (IncrementalResult, error) {
	if err := c.Validate(); err != nil {
		return IncrementalResult{}, err
	}
	m := t.NumSubregions()
	// Collect refinable subregions, heaviest first.
	order := make([]int, 0, m-1)
	for j := 0; j < m-1; j++ {
		if t.S(i, j) > 0 {
			order = append(order, j)
		}
	}
	sort.Slice(order, func(a, b int) bool { return t.S(i, order[a]) > t.S(i, order[b]) })

	// Rebuild the running bound from the prior so collapses stay coherent,
	// then intersect with the incoming bound (which may be tighter, e.g. RS).
	l, u := 0.0, 0.0
	for _, j := range order {
		s := t.S(i, j)
		l += s * prior.Lower(t, i, j)
		u += s * prior.Upper(t, i, j)
	}
	b := (verify.Bounds{L: clamp01(l), U: clamp01(u)}).Tighten(start)
	res := IncrementalResult{Bounds: b, Status: verify.Classify(b, c)}
	if res.Status != verify.Unknown {
		return res, nil
	}

	for _, j := range order {
		s := t.S(i, j)
		q, err := ExactSubregion(t, i, j, glNodes)
		if err != nil {
			return res, err
		}
		res.Integrations++
		// Collapse [q_ij.l, q_ij.u] to the exact q_ij (paper §IV-D).
		b.L += s * (q - prior.Lower(t, i, j))
		b.U -= s * (prior.Upper(t, i, j) - q)
		if b.L > b.U {
			// Rounding can cross the bounds by an ulp; collapse to the mean.
			mid := (b.L + b.U) / 2
			b.L, b.U = mid, mid
		}
		res.Bounds = verify.Bounds{L: clamp01(b.L), U: clamp01(b.U)}
		b = res.Bounds
		res.Status = verify.Classify(res.Bounds, c)
		if res.Status != verify.Unknown {
			return res, nil
		}
	}
	// All subregions integrated: the bound is the exact probability (up to
	// quadrature round-off); force a decision against the threshold.
	mid := (res.Bounds.L + res.Bounds.U) / 2
	res.Bounds = verify.Bounds{L: mid, U: mid}
	if mid >= c.P {
		res.Status = verify.Satisfy
	} else {
		res.Status = verify.Fail
	}
	return res, nil
}

// Basic computes candidate i's qualification probability the way the
// paper's Basic strategy does: direct fixed-step Simpson integration of
// d_i(r)·Π_{k≠i}(1 − D_k(r)) over the distance domain, re-evaluating every
// cdf from scratch at every quadrature point. It deliberately shares no work
// across candidates — it is the baseline whose cost the verifiers avoid.
func Basic(cands []subregion.Candidate, i, steps int) (float64, error) {
	if i < 0 || i >= len(cands) {
		return 0, fmt.Errorf("refine: candidate %d outside [0, %d)", i, len(cands))
	}
	if steps < 2 {
		return 0, fmt.Errorf("refine: need at least 2 integration steps, got %d", steps)
	}
	di := cands[i].Dist
	sup := di.Support()
	// Integrating past f_min is pointless: some object is certainly closer.
	hi := sup.Hi
	for _, c := range cands {
		if f := c.Dist.Support().Hi; f < hi {
			hi = f
		}
	}
	if hi <= sup.Lo {
		return 0, nil
	}
	f := func(r float64) float64 {
		v := di.Density(r)
		if v == 0 {
			return 0
		}
		for k, c := range cands {
			if k == i {
				continue
			}
			v *= 1 - c.Dist.CDF(r)
			if v == 0 {
				return 0
			}
		}
		return v
	}
	p, err := quad.Simpson(f, sup.Lo, hi, steps)
	if err != nil {
		return 0, err
	}
	return clamp01(p), nil
}

// BasicAll runs Basic for every candidate, the full cost of the paper's
// Basic strategy.
func BasicAll(cands []subregion.Candidate, steps int) ([]float64, error) {
	out := make([]float64, len(cands))
	for i := range cands {
		p, err := Basic(cands, i, steps)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// MonteCarlo estimates all candidates' qualification probabilities by
// sampling each distance pdf and tallying the nearest candidate, after the
// sampling evaluator of the paper's reference [9]. Exact ties split their
// tally evenly. It is the ground truth oracle for the engine's tests.
func MonteCarlo(cands []subregion.Candidate, samples int, rng *rand.Rand) ([]float64, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	if samples < 1 {
		return nil, fmt.Errorf("refine: need at least 1 sample, got %d", samples)
	}
	counts := make([]float64, len(cands))
	winners := make([]int, 0, 4)
	for s := 0; s < samples; s++ {
		best := math.Inf(1)
		winners = winners[:0]
		for k, c := range cands {
			r := c.Dist.Sample(rng)
			switch {
			case r < best:
				best = r
				winners = append(winners[:0], k)
			case r == best:
				winners = append(winners, k)
			}
		}
		share := 1.0 / float64(len(winners))
		for _, w := range winners {
			counts[w] += share
		}
	}
	for i := range counts {
		counts[i] /= float64(samples)
	}
	return counts, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
