package refine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/subregion"
	"repro/internal/verify"
)

// TestTwoDimensionalPipeline exercises the paper's §IV-A extension note: the
// verifiers and refinement only consume distance pdfs/cdfs, so 2-D circular
// uncertainty regions plug into the same machinery once reduced to distance
// histograms. Ground truth comes from Monte-Carlo sampling of the disks.
func TestTwoDimensionalPipeline(t *testing.T) {
	q := geom.Point{X: 0, Y: 0}
	circles := []geom.Circle{
		{Center: geom.Point{X: 3, Y: 0}, Radius: 2},
		{Center: geom.Point{X: 0, Y: 4}, Radius: 2.5},
		{Center: geom.Point{X: -5, Y: -1}, Radius: 3},
		{Center: geom.Point{X: 8, Y: 8}, Radius: 1}, // far: prunable
	}
	// Distance pdfs via the lens-area reduction.
	var cands []subregion.Candidate
	fMin := math.Inf(1)
	var nears []float64
	for i, c := range circles {
		d, err := dist.FromCircle(c, q, 256)
		if err != nil {
			t.Fatal(err)
		}
		nears = append(nears, d.Support().Lo)
		fMin = math.Min(fMin, d.Support().Hi)
		cands = append(cands, subregion.Candidate{ID: i, Dist: d})
	}
	kept := cands[:0]
	prunedFar := false
	for i, c := range cands {
		if nears[i] <= fMin {
			kept = append(kept, c)
		} else {
			prunedFar = true
		}
	}
	if !prunedFar {
		t.Fatal("expected the far disk to be pruned by f_min")
	}
	tb, err := subregion.Build(kept)
	if err != nil {
		t.Fatal(err)
	}

	// Verifier bounds + exact values.
	n := tb.NumCandidates()
	bounds := make([]verify.Bounds, n)
	status := make([]verify.Status, n)
	for i := range bounds {
		bounds[i] = verify.Bounds{L: 0, U: 1}
	}
	verify.RS{}.Apply(tb, bounds, status)
	verify.LSR{}.Apply(tb, bounds, status)
	verify.USR{}.Apply(tb, bounds, status)

	exact := make([]float64, n)
	sum := 0.0
	for i := range exact {
		p, err := Exact(tb, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		exact[i] = p
		sum += p
		if p < bounds[i].L-1e-9 || p > bounds[i].U+1e-9 {
			t.Errorf("candidate %d: exact %g outside verifier bounds [%g, %g]",
				i, p, bounds[i].L, bounds[i].U)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("2-D exact probabilities sum to %g", sum)
	}

	// Monte-Carlo over the actual disks (not the reduced histograms):
	// end-to-end validation of the lens-area reduction itself.
	rng := rand.New(rand.NewSource(77))
	const samples = 150000
	counts := make([]float64, n)
	idByPos := map[int]int{}
	for pos, c := range kept {
		idByPos[c.ID] = pos
	}
	sampleDisk := func(c geom.Circle) geom.Point {
		for {
			x := c.Center.X - c.Radius + 2*c.Radius*rng.Float64()
			y := c.Center.Y - c.Radius + 2*c.Radius*rng.Float64()
			p := geom.Point{X: x, Y: y}
			if c.Center.Dist(p) <= c.Radius {
				return p
			}
		}
	}
	for s := 0; s < samples; s++ {
		best, bi := math.Inf(1), -1
		for id, c := range circles {
			pos, ok := idByPos[id]
			if !ok {
				continue // pruned disk cannot win; skip sampling it
			}
			d := sampleDisk(c).Dist(q)
			if d < best {
				best, bi = d, pos
			}
		}
		counts[bi]++
	}
	for i := range exact {
		mc := counts[i] / samples
		if diff := math.Abs(mc - exact[i]); diff > 0.01 {
			t.Errorf("candidate %d: exact %g vs 2-D MC %g", i, exact[i], mc)
		}
	}
}
