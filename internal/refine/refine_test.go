package refine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/pdf"
	"repro/internal/subregion"
	"repro/internal/verify"
)

// handTable rebuilds the worked example shared with the subregion and verify
// tests: X1 hist{0,2,6; .4,.6}, X2 uniform[1,5], X3 uniform[3,8].
func handTable(t *testing.T) *subregion.Table {
	t.Helper()
	tb, err := subregion.Build([]subregion.Candidate{
		{ID: 10, Dist: pdf.MustHistogram([]float64{0, 2, 6}, []float64{0.4, 0.6})},
		{ID: 20, Dist: pdf.MustHistogram([]float64{1, 5}, []float64{1})},
		{ID: 30, Dist: pdf.MustHistogram([]float64{3, 8}, []float64{1})},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// randomTable builds a randomized candidate set through the real distance
// pipeline. It returns nil when the seed produces a degenerate configuration.
func randomTable(seed int64) *subregion.Table {
	rng := rand.New(rand.NewSource(seed))
	nObj := 2 + rng.Intn(8)
	q := rng.Float64() * 50
	var cands []subregion.Candidate
	fMin := math.Inf(1)
	var nears []float64
	for i := 0; i < nObj; i++ {
		lo := q - 15 + rng.Float64()*30
		width := 0.5 + rng.Float64()*10
		var p pdf.PDF
		if rng.Intn(2) == 0 {
			p = pdf.MustUniform(lo, lo+width)
		} else {
			p = pdf.MustHistogram(
				[]float64{lo, lo + width/3, lo + width},
				[]float64{0.3 + rng.Float64(), 0.3 + rng.Float64()})
		}
		d, err := dist.FromPDF(p, q)
		if err != nil {
			return nil
		}
		sup := d.Support()
		nears = append(nears, sup.Lo)
		fMin = math.Min(fMin, sup.Hi)
		cands = append(cands, subregion.Candidate{ID: i, Dist: d})
	}
	kept := cands[:0]
	for i, c := range cands {
		if nears[i] <= fMin {
			kept = append(kept, c)
		}
	}
	tb, err := subregion.Build(kept)
	if err != nil {
		return nil
	}
	return tb
}

func TestExactProbabilitiesSumToOne(t *testing.T) {
	tb := handTable(t)
	sum := 0.0
	for i := 0; i < tb.NumCandidates(); i++ {
		p, err := Exact(tb, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σ p_i = %.12f, want 1", sum)
	}
}

func TestExactWithinVerifierBounds(t *testing.T) {
	tb := handTable(t)
	// Hand-derived L-SR lowers and U-SR uppers.
	lo := []float64{0.40625, 0.25, 0.03}
	up := []float64{0.54375, 0.44125, 0.045}
	for i := range lo {
		p, err := Exact(tb, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p < lo[i]-1e-9 || p > up[i]+1e-9 {
			t.Errorf("candidate %d: exact %g outside [%g, %g]", i, p, lo[i], up[i])
		}
	}
}

func TestExactMatchesMonteCarlo(t *testing.T) {
	tb := handTable(t)
	cands := make([]subregion.Candidate, tb.NumCandidates())
	for i := range cands {
		cands[i] = subregion.Candidate{ID: tb.IDs()[i], Dist: tb.Dist(i)}
	}
	rng := rand.New(rand.NewSource(99))
	mc, err := MonteCarlo(cands, 300000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		p, err := Exact(tb, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(p - mc[i]); diff > 0.005 {
			t.Errorf("candidate %d: exact %g vs MC %g", i, p, mc[i])
		}
	}
}

func TestExactMatchesBasic(t *testing.T) {
	tb := handTable(t)
	cands := make([]subregion.Candidate, tb.NumCandidates())
	for i := range cands {
		cands[i] = subregion.Candidate{ID: tb.IDs()[i], Dist: tb.Dist(i)}
	}
	basics, err := BasicAll(cands, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		p, err := Exact(tb, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(p - basics[i]); diff > 1e-3 {
			t.Errorf("candidate %d: exact %g vs basic %g", i, p, basics[i])
		}
	}
}

func TestExactSubregionEdges(t *testing.T) {
	tb := handTable(t)
	if _, err := ExactSubregion(tb, 0, -1, 0); err == nil {
		t.Error("negative subregion accepted")
	}
	if _, err := ExactSubregion(tb, 0, 99, 0); err == nil {
		t.Error("out-of-range subregion accepted")
	}
	// Rightmost subregion is always zero.
	if q, err := ExactSubregion(tb, 0, tb.NumSubregions()-1, 0); err != nil || q != 0 {
		t.Errorf("rightmost = %g, %v", q, err)
	}
	// Zero-mass subregion is zero (X3 has no mass in S_1).
	if q, err := ExactSubregion(tb, 2, 0, 0); err != nil || q != 0 {
		t.Errorf("zero-mass subregion = %g, %v", q, err)
	}
	// First subregion for X1: alone, q = 1.
	if q, err := ExactSubregion(tb, 0, 0, 0); err != nil || math.Abs(q-1) > 1e-12 {
		t.Errorf("S1 for X1 = %g, %v, want 1", q, err)
	}
}

func TestAutoGLNodes(t *testing.T) {
	if n := AutoGLNodes(0); n < 2 {
		t.Errorf("AutoGLNodes(0) = %d", n)
	}
	if n := AutoGLNodes(96); n != 49 {
		t.Errorf("AutoGLNodes(96) = %d, want 49", n)
	}
	if n := AutoGLNodes(100000); n > 256 {
		t.Errorf("AutoGLNodes uncapped: %d", n)
	}
}

func TestIncrementalAgreesWithExact(t *testing.T) {
	tb := handTable(t)
	// With Delta=0 the incremental decision must agree exactly with the
	// relationship between the exact probability and the threshold, and the
	// final bound must still contain the exact value.
	for i := 0; i < tb.NumCandidates(); i++ {
		exact, err := Exact(tb, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		above, err := Incremental(tb, i, verify.Constraint{P: exact + 1e-6, Delta: 0},
			verify.Bounds{L: 0, U: 1}, VerifierPrior{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if above.Status != verify.Fail {
			t.Errorf("candidate %d: status %v with P just above exact %g (bounds %v)",
				i, above.Status, exact, above.Bounds)
		}
		if exact < above.Bounds.L-1e-7 || exact > above.Bounds.U+1e-7 {
			t.Errorf("candidate %d: exact %g escaped bounds %v", i, exact, above.Bounds)
		}
		below, err := Incremental(tb, i, verify.Constraint{P: exact - 1e-6, Delta: 0},
			verify.Bounds{L: 0, U: 1}, VerifierPrior{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if below.Status != verify.Satisfy {
			t.Errorf("candidate %d: status %v with P just below exact %g (bounds %v)",
				i, below.Status, exact, below.Bounds)
		}
	}
}

func TestIncrementalEarlyStop(t *testing.T) {
	tb := handTable(t)
	// X3's exact probability is tiny (~0.036); with P=0.5 the verifier
	// prior alone decides (upper bound 0.045 < 0.5): zero integrations.
	res, err := Incremental(tb, 2, verify.Constraint{P: 0.5, Delta: 0.01},
		verify.Bounds{L: 0, U: 1}, VerifierPrior{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != verify.Fail {
		t.Errorf("X3 = %v, want fail", res.Status)
	}
	if res.Integrations != 0 {
		t.Errorf("X3 used %d integrations, want 0 (prior suffices)", res.Integrations)
	}
	// For X1 (wide bounds, exact ~0.53) the trivial prior cannot decide
	// upfront and must integrate, while the verifier prior starts tighter.
	rv, err := Incremental(tb, 0, verify.Constraint{P: 0.5, Delta: 0.01},
		verify.Bounds{L: 0, U: 1}, VerifierPrior{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Incremental(tb, 0, verify.Constraint{P: 0.5, Delta: 0.01},
		verify.Bounds{L: 0, U: 1}, TrivialPrior{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Integrations == 0 {
		t.Error("trivial prior decided X1 without integrating; expected work")
	}
	if rv.Status != rt.Status {
		t.Errorf("priors disagree on X1: %v vs %v", rv.Status, rt.Status)
	}
}

func TestIncrementalRespectsTolerance(t *testing.T) {
	tb := handTable(t)
	// X1 exact ~0.49; P=0.4, large Delta: satisfied once the bound width
	// shrinks under Delta, likely without full collapse.
	res, err := Incremental(tb, 0, verify.Constraint{P: 0.4, Delta: 0.2},
		verify.Bounds{L: 0, U: 1}, VerifierPrior{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != verify.Satisfy {
		t.Errorf("X1 = %v (bounds %v)", res.Status, res.Bounds)
	}
}

func TestIncrementalInvalidConstraint(t *testing.T) {
	tb := handTable(t)
	if _, err := Incremental(tb, 0, verify.Constraint{P: 0}, verify.Bounds{L: 0, U: 1}, VerifierPrior{}, 0); err == nil {
		t.Error("invalid constraint accepted")
	}
}

func TestBasicValidation(t *testing.T) {
	tb := handTable(t)
	cands := []subregion.Candidate{{ID: 10, Dist: tb.Dist(0)}}
	if _, err := Basic(cands, -1, 100); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := Basic(cands, 5, 100); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := Basic(cands, 0, 1); err == nil {
		t.Error("single step accepted")
	}
}

func TestBasicSingleCandidate(t *testing.T) {
	d, err := dist.FromPDF(pdf.MustUniform(3, 7), 0)
	if err != nil {
		t.Fatal(err)
	}
	cands := []subregion.Candidate{{ID: 0, Dist: d}}
	p, err := Basic(cands, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-6 {
		t.Errorf("lone candidate probability = %g, want 1", p)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if out, err := MonteCarlo(nil, 100, rng); err != nil || out != nil {
		t.Errorf("empty candidates: %v, %v", out, err)
	}
	tb := handTable(t)
	cands := []subregion.Candidate{{ID: 10, Dist: tb.Dist(0)}}
	if _, err := MonteCarlo(cands, 0, rng); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestMonteCarloSumsToOne(t *testing.T) {
	tb := handTable(t)
	cands := make([]subregion.Candidate, tb.NumCandidates())
	for i := range cands {
		cands[i] = subregion.Candidate{ID: tb.IDs()[i], Dist: tb.Dist(i)}
	}
	rng := rand.New(rand.NewSource(2))
	out, err := MonteCarlo(cands, 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range out {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("MC probabilities sum to %g", sum)
	}
}

// TestExactSumProperty: on random candidate sets, exact qualification
// probabilities must sum to one and stay within verifier bounds.
func TestExactSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		tb := randomTable(seed)
		if tb == nil {
			return true
		}
		n := tb.NumCandidates()
		bounds := make([]verify.Bounds, n)
		status := make([]verify.Status, n)
		for i := range bounds {
			bounds[i] = verify.Bounds{L: 0, U: 1}
		}
		verify.RS{}.Apply(tb, bounds, status)
		verify.LSR{}.Apply(tb, bounds, status)
		verify.USR{}.Apply(tb, bounds, status)
		sum := 0.0
		for i := 0; i < n; i++ {
			p, err := Exact(tb, i, 0)
			if err != nil {
				return false
			}
			if p < bounds[i].L-1e-9 || p > bounds[i].U+1e-9 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalConvergesProperty: regardless of the prior, the incremental
// decision agrees with the exact probability's side of the threshold, and
// the exact value never escapes the final bound.
func TestIncrementalConvergesProperty(t *testing.T) {
	f := func(seed int64, useTrivial bool) bool {
		tb := randomTable(seed)
		if tb == nil {
			return true
		}
		var prior Prior = VerifierPrior{}
		if useTrivial {
			prior = TrivialPrior{}
		}
		i := int(uint64(seed) % uint64(tb.NumCandidates()))
		exact, err := Exact(tb, i, 0)
		if err != nil {
			return false
		}
		if exact < 1-2e-6 { // a threshold above exact is only meaningful below 1
			above, err := Incremental(tb, i, verify.Constraint{P: exact + 1e-6, Delta: 0},
				verify.Bounds{L: 0, U: 1}, prior, 0)
			if err != nil || above.Status != verify.Fail {
				return false
			}
			if exact < above.Bounds.L-1e-7 || exact > above.Bounds.U+1e-7 {
				return false
			}
		}
		if exact <= 2e-6 {
			return true // below-threshold probe would be invalid
		}
		below, err := Incremental(tb, i, verify.Constraint{P: exact - 1e-6, Delta: 0},
			verify.Bounds{L: 0, U: 1}, prior, 0)
		return err == nil && below.Status == verify.Satisfy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestVerifierPriorNeverWorseThanTrivial: with the verifier prior,
// incremental refinement never needs more integrations than with the trivial
// prior — the paper's argument for reusing verifier knowledge.
func TestVerifierPriorNeverWorseThanTrivial(t *testing.T) {
	tb := handTable(t)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	for i := 0; i < tb.NumCandidates(); i++ {
		rv, err := Incremental(tb, i, c, verify.Bounds{L: 0, U: 1}, VerifierPrior{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := Incremental(tb, i, c, verify.Bounds{L: 0, U: 1}, TrivialPrior{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rv.Integrations > rt.Integrations {
			t.Errorf("candidate %d: verifier prior used %d integrations, trivial used %d",
				i, rv.Integrations, rt.Integrations)
		}
		if rv.Status != rt.Status {
			t.Errorf("candidate %d: priors disagree: %v vs %v", i, rv.Status, rt.Status)
		}
	}
}
