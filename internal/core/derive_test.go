package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/pdf"
	"repro/internal/uncertain"
)

// gaussianDataset builds nObj truncated-Gaussian objects clustered around a
// usable query range.
func gaussianDataset(t testing.TB, nObj int, seed int64) *uncertain.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pdfs := make([]pdf.PDF, nObj)
	for i := range pdfs {
		lo := rng.Float64() * 50
		g, err := pdf.PaperGaussian(lo, lo+2+rng.Float64()*10)
		if err != nil {
			t.Fatal(err)
		}
		pdfs[i] = g
	}
	return uncertain.NewDataset(pdfs)
}

func TestDeriveSetMatchesSerial(t *testing.T) {
	ds := gaussianDataset(t, 64, 11)
	ids := make([]int, ds.Len())
	for i := range ids {
		ids[i] = i
	}
	q := 25.0

	parallel := newDeriver()
	parallel.workers = 4 // force the pool path even on single-core hosts
	serial := newDeriver()
	serial.workers = 1

	fn := func(dv *deriver) func(int) (*pdf.Histogram, error) {
		return func(pos int) (*pdf.Histogram, error) {
			return dv.distFor(ds.Object(ids[pos]), q, dist.DefaultBins, nil)
		}
	}
	got, err := parallel.deriveSet(nil, ids, false, fn(parallel))
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.deriveSet(nil, ids, false, fn(serial))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel derived %d candidates, serial %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("candidate %d: ID %d vs %d — input order not preserved", i, got[i].ID, want[i].ID)
		}
		ge, we := got[i].Dist.Edges(), want[i].Dist.Edges()
		if len(ge) != len(we) {
			t.Fatalf("candidate %d: %d vs %d edges", i, len(ge), len(we))
		}
		for j := range ge {
			if ge[j] != we[j] {
				t.Fatalf("candidate %d edge %d: %g vs %g", i, j, ge[j], we[j])
			}
		}
		for j := 0; j < got[i].Dist.NumBins(); j++ {
			if math.Abs(got[i].Dist.BinMass(j)-want[i].Dist.BinMass(j)) > 1e-15 {
				t.Fatalf("candidate %d bin %d mass differs", i, j)
			}
		}
	}
}

func TestDeriveSetPropagatesError(t *testing.T) {
	dv := newDeriver()
	dv.workers = 4 // force the pool path even on single-core hosts
	ids := make([]int, 100)
	for i := range ids {
		ids[i] = i
	}
	sentinel := errors.New("boom")
	_, err := dv.deriveSet(nil, ids, false, func(pos int) (*pdf.Histogram, error) {
		if pos%7 == 3 {
			return nil, sentinel
		}
		return pdf.NewHistogram([]float64{0, 1}, []float64{1})
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestDiscretizeMemoized(t *testing.T) {
	ds := gaussianDataset(t, 4, 3)
	dv := newDeriver()
	obj := ds.Object(2)
	a, err := dv.discretize(obj.ID, obj.PDF, dist.DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dv.discretize(obj.ID, obj.PDF, dist.DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated discretization not memoized (different histograms returned)")
	}
	c, err := dv.discretize(obj.ID, obj.PDF, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different resolutions share one memo entry")
	}
}

// TestEnginesShareDerivationAcrossQueries: the memo must survive across
// queries of one engine, so a Gaussian workload discretizes each object once.
func TestEnginesShareDerivationAcrossQueries(t *testing.T) {
	ds := gaussianDataset(t, 32, 19)
	eng, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{10, 20, 30} {
		if _, _, err := eng.PNN(q, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	eng.dv.mu.Lock()
	memo := len(eng.dv.disc)
	eng.dv.mu.Unlock()
	if memo == 0 {
		t.Error("no discretizations memoized across a Gaussian workload")
	}
	if memo > ds.Len() {
		t.Errorf("%d memo entries for %d objects at one resolution", memo, ds.Len())
	}
}

// BenchmarkDeriveCandidates tracks the parallel candidate-derivation stage —
// the initialization cost the paper charges to verification (InitTime).
func BenchmarkDeriveCandidates(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		ds := gaussianDataset(b, n, 5)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		for _, mode := range []string{"serial", "parallel"} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				dv := newDeriver()
				if mode == "serial" {
					dv.workers = 1
				}
				// Pre-warm the memo: steady-state queries pay only the folds.
				for _, id := range ids {
					if _, err := dv.discretize(id, ds.Object(id).PDF, dist.DefaultBins); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, err := dv.deriveSet(nil, ids, false, func(pos int) (*pdf.Histogram, error) {
						return dv.distFor(ds.Object(ids[pos]), 25.0, dist.DefaultBins, nil)
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
