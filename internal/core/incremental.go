package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/filter"
	"repro/internal/pdf"
	"repro/internal/subregion"
	"repro/internal/verify"
)

// This file is the incremental re-evaluation entry point of the engine: the
// same filter → derive → verify pipeline as CPNN/PNN/CKNN, but run against a
// persistent per-query EvalState so a commit that changes k objects costs
// O(k) fold derivations instead of O(|C|). The continuous-monitoring layer
// (internal/monitor) keeps one EvalState per standing query and feeds each
// re-evaluation the set of stable IDs the triggering commits actually
// changed.
//
// Three increasingly cheap paths apply, in order:
//
//  1. Early exit — when the recomputed critical distance equals the cached
//     one and no changed object is in either the cached or the fresh
//     candidate set, the previous answer is provably byte-identical; nothing
//     is derived and no verifier runs.
//  2. Single-candidate patch — when exactly one candidate entered, left or
//     moved (and dense IDs did not reshuffle), the cached subregion table is
//     patched in place via subregion.(*Table).Patch: one fold derivation,
//     zero matrix allocations.
//  3. Fold-cache rebuild — otherwise the candidate set is re-assembled
//     reusing every unchanged candidate's cached distance pdf, deriving only
//     changed ones, and the table is rebuilt in place over the state's
//     storage.
//
// All three produce answers bit-identical to a from-scratch evaluation
// against the same view: folds are deterministic functions of (pdf, q)
// (proven arena==heap by FuzzFold), the table is a pure function of the
// candidate set regardless of input order or patch history (ID tie-break in
// Rebuild, proven by FuzzIncrementalPatch), and verification/refinement are
// deterministic over the table.

// Dense-slot hints carried in a changed-ID map. A non-negative value is the
// object's dense dataset slot as of the commit that changed it — a
// best-effort accelerator which incremental evaluation validates against the
// current view before trusting (later commits may have re-slotted the
// object). The two sentinels are authoritative where hints are not:
// SlotDeleted asserts the object is gone from the view, SlotUnknown asserts
// nothing.
const (
	SlotUnknown = -1
	SlotDeleted = -2
)

// cachedFold is one retained candidate derivation: the object's discretized
// distance pdf for the state's query point, heap-allocated so it survives
// arena resets, plus the dense slot it occupied at the last evaluation (the
// subregion table is keyed by dense IDs, so patching requires the mapping to
// have held still) and the near-point distance of the object's region from
// the query (regions of unchanged objects hold still, so the cached value
// feeds the filter replay's survival test).
type cachedFold struct {
	h     *pdf.Histogram
	gen   uint64
	dense int
	near  float64
}

// foldEntryOverhead approximates the map-entry plus struct overhead of one
// cached fold, for memory accounting.
const foldEntryOverhead = 64

// EvalState is the persistent evaluation state of one standing query: the
// last candidate set with each candidate's derived distance pdf (keyed by
// stable ID), the last subregion table, and the last critical distance. It
// is owned by a single query — evaluations against different query points or
// specs must not share one — and is not safe for concurrent use.
//
// The zero value is not ready; use NewEvalState.
type EvalState struct {
	valid bool    // the cache reflects a completed evaluation
	fmin  float64 // critical distance (f_min / f_k) at that evaluation
	gen   uint64  // bumped per evaluation; entries off-generation are evicted

	// fminStable is the stable ID of an object attaining fmin at the last
	// evaluation (valid when fminKnown). As long as that object is unchanged
	// its far-point distance still equals fmin, which lets the filter replay
	// recompute the critical distance from the changed set alone.
	fminStable uint64
	fminKnown  bool

	folds     map[uint64]*cachedFold
	foldBytes int

	table      subregion.Table
	tableBuilt bool

	cands     []subregion.Candidate // assembly scratch, reused across evaluations
	replayIDs []int                 // filter-replay scratch, reused across evaluations
}

// NewEvalState returns an empty evaluation state.
func NewEvalState() *EvalState {
	return &EvalState{folds: map[uint64]*cachedFold{}}
}

// Valid reports whether the state reflects a completed evaluation and may be
// reused. An invalid state is still usable — the next evaluation re-derives
// everything and re-validates it.
func (st *EvalState) Valid() bool { return st.valid }

// Invalidate marks the state stale: the next evaluation ignores every cached
// fold. Callers must invalidate whenever they can no longer enumerate the
// objects changed since the state's last evaluation (feed gaps, truncations,
// errors).
func (st *EvalState) Invalidate() { st.valid = false }

// CachedFolds returns the number of retained candidate derivations.
func (st *EvalState) CachedFolds() int { return len(st.folds) }

// MemBytes returns the approximate heap footprint of the state: cached folds,
// the retained subregion table, and assembly scratch. The monitor accounts
// this against its configured state-cache cap.
func (st *EvalState) MemBytes() int {
	return st.foldBytes + len(st.folds)*foldEntryOverhead +
		st.table.MemBytes() + 24*cap(st.cands) + 8*cap(st.replayIDs)
}

// clear resets the state to a valid empty candidate set at critical distance
// fmin (the outcome of evaluating over an empty or fully-pruned dataset).
func (st *EvalState) clear(fmin float64) {
	for s, cf := range st.folds {
		st.foldBytes -= cf.h.MemBytes()
		delete(st.folds, s)
	}
	st.foldBytes = 0
	st.tableBuilt = false
	st.fmin = fmin
	st.fminKnown = false
	st.valid = true
}

// IncrementalStats reports what an incremental evaluation actually did.
type IncrementalStats struct {
	// Skipped reports the early exit: the previous answer is provably
	// unchanged and no result was produced.
	Skipped bool
	// Patched reports the single-candidate table patch path.
	Patched bool
	// Reused counts candidates whose cached distance pdf was kept; Derived
	// counts fold derivations actually performed.
	Reused, Derived int
}

// checkIncremental validates the shared incremental-call invariants.
func (e *Engine) checkIncremental(st *EvalState, ids []uint64) error {
	if st == nil || st.folds == nil {
		return fmt.Errorf("core: incremental evaluation requires a NewEvalState state")
	}
	if len(ids) != e.ds.Len() {
		return fmt.Errorf("core: IDs maps %d objects, dataset holds %d", len(ids), e.ds.Len())
	}
	return nil
}

// skipCheck reports whether the previous answer is provably unchanged: the
// critical distance is bit-equal and no changed object is in the fresh
// candidate set (dense IDs) or was in the cached one (stable IDs). Unchanged
// objects keep their exact distances, so under these conditions the two
// candidate sets — and every fold over them — coincide exactly.
func (st *EvalState) skipCheck(fmin float64, denseIDs []int, ids []uint64, changed map[uint64]int) bool {
	if !st.valid || fmin != st.fmin {
		return false
	}
	for _, d := range denseIDs {
		if _, ok := changed[ids[d]]; ok {
			return false
		}
	}
	for s := range changed {
		if _, ok := st.folds[s]; ok {
			return false
		}
	}
	return true
}

// replayFilter recomputes the filtering phase from the state's cache and the
// changed set alone, bypassing the R-tree — the per-evaluation cost the
// standing-query path pays even when a commit touches a handful of objects.
// It is sound exactly when the changed set is exhaustive over objects that
// could matter (the monitor's influence-region invariant: an unlisted object
// kept its region, or moved entirely outside the query's critical ball, so
// its near point exceeds the old critical distance and its far point cannot
// lower it):
//
//   - The critical distance can only shrink, to min(fmin, far(changed)),
//     because the object that attained the old fmin is unchanged (when it is
//     itself in the changed set the replay bails to the tree).
//   - The new candidate set is then the cached candidates whose near point
//     still clears the bound, plus the changed objects that do.
//
// Distances are computed by the same float operations as the tree path, so
// the result — and every answer derived from it — is bit-identical. The
// second return is the stable ID attaining the new critical distance; ok
// reports whether the replay applied.
func (e *Engine) replayFilter(q float64, st *EvalState, ids []uint64, changed map[uint64]int) (filter.Result, uint64, bool) {
	if !st.valid || !st.fminKnown || len(ids) == 0 {
		return filter.Result{}, 0, false
	}
	if _, ok := changed[st.fminStable]; ok {
		return filter.Result{}, 0, false
	}
	// Resolve the dense slot of every changed object still in the view and of
	// every cached candidate: commit-time hints and cached slots are validated
	// against the view's ID map, the rest resolved in one sweep. A changed ID
	// absent from the sweep is deleted; a cached unchanged one would mean the
	// changed set was not exhaustive after all — bail to the tree.
	n := len(ids)
	slots := make(map[uint64]int, len(changed))
	var need map[uint64]struct{}
	miss := func(s uint64) {
		if need == nil {
			need = make(map[uint64]struct{})
		}
		need[s] = struct{}{}
	}
	for s, hint := range changed {
		switch {
		case hint == SlotDeleted:
		case hint >= 0 && hint < n && ids[hint] == s:
			slots[s] = hint
		default:
			if cf := st.folds[s]; cf != nil && cf.dense >= 0 && cf.dense < n && ids[cf.dense] == s {
				slots[s] = cf.dense
			} else {
				miss(s)
			}
		}
	}
	for s, cf := range st.folds {
		if _, ch := changed[s]; ch {
			continue
		}
		if cf.dense < 0 || cf.dense >= n || ids[cf.dense] != s {
			miss(s) // re-slotted by an unrelated delete
		}
	}
	if len(need) > 0 {
		for d, s := range ids {
			if _, ok := need[s]; ok {
				slots[s] = d
				delete(need, s)
				if len(need) == 0 {
					break
				}
			}
		}
		for s := range need {
			if _, ch := changed[s]; !ch {
				return filter.Result{}, 0, false // unchanged candidate vanished
			}
		}
	}

	fmin, fminStable := st.fmin, st.fminStable
	for s := range changed {
		d, ok := slots[s]
		if !ok {
			continue // deleted
		}
		if far := e.ds.Region(d).MaxDist(q); far < fmin {
			fmin, fminStable = far, s
		}
	}
	out := st.replayIDs[:0]
	for s, cf := range st.folds {
		if _, ch := changed[s]; ch {
			continue
		}
		if cf.near > fmin {
			continue
		}
		d := cf.dense
		if d < 0 || d >= n || ids[d] != s {
			d = slots[s]
		}
		out = append(out, d)
	}
	for s := range changed {
		d, ok := slots[s]
		if !ok {
			continue
		}
		if e.ds.Region(d).MinDist(q) <= fmin {
			out = append(out, d)
		}
	}
	sort.Ints(out)
	st.replayIDs = out
	return filter.Result{IDs: out, FMin: fmin}, fminStable, true
}

// incrementalFilter produces the filtering result for an incremental
// evaluation — by cache replay when the state supports it, else through the
// R-tree — along with the stable ID attaining the critical distance (known
// whenever ok; the tree path recovers it from the candidate set, where the
// attaining object always appears since its near point cannot exceed its far
// point).
func (e *Engine) incrementalFilter(q float64, st *EvalState, ids []uint64, changed map[uint64]int) (filter.Result, uint64, bool) {
	if fr, fs, ok := e.replayFilter(q, st, ids, changed); ok {
		return fr, fs, true
	}
	fr := e.ix.Candidates(q)
	for _, d := range fr.IDs {
		if e.ds.Region(d).MaxDist(q) == fr.FMin {
			return fr, ids[d], true
		}
	}
	return fr, 0, false
}

// incrementalPrepare runs the filter and derivation phases of an incremental
// evaluation: early-exit check, fold-cache classification, and (when
// buildTable is set) the in-place table patch or rebuild. On return with
// inc.Skipped the caller reuses its previous answer; with stats.Candidates
// == 0 the answer is empty; otherwise st.table (or st.cands when buildTable
// is false) holds the prepared candidate set. Filter and init timings land
// in stats.
func (e *Engine) incrementalPrepare(q float64, bins int, buildTable bool, st *EvalState, ids []uint64, changed map[uint64]int, inc *IncrementalStats, stats *Stats) error {
	start := time.Now()
	fr, fminStable, fminKnown := e.incrementalFilter(q, st, ids, changed)
	stats.FilterTime = time.Since(start)
	stats.Candidates = len(fr.IDs)
	stats.FMin = fr.FMin

	if st.skipCheck(fr.FMin, fr.IDs, ids, changed) {
		inc.Skipped = true
		return nil
	}
	if len(fr.IDs) == 0 {
		st.clear(fr.FMin)
		return nil
	}

	start = time.Now()
	st.gen++
	gen := st.gen

	// First pass: mark reusable folds and decide patch feasibility. A patch
	// needs a previously built table, every surviving candidate still in the
	// dense slot the table knows it by, and at most one candidate entering,
	// leaving or moving.
	canPatch := buildTable && st.valid && st.tableBuilt
	upDense, upStable := -1, uint64(0)
	for _, d := range fr.IDs {
		s := ids[d]
		cf := st.folds[s]
		reuse := cf != nil && st.valid
		if reuse {
			if _, isChanged := changed[s]; isChanged {
				reuse = false
			}
		}
		if reuse {
			if cf.dense != d {
				canPatch = false // dense reshuffle: the table's IDs are stale
			}
			cf.gen, cf.dense = gen, d
			continue
		}
		if upDense >= 0 || (cf != nil && cf.dense != d) {
			canPatch = false // second upsert, or a moved candidate that also re-slotted
		}
		upDense, upStable = d, s
	}

	if canPatch {
		// Identify departures. More than one kills the patch path; the
		// upsert's own (off-generation) entry is not a departure.
		evictDense, evictStable, departed := -1, uint64(0), 0
		for s, cf := range st.folds {
			if cf.gen == gen || (upDense >= 0 && s == upStable) {
				continue
			}
			departed++
			evictDense, evictStable = cf.dense, s
		}
		if departed <= 1 {
			var up *subregion.Candidate
			if upDense >= 0 {
				h, err := e.dv.distFor(e.ds.Object(upDense), q, bins, nil)
				if err != nil {
					st.Invalidate()
					return err
				}
				cf := st.folds[upStable]
				if cf == nil {
					cf = &cachedFold{}
					st.folds[upStable] = cf
				} else {
					st.foldBytes -= cf.h.MemBytes()
				}
				cf.h, cf.gen, cf.dense = h, gen, upDense
				cf.near = e.ds.Region(upDense).MinDist(q)
				st.foldBytes += h.MemBytes()
				inc.Derived++
				up = &subregion.Candidate{ID: upDense, Dist: h}
			}
			if up != nil || evictDense >= 0 {
				if err := st.table.Patch(up, evictDense); err != nil {
					// The edited set no longer forms a valid table (should
					// not happen for genuine filter output); fall back to a
					// full re-derivation below.
					st.Invalidate()
				} else {
					if evictDense >= 0 {
						if cf := st.folds[evictStable]; cf != nil {
							st.foldBytes -= cf.h.MemBytes()
							delete(st.folds, evictStable)
						}
					}
					inc.Patched = true
					inc.Reused = len(st.folds)
					if up != nil {
						inc.Reused--
					}
					st.fmin = fr.FMin
					st.fminStable, st.fminKnown = fminStable, fminKnown
					st.valid = true
					stats.InitTime = time.Since(start)
					return nil
				}
			} else {
				// Candidate set identical and nothing changed inside it; the
				// cached table already is the fresh one.
				inc.Patched = true
				inc.Reused = len(st.folds)
				st.fmin = fr.FMin
				st.fminStable, st.fminKnown = fminStable, fminKnown
				st.valid = true
				stats.InitTime = time.Since(start)
				return nil
			}
		}
	}

	// Full path: assemble the candidate set in filter order, reusing cached
	// folds (marked with this generation above) and deriving the rest on the
	// heap — cached folds outlive any arena reset, so the arena is never
	// used here.
	cands := st.cands[:0]
	for _, d := range fr.IDs {
		s := ids[d]
		cf := st.folds[s]
		if cf != nil && cf.gen == gen {
			inc.Reused++
		} else {
			h, err := e.dv.distFor(e.ds.Object(d), q, bins, nil)
			if err != nil {
				st.Invalidate()
				return err
			}
			if cf == nil {
				cf = &cachedFold{}
				st.folds[s] = cf
			} else {
				st.foldBytes -= cf.h.MemBytes()
			}
			cf.h, cf.gen, cf.dense = h, gen, d
			cf.near = e.ds.Region(d).MinDist(q)
			st.foldBytes += h.MemBytes()
			inc.Derived++
		}
		cands = append(cands, subregion.Candidate{ID: d, Dist: cf.h})
	}
	st.cands = cands
	for s, cf := range st.folds {
		if cf.gen != gen {
			st.foldBytes -= cf.h.MemBytes()
			delete(st.folds, s)
		}
	}
	if buildTable {
		if err := st.table.Rebuild(cands); err != nil {
			st.Invalidate()
			return fmt.Errorf("core: %w", err)
		}
		st.tableBuilt = true
	}
	st.fmin = fr.FMin
	st.fminStable, st.fminKnown = fminStable, fminKnown
	st.valid = true
	stats.InitTime = time.Since(start)
	return nil
}

// CPNNIncremental evaluates a constrained probabilistic nearest-neighbor
// query against the engine's view, reusing the per-query state from the
// previous evaluation. ids maps dense dataset IDs to stable external IDs
// (length Dataset().Len()); changed holds the stable IDs of every object
// modified since the state's last evaluation — pass nil to force a full
// re-derivation. The result is bit-identical to CPNN on the same view; on
// IncrementalStats.Skipped the result is nil and the caller's previous
// answer stands unchanged.
func (e *Engine) CPNNIncremental(q float64, c verify.Constraint, opt Options, st *EvalState, ids []uint64, changed map[uint64]int) (*Result, IncrementalStats, error) {
	var inc IncrementalStats
	if err := c.Validate(); err != nil {
		return nil, inc, err
	}
	if err := checkQuery(q); err != nil {
		return nil, inc, err
	}
	if err := e.checkIncremental(st, ids); err != nil {
		return nil, inc, err
	}
	if changed == nil {
		st.Invalidate()
		changed = map[uint64]int{}
	}
	opt = opt.withDefaults()
	res := &Result{}
	buildTable := opt.Strategy != Basic
	if err := e.incrementalPrepare(q, opt.Bins, buildTable, st, ids, changed, &inc, &res.Stats); err != nil {
		return nil, inc, err
	}
	if inc.Skipped {
		return nil, inc, nil
	}
	if res.Stats.Candidates == 0 {
		return res, inc, nil
	}
	if opt.Strategy == Basic {
		r, err := cpnnBasic(st.cands, c, opt, res)
		return r, inc, err
	}
	res.Stats.Subregions = st.table.NumSubregions()
	r, err := finishVerifyRefine(&st.table, c, opt, res)
	return r, inc, err
}

// PNNIncremental is the incremental form of PNN; see CPNNIncremental for the
// state/ids/changed contract. On Skipped the probability slice is nil and the
// previous answer stands.
func (e *Engine) PNNIncremental(q float64, opt Options, st *EvalState, ids []uint64, changed map[uint64]int) ([]Probability, Stats, IncrementalStats, error) {
	var inc IncrementalStats
	var stats Stats
	if err := checkQuery(q); err != nil {
		return nil, stats, inc, err
	}
	if err := e.checkIncremental(st, ids); err != nil {
		return nil, stats, inc, err
	}
	if changed == nil {
		st.Invalidate()
		changed = map[uint64]int{}
	}
	opt = opt.withDefaults()
	if err := e.incrementalPrepare(q, opt.Bins, true, st, ids, changed, &inc, &stats); err != nil {
		return nil, stats, inc, err
	}
	if inc.Skipped || stats.Candidates == 0 {
		return nil, stats, inc, nil
	}
	stats.Subregions = st.table.NumSubregions()
	start := time.Now()
	out, err := exactAll(&st.table, opt.GLNodes)
	if err != nil {
		return nil, stats, inc, err
	}
	stats.RefineTime = time.Since(start)
	stats.RefinedObjects = len(out)
	sortProbs(out)
	return out, stats, inc, nil
}

// KNNIncremental is the incremental form of CKNN; see CPNNIncremental for
// the state/ids/changed contract. The sampling streams are keyed by stable
// ID (opt.IDs is overridden with ids), so the answers are bit-identical to
// CKNN with the same ids on the same view. On Skipped the answer slice is
// nil and the previous answer stands. Re-sampling still runs whenever a
// candidate changed — only derivations are cached — but the early exit skips
// the sampling phase entirely for commits that cannot affect the query.
func (e *Engine) KNNIncremental(q float64, c verify.Constraint, opt KNNOptions, st *EvalState, ids []uint64, changed map[uint64]int) ([]KNNAnswer, Stats, IncrementalStats, error) {
	var inc IncrementalStats
	var stats Stats
	if err := c.Validate(); err != nil {
		return nil, stats, inc, err
	}
	if err := checkQuery(q); err != nil {
		return nil, stats, inc, err
	}
	if err := e.checkIncremental(st, ids); err != nil {
		return nil, stats, inc, err
	}
	if opt.K < 1 {
		return nil, stats, inc, fmt.Errorf("core: k = %d < 1", opt.K)
	}
	if changed == nil {
		st.Invalidate()
		changed = map[uint64]int{}
	}
	if opt.Samples == 0 {
		opt.Samples = 10000
	}
	if opt.Bins == 0 {
		opt.Bins = dist.DefaultBins
	}
	opt.IDs = ids
	n := e.ds.Len()
	if n == 0 {
		st.clear(0)
		return nil, stats, inc, nil
	}
	k := opt.K
	if k > n {
		k = n
	}
	start := time.Now()
	fk, candIDs := e.cknnFilter(q, k)
	stats.FilterTime = time.Since(start)
	stats.FMin = fk
	stats.Candidates = len(candIDs)

	if st.skipCheck(fk, candIDs, ids, changed) {
		inc.Skipped = true
		return nil, stats, inc, nil
	}

	start = time.Now()
	st.gen++
	gen := st.gen
	cands := st.cands[:0]
	for _, d := range candIDs {
		s := ids[d]
		cf := st.folds[s]
		reuse := cf != nil && st.valid
		if reuse {
			if _, isChanged := changed[s]; isChanged {
				reuse = false
			}
		}
		if reuse {
			cf.gen, cf.dense = gen, d
			inc.Reused++
		} else {
			h, err := e.dv.distFor(e.ds.Object(d), q, opt.Bins, nil)
			if err != nil {
				st.Invalidate()
				return nil, stats, inc, err
			}
			if cf == nil {
				cf = &cachedFold{}
				st.folds[s] = cf
			} else {
				st.foldBytes -= cf.h.MemBytes()
			}
			cf.h, cf.gen, cf.dense = h, gen, d
			cf.near = e.ds.Region(d).MinDist(q)
			st.foldBytes += h.MemBytes()
			inc.Derived++
		}
		cands = append(cands, subregion.Candidate{ID: d, Dist: cf.h})
	}
	st.cands = cands
	for s, cf := range st.folds {
		if cf.gen != gen {
			st.foldBytes -= cf.h.MemBytes()
			delete(st.folds, s)
		}
	}
	st.fmin = fk
	st.fminKnown = false // f_k is not a far-point minimum; no replay for k-NN
	st.valid = true
	stats.InitTime = time.Since(start)

	start = time.Now()
	out := cknnClassify(cands, fk, k, c, opt)
	stats.RefineTime = time.Since(start)
	stats.RefinedObjects = len(out)
	return out, stats, inc, nil
}
