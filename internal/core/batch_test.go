package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

func batchTestEngine(t testing.TB, n int, seed int64) (*Engine, []float64) {
	t.Helper()
	opt := uncertain.LongBeachOptions(seed)
	opt.N = n
	ds, err := uncertain.GenerateUniform(opt)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	return eng, uncertain.QueryWorkload(48, opt.Domain, seed+100)
}

// TestCPNNBatchMatchesSingles: a batch answer must be byte-for-byte the
// answer of evaluating each point with CPNN — the batch path shares scratch
// and recycles tables, none of which may leak into results.
func TestCPNNBatchMatchesSingles(t *testing.T) {
	eng, qs := batchTestEngine(t, 8000, 3)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	for _, workers := range []int{1, 4} {
		br, err := eng.CPNNBatch(qs, c, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(br.Results) != len(qs) {
			t.Fatalf("workers=%d: %d results for %d queries", workers, len(br.Results), len(qs))
		}
		if br.Stats.Queries != len(qs) {
			t.Fatalf("workers=%d: Stats.Queries = %d", workers, br.Stats.Queries)
		}
		for i, q := range qs {
			want, err := eng.CPNN(q, c, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := br.Results[i]
			if !reflect.DeepEqual(got.Answers, want.Answers) {
				t.Fatalf("workers=%d query %d (q=%g): batch answers %+v != single %+v",
					workers, i, q, got.Answers, want.Answers)
			}
			if !reflect.DeepEqual(got.Candidates, want.Candidates) {
				t.Fatalf("workers=%d query %d (q=%g): batch candidates differ from single",
					workers, i, q)
			}
		}
	}
}

// TestCPNNBatchStrategies: the scratch path must behave for every strategy,
// including Basic (which skips the subregion table entirely).
func TestCPNNBatchStrategies(t *testing.T) {
	eng, qs := batchTestEngine(t, 2000, 5)
	qs = qs[:8]
	c := verify.Constraint{P: 0.2, Delta: 0.01}
	for _, strat := range []Strategy{VR, Refine, Basic} {
		br, err := eng.CPNNBatch(qs, c, BatchOptions{Options: Options{Strategy: strat}, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for i, q := range qs {
			want, err := eng.CPNN(q, c, Options{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(br.Results[i].Answers, want.Answers) {
				t.Fatalf("%v query %d: batch answers differ from single", strat, i)
			}
		}
	}
}

func TestCPNNBatch2DMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := make([]Object2D, 80)
	for i := range objs {
		objs[i] = Object2D{
			ID: i,
			Region: geom.Circle{
				Center: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Radius: 0.5 + rng.Float64()*4,
			},
		}
	}
	eng, err := NewEngine2D(objs)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]geom.Point, 12)
	for i := range qs {
		qs[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	c := verify.Constraint{P: 0.3, Delta: 0.05}
	for _, workers := range []int{1, 3} {
		br, err := eng.CPNNBatch(qs, c, BatchOptions2D{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			want, err := eng.CPNN(q, c, Options2D{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(br.Results[i].Answers, want.Answers) {
				t.Fatalf("workers=%d query %d: 2-D batch answers differ from single", workers, i)
			}
			if !reflect.DeepEqual(br.Results[i].Candidates, want.Candidates) {
				t.Fatalf("workers=%d query %d: 2-D batch candidates differ from single", workers, i)
			}
		}
	}
}

func TestCPNNBatchRejectsNonFinite(t *testing.T) {
	eng, _ := batchTestEngine(t, 500, 11)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, err := eng.CPNNBatch([]float64{100, bad, 200}, c, BatchOptions{})
		if err == nil {
			t.Fatalf("batch accepted non-finite query %g", bad)
		}
		if !strings.Contains(err.Error(), "query 1") {
			t.Fatalf("error %q does not name the offending index", err)
		}
	}
	// The single-query entry points share the guard.
	if _, err := eng.CPNN(math.NaN(), c, Options{}); err == nil {
		t.Fatal("CPNN accepted NaN")
	}
	if _, _, err := eng.PNN(math.Inf(1), Options{}); err == nil {
		t.Fatal("PNN accepted +Inf")
	}
	if _, _, err := eng.CKNN(math.NaN(), c, KNNOptions{K: 2}); err == nil {
		t.Fatal("CKNN accepted NaN")
	}
}

func TestCPNNBatchEmpty(t *testing.T) {
	eng, _ := batchTestEngine(t, 500, 13)
	br, err := eng.CPNNBatch(nil, verify.Constraint{P: 0.3, Delta: 0.01}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 0 || br.Stats.Queries != 0 {
		t.Fatalf("empty batch returned %d results", len(br.Results))
	}
}

// TestCPNNBatchAggregates: the scalar per-query statistics must sum into the
// batch aggregate.
func TestCPNNBatchAggregates(t *testing.T) {
	eng, qs := batchTestEngine(t, 4000, 17)
	qs = qs[:16]
	br, err := eng.CPNNBatch(qs, verify.Constraint{P: 0.3, Delta: 0.01}, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wantCands, wantSub int
	for _, r := range br.Results {
		wantCands += r.Stats.Candidates
		wantSub += r.Stats.Subregions
	}
	if br.Stats.Aggregate.Candidates != wantCands {
		t.Errorf("aggregate candidates %d != %d", br.Stats.Aggregate.Candidates, wantCands)
	}
	if br.Stats.Aggregate.Subregions != wantSub {
		t.Errorf("aggregate subregions %d != %d", br.Stats.Aggregate.Subregions, wantSub)
	}
	if br.Stats.Wall <= 0 {
		t.Error("batch wall time not recorded")
	}
}

// ---- benchmarks --------------------------------------------------------

var benchBatch struct {
	eng *Engine
	qs  []float64
}

func benchBatchSetup(b *testing.B) (*Engine, []float64) {
	b.Helper()
	if benchBatch.eng == nil {
		opt := uncertain.LongBeachOptions(1)
		ds, err := uncertain.GenerateUniform(opt)
		if err != nil {
			b.Fatal(err)
		}
		benchBatch.eng, err = NewEngine(ds)
		if err != nil {
			b.Fatal(err)
		}
		benchBatch.qs = uncertain.QueryWorkload(512, opt.Domain, 42)
	}
	return benchBatch.eng, benchBatch.qs
}

// BenchmarkCPNNBatch measures batch throughput across batch sizes on the
// Long-Beach-like workload. Compare size=64 against
// BenchmarkCPNNLoopOfSingles/size=64 — the loop-of-singles baseline that
// pays per-query table allocation — for the amortization ratio tracked in
// EXPERIMENTS.md.
func BenchmarkCPNNBatch(b *testing.B) {
	eng, qs := benchBatchSetup(b)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	for _, size := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.CPNNBatch(qs[:size], c, BatchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkCPNNLoopOfSingles is the baseline the batch path amortizes: the
// same query points evaluated one CPNN call at a time.
func BenchmarkCPNNLoopOfSingles(b *testing.B) {
	eng, qs := benchBatchSetup(b)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	for _, size := range []int{64} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, q := range qs[:size] {
					if _, err := eng.CPNN(q, c, Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// TestCPNNBatchSmallBatchNestedParallel: a batch smaller than the core count
// re-enables per-candidate derivation fan-out (and bypasses the fold arena,
// which is not safe for concurrent use). Results must still be identical to
// singles. GOMAXPROCS is raised so the nested path runs even on a
// single-core host.
func TestCPNNBatchSmallBatchNestedParallel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	eng, qs := batchTestEngine(t, 6000, 23)
	qs = qs[:2] // 2 workers < 4 procs → nested derivation
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	br, err := eng.CPNNBatch(qs, c, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := eng.CPNN(q, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(br.Results[i].Candidates, want.Candidates) {
			t.Fatalf("query %d: nested-parallel batch differs from single", i)
		}
	}
}

func TestEngine2DRejectsNonFinite(t *testing.T) {
	eng, err := NewEngine2D([]Object2D{{ID: 0, Region: geom.Circle{Center: geom.Point{X: 1, Y: 1}, Radius: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	bad := geom.Point{X: math.NaN(), Y: 0}
	if _, err := eng.CPNN(bad, c, Options2D{}); err == nil {
		t.Error("2-D CPNN accepted NaN")
	}
	if _, err := eng.PNN(bad, Options2D{}); err == nil {
		t.Error("2-D PNN accepted NaN")
	}
	if _, err := eng.CPNNBatch([]geom.Point{{X: 1, Y: 1}, bad}, c, BatchOptions2D{}); err == nil {
		t.Error("2-D batch accepted NaN")
	}
}
