package core

// Metamorphic properties of the C-PNN pipeline: transformations of the
// input that must not change the answer (object relabeling, rigid
// translation) and analytic invariants every result must satisfy (verifier
// bounds bracket the exact probability, qualification probabilities sum to
// one). Unlike the oracle cross-check, these need no ground truth — they
// catch bugs by comparing the engine against itself.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pdf"
	"repro/internal/refine"
	"repro/internal/subregion"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// propDataset builds a small uniform-pdf dataset directly (no generator) so
// tests can permute and translate the underlying pdfs.
func propPDFs(rng *rand.Rand, n int) []pdf.PDF {
	pdfs := make([]pdf.PDF, n)
	for i := range pdfs {
		lo := rng.Float64() * 100
		pdfs[i] = pdf.MustUniform(lo, lo+1+rng.Float64()*20)
	}
	return pdfs
}

// boundsClose compares two probability bounds to within fp-reordering noise.
func boundsClose(a, b verify.Bounds, tol float64) bool {
	return math.Abs(a.L-b.L) <= tol && math.Abs(a.U-b.U) <= tol
}

// TestRelabelingInvariance: permuting the order objects are handed to the
// engine must permute IDs and nothing else — same answer set, same bounds,
// same statuses. Catches any dependence on input order that is not the
// paper's near-point ordering.
func TestRelabelingInvariance(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pdfs := propPDFs(rng, 12+rng.Intn(20))
		perm := rng.Perm(len(pdfs))
		permuted := make([]pdf.PDF, len(pdfs))
		for i, p := range perm {
			permuted[p] = pdfs[i] // original object i becomes object perm[i]
		}

		engA, err := NewEngine(uncertain.NewDataset(pdfs))
		if err != nil {
			t.Fatal(err)
		}
		engB, err := NewEngine(uncertain.NewDataset(permuted))
		if err != nil {
			t.Fatal(err)
		}
		c := verify.Constraint{P: 0.2 + 0.4*rng.Float64(), Delta: 0.05}
		for qi := 0; qi < 3; qi++ {
			q := 10 + rng.Float64()*100
			ra, err := engA.CPNN(q, c, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := engB.CPNN(q, c, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(ra.Candidates) != len(rb.Candidates) {
				t.Fatalf("seed %d q=%g: candidate counts %d vs %d under relabeling",
					seed, q, len(ra.Candidates), len(rb.Candidates))
			}
			// Map A's answers through the permutation and compare.
			byID := make(map[int]Answer, len(rb.Candidates))
			for _, a := range rb.Candidates {
				byID[a.ID] = a
			}
			for _, a := range ra.Candidates {
				b, ok := byID[perm[a.ID]]
				if !ok {
					t.Fatalf("seed %d q=%g: object %d (relabeled %d) missing from permuted result",
						seed, q, a.ID, perm[a.ID])
				}
				if a.Status != b.Status || !boundsClose(a.Bounds, b.Bounds, 1e-9) {
					t.Fatalf("seed %d q=%g: object %d: %v %v vs relabeled %v %v",
						seed, q, a.ID, a.Status, a.Bounds, b.Status, b.Bounds)
				}
			}
		}
	}
}

// TestTranslationInvariance: rigidly translating the dataset and the query
// point together must preserve the answer — distances, and everything
// derived from them, are translation-invariant.
func TestTranslationInvariance(t *testing.T) {
	const shift = 1000.25
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed * 13))
		pdfs := propPDFs(rng, 10+rng.Intn(16))
		shifted := make([]pdf.PDF, len(pdfs))
		for i, p := range pdfs {
			sup := p.Support()
			shifted[i] = pdf.MustUniform(sup.Lo+shift, sup.Hi+shift)
		}
		engA, err := NewEngine(uncertain.NewDataset(pdfs))
		if err != nil {
			t.Fatal(err)
		}
		engB, err := NewEngine(uncertain.NewDataset(shifted))
		if err != nil {
			t.Fatal(err)
		}
		c := verify.Constraint{P: 0.25, Delta: 0.05}
		for qi := 0; qi < 3; qi++ {
			q := 10 + rng.Float64()*100
			ra, err := engA.CPNN(q, c, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := engB.CPNN(q+shift, c, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(ra.Candidates) != len(rb.Candidates) {
				t.Fatalf("seed %d q=%g: candidate counts %d vs %d under translation",
					seed, q, len(ra.Candidates), len(rb.Candidates))
			}
			for i, a := range ra.Candidates {
				b := rb.Candidates[i]
				if a.ID != b.ID {
					t.Fatalf("seed %d q=%g: candidate order changed under translation", seed, q)
				}
				// Translation perturbs the fold endpoints by fp rounding;
				// bounds may move by a few ulps amplified through products.
				if a.Status != b.Status || !boundsClose(a.Bounds, b.Bounds, 1e-6) {
					t.Fatalf("seed %d q=%g: object %d: %v %v vs translated %v %v",
						seed, q, a.ID, a.Status, a.Bounds, b.Status, b.Bounds)
				}
			}
		}
	}
}

// TestVerifierBoundsBracketExact: the RS / L-SR / U-SR bounds are claimed
// lower/upper bounds on the exact qualification probability (paper Lemmas
// 1-2, Eq. 11). Check them directly against exact refinement for every
// candidate of random tables.
func TestVerifierBoundsBracketExact(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		pdfs := propPDFs(rng, 8+rng.Intn(24))
		eng, err := NewEngine(uncertain.NewDataset(pdfs))
		if err != nil {
			t.Fatal(err)
		}
		q := 10 + rng.Float64()*100
		fr := eng.ix.Candidates(q)
		if len(fr.IDs) == 0 {
			continue
		}
		cands, err := eng.distanceCandidates(nil, fr.IDs, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		table, err := subregion.Build(cands)
		if err != nil {
			t.Fatal(err)
		}
		// A constraint the verifiers can rarely decide, so bounds stay live.
		c := verify.Constraint{P: 0.5, Delta: 0}
		vres, err := verify.Run(table, c, verify.DefaultChain())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < table.NumCandidates(); i++ {
			exact, err := refine.Exact(table, i, 0)
			if err != nil {
				t.Fatal(err)
			}
			b := vres.Bounds[i]
			if exact < b.L-1e-9 || exact > b.U+1e-9 {
				t.Errorf("seed %d: candidate %d (id %d): exact p=%.6f outside verifier bounds [%.6f, %.6f]",
					seed, i, table.IDs()[i], exact, b.L, b.U)
			}
		}
	}
}

// TestProbabilitiesSumToOne: the qualification probabilities of a PNN over
// the full candidate set must sum to one — some candidate is always the
// nearest neighbor — and in particular never exceed 1+ε.
func TestProbabilitiesSumToOne(t *testing.T) {
	const eps = 1e-6
	for seed := int64(1); seed <= 15; seed++ {
		rng := rand.New(rand.NewSource(seed * 47))
		pdfs := propPDFs(rng, 8+rng.Intn(24))
		eng, err := NewEngine(uncertain.NewDataset(pdfs))
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 3; qi++ {
			q := 10 + rng.Float64()*100
			probs, st, err := eng.PNN(q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if st.Candidates == 0 {
				continue
			}
			sum := 0.0
			for _, pr := range probs {
				if pr.P < -eps || pr.P > 1+eps {
					t.Errorf("seed %d q=%g: probability %g outside [0,1]", seed, q, pr.P)
				}
				sum += pr.P
			}
			if sum > 1+eps {
				t.Errorf("seed %d q=%g: probabilities sum to %.9f > 1+ε", seed, q, sum)
			}
			if sum < 1-1e-3 {
				t.Errorf("seed %d q=%g: probabilities sum to %.9f, mass missing", seed, q, sum)
			}
		}
	}
}
