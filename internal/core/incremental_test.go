package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pdf"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// The incremental equivalence suite: replay 50 seeded op sequences over a
// store-like mutable object world (stable IDs, dense slots with
// swap-into-hole deletes) and assert, at every version, that the incremental
// entry points produce results bit-identical to a from-scratch evaluation on
// the same view — bounds, classifications and Stats.FMin — and that an
// early-exit (Skipped) only ever happens when the fresh answer is indeed
// unchanged from the previous version.

// mutWorld is the simulated store: objects by stable ID, dense slot layout
// with the same swap-into-hole delete semantics as internal/store, so dense
// reshuffles (which the incremental path must survive) actually happen.
type mutWorld struct {
	slots []uint64
	objs  map[uint64]pdf.Uniform
	next  uint64
}

func newMutWorld(rng *rand.Rand, n int) *mutWorld {
	w := &mutWorld{objs: map[uint64]pdf.Uniform{}}
	for i := 0; i < n; i++ {
		w.insert(rng)
	}
	return w
}

func randUniform(rng *rand.Rand) pdf.Uniform {
	lo := rng.Float64() * 100
	return pdf.MustUniform(lo, lo+0.5+rng.Float64()*5)
}

func (w *mutWorld) insert(rng *rand.Rand) uint64 {
	id := w.next
	w.next++
	w.objs[id] = randUniform(rng)
	w.slots = append(w.slots, id)
	return id
}

// step applies 1..4 random ops and returns the changed stable IDs with
// dense-slot hints. Hints are dropped (SlotUnknown) at random so both the
// hinted and the sweep-resolution paths of the filter replay get exercised;
// op coalescing within a step can also leave hints stale, which the replay
// must survive by validating them.
func (w *mutWorld) step(rng *rand.Rand) map[uint64]int {
	changed := map[uint64]int{}
	hintOr := func(slot int) int {
		if rng.Intn(2) == 0 {
			return SlotUnknown
		}
		return slot
	}
	n := 1 + rng.Intn(4)
	if rng.Intn(2) == 0 {
		n = 1 // plenty of single-op commits, so the patch path gets exercised
	}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(4); {
		case r == 0: // insert
			changed[w.insert(rng)] = hintOr(len(w.slots) - 1)
		case r == 1 && len(w.slots) > 5: // delete, swap-into-hole
			slot := rng.Intn(len(w.slots))
			id := w.slots[slot]
			last := len(w.slots) - 1
			w.slots[slot] = w.slots[last]
			w.slots = w.slots[:last]
			delete(w.objs, id)
			if rng.Intn(2) == 0 {
				changed[id] = SlotDeleted
			} else {
				changed[id] = SlotUnknown // sweep must conclude "deleted"
			}
		default: // update in place
			slot := rng.Intn(len(w.slots))
			id := w.slots[slot]
			u := w.objs[id]
			sup := u.Support()
			if rng.Intn(2) == 0 {
				// Small nudge: stays near its old position, likely inside
				// the same candidate balls.
				d := (rng.Float64() - 0.5) * 2
				w.objs[id] = pdf.MustUniform(sup.Lo+d, sup.Hi+d)
			} else {
				w.objs[id] = randUniform(rng)
			}
			changed[id] = hintOr(slot)
		}
	}
	return changed
}

// view materializes the world into a dataset, its dense→stable map and a
// fresh engine, exactly as the monitor sees one MVCC view.
func (w *mutWorld) view(t *testing.T) (*Engine, []uint64) {
	t.Helper()
	pdfs := make([]pdf.PDF, len(w.slots))
	ids := make([]uint64, len(w.slots))
	for i, id := range w.slots {
		pdfs[i] = w.objs[id]
		ids[i] = id
	}
	e, err := NewEngine(uncertain.NewDataset(pdfs))
	if err != nil {
		t.Fatal(err)
	}
	return e, ids
}

// stableAns is an answer canonicalized the way the monitor compares bodies:
// stable IDs and bounds quantized to 1e-9, absorbing the low-bit jitter a
// dense reshuffle introduces into otherwise-unchanged products.
type stableAns struct {
	l, u   float64
	status verify.Status
}

func round9(v float64) float64 { return math.Round(v*1e9) / 1e9 }

func canonCPNN(res *Result, ids []uint64) map[uint64]stableAns {
	m := map[uint64]stableAns{}
	for _, a := range res.Candidates {
		m[ids[a.ID]] = stableAns{round9(a.Bounds.L), round9(a.Bounds.U), a.Status}
	}
	return m
}

func canonKNN(out []KNNAnswer, ids []uint64) map[uint64]stableAns {
	m := map[uint64]stableAns{}
	for _, a := range out {
		m[ids[a.ID]] = stableAns{round9(a.Bounds.L), round9(a.Bounds.U), a.Status}
	}
	return m
}

func canonPNN(out []Probability, ids []uint64) map[uint64]stableAns {
	m := map[uint64]stableAns{}
	for _, p := range out {
		m[ids[p.ID]] = stableAns{l: round9(p.P)}
	}
	return m
}

func sameCanon(a, b map[uint64]stableAns) bool {
	if len(a) != len(b) {
		return false
	}
	for id, v := range a {
		if b[id] != v {
			return false
		}
	}
	return true
}

func TestIncrementalEquivalence(t *testing.T) {
	const seeds = 50
	c := verify.Constraint{P: 0.25, Delta: 0.01}
	var aggMu sync.Mutex
	var agg IncrementalStats
	skips := 0
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			w := newMutWorld(rng, 40)
			qC := rng.Float64() * 100
			qP := rng.Float64() * 100
			qK := rng.Float64() * 100
			optC := Options{}
			if seed%5 == 4 {
				optC.Strategy = Basic // the no-table incremental path
			}
			knnOpt := KNNOptions{K: 3, Samples: 400, Seed: seed}

			stC, stP, stK := NewEvalState(), NewEvalState(), NewEvalState()
			var prevC, prevP, prevK map[uint64]stableAns

			for step := 0; step < 10; step++ {
				var changed map[uint64]int
				if step > 0 {
					changed = w.step(rng)
				} else {
					changed = nil // first call: full derivation
				}
				eng, ids := w.view(t)

				// CPNN
				want, err := eng.CPNN(qC, c, optC)
				if err != nil {
					t.Fatal(err)
				}
				got, inc, err := eng.CPNNIncremental(qC, c, optC, stC, ids, changed)
				if err != nil {
					t.Fatal(err)
				}
				aggMu.Lock()
				agg.Reused += inc.Reused
				agg.Derived += inc.Derived
				if inc.Patched {
					agg.Patched = true
				}
				if inc.Skipped {
					skips++
				}
				aggMu.Unlock()
				freshC := canonCPNN(want, ids)
				if inc.Skipped {
					if !sameCanon(freshC, prevC) {
						t.Fatalf("step %d: cpnn skipped but fresh answer changed", step)
					}
				} else {
					if got.Stats.FMin != want.Stats.FMin {
						t.Fatalf("step %d: cpnn FMin %g vs %g", step, got.Stats.FMin, want.Stats.FMin)
					}
					if got.Stats.Candidates != want.Stats.Candidates ||
						got.Stats.Subregions != want.Stats.Subregions {
						t.Fatalf("step %d: cpnn shape (%d,%d) vs (%d,%d)", step,
							got.Stats.Candidates, got.Stats.Subregions,
							want.Stats.Candidates, want.Stats.Subregions)
					}
					if len(got.Candidates) != len(want.Candidates) {
						t.Fatalf("step %d: cpnn %d candidates vs %d", step, len(got.Candidates), len(want.Candidates))
					}
					for i := range got.Candidates {
						if got.Candidates[i] != want.Candidates[i] {
							t.Fatalf("step %d: cpnn candidate %d: %+v vs %+v (patched=%v reused=%d)",
								step, i, got.Candidates[i], want.Candidates[i], inc.Patched, inc.Reused)
						}
					}
					if len(got.Answers) != len(want.Answers) {
						t.Fatalf("step %d: cpnn %d answers vs %d", step, len(got.Answers), len(want.Answers))
					}
				}
				prevC = freshC

				// PNN
				wantP, wantPSt, err := eng.PNN(qP, Options{})
				if err != nil {
					t.Fatal(err)
				}
				gotP, gotPSt, incP, err := eng.PNNIncremental(qP, Options{}, stP, ids, changed)
				if err != nil {
					t.Fatal(err)
				}
				freshP := canonPNN(wantP, ids)
				if incP.Skipped {
					aggMu.Lock()
					skips++
					aggMu.Unlock()
					if !sameCanon(freshP, prevP) {
						t.Fatalf("step %d: pnn skipped but fresh answer changed", step)
					}
				} else {
					if gotPSt.FMin != wantPSt.FMin {
						t.Fatalf("step %d: pnn FMin %g vs %g", step, gotPSt.FMin, wantPSt.FMin)
					}
					if len(gotP) != len(wantP) {
						t.Fatalf("step %d: pnn %d probs vs %d", step, len(gotP), len(wantP))
					}
					for i := range gotP {
						if gotP[i] != wantP[i] {
							t.Fatalf("step %d: pnn entry %d: %+v vs %+v", step, i, gotP[i], wantP[i])
						}
					}
				}
				prevP = freshP

				// KNN (stable-ID sampling streams on both sides)
				wantK, wantKSt, err := eng.CKNN(qK, c, KNNOptions{
					K: knnOpt.K, Samples: knnOpt.Samples, Seed: knnOpt.Seed, IDs: ids,
				})
				if err != nil {
					t.Fatal(err)
				}
				gotK, gotKSt, incK, err := eng.KNNIncremental(qK, c, knnOpt, stK, ids, changed)
				if err != nil {
					t.Fatal(err)
				}
				freshK := canonKNN(wantK, ids)
				if incK.Skipped {
					aggMu.Lock()
					skips++
					aggMu.Unlock()
					if !sameCanon(freshK, prevK) {
						t.Fatalf("step %d: knn skipped but fresh answer changed", step)
					}
				} else {
					if gotKSt.FMin != wantKSt.FMin {
						t.Fatalf("step %d: knn f_k %g vs %g", step, gotKSt.FMin, wantKSt.FMin)
					}
					if len(gotK) != len(wantK) {
						t.Fatalf("step %d: knn %d answers vs %d", step, len(gotK), len(wantK))
					}
					for i := range gotK {
						if gotK[i] != wantK[i] {
							t.Fatalf("step %d: knn answer %d: %+v vs %+v", step, i, gotK[i], wantK[i])
						}
					}
				}
				prevK = freshK

				if stC.MemBytes() < 0 || stP.MemBytes() < 0 || stK.MemBytes() < 0 {
					t.Fatalf("step %d: negative state accounting", step)
				}
			}
		})
	}
	t.Cleanup(func() {
		// The suite must actually exercise the incremental machinery, not
		// just fall through to full derivations.
		if agg.Reused == 0 {
			t.Error("no fold was ever reused across 50 seeds")
		}
		if !agg.Patched {
			t.Error("the single-candidate patch path never ran across 50 seeds")
		}
		if skips == 0 {
			t.Error("the early exit never fired across 50 seeds")
		}
	})
}

// TestIncrementalChangedNil: a nil changed set must force a full
// re-derivation (the state can't know what it missed), not silently reuse.
func TestIncrementalChangedNil(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := newMutWorld(rng, 20)
	eng, ids := w.view(t)
	st := NewEvalState()
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	if _, inc, err := eng.CPNNIncremental(50, c, Options{}, st, ids, nil); err != nil {
		t.Fatal(err)
	} else if inc.Reused != 0 || inc.Skipped {
		t.Fatalf("first evaluation reused/skipped: %+v", inc)
	}
	if !st.Valid() {
		t.Fatal("state not valid after evaluation")
	}
	// Mutate an object behind the state's back, then evaluate with nil
	// changed: everything must be re-derived and the answer must match a
	// fresh evaluation.
	id := w.slots[0]
	w.objs[id] = pdf.MustUniform(48, 52)
	eng2, ids2 := w.view(t)
	got, inc, err := eng2.CPNNIncremental(50, c, Options{}, st, ids2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Reused != 0 || inc.Skipped {
		t.Fatalf("nil changed must disable reuse: %+v", inc)
	}
	want, err := eng2.CPNN(50, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("%d candidates vs %d", len(got.Candidates), len(want.Candidates))
	}
	for i := range got.Candidates {
		if got.Candidates[i] != want.Candidates[i] {
			t.Fatalf("candidate %d: %+v vs %+v", i, got.Candidates[i], want.Candidates[i])
		}
	}
}

// TestIncrementalStateErrors: malformed calls are rejected before touching
// the state.
func TestIncrementalStateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := newMutWorld(rng, 5)
	eng, ids := w.view(t)
	c := verify.Constraint{P: 0.3}
	if _, _, err := eng.CPNNIncremental(1, c, Options{}, nil, ids, nil); err == nil {
		t.Fatal("nil state accepted")
	}
	if _, _, err := eng.CPNNIncremental(1, c, Options{}, NewEvalState(), ids[:2], nil); err == nil {
		t.Fatal("short ids accepted")
	}
	if _, _, _, err := eng.KNNIncremental(1, c, KNNOptions{K: 0}, NewEvalState(), ids, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}
