package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/verify"
)

func circles2D() []Object2D {
	return []Object2D{
		{ID: 0, Region: geom.Circle{Center: geom.Point{X: 3, Y: 0}, Radius: 2}},
		{ID: 1, Region: geom.Circle{Center: geom.Point{X: 0, Y: 4}, Radius: 2.5}},
		{ID: 2, Region: geom.Circle{Center: geom.Point{X: -5, Y: -1}, Radius: 3}},
		{ID: 3, Region: geom.Circle{Center: geom.Point{X: 40, Y: 40}, Radius: 1}},
	}
}

func TestEngine2DValidation(t *testing.T) {
	if _, err := NewEngine2D([]Object2D{{ID: 0, Region: geom.Circle{Radius: 0}}}); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := NewEngine2D([]Object2D{
		{ID: 7, Region: geom.Circle{Radius: 1}},
		{ID: 7, Region: geom.Circle{Radius: 1}},
	}); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestEngine2DEmpty(t *testing.T) {
	e, err := NewEngine2D(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.CPNN(geom.Point{}, verify.Constraint{P: 0.3}, Options2D{})
	if err != nil || len(res.Answers) != 0 {
		t.Errorf("empty 2-D engine: %v, %v", res, err)
	}
}

func TestEngine2DFiltersFarObject(t *testing.T) {
	e, err := NewEngine2D(circles2D())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.CPNN(geom.Point{X: 0, Y: 0}, verify.Constraint{P: 0.1, Delta: 0.01}, Options2D{Bins: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates != 3 {
		t.Errorf("candidates = %d, want 3 (far disk pruned)", res.Stats.Candidates)
	}
	for _, a := range res.Candidates {
		if a.ID == 3 {
			t.Error("far disk survived filtering")
		}
	}
}

func TestEngine2DPNNMatchesMonteCarlo(t *testing.T) {
	objs := circles2D()
	e, err := NewEngine2D(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 0, Y: 0}
	probs, err := e.PNN(q, Options2D{Bins: 256})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	exact := map[int]float64{}
	for _, p := range probs {
		sum += p.P
		exact[p.ID] = p.P
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("Σ p = %g", sum)
	}
	// Ground truth from disk sampling.
	rng := rand.New(rand.NewSource(5))
	const samples = 120000
	counts := map[int]float64{}
	for s := 0; s < samples; s++ {
		best, bi := math.Inf(1), -1
		for _, o := range objs {
			var p geom.Point
			for {
				p = geom.Point{
					X: o.Region.Center.X - o.Region.Radius + 2*o.Region.Radius*rng.Float64(),
					Y: o.Region.Center.Y - o.Region.Radius + 2*o.Region.Radius*rng.Float64(),
				}
				if o.Region.Center.Dist(p) <= o.Region.Radius {
					break
				}
			}
			if d := p.Dist(q); d < best {
				best, bi = d, o.ID
			}
		}
		counts[bi]++
	}
	for id, c := range counts {
		mc := c / samples
		if diff := math.Abs(mc - exact[id]); diff > 0.012 {
			t.Errorf("object %d: PNN %g vs MC %g", id, exact[id], mc)
		}
	}
}

func TestEngine2DStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var objs []Object2D
	for i := 0; i < 60; i++ {
		objs = append(objs, Object2D{
			ID: i,
			Region: geom.Circle{
				Center: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Radius: 1 + rng.Float64()*6,
			},
		})
	}
	e, err := NewEngine2D(objs)
	if err != nil {
		t.Fatal(err)
	}
	c := verify.Constraint{P: 0.3, Delta: 0}
	for _, q := range []geom.Point{{X: 50, Y: 50}, {X: 20, Y: 80}, {X: 66, Y: 10}} {
		vr, err := e.CPNN(q, c, Options2D{Bins: 128})
		if err != nil {
			t.Fatal(err)
		}
		basic, err := e.CPNN(q, c, Options2D{Strategy: Basic, Bins: 128, BasicSteps: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(vr.AnswerIDs(), basic.AnswerIDs()) {
			t.Errorf("q=%v: VR %v vs Basic %v", q, vr.AnswerIDs(), basic.AnswerIDs())
		}
	}
}
