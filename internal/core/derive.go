package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/pdf"
	"repro/internal/subregion"
	"repro/internal/uncertain"
)

// deriver is the candidate-derivation stage shared by Engine and Engine2D:
// it turns a filtered ID set into subregion.Candidates by deriving each
// object's distance distribution. It memoizes pdf.Discretize results per
// (object, resolution) — discretization is query-independent, so the cost is
// paid once per object across a query workload — and fans the per-candidate
// folds across a bounded worker pool, since each derivation is independent.
// Future strategies (batch queries, k-NN variants) plug in here rather than
// growing their own per-candidate loops.
type deriver struct {
	mu      sync.Mutex
	disc    map[discKey]*pdf.Histogram
	workers int
}

// discKey identifies one memoized discretization.
type discKey struct {
	id   int
	bins int
}

func newDeriver() *deriver {
	return &deriver{workers: runtime.GOMAXPROCS(0)}
}

// discretize is a memoized pdf.Discretize keyed by object ID and resolution.
// The memo map is allocated on first use: only 1-D analytic pdfs ever reach
// it (histogram folds and the 2-D lens reduction are query-dependent), so
// engines serving other workloads never pay for it. Concurrent callers may
// race to fill the same key; both compute the same histogram, so
// last-write-wins is harmless.
func (dv *deriver) discretize(id int, p pdf.PDF, bins int) (*pdf.Histogram, error) {
	key := discKey{id: id, bins: bins}
	dv.mu.Lock()
	h, ok := dv.disc[key]
	dv.mu.Unlock()
	if ok {
		return h, nil
	}
	h, err := pdf.Discretize(p, bins)
	if err != nil {
		return nil, err
	}
	dv.mu.Lock()
	if dv.disc == nil {
		dv.disc = make(map[discKey]*pdf.Histogram)
	}
	dv.disc[key] = h
	dv.mu.Unlock()
	return h, nil
}

// distFor derives the distance pdf of one 1-D object: exact folds for
// uniform and histogram pdfs, memoized discretization then a bin-exact fold
// for everything else (the paper's treatment of Gaussian uncertainty). The
// fold result is drawn from a (possibly nil) query-scoped arena; only the
// memoized discretization, which outlives queries, stays on the heap.
func (dv *deriver) distFor(obj uncertain.Object, q float64, bins int, a *pdf.Alloc) (*pdf.Histogram, error) {
	switch p := obj.PDF.(type) {
	case *pdf.Histogram:
		return dist.FoldHistogramIn(a, p, q)
	case pdf.Uniform:
		return dist.FromPDFIn(a, p, q)
	default:
		h, err := dv.discretize(obj.ID, obj.PDF, bins)
		if err != nil {
			return nil, err
		}
		return dist.FoldHistogramIn(a, h, q)
	}
}

// serialDeriveCutoff is the candidate count below which deriveSet runs
// serially: each derivation costs tens of microseconds (a 300-bin fold), so
// under ~16 candidates the goroutine fan-out costs more than it saves.
const serialDeriveCutoff = 16

// deriveSet derives the distance distribution of every candidate and
// assembles the candidate set in input order. fn maps a position in ids to
// that candidate's distance pdf; positions are distributed over the worker
// pool, with a serial fast path for small sets. dst, when its capacity
// suffices, provides the backing array of the returned candidate slice (the
// batch path recycles it per worker); serial forces the in-line path — batch
// workers already saturate the cores at query granularity, so fanning out
// per-candidate goroutines underneath them would only add scheduling churn.
func (dv *deriver) deriveSet(dst []subregion.Candidate, ids []int, serial bool, fn func(pos int) (*pdf.Histogram, error)) ([]subregion.Candidate, error) {
	n := len(ids)
	var cands []subregion.Candidate
	if cap(dst) >= n {
		cands = dst[:n]
	} else {
		cands = make([]subregion.Candidate, n)
	}
	workers := dv.workers
	if workers > n {
		workers = n
	}
	if serial || n < serialDeriveCutoff {
		workers = 1
	}
	err := parallelFor(n, workers, func(i int) error {
		d, err := fn(i)
		if err != nil {
			return fmt.Errorf("core: object %d: %w", ids[i], err)
		}
		cands[i] = subregion.Candidate{ID: ids[i], Dist: d}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cands, nil
}

// parallelFor runs fn(i) for every i in [0, n) across a pool of workers
// goroutines (in the calling goroutine when workers <= 1). Indices are
// handed out through an atomic counter so stragglers never idle a worker;
// the first error stops the remaining work and is returned.
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
