// Package core is the C-PNN query engine — the paper's primary contribution
// assembled from its substrates: R-tree filtering (internal/filter),
// distance-distribution derivation (internal/dist), subregion decomposition
// (internal/subregion), probabilistic verification (internal/verify) and
// incremental refinement (internal/refine).
//
// The engine evaluates Constrained Probabilistic Nearest-Neighbor queries
// under three strategies mirroring the paper's experimental section:
//
//	Basic  — compute every candidate's exact probability by direct numeric
//	         integration, then threshold (the method of Cheng et al. '03).
//	Refine — skip verification; run incremental refinement with trivial
//	         per-subregion priors.
//	VR     — run the verifier chain, then incrementally refine only the
//	         objects the verifiers leave unknown (the paper's solution).
//
// It also answers plain PNN queries (exact probabilities for the whole
// candidate set), probabilistic min/max queries (PNN with q at −∞/+∞, per the
// paper's introduction), and constrained probabilistic k-NN queries — the
// paper's stated future work — via sampling.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/filter"
	"repro/internal/pdf"
	"repro/internal/refine"
	"repro/internal/subregion"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// Strategy selects the C-PNN evaluation method.
type Strategy int

const (
	// VR is verification followed by incremental refinement (the paper's
	// proposed solution).
	VR Strategy = iota
	// Refine is incremental refinement without verification.
	Refine
	// Basic is exact evaluation of every candidate.
	Basic
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case VR:
		return "VR"
	case Refine:
		return "Refine"
	case Basic:
		return "Basic"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options tunes query evaluation. The zero value selects the paper's
// defaults.
type Options struct {
	// Strategy is the evaluation method; the zero value is VR.
	Strategy Strategy
	// Verifiers overrides the verifier chain; nil means the paper's
	// RS → L-SR → U-SR order.
	Verifiers []verify.Verifier
	// GLNodes overrides the Gauss–Legendre rule size for subregion
	// integration; 0 selects the exactness-preserving automatic size.
	GLNodes int
	// BasicSteps is the Simpson step count of the Basic strategy; 0 means
	// 1000.
	BasicSteps int
	// Bins is the histogram resolution used to discretize analytic pdfs;
	// 0 means dist.DefaultBins (300, as in the paper).
	Bins int
}

func (o Options) withDefaults() Options {
	if o.Verifiers == nil {
		o.Verifiers = verify.DefaultChain()
	}
	if o.BasicSteps == 0 {
		o.BasicSteps = 1000
	}
	if o.Bins == 0 {
		o.Bins = dist.DefaultBins
	}
	return o
}

// Engine answers probabilistic nearest-neighbor queries over one dataset.
type Engine struct {
	ds *uncertain.Dataset
	ix *filter.Index
	dv *deriver
}

// NewEngine indexes the dataset and returns a ready engine.
func NewEngine(ds *uncertain.Dataset) (*Engine, error) {
	ix, err := filter.NewIndex(ds)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Engine{ds: ds, ix: ix, dv: newDeriver()}, nil
}

// NewEngineWithIndex wraps an already-built filter index — the store's
// incrementally-maintained MVCC views hand their index straight to the
// engine instead of paying a bulk reload per committed batch. The index must
// be bound to ds.
func NewEngineWithIndex(ds *uncertain.Dataset, ix *filter.Index) (*Engine, error) {
	if ix == nil {
		return NewEngine(ds)
	}
	if ix.Dataset() != ds {
		return nil, fmt.Errorf("core: index is bound to a different dataset")
	}
	return &Engine{ds: ds, ix: ix, dv: newDeriver()}, nil
}

// Dataset returns the engine's dataset.
func (e *Engine) Dataset() *uncertain.Dataset { return e.ds }

// Answer is one object of a query result.
type Answer struct {
	// ID is the object's dataset ID.
	ID int
	// Bounds is the final probability bound established for the object; for
	// the Basic strategy it is a point bound.
	Bounds verify.Bounds
	// Status is the final classification.
	Status verify.Status
}

// Stats records per-phase costs of one query, the quantities behind the
// paper's Figures 9–14.
type Stats struct {
	// FilterTime is the time spent computing the candidate set.
	FilterTime time.Duration
	// InitTime covers distance pdf/cdf derivation and subregion-table
	// construction (the paper counts this within verification).
	InitTime time.Duration
	// VerifyTime is the verifier-chain time.
	VerifyTime time.Duration
	// RefineTime covers all probability integration.
	RefineTime time.Duration
	// Candidates is |C|, the candidate-set size.
	Candidates int
	// Subregions is M.
	Subregions int
	// FMin is the filtering bound — the critical distance of the query. For
	// CPNN/PNN it is the minimum far-point distance over all objects; for
	// CKNN the k-th smallest far-point distance. Every object whose region
	// stays entirely beyond FMin from the query point provably cannot change
	// the answer, which is what the continuous-monitoring layer's
	// influence-region pruning is built on (see internal/monitor).
	FMin float64
	// VerifiersApplied names the verifiers that ran, in order.
	VerifiersApplied []string
	// UnknownAfter[k] is the number of unknown objects after
	// VerifiersApplied[k] (paper Fig. 12).
	UnknownAfter []int
	// RefinedObjects counts objects that needed refinement.
	RefinedObjects int
	// Integrations counts subregion integrations performed.
	Integrations int
}

// Total returns the end-to-end query time.
func (s Stats) Total() time.Duration {
	return s.FilterTime + s.InitTime + s.VerifyTime + s.RefineTime
}

// PhaseDurations maps the four recorded timers onto the serving stack's
// three observable phases: filter (candidate-set computation), derive
// (pdf/cdf derivation and subregion setup), and verify (verifier chain plus
// all refinement integration). This is the contract behind the
// cpnn_query_phase_seconds{phase=...} histograms.
func (s Stats) PhaseDurations() (filter, derive, verify time.Duration) {
	return s.FilterTime, s.InitTime, s.VerifyTime + s.RefineTime
}

// Result is a C-PNN answer set with per-candidate detail and statistics.
type Result struct {
	// Answers holds the objects that satisfy the C-PNN, sorted by ID.
	Answers []Answer
	// Candidates holds the classification of every candidate-set object
	// (including failures), sorted by ID.
	Candidates []Answer
	// Stats records the per-phase costs.
	Stats Stats
}

// AnswerIDs returns the IDs of the satisfying objects.
func (r *Result) AnswerIDs() []int {
	ids := make([]int, len(r.Answers))
	for i, a := range r.Answers {
		ids[i] = a.ID
	}
	return ids
}

// CPNN evaluates a constrained probabilistic nearest-neighbor query at point
// q under the given constraint and options.
func (e *Engine) CPNN(q float64, c verify.Constraint, opt Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := checkQuery(q); err != nil {
		return nil, err
	}
	return e.cpnn(q, c, opt.withDefaults(), nil)
}

// cpnn is the CPNN body, shared by the single-query entry point (sc == nil)
// and the batch path (sc supplies recycled scratch; see queryScratch for the
// derivation-mode rules). Inputs are already validated and opt already
// defaulted.
func (e *Engine) cpnn(q float64, c verify.Constraint, opt Options, sc *queryScratch) (*Result, error) {
	res := &Result{}
	start := time.Now()
	fr := e.ix.Candidates(q)
	res.Stats.FilterTime = time.Since(start)
	res.Stats.Candidates = len(fr.IDs)
	res.Stats.FMin = fr.FMin
	if len(fr.IDs) == 0 {
		return res, nil
	}

	start = time.Now()
	sc.resetArena()
	cands, err := e.distanceCandidates(sc, fr.IDs, q, opt.Bins)
	if err != nil {
		return nil, err
	}
	sc.keepCandBuf(cands)

	if opt.Strategy == Basic {
		res.Stats.InitTime = time.Since(start)
		return cpnnBasic(cands, c, opt, res)
	}

	table, err := sc.buildTable(cands)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res.Stats.InitTime = time.Since(start)
	res.Stats.Subregions = table.NumSubregions()
	return finishVerifyRefine(table, c, opt, res)
}

// checkQuery rejects non-finite query points before any engine work: a NaN
// poisons every distance comparison silently, so it must never reach the
// filter.
func checkQuery(q float64) error {
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return fmt.Errorf("core: non-finite query point %g", q)
	}
	return nil
}

// finishVerifyRefine runs the verification and refinement phases over a
// built subregion table, shared by the 1-D and 2-D engines.
func finishVerifyRefine(table *subregion.Table, c verify.Constraint, opt Options, res *Result) (*Result, error) {
	n := table.NumCandidates()
	bounds := make([]verify.Bounds, n)
	status := make([]verify.Status, n)
	for i := range bounds {
		bounds[i] = verify.Bounds{L: 0, U: 1}
	}

	var prior refine.Prior = refine.TrivialPrior{}
	if opt.Strategy == VR {
		start := time.Now()
		vres, err := verify.Run(table, c, opt.Verifiers)
		if err != nil {
			return nil, err
		}
		res.Stats.VerifyTime = time.Since(start)
		res.Stats.VerifiersApplied = vres.Applied
		res.Stats.UnknownAfter = vres.UnknownAfter
		bounds, status = vres.Bounds, vres.Status
		prior = refine.VerifierPrior{}
	}

	start := time.Now()
	for i := 0; i < n; i++ {
		if status[i] != verify.Unknown {
			continue
		}
		r, err := refine.Incremental(table, i, c, bounds[i], prior, opt.GLNodes)
		if err != nil {
			return nil, err
		}
		bounds[i], status[i] = r.Bounds, r.Status
		res.Stats.RefinedObjects++
		res.Stats.Integrations += r.Integrations
	}
	res.Stats.RefineTime = time.Since(start)

	collect(res, table.IDs(), bounds, status)
	return res, nil
}

// exactAll integrates every candidate of a table exactly.
func exactAll(table *subregion.Table, glNodes int) ([]Probability, error) {
	out := make([]Probability, table.NumCandidates())
	for i := range out {
		p, err := refine.Exact(table, i, glNodes)
		if err != nil {
			return nil, err
		}
		out[i] = Probability{ID: table.IDs()[i], P: p}
	}
	return out, nil
}

// cpnnBasic finishes a query under the Basic strategy: exact integration for
// every candidate, then thresholding. It is shared by the 1-D and 2-D
// engines.
func cpnnBasic(cands []subregion.Candidate, c verify.Constraint, opt Options, res *Result) (*Result, error) {
	start := time.Now()
	probs, err := refine.BasicAll(cands, opt.BasicSteps)
	if err != nil {
		return nil, err
	}
	res.Stats.RefineTime = time.Since(start)
	res.Stats.RefinedObjects = len(cands)

	ids := make([]int, len(cands))
	bounds := make([]verify.Bounds, len(cands))
	status := make([]verify.Status, len(cands))
	for i, cand := range cands {
		ids[i] = cand.ID
		bounds[i] = verify.Bounds{L: probs[i], U: probs[i]}
		status[i] = verify.Classify(bounds[i], c)
	}
	collect(res, ids, bounds, status)
	return res, nil
}

// collect fills a Result's answer slices, sorted by object ID. Candidates
// are sorted once; Answers inherit the order by filtering afterwards.
func collect(res *Result, ids []int, bounds []verify.Bounds, status []verify.Status) {
	res.Candidates = make([]Answer, len(ids))
	for i, id := range ids {
		res.Candidates[i] = Answer{ID: id, Bounds: bounds[i], Status: status[i]}
	}
	slices.SortFunc(res.Candidates, func(a, b Answer) int { return a.ID - b.ID })
	for _, a := range res.Candidates {
		if a.Status == verify.Satisfy {
			res.Answers = append(res.Answers, a)
		}
	}
}

// distanceCandidates derives the distance pdf of every candidate through the
// shared derivation stage (memoized discretization, parallel folds). sc,
// when non-nil, supplies the recycled candidate buffer and fold arena; see
// queryScratch for when derivation stays in-line versus fanning out.
func (e *Engine) distanceCandidates(sc *queryScratch, ids []int, q float64, bins int) ([]subregion.Candidate, error) {
	a := sc.foldArena()
	return e.dv.deriveSet(sc.candBuf(), ids, sc.serialDerive(), func(pos int) (*pdf.Histogram, error) {
		return e.dv.distFor(e.ds.Object(ids[pos]), q, bins, a)
	})
}

// Probability is an object ID paired with its exact qualification
// probability.
type Probability struct {
	ID int
	P  float64
}

// PNN computes the exact qualification probability of every candidate —
// the unconstrained query of the paper's Fig. 2 — sorted by descending
// probability.
func (e *Engine) PNN(q float64, opt Options) ([]Probability, Stats, error) {
	opt = opt.withDefaults()
	var st Stats
	if err := checkQuery(q); err != nil {
		return nil, st, err
	}
	start := time.Now()
	fr := e.ix.Candidates(q)
	st.FilterTime = time.Since(start)
	st.Candidates = len(fr.IDs)
	st.FMin = fr.FMin
	if len(fr.IDs) == 0 {
		return nil, st, nil
	}
	start = time.Now()
	cands, err := e.distanceCandidates(nil, fr.IDs, q, opt.Bins)
	if err != nil {
		return nil, st, err
	}
	table, err := subregion.Build(cands)
	if err != nil {
		return nil, st, fmt.Errorf("core: %w", err)
	}
	st.InitTime = time.Since(start)
	st.Subregions = table.NumSubregions()

	start = time.Now()
	out, err := exactAll(table, opt.GLNodes)
	if err != nil {
		return nil, st, err
	}
	st.RefineTime = time.Since(start)
	st.RefinedObjects = len(out)
	sortProbs(out)
	return out, st, nil
}

// sortProbs orders a PNN result by descending probability, ties by ID —
// shared by PNN and PNNIncremental so both produce identical orderings.
func sortProbs(out []Probability) {
	sort.Slice(out, func(a, b int) bool {
		if out[a].P != out[b].P {
			return out[a].P > out[b].P
		}
		return out[a].ID < out[b].ID
	})
}

// Min answers a constrained probabilistic minimum query: which objects have
// probability >= P of holding the minimum value. Per the paper's
// introduction, a minimum query is the PNN with q at −∞; any query point at
// or below every uncertainty region is equivalent, so the engine uses the
// domain's lower edge.
func (e *Engine) Min(c verify.Constraint, opt Options) (*Result, error) {
	if e.ds.Len() == 0 {
		return &Result{}, nil
	}
	return e.CPNN(e.ds.Domain().Lo, c, opt)
}

// Max answers the symmetric constrained probabilistic maximum query (q at
// +∞, realized as the domain's upper edge).
func (e *Engine) Max(c verify.Constraint, opt Options) (*Result, error) {
	if e.ds.Len() == 0 {
		return &Result{}, nil
	}
	return e.CPNN(e.ds.Domain().Hi, c, opt)
}

// KNNOptions tunes the sampling-based constrained k-NN evaluation.
type KNNOptions struct {
	// K is the neighbor count; it must be at least 1.
	K int
	// Samples is the Monte-Carlo sample count; 0 means 10000.
	Samples int
	// Seed makes the evaluation deterministic.
	Seed int64
	// Bins is the discretization resolution for analytic pdfs; 0 means
	// dist.DefaultBins.
	Bins int
	// IDs, when set, maps dense dataset IDs to stable external IDs and makes
	// the evaluation a pure function of the *stable-ID object set*: each
	// candidate samples from its own RNG stream seeded by (Seed, IDs[id]),
	// and rank ties break by stable ID. Without it, all candidates share one
	// stream in dense-ID order, so answers depend on dataset slot layout.
	// The monitoring layer needs the stable form: after an unrelated delete,
	// dense IDs reshuffle but a pruned standing query's answer must be
	// byte-identical on recomputation. Must have length Dataset().Len().
	IDs []uint64
}

// KNNAnswer is one object of a constrained k-NN result.
type KNNAnswer struct {
	// ID is the object's dataset ID.
	ID int
	// Bounds is the estimated probability of being among the k nearest
	// neighbors, widened to a ±4σ confidence bound.
	Bounds verify.Bounds
	// Status is the classification against the constraint.
	Status verify.Status
}

// CKNN evaluates a constrained probabilistic k-nearest-neighbor query — the
// paper's stated future work — by filtering against the k-th smallest far
// point (the natural generalization of the RS pruning rule) and estimating
// membership probabilities by Monte-Carlo over the surviving candidates.
// Bounds carry a ±4σ normal-approximation confidence width, and objects are
// classified with the same Definition 1 rules as the C-PNN. The returned
// Stats expose the candidate count and the critical distance f_k (Stats.FMin).
func (e *Engine) CKNN(q float64, c verify.Constraint, opt KNNOptions) ([]KNNAnswer, Stats, error) {
	var st Stats
	if err := c.Validate(); err != nil {
		return nil, st, err
	}
	if err := checkQuery(q); err != nil {
		return nil, st, err
	}
	if opt.K < 1 {
		return nil, st, fmt.Errorf("core: k = %d < 1", opt.K)
	}
	if opt.Samples == 0 {
		opt.Samples = 10000
	}
	if opt.Bins == 0 {
		opt.Bins = dist.DefaultBins
	}
	n := e.ds.Len()
	if opt.IDs != nil && len(opt.IDs) != n {
		return nil, st, fmt.Errorf("core: IDs maps %d objects, dataset holds %d", len(opt.IDs), n)
	}
	if n == 0 {
		return nil, st, nil
	}
	k := opt.K
	if k > n {
		k = n
	}
	start := time.Now()
	fk, ids := e.cknnFilter(q, k)
	st.FilterTime = time.Since(start)
	st.FMin = fk
	st.Candidates = len(ids)
	cands, err := e.distanceCandidates(nil, ids, q, opt.Bins)
	if err != nil {
		return nil, st, err
	}
	return cknnClassify(cands, fk, k, c, opt), st, nil
}

// cknnFilter computes the k-NN critical distance f_k — the k-th smallest far
// point; objects whose near point exceeds it cannot be among the k nearest,
// because k objects are certainly closer — and the surviving candidate IDs in
// dense order. Shared by CKNN and KNNIncremental.
func (e *Engine) cknnFilter(q float64, k int) (float64, []int) {
	fars := e.FarBounds(q, k)
	fk := fars[len(fars)-1]
	var ids []int
	for i, n := 0, e.ds.Len(); i < n; i++ {
		if e.ds.Region(i).MinDist(q) <= fk {
			ids = append(ids, i)
		}
	}
	return fk, ids
}

// FarBounds returns the k smallest far-point distances from q, ascending
// (fewer when the dataset holds fewer than k objects; nil when it is empty).
// The last value is the k-NN critical distance f_k; k = 1 yields the C-PNN
// filtering bound f_min. Scatter-gather merges per-shard FarBounds lists to
// recover the global bound exactly: each of the k global witnesses is one of
// some shard's k smallest, so the k smallest of the merged lists equal the k
// smallest of the whole dataset.
func (e *Engine) FarBounds(q float64, k int) []float64 {
	n := e.ds.Len()
	if n == 0 || k < 1 {
		return nil
	}
	fars := make([]float64, n)
	for i := range fars {
		fars[i] = e.ds.Region(i).MaxDist(q)
	}
	sort.Float64s(fars)
	if k < n {
		fars = fars[:k:k]
	}
	return fars
}

// cknnClassify is the verification half of a constrained k-NN evaluation,
// shared by CKNN and KNNIncremental: analytic pre-verification against f_k,
// Monte-Carlo rank sampling for the survivors, and Definition 1
// classification. It is a deterministic function of the candidate set, f_k
// and the options (with opt.IDs set, sampling streams are keyed by stable ID,
// so the result is also independent of candidate order).
func cknnClassify(cands []subregion.Candidate, fk float64, k int, c verify.Constraint, opt KNNOptions) []KNNAnswer {
	// Analytic pre-verification (the RS rule generalized to k-NN): an
	// object is in the k-NN set only if its distance is at most f_k, so
	// Pr(X_i ∈ kNN) <= D_i(f_k). Candidates whose analytic upper bound
	// already fails the threshold skip the sampling phase entirely.
	preFailed := make([]bool, len(cands))
	preUpper := make([]float64, len(cands))
	active := 0
	for i, cand := range cands {
		preUpper[i] = cand.Dist.CDF(fk)
		if preUpper[i] < c.P {
			preFailed[i] = true
		} else {
			active++
		}
	}
	if active == 0 {
		out := make([]KNNAnswer, len(cands))
		for i, cand := range cands {
			b := verify.Bounds{L: 0, U: preUpper[i]}
			out[i] = KNNAnswer{ID: cand.ID, Bounds: b, Status: verify.Fail}
		}
		sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
		return out
	}

	// With IDs, each candidate draws from its own stable-ID-seeded stream and
	// rank ties break by stable ID, so the tallies are invariant under dense
	// slot relabeling; otherwise one shared stream in slot order (the original
	// single-shot behavior, kept for compatibility with recorded baselines).
	var rng *rand.Rand
	var rngs []*rand.Rand
	if opt.IDs == nil {
		rng = rand.New(rand.NewSource(opt.Seed))
	} else {
		rngs = make([]*rand.Rand, len(cands))
		for i, cand := range cands {
			rngs[i] = rand.New(rand.NewSource(mixSeed(opt.Seed, opt.IDs[cand.ID])))
		}
	}
	counts := make([]int, len(cands))
	dists := make([]float64, len(cands))
	idx := make([]int, len(cands))
	less := func(a, b int) bool { return dists[idx[a]] < dists[idx[b]] }
	if opt.IDs != nil {
		less = func(a, b int) bool {
			da, db := dists[idx[a]], dists[idx[b]]
			if da != db {
				return da < db
			}
			return opt.IDs[cands[idx[a]].ID] < opt.IDs[cands[idx[b]].ID]
		}
	}
	for s := 0; s < opt.Samples; s++ {
		for i, cand := range cands {
			if rngs != nil {
				dists[i] = cand.Dist.Sample(rngs[i])
			} else {
				dists[i] = cand.Dist.Sample(rng)
			}
			idx[i] = i
		}
		sort.Slice(idx, less)
		top := k
		if top > len(idx) {
			top = len(idx)
		}
		for _, i := range idx[:top] {
			counts[i]++
		}
	}

	out := make([]KNNAnswer, len(cands))
	for i, cand := range cands {
		if preFailed[i] {
			out[i] = KNNAnswer{
				ID:     cand.ID,
				Bounds: verify.Bounds{L: 0, U: preUpper[i]},
				Status: verify.Fail,
			}
			continue
		}
		p := float64(counts[i]) / float64(opt.Samples)
		sigma := 4 * sampleSigma(p, opt.Samples)
		b := verify.Bounds{L: clamp01(p - sigma), U: clamp01(p + sigma)}
		// The analytic bound may beat the sampling bound; intersect.
		if preUpper[i] < b.U {
			b.U = preUpper[i]
			if b.L > b.U {
				b.L = b.U
			}
		}
		out[i] = KNNAnswer{ID: cand.ID, Bounds: b, Status: verify.Classify(b, c)}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// mixSeed derives a per-object RNG seed from the query seed and a stable ID
// (splitmix64 finalizer), decorrelating the per-candidate sample streams.
func mixSeed(seed int64, id uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

func sampleSigma(p float64, n int) float64 {
	v := p * (1 - p) / float64(n)
	if v <= 0 {
		// Zero or full tallies still carry sampling error ~1/n.
		return 1 / float64(n)
	}
	return math.Sqrt(v)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
