package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/pdf"
	"repro/internal/subregion"
	"repro/internal/verify"
)

// BatchOptions tunes batch C-PNN evaluation. The embedded Options apply to
// every query of the batch.
type BatchOptions struct {
	Options
	// Workers caps concurrent query evaluations; 0 means GOMAXPROCS.
	Workers int
}

// BatchOptions2D is BatchOptions for the planar engine.
type BatchOptions2D struct {
	Options2D
	// Workers caps concurrent query evaluations; 0 means GOMAXPROCS.
	Workers int
}

// BatchStats aggregates the costs of one batch evaluation.
type BatchStats struct {
	// Queries is the batch size.
	Queries int
	// Workers is the worker-pool size actually used.
	Workers int
	// Wall is the end-to-end batch time; with more than one worker it is
	// smaller than the per-query times summed in Aggregate.
	Wall time.Duration
	// Aggregate sums the scalar per-query statistics (phase times, candidate
	// and subregion counts, refinement work). The per-query slice fields
	// (VerifiersApplied, UnknownAfter) and FMin are not aggregated; read them
	// from the individual Results.
	Aggregate Stats
}

// BatchResult is the outcome of a batch evaluation: one Result per query
// point, index-aligned with the input slice, plus batch-level statistics.
type BatchResult struct {
	Results []*Result
	Stats   BatchStats
}

// queryScratch is the per-worker evaluation scratch of the batch path: the
// candidate buffer and subregion table are recycled across queries (and,
// through scratchPool, across batches), eliminating the per-query matrix
// allocation that dominates a single CPNN call's allocation profile. A nil
// *queryScratch is valid and means "allocate fresh", which is what the
// single-query entry points use.
type queryScratch struct {
	cands []subregion.Candidate
	ids   []int
	table subregion.Table
	arena pdf.Alloc
	// parallelDerive re-enables per-candidate derivation fan-out for this
	// query: set when the batch itself is too small to saturate the cores.
	parallelDerive bool
}

// serialDerive reports whether per-candidate derivation should stay in-line:
// true exactly when a batch scratch is in play and the batch already
// saturates the worker pool at query granularity.
func (sc *queryScratch) serialDerive() bool { return sc != nil && !sc.parallelDerive }

// scratchPool recycles query scratch across batch workers and batch calls.
var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// foldArena returns the scratch's fold arena when derivation runs in-line.
// The arena is not safe for concurrent use, so a query whose derivation
// fans out (parallelDerive) falls back to heap folds, exactly like the
// single-query path.
func (sc *queryScratch) foldArena() *pdf.Alloc {
	if sc.serialDerive() {
		return &sc.arena
	}
	return nil
}

// resetArena invalidates the previous query's fold histograms, making their
// storage reusable. Results never retain arena memory (collect copies), so
// resetting at the start of each query is safe.
func (sc *queryScratch) resetArena() {
	if sc != nil {
		sc.arena.Reset()
	}
}

// candBuf returns the reusable candidate buffer, nil on a nil scratch.
func (sc *queryScratch) candBuf() []subregion.Candidate {
	if sc == nil {
		return nil
	}
	return sc.cands
}

// keepCandBuf retains a (possibly re-grown) candidate buffer for the next
// query evaluated on this scratch.
func (sc *queryScratch) keepCandBuf(cands []subregion.Candidate) {
	if sc != nil && cap(cands) > cap(sc.cands) {
		sc.cands = cands[:0]
	}
}

// idBuf returns a reusable int buffer of length n, nil-scratch safe.
func (sc *queryScratch) idBuf(n int) []int {
	if sc == nil {
		return make([]int, n)
	}
	if cap(sc.ids) < n {
		sc.ids = make([]int, n)
	}
	sc.ids = sc.ids[:n]
	return sc.ids
}

// buildTable builds the subregion table for a candidate set, in place over
// the scratch's table when one is supplied.
func (sc *queryScratch) buildTable(cands []subregion.Candidate) (*subregion.Table, error) {
	if sc == nil {
		return subregion.Build(cands)
	}
	if err := sc.table.Rebuild(cands); err != nil {
		return nil, err
	}
	return &sc.table, nil
}

// Scratch is a caller-owned reusable evaluation scratch for long-lived loops
// that evaluate single queries one at a time — the monitor's re-evaluation
// workers hold one per worker. It recycles the candidate buffer, subregion
// table and fold arena exactly like a batch worker's pooled scratch, cutting
// the per-query allocation profile to the batch path's. A Scratch is not safe
// for concurrent use; the zero value (and NewScratch) is ready.
type Scratch struct{ qs queryScratch }

// NewScratch returns an empty reusable evaluation scratch.
func NewScratch() *Scratch { return &Scratch{} }

// CPNNScratch is CPNN evaluated on a caller-owned scratch. Results never
// alias scratch memory, so they stay valid across subsequent calls. A nil
// scratch falls back to plain CPNN.
func (e *Engine) CPNNScratch(q float64, c verify.Constraint, opt Options, sc *Scratch) (*Result, error) {
	if sc == nil {
		return e.CPNN(q, c, opt)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := checkQuery(q); err != nil {
		return nil, err
	}
	return e.cpnn(q, c, opt.withDefaults(), &sc.qs)
}

// CPNNBatch evaluates one C-PNN per query point over a bounded worker pool,
// sharing the engine's filter index and discretization memo and recycling
// per-query scratch (subregion tables, candidate buffers) via a sync.Pool.
// Results are index-aligned with qs; answers are identical to evaluating
// each point with CPNN. The first failing query aborts the batch.
func (e *Engine) CPNNBatch(qs []float64, c verify.Constraint, opt BatchOptions) (*BatchResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	for i, q := range qs {
		if err := checkQuery(q); err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	o := opt.Options.withDefaults()
	return runBatch(len(qs), opt.Workers, func(i int, sc *queryScratch) (*Result, error) {
		return e.cpnn(qs[i], c, o, sc)
	})
}

// CPNNBatch is the planar batch evaluator; see Engine.CPNNBatch.
func (e *Engine2D) CPNNBatch(qs []geom.Point, c verify.Constraint, opt BatchOptions2D) (*BatchResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	for i, q := range qs {
		if err := checkQuery2D(q); err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	o := opt.Options2D.withDefaults()
	return runBatch(len(qs), opt.Workers, func(i int, sc *queryScratch) (*Result, error) {
		return e.cpnn(qs[i], c, o, sc)
	})
}

// runBatch distributes n query evaluations over a worker pool. Each query
// borrows a scratch from the pool (the pool's per-P caching makes this a
// worker-local reuse in practice); the first error cancels the remaining
// work.
func runBatch(n, workers int, eval func(i int, sc *queryScratch) (*Result, error)) (*BatchResult, error) {
	br := &BatchResult{Results: make([]*Result, n)}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	br.Stats.Queries = n
	br.Stats.Workers = workers
	if n == 0 {
		return br, nil
	}

	// A batch below the core count cannot saturate the machine at query
	// granularity; let each of its queries keep the single-query path's
	// per-candidate derivation fan-out instead.
	nested := workers < runtime.GOMAXPROCS(0)
	start := time.Now()
	err := parallelFor(n, workers, func(i int) error {
		sc := scratchPool.Get().(*queryScratch)
		sc.parallelDerive = nested
		defer scratchPool.Put(sc)
		res, err := eval(i, sc)
		if err != nil {
			return fmt.Errorf("core: batch query %d: %w", i, err)
		}
		br.Results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	br.Stats.Wall = time.Since(start)

	for _, r := range br.Results {
		br.Stats.Aggregate.addScalars(r.Stats)
	}
	return br, nil
}

// addScalars accumulates another query's scalar statistics.
func (s *Stats) addScalars(o Stats) {
	s.FilterTime += o.FilterTime
	s.InitTime += o.InitTime
	s.VerifyTime += o.VerifyTime
	s.RefineTime += o.RefineTime
	s.Candidates += o.Candidates
	s.Subregions += o.Subregions
	s.RefinedObjects += o.RefinedObjects
	s.Integrations += o.Integrations
}
