package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/pdf"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// mixedDataset builds a dataset with all three pdf families so concurrent
// queries exercise every derivation path, in particular the memoized
// discretization of analytic Gaussians in deriver.discretize.
func mixedDataset(t testing.TB, n int) *uncertain.Dataset {
	t.Helper()
	pdfs := make([]pdf.PDF, n)
	for i := range pdfs {
		lo := float64(i % 97)
		hi := lo + 2 + float64(i%5)
		switch i % 3 {
		case 0:
			pdfs[i] = pdf.MustUniform(lo, hi)
		case 1:
			g, err := pdf.PaperGaussian(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			pdfs[i] = g
		default:
			mid := lo + (hi-lo)/2
			pdfs[i] = pdf.MustHistogram([]float64{lo, mid, hi}, []float64{1, 2})
		}
	}
	return uncertain.NewDataset(pdfs)
}

// TestEngineConcurrentQueries fires parallel CPNN / PNN / CKNN / Min / Max
// traffic at one shared engine and checks every concurrent result against a
// serial baseline. Run under -race it is the engine's thread-safety contract:
// the only mutable engine state (the discretization memo, the quadrature
// cache) must be properly synchronized, and results must not depend on
// interleaving.
func TestEngineConcurrentQueries(t *testing.T) {
	ds := mixedDataset(t, 240)
	eng, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	c := verify.Constraint{P: 0.2, Delta: 0.01}
	queries := []float64{3.5, 20, 47.25, 80, 96}

	// Serial baselines, computed before any concurrency, on a fresh engine so
	// the shared engine's memo starts cold under contention.
	base, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	wantCPNN := make(map[float64]string)
	wantPNN := make(map[float64]string)
	wantKNN := make(map[float64]string)
	for _, q := range queries {
		res, err := base.CPNN(q, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantCPNN[q] = fmt.Sprint(res.Candidates)
		probs, _, err := base.PNN(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantPNN[q] = fmt.Sprint(probs)
		kres, _, err := base.CKNN(q, c, KNNOptions{K: 3, Samples: 400, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		wantKNN[q] = fmt.Sprint(kres)
	}
	minRes, err := base.Min(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantMin := fmt.Sprint(minRes.Candidates)
	maxRes, err := base.Max(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantMax := fmt.Sprint(maxRes.Candidates)

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := queries[(w+i)%len(queries)]
				switch (w + i) % 5 {
				case 0:
					res, err := eng.CPNN(q, c, Options{Strategy: Strategy((w + i) % 3)})
					if err != nil {
						t.Errorf("CPNN(%g): %v", q, err)
						return
					}
					// Strategies disagree on bounds but VR must match the
					// serial VR baseline exactly.
					if Strategy((w+i)%3) == VR && fmt.Sprint(res.Candidates) != wantCPNN[q] {
						t.Errorf("concurrent CPNN(%g) diverged from serial result", q)
						return
					}
				case 1:
					probs, _, err := eng.PNN(q, Options{})
					if err != nil {
						t.Errorf("PNN(%g): %v", q, err)
						return
					}
					if fmt.Sprint(probs) != wantPNN[q] {
						t.Errorf("concurrent PNN(%g) diverged from serial result", q)
						return
					}
				case 2:
					kres, _, err := eng.CKNN(q, c, KNNOptions{K: 3, Samples: 400, Seed: 11})
					if err != nil {
						t.Errorf("CKNN(%g): %v", q, err)
						return
					}
					if fmt.Sprint(kres) != wantKNN[q] {
						t.Errorf("concurrent CKNN(%g) diverged from serial result", q)
						return
					}
				case 3:
					res, err := eng.Min(c, Options{})
					if err != nil {
						t.Errorf("Min: %v", err)
						return
					}
					if fmt.Sprint(res.Candidates) != wantMin {
						t.Error("concurrent Min diverged from serial result")
						return
					}
				default:
					res, err := eng.Max(c, Options{})
					if err != nil {
						t.Errorf("Max: %v", err)
						return
					}
					if fmt.Sprint(res.Candidates) != wantMax {
						t.Error("concurrent Max diverged from serial result")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestEngine2DConcurrentQueries is the planar counterpart: parallel CPNN and
// PNN over one shared 2-D engine, checked against serial baselines.
func TestEngine2DConcurrentQueries(t *testing.T) {
	objs := make([]Object2D, 120)
	for i := range objs {
		objs[i] = Object2D{
			ID: i,
			Region: geom.Circle{
				Center: geom.Point{X: float64(i % 11), Y: float64(i % 7)},
				Radius: 0.4 + float64(i%4)*0.3,
			},
		}
	}
	eng, err := NewEngine2D(objs)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewEngine2D(objs)
	if err != nil {
		t.Fatal(err)
	}
	c := verify.Constraint{P: 0.15, Delta: 0.02}
	queries := []geom.Point{{X: 2, Y: 3}, {X: 8.5, Y: 1.5}, {X: 5, Y: 5}}
	wantCPNN := make([]string, len(queries))
	wantPNN := make([]string, len(queries))
	for i, q := range queries {
		res, err := base.CPNN(q, c, Options2D{})
		if err != nil {
			t.Fatal(err)
		}
		wantCPNN[i] = fmt.Sprint(res.Candidates)
		probs, err := base.PNN(q, Options2D{})
		if err != nil {
			t.Fatal(err)
		}
		wantPNN[i] = fmt.Sprint(probs)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				qi := (w + i) % len(queries)
				if (w+i)%2 == 0 {
					res, err := eng.CPNN(queries[qi], c, Options2D{})
					if err != nil {
						t.Errorf("CPNN2D: %v", err)
						return
					}
					if fmt.Sprint(res.Candidates) != wantCPNN[qi] {
						t.Error("concurrent 2-D CPNN diverged from serial result")
						return
					}
				} else {
					probs, err := eng.PNN(queries[qi], Options2D{})
					if err != nil {
						t.Errorf("PNN2D: %v", err)
						return
					}
					if fmt.Sprint(probs) != wantPNN[qi] {
						t.Error("concurrent 2-D PNN diverged from serial result")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
