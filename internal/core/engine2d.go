package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/subregion"
	"repro/internal/verify"
)

// Object2D is an uncertain object in the plane: a disk-shaped uncertainty
// region with a uniform pdf, the 2-D model of Cheng et al. (TKDE'04) that
// the paper's §IV-A extension note reduces to distance pdfs.
type Object2D struct {
	// ID identifies the object.
	ID int
	// Region is the uncertainty disk.
	Region geom.Circle
}

// Engine2D answers C-PNN queries over planar uncertain objects. The
// pipeline is identical to the 1-D engine's — filter, verify, refine — with
// the distance pdfs derived from lens areas instead of interval folds.
type Engine2D struct {
	objs []Object2D
	tree *rtree.Tree[int]
}

// NewEngine2D indexes the objects' bounding boxes and returns a 2-D engine.
// Object IDs must be unique; radii must be positive.
func NewEngine2D(objs []Object2D) (*Engine2D, error) {
	inputs := make([]rtree.Input[int], len(objs))
	seen := make(map[int]bool, len(objs))
	for i, o := range objs {
		if !(o.Region.Radius > 0) {
			return nil, fmt.Errorf("core: object %d has non-positive radius %g", o.ID, o.Region.Radius)
		}
		if seen[o.ID] {
			return nil, fmt.Errorf("core: duplicate object ID %d", o.ID)
		}
		seen[o.ID] = true
		inputs[i] = rtree.Input[int]{Rect: geom.RectFromCircle(o.Region), Item: i}
	}
	tree, err := rtree.BulkLoad(inputs, rtree.DefaultMinEntries, rtree.DefaultMaxEntries)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Engine2D{objs: append([]Object2D(nil), objs...), tree: tree}, nil
}

// Len returns the number of indexed objects.
func (e *Engine2D) Len() int { return len(e.objs) }

// Options2D tunes 2-D query evaluation.
type Options2D struct {
	// Strategy is the evaluation method; the zero value is VR.
	Strategy Strategy
	// Bins is the distance-pdf discretization resolution; 0 means
	// dist.DefaultBins.
	Bins int
	// GLNodes and BasicSteps mirror Options.
	GLNodes    int
	BasicSteps int
}

// CPNN evaluates a planar constrained probabilistic nearest-neighbor query.
func (e *Engine2D) CPNN(q geom.Point, c verify.Constraint, opt Options2D) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.Bins == 0 {
		opt.Bins = dist.DefaultBins
	}
	res := &Result{}
	if len(e.objs) == 0 {
		return res, nil
	}

	// Filter. The R-tree bound uses bounding boxes (a valid upper bound on
	// the minimal circle far point); candidate circles then tighten f_min
	// exactly before the near-point prune.
	start := time.Now()
	fBox := e.tree.MinMaxDist(q)
	window := geom.Rect{MinX: q.X - fBox, MinY: q.Y - fBox, MaxX: q.X + fBox, MaxY: q.Y + fBox}
	var rough []int
	e.tree.Search(window, func(_ geom.Rect, idx int) bool {
		rough = append(rough, idx)
		return true
	})
	fMin := math.Inf(1)
	for _, idx := range rough {
		if f := e.objs[idx].Region.MaxDist(q); f < fMin {
			fMin = f
		}
	}
	var candIdx []int
	for _, idx := range rough {
		if e.objs[idx].Region.MinDist(q) <= fMin {
			candIdx = append(candIdx, idx)
		}
	}
	res.Stats.FilterTime = time.Since(start)
	res.Stats.Candidates = len(candIdx)
	res.Stats.FMin = fMin
	if len(candIdx) == 0 {
		return res, nil
	}

	// Initialization: lens-area distance pdfs.
	start = time.Now()
	cands := make([]subregion.Candidate, len(candIdx))
	for i, idx := range candIdx {
		d, err := dist.FromCircle(e.objs[idx].Region, q, opt.Bins)
		if err != nil {
			return nil, fmt.Errorf("core: object %d: %w", e.objs[idx].ID, err)
		}
		cands[i] = subregion.Candidate{ID: e.objs[idx].ID, Dist: d}
	}

	// From here the 1-D machinery applies unchanged.
	oneD := Options{
		Strategy:   opt.Strategy,
		GLNodes:    opt.GLNodes,
		BasicSteps: opt.BasicSteps,
		Bins:       opt.Bins,
	}.withDefaults()
	if opt.Strategy == Basic {
		res.Stats.InitTime = time.Since(start)
		return cpnnBasic(cands, c, oneD, res)
	}
	table, err := subregion.Build(cands)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res.Stats.InitTime = time.Since(start)
	res.Stats.Subregions = table.NumSubregions()
	return finishVerifyRefine(table, c, oneD, res)
}

// PNN returns the exact qualification probability of every candidate for
// the planar query point, sorted by descending probability.
func (e *Engine2D) PNN(q geom.Point, opt Options2D) ([]Probability, error) {
	res, err := e.CPNN(q, verify.Constraint{P: 1, Delta: 1}, Options2D{
		Strategy: Refine, Bins: opt.Bins, GLNodes: opt.GLNodes,
	})
	if err != nil {
		return nil, err
	}
	// Delta = 1 classifies everything at verification; recompute exactly.
	// Rebuild the table once and integrate every candidate.
	if opt.Bins == 0 {
		opt.Bins = dist.DefaultBins
	}
	var cands []subregion.Candidate
	for _, a := range res.Candidates {
		var obj *Object2D
		for i := range e.objs {
			if e.objs[i].ID == a.ID {
				obj = &e.objs[i]
				break
			}
		}
		if obj == nil {
			return nil, fmt.Errorf("core: candidate %d not found", a.ID)
		}
		d, err := dist.FromCircle(obj.Region, q, opt.Bins)
		if err != nil {
			return nil, err
		}
		cands = append(cands, subregion.Candidate{ID: a.ID, Dist: d})
	}
	if len(cands) == 0 {
		return nil, nil
	}
	table, err := subregion.Build(cands)
	if err != nil {
		return nil, err
	}
	out, err := exactAll(table, opt.GLNodes)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].P != out[b].P {
			return out[a].P > out[b].P
		}
		return out[a].ID < out[b].ID
	})
	return out, nil
}
