package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/pdf"
	"repro/internal/rtree"
	"repro/internal/subregion"
	"repro/internal/verify"
)

// Object2D is an uncertain object in the plane: a disk-shaped uncertainty
// region with a uniform pdf, the 2-D model of Cheng et al. (TKDE'04) that
// the paper's §IV-A extension note reduces to distance pdfs.
type Object2D struct {
	// ID identifies the object.
	ID int
	// Region is the uncertainty disk.
	Region geom.Circle
}

// Engine2D answers C-PNN queries over planar uncertain objects. The
// pipeline is identical to the 1-D engine's — filter, verify, refine — with
// the distance pdfs derived from lens areas instead of interval folds,
// through the same shared derivation stage. Only the stage's parallel
// fan-out applies here: the lens reduction depends on the query point, so
// there is nothing query-independent to memoize (the discretization memo
// serves the 1-D engine's analytic pdfs).
type Engine2D struct {
	objs []Object2D
	tree *rtree.Tree[int]
	dv   *deriver
}

// NewEngine2D indexes the objects' bounding boxes and returns a 2-D engine.
// Object IDs must be unique; radii must be positive.
func NewEngine2D(objs []Object2D) (*Engine2D, error) {
	inputs := make([]rtree.Input[int], len(objs))
	seen := make(map[int]bool, len(objs))
	for i, o := range objs {
		if !(o.Region.Radius > 0) {
			return nil, fmt.Errorf("core: object %d has non-positive radius %g", o.ID, o.Region.Radius)
		}
		if seen[o.ID] {
			return nil, fmt.Errorf("core: duplicate object ID %d", o.ID)
		}
		seen[o.ID] = true
		inputs[i] = rtree.Input[int]{Rect: geom.RectFromCircle(o.Region), Item: i}
	}
	tree, err := rtree.BulkLoad(inputs, rtree.DefaultMinEntries, rtree.DefaultMaxEntries)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Engine2D{
		objs: append([]Object2D(nil), objs...),
		tree: tree,
		dv:   newDeriver(),
	}, nil
}

// distanceCandidates derives the lens-area distance pdf of every candidate
// (given by index into objs) through the shared derivation stage. sc, when
// non-nil, supplies recycled buffers; see queryScratch for when derivation
// stays in-line versus fanning out.
func (e *Engine2D) distanceCandidates(sc *queryScratch, candIdx []int, q geom.Point, bins int) ([]subregion.Candidate, error) {
	ids := sc.idBuf(len(candIdx))
	for i, idx := range candIdx {
		ids[i] = e.objs[idx].ID
	}
	a := sc.foldArena()
	return e.dv.deriveSet(sc.candBuf(), ids, sc.serialDerive(), func(pos int) (*pdf.Histogram, error) {
		return dist.FromCircleIn(a, e.objs[candIdx[pos]].Region, q, bins)
	})
}

// Len returns the number of indexed objects.
func (e *Engine2D) Len() int { return len(e.objs) }

// Options2D tunes 2-D query evaluation.
type Options2D struct {
	// Strategy is the evaluation method; the zero value is VR.
	Strategy Strategy
	// Bins is the distance-pdf discretization resolution; 0 means
	// dist.DefaultBins.
	Bins int
	// GLNodes and BasicSteps mirror Options.
	GLNodes    int
	BasicSteps int
}

func (o Options2D) withDefaults() Options2D {
	if o.Bins == 0 {
		o.Bins = dist.DefaultBins
	}
	return o
}

// checkQuery2D rejects non-finite planar query points, mirroring checkQuery.
func checkQuery2D(q geom.Point) error {
	if err := checkQuery(q.X); err != nil {
		return err
	}
	return checkQuery(q.Y)
}

// CPNN evaluates a planar constrained probabilistic nearest-neighbor query.
func (e *Engine2D) CPNN(q geom.Point, c verify.Constraint, opt Options2D) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := checkQuery2D(q); err != nil {
		return nil, err
	}
	return e.cpnn(q, c, opt.withDefaults(), nil)
}

// cpnn is the planar CPNN body, shared by the single-query entry point
// (sc == nil) and the batch path. Inputs are already validated and opt
// already defaulted.
func (e *Engine2D) cpnn(q geom.Point, c verify.Constraint, opt Options2D, sc *queryScratch) (*Result, error) {
	res := &Result{}
	if len(e.objs) == 0 {
		return res, nil
	}

	start := time.Now()
	candIdx, fMin := e.filterCandidates(q)
	res.Stats.FilterTime = time.Since(start)
	res.Stats.Candidates = len(candIdx)
	res.Stats.FMin = fMin
	if len(candIdx) == 0 {
		return res, nil
	}

	// Initialization: lens-area distance pdfs via the shared stage.
	start = time.Now()
	sc.resetArena()
	cands, err := e.distanceCandidates(sc, candIdx, q, opt.Bins)
	if err != nil {
		return nil, err
	}
	sc.keepCandBuf(cands)

	// From here the 1-D machinery applies unchanged.
	oneD := Options{
		Strategy:   opt.Strategy,
		GLNodes:    opt.GLNodes,
		BasicSteps: opt.BasicSteps,
		Bins:       opt.Bins,
	}.withDefaults()
	if opt.Strategy == Basic {
		res.Stats.InitTime = time.Since(start)
		return cpnnBasic(cands, c, oneD, res)
	}
	table, err := sc.buildTable(cands)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res.Stats.InitTime = time.Since(start)
	res.Stats.Subregions = table.NumSubregions()
	return finishVerifyRefine(table, c, oneD, res)
}

// filterCandidates computes the 2-D candidate set: indexes into objs of the
// objects whose near point is within f_min, plus f_min itself. The R-tree
// bound uses bounding boxes (a valid upper bound on the minimal circle far
// point); candidate circles then tighten f_min exactly before the near-point
// prune.
func (e *Engine2D) filterCandidates(q geom.Point) (candIdx []int, fMin float64) {
	fBox := e.tree.MinMaxDist(q)
	window := geom.Rect{MinX: q.X - fBox, MinY: q.Y - fBox, MaxX: q.X + fBox, MaxY: q.Y + fBox}
	var rough []int
	e.tree.Search(window, func(_ geom.Rect, idx int) bool {
		rough = append(rough, idx)
		return true
	})
	fMin = math.Inf(1)
	for _, idx := range rough {
		if f := e.objs[idx].Region.MaxDist(q); f < fMin {
			fMin = f
		}
	}
	for _, idx := range rough {
		if e.objs[idx].Region.MinDist(q) <= fMin {
			candIdx = append(candIdx, idx)
		}
	}
	return candIdx, fMin
}

// PNN returns the exact qualification probability of every candidate for
// the planar query point, sorted by descending probability. It shares the
// filter and derivation stages with CPNN and integrates every candidate
// exactly — no verification pass, whose bounds a PNN would discard anyway.
func (e *Engine2D) PNN(q geom.Point, opt Options2D) ([]Probability, error) {
	if err := checkQuery2D(q); err != nil {
		return nil, err
	}
	if opt.Bins == 0 {
		opt.Bins = dist.DefaultBins
	}
	if len(e.objs) == 0 {
		return nil, nil
	}
	candIdx, _ := e.filterCandidates(q)
	if len(candIdx) == 0 {
		return nil, nil
	}
	cands, err := e.distanceCandidates(nil, candIdx, q, opt.Bins)
	if err != nil {
		return nil, err
	}
	table, err := subregion.Build(cands)
	if err != nil {
		return nil, err
	}
	out, err := exactAll(table, opt.GLNodes)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].P != out[b].P {
			return out[a].P > out[b].P
		}
		return out[a].ID < out[b].ID
	})
	return out, nil
}
