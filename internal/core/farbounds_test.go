package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pdf"
	"repro/internal/uncertain"
)

// TestFarBounds checks the scatter-phase primitive against brute force: the
// k smallest far-point distances, ascending, clamped to the population.
func TestFarBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		pdfs := make([]pdf.PDF, n)
		for i := range pdfs {
			lo := (rng.Float64() - 0.5) * 200
			pdfs[i] = pdf.MustUniform(lo, lo+rng.Float64()*30)
		}
		ds := uncertain.NewDataset(pdfs)
		eng, err := NewEngine(ds)
		if err != nil {
			t.Fatal(err)
		}
		q := (rng.Float64() - 0.5) * 300
		want := make([]float64, 0, n)
		for _, o := range ds.Objects() {
			want = append(want, o.Region().MaxDist(q))
		}
		sort.Float64s(want)
		for _, k := range []int{0, 1, 2, 5, n, n + 3} {
			got := eng.FarBounds(q, k)
			wantK := want
			if k < 1 || n == 0 {
				wantK = nil
			} else if k < n {
				wantK = want[:k]
			}
			if len(got) != len(wantK) {
				t.Fatalf("n=%d k=%d: got %d bounds, want %d", n, k, len(got), len(wantK))
			}
			for i := range got {
				if got[i] != wantK[i] {
					t.Fatalf("n=%d k=%d: bound[%d] = %g, want %g", n, k, i, got[i], wantK[i])
				}
			}
			if !sort.Float64sAreSorted(got) {
				t.Fatalf("bounds not ascending: %v", got)
			}
			for _, b := range got {
				if math.IsNaN(b) {
					t.Fatalf("NaN bound for finite regions")
				}
			}
		}
	}
}
