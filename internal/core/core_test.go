package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pdf"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// figure2Dataset mirrors the spirit of the paper's Fig. 2: four uncertain
// objects around a query point with distinct qualification probabilities.
func figure2Dataset(t *testing.T) *uncertain.Dataset {
	t.Helper()
	return uncertain.NewDataset([]pdf.PDF{
		pdf.MustUniform(8, 18),  // A: moderately near
		pdf.MustUniform(9, 13),  // B: tight and near -> biggest probability
		pdf.MustUniform(2, 30),  // C: wide -> small probability
		pdf.MustUniform(11, 17), // D: near but offset
	})
}

func smallEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(figure2Dataset(t))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func genEngine(t *testing.T, n int, seed int64) *Engine {
	t.Helper()
	ds, err := uncertain.GenerateUniform(uncertain.GenOptions{
		N: n, Domain: 1000, MeanLen: 12, MinLen: 0.5, MaxLen: 60, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPNNSumsToOne(t *testing.T) {
	e := smallEngine(t)
	probs, st, err := e.PNN(12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates == 0 {
		t.Fatal("no candidates")
	}
	sum := 0.0
	for _, p := range probs {
		sum += p.P
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σ p = %g", sum)
	}
	// Sorted descending.
	for i := 1; i < len(probs); i++ {
		if probs[i].P > probs[i-1].P {
			t.Error("PNN output not sorted by probability")
		}
	}
	// Object B (ID 1) is the tight region straddling q: it must win.
	if probs[0].ID != 1 {
		t.Errorf("top object = %d, want 1 (B)", probs[0].ID)
	}
}

func TestPNNMatchesMonteCarlo(t *testing.T) {
	e := smallEngine(t)
	q := 12.0
	probs, _, err := e.PNN(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fr := map[int]float64{}
	for _, p := range probs {
		fr[p.ID] = p.P
	}
	// Monte-Carlo over raw object values (not distance pdfs): an end-to-end
	// check of the whole pipeline including folding.
	rng := rand.New(rand.NewSource(123))
	const samples = 200000
	counts := map[int]float64{}
	objs := e.Dataset().Objects()
	for s := 0; s < samples; s++ {
		best, bi := math.Inf(1), -1
		for _, o := range objs {
			d := math.Abs(o.PDF.Sample(rng) - q)
			if d < best {
				best, bi = d, o.ID
			}
		}
		counts[bi]++
	}
	for id, want := range counts {
		want /= samples
		if got := fr[id]; math.Abs(got-want) > 0.006 {
			t.Errorf("object %d: PNN %g vs MC %g", id, got, want)
		}
	}
}

func TestCPNNStrategiesAgree(t *testing.T) {
	e := genEngine(t, 400, 11)
	qs := uncertain.QueryWorkload(8, 1000, 77)
	c := verify.Constraint{P: 0.3, Delta: 0}
	for _, q := range qs {
		var ids [3][]int
		for s, strat := range []Strategy{VR, Refine, Basic} {
			res, err := e.CPNN(q, c, Options{Strategy: strat, BasicSteps: 4000})
			if err != nil {
				t.Fatalf("q=%g %v: %v", q, strat, err)
			}
			ids[s] = res.AnswerIDs()
		}
		if !equalInts(ids[0], ids[1]) {
			t.Errorf("q=%g: VR %v != Refine %v", q, ids[0], ids[1])
		}
		if !equalInts(ids[0], ids[2]) {
			t.Errorf("q=%g: VR %v != Basic %v", q, ids[0], ids[2])
		}
	}
}

func TestCPNNAnswersRespectThreshold(t *testing.T) {
	e := genEngine(t, 300, 5)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	res, err := e.CPNN(500, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	probs, _, err := e.PNN(500, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact := map[int]float64{}
	for _, p := range probs {
		exact[p.ID] = p.P
	}
	answers := map[int]bool{}
	for _, a := range res.Answers {
		answers[a.ID] = true
		if a.Status != verify.Satisfy {
			t.Errorf("answer %d has status %v", a.ID, a.Status)
		}
		// Every answer's exact probability is at least P − Delta
		// (Definition 1 allows at most Delta of under-threshold slack).
		if exact[a.ID] < c.P-c.Delta-1e-9 {
			t.Errorf("answer %d has exact probability %g < P−Δ", a.ID, exact[a.ID])
		}
	}
	// Conversely, every object with exact p >= P must be in the answers.
	for id, p := range exact {
		if p >= c.P+1e-9 && !answers[id] {
			t.Errorf("object %d (p=%g ≥ P) missing from answers", id, p)
		}
	}
}

func TestCPNNEmptyDataset(t *testing.T) {
	e, err := NewEngine(uncertain.NewDataset(nil))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.CPNN(5, verify.Constraint{P: 0.3, Delta: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 || res.Stats.Candidates != 0 {
		t.Error("empty dataset produced answers")
	}
	if r, err := e.Min(verify.Constraint{P: 0.3}, Options{}); err != nil || len(r.Answers) != 0 {
		t.Errorf("Min on empty dataset: %v, %v", r, err)
	}
	if out, _, err := e.CKNN(5, verify.Constraint{P: 0.3}, KNNOptions{K: 2}); err != nil || out != nil {
		t.Errorf("CKNN on empty dataset: %v, %v", out, err)
	}
}

func TestCPNNInvalidConstraint(t *testing.T) {
	e := smallEngine(t)
	if _, err := e.CPNN(5, verify.Constraint{P: 0}, Options{}); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := e.CPNN(5, verify.Constraint{P: 0.5, Delta: 2}, Options{}); err == nil {
		t.Error("Delta=2 accepted")
	}
}

func TestCPNNStatsPopulated(t *testing.T) {
	e := genEngine(t, 500, 3)
	res, err := e.CPNN(500, verify.Constraint{P: 0.3, Delta: 0.01}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Candidates == 0 || st.Subregions == 0 {
		t.Errorf("stats missing sizes: %+v", st)
	}
	if len(st.VerifiersApplied) == 0 || len(st.UnknownAfter) != len(st.VerifiersApplied) {
		t.Errorf("verifier trace missing: %+v", st)
	}
	if st.Total() <= 0 {
		t.Error("total time not positive")
	}
	if st.FMin <= 0 {
		t.Error("FMin not recorded")
	}
	// Candidate list covers the whole candidate set, sorted by ID.
	if len(res.Candidates) != st.Candidates {
		t.Errorf("candidates %d != stats %d", len(res.Candidates), st.Candidates)
	}
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].ID <= res.Candidates[i-1].ID {
			t.Error("candidates not sorted by ID")
		}
	}
}

func TestVRRefinesFewerThanRefine(t *testing.T) {
	e := genEngine(t, 1500, 9)
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	var vrInt, refInt int
	for _, q := range uncertain.QueryWorkload(10, 1000, 13) {
		rv, err := e.CPNN(q, c, Options{Strategy: VR})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := e.CPNN(q, c, Options{Strategy: Refine})
		if err != nil {
			t.Fatal(err)
		}
		vrInt += rv.Stats.Integrations
		refInt += rr.Stats.Integrations
	}
	if vrInt > refInt {
		t.Errorf("VR used %d integrations, Refine used %d; verifiers should save work",
			vrInt, refInt)
	}
	t.Logf("integrations: VR=%d Refine=%d", vrInt, refInt)
}

func TestMinMaxQueries(t *testing.T) {
	// Three regions: [0,2] certainly below [5,7] and [6,9].
	ds := uncertain.NewDataset([]pdf.PDF{
		pdf.MustUniform(0, 2),
		pdf.MustUniform(5, 7),
		pdf.MustUniform(6, 9),
	})
	e, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Min(verify.Constraint{P: 0.9, Delta: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ids := res.AnswerIDs(); len(ids) != 1 || ids[0] != 0 {
		t.Errorf("Min answers = %v, want [0]", ids)
	}
	// Max: object 2 ([6,9]) overlaps object 1 ([5,7]) but dominates it.
	res, err = e.Max(verify.Constraint{P: 0.7, Delta: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ids := res.AnswerIDs(); len(ids) != 1 || ids[0] != 2 {
		t.Errorf("Max answers = %v, want [2]", ids)
	}
}

func TestCKNNBasics(t *testing.T) {
	ds := uncertain.NewDataset([]pdf.PDF{
		pdf.MustUniform(9, 11),  // straddles q=10: certainly in any 2-NN set
		pdf.MustUniform(12, 14), // near
		pdf.MustUniform(30, 32), // far: out of 2-NN reach
		pdf.MustUniform(8, 12),  // straddles too
	})
	e, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.CKNN(10, verify.Constraint{P: 0.5, Delta: 0.05}, KNNOptions{K: 2, Samples: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]verify.Status{}
	for _, a := range out {
		got[a.ID] = a.Status
	}
	if got[0] != verify.Satisfy || got[3] != verify.Satisfy {
		t.Errorf("objects 0/3 should satisfy 2-NN: %v", got)
	}
	if st, ok := got[2]; ok && st == verify.Satisfy {
		t.Error("far object satisfied 2-NN")
	}
	// k = 1 must agree with the C-PNN winner direction.
	out1, _, err := e.CKNN(10, verify.Constraint{P: 0.5, Delta: 0.05}, KNNOptions{K: 1, Samples: 8000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out1 {
		if a.ID == 2 && a.Status == verify.Satisfy {
			t.Error("far object won 1-NN")
		}
	}
	if _, _, err := e.CKNN(10, verify.Constraint{P: 0.5}, KNNOptions{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCKNNKEqualsOneMatchesPNN(t *testing.T) {
	e := genEngine(t, 200, 21)
	q := 500.0
	probs, _, err := e.PNN(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact := map[int]float64{}
	for _, p := range probs {
		exact[p.ID] = p.P
	}
	out, _, err := e.CKNN(q, verify.Constraint{P: 0.99, Delta: 1}, KNNOptions{K: 1, Samples: 30000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out {
		p := exact[a.ID] // zero for objects the PNN filter pruned
		if p < a.Bounds.L-1e-9 || p > a.Bounds.U+1e-9 {
			t.Errorf("object %d: exact %g outside CKNN bound [%g, %g]",
				a.ID, p, a.Bounds.L, a.Bounds.U)
		}
	}
}

func TestGaussianDatasetPipeline(t *testing.T) {
	ds, err := uncertain.GenerateGaussian(uncertain.GenOptions{
		N: 150, Domain: 600, MeanLen: 15, MinLen: 2, MaxLen: 60, Seed: 8,
	}, 120)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.CPNN(300, verify.Constraint{P: 0.3, Delta: 0.01}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against Basic with fine steps.
	resB, err := e.CPNN(300, verify.Constraint{P: 0.3, Delta: 0.01}, Options{Strategy: Basic, BasicSteps: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(res.AnswerIDs(), resB.AnswerIDs()) {
		t.Errorf("Gaussian: VR %v vs Basic %v", res.AnswerIDs(), resB.AnswerIDs())
	}
}

func TestStrategyString(t *testing.T) {
	if VR.String() != "VR" || Refine.String() != "Refine" || Basic.String() != "Basic" {
		t.Error("strategy names wrong")
	}
	if Strategy(42).String() == "" {
		t.Error("unknown strategy empty")
	}
}

// TestCPNNDecisionProperty: on random datasets and constraints, VR answers
// must contain every object with exact p >= P and no object with exact
// p < P − Delta.
func TestCPNNDecisionProperty(t *testing.T) {
	f := func(seed int64, pFrac, dFrac float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		ds, err := uncertain.GenerateUniform(uncertain.GenOptions{
			N: n, Domain: 500, MeanLen: 10, MinLen: 0.5, MaxLen: 50, Seed: seed,
		})
		if err != nil {
			return false
		}
		e, err := NewEngine(ds)
		if err != nil {
			return false
		}
		P := 0.05 + 0.9*math.Abs(math.Mod(pFrac, 1))
		D := 0.2 * math.Abs(math.Mod(dFrac, 1))
		q := 50 + rng.Float64()*400
		res, err := e.CPNN(q, verify.Constraint{P: P, Delta: D}, Options{})
		if err != nil {
			return false
		}
		probs, _, err := e.PNN(q, Options{})
		if err != nil {
			return false
		}
		inAnswer := map[int]bool{}
		for _, a := range res.Answers {
			inAnswer[a.ID] = true
		}
		for _, pr := range probs {
			if pr.P >= P+1e-9 && !inAnswer[pr.ID] {
				return false
			}
			if pr.P < P-D-1e-9 && inAnswer[pr.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDistanceCandidatesGaussianAnalytic(t *testing.T) {
	// An engine over analytic (non-histogram) pdfs must discretize on the
	// fly and still produce valid tables.
	g1, err := pdf.PaperGaussian(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := pdf.PaperGaussian(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(uncertain.NewDataset([]pdf.PDF{g1, g2}))
	if err != nil {
		t.Fatal(err)
	}
	probs, _, err := e.PNN(8, Options{Bins: 64})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range probs {
		sum += p.P
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σ p = %g", sum)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCPNNDeterministic(t *testing.T) {
	// Identical seeds and queries must produce identical answers and
	// bounds — the engine has no hidden nondeterminism.
	run := func() []Answer {
		e := genEngine(t, 800, 31)
		res, err := e.CPNN(412.5, verify.Constraint{P: 0.25, Delta: 0.01}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Candidates
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestKNNPreVerifierPrunesWithoutSampling(t *testing.T) {
	// With a high threshold, the analytic bound D_i(f_k) alone fails every
	// candidate; results must still be well-formed and all marked fail.
	e := genEngine(t, 300, 6)
	out, _, err := e.CKNN(500, verify.Constraint{P: 0.999999, Delta: 0}, KNNOptions{K: 2, Samples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no candidates")
	}
	satisfied := 0
	for _, a := range out {
		if a.Status == verify.Satisfy {
			satisfied++
		}
		if a.Bounds.L > a.Bounds.U {
			t.Fatalf("inverted bounds %+v", a.Bounds)
		}
	}
	if satisfied > 1 {
		t.Errorf("%d objects satisfied P≈1; at most one can", satisfied)
	}
}
