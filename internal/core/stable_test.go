package core

import (
	"sort"
	"testing"

	"repro/internal/pdf"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// TestCKNNStableIDsOrderInvariance: with KNNOptions.IDs set, the answer is a
// pure function of the stable-ID object set — permuting the dataset's dense
// slot layout (what a store delete's swap-into-hole does) must reproduce
// bit-identical bounds after translating back to stable IDs. This is the
// property the monitor's influence pruning relies on.
func TestCKNNStableIDsOrderInvariance(t *testing.T) {
	pdfs := []pdf.PDF{
		pdf.MustUniform(0, 4),
		pdf.MustUniform(1, 5),
		pdf.MustUniform(3, 9),
		pdf.MustUniform(8, 12),
		pdf.MustUniform(2, 6),
	}
	stable := []uint64{10, 11, 12, 13, 14}
	perm := []int{3, 0, 4, 2, 1}

	permPDFs := make([]pdf.PDF, len(pdfs))
	permStable := make([]uint64, len(pdfs))
	for dst, src := range perm {
		permPDFs[dst] = pdfs[src]
		permStable[dst] = stable[src]
	}

	run := func(ps []pdf.PDF, ids []uint64) map[uint64]KNNAnswer {
		e, err := NewEngine(uncertain.NewDataset(ps))
		if err != nil {
			t.Fatal(err)
		}
		out, st, err := e.CKNN(3, verify.Constraint{P: 0.2, Delta: 0.05},
			KNNOptions{K: 2, Samples: 2000, Seed: 7, IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		if st.FMin <= 0 {
			t.Fatalf("critical distance not exposed: %+v", st)
		}
		m := map[uint64]KNNAnswer{}
		for _, a := range out {
			m[ids[a.ID]] = a
		}
		return m
	}

	base := run(pdfs, stable)
	permuted := run(permPDFs, permStable)
	if len(base) != len(permuted) {
		t.Fatalf("candidate sets differ: %d vs %d", len(base), len(permuted))
	}
	for id, a := range base {
		b, ok := permuted[id]
		if !ok {
			t.Fatalf("stable id %d missing after permutation", id)
		}
		if a.Bounds != b.Bounds || a.Status != b.Status {
			t.Fatalf("stable id %d: %+v vs %+v after permutation", id, a, b)
		}
	}
}

// TestCKNNStatsExposeFK checks Stats.FMin is the k-th smallest far-point
// distance and Stats.Candidates the filtered set size.
func TestCKNNStatsExposeFK(t *testing.T) {
	e, err := NewEngine(uncertain.NewDataset([]pdf.PDF{
		pdf.MustUniform(0, 2),   // far from q=1: 1
		pdf.MustUniform(4, 6),   // far: 5
		pdf.MustUniform(10, 12), // far: 11
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := e.CKNN(1, verify.Constraint{P: 0.5}, KNNOptions{K: 2, Samples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.FMin != 5 {
		t.Fatalf("f_2 = %g, want 5", st.FMin)
	}
	if st.Candidates != 2 {
		t.Fatalf("candidates = %d, want 2 (object [10,12] has near dist 9 > 5)", st.Candidates)
	}
}

// TestCPNNScratchMatchesCPNN: a caller-owned scratch reused across many
// queries returns results identical to the scratchless path.
func TestCPNNScratchMatchesCPNN(t *testing.T) {
	ds, err := uncertain.GenerateUniform(uncertain.GenOptions{
		N: 200, Domain: 500, MeanLen: 8, MinLen: 1, MaxLen: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	sc := NewScratch()
	for q := 5.0; q < 500; q += 37 {
		want, err := e.CPNN(q, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.CPNNScratch(q, c, Options{}, sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Candidates) != len(want.Candidates) {
			t.Fatalf("q=%g: %d candidates vs %d", q, len(got.Candidates), len(want.Candidates))
		}
		for i := range got.Candidates {
			if got.Candidates[i] != want.Candidates[i] {
				t.Fatalf("q=%g candidate %d: %+v vs %+v", q, i, got.Candidates[i], want.Candidates[i])
			}
		}
		gotIDs := got.AnswerIDs()
		wantIDs := want.AnswerIDs()
		sort.Ints(gotIDs)
		sort.Ints(wantIDs)
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("q=%g: answers %v vs %v", q, gotIDs, wantIDs)
		}
	}
	// Nil scratch falls back to the plain path.
	if _, err := e.CPNNScratch(100, c, Options{}, nil); err != nil {
		t.Fatal(err)
	}
}
