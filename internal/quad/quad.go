// Package quad provides the numerical integration routines used by the
// refinement phase: Gauss–Legendre quadrature (exact for polynomials, which
// is what per-subregion qualification integrands are), composite Simpson
// rules (the paper-style "plain numerical integration" of the Basic method),
// and an adaptive Simpson fallback for non-polynomial integrands.
package quad

import (
	"fmt"
	"math"
	"sync"
)

// MaxGaussNodes bounds the cached Gauss–Legendre rule size.
const MaxGaussNodes = 256

var (
	glMu    sync.Mutex
	glCache = map[int]glRule{}
)

type glRule struct {
	nodes, weights []float64
}

// GaussLegendre returns the n-point Gauss–Legendre nodes and weights on
// [-1, 1]. Rules are computed once and cached. The returned slices are
// shared; callers must not mutate them.
func GaussLegendre(n int) (nodes, weights []float64, err error) {
	if n < 1 || n > MaxGaussNodes {
		return nil, nil, fmt.Errorf("quad: gauss rule size %d outside [1, %d]", n, MaxGaussNodes)
	}
	glMu.Lock()
	defer glMu.Unlock()
	if r, ok := glCache[n]; ok {
		return r.nodes, r.weights, nil
	}
	r := computeGaussLegendre(n)
	glCache[n] = r
	return r.nodes, r.weights, nil
}

// computeGaussLegendre finds the roots of the Legendre polynomial P_n by
// Newton iteration from the Chebyshev-like initial guesses, the standard
// Golub-free construction adequate for n <= 256.
func computeGaussLegendre(n int) glRule {
	nodes := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		// Initial guess for the i-th root (descending order).
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var dp float64
		for iter := 0; iter < 100; iter++ {
			p, d := legendre(n, x)
			dp = d
			dx := p / d
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		w := 2 / ((1 - x*x) * dp * dp)
		nodes[i] = -x
		nodes[n-1-i] = x
		weights[i] = w
		weights[n-1-i] = w
	}
	if n%2 == 1 {
		// The middle node of an odd rule is exactly zero.
		nodes[n/2] = 0
		_, d := legendre(n, 0)
		weights[n/2] = 2 / (d * d)
	}
	return glRule{nodes: nodes, weights: weights}
}

// legendre evaluates P_n(x) and its derivative by the three-term recurrence.
func legendre(n int, x float64) (p, dp float64) {
	p0, p1 := 1.0, x
	for k := 2; k <= n; k++ {
		p0, p1 = p1, ((2*float64(k)-1)*x*p1-(float64(k)-1)*p0)/float64(k)
	}
	if n == 0 {
		return 1, 0
	}
	if n == 1 {
		return x, 1
	}
	dp = float64(n) * (x*p1 - p0) / (x*x - 1)
	return p1, dp
}

// GL integrates f over [a, b] with the n-point Gauss–Legendre rule. It is
// exact for polynomials of degree <= 2n-1.
func GL(f func(float64) float64, a, b float64, n int) (float64, error) {
	if b < a {
		return 0, fmt.Errorf("quad: inverted range [%g, %g]", a, b)
	}
	if a == b {
		return 0, nil
	}
	nodes, weights, err := GaussLegendre(n)
	if err != nil {
		return 0, err
	}
	half := (b - a) / 2
	mid := a + half
	sum := 0.0
	for i, x := range nodes {
		sum += weights[i] * f(mid+half*x)
	}
	return sum * half, nil
}

// Simpson integrates f over [a, b] with the composite Simpson rule on n
// sub-intervals (n is rounded up to the next even number). This is the
// fixed-precision integration style of the paper's Basic method.
func Simpson(f func(float64) float64, a, b float64, n int) (float64, error) {
	if b < a {
		return 0, fmt.Errorf("quad: inverted range [%g, %g]", a, b)
	}
	if n < 2 {
		return 0, fmt.Errorf("quad: simpson needs at least 2 intervals, got %d", n)
	}
	if a == b {
		return 0, nil
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3, nil
}

// AdaptiveSimpson integrates f over [a, b] to the requested absolute
// tolerance by recursive interval halving, up to maxDepth levels.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64, maxDepth int) (float64, error) {
	if b < a {
		return 0, fmt.Errorf("quad: inverted range [%g, %g]", a, b)
	}
	if !(tol > 0) {
		return 0, fmt.Errorf("quad: non-positive tolerance %g", tol)
	}
	if a == b {
		return 0, nil
	}
	fa, fb := f(a), f(b)
	m := a + (b-a)/2
	fm := f(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return adaptiveAux(f, a, b, fa, fb, fm, whole, tol, maxDepth), nil
}

func adaptiveAux(f func(float64) float64, a, b, fa, fb, fm, whole, tol float64, depth int) float64 {
	m := a + (b-a)/2
	lm := a + (m-a)/2
	rm := m + (b-m)/2
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveAux(f, a, m, fa, fm, flm, left, tol/2, depth-1) +
		adaptiveAux(f, m, b, fm, fb, frm, right, tol/2, depth-1)
}
