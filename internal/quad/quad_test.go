package quad

import (
	"math"
	"testing"
)

func TestGaussLegendreNodeCount(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 49, 96} {
		nodes, weights, err := GaussLegendre(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != n || len(weights) != n {
			t.Fatalf("n=%d: got %d nodes, %d weights", n, len(nodes), len(weights))
		}
		// Weights sum to 2 (the measure of [-1,1]).
		sum := 0.0
		for _, w := range weights {
			sum += w
		}
		if math.Abs(sum-2) > 1e-12 {
			t.Errorf("n=%d: weight sum = %.15f", n, sum)
		}
		// Nodes are inside (-1,1), ascending, and symmetric.
		for i, x := range nodes {
			if x <= -1 || x >= 1 {
				t.Errorf("n=%d: node %g outside (-1,1)", n, x)
			}
			if i > 0 && nodes[i] <= nodes[i-1] {
				t.Errorf("n=%d: nodes not ascending", n)
			}
			if math.Abs(nodes[i]+nodes[n-1-i]) > 1e-12 {
				t.Errorf("n=%d: nodes not symmetric", n)
			}
		}
	}
}

func TestGaussLegendreBounds(t *testing.T) {
	if _, _, err := GaussLegendre(0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := GaussLegendre(MaxGaussNodes + 1); err == nil {
		t.Error("oversized rule accepted")
	}
}

func TestGLExactForPolynomials(t *testing.T) {
	// n-point GL is exact up to degree 2n-1.
	for _, n := range []int{1, 2, 3, 8, 49} {
		deg := 2*n - 1
		f := func(x float64) float64 { return math.Pow(x, float64(deg)) }
		// Integrate x^deg over [0, 2]: 2^(deg+1)/(deg+1).
		want := math.Pow(2, float64(deg+1)) / float64(deg+1)
		got, err := GL(f, 0, 2, n)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > 1e-10 {
			t.Errorf("n=%d deg=%d: got %g, want %g (rel %g)", n, deg, got, want, rel)
		}
	}
}

func TestGLKnownIntegrals(t *testing.T) {
	got, err := GL(math.Sin, 0, math.Pi, 24)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("∫sin over [0,π] = %.15f, want 2", got)
	}
	got, err = GL(math.Exp, 0, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(math.E-1)) > 1e-12 {
		t.Errorf("∫exp over [0,1] = %.15f", got)
	}
}

func TestGLEdges(t *testing.T) {
	if got, err := GL(math.Sin, 3, 3, 8); err != nil || got != 0 {
		t.Errorf("empty range: %g, %v", got, err)
	}
	if _, err := GL(math.Sin, 2, 1, 8); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestSimpson(t *testing.T) {
	got, err := Simpson(func(x float64) float64 { return x * x }, 0, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-9) > 1e-10 {
		t.Errorf("∫x² over [0,3] = %g, want 9", got)
	}
	// Odd interval counts are rounded up, not rejected.
	got, err = Simpson(func(x float64) float64 { return x }, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("odd-n simpson = %g", got)
	}
	if _, err := Simpson(math.Sin, 0, 1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Simpson(math.Sin, 1, 0, 10); err == nil {
		t.Error("inverted range accepted")
	}
	if got, _ := Simpson(math.Sin, 2, 2, 10); got != 0 {
		t.Error("degenerate range not zero")
	}
}

func TestAdaptiveSimpson(t *testing.T) {
	// A sharply peaked integrand that defeats fixed grids.
	f := func(x float64) float64 { return 1 / (1e-4 + (x-0.3)*(x-0.3)) }
	// Analytic: (1/eps)*(atan((1-0.3)/eps) + atan(0.3/eps)) with eps=1e-2.
	eps := 1e-2
	want := (math.Atan(0.7/eps) + math.Atan(0.3/eps)) / eps
	got, err := AdaptiveSimpson(f, 0, 1, 1e-9, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-want) / want; rel > 1e-7 {
		t.Errorf("adaptive = %g, want %g (rel %g)", got, want, rel)
	}
	if _, err := AdaptiveSimpson(f, 1, 0, 1e-9, 10); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := AdaptiveSimpson(f, 0, 1, 0, 10); err == nil {
		t.Error("zero tolerance accepted")
	}
	if got, _ := AdaptiveSimpson(f, 1, 1, 1e-9, 10); got != 0 {
		t.Error("degenerate range not zero")
	}
}

func TestProductOfLinearsExactness(t *testing.T) {
	// The refinement integrand is a product of c linear cdf terms; check GL
	// with ceil((c+1)/2) nodes integrates it exactly against adaptive.
	c := 30
	f := func(r float64) float64 {
		v := 1.0
		for k := 0; k < c; k++ {
			v *= 1 - (0.01*float64(k)*r+0.001)/2
		}
		return v
	}
	n := (c + 2) / 2
	exact, err := AdaptiveSimpson(f, 0, 1, 1e-13, 50)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GL(f, 0, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-exact) > 1e-10 {
		t.Errorf("GL(%d nodes) = %.14f, adaptive = %.14f", n, got, exact)
	}
}
