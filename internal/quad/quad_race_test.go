package quad

import (
	"math"
	"sync"
	"testing"
)

// TestGaussLegendreConcurrentAccess hammers the rule cache from many
// goroutines; run with -race to validate the locking.
func TestGaussLegendreConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 1; n <= 32; n++ {
				nodes, weights, err := GaussLegendre(n)
				if err != nil {
					errs <- err
					return
				}
				if len(nodes) != n || len(weights) != n {
					errs <- errMismatch(n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch int

func (e errMismatch) Error() string { return "rule size mismatch" }

// TestGLConcurrentIntegration integrates in parallel using shared cached
// rules; results must be identical across goroutines.
func TestGLConcurrentIntegration(t *testing.T) {
	want, err := GL(math.Sin, 0, math.Pi, 24)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := GL(math.Sin, 0, math.Pi, 24)
				if err != nil || got != want {
					t.Errorf("concurrent GL = %g, %v (want %g)", got, err, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
