package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/pager"
)

// Checkpoints serialize the whole store state through a pager.File — the
// page-granular layout of §IV-D — so recovery starts from the latest
// checkpoint and replays only the WAL records after it.
//
// Page 0 is the header: magic, stream length, stream CRC-32C. Pages 1..k
// carry the state stream back to back:
//
//	[8] version  [8] seq  [8] nextID
//	[op batch]   — one upsert per live object, in slot order (1-D then 2-D)
//
// The op batch reuses the WAL encoding, so loading a checkpoint is exactly
// "replay these upserts into an empty store": one code path, one set of
// invariants. Checkpoints are written to a temp file, synced, then renamed
// over the live name — a crash mid-checkpoint leaves the previous
// checkpoint (and the full WAL) untouched.

const (
	checkpointName = "checkpoint.db"
	checkpointTmp  = "checkpoint.db.tmp"
	walName        = "wal.log"

	ckptMagic = "CPNNCKP1"
)

// checkpointState is the decoded content of a checkpoint.
type checkpointState struct {
	Version uint64
	Seq     uint64
	NextID  uint64
	Ops     []Op
}

// encodeCheckpoint serializes the header fields and object upserts.
func encodeCheckpoint(cs checkpointState) ([]byte, error) {
	buf := binary.LittleEndian.AppendUint64(nil, cs.Version)
	buf = binary.LittleEndian.AppendUint64(buf, cs.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, cs.NextID)
	ops, err := encodeOps(cs.Ops)
	if err != nil {
		return nil, err
	}
	return append(buf, ops...), nil
}

func decodeCheckpoint(b []byte) (checkpointState, error) {
	if len(b) < 24 {
		return checkpointState{}, fmt.Errorf("store: checkpoint stream of %d bytes", len(b))
	}
	cs := checkpointState{
		Version: binary.LittleEndian.Uint64(b[:8]),
		Seq:     binary.LittleEndian.Uint64(b[8:16]),
		NextID:  binary.LittleEndian.Uint64(b[16:24]),
	}
	ops, err := decodeOps(b[24:])
	if err != nil {
		return checkpointState{}, fmt.Errorf("store: checkpoint: %w", err)
	}
	cs.Ops = ops
	return cs, nil
}

// writeCheckpoint durably persists the stream under dir. The temp file is
// fully written and synced before the rename publishes it.
func writeCheckpoint(dir string, cs checkpointState) error {
	stream, err := encodeCheckpoint(cs)
	if err != nil {
		return err
	}
	tmpPath := filepath.Join(dir, checkpointTmp)
	pf, err := pager.Create(tmpPath)
	if err != nil {
		return err
	}
	ok := false
	defer func() {
		if !ok {
			pf.Close()
			os.Remove(tmpPath)
		}
	}()

	var page [pager.PageSize]byte
	copy(page[:8], ckptMagic)
	binary.LittleEndian.PutUint64(page[8:16], uint64(len(stream)))
	binary.LittleEndian.PutUint32(page[16:20], crc32.Checksum(stream, crcTable))
	id, err := pf.Allocate()
	if err != nil {
		return err
	}
	if err := pf.WritePage(id, page[:]); err != nil {
		return err
	}
	for off := 0; off < len(stream); off += pager.PageSize {
		end := min(off+pager.PageSize, len(stream))
		clear(page[:])
		copy(page[:], stream[off:end])
		id, err := pf.Allocate()
		if err != nil {
			return err
		}
		if err := pf.WritePage(id, page[:]); err != nil {
			return err
		}
	}
	if err := pf.Sync(); err != nil {
		return err
	}
	if err := pf.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, checkpointName)); err != nil {
		return fmt.Errorf("store: publishing checkpoint: %w", err)
	}
	ok = true
	syncDir(dir)
	return nil
}

// readCheckpoint loads and verifies the checkpoint under dir. A missing file
// returns ok=false; a present-but-corrupt file returns an error, because
// silently starting empty would be data loss.
func readCheckpoint(dir string) (checkpointState, bool, error) {
	path := filepath.Join(dir, checkpointName)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return checkpointState{}, false, nil
	}
	pf, err := pager.Open(path)
	if err != nil {
		return checkpointState{}, false, fmt.Errorf("store: corrupt checkpoint: %w", err)
	}
	defer pf.Close()

	var page [pager.PageSize]byte
	if err := pf.ReadPage(0, page[:]); err != nil {
		return checkpointState{}, false, fmt.Errorf("store: corrupt checkpoint: %w", err)
	}
	if string(page[:8]) != ckptMagic {
		return checkpointState{}, false, fmt.Errorf("store: corrupt checkpoint: bad magic %q", page[:8])
	}
	streamLen := binary.LittleEndian.Uint64(page[8:16])
	wantCRC := binary.LittleEndian.Uint32(page[16:20])
	maxLen := uint64(pf.NumPages()-1) * pager.PageSize
	if pf.NumPages() < 1 || streamLen > maxLen {
		return checkpointState{}, false, fmt.Errorf(
			"store: corrupt checkpoint: stream of %d bytes in %d pages", streamLen, pf.NumPages())
	}
	stream := make([]byte, 0, streamLen)
	for id := pager.PageID(1); uint64(len(stream)) < streamLen; id++ {
		if err := pf.ReadPage(id, page[:]); err != nil {
			return checkpointState{}, false, fmt.Errorf("store: corrupt checkpoint: %w", err)
		}
		take := min(uint64(pager.PageSize), streamLen-uint64(len(stream)))
		stream = append(stream, page[:take]...)
	}
	if crc32.Checksum(stream, crcTable) != wantCRC {
		return checkpointState{}, false, fmt.Errorf("store: corrupt checkpoint: checksum mismatch")
	}
	cs, err := decodeCheckpoint(stream)
	if err != nil {
		return checkpointState{}, false, err
	}
	return cs, true, nil
}

// syncDir best-effort fsyncs a directory so a rename survives power loss.
// Errors are ignored: some filesystems reject directory syncs, and the data
// files themselves are already synced.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
