package store

import (
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/pdf"
)

// TestExplicitIDs covers the shard-member mode: with Options.ExplicitIDs an
// upsert addressing an unknown non-zero ID inserts (the router owns
// assignment), the ID counter tracks the highest explicit ID durably across
// reopen, and the default mode still rejects unknown IDs.
func TestExplicitIDs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, ExplicitIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{
		UpdateObject(5, pdf.MustUniform(0, 1)),
		UpdateDisk(9, geom.Circle{Center: geom.Point{X: 1, Y: 2}, Radius: 1}),
	}); err != nil {
		t.Fatalf("explicit upsert-insert: %v", err)
	}
	v := s.View()
	if v.Dataset.Len() != 1 || v.IDs[0] != 5 || len(v.Disks) != 1 || v.Disks[0].ID != 9 {
		t.Fatalf("explicit inserts mis-stored: ids=%v disks=%+v", v.IDs, v.Disks)
	}
	if v.NextID != 10 {
		t.Fatalf("counter after explicit ID 9: NextID = %d, want 10", v.NextID)
	}
	// An explicit upsert on a KNOWN ID is still an update, not a duplicate.
	if _, err := s.Apply([]Op{UpdateObject(5, pdf.MustUniform(2, 3))}); err != nil {
		t.Fatal(err)
	}
	if n := s.View().Dataset.Len(); n != 1 {
		t.Fatalf("explicit update duplicated the object: %d live", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The bumped counter is durable: the next zero-ID insert continues past
	// the highest explicit ID.
	s, err = Open(dir, Options{NoSync: true, ExplicitIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.View().NextID; got != 10 {
		t.Fatalf("recovered NextID = %d, want 10", got)
	}
	res, err := s.Apply([]Op{InsertObject(pdf.MustUniform(4, 5))})
	if err != nil {
		t.Fatal(err)
	}
	if res.IDs[0] != 10 {
		t.Fatalf("post-recovery insert got ID %d, want 10", res.IDs[0])
	}

	// Default mode keeps rejecting unknown IDs.
	s2, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Apply([]Op{UpdateObject(5, pdf.MustUniform(0, 1))}); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("default mode accepted unknown ID: %v", err)
	}
}

// TestEncodeOpsRoundTrip checks the exported wire encoding: EncodeOps and
// DecodeOps are inverses and pdfs survive bit-exactly.
func TestEncodeOpsRoundTrip(t *testing.T) {
	ops := []Op{
		Truncate(),
		{Code: OpUniform, ID: 1, PDF: pdf.MustUniform(0.1, 10.7)},
		{Code: OpHist, ID: 2, PDF: pdf.MustHistogram([]float64{0, 1, 2}, []float64{1, 3})},
		{Code: OpDisk, ID: 3, Disk: geom.Circle{Center: geom.Point{X: 1, Y: 2}, Radius: 0.5}},
		Delete(2),
	}
	payload, err := EncodeOps(ops)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeOps(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip returned %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i].Code != ops[i].Code || got[i].ID != ops[i].ID {
			t.Fatalf("op %d mangled: %+v vs %+v", i, got[i], ops[i])
		}
	}
	u := got[1].PDF.Support()
	if u.Lo != 0.1 || u.Hi != 10.7 {
		t.Fatalf("uniform support mangled: %+v", u)
	}
	if _, err := DecodeOps(payload[:len(payload)-2]); err == nil {
		t.Fatal("truncated payload decoded")
	}
}
