package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The WAL is a flat append-only file of length-prefixed, checksummed
// records. One record carries one committed batch:
//
//	[4] payload length (LE uint32)
//	[4] CRC-32C of the payload
//	[n] payload: [8] batch sequence number, then the encoded op batch
//
// Recovery scans records in order and stops at the first record whose
// header is short, whose length runs past the file, or whose checksum
// mismatches — a torn or partially-synced tail from a crash mid-append.
// Everything before the tear is intact by CRC; the tail is discarded and the
// file truncated so future appends start from a clean boundary.

const walHeaderSize = 8

// maxWALRecord bounds a single record (a dataset-reload batch of 53k
// histogram objects stays far below this).
const maxWALRecord = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one decoded WAL record. Payload keeps the raw encoded op
// batch (the bytes after the sequence number) so replication can ship the
// exact bytes the primary committed — replaying them on a follower decodes
// to bit-identical state by construction. End is the file offset just past
// the record, which the log reader turns into cumulative byte positions.
type walRecord struct {
	Seq     uint64
	Ops     []Op
	Payload []byte
	End     int64
}

// appendWALRecord frames a batch payload into buf.
func appendWALRecord(buf []byte, seq uint64, opsPayload []byte) []byte {
	payloadLen := 8 + len(opsPayload)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	crc := crc32.Update(0, crcTable, binary.LittleEndian.AppendUint64(nil, seq))
	crc = crc32.Update(crc, crcTable, opsPayload)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	return append(buf, opsPayload...)
}

// scanWAL reads every intact record from r. It returns the records, the byte
// offset of the first tear (== the number of valid bytes), and whether a
// torn tail was found. Records that fail to decode *after* passing the CRC
// (impossible absent bugs or deliberate corruption of both payload and
// checksum) also stop the scan, as corruption.
func scanWAL(r io.Reader) (recs []walRecord, validBytes int64, torn bool, err error) {
	br := newByteReader(r)
	for {
		start := br.off
		var hdr [walHeaderSize]byte
		n, rerr := io.ReadFull(br, hdr[:])
		if rerr == io.EOF && n == 0 {
			return recs, start, false, nil // clean end
		}
		if rerr != nil { // short header: torn tail
			return recs, start, true, nil
		}
		payloadLen := int(binary.LittleEndian.Uint32(hdr[:4]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if payloadLen < 8 || payloadLen > maxWALRecord {
			return recs, start, true, nil
		}
		payload, ok := readN(br, payloadLen)
		if !ok {
			return recs, start, true, nil // short payload: torn tail
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return recs, start, true, nil // bit rot or torn overwrite
		}
		seq := binary.LittleEndian.Uint64(payload[:8])
		ops, derr := decodeOps(payload[8:])
		if derr != nil {
			return recs, start, true, nil
		}
		recs = append(recs, walRecord{Seq: seq, Ops: ops, Payload: payload[8:], End: br.off})
	}
}

// readN reads exactly n bytes, growing the buffer chunk-wise so a corrupt
// length field costs a short read, not an n-byte allocation.
func readN(r io.Reader, n int) ([]byte, bool) {
	const chunkSize = 64 << 10
	buf := make([]byte, 0, min(n, chunkSize))
	chunk := make([]byte, chunkSize)
	for len(buf) < n {
		want := min(chunkSize, n-len(buf))
		m, err := io.ReadFull(r, chunk[:want])
		buf = append(buf, chunk[:m]...)
		if err != nil {
			return buf, false
		}
	}
	return buf, true
}

// byteReader counts consumed bytes so the scanner can report tear offsets.
type byteReader struct {
	r   io.Reader
	off int64
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

func (b *byteReader) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.off += int64(n)
	return n, err
}

// wal is the open write-ahead log file.
type wal struct {
	f    *os.File
	size int64 // current valid length
}

// openWAL opens (creating if absent) the log at path, scans it, truncates
// any torn tail, and positions the file for appends. It returns the intact
// records and whether a tail was dropped.
func openWAL(path string) (*wal, []walRecord, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: %w", err)
	}
	recs, valid, torn, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, false, err
	}
	if torn {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("store: %w", err)
	}
	return &wal{f: f, size: valid}, recs, torn, nil
}

// append writes pre-framed record bytes. Durability requires a sync.
func (w *wal) append(b []byte) error {
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("store: appending WAL: %w", err)
	}
	w.size += int64(len(b))
	return nil
}

// sync forces appended records to stable storage.
func (w *wal) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	return nil
}

// reset empties the log after a durable checkpoint made its records
// redundant.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: resetting WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.size = 0
	return nil
}

func (w *wal) close() error { return w.f.Close() }
