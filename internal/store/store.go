package store

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chunked"
	"repro/internal/filter"
	"repro/internal/geom"
	"repro/internal/pagecache"
	"repro/internal/pdf"
	"repro/internal/rtree"
	"repro/internal/uncertain"
)

// DefaultCheckpointBytes is the WAL size past which the committer takes an
// automatic checkpoint.
const DefaultCheckpointBytes = 8 << 20

// DefaultCacheBytes is the default page-cache budget for reading object
// payloads back from the base checkpoint file.
const DefaultCacheBytes = 64 << 20

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrBroken is returned after a WAL write or sync failure: the in-memory
// state may be ahead of disk, so the store refuses further mutations. The
// last published view remains valid — it was fsync'd before publication.
var ErrBroken = errors.New("store: broken by an earlier WAL failure")

// ErrUnknownID marks an update or delete addressing a stable ID that does
// not exist; servers map it to 404.
var ErrUnknownID = errors.New("store: unknown object id")

// ErrInvalidOp marks a semantically invalid operation (unsupported pdf kind,
// family mismatch); servers map it to 400.
var ErrInvalidOp = errors.New("store: invalid op")

// Options tunes a store. The zero value is the durable default.
type Options struct {
	// NoSync skips the fsync on commit. Throughput multiplies, but a crash
	// can lose recent batches (never corrupt surviving ones — the CRC scan
	// still cuts the tail at the first tear). For bulk loads and benchmarks.
	NoSync bool
	// CheckpointBytes is the WAL size that triggers an automatic checkpoint;
	// 0 means DefaultCheckpointBytes, negative disables auto-checkpointing.
	CheckpointBytes int64
	// CacheBytes bounds the buffer pool used to fault object payloads in
	// from the base checkpoint file; 0 means DefaultCacheBytes. Datasets
	// larger than the budget still serve — cold payloads fault in page by
	// page and evict clock-wise — so this is the store's resident-memory
	// knob, not a capacity limit.
	CacheBytes int64
	// ExplicitIDs lets upserts address stable IDs this store has never
	// assigned: an unknown non-zero ID inserts (bumping the ID counter past
	// it) instead of failing with ErrUnknownID. Shard member stores run in
	// this mode — the router owns ID assignment across the cluster, so a
	// member must accept whatever IDs it is handed.
	ExplicitIDs bool
	// Logger receives structured recovery and checkpoint events; nil
	// discards them.
	Logger *slog.Logger
}

// Disk is one live 2-D object of a view.
type Disk struct {
	// ID is the object's stable ID.
	ID uint64
	// Region is the uncertainty disk.
	Region geom.Circle
}

// View is one immutable MVCC generation of the store: a dense dataset (slot
// i holds the object with stable ID IDs[i]), the filter index maintained
// incrementally over it, and the live 2-D objects. Views are never mutated;
// each committed batch publishes a new one.
type View struct {
	// Version increases by one per committed batch and is monotonic across
	// restarts — it is persisted in checkpoints and reconstructed from the
	// WAL, so snapshot-versioned caches stay sound through a reboot.
	Version uint64
	// Seq is the last committed batch sequence number.
	Seq uint64
	// Dataset holds the 1-D objects with dense IDs 0..Len()-1.
	Dataset *uncertain.Dataset
	// IDs maps dense dataset IDs to stable object IDs.
	IDs []uint64
	// Index is the filter index over Dataset, ready for an engine.
	Index *filter.Index
	// Disks holds the live 2-D objects in slot order.
	Disks []Disk
	// NextID is the stable ID the next ID-assigning insert would receive.
	// It is durable (checkpointed and reconstructed from the WAL), so a
	// shard router can recover its cluster-wide ID counter as the maximum
	// NextID over its members.
	NextID uint64
}

// ApplyResult reports a committed batch.
type ApplyResult struct {
	// Version is the store version after this batch.
	Version uint64
	// Seq is the batch's WAL sequence number.
	Seq uint64
	// IDs holds, per op, the stable ID it affected — for inserts, the
	// freshly assigned ID. Truncates report 0.
	IDs []uint64
}

// Stats is a snapshot of the store's operational counters.
type Stats struct {
	// OpsApplied counts committed ops; Commits counts committed batches.
	OpsApplied, Commits uint64
	// WALBytes is the current WAL length; WALAppendedBytes the total ever
	// appended (survives WAL resets).
	WALBytes, WALAppendedBytes uint64
	// Checkpoints counts completed checkpoints; CheckpointNanos their total
	// wall time.
	Checkpoints, CheckpointNanos uint64
	// WALRecords counts WAL records written since the last checkpoint (the
	// batches a reopen would replay right now).
	WALRecords uint64
	// LastCheckpointUnixNano is when the latest checkpoint was written (the
	// on-disk file's mtime for checkpoints inherited from a previous
	// process); 0 when the store has never checkpointed. WALBytes measures
	// how much compaction debt has accrued since then.
	LastCheckpointUnixNano int64
	// TornTailDropped reports whether recovery discarded a torn WAL tail.
	TornTailDropped bool
	// FeedSubscribers counts live change-feed subscriptions; FeedDropped
	// counts deltas dropped on lagging subscribers (each drop run ends in one
	// Gap delivery).
	FeedSubscribers int
	FeedDropped     uint64
	// Role is the replication role; LogSubscribers counts live replication
	// log subscriptions and LogDropped the ones cut for lagging.
	Role           Role
	LogSubscribers int
	LogDropped     uint64
	// Version and Seq mirror the current view.
	Version, Seq uint64
	// Objects1D and Objects2D count live objects.
	Objects1D, Objects2D int
	// PageCache reports the base checkpoint's buffer-pool counters; zero
	// until the store writes (or recovers) a paged checkpoint.
	PageCache pagecache.Stats
	// BasePages counts pages in the base checkpoint file.
	BasePages int
	// CacheBytes is the resolved page-cache budget.
	CacheBytes int64
	// OverlaySlots counts 1-D objects whose decoded payloads are resident in
	// the overlay (written since the last checkpoint); BaseSlots counts the
	// ones served lazily from the base checkpoint file.
	OverlaySlots, BaseSlots int
}

// state is the committer-owned mutable object table. The 1-D family is an
// overlay over the base checkpoint: recs keeps every object's support
// interval resident, but decoded payloads only for objects written since the
// last checkpoint — the rest are refs into st.base's record log. Commits
// snapshot recs in O(n/ChunkSize) and share the slots backing array with
// published views copy-on-write, so commit cost tracks the batch, not the
// dataset.
type state struct {
	seq     uint64
	version uint64
	nextID  uint64

	slots     []uint64 // dense slot -> stable ID (1-D)
	idsShared bool     // slots' backing array is aliased by a published view
	recs      chunked.Slice[slotRec]
	resident  int   // slots holding a decoded payload (the overlay depth)
	base      *base // latest paged checkpoint; nil before the first one
	slotOf    map[uint64]int

	dslots     []uint64 // dense slot -> stable ID (2-D)
	disks      []geom.Circle
	dslotOf    map[uint64]int
	disksDirty bool // 2-D set changed since the last published view
}

func newState() *state {
	// Stable IDs start at 1: ID zero is the "assign me" sentinel of inserts.
	return &state{nextID: 1, slotOf: map[uint64]int{}, dslotOf: map[uint64]int{}}
}

// region returns slot i's support interval from resident metadata.
func (st *state) region(i int) geom.Interval {
	r := st.recs.At(i)
	return geom.Interval{Lo: r.lo, Hi: r.hi}
}

// pdfOf returns slot i's decoded payload, faulting it from the base
// checkpoint when only the record ref is resident.
func (st *state) pdfOf(i int) (pdf.PDF, error) {
	r := st.recs.At(i)
	if r.p != nil {
		return r.p, nil
	}
	return st.base.pdfAt(r.ref)
}

// ownIDs unshares the slots backing array before a structural mutation.
// Appends never need this — a published view's slice is capped at its
// length, so growth past it is invisible — but a delete swaps and shrinks,
// and a later append would then overwrite a position readers still see.
func (st *state) ownIDs() {
	if st.idsShared {
		st.slots = append([]uint64(nil), st.slots...)
		st.idsShared = false
	}
}

// Store is the durable uncertain-object store. All mutations flow through
// Apply; a single committer goroutine validates, logs, group-commits and
// publishes MVCC views. Create one with Open; it is safe for concurrent use.
type Store struct {
	dir  string
	opt  Options
	role Role
	wal  *wal
	lock *os.File // flock'd LOCK file; held for the store's lifetime
	view atomic.Pointer[View]

	sendMu sync.Mutex // guards reqCh against send-after-close
	closed bool
	reqCh  chan *request
	doneCh chan struct{}

	watchMu        sync.Mutex // guards watchers, logSubs, watchersClosed, per-Sub flags
	watchers       map[*Sub]struct{}
	logSubs        map[*LogSub]struct{}
	watchersClosed bool
	watchDropped   atomic.Uint64
	logDropped     atomic.Uint64

	broken atomic.Bool

	baseRef atomic.Pointer[base] // mirrors st.base for Stats readers
	overlay atomic.Int64         // mirrors st.resident for Stats readers

	opsApplied  atomic.Uint64
	commits     atomic.Uint64
	walSize     atomic.Uint64
	walAppended atomic.Uint64
	checkpoints atomic.Uint64
	ckptNanos   atomic.Uint64
	ckptSeq     atomic.Uint64 // WAL seq covered by the latest checkpoint
	ckptTime    atomic.Int64  // unix nanos of the latest checkpoint write
	tornTail    bool

	st *state // owned by the committer goroutine (and by Open/Close around it)
}

type request struct {
	ops        []Op
	rep        []LogRecord // replicated records (follower stores only)
	install    []byte      // snapshot stream to install (follower stores only)
	sync       *syncArgs   // replication sync request (runs standalone)
	checkpoint bool
	resp       chan result
}

type result struct {
	res ApplyResult
	err error
}

// Open opens (creating if necessary) the store in dir and recovers its
// state: load the latest checkpoint, replay intact WAL records past it, and
// truncate any torn tail. The recovered view is available immediately.
func Open(dir string, opt Options) (*Store, error) {
	return openStore(dir, opt, RolePrimary)
}

func openStore(dir string, opt Options, role Role) (*Store, error) {
	if opt.CheckpointBytes == 0 {
		opt.CheckpointBytes = DefaultCheckpointBytes
	}
	if opt.CacheBytes == 0 {
		opt.CacheBytes = DefaultCacheBytes
	} else if opt.CacheBytes < pagecache.MinBudget {
		// Resolve the pool's floor here so Stats reports the budget actually
		// in force.
		opt.CacheBytes = pagecache.MinBudget
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			lock.Close()
		}
	}()
	// A temp checkpoint is debris from a crash mid-checkpoint; the rename
	// never happened, so the previous checkpoint + WAL are authoritative.
	os.Remove(filepath.Join(dir, checkpointTmp))

	st, baseTree, haveCkpt, err := loadCheckpoint(dir, opt.CacheBytes)
	if err != nil {
		return nil, err
	}
	ckptSeq := st.seq

	w, recs, torn, err := openWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	// Collect the replay's index edits so the recovered checkpoint tree can
	// be carried forward incrementally instead of bulk-rebuilt — recovery
	// cost tracks the WAL, not the dataset. A truncation voids the stream.
	var (
		walEdits   []filter.Edit
		walRebuild bool
	)
	for _, rec := range recs {
		if rec.Seq <= st.seq {
			continue // already covered by the checkpoint
		}
		if rec.Seq != st.seq+1 {
			w.close()
			return nil, fmt.Errorf("store: WAL sequence gap: have %d, record %d", st.seq, rec.Seq)
		}
		edits, rb, err := applyDecoded(st, rec.Ops, nil)
		if err != nil {
			w.close()
			return nil, fmt.Errorf("store: replaying WAL record %d: %w", rec.Seq, err)
		}
		if rb {
			walRebuild, walEdits = true, nil
		} else {
			walEdits = append(walEdits, edits...)
		}
		st.seq = rec.Seq
		st.version++
		st.nextID = maxAssigned(st.nextID, rec.Ops)
	}

	s := &Store{
		dir:      dir,
		opt:      opt,
		role:     role,
		wal:      w,
		lock:     lock,
		reqCh:    make(chan *request, 256),
		doneCh:   make(chan struct{}),
		watchers: map[*Sub]struct{}{},
		logSubs:  map[*LogSub]struct{}{},
		st:       st,
		tornTail: torn,
	}
	s.walAppended.Store(uint64(w.size))
	s.walSize.Store(uint64(w.size))
	s.baseRef.Store(st.base)
	if haveCkpt {
		s.ckptSeq.Store(ckptSeq)
		// The inherited checkpoint's age starts from when the previous
		// process wrote it, not from this boot.
		if info, serr := os.Stat(filepath.Join(dir, checkpointName)); serr == nil {
			s.ckptTime.Store(info.ModTime().UnixNano())
		}
	}
	view, err := s.materialize(nil, baseTree, walEdits, walRebuild)
	if err != nil {
		w.close()
		return nil, err
	}
	s.view.Store(view)
	if torn {
		s.logger().Warn("recovery dropped a torn WAL tail", "dir", dir)
	}
	s.logger().Info("store recovered",
		"dir", dir, "version", view.Version, "seq", view.Seq,
		"objects_1d", view.Dataset.Len(), "objects_2d", len(view.Disks),
		"wal_records", len(recs), "checkpoint", haveCkpt)
	go s.committer()
	ok = true
	return s, nil
}

// logger returns the configured structured logger, or a discard logger.
func (s *Store) logger() *slog.Logger {
	if s.opt.Logger != nil {
		return s.opt.Logger
	}
	return discardLogger
}

var discardLogger = slog.New(slog.DiscardHandler)

// maxAssigned keeps nextID above every ID a replayed batch assigned.
func maxAssigned(next uint64, ops []Op) uint64 {
	for _, op := range ops {
		if op.ID >= next {
			next = op.ID + 1
		}
	}
	return next
}

// View returns the current MVCC view. It never blocks on writers.
func (s *Store) View() *View { return s.view.Load() }

// Stats returns a snapshot of the operational counters.
func (s *Store) Stats() Stats {
	v := s.View()
	s.watchMu.Lock()
	subs := len(s.watchers)
	logSubs := len(s.logSubs)
	s.watchMu.Unlock()
	// A checkpoint racing this read can momentarily advance ckptSeq past the
	// loaded view's Seq; clamp instead of underflowing.
	var walRecs uint64
	if ck := s.ckptSeq.Load(); v.Seq > ck {
		walRecs = v.Seq - ck
	}
	out := Stats{
		FeedSubscribers:        subs,
		FeedDropped:            s.watchDropped.Load(),
		Role:                   s.role,
		LogSubscribers:         logSubs,
		LogDropped:             s.logDropped.Load(),
		OpsApplied:             s.opsApplied.Load(),
		Commits:                s.commits.Load(),
		WALBytes:               s.walSize.Load(),
		WALAppendedBytes:       s.walAppended.Load(),
		Checkpoints:            s.checkpoints.Load(),
		CheckpointNanos:        s.ckptNanos.Load(),
		WALRecords:             walRecs,
		LastCheckpointUnixNano: s.ckptTime.Load(),
		TornTailDropped:        s.tornTail,
		Version:                v.Version,
		Seq:                    v.Seq,
		Objects1D:              v.Dataset.Len(),
		Objects2D:              len(v.Disks),
	}
	out.CacheBytes = s.opt.CacheBytes
	if b := s.baseRef.Load(); b != nil {
		out.PageCache = b.pool.Stats()
		out.BasePages = b.f.NumPages()
	}
	// The resident counter and the loaded view are separate atomics; a
	// racing commit can skew them by a batch. Clamp instead of going negative.
	ov := int(s.overlay.Load())
	if ov > out.Objects1D {
		ov = out.Objects1D
	}
	out.OverlaySlots, out.BaseSlots = ov, out.Objects1D-ov
	return out
}

// Apply atomically commits a batch of ops: either every op is validated,
// logged, fsync'd and applied, or none is. Concurrent Apply calls are group
// committed — the committer drains waiting batches and syncs them with one
// fsync. Apply returns only after the batch is durable (unless Options.NoSync)
// and its view published.
func (s *Store) Apply(ops []Op) (ApplyResult, error) {
	if s.role == RoleFollower {
		return ApplyResult{}, ErrFollower
	}
	if len(ops) == 0 {
		return ApplyResult{}, fmt.Errorf("%w: empty batch", ErrInvalidOp)
	}
	return s.submit(&request{ops: ops, resp: make(chan result, 1)})
}

// Checkpoint serializes the current state through the pager and resets the
// WAL. It runs on the committer, serialized with commits.
func (s *Store) Checkpoint() error {
	_, err := s.submit(&request{checkpoint: true, resp: make(chan result, 1)})
	return err
}

func (s *Store) submit(r *request) (ApplyResult, error) {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return ApplyResult{}, ErrClosed
	}
	s.reqCh <- r
	s.sendMu.Unlock()
	out := <-r.resp
	return out.res, out.err
}

// Close stops the committer, flushes and closes the WAL, and releases the
// store. Pending Apply calls complete first. Close does not checkpoint;
// callers wanting a fast next open (and an empty WAL) call Checkpoint first,
// as cpnn-serve does on graceful shutdown.
func (s *Store) Close() error {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return ErrClosed
	}
	s.closed = true
	close(s.reqCh)
	s.sendMu.Unlock()
	<-s.doneCh
	s.closeWatchers()

	var first error
	if !s.broken.Load() {
		if err := s.wal.sync(); err != nil {
			first = err
		}
	}
	if err := s.wal.close(); err != nil && first == nil {
		first = err
	}
	s.lock.Close() // releases the flock
	return first
}

// maxGroup caps how many waiting batches one commit group absorbs.
const maxGroup = 128

// committer is the single mutation loop: it drains waiting requests into a
// group, stages each batch (validate → encode → decode → apply), writes all
// records with one WAL append and one fsync, then publishes one view
// covering the whole group and answers every waiter. Replication sync and
// snapshot-install requests run standalone between groups, so they always
// see an on-disk log consistent with the in-memory position.
func (s *Store) committer() {
	defer close(s.doneCh)
	var pending *request
	for {
		req := pending
		pending = nil
		if req == nil {
			var ok bool
			if req, ok = <-s.reqCh; !ok {
				return
			}
		}
		if req.sync != nil {
			s.handleSync(req)
			continue
		}
		if req.install != nil {
			s.handleInstall(req)
			continue
		}
		group := []*request{req}
	drain:
		for len(group) < maxGroup {
			select {
			case r, more := <-s.reqCh:
				if !more {
					break drain // outer receive sees the close and exits
				}
				if r.sync != nil || r.install != nil {
					pending = r // commit the group first, then run it standalone
					break drain
				}
				group = append(group, r)
			default:
				break drain
			}
		}
		s.commitGroup(group)
	}
}

func (s *Store) commitGroup(group []*request) {
	if s.broken.Load() {
		for _, r := range group {
			r.resp <- result{err: ErrBroken}
		}
		return
	}

	var (
		buf       []byte
		edits     []filter.Edit
		rebuild   bool
		committed []*request
		outcomes  []ApplyResult
		errs      []error // parallel to committed: partial replication errors
		wantCkpt  bool
		opsTotal  uint64
		batches   uint64
		rec       deltaRec
		logRecs   []LogRecord
	)
	for _, r := range group {
		if s.broken.Load() {
			// A partial state mutation earlier in this group poisoned the
			// in-memory tables; staging further batches against them would
			// persist records a clean recovery cannot replay.
			r.resp <- result{err: ErrBroken}
			continue
		}
		if r.checkpoint {
			wantCkpt = true
			committed = append(committed, r)
			outcomes = append(outcomes, ApplyResult{})
			errs = append(errs, nil)
			continue
		}
		if len(r.rep) > 0 {
			// Replicated records: stage each in turn. On the first bad record
			// the cleanly staged prefix still commits (those records were
			// valid primary history); the error rides back with the last
			// committed position so the follower resyncs from there.
			var (
				last   ApplyResult
				repErr error
				n      int
			)
			for _, lr := range r.rep {
				stg, err := s.stageReplicated(lr, &rec)
				if err != nil {
					repErr = err
					break
				}
				buf = appendWALRecord(buf, stg.seq, stg.payload)
				edits = append(edits, stg.edits...)
				rebuild = rebuild || stg.rebuild
				opsTotal += uint64(stg.nops)
				batches++
				logRecs = append(logRecs, LogRecord{Seq: stg.seq, Version: stg.version, Payload: stg.payload})
				last = ApplyResult{Version: stg.version, Seq: stg.seq}
				n++
			}
			if n == 0 {
				r.resp <- result{err: repErr}
				continue
			}
			committed = append(committed, r)
			outcomes = append(outcomes, last)
			errs = append(errs, repErr)
			continue
		}
		staged, err := s.stageBatch(r.ops, &rec)
		if err != nil {
			r.resp <- result{err: err}
			continue
		}
		buf = appendWALRecord(buf, staged.seq, staged.payload)
		edits = append(edits, staged.edits...)
		rebuild = rebuild || staged.rebuild
		opsTotal += uint64(len(r.ops))
		batches++
		logRecs = append(logRecs, LogRecord{Seq: staged.seq, Version: staged.version, Payload: staged.payload})
		committed = append(committed, r)
		outcomes = append(outcomes, ApplyResult{Version: staged.version, Seq: staged.seq, IDs: staged.ids})
		errs = append(errs, nil)
	}

	if s.broken.Load() {
		// stageBatch poisoned the state partway through the group: even the
		// batches staged before the failure cannot be published, because the
		// view would be materialized from the poisoned tables. Nothing was
		// written; a reopen recovers the last durable state.
		for _, r := range committed {
			r.resp <- result{err: ErrBroken}
		}
		return
	}

	if len(buf) > 0 {
		err := s.wal.append(buf)
		if err == nil && !s.opt.NoSync {
			err = s.wal.sync()
		}
		if err != nil {
			// State is ahead of disk; refuse everything from here on. The
			// published view still reflects only durable commits.
			s.broken.Store(true)
			for _, r := range committed {
				r.resp <- result{err: fmt.Errorf("%w: %v", ErrBroken, err)}
			}
			return
		}
		total := s.walAppended.Add(uint64(len(buf)))
		s.walSize.Store(uint64(s.wal.size))
		// Fix up cumulative byte offsets now that the group's position in the
		// appended stream is known.
		cum := total - uint64(len(buf))
		for i := range logRecs {
			cum += uint64(walHeaderSize + 8 + len(logRecs[i].Payload))
			logRecs[i].WALOffset = cum
		}

		view, err := s.materialize(s.View(), nil, edits, rebuild)
		if err != nil {
			// Index maintenance failed (internal invariant violation): the
			// durable log is fine, so a reopen recovers; this process stops.
			s.broken.Store(true)
			for _, r := range committed {
				r.resp <- result{err: fmt.Errorf("store: publishing view: %w", err)}
			}
			return
		}
		s.view.Store(view)
		s.opsApplied.Add(opsTotal)
		s.commits.Add(batches)
		s.publish(view, &rec)
		s.publishLog(logRecs)
	}

	if wantCkpt || (s.opt.CheckpointBytes > 0 && s.wal.size >= s.opt.CheckpointBytes) {
		if err := s.checkpointLocked(); err != nil {
			for i, r := range committed {
				if r.checkpoint {
					r.resp <- result{err: err}
					committed[i] = nil
				}
			}
		}
	}
	for i, r := range committed {
		if r != nil {
			r.resp <- result{res: outcomes[i], err: errs[i]}
		}
	}
}

// staged is one batch ready for the WAL.
type staged struct {
	seq, version uint64
	payload      []byte
	ids          []uint64
	edits        []filter.Edit
	rebuild      bool
	nops         int
}

// stageBatch validates ops against the live state, assigns stable IDs to
// inserts, encodes the batch, and applies the *decoded* encoding to the
// state — the same bytes recovery will replay, so a recovered store is
// bit-identical to the live one by construction. On a validation error the
// state is untouched.
func (s *Store) stageBatch(ops []Op, rec *deltaRec) (staged, error) {
	st := s.st
	assigned, ids, err := validateOps(st, ops, s.opt.ExplicitIDs)
	if err != nil {
		return staged{}, err
	}
	payload, err := encodeOps(assigned)
	if err != nil {
		return staged{}, fmt.Errorf("%w: %v", ErrInvalidOp, err)
	}
	// Mirror the decode-side record cap on the write side: a record larger
	// than the scanner accepts would commit now and then be dropped as a
	// "torn tail" on every future recovery (and past 4 GiB the uint32
	// length prefix would overflow). Refuse it up front instead.
	if len(payload)+8 > maxWALRecord {
		return staged{}, fmt.Errorf("%w: encoded batch is %d bytes, limit %d — split the batch",
			ErrInvalidOp, len(payload)+8, maxWALRecord)
	}
	decoded, err := decodeOps(payload)
	if err != nil {
		return staged{}, fmt.Errorf("%w: %v", ErrInvalidOp, err)
	}
	edits, rebuild, err := applyDecoded(st, decoded, rec)
	if err != nil {
		// validateOps should have caught everything; a failure here means the
		// state mutated partially — unrecoverable in-process.
		s.broken.Store(true)
		return staged{}, fmt.Errorf("store: internal apply failure: %w", err)
	}
	st.seq++
	st.version++
	return staged{
		seq:     st.seq,
		version: st.version,
		payload: payload,
		ids:     ids,
		edits:   edits,
		rebuild: rebuild,
	}, nil
}

// validateOps checks a batch against the state plus in-batch effects and
// returns the ops with assigned IDs alongside the per-op affected IDs. With
// explicit set (Options.ExplicitIDs), an upsert addressing an unknown
// non-zero ID is an insert under that ID rather than an error.
func validateOps(st *state, ops []Op, explicit bool) ([]Op, []uint64, error) {
	// Overlay of in-batch existence changes: +1/+2 = created or updated in
	// family 1-D/2-D, -1 = deleted, 0 = consult the state.
	overlay := map[uint64]int8{}
	truncated := false
	family := func(id uint64) int8 {
		if v, ok := overlay[id]; ok {
			return v
		}
		if truncated {
			return -1
		}
		if _, ok := st.slotOf[id]; ok {
			return 1
		}
		if _, ok := st.dslotOf[id]; ok {
			return 2
		}
		return -1
	}
	out := make([]Op, len(ops))
	ids := make([]uint64, len(ops))
	nextID := st.nextID
	for i, op := range ops {
		switch op.Code {
		case OpTruncate:
			truncated = true
			overlay = map[uint64]int8{}
			out[i] = op
		case OpDelete:
			if op.ID == 0 || family(op.ID) == -1 {
				return nil, nil, fmt.Errorf("ops[%d]: delete: %w %d", i, ErrUnknownID, op.ID)
			}
			overlay[op.ID] = -1
			out[i], ids[i] = op, op.ID
		case OpUniform, OpHist:
			if op.PDF == nil || codeFor(op.PDF) != op.Code {
				return nil, nil, fmt.Errorf("ops[%d]: %w: pdf %T does not match op code %d",
					i, ErrInvalidOp, op.PDF, op.Code)
			}
			if op.ID == 0 {
				op.ID = nextID
				nextID++
			} else {
				switch family(op.ID) {
				case 1: // update
				case 2:
					return nil, nil, fmt.Errorf("ops[%d]: %w: object %d is 2-D, payload 1-D",
						i, ErrInvalidOp, op.ID)
				default:
					if !explicit {
						return nil, nil, fmt.Errorf("ops[%d]: update: %w %d", i, ErrUnknownID, op.ID)
					}
					if op.ID >= nextID {
						nextID = op.ID + 1
					}
				}
			}
			overlay[op.ID] = 1
			out[i], ids[i] = op, op.ID
		case OpDisk:
			if !(op.Disk.Radius > 0) || !isFinite(op.Disk.Radius) ||
				!isFinite(op.Disk.Center.X) || !isFinite(op.Disk.Center.Y) {
				return nil, nil, fmt.Errorf("ops[%d]: %w: invalid disk %+v", i, ErrInvalidOp, op.Disk)
			}
			if op.ID == 0 {
				op.ID = nextID
				nextID++
			} else {
				switch family(op.ID) {
				case 2: // update
				case 1:
					return nil, nil, fmt.Errorf("ops[%d]: %w: object %d is 1-D, payload 2-D",
						i, ErrInvalidOp, op.ID)
				default:
					if !explicit {
						return nil, nil, fmt.Errorf("ops[%d]: update: %w %d", i, ErrUnknownID, op.ID)
					}
					if op.ID >= nextID {
						nextID = op.ID + 1
					}
				}
			}
			overlay[op.ID] = 2
			out[i], ids[i] = op, op.ID
		default:
			return nil, nil, fmt.Errorf("ops[%d]: %w: unknown code %d", i, ErrInvalidOp, op.Code)
		}
	}
	return out, ids, nil
}

// applyDecoded mutates the state with already-validated decoded ops,
// emitting the incremental index edits (in dense-slot terms) for the 1-D
// family. Deletes swap the last slot into the hole so dense IDs stay dense;
// the displaced object's index entry moves with it. rebuild reports that the
// edit stream is useless (truncation) and the index must be rebuilt. rec,
// when non-nil, collects the change-feed records (stable-ID terms, old/new
// MBRs); recovery passes nil and pays nothing.
func applyDecoded(st *state, ops []Op, rec *deltaRec) (edits []filter.Edit, rebuild bool, err error) {
	for _, op := range ops {
		switch op.Code {
		case OpTruncate:
			if rec != nil {
				// Everything changed; per-object records before this point are
				// subsumed by the truncation flag.
				rec.truncated = true
				rec.changes = rec.changes[:0]
			}
			st.slots, st.idsShared = nil, false
			st.recs.Truncate(0)
			st.resident = 0
			st.dslots, st.disks = nil, nil
			st.slotOf = map[uint64]int{}
			st.dslotOf = map[uint64]int{}
			st.disksDirty = true
			edits, rebuild = nil, true
		case OpUniform, OpHist:
			if st.nextID <= op.ID {
				st.nextID = op.ID + 1
			}
			sup := op.PDF.Support()
			if slot, ok := st.slotOf[op.ID]; ok {
				old := st.region(slot)
				if rec != nil {
					rec.changes = append(rec.changes, Change{
						ID: op.ID, Kind: ChangeUpdate, Slot: slot,
						OldRect: geom.RectFromInterval(old),
						NewRect: geom.RectFromInterval(sup),
					})
				}
				edits = append(edits,
					filter.DeleteEdit(old, slot),
					filter.InsertEdit(sup, slot))
				if st.recs.At(slot).p == nil {
					st.resident++
				}
				st.recs.Set(slot, slotRec{lo: sup.Lo, hi: sup.Hi, p: op.PDF, ref: -1})
			} else {
				if rec != nil {
					rec.changes = append(rec.changes, Change{
						ID: op.ID, Kind: ChangeInsert, Slot: len(st.slots),
						NewRect: geom.RectFromInterval(sup),
					})
				}
				slot := len(st.slots)
				st.slots = append(st.slots, op.ID)
				st.recs.Append(slotRec{lo: sup.Lo, hi: sup.Hi, p: op.PDF, ref: -1})
				st.resident++
				st.slotOf[op.ID] = slot
				edits = append(edits, filter.InsertEdit(sup, slot))
			}
		case OpDisk:
			if st.nextID <= op.ID {
				st.nextID = op.ID + 1
			}
			st.disksDirty = true
			if slot, ok := st.dslotOf[op.ID]; ok {
				if rec != nil {
					rec.changes = append(rec.changes, Change{
						ID: op.ID, Kind: ChangeUpdate, TwoD: true, Slot: -1,
						OldRect: geom.RectFromCircle(st.disks[slot]),
						NewRect: geom.RectFromCircle(op.Disk),
					})
				}
				st.disks[slot] = op.Disk
			} else {
				if rec != nil {
					rec.changes = append(rec.changes, Change{
						ID: op.ID, Kind: ChangeInsert, TwoD: true, Slot: -1,
						NewRect: geom.RectFromCircle(op.Disk),
					})
				}
				st.dslots = append(st.dslots, op.ID)
				st.disks = append(st.disks, op.Disk)
				st.dslotOf[op.ID] = len(st.dslots) - 1
			}
		case OpDelete:
			if slot, ok := st.slotOf[op.ID]; ok {
				old := st.region(slot)
				if rec != nil {
					rec.changes = append(rec.changes, Change{
						ID: op.ID, Kind: ChangeDelete, Slot: -1,
						OldRect: geom.RectFromInterval(old),
					})
				}
				last := len(st.slots) - 1
				edits = append(edits, filter.DeleteEdit(old, slot))
				if st.recs.At(slot).p != nil {
					st.resident--
				}
				st.ownIDs()
				if slot != last {
					// Move the last object into the vacated slot; its index
					// entry must follow its dense ID.
					lastRegion := st.region(last)
					edits = append(edits,
						filter.DeleteEdit(lastRegion, last),
						filter.InsertEdit(lastRegion, slot))
					st.slots[slot] = st.slots[last]
					st.recs.Set(slot, st.recs.At(last))
					st.slotOf[st.slots[slot]] = slot
				}
				st.slots = st.slots[:last]
				st.recs.Truncate(last)
				delete(st.slotOf, op.ID)
			} else if slot, ok := st.dslotOf[op.ID]; ok {
				st.disksDirty = true
				if rec != nil {
					rec.changes = append(rec.changes, Change{
						ID: op.ID, Kind: ChangeDelete, TwoD: true, Slot: -1,
						OldRect: geom.RectFromCircle(st.disks[slot]),
					})
				}
				last := len(st.dslots) - 1
				if slot != last {
					st.dslots[slot], st.disks[slot] = st.dslots[last], st.disks[last]
					st.dslotOf[st.dslots[slot]] = slot
				}
				st.dslots, st.disks = st.dslots[:last], st.disks[:last]
				delete(st.dslotOf, op.ID)
			} else {
				return nil, false, fmt.Errorf("%w %d", ErrUnknownID, op.ID)
			}
		default:
			return nil, false, fmt.Errorf("%w: code %d", ErrInvalidOp, op.Code)
		}
	}
	return edits, rebuild, nil
}

// materialize builds the immutable view of the current state in O(Δ): the
// dataset is a backed overlay over an O(chunks) snapshot of the slot table
// (fresh payloads resident, unchanged ones faulted from the base checkpoint
// on demand); the IDs slice aliases the state's copy-on-write backing; the
// index is prev's O(1) clone with the group's edits replayed (or a bulk
// rebuild when forced or cheaper — see filter.Apply). baseTree, when
// non-nil, is a recovered checkpoint tree carried forward through edits
// instead (recovery's path — it consumes baseTree).
func (s *Store) materialize(prev *View, baseTree *rtree.Tree[int], edits []filter.Edit, rebuild bool) (*View, error) {
	st := s.st
	ds := uncertain.NewBackedDataset(viewSource{recs: st.recs.Snapshot(), base: st.base})
	var (
		ix  *filter.Index
		err error
	)
	switch {
	case rebuild || (prev == nil && baseTree == nil):
		ix, err = filter.NewIndex(ds)
	case baseTree != nil:
		ix, err = filter.ApplyTree(baseTree, ds, edits)
	default:
		ix, err = prev.Index.Apply(ds, edits)
	}
	if err != nil {
		return nil, err
	}
	var disks []Disk
	if prev != nil && !st.disksDirty {
		disks = prev.Disks
	} else {
		disks = make([]Disk, len(st.disks))
		for i := range disks {
			disks[i] = Disk{ID: st.dslots[i], Region: st.disks[i]}
		}
	}
	st.disksDirty = false
	n := len(st.slots)
	st.idsShared = true
	s.overlay.Store(int64(st.resident))
	return &View{
		Version: st.version,
		Seq:     st.seq,
		Dataset: ds,
		IDs:     st.slots[:n:n],
		Index:   ix,
		Disks:   disks,
		NextID:  st.nextID,
	}, nil
}

// snapshotState captures the live state as a replication snapshot payload:
// every live object as an upsert, plus the position counters. Faults every
// lazy payload in from the base checkpoint (page-cache bounded). Runs on the
// committer.
func (s *Store) snapshotState() (checkpointState, error) {
	st := s.st
	ops := make([]Op, 0, len(st.slots)+len(st.dslots))
	for i, id := range st.slots {
		p, err := st.pdfOf(i)
		if err != nil {
			return checkpointState{}, fmt.Errorf("store: snapshot: object %d: %w", id, err)
		}
		ops = append(ops, Op{Code: codeFor(p), ID: id, PDF: p})
	}
	for i, id := range st.dslots {
		ops = append(ops, Op{Code: OpDisk, ID: id, Disk: st.disks[i]})
	}
	return checkpointState{Version: st.version, Seq: st.seq, NextID: st.nextID, Ops: ops}, nil
}

// encodeSnapshot serializes the live state as a replication snapshot stream.
func (s *Store) encodeSnapshot() ([]byte, error) {
	cs, err := s.snapshotState()
	if err != nil {
		return nil, err
	}
	return encodeCheckpoint(cs)
}

// checkpointLocked runs on the committer goroutine with exclusive state
// access: write the paged v2 checkpoint durably, reset the WAL (its records
// are now redundant), then flatten the overlay — every slot rebinds to its
// record in the new base and drops its decoded payload, so resident memory
// returns to metadata plus page-cache budget.
func (s *Store) checkpointLocked() error {
	if s.broken.Load() {
		return ErrBroken
	}
	start := time.Now()
	st := s.st
	b, refs, err := writeCheckpointPaged(s.dir, st, s.opt.CacheBytes)
	if err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	for i, ref := range refs {
		r := st.recs.At(i)
		st.recs.Set(i, slotRec{lo: r.lo, hi: r.hi, ref: ref})
	}
	st.resident = 0
	st.base = b
	s.baseRef.Store(b)
	s.overlay.Store(0)
	s.walSize.Store(0)
	s.ckptSeq.Store(st.seq)
	s.ckptTime.Store(time.Now().UnixNano())
	s.checkpoints.Add(1)
	s.ckptNanos.Add(uint64(time.Since(start).Nanoseconds()))
	s.logger().Debug("checkpoint written",
		"seq", st.seq, "version", st.version,
		"objects", len(st.slots)+len(st.dslots), "pages", b.f.NumPages(),
		"elapsed", time.Since(start))
	return nil
}

// DatasetOps converts a dataset into the op batch that loads it: a truncate
// followed by one insert per object, in ID order — how POST /v1/dataset
// reloads become durable. Every pdf must have a durable encoding (uniform or
// histogram).
func DatasetOps(ds *uncertain.Dataset) ([]Op, error) {
	ops := make([]Op, 0, ds.Len()+1)
	ops = append(ops, Truncate())
	for _, o := range ds.Objects() {
		code := codeFor(o.PDF)
		if code == 0 {
			return nil, fmt.Errorf("%w: object %d: pdf %T has no durable encoding",
				ErrInvalidOp, o.ID, o.PDF)
		}
		ops = append(ops, Op{Code: code, PDF: o.PDF})
	}
	return ops, nil
}
