package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/chunked"
	"repro/internal/geom"
	"repro/internal/pagecache"
	"repro/internal/pager"
	"repro/internal/pdf"
	"repro/internal/rtree"
)

// The v2 paged checkpoint keeps the dataset on disk instead of streaming it
// through memory: every object payload, R-tree node and lookup table is one
// record in a pagecache.Log, and recovery maps the records back without
// materializing anything but metadata. Page 0 is the header, written
// directly (outside the pool's per-page CRC framing):
//
//	[0:8]   magic "CPNNCKP2"
//	[8:16]  version          [16:24] seq             [24:32] nextID
//	[32:40] record-log size  [40:48] slot-table ref  [48:56] disk-table ref
//	[56:64] tree root ref    [64:72] tree entry count
//	[72:76] CRC-32C over bytes [8:72]
//
// Object payload records reuse the WAL op encoding (a one-op batch), so a
// faulted-in object decodes through exactly the code path recovery replays —
// one format, one set of invariants. The slot table holds what must stay
// resident per object: stable ID, support interval, payload record ref.
//
// The write is crash-safe the same way v1 was: build the temp file, flush
// and fsync it, rename over the live name, fsync the directory. The pool
// that wrote the temp file becomes the new base's read pool — the fd follows
// the rename, and every page it holds is already hot.

const ckptMagicV2 = "CPNNCKP2"

// slotRec is one dense slot of the committer's object table. The support
// interval is always resident (the filter phase reads it, never the
// payload); the decoded pdf is resident only for objects written since the
// last checkpoint (the overlay), everything else is a ref into the base
// checkpoint's record log.
type slotRec struct {
	lo, hi float64
	p      pdf.PDF // decoded payload; nil when only ref is available
	ref    int64   // payload record in the base log; -1 before any checkpoint
}

// base is one on-disk checkpoint generation serving lazy payload reads. A
// new base replaces st.base at every checkpoint; old ones stay reachable
// through the views that still fault from them.
type base struct {
	f    *pager.File
	pool *pagecache.Pool
	log  *pagecache.Log
}

func newBase(f *pager.File, pool *pagecache.Pool, log *pagecache.Log) *base {
	b := &base{f: f, pool: pool, log: log}
	// A checkpoint renames over the previous generation's file; POSIX keeps
	// the unlinked inode readable through the open fd. Close it only when the
	// last view referencing this base is collected.
	runtime.SetFinalizer(b, func(b *base) { b.f.Close() })
	return b
}

// pdfAt decodes the object payload stored at ref.
func (b *base) pdfAt(ref int64) (pdf.PDF, error) {
	rec, err := b.log.ReadRecord(ref)
	if err != nil {
		return nil, err
	}
	ops, err := decodeOps(rec)
	if err != nil {
		return nil, fmt.Errorf("record at %d: %w", ref, err)
	}
	if len(ops) != 1 || ops[0].PDF == nil {
		return nil, fmt.Errorf("record at %d is not an object payload", ref)
	}
	return ops[0].PDF, nil
}

// viewSource adapts a frozen slot table to uncertain.Source: regions come
// from resident metadata, payloads from the overlay's decoded pdfs or — for
// objects untouched since the last checkpoint — faulted in from the base
// file through the page cache.
type viewSource struct {
	recs chunked.Snap[slotRec]
	base *base
}

func (v viewSource) Len() int { return v.recs.Len() }

func (v viewSource) Region(i int) geom.Interval {
	r := v.recs.At(i)
	return geom.Interval{Lo: r.lo, Hi: r.hi}
}

func (v viewSource) PDF(i int) pdf.PDF {
	r := v.recs.At(i)
	if r.p != nil {
		return r.p
	}
	p, err := v.base.pdfAt(r.ref)
	if err != nil {
		// A fault here means the checkpoint file rotted under a live view.
		// There is no recoverable answer for the running query; fail it
		// loudly (net/http recovers panics per request).
		panic(fmt.Sprintf("store: faulting object %d from checkpoint: %v", i, err))
	}
	return p
}

// writeCheckpointPaged writes the v2 checkpoint for st under dir and returns
// the new base plus the payload record ref per slot (for rebinding the slot
// table to the new generation).
//
// The dumped index is NOT the live tree: live tree shape depends on commit
// grouping history (group sizes decide when filter.Apply flips to an STR
// rebuild), which differs between a primary and its replicas. The checkpoint
// instead packs a canonical STR tree over the slot table in slot order, so
// the file is a pure function of logical state — the replica suites compare
// checkpoints byte for byte. Query answers are structure-independent either
// way (candidates are sorted, f_min is a min).
func writeCheckpointPaged(dir string, st *state, cacheBytes int64) (*base, []int64, error) {
	tmp := filepath.Join(dir, checkpointTmp)
	pf, err := pager.Create(tmp)
	if err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			pf.Close()
			os.Remove(tmp)
		}
	}()
	if id, err := pf.Allocate(); err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint: %w", err)
	} else if id != 0 {
		return nil, nil, fmt.Errorf("store: checkpoint: fresh file starts at page %d", id)
	}
	pool := pagecache.NewPool(pf, cacheBytes)
	w := pagecache.NewWriter(pool, 1)

	// Object payloads: overlay slots encode their decoded pdf; base-resident
	// slots copy the record bytes verbatim from the previous generation —
	// no decode, no re-encode, so unchanged objects are byte-stable across
	// checkpoints.
	n := len(st.slots)
	refs := make([]int64, n)
	var scratch []byte
	for i := 0; i < n; i++ {
		r := st.recs.At(i)
		var raw []byte
		if r.p != nil {
			code := codeFor(r.p)
			if code == 0 {
				return nil, nil, fmt.Errorf("store: checkpoint: object %d: pdf %T has no durable encoding",
					st.slots[i], r.p)
			}
			raw, err = encodeOps([]Op{{Code: code, ID: st.slots[i], PDF: r.p}})
			if err != nil {
				return nil, nil, fmt.Errorf("store: checkpoint: object %d: %w", st.slots[i], err)
			}
		} else if raw, err = st.base.log.ReadRecord(r.ref); err != nil {
			return nil, nil, fmt.Errorf("store: checkpoint: copying object %d payload: %w", st.slots[i], err)
		}
		if refs[i], err = w.Append(raw); err != nil {
			return nil, nil, fmt.Errorf("store: checkpoint: %w", err)
		}
	}

	// Index nodes, children before parents; the root ref lands in the header.
	inputs := make([]rtree.Input[int], n)
	for i := range inputs {
		inputs[i] = rtree.Input[int]{Rect: geom.RectFromInterval(st.region(i)), Item: i}
	}
	tree, err := rtree.BulkLoad(inputs, rtree.DefaultMinEntries, rtree.DefaultMaxEntries)
	if err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint: packing index: %w", err)
	}
	rootRef, err := tree.Dump(func(leaf bool, rects []geom.Rect, items []int, children []int64) (int64, error) {
		vals := children
		if leaf {
			vals = make([]int64, len(items))
			for i, it := range items {
				vals[i] = int64(it)
			}
		}
		scratch = pagecache.AppendNode(scratch[:0], leaf, rects, vals)
		return w.Append(scratch)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint: dumping index: %w", err)
	}

	// Slot table: per 1-D object, the metadata recovery keeps resident.
	scratch = binary.LittleEndian.AppendUint64(scratch[:0], uint64(n))
	for i := 0; i < n; i++ {
		r := st.recs.At(i)
		scratch = binary.LittleEndian.AppendUint64(scratch, st.slots[i])
		scratch = binary.LittleEndian.AppendUint64(scratch, math.Float64bits(r.lo))
		scratch = binary.LittleEndian.AppendUint64(scratch, math.Float64bits(r.hi))
		scratch = binary.LittleEndian.AppendUint64(scratch, uint64(refs[i]))
	}
	slotTabRef, err := w.Append(scratch)
	if err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint: %w", err)
	}

	// Disk table: the 2-D family is tiny metadata; it stays fully resident.
	scratch = binary.LittleEndian.AppendUint64(scratch[:0], uint64(len(st.dslots)))
	for i, id := range st.dslots {
		d := st.disks[i]
		scratch = binary.LittleEndian.AppendUint64(scratch, id)
		scratch = binary.LittleEndian.AppendUint64(scratch, math.Float64bits(d.Center.X))
		scratch = binary.LittleEndian.AppendUint64(scratch, math.Float64bits(d.Center.Y))
		scratch = binary.LittleEndian.AppendUint64(scratch, math.Float64bits(d.Radius))
	}
	diskTabRef, err := w.Append(scratch)
	if err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint: %w", err)
	}

	logSize := w.Finish()
	if err := pool.Flush(); err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint: %w", err)
	}

	var hdr [pager.PageSize]byte
	copy(hdr[:8], ckptMagicV2)
	binary.LittleEndian.PutUint64(hdr[8:16], st.version)
	binary.LittleEndian.PutUint64(hdr[16:24], st.seq)
	binary.LittleEndian.PutUint64(hdr[24:32], st.nextID)
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(logSize))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(slotTabRef))
	binary.LittleEndian.PutUint64(hdr[48:56], uint64(diskTabRef))
	binary.LittleEndian.PutUint64(hdr[56:64], uint64(rootRef))
	binary.LittleEndian.PutUint64(hdr[64:72], uint64(tree.Len()))
	binary.LittleEndian.PutUint32(hdr[72:76], crc32.Checksum(hdr[8:72], crcTable))
	if err := pf.WritePage(0, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := pf.Sync(); err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointName)); err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint: %w", err)
	}
	syncDir(dir)
	ok = true
	return newBase(pf, pool, pagecache.NewLog(pool, 1, logSize)), refs, nil
}

// loadCheckpoint recovers the checkpoint under dir into a fresh state. For a
// v2 checkpoint it loads only metadata (slot and disk tables, index nodes) —
// object payloads stay on disk behind the returned state's base — and
// returns the rebuilt index tree for materialize to carry forward. A legacy
// v1 checkpoint (op stream) is replayed fully resident; the tree is nil and
// the first materialize bulk-builds it. Reports whether a checkpoint existed.
func loadCheckpoint(dir string, cacheBytes int64) (*state, *rtree.Tree[int], bool, error) {
	st := newState()
	path := filepath.Join(dir, checkpointName)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return st, nil, false, nil
		}
		return nil, nil, false, fmt.Errorf("store: %w", err)
	}
	pf, err := pager.Open(path)
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: %w", err)
	}
	var hdr [pager.PageSize]byte
	if err := pf.ReadPage(0, hdr[:]); err != nil {
		pf.Close()
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: %w", err)
	}
	if string(hdr[:8]) == ckptMagic {
		// v1 checkpoint from an older build: replay the op stream resident.
		pf.Close()
		cs, ok, err := readCheckpoint(dir)
		if err != nil || !ok {
			return nil, nil, ok, err
		}
		st.version, st.seq, st.nextID = cs.Version, cs.Seq, cs.NextID
		if _, _, err := applyDecoded(st, cs.Ops, nil); err != nil {
			return nil, nil, false, fmt.Errorf("store: loading checkpoint: %w", err)
		}
		return st, nil, true, nil
	}
	ok := false
	defer func() {
		if !ok {
			pf.Close()
		}
	}()
	if string(hdr[:8]) != ckptMagicV2 {
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: bad magic %q", hdr[:8])
	}
	if want, got := binary.LittleEndian.Uint32(hdr[72:76]), crc32.Checksum(hdr[8:72], crcTable); want != got {
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: header CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	logSize := int64(binary.LittleEndian.Uint64(hdr[32:40]))
	pool := pagecache.NewPool(pf, cacheBytes)
	b := newBase(pf, pool, pagecache.NewLog(pool, 1, logSize))

	slotTab, err := b.log.ReadRecord(int64(binary.LittleEndian.Uint64(hdr[40:48])))
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: slot table: %w", err)
	}
	if len(slotTab) < 8 || (len(slotTab)-8)%32 != 0 {
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: slot table of %d bytes", len(slotTab))
	}
	n := int(binary.LittleEndian.Uint64(slotTab[:8]))
	if n != (len(slotTab)-8)/32 {
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: slot table count %d, %d entries", n, (len(slotTab)-8)/32)
	}
	for i := 0; i < n; i++ {
		e := slotTab[8+32*i:]
		id := binary.LittleEndian.Uint64(e[:8])
		st.slots = append(st.slots, id)
		st.recs.Append(slotRec{
			lo:  math.Float64frombits(binary.LittleEndian.Uint64(e[8:16])),
			hi:  math.Float64frombits(binary.LittleEndian.Uint64(e[16:24])),
			ref: int64(binary.LittleEndian.Uint64(e[24:32])),
		})
		st.slotOf[id] = i
	}

	diskTab, err := b.log.ReadRecord(int64(binary.LittleEndian.Uint64(hdr[48:56])))
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: disk table: %w", err)
	}
	if len(diskTab) < 8 || (len(diskTab)-8)%32 != 0 {
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: disk table of %d bytes", len(diskTab))
	}
	for i, nd := 0, (len(diskTab)-8)/32; i < nd; i++ {
		e := diskTab[8+32*i:]
		id := binary.LittleEndian.Uint64(e[:8])
		st.dslots = append(st.dslots, id)
		st.disks = append(st.disks, geom.Circle{
			Center: geom.Point{
				X: math.Float64frombits(binary.LittleEndian.Uint64(e[8:16])),
				Y: math.Float64frombits(binary.LittleEndian.Uint64(e[16:24])),
			},
			Radius: math.Float64frombits(binary.LittleEndian.Uint64(e[24:32])),
		})
		st.dslotOf[id] = i
	}

	tree, err := rtree.Rebuild(int64(binary.LittleEndian.Uint64(hdr[56:64])),
		int(binary.LittleEndian.Uint64(hdr[64:72])),
		rtree.DefaultMinEntries, rtree.DefaultMaxEntries,
		func(ref int64) (bool, []geom.Rect, []int, []int64, error) {
			raw, err := b.log.ReadRecord(ref)
			if err != nil {
				return false, nil, nil, nil, err
			}
			nd, err := pagecache.DecodeNode(raw)
			if err != nil {
				return false, nil, nil, nil, err
			}
			var items []int
			if nd.Leaf {
				items = make([]int, len(nd.Items))
				for i, it := range nd.Items {
					items[i] = int(it)
				}
			}
			return nd.Leaf, nd.Rects, items, nd.Children, nil
		})
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: rebuilding index: %w", err)
	}
	if tree.Len() != n {
		return nil, nil, false, fmt.Errorf("store: corrupt checkpoint: index holds %d entries, slot table %d", tree.Len(), n)
	}

	st.base = b
	st.version = binary.LittleEndian.Uint64(hdr[8:16])
	st.seq = binary.LittleEndian.Uint64(hdr[16:24])
	st.nextID = binary.LittleEndian.Uint64(hdr[24:32])
	ok = true
	return st, tree, true, nil
}
