package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pdf"
	"repro/internal/verify"
)

// The crash-injection suite simulates kill -9 at arbitrary WAL and
// checkpoint boundaries by snapshotting the store's files mid-life and
// mutilating the copies: truncations inside the last record (torn tail),
// bit flips (corruption), stale WALs alongside fresh checkpoints. The
// invariant under every injection: recovery yields exactly the longest
// intact prefix of committed batches — never a partial batch, never a
// corrupt state — and C-PNN answers over the recovered dataset match a
// never-crashed control engine fed the same prefix.

// opScript generates a deterministic valid op sequence. Stable IDs are
// assigned sequentially by the store, so the script can predict them.
type opScript struct {
	rng    *rand.Rand
	nextID uint64
	live   []uint64
}

func newOpScript(seed int64) *opScript {
	return &opScript{rng: rand.New(rand.NewSource(seed)), nextID: 1}
}

func (sc *opScript) batch(maxOps int) []Op {
	n := 1 + sc.rng.Intn(maxOps)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		switch r := sc.rng.Float64(); {
		case r < 0.55 || len(sc.live) == 0:
			ops = append(ops, InsertObject(sc.randomPDF()))
			sc.live = append(sc.live, sc.nextID)
			sc.nextID++
		case r < 0.8:
			ops = append(ops, UpdateObject(sc.pick(), sc.randomPDF()))
		default:
			id := sc.pick()
			ops = append(ops, Delete(id))
			for j, v := range sc.live {
				if v == id {
					sc.live = append(sc.live[:j], sc.live[j+1:]...)
					break
				}
			}
		}
	}
	return ops
}

func (sc *opScript) pick() uint64 { return sc.live[sc.rng.Intn(len(sc.live))] }

func (sc *opScript) randomPDF() pdf.PDF {
	lo := sc.rng.Float64() * 200
	w := 1 + sc.rng.Float64()*8
	if sc.rng.Float64() < 0.3 {
		bins := 2 + sc.rng.Intn(4)
		edges := make([]float64, bins+1)
		weights := make([]float64, bins)
		for b := 0; b <= bins; b++ {
			edges[b] = lo + w*float64(b)/float64(bins)
		}
		for b := range weights {
			weights[b] = 0.2 + sc.rng.Float64()
		}
		return pdf.MustHistogram(edges, weights)
	}
	return pdf.MustUniform(lo, lo+w)
}

// replayBatches generates the same op sequence and applies the first k
// batches to a fresh control store, returning its view.
func controlView(t *testing.T, seed int64, maxOps, k int) *View {
	t.Helper()
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc := newOpScript(seed)
	for i := 0; i < k; i++ {
		if _, err := s.Apply(sc.batch(maxOps)); err != nil {
			t.Fatalf("control batch %d: %v", i, err)
		}
	}
	return s.View()
}

// copyFiles snapshots the store directory (simulating the on-disk state a
// kill -9 leaves behind).
func copyFiles(t *testing.T, from string) string {
	t.Helper()
	to := t.TempDir()
	ents, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return to
}

// sameView asserts two views hold identical object tables and answer C-PNN
// queries identically.
func sameView(t *testing.T, label string, got, want *View) {
	t.Helper()
	if got.Version != want.Version {
		t.Fatalf("%s: version %d, want %d", label, got.Version, want.Version)
	}
	if got.Dataset.Len() != want.Dataset.Len() {
		t.Fatalf("%s: %d objects, want %d", label, got.Dataset.Len(), want.Dataset.Len())
	}
	for slot, id := range want.IDs {
		if got.IDs[slot] != id {
			t.Fatalf("%s: slot %d holds id %d, want %d", label, slot, got.IDs[slot], id)
		}
		g, w := got.Dataset.Object(slot).Region(), want.Dataset.Object(slot).Region()
		if g != w {
			t.Fatalf("%s: object %d region %+v, want %+v", label, id, g, w)
		}
	}
	if len(want.Dataset.Objects()) == 0 {
		return
	}
	ge, err := core.NewEngineWithIndex(got.Dataset, got.Index)
	if err != nil {
		t.Fatal(err)
	}
	we, err := core.NewEngineWithIndex(want.Dataset, want.Index)
	if err != nil {
		t.Fatal(err)
	}
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	dom := want.Dataset.Domain()
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		q := dom.Lo + frac*(dom.Hi-dom.Lo)
		a, err := ge.CPNN(q, c, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := we.CPNN(q, c, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.Candidates) != fmt.Sprint(b.Candidates) {
			t.Fatalf("%s: q=%g recovered answers diverge from control", label, q)
		}
	}
}

func TestCrashTornWALTail(t *testing.T) {
	const seed, batches, maxOps = 42, 10, 6
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := newOpScript(seed)
	walSizes := []uint64{0} // WAL length after batch k
	for i := 0; i < batches; i++ {
		if _, err := s.Apply(sc.batch(maxOps)); err != nil {
			t.Fatal(err)
		}
		walSizes = append(walSizes, s.Stats().WALBytes)
	}
	// Snapshot before closing: this is the kill -9 disk image.
	img := copyFiles(t, dir)
	s.Close()

	rng := rand.New(rand.NewSource(99))
	for k := 1; k <= batches; k++ {
		// Clean cut at a record boundary: exactly k batches survive.
		offsets := []uint64{walSizes[k]}
		// Torn cuts strictly inside record k: only k-1 batches survive.
		for n := 0; n < 3; n++ {
			lo, hi := walSizes[k-1], walSizes[k]
			offsets = append(offsets, lo+1+uint64(rng.Int63n(int64(hi-lo-1))))
		}
		for i, off := range offsets {
			crash := copyFiles(t, img)
			if err := os.Truncate(filepath.Join(crash, walName), int64(off)); err != nil {
				t.Fatal(err)
			}
			re, err := Open(crash, Options{NoSync: true})
			if err != nil {
				t.Fatalf("reopen after cut at %d: %v", off, err)
			}
			survivors := k
			if i > 0 {
				survivors = k - 1 // torn record k must be dropped whole
			}
			sameView(t, fmt.Sprintf("cut@%d", off), re.View(), controlView(t, seed, maxOps, survivors))
			if i > 0 && !re.Stats().TornTailDropped {
				t.Fatalf("cut@%d: torn tail not reported", off)
			}
			re.Close()
		}
	}
}

func TestCrashBitFlipDropsSuffix(t *testing.T) {
	const seed, batches, maxOps = 7, 6, 5
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := newOpScript(seed)
	walSizes := []uint64{0}
	for i := 0; i < batches; i++ {
		if _, err := s.Apply(sc.batch(maxOps)); err != nil {
			t.Fatal(err)
		}
		walSizes = append(walSizes, s.Stats().WALBytes)
	}
	img := copyFiles(t, dir)
	s.Close()

	rng := rand.New(rand.NewSource(1))
	for k := 1; k <= batches; k++ {
		crash := copyFiles(t, img)
		path := filepath.Join(crash, walName)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one bit inside record k: the CRC must reject it and recovery
		// must stop there — batches 1..k-1 survive, k.. are gone.
		off := walSizes[k-1] + uint64(rng.Int63n(int64(walSizes[k]-walSizes[k-1])))
		b[off] ^= 0x10
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(crash, Options{NoSync: true})
		if err != nil {
			t.Fatalf("reopen after flip in record %d: %v", k, err)
		}
		sameView(t, fmt.Sprintf("flip-rec%d", k), re.View(), controlView(t, seed, maxOps, k-1))
		re.Close()
	}
}

func TestCrashDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := newOpScript(3)
	for i := 0; i < 5; i++ {
		if _, err := s.Apply(sc.batch(5)); err != nil {
			t.Fatal(err)
		}
	}
	img := copyFiles(t, dir)
	s.Close()

	// Crash mid-checkpoint: a half-written temp file exists, the rename never
	// happened. Recovery must ignore the debris and replay the full WAL.
	crash := copyFiles(t, img)
	if err := os.WriteFile(filepath.Join(crash, checkpointTmp), []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(crash, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen with checkpoint debris: %v", err)
	}
	sameView(t, "ckpt-debris", re.View(), controlView(t, 3, 5, 5))
	if _, err := os.Stat(filepath.Join(crash, checkpointTmp)); !os.IsNotExist(err) {
		t.Fatal("checkpoint debris not removed")
	}
	re.Close()
}

func TestCrashBetweenCheckpointRenameAndWALReset(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := newOpScript(5)
	for i := 0; i < 4; i++ {
		if _, err := s.Apply(sc.batch(5)); err != nil {
			t.Fatal(err)
		}
	}
	// Save the pre-checkpoint WAL, checkpoint (which resets it), then put the
	// stale WAL back: the disk image of a crash after the rename but before
	// the truncate. Replay must skip every record the checkpoint covers.
	staleWAL, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	img := copyFiles(t, dir)
	s.Close()

	crash := copyFiles(t, img)
	if err := os.WriteFile(filepath.Join(crash, walName), staleWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(crash, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen with stale WAL: %v", err)
	}
	sameView(t, "stale-wal", re.View(), controlView(t, 5, 5, 4))
	// New commits must continue the sequence without tripping on the stale
	// records.
	if _, err := re.Apply([]Op{InsertObject(pdf.MustUniform(0, 1))}); err != nil {
		t.Fatal(err)
	}
	re.Close()
}

func TestCorruptCheckpointIsAnErrorNotDataLoss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := newOpScript(9)
	for i := 0; i < 3; i++ {
		if _, err := s.Apply(sc.batch(4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a data byte inside the checkpoint: Open must refuse loudly rather
	// than silently starting empty.
	path := filepath.Join(dir, checkpointName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Stream offset 20 sits inside the version/seq/nextID header triple —
	// always part of the stream, whatever the ops.
	b[4096+20] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt checkpoint") {
		t.Fatalf("corrupt checkpoint: err = %v", err)
	}

	// A short (page-misaligned) checkpoint — a torn page write — is also
	// detected, via the pager's alignment check.
	if err := os.Truncate(path, int64(len(b)-1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("torn checkpoint page accepted")
	}
}
