package store

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/oracle"
	"repro/internal/pdf"
)

// TestRandomOpsAgainstModel drives a store with seeded random op sequences
// and cross-checks, after every batch, the published view against a plain
// in-memory model (map of stable ID → pdf), and periodically the engine's
// PNN answers over the view against the internal/oracle Monte-Carlo
// evaluator.
func TestRandomOpsAgainstModel(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		s, _ := openTemp(t, Options{NoSync: true})
		rng := rand.New(rand.NewSource(seed))
		sc := newOpScript(seed)
		model := map[uint64]pdf.PDF{}

		for batch := 0; batch < 25; batch++ {
			ops := sc.batch(8)
			res, err := s.Apply(ops)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			// Mirror the batch into the model using the reported IDs.
			for i, op := range ops {
				switch op.Code {
				case OpUniform, OpHist:
					model[res.IDs[i]] = op.PDF
				case OpDelete:
					delete(model, res.IDs[i])
				case OpTruncate:
					model = map[uint64]pdf.PDF{}
				}
			}

			v := s.View()
			if v.Dataset.Len() != len(model) {
				t.Fatalf("seed %d batch %d: view %d objects, model %d",
					seed, batch, v.Dataset.Len(), len(model))
			}
			for slot, id := range v.IDs {
				want, ok := model[id]
				if !ok {
					t.Fatalf("seed %d batch %d: view holds unknown id %d", seed, batch, id)
				}
				if got := v.Dataset.Object(slot).Region(); got != want.Support() {
					t.Fatalf("seed %d batch %d: id %d region %+v, model %+v",
						seed, batch, id, got, want.Support())
				}
			}

			// Every few batches, check exact PNN probabilities against the
			// brute-force oracle sampling the raw pdfs.
			if batch%8 == 7 && v.Dataset.Len() > 0 {
				eng, err := core.NewEngineWithIndex(v.Dataset, v.Index)
				if err != nil {
					t.Fatal(err)
				}
				dom := v.Dataset.Domain()
				q := dom.Lo + rng.Float64()*(dom.Hi-dom.Lo)
				probs, _, err := eng.PNN(q, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				const samples = 30000
				mc := oracle.PNN1D(v.Dataset, q, samples, rand.New(rand.NewSource(seed*1000+int64(batch))))
				for _, pr := range probs {
					// 5σ Monte-Carlo bound plus the engine's integration slack.
					tol := 5*math.Sqrt(pr.P*(1-pr.P)/samples) + 0.01
					if diff := math.Abs(pr.P - mc[pr.ID]); diff > tol {
						t.Fatalf("seed %d batch %d q=%g: object %d engine %g oracle %g (diff %g > %g)",
							seed, batch, q, pr.ID, pr.P, mc[pr.ID], diff, tol)
					}
				}
			}
		}
		s.Close()
	}
}

// TestIncrementalIndexMatchesBulkRebuild runs 50 seeded random op sequences
// and asserts the incrementally-maintained index of the final view answers
// candidate-set queries identically to an index bulk-rebuilt from the same
// dataset — same IDs, same f_min (the acceptance gate for live index
// maintenance).
func TestIncrementalIndexMatchesBulkRebuild(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		s, _ := openTemp(t, Options{NoSync: true})
		sc := newOpScript(seed + 100)
		rng := rand.New(rand.NewSource(seed))
		for batch := 0; batch < 12; batch++ {
			if _, err := s.Apply(sc.batch(5)); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		v := s.View()
		if v.Dataset.Len() == 0 {
			s.Close()
			continue
		}
		bulk, err := filter.NewIndex(v.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		dom := v.Dataset.Domain()
		for probe := 0; probe < 8; probe++ {
			q := dom.Lo + rng.Float64()*(dom.Hi-dom.Lo)
			a, b := v.Index.Candidates(q), bulk.Candidates(q)
			if a.FMin != b.FMin {
				t.Fatalf("seed %d q=%g: incremental fmin %g, bulk %g", seed, q, a.FMin, b.FMin)
			}
			sort.Ints(a.IDs)
			sort.Ints(b.IDs)
			if len(a.IDs) != len(b.IDs) {
				t.Fatalf("seed %d q=%g: %d vs %d candidates", seed, q, len(a.IDs), len(b.IDs))
			}
			for i := range a.IDs {
				if a.IDs[i] != b.IDs[i] {
					t.Fatalf("seed %d q=%g: candidate sets differ: %v vs %v", seed, q, a.IDs, b.IDs)
				}
			}
		}
		s.Close()
	}
}
