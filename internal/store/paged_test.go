package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pager"
	"repro/internal/pdf"
)

// The paged-checkpoint suite extends the crash-injection and oracle coverage
// to the v2 format: overlay views over a disk-backed base must answer
// byte-identically to a fully resident store under arbitrary churn, survive
// crashes at page boundaries of the checkpoint write, and serve datasets
// larger than the page-cache budget.

// TestOverlayVsDenseChurn is the 50-seed equivalence oracle: one store
// checkpoints aggressively (tiny cache budget, so post-checkpoint reads
// fault through the page cache) while a control store never checkpoints
// (everything stays resident). Under identical op scripts their views must
// stay indistinguishable — same tables, same regions, same C-PNN answers —
// and the paged store must still match after a reopen from disk.
func TestOverlayVsDenseChurn(t *testing.T) {
	const batches, maxOps = 12, 6
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			pagedDir := t.TempDir()
			paged, err := Open(pagedDir, Options{NoSync: true, CheckpointBytes: -1, CacheBytes: 1})
			if err != nil {
				t.Fatal(err)
			}
			dense, err := Open(t.TempDir(), Options{NoSync: true, CheckpointBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer dense.Close()

			scP, scD := newOpScript(seed), newOpScript(seed)
			for i := 0; i < batches; i++ {
				if _, err := paged.Apply(scP.batch(maxOps)); err != nil {
					t.Fatalf("paged batch %d: %v", i, err)
				}
				if _, err := dense.Apply(scD.batch(maxOps)); err != nil {
					t.Fatalf("dense batch %d: %v", i, err)
				}
				// Mid-churn flatten: later updates overlay the base, deletes
				// swap lazy slots around, and queries fault payloads back in.
				if i%3 == 2 {
					if err := paged.Checkpoint(); err != nil {
						t.Fatalf("checkpoint after batch %d: %v", i, err)
					}
				}
				sameView(t, fmt.Sprintf("seed %d batch %d", seed, i), paged.View(), dense.View())
			}
			if st := paged.Stats(); st.BaseSlots == 0 && paged.View().Dataset.Len() > 0 {
				t.Fatalf("oracle never exercised lazy slots: %+v", st)
			}
			paged.Close()

			re, err := Open(pagedDir, Options{NoSync: true, CheckpointBytes: -1, CacheBytes: 1})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer re.Close()
			sameView(t, fmt.Sprintf("seed %d reopen", seed), re.View(), dense.View())
		})
	}
}

// TestCrashDuringPagedCheckpointAtPageBoundaries plants prefixes of a real
// v2 checkpoint as the temp-file debris a kill -9 mid-checkpoint leaves,
// truncated at and around page boundaries. Recovery must discard the debris
// and serve the previous checkpoint + WAL.
func TestCrashDuringPagedCheckpointAtPageBoundaries(t *testing.T) {
	const seed, batches, maxOps = 11, 6, 5
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := newOpScript(seed)
	for i := 0; i < batches; i++ {
		if _, err := s.Apply(sc.batch(maxOps)); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	img := copyFiles(t, dir)
	// A complete v2 file to cut prefixes from: checkpoint a copy of the
	// store's final state.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	cuts := []int{0, 1, pager.PageSize, pager.PageSize + 1, 2*pager.PageSize + pager.PageSize/2}
	if n := len(full); n > pager.PageSize {
		cuts = append(cuts, n-pager.PageSize, n-1)
	}
	for _, cut := range cuts {
		if cut > len(full) {
			continue
		}
		crash := copyFiles(t, img)
		if err := os.WriteFile(filepath.Join(crash, checkpointTmp), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(crash, Options{NoSync: true})
		if err != nil {
			t.Fatalf("reopen with %d-byte tmp debris: %v", cut, err)
		}
		sameView(t, fmt.Sprintf("tmp-debris@%d", cut), re.View(), controlView(t, seed, maxOps, batches))
		if _, err := os.Stat(filepath.Join(crash, checkpointTmp)); !os.IsNotExist(err) {
			t.Fatalf("tmp debris (%d bytes) not removed", cut)
		}
		re.Close()
	}
}

// TestLargerThanCacheServes commits a dataset several times the page-cache
// budget, checkpoints it to disk, and verifies queries and further updates
// keep working — with the pool actually evicting, not silently growing.
func TestLargerThanCacheServes(t *testing.T) {
	dir := t.TempDir()
	// Minimum budget: 8 pages = 32 KiB of payload cache.
	s, err := Open(dir, Options{NoSync: true, CheckpointBytes: -1, CacheBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 3000 // histogram payloads; well past 32 KiB encoded
	sc := newOpScript(77)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, InsertObject(sc.randomPDF()))
	}
	if _, err := s.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.BasePages*pager.PageSize <= int(st.CacheBytes) {
		t.Fatalf("dataset (%d pages) not larger than cache budget (%d bytes) — test is vacuous",
			st.BasePages, st.CacheBytes)
	}
	if st.BaseSlots != n || st.OverlaySlots != 0 {
		t.Fatalf("after flatten: %d base, %d overlay slots", st.BaseSlots, st.OverlaySlots)
	}

	// Faulting every object (answer assembly touches payloads) must evict.
	v := s.View()
	for i := 0; i < v.Dataset.Len(); i++ {
		if v.Dataset.Object(i).PDF == nil {
			t.Fatalf("object %d faulted to nil", i)
		}
	}
	st = s.Stats()
	if st.PageCache.Evictions == 0 {
		t.Fatalf("full scan over %d pages never evicted: %+v", st.BasePages, st.PageCache)
	}
	if int64(st.PageCache.ResidentPages)*pager.PageSize > st.CacheBytes {
		t.Fatalf("resident %d pages exceeds budget %d bytes", st.PageCache.ResidentPages, st.CacheBytes)
	}

	// Updates over the cold base still commit and stay durable.
	if _, err := s.Apply([]Op{UpdateObject(1, pdf.MustUniform(0, 1)), Delete(2)}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().OverlaySlots; got != 1 {
		t.Fatalf("overlay depth after update+delete = %d, want 1", got)
	}
}

// TestLegacyV1CheckpointUpgrade opens a store whose disk state is the old
// op-stream checkpoint format, and verifies the first checkpoint after that
// upgrades the file to the paged format.
func TestLegacyV1CheckpointUpgrade(t *testing.T) {
	dir := t.TempDir()
	sc := newOpScript(21)
	ops := make([]Op, 0, 40)
	var nextID uint64 = 1
	for i := 0; i < 40; i++ {
		op := InsertObject(sc.randomPDF())
		op.ID = nextID
		nextID++
		ops = append(ops, op)
	}
	cs := checkpointState{Version: 7, Seq: 7, NextID: nextID, Ops: ops}
	if err := writeCheckpoint(dir, cs); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open v1 checkpoint: %v", err)
	}
	v := s.View()
	if v.Version != 7 || v.Seq != 7 || v.Dataset.Len() != 40 || v.NextID != nextID {
		t.Fatalf("v1 recovery: version=%d seq=%d len=%d nextID=%d", v.Version, v.Seq, v.Dataset.Len(), v.NextID)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	hdr := make([]byte, 8)
	f, err := os.Open(filepath.Join(dir, checkpointName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(hdr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if string(hdr) != ckptMagicV2 {
		t.Fatalf("checkpoint magic after upgrade = %q", hdr)
	}
	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen v2: %v", err)
	}
	defer re.Close()
	if re.View().Dataset.Len() != 40 || re.View().Version != 7 {
		t.Fatalf("v2 reopen: len=%d version=%d", re.View().Dataset.Len(), re.View().Version)
	}
}

// TestPagedHeaderCorruptionDetected flips bytes in the v2 header and in the
// record log; both must fail loudly at open, not load garbage.
func TestPagedHeaderCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := newOpScript(31)
	for i := 0; i < 4; i++ {
		if _, err := s.Apply(sc.batch(5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, checkpointName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int{0, 9, 40, 70} { // magic, version, refs — all header-CRC covered
		b := append([]byte(nil), pristine...)
		b[off] ^= 0xFF
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatalf("header corruption at %d accepted", off)
		}
	}
}
