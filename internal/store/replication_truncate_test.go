package store

import (
	"testing"

	"repro/internal/pdf"
)

func TestReplicatedTruncateBatch(t *testing.T) {
	p, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Seed like cpnn-serve does: truncate + bulk insert in one batch.
	ops := []Op{Truncate(), InsertObject(pdf.MustUniform(1, 2)), InsertObject(pdf.MustUniform(5, 9))}
	if _, err := p.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Op{InsertObject(pdf.MustUniform(50, 60))}); err != nil {
		t.Fatal(err)
	}

	f, err := OpenFollower(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := p.SyncFrom(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Sub.Close()
	if res.Snapshot != nil {
		t.Fatal("unexpected snapshot")
	}
	if _, err := f.ApplyReplicated(res.Records); err != nil {
		t.Fatal(err)
	}
	pv, fv := p.View(), f.View()
	t.Logf("primary: version=%d len=%d; follower: version=%d len=%d", pv.Version, pv.Dataset.Len(), fv.Version, fv.Dataset.Len())
	if fv.Dataset.Len() != pv.Dataset.Len() {
		t.Fatalf("dataset length diverged")
	}
	for i := 0; i < pv.Dataset.Len(); i++ {
		pb, fb := pv.Dataset.Objects()[i].Region(), fv.Dataset.Objects()[i].Region()
		if pb != fb {
			t.Fatalf("object %d: primary %+v follower %+v", i, pb, fb)
		}
	}
	if len(fv.IDs) != len(pv.IDs) {
		t.Fatalf("IDs diverged: %v vs %v", pv.IDs, fv.IDs)
	}
	for i := range pv.IDs {
		if pv.IDs[i] != fv.IDs[i] {
			t.Fatalf("IDs diverged: %v vs %v", pv.IDs, fv.IDs)
		}
	}
}
