package store

import (
	"repro/internal/geom"
)

// The change feed turns the store's commit stream into push notifications:
// every committed group publishes one Delta — the new view plus the list of
// changed objects with their old and new bounding rectangles — to every
// subscriber. Continuous-query layers (internal/monitor) spatially join those
// rectangles against standing queries' influence regions, so only the queries
// a batch can possibly affect ever re-evaluate.
//
// Delivery is lossy under backpressure by design: a subscriber that cannot
// keep up has its stream cut and receives a single Gap delta instead, telling
// it to catch up from the latest view. Deltas are therefore never blocked on
// a slow consumer and the committer never waits.

// ChangeKind classifies one object change of a committed batch.
type ChangeKind uint8

const (
	// ChangeInsert is a newly created object; only NewRect is valid.
	ChangeInsert ChangeKind = iota + 1
	// ChangeUpdate replaced an object's region/pdf; OldRect and NewRect are
	// both valid.
	ChangeUpdate
	// ChangeDelete removed an object; only OldRect is valid.
	ChangeDelete
)

// String implements fmt.Stringer.
func (k ChangeKind) String() string {
	switch k {
	case ChangeInsert:
		return "insert"
	case ChangeUpdate:
		return "update"
	case ChangeDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Change is one changed object of a committed batch, in stable-ID terms with
// the bounding rectangles a spatial join needs. For 1-D objects the rects are
// degenerate in y (RectFromInterval); for 2-D disks they are the disk MBRs.
type Change struct {
	// ID is the object's stable ID.
	ID uint64
	// Kind says whether the object was inserted, updated or deleted.
	Kind ChangeKind
	// TwoD marks a 2-D (disk) object.
	TwoD bool
	// OldRect bounds the object's region before the batch (update/delete).
	OldRect geom.Rect
	// NewRect bounds the object's region after the batch (insert/update).
	NewRect geom.Rect
	// Slot is the object's dense dataset slot right after this op applied,
	// or -1 when none exists (deletes, 2-D objects). It is a best-effort
	// hint for incremental evaluators: later ops — even in the same batch —
	// may re-slot the object, so consumers must validate it against the
	// view they evaluate (e.g. View.IDs[Slot] == ID) before trusting it.
	Slot int
}

// Delta is one committed group's effect, as delivered to Watch subscribers.
type Delta struct {
	// View is the MVCC view published by this commit; View.Version is
	// strictly increasing along one subscription.
	View *View
	// Changes lists the changed objects. Order follows op order; one object
	// touched several times in a group appears once per touch.
	Changes []Change
	// Truncated reports that the group wholesale-replaced the dataset
	// (OpTruncate, e.g. a POST /v1/dataset reload): Changes only covers ops
	// after the truncation and consumers must treat everything as changed.
	Truncated bool
	// Gap reports that this subscriber lagged and deltas were dropped:
	// Changes is nil and the consumer must catch up from Store.View() —
	// drops may continue after the marker was enqueued, so the marker's own
	// View can be older than the last dropped delta, while Store.View() at
	// read time is at least as new as every drop. After a Gap the stream
	// resumes normally; deltas read after the resync whose version the
	// resynced view already covers can be skipped.
	Gap bool
}

// deltaRec accumulates a commit group's changes as its batches stage.
type deltaRec struct {
	changes   []Change
	truncated bool
}

// Sub is one change-feed subscription. Receive deltas from C; Close releases
// the subscription. The channel is closed after Close, and when the store
// itself closes.
type Sub struct {
	st  *Store
	ch  chan Delta
	gap bool // set while the subscriber is lagging (guarded by st.watchMu)
}

// C returns the delta channel. Deltas arrive in version order; a Delta with
// Gap set replaces everything the subscriber was too slow to receive.
func (sub *Sub) C() <-chan Delta { return sub.ch }

// Close cancels the subscription and closes its channel. Safe to call once;
// concurrent with publishes.
func (sub *Sub) Close() {
	sub.st.watchMu.Lock()
	defer sub.st.watchMu.Unlock()
	if _, ok := sub.st.watchers[sub]; ok {
		delete(sub.st.watchers, sub)
		close(sub.ch)
	}
}

// DefaultWatchBuffer is the subscription buffer used when Watch is called
// with a non-positive buffer.
const DefaultWatchBuffer = 64

// Watch subscribes to the store's change feed. Each committed group delivers
// one Delta; a subscriber about to overflow its buffer receives one Gap
// delta in the reserved last slot instead (catch up from Store.View()), and
// further deltas are dropped until it has fully drained. The current view is
// NOT delivered — load s.View() first, then consume deltas; every delta with
// View.Version <= that view's version can be skipped. Buffers below 2 round
// up (the last slot is reserved for the Gap marker).
func (s *Store) Watch(buffer int) (*Sub, error) {
	if buffer <= 0 {
		buffer = DefaultWatchBuffer
	}
	if buffer < 2 {
		buffer = 2
	}
	sub := &Sub{st: s, ch: make(chan Delta, buffer)}
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	// Checked under watchMu — the lock closeWatchers holds — so a Watch
	// racing Close can never register a subscription whose channel nothing
	// would ever close.
	if s.watchersClosed {
		return nil, ErrClosed
	}
	s.watchers[sub] = struct{}{}
	return sub, nil
}

// publish delivers a commit group's delta to every subscriber. It never
// blocks the committer: when a subscription is one slot from full, the delta
// is dropped and a Gap marker lands in that reserved slot, so the consumer
// finds out it lagged as soon as it drains its backlog even if no further
// commit ever happens. Further deltas stay dropped until the consumer has
// fully caught up (empty buffer).
//
// The committer is the only sender and consumers only drain, so the len/cap
// checks are race-free in the conservative direction and a send this
// function decides on never blocks. The monitor's subscriber fan-out
// (monitor.(*Monitor).pushLocked) mirrors this protocol with a bare lagged
// marker instead of a view-carrying Gap; keep the two in sync when touching
// either.
func (s *Store) publish(view *View, rec *deltaRec) {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	for sub := range s.watchers {
		if sub.gap {
			if len(sub.ch) > 0 {
				s.watchDropped.Add(1)
				continue // still draining toward its Gap marker
			}
			sub.gap = false // caught up; resume delivery
		}
		if len(sub.ch) < cap(sub.ch)-1 {
			sub.ch <- Delta{View: view, Changes: rec.changes, Truncated: rec.truncated}
		} else {
			sub.ch <- Delta{View: view, Gap: true} // the reserved slot
			sub.gap = true
			s.watchDropped.Add(1)
		}
	}
}

// closeWatchers closes every live subscription and bars new ones; called
// once the committer has exited, so no publish can race the close.
func (s *Store) closeWatchers() {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	s.watchersClosed = true
	for sub := range s.watchers {
		delete(s.watchers, sub)
		close(sub.ch)
	}
	for sub := range s.logSubs {
		sub.gone = true
		delete(s.logSubs, sub)
		close(sub.ch)
	}
}
