package store

// Replication support: the store's WAL doubles as a replication log. A
// primary serves it through SyncFrom — history from the on-disk log (or a
// full snapshot when a checkpoint already truncated the requested range)
// plus a live tail through a LogSub the committer feeds record by record. A
// follower store (OpenFollower) replays shipped records through
// ApplyReplicated — the exact payload bytes the primary committed, so the
// replayed state is bit-identical by construction — and bootstraps or
// re-bootstraps through InstallSnapshot. Followers write the records to
// their own WAL and take their own checkpoints, so a restarted follower
// resumes from its local position instead of re-shipping history.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Role says which side of replication a store is on.
type Role uint8

const (
	// RolePrimary is a read-write store (the default).
	RolePrimary Role = iota
	// RoleFollower is a read-only replica: Apply is rejected and mutations
	// arrive only through ApplyReplicated / InstallSnapshot.
	RoleFollower
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// ErrFollower is returned by Apply on a follower store; servers surface it
// as a redirect to the primary.
var ErrFollower = errors.New("store: follower is read-only (route writes to the primary)")

// ErrOutOfSync reports a replicated record or snapshot that does not extend
// the follower's log. The follower state is untouched; the caller resyncs
// from View().Seq, typically by reconnecting to the primary.
var ErrOutOfSync = errors.New("store: replicated record out of sync")

// ErrDiverged reports a sync request from a position this store's log has
// never reached: the requester replays a different history (e.g. a data dir
// that followed another primary) and needs a manual re-bootstrap.
var ErrDiverged = errors.New("store: requested sync position is ahead of the log")

// LogRecord is one committed batch as shipped over replication.
type LogRecord struct {
	// Seq is the batch's WAL sequence number; Version the store version its
	// commit published. Both increase by exactly one per record.
	Seq, Version uint64
	// WALOffset is the origin's cumulative appended-WAL-bytes counter
	// (Stats.WALAppendedBytes) just past this record. Followers compare it
	// against the primary's advertised total to measure byte lag.
	WALOffset uint64
	// Payload is the encoded op batch — the exact WAL record bytes after the
	// sequence number. Replaying them decodes to bit-identical state.
	Payload []byte
}

// LogSub is a live subscription to committed log records, created by
// SyncFrom. Unlike the change feed's Gap protocol, a lagging log subscriber
// is simply cut (its channel closes with Lagged reporting true): the reader
// resyncs from the on-disk log at its own pace instead of the committer ever
// blocking or buffering unboundedly.
type LogSub struct {
	st     *Store
	ch     chan LogRecord
	lagged bool // guarded by st.watchMu
	gone   bool // removed from the table (lag, Close, or store close)
}

// C returns the record channel. Records arrive in sequence order with no
// gaps until the channel closes.
func (l *LogSub) C() <-chan LogRecord { return l.ch }

// Lagged reports whether the subscription was cut for falling behind the
// committer. Meaningful once C is closed; false then means the subscription
// (or the store) was closed normally.
func (l *LogSub) Lagged() bool {
	l.st.watchMu.Lock()
	defer l.st.watchMu.Unlock()
	return l.lagged
}

// Close cancels the subscription. Safe to call concurrently with publishes
// and more than once.
func (l *LogSub) Close() {
	l.st.watchMu.Lock()
	defer l.st.watchMu.Unlock()
	if !l.gone {
		l.gone = true
		delete(l.st.logSubs, l)
		close(l.ch)
	}
}

// DefaultLogBuffer is the LogSub channel capacity used when SyncFrom is
// called with a non-positive buffer.
const DefaultLogBuffer = 256

// SyncResult is one consistent replication handoff: everything through Seq
// is covered by Snapshot or Records, everything after arrives on Sub.
type SyncResult struct {
	// Seq and Version are the store position the result was taken at.
	Seq, Version uint64
	// WALAppended is the cumulative appended-bytes counter at that position
	// — the byte-lag yardstick matching LogRecord.WALOffset.
	WALAppended uint64
	// Snapshot, when non-nil, is a full state snapshot (the checkpoint
	// stream) the consumer must install via InstallSnapshot before consuming
	// Sub: the log no longer reaches back to the requested sequence. Records
	// is empty in that case.
	Snapshot []byte
	// Records are the historical records [fromSeq, Seq], contiguous.
	Records []LogRecord
	// Sub streams records committed after Seq. The caller owns it and must
	// Close it when done.
	Sub *LogSub
}

// SyncFrom assembles everything a follower needs to catch up from fromSeq
// (its last applied sequence + 1): either the historical records still in
// the WAL or a full snapshot, plus a live subscription registered atomically
// at the same position — no record is ever missed or duplicated between the
// two. It runs on the committer, serialized with commits and checkpoints.
func (s *Store) SyncFrom(fromSeq uint64, buffer int) (*SyncResult, error) {
	if buffer <= 0 {
		buffer = DefaultLogBuffer
	}
	if buffer < 2 {
		buffer = 2
	}
	args := &syncArgs{fromSeq: fromSeq, buffer: buffer}
	if _, err := s.submit(&request{sync: args, resp: make(chan result, 1)}); err != nil {
		return nil, err
	}
	return args.out, nil
}

// syncArgs carries a SyncFrom request to the committer and its result back.
type syncArgs struct {
	fromSeq uint64
	buffer  int
	out     *SyncResult
}

// handleSync runs on the committer between commit groups, so the on-disk WAL
// is exactly consistent with the in-memory position.
func (s *Store) handleSync(r *request) {
	if s.broken.Load() {
		r.resp <- result{err: ErrBroken}
		return
	}
	a := r.sync
	st := s.st
	from := a.fromSeq
	if from == 0 {
		from = 1
	}
	if from > st.seq+1 {
		r.resp <- result{err: fmt.Errorf("%w: have seq %d, requested %d", ErrDiverged, st.seq, from)}
		return
	}
	out := &SyncResult{Seq: st.seq, Version: st.version, WALAppended: s.walAppended.Load()}
	if from <= st.seq { // history needed
		if recs, ok := s.readLogHistory(from); ok {
			out.Records = recs
		} else {
			// The log no longer covers [from, seq] (a checkpoint truncated
			// it): bootstrap with a full snapshot instead.
			stream, err := s.encodeSnapshot()
			if err != nil {
				r.resp <- result{err: fmt.Errorf("store: encoding snapshot: %w", err)}
				return
			}
			out.Snapshot = stream
		}
	}
	sub := &LogSub{st: s, ch: make(chan LogRecord, a.buffer)}
	s.watchMu.Lock()
	if s.watchersClosed {
		s.watchMu.Unlock()
		r.resp <- result{err: ErrClosed}
		return
	}
	s.logSubs[sub] = struct{}{}
	s.watchMu.Unlock()
	out.Sub = sub
	a.out = out
	r.resp <- result{}
}

// readLogHistory reads the records with seq >= from out of the on-disk WAL.
// ok=false means the log does not cover [from, current] contiguously
// (records before the latest checkpoint are gone) and the caller must fall
// back to a snapshot. Runs on the committer: no append, reset or checkpoint
// can race the read.
func (s *Store) readLogHistory(from uint64) ([]LogRecord, bool) {
	f, err := os.Open(filepath.Join(s.dir, walName))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	recs, _, _, err := scanWAL(f)
	if err != nil {
		return nil, false
	}
	st := s.st
	// Cumulative-bytes base: everything appended before the current WAL
	// content (WAL resets keep the counter running).
	base := s.walAppended.Load() - uint64(s.wal.size)
	out := make([]LogRecord, 0, len(recs))
	next := from
	for _, rec := range recs {
		if rec.Seq < from {
			continue
		}
		if rec.Seq != next {
			return nil, false
		}
		out = append(out, LogRecord{
			Seq:       rec.Seq,
			Version:   st.version - (st.seq - rec.Seq),
			WALOffset: base + uint64(rec.End),
			Payload:   rec.Payload,
		})
		next++
	}
	if next != st.seq+1 {
		return nil, false
	}
	return out, true
}

// publishLog delivers a commit group's records to every log subscriber. A
// subscriber without room for the whole group is cut (lagged) rather than
// ever blocking the committer; it resyncs through SyncFrom. The committer is
// the only sender, so the len/cap check is race-free in the conservative
// direction — mirroring publish's protocol for the change feed.
func (s *Store) publishLog(recs []LogRecord) {
	if len(recs) == 0 {
		return
	}
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	for sub := range s.logSubs {
		if len(sub.ch)+len(recs) > cap(sub.ch) {
			sub.lagged, sub.gone = true, true
			delete(s.logSubs, sub)
			close(sub.ch)
			s.logDropped.Add(1)
			continue
		}
		for _, lr := range recs {
			sub.ch <- lr
		}
	}
}

// cutLogSubs cuts every log subscriber as lagged — after a snapshot install
// the log stream has a hole no subscriber can bridge, so chained consumers
// must resync. Runs on the committer.
func (s *Store) cutLogSubs() {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	for sub := range s.logSubs {
		sub.lagged, sub.gone = true, true
		delete(s.logSubs, sub)
		close(sub.ch)
		s.logDropped.Add(1)
	}
}

// Role returns the store's replication role.
func (s *Store) Role() Role { return s.role }

// OpenFollower opens (creating if necessary) a read-only replica store in
// dir, recovering exactly like Open: latest checkpoint plus intact WAL
// records, torn tail truncated. Mutations arrive only through
// ApplyReplicated and InstallSnapshot; Apply returns ErrFollower. Everything
// else — MVCC views, the change feed, checkpoints, even SyncFrom for chained
// replicas — behaves identically to a primary.
func OpenFollower(dir string, opt Options) (*Store, error) {
	return openStore(dir, opt, RoleFollower)
}

// ApplyReplicated appends primary-committed records to a follower's log and
// replays them: each record is CRC-framed into the local WAL (group
// committed and fsync'd exactly like primary batches), applied through the
// same decoded-ops machinery, and published as a new MVCC view with change
// deltas — so monitors and servers riding the follower's feed work
// unchanged. Records must extend the follower's sequence contiguously; on an
// out-of-sync record the batch's staged prefix still commits durably (those
// records were valid) and the error tells the caller to resync from
// View().Seq+1.
func (s *Store) ApplyReplicated(recs []LogRecord) (ApplyResult, error) {
	if s.role != RoleFollower {
		return ApplyResult{}, fmt.Errorf("store: ApplyReplicated on a %s store", s.role)
	}
	if len(recs) == 0 {
		return ApplyResult{}, fmt.Errorf("%w: empty record batch", ErrInvalidOp)
	}
	return s.submit(&request{rep: recs, resp: make(chan result, 1)})
}

// stageReplicated validates one shipped record against the follower's
// position and applies its decoded ops. The payload bytes are kept verbatim
// for the local WAL, so a follower's log is byte-identical to the stretch of
// the primary's log it replayed.
func (s *Store) stageReplicated(lr LogRecord, rec *deltaRec) (staged, error) {
	st := s.st
	if lr.Seq != st.seq+1 || lr.Version != st.version+1 {
		return staged{}, fmt.Errorf("%w: record seq %d/version %d does not extend seq %d/version %d",
			ErrOutOfSync, lr.Seq, lr.Version, st.seq, st.version)
	}
	if len(lr.Payload)+8 > maxWALRecord {
		return staged{}, fmt.Errorf("%w: replicated record of %d bytes exceeds the %d limit",
			ErrInvalidOp, len(lr.Payload)+8, maxWALRecord)
	}
	decoded, err := decodeOps(lr.Payload)
	if err != nil {
		return staged{}, fmt.Errorf("%w: %v", ErrOutOfSync, err)
	}
	edits, rebuild, err := applyDecoded(st, decoded, rec)
	if err != nil {
		// The state mutated partially — unrecoverable in-process, exactly
		// like a primary-side internal apply failure.
		s.broken.Store(true)
		return staged{}, fmt.Errorf("store: replicated apply failure: %w", err)
	}
	st.seq, st.version = lr.Seq, lr.Version
	st.nextID = maxAssigned(st.nextID, decoded)
	return staged{
		seq:     lr.Seq,
		version: lr.Version,
		payload: lr.Payload,
		edits:   edits,
		rebuild: rebuild,
		nops:    len(decoded),
	}, nil
}

// InstallSnapshot wholesale-replaces a follower's state with a primary
// snapshot (SyncResult.Snapshot): the stream is decoded and validated off to
// the side, persisted as the local checkpoint (tmp+fsync+rename — a crash on
// either side of the rename recovers a consistent store), the local WAL is
// reset, and one view with a Truncated delta is published so every derived
// consumer rebuilds. Snapshots older than the local version are rejected
// with ErrOutOfSync — replication never moves a follower backwards.
func (s *Store) InstallSnapshot(stream []byte) error {
	if s.role != RoleFollower {
		return fmt.Errorf("store: InstallSnapshot on a %s store", s.role)
	}
	_, err := s.submit(&request{install: stream, resp: make(chan result, 1)})
	return err
}

// handleInstall runs on the committer with exclusive state access.
func (s *Store) handleInstall(r *request) {
	if s.broken.Load() {
		r.resp <- result{err: ErrBroken}
		return
	}
	cs, err := decodeCheckpoint(r.install)
	if err != nil {
		r.resp <- result{err: fmt.Errorf("%w: %v", ErrOutOfSync, err)}
		return
	}
	if cs.Version < s.st.version {
		r.resp <- result{err: fmt.Errorf("%w: snapshot version %d behind local %d",
			ErrOutOfSync, cs.Version, s.st.version)}
		return
	}
	st := newState()
	st.version, st.seq, st.nextID = cs.Version, cs.Seq, cs.NextID
	if _, _, err := applyDecoded(st, cs.Ops, nil); err != nil {
		// st is a scratch state; the live one is untouched.
		r.resp <- result{err: fmt.Errorf("%w: loading snapshot: %v", ErrOutOfSync, err)}
		return
	}
	if err := writeCheckpoint(s.dir, cs); err != nil {
		r.resp <- result{err: err}
		return
	}
	if err := s.wal.reset(); err != nil {
		// The new checkpoint is already live on disk; stale WAL records all
		// have seq <= cs.Seq and recovery would skip them, but the in-memory
		// bookkeeping no longer matches the file — refuse further mutations.
		s.broken.Store(true)
		r.resp <- result{err: err}
		return
	}
	s.st = st
	s.baseRef.Store(nil)
	s.walSize.Store(0)
	s.ckptSeq.Store(cs.Seq)
	s.checkpoints.Add(1)
	view, err := s.materialize(nil, nil, nil, true)
	if err != nil {
		s.broken.Store(true)
		r.resp <- result{err: fmt.Errorf("store: publishing snapshot view: %w", err)}
		return
	}
	s.view.Store(view)
	s.publish(view, &deltaRec{truncated: true})
	// A snapshot is a hole no log subscriber can bridge; chained consumers
	// must resync.
	s.cutLogSubs()
	r.resp <- result{res: ApplyResult{Version: cs.Version, Seq: cs.Seq}}
}
