package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/pdf"
)

func openFollowerTemp(t *testing.T, opt Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenFollower(dir, opt)
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	return s, dir
}

// syncInto catches f up to p in one shot: SyncFrom at the follower's
// position, install the snapshot if one came back, replay the history
// records, and close the live subscription.
func syncInto(t *testing.T, p, f *Store) *SyncResult {
	t.Helper()
	res, err := p.SyncFrom(f.View().Seq+1, 64)
	if err != nil {
		t.Fatalf("SyncFrom: %v", err)
	}
	defer res.Sub.Close()
	if res.Snapshot != nil {
		if err := f.InstallSnapshot(res.Snapshot); err != nil {
			t.Fatalf("InstallSnapshot: %v", err)
		}
	}
	if len(res.Records) > 0 {
		if _, err := f.ApplyReplicated(res.Records); err != nil {
			t.Fatalf("ApplyReplicated: %v", err)
		}
	}
	return res
}

// assertStoresEqual proves two stores hold bit-identical durable state by
// checkpointing both and comparing the checkpoint files byte for byte (they
// embed version, seq, nextID and every object's exact encoding).
func assertStoresEqual(t *testing.T, a *Store, dirA string, b *Store, dirB string) {
	t.Helper()
	if err := a.Checkpoint(); err != nil {
		t.Fatalf("checkpoint a: %v", err)
	}
	if err := b.Checkpoint(); err != nil {
		t.Fatalf("checkpoint b: %v", err)
	}
	ba, err := os.ReadFile(filepath.Join(dirA, checkpointName))
	if err != nil {
		t.Fatalf("read checkpoint a: %v", err)
	}
	bb, err := os.ReadFile(filepath.Join(dirB, checkpointName))
	if err != nil {
		t.Fatalf("read checkpoint b: %v", err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatalf("checkpoint streams differ: %d vs %d bytes (version %d/%d)",
			len(ba), len(bb), a.View().Version, b.View().Version)
	}
}

func TestReplicationHistoryCatchUp(t *testing.T) {
	p, pdir := openTemp(t, Options{})
	defer p.Close()
	for i := 0; i < 5; i++ {
		mustApply(t, p,
			InsertObject(pdf.MustUniform(float64(i*10), float64(i*10+5))),
			InsertObject(pdf.MustHistogram([]float64{0, 1, 2}, []float64{1, float64(i + 1)})),
			InsertDisk(geom.Circle{Center: geom.Point{X: float64(i), Y: 2}, Radius: 1}),
		)
	}
	mustApply(t, p, Delete(1), UpdateObject(2, pdf.MustUniform(7, 9)))

	f, fdir := openFollowerTemp(t, Options{})
	defer f.Close()
	res := syncInto(t, p, f)
	if res.Snapshot != nil {
		t.Fatalf("expected pure history catch-up, got a snapshot")
	}
	if len(res.Records) != 6 {
		t.Fatalf("records = %d, want 6", len(res.Records))
	}
	// Offsets are cumulative and the last one meets the advertised total.
	var prev uint64
	for i, r := range res.Records {
		if r.WALOffset <= prev {
			t.Fatalf("records[%d].WALOffset = %d not increasing past %d", i, r.WALOffset, prev)
		}
		prev = r.WALOffset
	}
	if prev != res.WALAppended {
		t.Fatalf("last WALOffset %d != WALAppended %d", prev, res.WALAppended)
	}
	if got := f.View(); got.Seq != res.Seq || got.Version != res.Version {
		t.Fatalf("follower at seq %d version %d, want %d/%d", got.Seq, got.Version, res.Seq, res.Version)
	}
	assertStoresEqual(t, p, pdir, f, fdir)
}

func TestReplicationLiveTail(t *testing.T) {
	p, pdir := openTemp(t, Options{})
	defer p.Close()
	f, fdir := openFollowerTemp(t, Options{})
	defer f.Close()

	res, err := p.SyncFrom(1, 64)
	if err != nil {
		t.Fatalf("SyncFrom: %v", err)
	}
	defer res.Sub.Close()
	if len(res.Records) != 0 || res.Snapshot != nil {
		t.Fatalf("fresh primary should have nothing to ship: %+v", res)
	}

	for i := 0; i < 10; i++ {
		mustApply(t, p, InsertObject(pdf.MustUniform(float64(i), float64(i+1))))
	}
	got := 0
	for rec := range res.Sub.C() {
		if _, err := f.ApplyReplicated([]LogRecord{rec}); err != nil {
			t.Fatalf("ApplyReplicated: %v", err)
		}
		if got++; got == 10 {
			break
		}
	}
	if fv := f.View(); fv.Seq != 10 || fv.Dataset.Len() != 10 {
		t.Fatalf("follower seq %d, %d objects", fv.Seq, fv.Dataset.Len())
	}
	assertStoresEqual(t, p, pdir, f, fdir)
}

func TestReplicationSnapshotBootstrap(t *testing.T) {
	p, pdir := openTemp(t, Options{})
	defer p.Close()
	for i := 0; i < 4; i++ {
		mustApply(t, p, InsertObject(pdf.MustUniform(float64(i), float64(i+2))))
	}
	// The checkpoint resets the WAL: history before it is gone.
	if err := p.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	mustApply(t, p, InsertDisk(geom.Circle{Center: geom.Point{X: 1, Y: 1}, Radius: 3}))

	f, fdir := openFollowerTemp(t, Options{})
	defer f.Close()
	res, err := p.SyncFrom(1, 64)
	if err != nil {
		t.Fatalf("SyncFrom: %v", err)
	}
	defer res.Sub.Close()
	if res.Snapshot == nil {
		t.Fatalf("expected snapshot bootstrap after checkpoint truncated history")
	}
	if len(res.Records) != 0 {
		t.Fatalf("snapshot result should carry no records, got %d", len(res.Records))
	}
	if err := f.InstallSnapshot(res.Snapshot); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if fv := f.View(); fv.Seq != res.Seq || fv.Dataset.Len() != 4 || len(fv.Disks) != 1 {
		t.Fatalf("after install: seq %d, %d objects, %d disks", fv.Seq, fv.Dataset.Len(), len(fv.Disks))
	}
	// The live tail continues past the snapshot.
	mustApply(t, p, InsertObject(pdf.MustUniform(50, 60)))
	rec := <-res.Sub.C()
	if _, err := f.ApplyReplicated([]LogRecord{rec}); err != nil {
		t.Fatalf("ApplyReplicated after snapshot: %v", err)
	}
	assertStoresEqual(t, p, pdir, f, fdir)
}

func TestFollowerRoleEnforcement(t *testing.T) {
	p, _ := openTemp(t, Options{})
	defer p.Close()
	f, _ := openFollowerTemp(t, Options{})
	defer f.Close()

	if p.Role() != RolePrimary || f.Role() != RoleFollower {
		t.Fatalf("roles: %v / %v", p.Role(), f.Role())
	}
	if _, err := f.Apply([]Op{InsertObject(pdf.MustUniform(0, 1))}); !errors.Is(err, ErrFollower) {
		t.Fatalf("follower Apply err = %v, want ErrFollower", err)
	}
	if _, err := p.ApplyReplicated([]LogRecord{{Seq: 1, Version: 1}}); err == nil {
		t.Fatalf("primary ApplyReplicated should be rejected")
	}
	if err := p.InstallSnapshot(nil); err == nil {
		t.Fatalf("primary InstallSnapshot should be rejected")
	}
}

func TestApplyReplicatedOutOfSync(t *testing.T) {
	p, _ := openTemp(t, Options{})
	defer p.Close()
	f, _ := openFollowerTemp(t, Options{})
	defer f.Close()

	res, err := p.SyncFrom(1, 64)
	if err != nil {
		t.Fatalf("SyncFrom: %v", err)
	}
	defer res.Sub.Close()
	mustApply(t, p, InsertObject(pdf.MustUniform(0, 1)))
	mustApply(t, p, InsertObject(pdf.MustUniform(2, 3)))
	r1, r2 := <-res.Sub.C(), <-res.Sub.C()

	// A gap (r2 without r1) must be rejected without mutating anything.
	if _, err := f.ApplyReplicated([]LogRecord{r2}); !errors.Is(err, ErrOutOfSync) {
		t.Fatalf("gap err = %v, want ErrOutOfSync", err)
	}
	if f.View().Seq != 0 {
		t.Fatalf("follower mutated by rejected record")
	}

	// A valid prefix before a bad record commits durably; the error and the
	// reported position tell the caller where to resync from.
	got, err := f.ApplyReplicated([]LogRecord{r1, r2, r2})
	if !errors.Is(err, ErrOutOfSync) {
		t.Fatalf("partial err = %v, want ErrOutOfSync", err)
	}
	if got.Seq != 2 || f.View().Seq != 2 {
		t.Fatalf("prefix position = %d/%d, want 2/2", got.Seq, f.View().Seq)
	}
}

func TestInstallSnapshotRejectsBackwards(t *testing.T) {
	p, _ := openTemp(t, Options{})
	defer p.Close()
	for i := 0; i < 3; i++ {
		mustApply(t, p, InsertObject(pdf.MustUniform(float64(i), float64(i+1))))
	}
	old, err := p.SyncFrom(1, 8)
	if err != nil {
		t.Fatalf("SyncFrom: %v", err)
	}
	old.Sub.Close()

	f, _ := openFollowerTemp(t, Options{})
	defer f.Close()
	res := syncInto(t, p, f) // follower now at seq 3
	if res.Seq != 3 {
		t.Fatalf("sync seq = %d", res.Seq)
	}
	// Regress the primary's snapshot by checkpointing an older logical state:
	// simplest is to hand the follower a snapshot taken at version 0.
	stream, err := encodeCheckpoint(checkpointState{Version: 1, Seq: 1, NextID: 2})
	if err != nil {
		t.Fatalf("encodeCheckpoint: %v", err)
	}
	if err := f.InstallSnapshot(stream); !errors.Is(err, ErrOutOfSync) {
		t.Fatalf("backwards install err = %v, want ErrOutOfSync", err)
	}
	if f.View().Seq != 3 {
		t.Fatalf("backwards install mutated the follower")
	}
}

func TestSyncFromDiverged(t *testing.T) {
	p, _ := openTemp(t, Options{})
	defer p.Close()
	mustApply(t, p, InsertObject(pdf.MustUniform(0, 1)))
	if _, err := p.SyncFrom(10, 8); !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

func TestFollowerResumesFromLocalWAL(t *testing.T) {
	p, pdir := openTemp(t, Options{})
	defer p.Close()
	fdir := t.TempDir()
	f, err := OpenFollower(fdir, Options{})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	for i := 0; i < 6; i++ {
		mustApply(t, p, InsertObject(pdf.MustUniform(float64(i), float64(i+1))))
	}
	syncInto(t, p, f)
	if err := f.Close(); err != nil {
		t.Fatalf("close follower: %v", err)
	}

	// More primary history while the follower is down.
	mustApply(t, p, InsertObject(pdf.MustUniform(100, 101)), Delete(2))

	f, err = OpenFollower(fdir, Options{})
	if err != nil {
		t.Fatalf("reopen follower: %v", err)
	}
	defer f.Close()
	if f.View().Seq != 6 {
		t.Fatalf("reopened follower at seq %d, want 6 (local WAL resume)", f.View().Seq)
	}
	res := syncInto(t, p, f)
	if res.Snapshot != nil || len(res.Records) != 1 {
		t.Fatalf("resume should ship exactly the missing record, got snap=%v n=%d",
			res.Snapshot != nil, len(res.Records))
	}
	assertStoresEqual(t, p, pdir, f, fdir)
}

func TestLogSubLagIsCut(t *testing.T) {
	p, _ := openTemp(t, Options{})
	defer p.Close()
	res, err := p.SyncFrom(1, 2)
	if err != nil {
		t.Fatalf("SyncFrom: %v", err)
	}
	for i := 0; i < 8; i++ {
		mustApply(t, p, InsertObject(pdf.MustUniform(float64(i), float64(i+1))))
	}
	// Drain whatever made it; the channel must close with Lagged set.
	n := 0
	for range res.Sub.C() {
		n++
	}
	if n >= 8 {
		t.Fatalf("received all %d records through a 2-slot buffer", n)
	}
	if !res.Sub.Lagged() {
		t.Fatalf("cut subscription does not report Lagged")
	}
	if p.Stats().LogDropped == 0 {
		t.Fatalf("LogDropped not counted")
	}
	// A fresh sync picks up from wherever the reader got to.
	res2, err := p.SyncFrom(uint64(n)+1, 64)
	if err != nil {
		t.Fatalf("re-sync: %v", err)
	}
	defer res2.Sub.Close()
	if len(res2.Records) != 8-n {
		t.Fatalf("re-sync shipped %d records, want %d", len(res2.Records), 8-n)
	}
}

func TestChainedFollowerSync(t *testing.T) {
	// A follower can itself serve SyncFrom — the basis for chained replicas.
	p, pdir := openTemp(t, Options{})
	defer p.Close()
	f1, _ := openFollowerTemp(t, Options{})
	defer f1.Close()
	f2, f2dir := openFollowerTemp(t, Options{})
	defer f2.Close()

	for i := 0; i < 4; i++ {
		mustApply(t, p, InsertObject(pdf.MustUniform(float64(i), float64(i+1))))
	}
	syncInto(t, p, f1)
	syncInto(t, f1, f2)
	assertStoresEqual(t, p, pdir, f2, f2dir)
}

func TestInstallSnapshotCutsLogSubs(t *testing.T) {
	p, _ := openTemp(t, Options{})
	defer p.Close()
	for i := 0; i < 3; i++ {
		mustApply(t, p, InsertObject(pdf.MustUniform(float64(i), float64(i+1))))
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	f, _ := openFollowerTemp(t, Options{})
	defer f.Close()
	// A downstream subscriber attached to the follower before the snapshot
	// lands must be cut — snapshots are holes a log stream cannot express.
	down, err := f.SyncFrom(1, 8)
	if err != nil {
		t.Fatalf("follower SyncFrom: %v", err)
	}
	res, err := p.SyncFrom(1, 8)
	if err != nil {
		t.Fatalf("SyncFrom: %v", err)
	}
	defer res.Sub.Close()
	if err := f.InstallSnapshot(res.Snapshot); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if _, ok := <-down.Sub.C(); ok {
		t.Fatalf("downstream sub still open across a snapshot install")
	}
	if !down.Sub.Lagged() {
		t.Fatalf("downstream sub not marked lagged after snapshot install")
	}
}
