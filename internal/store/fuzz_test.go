package store

import (
	"bytes"
	"testing"

	"repro/internal/geom"
	"repro/internal/pdf"
)

func seedOps() []Op {
	return []Op{
		Truncate(),
		{Code: OpUniform, ID: 1, PDF: pdf.MustUniform(0, 10)},
		{Code: OpHist, ID: 2, PDF: pdf.MustHistogram([]float64{0, 1, 2}, []float64{1, 3})},
		{Code: OpDisk, ID: 3, Disk: geom.Circle{Center: geom.Point{X: 1, Y: 2}, Radius: 0.5}},
		Delete(2),
	}
}

// FuzzWALScan feeds arbitrary bytes to the WAL scanner: it must never
// panic, the reported valid prefix must be within the input, and
// re-scanning exactly that prefix must be clean (no tear) and yield the
// same records — the property recovery relies on when it truncates a torn
// tail and keeps appending.
func FuzzWALScan(f *testing.F) {
	payload, err := encodeOps(seedOps())
	if err != nil {
		f.Fatal(err)
	}
	rec := appendWALRecord(nil, 1, payload)
	f.Add(rec)
	f.Add(append(appendWALRecord(nil, 1, payload), appendWALRecord(nil, 2, payload)...))
	f.Add(rec[:len(rec)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // absurd length

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, torn, err := scanWAL(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("scanWAL returned io error on a byte reader: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if !torn && valid != int64(len(data)) {
			t.Fatalf("clean scan consumed %d of %d bytes", valid, len(data))
		}
		again, valid2, torn2, _ := scanWAL(bytes.NewReader(data[:valid]))
		if torn2 || valid2 != valid || len(again) != len(recs) {
			t.Fatalf("rescan of valid prefix: torn=%v valid=%d records=%d (want %d records at %d)",
				torn2, valid2, len(again), len(recs), valid)
		}
	})
}

// FuzzDecodeOps feeds arbitrary bytes to the op-batch parser: no panics,
// and anything that decodes must survive an encode→decode round trip with
// identical wire bytes (the canonical-encoding property checkpoints assume).
func FuzzDecodeOps(f *testing.F) {
	if payload, err := encodeOps(seedOps()); err == nil {
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, byte(OpHist)})

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := decodeOps(data)
		if err != nil {
			return
		}
		enc, err := encodeOps(ops)
		if err != nil {
			t.Fatalf("re-encoding decoded ops: %v", err)
		}
		back, err := decodeOps(enc)
		if err != nil {
			t.Fatalf("decoding re-encoded ops: %v", err)
		}
		if len(back) != len(ops) {
			t.Fatalf("round trip: %d ops became %d", len(ops), len(back))
		}
	})
}
