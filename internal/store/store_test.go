package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pdf"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

func mustApply(t *testing.T, s *Store, ops ...Op) ApplyResult {
	t.Helper()
	res, err := s.Apply(ops)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return res
}

func openTemp(t *testing.T, opt Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, dir
}

func TestInsertUpdateDeleteLifecycle(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()

	res := mustApply(t, s,
		InsertObject(pdf.MustUniform(0, 10)),
		InsertObject(pdf.MustUniform(5, 15)),
		InsertObject(pdf.MustHistogram([]float64{20, 21, 22}, []float64{1, 3})),
	)
	if len(res.IDs) != 3 || res.Version != 1 {
		t.Fatalf("insert result = %+v", res)
	}
	a, b, c := res.IDs[0], res.IDs[1], res.IDs[2]
	if a == 0 || b == 0 || c == 0 || a == b || b == c {
		t.Fatalf("assigned ids = %v", res.IDs)
	}
	v := s.View()
	if v.Dataset.Len() != 3 || v.Version != 1 {
		t.Fatalf("view: %d objects version %d", v.Dataset.Len(), v.Version)
	}

	// Update b, delete a.
	res = mustApply(t, s, UpdateObject(b, pdf.MustUniform(100, 110)), Delete(a))
	if res.Version != 2 {
		t.Fatalf("version = %d, want 2", res.Version)
	}
	v = s.View()
	if v.Dataset.Len() != 2 {
		t.Fatalf("after delete: %d objects", v.Dataset.Len())
	}
	// The updated region must be visible through the view.
	found := false
	for slot, id := range v.IDs {
		if id == b {
			found = true
			sup := v.Dataset.Object(slot).Region()
			if sup.Lo != 100 || sup.Hi != 110 {
				t.Fatalf("object %d region = %+v after update", b, sup)
			}
		}
		if id == a {
			t.Fatalf("deleted object %d still in view", a)
		}
	}
	if !found {
		t.Fatalf("object %d missing from view", b)
	}
}

func TestUnknownIDAndInvalidOps(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	mustApply(t, s, InsertObject(pdf.MustUniform(0, 1)))

	if _, err := s.Apply([]Op{Delete(999)}); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("delete unknown: %v", err)
	}
	if _, err := s.Apply([]Op{UpdateObject(999, pdf.MustUniform(0, 1))}); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("update unknown: %v", err)
	}
	if _, err := s.Apply(nil); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := s.Apply([]Op{{Code: OpUniform}}); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("nil pdf: %v", err)
	}
	if _, err := s.Apply([]Op{InsertDisk(geom.Circle{Radius: -1})}); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("bad disk: %v", err)
	}
	// A failed batch must not have mutated anything.
	if v := s.View(); v.Dataset.Len() != 1 || v.Version != 1 {
		t.Fatalf("state leaked from failed batches: %d objects version %d", v.Dataset.Len(), v.Version)
	}
}

func TestBatchAtomicity(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	res := mustApply(t, s, InsertObject(pdf.MustUniform(0, 1)))

	// Second op is invalid: the whole batch must be rejected.
	_, err := s.Apply([]Op{
		InsertObject(pdf.MustUniform(5, 6)),
		Delete(res.IDs[0] + 100),
	})
	if !errors.Is(err, ErrUnknownID) {
		t.Fatalf("err = %v", err)
	}
	if v := s.View(); v.Dataset.Len() != 1 {
		t.Fatalf("partial batch applied: %d objects", v.Dataset.Len())
	}
}

func TestFamilyMismatch(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	res := mustApply(t, s,
		InsertObject(pdf.MustUniform(0, 1)),
		InsertDisk(geom.Circle{Center: geom.Point{X: 1, Y: 2}, Radius: 3}),
	)
	oneD, twoD := res.IDs[0], res.IDs[1]
	if _, err := s.Apply([]Op{UpdateDisk(oneD, geom.Circle{Radius: 1})}); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("2-D payload on 1-D id: %v", err)
	}
	if _, err := s.Apply([]Op{UpdateObject(twoD, pdf.MustUniform(0, 1))}); !errors.Is(err, ErrInvalidOp) {
		t.Fatalf("1-D payload on 2-D id: %v", err)
	}
	// Deleting across families works (delete is family-agnostic).
	mustApply(t, s, Delete(twoD))
	if v := s.View(); len(v.Disks) != 0 || v.Dataset.Len() != 1 {
		t.Fatalf("after disk delete: %d disks %d objects", len(v.Disks), v.Dataset.Len())
	}
}

func TestTruncateAndDatasetOps(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	mustApply(t, s,
		InsertObject(pdf.MustUniform(0, 1)),
		InsertDisk(geom.Circle{Center: geom.Point{X: 0, Y: 0}, Radius: 1}),
	)

	ds := mustDataset(t, 10, 7)
	ops, err := DatasetOps(ds)
	if err != nil {
		t.Fatalf("DatasetOps: %v", err)
	}
	res := mustApply(t, s, ops...)
	v := s.View()
	if v.Dataset.Len() != 10 || len(v.Disks) != 0 {
		t.Fatalf("after reload: %d objects %d disks", v.Dataset.Len(), len(v.Disks))
	}
	if res.Version != 2 {
		t.Fatalf("version = %d", res.Version)
	}
	// Stable IDs keep growing: a reload never reuses IDs.
	for _, id := range v.IDs {
		if id <= 2 {
			t.Fatalf("reload reused stable id %d", id)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := mustApply(t, s,
		InsertObject(pdf.MustUniform(3, 9)),
		InsertObject(pdf.MustHistogram([]float64{0, 1, 2, 3}, []float64{1, 2, 1})),
		InsertDisk(geom.Circle{Center: geom.Point{X: 4, Y: 5}, Radius: 2}),
	)
	mustApply(t, s, UpdateObject(res.IDs[0], pdf.MustUniform(30, 90)))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	v := re.View()
	if v.Version != 2 || v.Dataset.Len() != 2 || len(v.Disks) != 1 {
		t.Fatalf("recovered view: version %d, %d objects, %d disks", v.Version, v.Dataset.Len(), len(v.Disks))
	}
	slot := slotOfID(t, v, res.IDs[0])
	if sup := v.Dataset.Object(slot).Region(); sup.Lo != 30 || sup.Hi != 90 {
		t.Fatalf("recovered region %+v", sup)
	}
	if v.Disks[0].Region.Center.X != 4 || v.Disks[0].Region.Radius != 2 {
		t.Fatalf("recovered disk %+v", v.Disks[0])
	}

	// Versions stay monotonic across the restart.
	res2 := mustApply(t, re, InsertObject(pdf.MustUniform(0, 1)))
	if res2.Version != 3 {
		t.Fatalf("post-restart version = %d, want 3", res2.Version)
	}
}

func TestCheckpointThenReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := mustApply(t, s,
		InsertObject(pdf.MustUniform(0, 10)),
		InsertObject(pdf.MustUniform(20, 30)),
	).IDs
	if got := s.Stats().WALRecords; got != 1 {
		t.Fatalf("WALRecords = %d before checkpoint, want 1", got)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := s.Stats().WALBytes; got != 0 {
		t.Fatalf("WAL not reset after checkpoint: %d bytes", got)
	}
	if got := s.Stats().WALRecords; got != 0 {
		t.Fatalf("WALRecords = %d after checkpoint, want 0", got)
	}
	// Post-checkpoint mutations land in the (fresh) WAL.
	mustApply(t, s, Delete(ids[0]))
	if got := s.Stats().WALRecords; got != 1 {
		t.Fatalf("WALRecords = %d after post-checkpoint batch, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	v := re.View()
	// Two committed batches (insert pair, delete); checkpoints do not bump.
	if v.Version != 2 || v.Dataset.Len() != 1 {
		t.Fatalf("recovered: version %d, %d objects", v.Version, v.Dataset.Len())
	}
	if v.IDs[0] != ids[1] {
		t.Fatalf("survivor id = %d, want %d", v.IDs[0], ids[1])
	}
	// The reopened store recovers the checkpoint's seq, so the replayed WAL
	// tail is counted from there.
	if got := re.Stats().WALRecords; got != 1 {
		t.Fatalf("WALRecords = %d after reopen, want 1", got)
	}
}

func TestConcurrentApplyGroupCommit(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lo := float64(w*1000 + i)
				if _, err := s.Apply([]Op{InsertObject(pdf.MustUniform(lo, lo+1))}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v := s.View()
	if v.Dataset.Len() != writers*perWriter {
		t.Fatalf("%d objects, want %d", v.Dataset.Len(), writers*perWriter)
	}
	if v.Version != writers*perWriter {
		t.Fatalf("version %d, want %d", v.Version, writers*perWriter)
	}
	st := s.Stats()
	if st.OpsApplied != writers*perWriter {
		t.Fatalf("ops applied %d", st.OpsApplied)
	}
	// Stable IDs must be unique.
	seen := map[uint64]bool{}
	for _, id := range v.IDs {
		if seen[id] {
			t.Fatalf("duplicate stable id %d", id)
		}
		seen[id] = true
	}
}

func TestDirLockExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second opener: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the lock; reopening succeeds.
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	re.Close()
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s, _ := openTemp(t, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{InsertObject(pdf.MustUniform(0, 1))}); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close: %v", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	s, dir := openTemp(t, Options{CheckpointBytes: 256})
	defer s.Close()
	for i := 0; i < 20; i++ {
		mustApply(t, s, InsertObject(pdf.MustUniform(float64(i), float64(i)+1)))
	}
	if st := s.Stats(); st.Checkpoints == 0 {
		t.Fatalf("no automatic checkpoint after %d bytes appended", st.WALAppendedBytes)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointName)); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
}

// TestViewImmutableUnderWrites holds an old view across commits and verifies
// its dataset and index answers do not change (MVCC isolation).
func TestViewImmutableUnderWrites(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	var ops []Op
	for i := 0; i < 200; i++ {
		lo := rng.Float64() * 100
		ops = append(ops, InsertObject(pdf.MustUniform(lo, lo+1+rng.Float64())))
	}
	mustApply(t, s, ops...)

	old := s.View()
	oldRes := old.Index.Candidates(50)
	oldLen := old.Dataset.Len()

	// Heavy churn: delete half, insert new, update some.
	for i := 0; i < 50; i++ {
		id := old.IDs[rng.Intn(len(old.IDs))]
		if _, ok := lookup(old, id); ok {
			s.Apply([]Op{Delete(id)}) // may fail if already deleted; ignore
		}
		lo := rng.Float64() * 100
		mustApply(t, s, InsertObject(pdf.MustUniform(lo, lo+1)))
	}

	if old.Dataset.Len() != oldLen {
		t.Fatal("old view dataset changed size")
	}
	again := old.Index.Candidates(50)
	if fmt.Sprint(again) != fmt.Sprint(oldRes) {
		t.Fatalf("old view candidates changed: %v -> %v", oldRes, again)
	}
}

// TestEngineOverView runs a real C-PNN through an engine wrapped around a
// store view and cross-checks against an engine built from scratch.
func TestEngineOverView(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	rng := rand.New(rand.NewSource(11))
	var ops []Op
	for i := 0; i < 150; i++ {
		lo := rng.Float64() * 500
		ops = append(ops, InsertObject(pdf.MustUniform(lo, lo+2+5*rng.Float64())))
	}
	res := mustApply(t, s, ops...)
	mustApply(t, s, Delete(res.IDs[3]), Delete(res.IDs[77]),
		UpdateObject(res.IDs[10], pdf.MustUniform(250, 260)))

	v := s.View()
	incEng, err := core.NewEngineWithIndex(v.Dataset, v.Index)
	if err != nil {
		t.Fatal(err)
	}
	bulkEng, err := core.NewEngine(v.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	c := verify.Constraint{P: 0.3, Delta: 0.01}
	for _, q := range []float64{100, 250, 251, 400} {
		a, err := incEng.CPNN(q, c, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := bulkEng.CPNN(q, c, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.Answers) != fmt.Sprint(b.Answers) {
			t.Fatalf("q=%g: view-engine answers %v != bulk answers %v", q, a.Answers, b.Answers)
		}
	}
}

func lookup(v *View, id uint64) (int, bool) {
	for slot, got := range v.IDs {
		if got == id {
			return slot, true
		}
	}
	return 0, false
}

func slotOfID(t *testing.T, v *View, id uint64) int {
	t.Helper()
	slot, ok := lookup(v, id)
	if !ok {
		t.Fatalf("id %d not in view", id)
	}
	return slot
}

func mustDataset(t *testing.T, n int, seed int64) *uncertain.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pdfs := make([]pdf.PDF, n)
	for i := range pdfs {
		lo := rng.Float64() * 100
		pdfs[i] = pdf.MustUniform(lo, lo+1+rng.Float64()*4)
	}
	return uncertain.NewDataset(pdfs)
}
