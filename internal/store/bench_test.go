package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/pdf"
	"repro/internal/uncertain"
	"repro/internal/verify"
)

// BenchmarkStoreApply measures steady-state committed update throughput
// (ops/s) across batch sizes, with and without fsync, over a fixed 10k
// dataset — the paper's sensor/LBS workload where object pdfs move but the
// population is stable. (Per-commit cost includes the O(n) copy-on-write
// view materialization, so throughput depends on dataset size; this pins
// n.) The numbers feed the EXPERIMENTS.md update-throughput table.
func BenchmarkStoreApply(b *testing.B) {
	const n = 10000
	for _, sync := range []bool{true, false} {
		for _, batch := range []int{1, 16, 256} {
			name := fmt.Sprintf("fsync=%v/batch=%d", sync, batch)
			b.Run(name, func(b *testing.B) {
				s, err := Open(b.TempDir(), Options{NoSync: !sync, CheckpointBytes: -1})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				rng := rand.New(rand.NewSource(1))
				seedOps := make([]Op, n)
				for i := range seedOps {
					lo := rng.Float64() * 10000
					seedOps[i] = InsertObject(pdf.MustUniform(lo, lo+5))
				}
				seeded, err := s.Apply(seedOps)
				if err != nil {
					b.Fatal(err)
				}
				ops := make([]Op, batch)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range ops {
						lo := rng.Float64() * 10000
						ops[j] = UpdateObject(seeded.IDs[rng.Intn(n)], pdf.MustUniform(lo, lo+5))
					}
					if _, err := s.Apply(ops); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ops/s")
			})
		}
	}
}

// BenchmarkIndexMaintenance compares the two strategies behind filter.Apply
// for one committed batch over a 20k-object dataset: clone the R-tree and
// replay the batch's edits, versus a bulk STR rebuild — the measurement
// behind the rebuildFraction amortization threshold.
func BenchmarkIndexMaintenance(b *testing.B) {
	const n = 20000
	rng := rand.New(rand.NewSource(1))
	pdfs := make([]pdf.PDF, n)
	for i := range pdfs {
		lo := rng.Float64() * 10000
		pdfs[i] = pdf.MustUniform(lo, lo+1+rng.Float64()*10)
	}
	ds := uncertain.NewDataset(pdfs)
	ix, err := filter.NewIndex(ds)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("incremental/batch=%d", batch), func(b *testing.B) {
			// One update per batched op: delete the entry, reinsert it (the
			// edit pair an in-place pdf update produces).
			edits := make([]filter.Edit, 0, 2*batch)
			for j := 0; j < batch; j++ {
				slot := rng.Intn(n)
				region := ds.Object(slot).Region()
				edits = append(edits,
					filter.DeleteEdit(region, slot),
					filter.InsertEdit(region, slot))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Apply(ds, edits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("bulk-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := filter.NewIndex(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryUnderUpdateLoad measures C-PNN latency over live MVCC views
// while a background writer commits update batches as fast as the store
// accepts them — the query-latency-under-update-load row of EXPERIMENTS.md.
func BenchmarkQueryUnderUpdateLoad(b *testing.B) {
	for _, writers := range []int{0, 1} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			rng := rand.New(rand.NewSource(1))
			ops := make([]Op, 2000)
			for i := range ops {
				lo := rng.Float64() * 10000
				ops[i] = InsertObject(pdf.MustUniform(lo, lo+2+rng.Float64()*10))
			}
			if _, err := s.Apply(ops); err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					wrng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						batch := make([]Op, 16)
						for j := range batch {
							v := s.View()
							id := v.IDs[wrng.Intn(len(v.IDs))]
							lo := wrng.Float64() * 10000
							batch[j] = UpdateObject(id, pdf.MustUniform(lo, lo+5))
						}
						if _, err := s.Apply(batch); err != nil {
							return
						}
					}
				}(int64(w + 7))
			}
			c := verify.Constraint{P: 0.3, Delta: 0.01}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := s.View()
				eng, err := core.NewEngineWithIndex(v.Dataset, v.Index)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.CPNN(rng.Float64()*10000, c, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}
