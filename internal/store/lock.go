package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireDirLock takes an exclusive advisory flock on dir/LOCK so two
// processes can never mutate one store directory concurrently (a second
// opener — say, cpnn-store inspect against a live server — would otherwise
// truncate a WAL record the first is mid-append on). The kernel releases
// the lock when the process dies, so a kill -9 never leaves the directory
// stuck.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by another process", dir)
	}
	return f, nil
}
