// Package store is the durable mutation subsystem of the C-PNN engine: a
// write-ahead log of object-level operations (insert/update/delete of 1-D
// uncertain objects and 2-D disks, plus whole-dataset truncation), group
// committed and fsync'd, with periodic checkpoints serialized through the
// pager's page-granular files. Recovery replays the WAL over the latest
// checkpoint; torn or corrupt tail records are detected by per-record
// checksums and dropped, never applied.
//
// On top of the log the store maintains MVCC copy-on-write views: every
// committed batch produces a new immutable View — a dense dataset, the
// stable-ID mapping, and an incrementally-maintained filter index (the
// R-tree is cloned and the batch's inserts/deletes are replayed onto the
// copy, with bulk-rebuild amortization for large batches). Readers hold a
// view for as long as they like; the committed version number is monotonic
// across restarts, so snapshot-versioned caches invalidate for free.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/pdf"
)

// OpCode identifies a logged operation.
type OpCode uint8

const (
	// OpTruncate removes every object (both families) in one step; a bulk
	// dataset reload is logged as a truncate followed by inserts.
	OpTruncate OpCode = 1
	// OpDelete removes one object by stable ID (either family).
	OpDelete OpCode = 2
	// OpUniform upserts a 1-D object with a uniform pdf.
	OpUniform OpCode = 3
	// OpHist upserts a 1-D object with a histogram pdf.
	OpHist OpCode = 4
	// OpDisk upserts a 2-D object with a disk-shaped uncertainty region.
	OpDisk OpCode = 5
)

// Op is one object-level operation. Upserts with ID zero are inserts: the
// store assigns the next stable ID at commit time and the WAL records the
// assigned value, so replay is deterministic. Upserts with a non-zero ID
// update an existing object (applying to a missing ID is rejected).
type Op struct {
	// Code selects the operation.
	Code OpCode
	// ID is the stable object ID; zero on an insert until commit assigns it.
	ID uint64
	// PDF carries the object pdf of OpUniform/OpHist upserts. Only pdf
	// kinds with a durable encoding are accepted: pdf.Uniform and
	// *pdf.Histogram.
	PDF pdf.PDF
	// Disk carries the uncertainty region of OpDisk upserts.
	Disk geom.Circle
}

// InsertObject returns the op inserting a new 1-D object with pdf p.
func InsertObject(p pdf.PDF) Op { return Op{Code: codeFor(p), PDF: p} }

// UpdateObject returns the op replacing object id's pdf with p.
func UpdateObject(id uint64, p pdf.PDF) Op { return Op{Code: codeFor(p), ID: id, PDF: p} }

// InsertDisk returns the op inserting a new 2-D object with region c.
func InsertDisk(c geom.Circle) Op { return Op{Code: OpDisk, Disk: c} }

// UpdateDisk returns the op replacing object id's disk region with c.
func UpdateDisk(id uint64, c geom.Circle) Op { return Op{Code: OpDisk, ID: id, Disk: c} }

// Delete returns the op removing object id.
func Delete(id uint64) Op { return Op{Code: OpDelete, ID: id} }

// Truncate returns the op removing every object.
func Truncate() Op { return Op{Code: OpTruncate} }

// codeFor maps a pdf to its upsert opcode; unsupported kinds keep OpUniform
// out of reach by returning 0, which validation rejects with a clear error.
func codeFor(p pdf.PDF) OpCode {
	switch p.(type) {
	case pdf.Uniform:
		return OpUniform
	case *pdf.Histogram:
		return OpHist
	default:
		return 0
	}
}

var byteOrder = binary.LittleEndian

// maxHistBins caps decoded histogram sizes so a corrupt length field can
// never drive an allocation by itself. Generous: the paper uses 300 bars.
const maxHistBins = 1 << 20

// errTruncatedOp reports an op record ending mid-field.
var errTruncatedOp = errors.New("store: truncated op")

// appendFloat appends a float64 in its IEEE bit pattern, so encode→decode is
// bit-exact — recovered pdfs are identical to the ones the committer applied.
func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func takeFloat(b []byte) (float64, []byte) {
	return math.Float64frombits(byteOrder.Uint64(b)), b[8:]
}

// appendOp serializes one op. The op must already carry its assigned ID and
// a supported payload; encode errors indicate caller bugs and surface as
// validation errors before anything reaches the WAL.
func appendOp(buf []byte, op Op) ([]byte, error) {
	buf = append(buf, byte(op.Code))
	switch op.Code {
	case OpTruncate:
		return buf, nil
	case OpDelete:
		return binary.LittleEndian.AppendUint64(buf, op.ID), nil
	case OpUniform:
		u, ok := op.PDF.(pdf.Uniform)
		if !ok {
			return nil, fmt.Errorf("store: OpUniform carries %T", op.PDF)
		}
		buf = binary.LittleEndian.AppendUint64(buf, op.ID)
		sup := u.Support()
		buf = appendFloat(buf, sup.Lo)
		return appendFloat(buf, sup.Hi), nil
	case OpHist:
		h, ok := op.PDF.(*pdf.Histogram)
		if !ok {
			return nil, fmt.Errorf("store: OpHist carries %T", op.PDF)
		}
		buf = binary.LittleEndian.AppendUint64(buf, op.ID)
		n := h.NumBins()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
		for _, e := range h.Edges() {
			buf = appendFloat(buf, e)
		}
		for i := 0; i < n; i++ {
			buf = appendFloat(buf, h.BinMass(i))
		}
		return buf, nil
	case OpDisk:
		buf = binary.LittleEndian.AppendUint64(buf, op.ID)
		buf = appendFloat(buf, op.Disk.Center.X)
		buf = appendFloat(buf, op.Disk.Center.Y)
		return appendFloat(buf, op.Disk.Radius), nil
	default:
		return nil, fmt.Errorf("store: unknown op code %d", op.Code)
	}
}

// decodeOp parses one op from the front of b, returning the op and the
// remaining bytes. Decoded pdfs go through the same constructors as live
// ones, so every pdf invariant is re-validated on replay.
func decodeOp(b []byte) (Op, []byte, error) {
	if len(b) < 1 {
		return Op{}, nil, errTruncatedOp
	}
	code := OpCode(b[0])
	b = b[1:]
	takeID := func() (uint64, error) {
		if len(b) < 8 {
			return 0, errTruncatedOp
		}
		id := byteOrder.Uint64(b)
		b = b[8:]
		return id, nil
	}
	switch code {
	case OpTruncate:
		return Op{Code: OpTruncate}, b, nil
	case OpDelete:
		id, err := takeID()
		if err != nil {
			return Op{}, nil, err
		}
		return Op{Code: OpDelete, ID: id}, b, nil
	case OpUniform:
		id, err := takeID()
		if err != nil {
			return Op{}, nil, err
		}
		if len(b) < 16 {
			return Op{}, nil, errTruncatedOp
		}
		var lo, hi float64
		lo, b = takeFloat(b)
		hi, b = takeFloat(b)
		u, err := pdf.NewUniform(lo, hi)
		if err != nil {
			return Op{}, nil, fmt.Errorf("store: op for object %d: %w", id, err)
		}
		return Op{Code: OpUniform, ID: id, PDF: u}, b, nil
	case OpHist:
		id, err := takeID()
		if err != nil {
			return Op{}, nil, err
		}
		if len(b) < 4 {
			return Op{}, nil, errTruncatedOp
		}
		n := int(byteOrder.Uint32(b))
		b = b[4:]
		if n < 1 || n > maxHistBins {
			return Op{}, nil, fmt.Errorf("store: op for object %d: %d histogram bins", id, n)
		}
		if len(b) < (2*n+1)*8 {
			return Op{}, nil, errTruncatedOp
		}
		edges := make([]float64, n+1)
		for i := range edges {
			edges[i], b = takeFloat(b)
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i], b = takeFloat(b)
		}
		h, err := pdf.NewHistogram(edges, weights)
		if err != nil {
			return Op{}, nil, fmt.Errorf("store: op for object %d: %w", id, err)
		}
		return Op{Code: OpHist, ID: id, PDF: h}, b, nil
	case OpDisk:
		id, err := takeID()
		if err != nil {
			return Op{}, nil, err
		}
		if len(b) < 24 {
			return Op{}, nil, errTruncatedOp
		}
		var x, y, r float64
		x, b = takeFloat(b)
		y, b = takeFloat(b)
		r, b = takeFloat(b)
		if !isFinite(x) || !isFinite(y) || !isFinite(r) || r <= 0 {
			return Op{}, nil, fmt.Errorf("store: op for object %d: invalid disk (%g,%g r=%g)", id, x, y, r)
		}
		return Op{Code: OpDisk, ID: id, Disk: geom.Circle{Center: geom.Point{X: x, Y: y}, Radius: r}}, b, nil
	default:
		return Op{}, nil, fmt.Errorf("store: unknown op code %d", code)
	}
}

// decodeOps parses a batch payload: the op count followed by that many ops.
func decodeOps(b []byte) ([]Op, error) {
	if len(b) < 4 {
		return nil, errTruncatedOp
	}
	n := int(byteOrder.Uint32(b))
	b = b[4:]
	if n < 0 || n > maxBatchOps {
		return nil, fmt.Errorf("store: batch of %d ops", n)
	}
	ops := make([]Op, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		op, rest, err := decodeOp(b)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after batch", len(b))
	}
	return ops, nil
}

// encodeOps serializes a batch payload (op count + ops).
func encodeOps(ops []Op) ([]byte, error) {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(ops)))
	var err error
	for _, op := range ops {
		if buf, err = appendOp(buf, op); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// EncodeOps serializes an op batch in the store's WAL payload encoding.
// Shard routers and member servers ship op batches over the wire in this
// format — the same bytes a local commit would log — so a remote apply is
// bit-identical to a local one.
func EncodeOps(ops []Op) ([]byte, error) { return encodeOps(ops) }

// DecodeOps parses a payload produced by EncodeOps.
func DecodeOps(b []byte) ([]Op, error) { return decodeOps(b) }

// maxBatchOps bounds one committed batch. It is a decode-side sanity cap
// (far above any real batch) that keeps a corrupt count field from driving
// allocations.
const maxBatchOps = 1 << 24

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
