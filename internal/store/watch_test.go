package store

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/pdf"
)

// TestWatchDeliversChanges walks one subscription through inserts, updates,
// deletes and a truncation, checking every delta's view, kinds and rects.
func TestWatchDeliversChanges(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sub, err := s.Watch(16)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	res, err := s.Apply([]Op{
		InsertObject(pdf.MustUniform(0, 10)),
		InsertObject(pdf.MustUniform(20, 30)),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := <-sub.C()
	if d.Gap || d.Truncated {
		t.Fatalf("unexpected gap/truncated delta: %+v", d)
	}
	if d.View.Version != res.Version {
		t.Fatalf("delta view version %d, want %d", d.View.Version, res.Version)
	}
	if len(d.Changes) != 2 {
		t.Fatalf("got %d changes, want 2", len(d.Changes))
	}
	if d.Changes[0].Kind != ChangeInsert || d.Changes[0].ID != res.IDs[0] {
		t.Fatalf("change[0] = %+v, want insert of id %d", d.Changes[0], res.IDs[0])
	}
	if got, want := d.Changes[0].NewRect, geom.RectFromInterval(geom.Interval{Lo: 0, Hi: 10}); got != want {
		t.Fatalf("insert NewRect = %+v, want %+v", got, want)
	}

	// Update: both rects populated, old is the pre-batch region.
	if _, err := s.Apply([]Op{UpdateObject(res.IDs[0], pdf.MustUniform(5, 15))}); err != nil {
		t.Fatal(err)
	}
	d = <-sub.C()
	if len(d.Changes) != 1 || d.Changes[0].Kind != ChangeUpdate {
		t.Fatalf("update delta = %+v", d)
	}
	if d.Changes[0].OldRect.MinX != 0 || d.Changes[0].OldRect.MaxX != 10 {
		t.Fatalf("update OldRect = %+v, want [0,10]", d.Changes[0].OldRect)
	}
	if d.Changes[0].NewRect.MinX != 5 || d.Changes[0].NewRect.MaxX != 15 {
		t.Fatalf("update NewRect = %+v, want [5,15]", d.Changes[0].NewRect)
	}

	// Disk ops are flagged TwoD and carry circle MBRs.
	dres, err := s.Apply([]Op{InsertDisk(geom.Circle{Center: geom.Point{X: 3, Y: 4}, Radius: 2})})
	if err != nil {
		t.Fatal(err)
	}
	d = <-sub.C()
	if len(d.Changes) != 1 || !d.Changes[0].TwoD || d.Changes[0].Kind != ChangeInsert {
		t.Fatalf("disk delta = %+v", d)
	}
	if got := d.Changes[0].NewRect; got.MinX != 1 || got.MaxX != 5 || got.MinY != 2 || got.MaxY != 6 {
		t.Fatalf("disk MBR = %+v", got)
	}

	// Delete emits the old rect (the 1-D object updated to [5,15] above).
	if _, err := s.Apply([]Op{Delete(res.IDs[0]), Delete(dres.IDs[0])}); err != nil {
		t.Fatal(err)
	}
	d = <-sub.C()
	if len(d.Changes) != 2 || d.Changes[0].Kind != ChangeDelete || !d.Changes[1].TwoD {
		t.Fatalf("delete delta = %+v", d)
	}
	if d.Changes[0].OldRect.MinX != 5 || d.Changes[0].OldRect.MaxX != 15 {
		t.Fatalf("delete OldRect = %+v, want [5,15]", d.Changes[0].OldRect)
	}

	// Truncation subsumes per-object records.
	if _, err := s.Apply([]Op{Truncate(), InsertObject(pdf.MustUniform(1, 2))}); err != nil {
		t.Fatal(err)
	}
	d = <-sub.C()
	if !d.Truncated {
		t.Fatalf("expected truncated delta, got %+v", d)
	}
	if len(d.Changes) != 1 || d.Changes[0].Kind != ChangeInsert {
		t.Fatalf("post-truncate changes = %+v", d.Changes)
	}
}

// TestWatchGapOnLag proves the backpressure contract: a subscriber that lets
// its buffer fill loses intermediate deltas but finds a Gap marker waiting
// in its reserved slot WITHOUT any further commit having to happen — the
// liveness property continuous monitoring depends on. Catching up from
// Store.View() then covers every dropped version, and the stream resumes.
func TestWatchGapOnLag(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sub, err := s.Watch(2)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Commit more batches than the buffer holds, without receiving. The
	// writer then goes quiet — the gap must still surface.
	var last ApplyResult
	for i := 0; i < 6; i++ {
		if last, err = s.Apply([]Op{InsertObject(pdf.MustUniform(float64(i), float64(i)+1))}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().FeedDropped == 0 {
		t.Fatal("expected dropped deltas on a full buffer")
	}

	// One buffered delta, then the reserved-slot Gap — with no extra commit.
	d1 := <-sub.C()
	if d1.Gap || len(d1.Changes) != 1 {
		t.Fatalf("first delta = %+v, want a normal delta", d1)
	}
	d2 := <-sub.C()
	if !d2.Gap {
		t.Fatalf("expected the reserved-slot gap, got %+v", d2)
	}
	if d2.Changes != nil {
		t.Fatalf("gap delta carries changes: %+v", d2.Changes)
	}
	// The catch-up contract: Store.View() at read time covers every drop.
	if v := s.View(); v.Version != last.Version {
		t.Fatalf("latest view %d, want %d (catch-up source)", v.Version, last.Version)
	}

	// Stream resumes normally once drained.
	res, err := s.Apply([]Op{InsertObject(pdf.MustUniform(200, 201))})
	if err != nil {
		t.Fatal(err)
	}
	d3 := <-sub.C()
	if d3.Gap || d3.View.Version != res.Version || len(d3.Changes) != 1 {
		t.Fatalf("post-gap delta = %+v, want normal delta at version %d", d3, res.Version)
	}
}

// TestWatchCloseSemantics: closing a sub stops delivery; closing the store
// closes every remaining channel; Watch on a closed store errors.
func TestWatchCloseSemantics(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}

	a, err := s.Watch(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Watch(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().FeedSubscribers; got != 2 {
		t.Fatalf("FeedSubscribers = %d, want 2", got)
	}
	a.Close()
	a.Close() // idempotent
	if _, ok := <-a.C(); ok {
		t.Fatal("closed sub's channel should be closed")
	}
	if _, err := s.Apply([]Op{InsertObject(pdf.MustUniform(0, 1))}); err != nil {
		t.Fatal(err)
	}
	if d := <-b.C(); d.Gap || len(d.Changes) != 1 {
		t.Fatalf("live sub delta = %+v", d)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-b.C(); ok {
		t.Fatal("store close should close remaining subscriptions")
	}
	if _, err := s.Watch(4); err != ErrClosed {
		t.Fatalf("Watch on closed store: err = %v, want ErrClosed", err)
	}
}

// TestWatchGroupCommitOneDelta: batches group-committed together publish one
// delta covering the whole group.
func TestWatchGroupCommitOneDelta(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sub, err := s.Watch(64)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// One Apply with several ops is certainly one group.
	ops := []Op{
		InsertObject(pdf.MustUniform(0, 1)),
		InsertObject(pdf.MustUniform(2, 3)),
		InsertObject(pdf.MustUniform(4, 5)),
	}
	res, err := s.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	d := <-sub.C()
	if len(d.Changes) != 3 || d.View.Version != res.Version {
		t.Fatalf("delta = %+v, want 3 changes at version %d", d, res.Version)
	}
	if d.View.Dataset.Len() != 3 {
		t.Fatalf("delta view holds %d objects, want 3", d.View.Dataset.Len())
	}
}
