package stats

import (
	"math"
	"testing"
	"time"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %g", got)
	}
	if got := s.Sum(); got != 40 {
		t.Errorf("Sum = %g", got)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %g", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %g", got)
	}
	// Known population stddev is 2; sample stddev = sqrt(32/7).
	if got := s.Stddev(); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Stddev = %g", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.N() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample misbehaves")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty min/max not infinite")
	}
}

func TestSamplePercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {100, 100}, {-5, 1}, {150, 100},
	}
	for _, tc := range cases {
		if got := s.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
}

func TestSampleAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Mean(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("duration in ms = %g", got)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestSampleSingleton(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Stddev() != 0 {
		t.Error("singleton stddev not 0")
	}
	if s.Percentile(50) != 3 {
		t.Error("singleton percentile wrong")
	}
}
