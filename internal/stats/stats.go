// Package stats provides the small aggregation helpers the experiment
// harness uses to summarize per-query measurements: means, percentiles and
// running aggregates over durations and floats.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates float64 observations.
type Sample struct {
	values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// AddDuration appends a duration observation in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 {
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum
}

// Min returns the smallest observation, or +Inf for an empty sample.
func (s *Sample) Min() float64 {
	out := math.Inf(1)
	for _, v := range s.values {
		out = math.Min(out, v)
	}
	return out
}

// Max returns the largest observation, or -Inf for an empty sample.
func (s *Sample) Max() float64 {
	out := math.Inf(-1)
	for _, v := range s.values {
		out = math.Max(out, v)
	}
	return out
}

// Stddev returns the sample standard deviation, or 0 with fewer than two
// observations.
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank on
// the sorted sample. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// String renders "mean ± stddev (n)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean(), s.Stddev(), s.N())
}
