// Package pdf models the probability density functions that describe
// attribute uncertainty in the C-PNN engine: uniform, truncated Gaussian and
// arbitrary piecewise-constant (histogram) densities over a closed interval.
//
// The paper assumes each uncertain object carries a pdf whose integral over
// its uncertainty region is one. All densities in this package maintain that
// invariant, and every pdf can be discretized to a Histogram — the canonical
// representation the verifiers operate on (the paper approximates Gaussians
// with 300-bar histograms).
package pdf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// PDF is a probability density function over a closed interval. The integral
// of Density over Support is one; CDF is its running integral with
// CDF(Support().Lo) == 0 and CDF(Support().Hi) == 1.
type PDF interface {
	// Density returns the probability density at x. It is zero outside the
	// support interval.
	Density(x float64) float64
	// CDF returns P(X <= x). It is 0 left of the support and 1 right of it.
	CDF(x float64) float64
	// Support returns the closed interval outside which the density is zero.
	Support() geom.Interval
	// Mean returns the expected value of the distribution.
	Mean() float64
	// Sample draws a value from the distribution using rng.
	Sample(rng *rand.Rand) float64
}

// Uniform is the uniform density over an interval — the model used for the
// Long Beach intervals in the paper's experiments.
type Uniform struct {
	iv geom.Interval
}

// NewUniform returns the uniform pdf over [lo, hi]. It returns an error when
// the interval is degenerate or inverted, since a density cannot be defined
// on a zero-length support.
func NewUniform(lo, hi float64) (Uniform, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) || hi <= lo {
		return Uniform{}, fmt.Errorf("pdf: invalid uniform support [%g, %g]", lo, hi)
	}
	return Uniform{iv: geom.Interval{Lo: lo, Hi: hi}}, nil
}

// MustUniform is NewUniform that panics on error, for tests and literals.
func MustUniform(lo, hi float64) Uniform {
	u, err := NewUniform(lo, hi)
	if err != nil {
		panic(err)
	}
	return u
}

// Density implements PDF.
func (u Uniform) Density(x float64) float64 {
	if !u.iv.Contains(x) {
		return 0
	}
	return 1 / u.iv.Length()
}

// CDF implements PDF.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.iv.Lo:
		return 0
	case x >= u.iv.Hi:
		return 1
	default:
		return (x - u.iv.Lo) / u.iv.Length()
	}
}

// Support implements PDF.
func (u Uniform) Support() geom.Interval { return u.iv }

// Mean implements PDF.
func (u Uniform) Mean() float64 { return u.iv.Center() }

// Sample implements PDF.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.iv.Lo + rng.Float64()*u.iv.Length()
}

// TruncGaussian is a Gaussian density truncated (and renormalized) to a
// closed interval. The paper's Gaussian experiment centers the mean on the
// uncertainty region and uses a standard deviation of 1/6 of its width.
type TruncGaussian struct {
	iv        geom.Interval
	mu, sigma float64
	norm      float64 // mass of the untruncated Gaussian inside iv
	cdfAtLo   float64
}

// NewTruncGaussian returns a Gaussian with the given mean and standard
// deviation truncated to [lo, hi].
func NewTruncGaussian(lo, hi, mu, sigma float64) (TruncGaussian, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) || hi <= lo {
		return TruncGaussian{}, fmt.Errorf("pdf: invalid gaussian support [%g, %g]", lo, hi)
	}
	if !(sigma > 0) {
		return TruncGaussian{}, fmt.Errorf("pdf: non-positive sigma %g", sigma)
	}
	g := TruncGaussian{iv: geom.Interval{Lo: lo, Hi: hi}, mu: mu, sigma: sigma}
	g.cdfAtLo = stdNormCDF((lo - mu) / sigma)
	g.norm = stdNormCDF((hi-mu)/sigma) - g.cdfAtLo
	if g.norm <= 0 {
		return TruncGaussian{}, fmt.Errorf(
			"pdf: gaussian(mu=%g, sigma=%g) has no mass in [%g, %g]", mu, sigma, lo, hi)
	}
	return g, nil
}

// PaperGaussian returns the truncated Gaussian the paper uses in §V.5: mean
// at the center of the region and sigma equal to 1/6 of its width.
func PaperGaussian(lo, hi float64) (TruncGaussian, error) {
	return NewTruncGaussian(lo, hi, lo+(hi-lo)/2, (hi-lo)/6)
}

// Density implements PDF.
func (g TruncGaussian) Density(x float64) float64 {
	if !g.iv.Contains(x) {
		return 0
	}
	z := (x - g.mu) / g.sigma
	return math.Exp(-z*z/2) / (g.sigma * math.Sqrt(2*math.Pi) * g.norm)
}

// CDF implements PDF.
func (g TruncGaussian) CDF(x float64) float64 {
	switch {
	case x <= g.iv.Lo:
		return 0
	case x >= g.iv.Hi:
		return 1
	default:
		return (stdNormCDF((x-g.mu)/g.sigma) - g.cdfAtLo) / g.norm
	}
}

// Support implements PDF.
func (g TruncGaussian) Support() geom.Interval { return g.iv }

// Mean implements PDF.
func (g TruncGaussian) Mean() float64 {
	// mu + sigma * (phi(alpha) - phi(beta)) / Z for truncation [alpha, beta].
	alpha := (g.iv.Lo - g.mu) / g.sigma
	beta := (g.iv.Hi - g.mu) / g.sigma
	return g.mu + g.sigma*(stdNormPDF(alpha)-stdNormPDF(beta))/g.norm
}

// Sample implements PDF. It uses inverse-cdf bisection, which is exact up to
// floating-point resolution and avoids rejection-loop pathologies for narrow
// truncations.
func (g TruncGaussian) Sample(rng *rand.Rand) float64 {
	return inverseCDF(g, rng.Float64())
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Histogram is a piecewise-constant density: Edges has len(Bins)+1 entries in
// strictly increasing order and Bins[i] is the constant density on
// [Edges[i], Edges[i+1]). It is the canonical pdf representation of the
// engine; distance pdfs are always histograms.
type Histogram struct {
	edges []float64
	dens  []float64 // density per bin
	cum   []float64 // cumulative probability at each edge; cum[0]=0, cum[n]=1
}

// ErrEmptyHistogram is returned when a histogram would carry no probability
// mass.
var ErrEmptyHistogram = errors.New("pdf: histogram has no probability mass")

// NewHistogram builds a histogram pdf from bin edges and non-negative bin
// weights. Weights are proportional masses per bin (not densities); they are
// normalized so the total mass is one.
func NewHistogram(edges, weights []float64) (*Histogram, error) {
	return (*Alloc)(nil).NewHistogram(edges, weights)
}

// Alloc is a bump allocator for query-scoped histograms. The batch query
// path derives ~|C| distance histograms per query and discards them with the
// answer; allocating them through a per-worker Alloc that is Reset between
// queries removes that churn entirely in steady state. Histograms (and
// Floats slices) obtained from an Alloc are valid only until the next Reset;
// they must never be retained in results or memos. A nil *Alloc is valid and
// falls back to the ordinary heap, which is how the single-query paths run.
type Alloc struct {
	hs   []Histogram
	nh   int
	buf  []float64
	used int
}

// Reset invalidates everything allocated since the previous Reset and makes
// the storage reusable.
func (a *Alloc) Reset() {
	if a == nil {
		return
	}
	a.nh = 0
	a.used = 0
}

// Floats returns an n-element float64 slice from the arena (heap-backed for
// a nil Alloc), valid until Reset. Contents are zero only on first use of
// the backing storage; callers must overwrite every element.
func (a *Alloc) Floats(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if a.used+n > len(a.buf) {
		size := 2*len(a.buf) + n
		if size < 4096 {
			size = 4096
		}
		// Slices handed out from the old buffer stay valid — they keep it
		// alive — and are reclaimed once their holders drop after Reset.
		a.buf = make([]float64, size)
		a.used = 0
	}
	s := a.buf[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// hist returns the next reusable histogram header.
func (a *Alloc) hist() *Histogram {
	if a.nh == len(a.hs) {
		a.hs = append(a.hs, Histogram{})
	}
	h := &a.hs[a.nh]
	a.nh++
	return h
}

// NewHistogram is NewHistogram with storage drawn from the arena. The input
// slices are copied, so callers may reuse them immediately.
func (a *Alloc) NewHistogram(edges, weights []float64) (*Histogram, error) {
	if len(edges) < 2 || len(weights) != len(edges)-1 {
		return nil, fmt.Errorf("pdf: histogram needs len(edges) == len(weights)+1 >= 2, got %d edges, %d weights",
			len(edges), len(weights))
	}
	total := 0.0
	for i, e := range edges {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("pdf: non-finite histogram edge %g", e)
		}
		if i > 0 && e <= edges[i-1] {
			return nil, fmt.Errorf("pdf: histogram edges not strictly increasing at index %d (%g <= %g)",
				i, e, edges[i-1])
		}
	}
	for i, w := range weights {
		if math.IsNaN(w) || w < 0 {
			return nil, fmt.Errorf("pdf: negative or NaN histogram weight %g at bin %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, ErrEmptyHistogram
	}
	var h *Histogram
	if a == nil {
		h = &Histogram{
			edges: append([]float64(nil), edges...),
			dens:  make([]float64, len(weights)),
			cum:   make([]float64, len(edges)),
		}
	} else {
		h = a.hist()
		h.edges = a.Floats(len(edges))
		copy(h.edges, edges)
		h.dens = a.Floats(len(weights))
		h.cum = a.Floats(len(edges))
		h.cum[0] = 0
	}
	acc := 0.0
	for i, w := range weights {
		p := w / total
		h.dens[i] = p / (edges[i+1] - edges[i])
		acc += p
		h.cum[i+1] = acc
	}
	h.cum[len(h.cum)-1] = 1 // absorb rounding drift
	return h, nil
}

// MustHistogram is NewHistogram that panics on error, for tests and literals.
func MustHistogram(edges, weights []float64) *Histogram {
	h, err := NewHistogram(edges, weights)
	if err != nil {
		panic(err)
	}
	return h
}

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.dens) }

// Edges returns the bin edges. The slice is shared; callers must not mutate.
func (h *Histogram) Edges() []float64 { return h.edges }

// MemBytes returns the approximate heap footprint of the histogram's float
// storage. Caches that retain histograms across queries (the monitor's
// per-query evaluation state) use it for memory accounting against their
// configured cap.
func (h *Histogram) MemBytes() int {
	return 8 * (len(h.edges) + len(h.dens) + len(h.cum))
}

// BinMass returns the probability mass of bin i.
func (h *Histogram) BinMass(i int) float64 { return h.cum[i+1] - h.cum[i] }

// BinDensity returns the density value of bin i.
func (h *Histogram) BinDensity(i int) float64 { return h.dens[i] }

// Density implements PDF.
func (h *Histogram) Density(x float64) float64 {
	i := h.binIndex(x)
	if i < 0 {
		return 0
	}
	return h.dens[i]
}

// CDF implements PDF. Because the density is piecewise constant, the cdf is
// piecewise linear between edges; that structure is what makes the verifiers
// exact.
func (h *Histogram) CDF(x float64) float64 {
	n := len(h.edges)
	switch {
	case x <= h.edges[0]:
		return 0
	case x >= h.edges[n-1]:
		return 1
	}
	i := h.binIndex(x)
	return h.cum[i] + h.dens[i]*(x-h.edges[i])
}

// binIndex returns the bin containing x, or -1 if x is outside the support.
// The final edge is included in the last bin so the support stays closed.
func (h *Histogram) binIndex(x float64) int {
	n := len(h.edges)
	if x < h.edges[0] || x > h.edges[n-1] {
		return -1
	}
	if x == h.edges[n-1] {
		return len(h.dens) - 1
	}
	// SearchFloat64s finds the first edge > x when we search for x+, so use
	// sort.Search on the predicate edges[i] > x directly.
	i := sort.Search(n, func(k int) bool { return h.edges[k] > x }) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// Support implements PDF.
func (h *Histogram) Support() geom.Interval {
	return geom.Interval{Lo: h.edges[0], Hi: h.edges[len(h.edges)-1]}
}

// Mean implements PDF.
func (h *Histogram) Mean() float64 {
	m := 0.0
	for i := range h.dens {
		mid := h.edges[i] + (h.edges[i+1]-h.edges[i])/2
		m += mid * h.BinMass(i)
	}
	return m
}

// Sample implements PDF using the exact inverse cdf of the histogram.
func (h *Histogram) Sample(rng *rand.Rand) float64 {
	return h.Quantile(rng.Float64())
}

// Quantile returns the smallest x with CDF(x) >= p, for p in [0, 1].
func (h *Histogram) Quantile(p float64) float64 {
	if p <= 0 {
		return h.edges[0]
	}
	if p >= 1 {
		return h.edges[len(h.edges)-1]
	}
	// Find the first edge whose cumulative probability reaches p.
	i := sort.SearchFloat64s(h.cum, p)
	if i == 0 {
		return h.edges[0]
	}
	i-- // bin index whose range covers p
	binMass := h.cum[i+1] - h.cum[i]
	if binMass <= 0 {
		return h.edges[i+1]
	}
	frac := (p - h.cum[i]) / binMass
	return h.edges[i] + frac*(h.edges[i+1]-h.edges[i])
}

// Scale returns a copy of the histogram with all edges transformed by
// x -> a*x + b. a must be non-zero; a negative a mirrors the histogram.
func (h *Histogram) Scale(a, b float64) (*Histogram, error) {
	if a == 0 {
		return nil, errors.New("pdf: zero scale factor")
	}
	n := len(h.edges)
	edges := make([]float64, n)
	weights := make([]float64, n-1)
	if a > 0 {
		for i, e := range h.edges {
			edges[i] = a*e + b
		}
		for i := range weights {
			weights[i] = h.BinMass(i)
		}
	} else {
		for i, e := range h.edges {
			edges[n-1-i] = a*e + b
		}
		for i := range weights {
			weights[n-2-i] = h.BinMass(i)
		}
	}
	return NewHistogram(edges, weights)
}

// Discretize approximates an arbitrary pdf with an n-bin histogram over its
// support, assigning each bin the exact cdf mass of its range. The paper uses
// n = 300 for Gaussian uncertainty.
func Discretize(p PDF, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("pdf: cannot discretize into %d bins", n)
	}
	if h, ok := p.(*Histogram); ok && h.NumBins() <= n {
		return h, nil // already exactly representable
	}
	sup := p.Support()
	edges := make([]float64, n+1)
	weights := make([]float64, n)
	step := sup.Length() / float64(n)
	edges[0] = sup.Lo
	prev := 0.0
	for i := 1; i <= n; i++ {
		edges[i] = sup.Lo + float64(i)*step
		c := p.CDF(edges[i])
		weights[i-1] = c - prev
		prev = c
	}
	edges[n] = sup.Hi // avoid accumulated rounding on the last edge
	return NewHistogram(edges, weights)
}

// inverseCDF solves CDF(x) = p by bisection over the support.
func inverseCDF(p PDF, target float64) float64 {
	sup := p.Support()
	lo, hi := sup.Lo, sup.Hi
	for i := 0; i < 64 && hi-lo > 1e-13*(1+math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		if p.CDF(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// Validate checks the analytic invariants every PDF must satisfy: unit mass,
// monotone cdf and agreement between density and cdf slope. It is intended
// for tests and data-ingestion checks, not hot paths.
func Validate(p PDF) error {
	sup := p.Support()
	if sup.Length() <= 0 {
		return fmt.Errorf("pdf: degenerate support %v", sup)
	}
	const steps = 256
	prev := 0.0
	for i := 0; i <= steps; i++ {
		x := sup.Lo + sup.Length()*float64(i)/steps
		c := p.CDF(x)
		if math.IsNaN(c) || c < -1e-9 || c > 1+1e-9 {
			return fmt.Errorf("pdf: cdf out of range at %g: %g", x, c)
		}
		if c < prev-1e-9 {
			return fmt.Errorf("pdf: cdf not monotone at %g: %g < %g", x, c, prev)
		}
		if d := p.Density(x); math.IsNaN(d) || d < 0 {
			return fmt.Errorf("pdf: invalid density at %g: %g", x, d)
		}
		prev = c
	}
	if math.Abs(p.CDF(sup.Hi)-1) > 1e-6 {
		return fmt.Errorf("pdf: total mass %g != 1", p.CDF(sup.Hi))
	}
	return nil
}
