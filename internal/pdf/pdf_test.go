package pdf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestUniformBasics(t *testing.T) {
	u := MustUniform(2, 6)
	if got := u.Density(4); got != 0.25 {
		t.Errorf("Density = %g, want 0.25", got)
	}
	if got := u.Density(1); got != 0 {
		t.Errorf("Density outside = %g, want 0", got)
	}
	if got := u.CDF(2); got != 0 {
		t.Errorf("CDF(lo) = %g, want 0", got)
	}
	if got := u.CDF(6); got != 1 {
		t.Errorf("CDF(hi) = %g, want 1", got)
	}
	if got := u.CDF(4); got != 0.5 {
		t.Errorf("CDF(mid) = %g, want 0.5", got)
	}
	if got := u.Mean(); got != 4 {
		t.Errorf("Mean = %g, want 4", got)
	}
}

func TestNewUniformErrors(t *testing.T) {
	for _, tc := range [][2]float64{{5, 5}, {6, 2}, {math.NaN(), 1}, {0, math.NaN()}} {
		if _, err := NewUniform(tc[0], tc[1]); err == nil {
			t.Errorf("NewUniform(%g, %g) succeeded, want error", tc[0], tc[1])
		}
	}
}

func TestTruncGaussianSymmetric(t *testing.T) {
	g, err := PaperGaussian(0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Mean(); math.Abs(got-6) > 1e-9 {
		t.Errorf("Mean = %g, want 6 (symmetric truncation)", got)
	}
	if got := g.CDF(6); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(mean) = %g, want 0.5", got)
	}
	// Symmetry of the density.
	if d1, d2 := g.Density(4), g.Density(8); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("density not symmetric: %g vs %g", d1, d2)
	}
	// Density integrates to ~1 (trapezoid check).
	sum := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		x := 12 * (float64(i) + 0.5) / n
		sum += g.Density(x) * 12 / n
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("density mass = %g, want 1", sum)
	}
}

func TestTruncGaussianAsymmetric(t *testing.T) {
	// Mean far to the left of the window: mass should lean left.
	g, err := NewTruncGaussian(0, 10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Mean() >= 5 {
		t.Errorf("Mean = %g, expected < 5 for left-leaning truncation", g.Mean())
	}
	if err := Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTruncGaussianErrors(t *testing.T) {
	if _, err := NewTruncGaussian(0, 10, 5, 0); err == nil {
		t.Error("sigma=0 accepted")
	}
	if _, err := NewTruncGaussian(0, 10, 5, -1); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := NewTruncGaussian(5, 5, 5, 1); err == nil {
		t.Error("degenerate support accepted")
	}
	// A Gaussian 1000 sigmas away has no representable mass in the window.
	if _, err := NewTruncGaussian(0, 1, 1000, 0.1); err == nil {
		t.Error("zero-mass truncation accepted")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := MustHistogram([]float64{0, 1, 3}, []float64{1, 1})
	// Two bins with equal mass 0.5; densities 0.5 and 0.25.
	if got := h.Density(0.5); got != 0.5 {
		t.Errorf("Density bin0 = %g, want 0.5", got)
	}
	if got := h.Density(2); got != 0.25 {
		t.Errorf("Density bin1 = %g, want 0.25", got)
	}
	if got := h.CDF(1); got != 0.5 {
		t.Errorf("CDF(1) = %g, want 0.5", got)
	}
	if got := h.CDF(2); got != 0.75 {
		t.Errorf("CDF(2) = %g, want 0.75", got)
	}
	if got := h.Mean(); math.Abs(got-(0.5*0.5+2*0.5)) > 1e-12 {
		t.Errorf("Mean = %g, want 1.25", got)
	}
	if got := h.BinMass(0); got != 0.5 {
		t.Errorf("BinMass(0) = %g, want 0.5", got)
	}
	if h.NumBins() != 2 {
		t.Errorf("NumBins = %d, want 2", h.NumBins())
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := MustHistogram([]float64{0, 1, 2, 3}, []float64{1, 0, 1})
	// Zero-weight middle bin: density zero, cdf flat.
	if got := h.Density(1.5); got != 0 {
		t.Errorf("Density in empty bin = %g, want 0", got)
	}
	if h.CDF(1) != h.CDF(2) {
		t.Errorf("cdf not flat over empty bin: %g vs %g", h.CDF(1), h.CDF(2))
	}
	// Support endpoints are included.
	if got := h.Density(3); got != 0.5 {
		t.Errorf("Density at last edge = %g, want 0.5", got)
	}
	if got := h.Density(3.0001); got != 0 {
		t.Errorf("Density beyond support = %g, want 0", got)
	}
	if got := h.CDF(-1); got != 0 {
		t.Errorf("CDF left of support = %g", got)
	}
	if got := h.CDF(99); got != 1 {
		t.Errorf("CDF right of support = %g", got)
	}
}

func TestNewHistogramErrors(t *testing.T) {
	cases := []struct {
		name    string
		edges   []float64
		weights []float64
	}{
		{"too-few-edges", []float64{1}, nil},
		{"len-mismatch", []float64{0, 1, 2}, []float64{1}},
		{"non-increasing", []float64{0, 0, 1}, []float64{1, 1}},
		{"decreasing", []float64{0, 2, 1}, []float64{1, 1}},
		{"negative-weight", []float64{0, 1, 2}, []float64{1, -1}},
		{"nan-weight", []float64{0, 1}, []float64{math.NaN()}},
		{"nan-edge", []float64{0, math.NaN()}, []float64{1}},
		{"inf-edge", []float64{0, math.Inf(1)}, []float64{1}},
		{"zero-mass", []float64{0, 1, 2}, []float64{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewHistogram(tc.edges, tc.weights); err == nil {
				t.Error("invalid histogram accepted")
			}
		})
	}
}

func TestHistogramQuantileRoundTrip(t *testing.T) {
	h := MustHistogram([]float64{0, 2, 5, 6}, []float64{2, 3, 5})
	for _, p := range []float64{0, 0.1, 0.2, 0.5, 0.9, 1} {
		x := h.Quantile(p)
		if got := h.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
	if h.Quantile(-0.5) != 0 || h.Quantile(1.5) != 6 {
		t.Error("quantile clamping wrong")
	}
}

func TestHistogramScale(t *testing.T) {
	h := MustHistogram([]float64{0, 1, 3}, []float64{1, 3})
	// Shift right by 10.
	s, err := h.Scale(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sup := s.Support(); sup.Lo != 10 || sup.Hi != 13 {
		t.Errorf("shifted support = %v", sup)
	}
	if got := s.CDF(11); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("shifted CDF(11) = %g, want 0.25", got)
	}
	// Mirror: x -> -x. Mass ordering reverses.
	m, err := h.Scale(-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sup := m.Support(); sup.Lo != -3 || sup.Hi != 0 {
		t.Errorf("mirrored support = %v", sup)
	}
	if got := m.CDF(-1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("mirrored CDF(-1) = %g, want 0.75", got)
	}
	if _, err := h.Scale(0, 1); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestDiscretizeGaussian(t *testing.T) {
	g, err := PaperGaussian(0, 12)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Discretize(g, 300)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBins() != 300 {
		t.Fatalf("NumBins = %d, want 300", h.NumBins())
	}
	// The discretization must agree with the source cdf at every edge.
	for _, x := range []float64{0, 1, 3, 6, 9, 11.999, 12} {
		if diff := math.Abs(h.CDF(x) - g.CDF(x)); diff > 1e-2 {
			t.Errorf("CDF mismatch at %g: %g", x, diff)
		}
	}
	// Mean is preserved closely for a symmetric density.
	if diff := math.Abs(h.Mean() - g.Mean()); diff > 1e-3 {
		t.Errorf("mean drift %g", diff)
	}
	if err := Validate(h); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDiscretizeHistogramPassthrough(t *testing.T) {
	h := MustHistogram([]float64{0, 1, 2}, []float64{1, 1})
	got, err := Discretize(h, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Error("small histogram should pass through unchanged")
	}
	if _, err := Discretize(h, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestSampleWithinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := []PDF{
		MustUniform(5, 9),
		MustHistogram([]float64{0, 1, 4}, []float64{1, 2}),
	}
	if g, err := PaperGaussian(-3, 3); err == nil {
		dists = append(dists, g)
	} else {
		t.Fatal(err)
	}
	for _, d := range dists {
		sup := d.Support()
		sum := 0.0
		const n = 2000
		for i := 0; i < n; i++ {
			x := d.Sample(rng)
			if !sup.Contains(x) {
				t.Fatalf("sample %g outside support %v", x, sup)
			}
			sum += x
		}
		if diff := math.Abs(sum/n - d.Mean()); diff > 0.15 {
			t.Errorf("sample mean %g far from %g", sum/n, d.Mean())
		}
	}
}

func TestValidateCatchesBrokenPDF(t *testing.T) {
	if err := Validate(brokenPDF{}); err == nil {
		t.Error("Validate accepted a non-monotone cdf")
	}
}

// brokenPDF deliberately violates cdf monotonicity.
type brokenPDF struct{}

func (brokenPDF) Density(x float64) float64     { return 1 }
func (brokenPDF) CDF(x float64) float64         { return math.Sin(3 * x) }
func (brokenPDF) Support() geom.Interval        { return geom.Interval{Lo: 0, Hi: 10} }
func (brokenPDF) Mean() float64                 { return 5 }
func (brokenPDF) Sample(rng *rand.Rand) float64 { return 5 }

func TestHistogramPropertyCDFDensityConsistency(t *testing.T) {
	// For random histograms, the cdf difference across a bin equals
	// density * width, and cdf is within [0,1] and monotone.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		edges := make([]float64, n+1)
		x := rng.Float64() * 10
		for i := range edges {
			edges[i] = x
			x += 0.01 + rng.Float64()*5
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 3
		}
		weights[rng.Intn(n)] += 0.5 // guarantee mass
		h, err := NewHistogram(edges, weights)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			lhs := h.CDF(edges[i+1]) - h.CDF(edges[i])
			rhs := h.BinDensity(i) * (edges[i+1] - edges[i])
			if math.Abs(lhs-rhs) > 1e-9 {
				return false
			}
		}
		return Validate(h) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramPropertyQuantileInverse(t *testing.T) {
	f := func(seed int64, p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		edges := make([]float64, n+1)
		x := 0.0
		for i := range edges {
			edges[i] = x
			x += 0.1 + rng.Float64()
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64()
		}
		weights[0] += 0.1
		h, err := NewHistogram(edges, weights)
		if err != nil {
			return false
		}
		q := h.Quantile(p)
		return math.Abs(h.CDF(q)-p) < 1e-9 || q == edges[0] || q == edges[n]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
